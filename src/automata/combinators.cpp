#include "automata/combinators.h"

#include <cassert>

namespace treenum {

UnrankedTva UnionTva(const UnrankedTva& a, const UnrankedTva& b) {
  assert(a.num_labels() == b.num_labels());
  assert(a.num_vars() == b.num_vars());
  size_t na = a.num_states();
  UnrankedTva out(na + b.num_states(), a.num_labels(), a.num_vars());
  for (const LeafInit& li : a.inits()) {
    out.AddInit(li.label, li.vars, li.state);
  }
  for (const StepTransition& t : a.transitions()) {
    out.AddTransition(t.from, t.child, t.to);
  }
  for (State q : a.final_states()) out.AddFinal(q);
  State off = static_cast<State>(na);
  for (const LeafInit& li : b.inits()) {
    out.AddInit(li.label, li.vars, li.state + off);
  }
  for (const StepTransition& t : b.transitions()) {
    out.AddTransition(t.from + off, t.child + off, t.to + off);
  }
  for (State q : b.final_states()) out.AddFinal(q + off);
  return out;
}

UnrankedTva IntersectTva(const UnrankedTva& a, const UnrankedTva& b) {
  assert(a.num_labels() == b.num_labels());
  assert(a.num_vars() == b.num_vars());
  size_t nb = b.num_states();
  auto pair_id = [nb](State qa, State qb) {
    return static_cast<State>(qa * nb + qb);
  };
  UnrankedTva out(a.num_states() * nb, a.num_labels(), a.num_vars());
  // ι: both automata must start compatibly on the same (label, annotation).
  for (const LeafInit& la : a.inits()) {
    for (const LeafInit& lb : b.inits()) {
      if (la.label == lb.label && la.vars == lb.vars) {
        out.AddInit(la.label, la.vars, pair_id(la.state, lb.state));
      }
    }
  }
  // δ: componentwise steps consuming the same child.
  for (const StepTransition& ta : a.transitions()) {
    for (const StepTransition& tb : b.transitions()) {
      out.AddTransition(pair_id(ta.from, tb.from),
                        pair_id(ta.child, tb.child),
                        pair_id(ta.to, tb.to));
    }
  }
  for (State qa : a.final_states()) {
    for (State qb : b.final_states()) {
      out.AddFinal(pair_id(qa, qb));
    }
  }
  return out;
}

UnrankedTva EachVariableOnce(size_t num_labels, size_t num_vars) {
  assert(num_vars <= 16 && "singleton checker state space is 2^|X|");
  size_t n = size_t{1} << num_vars;
  UnrankedTva out(n, num_labels, num_vars);
  // A node's initial state is its own annotation; children merge with
  // disjointness enforced (a variable seen twice kills the run).
  for (Label l = 0; l < num_labels; ++l) {
    for (VarMask m = 0; m < n; ++m) {
      out.AddInit(l, m, static_cast<State>(m));
    }
  }
  for (State m1 = 0; m1 < n; ++m1) {
    for (State m2 = 0; m2 < n; ++m2) {
      if ((m1 & m2) == 0) {
        out.AddTransition(m1, m2, m1 | m2);
      }
    }
  }
  out.AddFinal(static_cast<State>(n - 1));
  return out;
}

UnrankedTva MakeFirstOrder(const UnrankedTva& a) {
  return IntersectTva(a, EachVariableOnce(a.num_labels(), a.num_vars()));
}

Wva UnionWva(const Wva& a, const Wva& b) {
  assert(a.num_labels() == b.num_labels());
  assert(a.num_vars() == b.num_vars());
  size_t na = a.num_states();
  Wva out(na + b.num_states(), a.num_labels(), a.num_vars());
  for (const WvaTransition& t : a.transitions()) {
    out.AddTransition(t.from, t.label, t.vars, t.to);
  }
  for (State q : a.initial_states()) out.AddInitial(q);
  for (State q : a.final_states()) out.AddFinal(q);
  State off = static_cast<State>(na);
  for (const WvaTransition& t : b.transitions()) {
    out.AddTransition(t.from + off, t.label, t.vars, t.to + off);
  }
  for (State q : b.initial_states()) out.AddInitial(q + off);
  for (State q : b.final_states()) out.AddFinal(q + off);
  return out;
}

Wva IntersectWva(const Wva& a, const Wva& b) {
  assert(a.num_labels() == b.num_labels());
  assert(a.num_vars() == b.num_vars());
  size_t nb = b.num_states();
  auto pair_id = [nb](State qa, State qb) {
    return static_cast<State>(qa * nb + qb);
  };
  Wva out(a.num_states() * nb, a.num_labels(), a.num_vars());
  for (const WvaTransition& ta : a.transitions()) {
    for (const WvaTransition& tb : b.transitions()) {
      if (ta.label == tb.label && ta.vars == tb.vars) {
        out.AddTransition(pair_id(ta.from, tb.from), ta.label, ta.vars,
                          pair_id(ta.to, tb.to));
      }
    }
  }
  for (State qa : a.initial_states()) {
    for (State qb : b.initial_states()) {
      out.AddInitial(pair_id(qa, qb));
    }
  }
  for (State qa : a.final_states()) {
    for (State qb : b.final_states()) {
      out.AddFinal(pair_id(qa, qb));
    }
  }
  return out;
}

}  // namespace treenum
