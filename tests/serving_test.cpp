// DocumentShardServer correctness: randomized mixed command scripts (leaf
// edits + structural transactions + query churn + document removal) against
// recompute-from-scratch StaticEngine oracles, bit-identical answers across
// shard counts (S=1 vs S=8), concurrent snapshot readers during load (run
// under TSan in CI), work-stealing liveness, the Chase-Lev deque's
// exactly-once delivery under racing thieves, and the allocation-free
// templated ParallelFor contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "automata/query_library.h"
#include "baseline/static_engine.h"
#include "serving/shard_server.h"
#include "serving/workload.h"
#include "util/alloc_gauge.h"
#include "util/thread_pool.h"
#include "util/work_stealing_deque.h"

namespace treenum {
namespace {

using serving::CommandScript;
using serving::DocCommand;
using serving::DocumentShardServer;
using serving::StructuralOp;
using serving::WorkloadOptions;

UnrankedTva PersistentQuery() { return QueryMarkedAncestor(3, 1, 2); }
UnrankedTva ChurnQuery() { return QuerySelectLabel(3, 1); }

/// One served document plus its deterministic script and churn slot.
struct Tenant {
  DocumentShardServer::DocRef doc;
  DocumentShardServer::QueryRef query;
  CommandScript script;
  DynamicDocument::QueryHandle churn = 0;
  bool churn_live = false;

  Tenant(DocumentShardServer::DocRef d, DocumentShardServer::QueryRef q,
         CommandScript s)
      : doc(d), query(q), script(std::move(s)) {}
};

WorkloadOptions MixedWorkload() {
  WorkloadOptions wo;
  wo.num_labels = 3;
  wo.structural_fraction = 0.08;
  wo.churn_fraction = 0.03;
  wo.min_size = 8;
  return wo;
}

std::vector<Tenant> MakeTenants(DocumentShardServer& server, size_t docs,
                                size_t doc_size, uint64_t seed,
                                const WorkloadOptions& wo) {
  const UnrankedTva query = PersistentQuery();
  std::vector<Tenant> tenants;
  tenants.reserve(docs);
  for (size_t i = 0; i < docs; ++i) {
    Rng rng(seed + i);
    UnrankedTree tree = RandomTree(doc_size, 3, rng);
    auto doc = server.AddDocument(tree, 3);
    auto q = server.RegisterQuery(doc, query);
    tenants.emplace_back(doc, q,
                         CommandScript(std::move(tree), seed ^ (i * 977), wo));
  }
  return tenants;
}

/// Generates and submits the tenant's next scripted command.
void SubmitNext(DocumentShardServer& server, Tenant& t,
                const UnrankedTva& churn_query) {
  const DocCommand c = t.script.Next();
  switch (c.kind) {
    case DocCommand::Kind::kEdit:
      server.SubmitEdit(t.doc, c.edit);
      break;
    case DocCommand::Kind::kStructural:
      server.SubmitStructural(t.doc, c.structural);
      break;
    case DocCommand::Kind::kRegister:
      t.churn = server.RegisterQuery(t.doc, churn_query).handle;
      t.churn_live = true;
      break;
    case DocCommand::Kind::kUnregister:
      if (t.churn_live) {
        server.UnregisterQuery(t.doc, t.churn);
        t.churn_live = false;
      }
      break;
  }
}

std::vector<Assignment> Sorted(std::vector<Assignment> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---- Mixed scripts vs fresh oracles ----

// Randomized mixed scripts across 4 shards; after draining, every served
// document must equal its script mirror node-for-node, and the persistent
// query's answers (read through the caller-thread ReaderView at a pinned
// snapshot) must match a StaticEngine rebuilt from scratch on that tree.
TEST(ShardServer, MixedScriptsMatchFreshOracles) {
  constexpr size_t kDocs = 6, kDocSize = 48, kCommands = 1500;
  DocumentShardServer::Options o;
  o.shards = 4;
  DocumentShardServer server(o);
  std::vector<Tenant> tenants =
      MakeTenants(server, kDocs, kDocSize, 0x5EED, MixedWorkload());
  const UnrankedTva churn_query = ChurnQuery();

  Rng rng(99);
  for (size_t k = 0; k < kCommands; ++k) {
    Tenant& t = tenants[k % tenants.size()];
    SubmitNext(server, t, churn_query);
    if (k % 128 == 127) {
      // Mid-run probe from the submitting thread: pin whatever is current
      // and check the two read paths agree on it.
      Tenant& probe = tenants[rng.Index(tenants.size())];
      SnapshotRef snap = server.Pin(probe.doc);
      const bool has = probe.query.view.HasAnswerAt(snap);
      auto cursor = probe.query.view.MakeCursorAt(snap);
      Assignment a;
      EXPECT_EQ(has, cursor->Next(&a)) << "probe at command " << k;
    }
  }
  server.Drain();

  const UnrankedTva query = PersistentQuery();
  for (size_t i = 0; i < tenants.size(); ++i) {
    Tenant& t = tenants[i];
    const UnrankedTree& tree = server.document(t.doc).tree();
    ASSERT_TRUE(tree == t.script.mirror()) << "doc " << i;
    StaticEngine oracle(tree, query);
    EXPECT_EQ(Sorted(t.query.view.EnumerateAt(server.Pin(t.doc))),
              Sorted(oracle.EnumerateAll()))
        << "doc " << i;
  }

  const DocumentShardServer::Stats stats = server.stats();
  // Every scripted command plus the initial registrations flowed through
  // the queues.
  EXPECT_EQ(stats.commands, kCommands + kDocs);
  EXPECT_GT(stats.structural_applied, 0u);
  EXPECT_GT(stats.registers, kDocs);  // initial registrations plus churn
}

// ---- Determinism across shard counts ----

// The same scripted workload submitted in the same per-document order must
// produce bit-identical final trees and answers whether one worker or
// eight drain the queues (work stealing and group-commit boundaries must
// not be observable in the served state).
TEST(ShardServer, AnswersAreIdenticalAcrossShardCounts) {
  constexpr size_t kDocs = 8, kDocSize = 40, kCommands = 1200;
  const UnrankedTva query = PersistentQuery();
  const UnrankedTva churn_query = ChurnQuery();

  auto run = [&](size_t shards) {
    DocumentShardServer::Options o;
    o.shards = shards;
    DocumentShardServer server(o);
    std::vector<Tenant> tenants =
        MakeTenants(server, kDocs, kDocSize, 0xD17E, MixedWorkload());
    for (size_t k = 0; k < kCommands; ++k) {
      SubmitNext(server, tenants[k % tenants.size()], churn_query);
    }
    server.Drain();
    std::vector<std::string> trees;
    std::vector<std::vector<Assignment>> answers;
    for (Tenant& t : tenants) {
      trees.push_back(server.document(t.doc).tree().ToString());
      answers.push_back(Sorted(t.query.view.EnumerateAt(server.Pin(t.doc))));
    }
    return std::make_pair(std::move(trees), std::move(answers));
  };

  const auto one = run(1);
  const auto eight = run(8);
  ASSERT_EQ(one.first.size(), eight.first.size());
  for (size_t i = 0; i < one.first.size(); ++i) {
    EXPECT_EQ(one.first[i], eight.first[i]) << "tree of doc " << i;
    EXPECT_EQ(one.second[i], eight.second[i]) << "answers of doc " << i;
  }
}

// ---- Concurrent snapshot readers during load ----

// Reader threads continuously pin snapshots and enumerate through their
// ReaderViews while the shard workers commit edits and structural
// transactions. Readers assert internal consistency (existence check vs
// cursor) and count mismatches; the writer side is verified against the
// mirror after draining. This is the serving-layer TSan workload.
TEST(ShardServer, SnapshotReadersConcurrentWithServing) {
  constexpr size_t kDocs = 4, kDocSize = 40, kCommands = 1200;
  constexpr size_t kReaders = 3;
  DocumentShardServer::Options o;
  o.shards = 2;
  DocumentShardServer server(o);
  WorkloadOptions wo = MixedWorkload();
  wo.churn_fraction = 0;  // keep every ReaderView trivially live
  std::vector<Tenant> tenants = MakeTenants(server, kDocs, kDocSize, 7, wo);
  const UnrankedTva churn_query = ChurnQuery();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      while (!stop.load(std::memory_order_acquire)) {
        Tenant& t = tenants[rng.Index(tenants.size())];
        SnapshotRef snap = server.Pin(t.doc);
        const bool has = t.query.view.HasAnswerAt(snap);
        auto cursor = t.query.view.MakeCursorAt(snap);
        Assignment a;
        bool got = false;
        for (size_t k = 0; k < 4 && cursor->Next(&a); ++k) got = true;
        if (has != got) mismatches.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (size_t k = 0; k < kCommands; ++k) {
    SubmitNext(server, tenants[k % tenants.size()], churn_query);
  }
  server.Drain();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  for (size_t i = 0; i < tenants.size(); ++i) {
    ASSERT_TRUE(server.document(tenants[i].doc).tree() ==
                tenants[i].script.mirror())
        << "doc " << i;
  }
}

// ---- Work stealing ----

// All load aimed at documents homed on ONE shard; the other three workers
// have nothing of their own, so draining the backlog at all promptly
// requires them to steal. Keeps feeding the hot shard until a steal is
// observed (bounded), then asserts correctness of the stolen work.
TEST(ShardServer, IdleShardsStealFromLoadedNeighbours) {
  DocumentShardServer::Options o;
  o.shards = 4;
  DocumentShardServer server(o);
  WorkloadOptions wo;  // pure leaf edits: cheapest commands, max pressure
  wo.num_labels = 3;

  // Collect documents that all hash to the same home shard.
  std::vector<Tenant> tenants;
  const UnrankedTva query = PersistentQuery();
  size_t home = SIZE_MAX;
  for (size_t i = 0; tenants.size() < 6 && i < 256; ++i) {
    Rng rng(42 + i);
    UnrankedTree tree = RandomTree(48, 3, rng);
    auto doc = server.AddDocument(tree, 3);
    if (home == SIZE_MAX) home = server.shard_of(doc);
    if (server.shard_of(doc) != home) continue;  // shell doc, never used
    auto q = server.RegisterQuery(doc, query);
    tenants.emplace_back(doc, q, CommandScript(std::move(tree), 42 ^ i, wo));
  }
  ASSERT_GE(tenants.size(), 4u);

  const UnrankedTva churn_query = ChurnQuery();
  uint64_t steals = 0;
  for (int wave = 0; wave < 200 && steals == 0; ++wave) {
    for (size_t k = 0; k < 600; ++k) {
      SubmitNext(server, tenants[k % tenants.size()], churn_query);
    }
    server.Drain();
    steals = server.stats().steals;
  }
  EXPECT_GT(steals, 0u) << "no steal in 200 waves of single-shard backlog";

  // Stolen work must not have corrupted anything.
  for (size_t i = 0; i < tenants.size(); ++i) {
    ASSERT_TRUE(server.document(tenants[i].doc).tree() ==
                tenants[i].script.mirror())
        << "doc " << i;
  }
}

// ---- Document lifecycle ----

TEST(ShardServer, RemoveDocumentCompletesPendingWork) {
  DocumentShardServer::Options o;
  o.shards = 2;
  DocumentShardServer server(o);
  WorkloadOptions wo;
  wo.num_labels = 3;
  std::vector<Tenant> tenants = MakeTenants(server, 4, 32, 11, wo);
  const UnrankedTva churn_query = ChurnQuery();

  for (size_t k = 0; k < 400; ++k) {
    SubmitNext(server, tenants[k % tenants.size()], churn_query);
  }
  // Remove two documents with work still queued: removal is FIFO behind
  // their pending edits, so it must apply them first, then destroy.
  server.RemoveDocument(tenants[1].doc);
  server.RemoveDocument(tenants[3].doc);
  for (size_t k = 0; k < 200; ++k) {
    Tenant& t = tenants[(k % 2) * 2];  // only docs 0 and 2 remain
    SubmitNext(server, t, churn_query);
  }
  server.Drain();

  EXPECT_EQ(server.stats().removes, 2u);
  for (size_t i : {size_t{0}, size_t{2}}) {
    ASSERT_TRUE(server.document(tenants[i].doc).tree() ==
                tenants[i].script.mirror())
        << "doc " << i;
  }
}

// ---- Chase-Lev deque ----

TEST(WorkStealingDeque, OwnerIsLifoThievesAreFifo) {
  WorkStealingDeque<uint64_t> dq;
  for (uint64_t v = 1; v <= 4; ++v) dq.PushBottom(v);
  uint64_t v = 0;
  ASSERT_TRUE(dq.StealTop(&v));
  EXPECT_EQ(v, 1u);  // thief takes the oldest
  ASSERT_TRUE(dq.PopBottom(&v));
  EXPECT_EQ(v, 4u);  // owner takes the newest
  ASSERT_TRUE(dq.PopBottom(&v));
  EXPECT_EQ(v, 3u);
  ASSERT_TRUE(dq.StealTop(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(dq.PopBottom(&v));
  EXPECT_FALSE(dq.StealTop(&v));
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  WorkStealingDeque<uint64_t> dq;
  constexpr uint64_t kN = 10000;  // forces several buffer growths
  for (uint64_t i = 0; i < kN; ++i) dq.PushBottom(i);
  for (uint64_t i = kN; i-- > 0;) {
    uint64_t v = 0;
    ASSERT_TRUE(dq.PopBottom(&v));
    ASSERT_EQ(v, i);
  }
  uint64_t v = 0;
  EXPECT_FALSE(dq.PopBottom(&v));
}

// Exactly-once delivery under racing thieves: one owner pushes (and
// sometimes pops) a known sequence while three thieves steal concurrently;
// afterwards the union of everything popped and stolen must be exactly the
// pushed sequence — nothing lost, nothing duplicated.
TEST(WorkStealingDeque, StressDeliversEachItemExactlyOnce) {
  constexpr uint64_t kItems = 100000;
  constexpr size_t kThieves = 3;
  WorkStealingDeque<uint64_t> dq;
  std::atomic<bool> done{false};
  std::vector<std::vector<uint64_t>> stolen(kThieves);
  std::vector<std::thread> thieves;
  for (size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      uint64_t v = 0;
      while (true) {
        if (dq.StealTop(&v)) {
          stolen[t].push_back(v);
        } else if (done.load(std::memory_order_acquire)) {
          // A failed steal after `done` means truly empty (the owner has
          // stopped pushing), not a lost race.
          if (!dq.StealTop(&v)) return;
          stolen[t].push_back(v);
        } else {
          std::this_thread::yield();  // don't starve the owner on 1 core
        }
      }
    });
  }

  std::vector<uint64_t> popped;
  Rng rng(5);
  for (uint64_t i = 0; i < kItems; ++i) {
    dq.PushBottom(i);
    if (rng.Flip(0.3)) {
      uint64_t v = 0;
      if (dq.PopBottom(&v)) popped.push_back(v);
    }
  }
  uint64_t v = 0;
  while (dq.PopBottom(&v)) popped.push_back(v);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::vector<uint64_t> all = std::move(popped);
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kItems);
  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[i], i) << "item lost or duplicated near " << i;
  }
}

// ---- Allocation-free templated ParallelFor ----

// The templated ParallelFor passes the body as a (function pointer,
// context) pair — no std::function, no heap. The gauge must read zero
// across many fork-join rounds once the pool is warm.
TEST(ThreadPoolServing, ParallelForIsAllocationFree) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  const auto body = [&sum](size_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  };
  pool.ParallelFor(64, body);  // warm-up round
  sum.store(0);

  AllocGaugeScope scope;
  constexpr size_t kRounds = 50;
  for (size_t r = 0; r < kRounds; ++r) pool.ParallelFor(64, body);
  if (AllocGaugeActive()) {
    EXPECT_EQ(scope.allocs(), 0u)
        << "fork-join dispatch must not allocate per round";
  }
  EXPECT_EQ(sum.load(), kRounds * (64 * 65) / 2);
}

}  // namespace
}  // namespace treenum
