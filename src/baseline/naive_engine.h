// Naive materializing engine: computes the full set of satisfying
// assignments bottom-up on the unranked tree, with explicit per-(node,
// state) assignment sets and no factorization. Exponential in the worst
// case; serves as (a) the independent correctness oracle for the whole
// pipeline and (b) the "recompute everything on every update" baseline of
// the benchmarks.
#ifndef TREENUM_BASELINE_NAIVE_ENGINE_H_
#define TREENUM_BASELINE_NAIVE_ENGINE_H_

#include <memory>
#include <vector>

#include "automata/unranked_tva.h"
#include "baseline/recompute_engine.h"
#include "trees/assignment.h"
#include "trees/unranked_tree.h"

namespace treenum {

/// Computes all satisfying assignments of `query` on `tree` by direct
/// materialization (sorted, duplicate-free).
std::vector<Assignment> MaterializeAssignments(const UnrankedTree& tree,
                                               const UnrankedTva& query);

/// The recompute-per-update engine. Batched updates (BeginBatch/
/// CommitBatch) skip the per-edit recompute and materialize once at
/// commit.
class NaiveEngine : public RecomputeEngineBase {
 public:
  NaiveEngine(UnrankedTree tree, UnrankedTva query);

  const std::vector<Assignment>& results() const { return results_; }

  std::vector<Assignment> EnumerateAll() const override { return results_; }
  std::unique_ptr<Engine::Cursor> MakeCursor() const override;
  bool HasAnswer() const override { return !results_.empty(); }

 protected:
  UpdateStats Refresh() override;

 private:
  UnrankedTva query_;
  std::vector<Assignment> results_;
};

}  // namespace treenum

#endif  // TREENUM_BASELINE_NAIVE_ENGINE_H_
