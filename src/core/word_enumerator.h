// WordEnumerator — Theorem 8.5: enumeration of the satisfying assignments
// of a nondeterministic WVA (document spanner) on a word, with character
// edits in worst-case O(log |w| * poly(|Q|)) via AVL-balanced ⊕HH terms
// (Corollary 8.4).
#ifndef TREENUM_CORE_WORD_ENUMERATOR_H_
#define TREENUM_CORE_WORD_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "automata/homogenize.h"
#include "automata/translate.h"
#include "automata/wva.h"
#include "circuit/circuit.h"
#include "enumeration/enumerate.h"
#include "enumeration/index.h"
#include "falgebra/word_avl.h"
#include "trees/assignment.h"

namespace treenum {

class WordEnumerator {
 public:
  WordEnumerator(const Word& w, const Wva& query,
                 BoxEnumMode mode = BoxEnumMode::kIndexed);

  size_t word_size() const { return enc_.size(); }
  size_t width() const { return homog_.tva.num_states(); }
  const WordEncoding& encoding() const { return enc_; }

  /// Satisfying assignments; singleton NodeIds are *stable position ids* —
  /// translate to current positions with PositionOf.
  std::vector<Assignment> EnumerateAll() const;
  /// Current logical position of a stable position id.
  size_t PositionOf(NodeId id) const { return enc_.PositionOf(id); }

  /// Like EnumerateAll but with singletons rewritten to current positions.
  std::vector<Assignment> EnumerateAllByPosition() const;

  // ---- Word edits, worst-case O(log |w|) ----
  void Replace(size_t pos, Label l);
  void Insert(size_t pos, Label l);
  void Erase(size_t pos);
  /// Bulk edit: move the factor [begin, end) so it starts at `dst` of the
  /// remaining word. Also O(log |w|) (AVL split/join).
  void MoveRange(size_t begin, size_t end, size_t dst);

  const AssignmentCircuit& circuit() const { return circuit_; }

 private:
  void ApplyUpdate(const UpdateResult& result);
  std::vector<uint32_t> FinalGamma() const;

  HomogenizedTva homog_;
  WordEncoding enc_;
  AssignmentCircuit circuit_;
  EnumIndex index_;
  BoxEnumMode mode_;
};

}  // namespace treenum

#endif  // TREENUM_CORE_WORD_ENUMERATOR_H_
