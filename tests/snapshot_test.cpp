// Tests for the copy-on-write snapshot layer (core/snapshot.h and the
// DynamicDocument snapshot surface): published snapshots are immutable
// versions — old ones keep answering with their pre-edit results
// (time-travel) while the writer edits; cursors co-own their pin; the
// epoch gate rejects snapshots that predate a query's registration; and
// steady-state path-copying edits stay allocation-free (retired snapshot
// roots recycle node versions through the term's free list).
//
// Concurrency is exercised separately in snapshot_stress_test.cpp; these
// tests pin the single-threaded semantics the stress test relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "automata/query_library.h"
#include "automata/regex_spanner.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "core/tree_enumerator.h"
#include "core/word_enumerator.h"
#include "test_util.h"
#include "util/alloc_gauge.h"

namespace treenum {
namespace {

Wva SomeBPosition() {
  // a*<x:b>(a|b)* — select every b position.
  Wva a(2, 2, 1);
  a.AddInitial(0);
  a.AddTransition(0, 0, 0, 0);
  a.AddTransition(0, 1, 0, 0);
  a.AddTransition(0, 1, 1, 1);
  a.AddTransition(1, 0, 0, 1);
  a.AddTransition(1, 1, 0, 1);
  a.AddFinal(1);
  return a;
}

// ---- Time travel ----

TEST(Snapshot, TreeTimeTravelKeepsPreEditAnswers) {
  Rng rng(101);
  UnrankedTree tree = RandomTree(50, 3, rng);
  TreeEnumerator e(tree, QuerySelectLabel(3, 1));

  SnapshotRef s0 = e.CurrentSnapshot();
  ASSERT_TRUE(s0);
  std::vector<Assignment> before = e.EnumerateAll();
  EXPECT_EQ(e.EnumerateAt(s0), before) << "current snapshot == current root";
  EXPECT_EQ(e.HasAnswerAt(s0), !before.empty());

  StaticEngine oracle(tree, QuerySelectLabel(3, 1));
  ScriptedEditor script(tree, 7, 3);
  for (int i = 0; i < 60; ++i) {
    Edit ed = script.NextEdit();
    e.document().ApplyEdit(ed);
    oracle.ApplyEdit(ed);
  }

  // The old snapshot still answers with the pre-edit assignment set and
  // still decodes to the pre-edit tree; the new snapshot tracks the head.
  EXPECT_EQ(e.EnumerateAt(s0), before);
  EXPECT_EQ(e.term().DecodeAt(s0.root()), tree);
  SnapshotRef s1 = e.CurrentSnapshot();
  EXPECT_GT(s1.epoch(), s0.epoch());
  EXPECT_EQ(e.EnumerateAt(s1), e.EnumerateAll());
  EXPECT_EQ(e.EnumerateAt(s1), oracle.EnumerateAll());
}

TEST(Snapshot, WordTimeTravelKeepsPreEditAnswers) {
  WordEnumerator e(ToWord("abab"), SomeBPosition());
  SnapshotRef s0 = e.CurrentSnapshot();
  std::vector<Assignment> before = e.EnumerateAll();
  ASSERT_EQ(before.size(), 2u);

  e.Replace(1, 0);  // abab -> aaab: kills the first answer
  e.Insert(0, 1);   // -> baaab
  e.Erase(4);       // -> baaa
  EXPECT_EQ(e.EnumerateAll().size(), 1u);

  // Stable position ids survive the edits, so the old snapshot's answers
  // compare exactly.
  EXPECT_EQ(e.EnumerateAt(s0), before);
  EXPECT_EQ(e.EnumerateAt(e.CurrentSnapshot()), e.EnumerateAll());
}

// Every committed version can be pinned and all pins stay simultaneously
// readable; a version's answers match a StaticEngine replayed to the same
// edit (snapshot epochs count publishes: the constructor publishes epoch 0,
// edit k publishes epoch k).
TEST(Snapshot, EveryVersionRemainsReadableAgainstOracle) {
  Rng rng(103);
  UnrankedTree tree = RandomTree(40, 3, rng);
  TreeEnumerator e(tree, QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle(tree, QueryMarkedAncestor(3, 1, 2));
  ScriptedEditor script(tree, 17, 3);

  std::vector<SnapshotRef> pins;
  std::vector<std::vector<Assignment>> expected;
  pins.push_back(e.CurrentSnapshot());
  expected.push_back(oracle.EnumerateAll());
  for (int k = 1; k <= 25; ++k) {
    Edit ed = script.NextEdit();
    e.document().ApplyEdit(ed);
    oracle.ApplyEdit(ed);
    pins.push_back(e.CurrentSnapshot());
    expected.push_back(oracle.EnumerateAll());
    EXPECT_EQ(pins.back().epoch(), static_cast<uint64_t>(k));
  }
  // All 26 versions are pinned at once; check them newest-first so stale
  // reads would surface as mismatches against the already-checked head.
  for (size_t k = pins.size(); k-- > 0;) {
    EXPECT_EQ(e.EnumerateAt(pins[k]), expected[k]) << "version " << k;
  }
}

// ---- Cursors pin their snapshot ----

TEST(Snapshot, CursorCoOwnsThePin) {
  Rng rng(107);
  UnrankedTree tree = RandomTree(40, 3, rng);
  TreeEnumerator e(tree, QuerySelectLabel(3, 1));
  std::vector<Assignment> before = e.EnumerateAll();

  SnapshotRef s0 = e.CurrentSnapshot();
  std::unique_ptr<Engine::Cursor> cur = e.MakeCursorAt(std::move(s0));
  ASSERT_NE(cur, nullptr);

  // Consume half, then edit: the cursor's snapshot is pinned by the cursor
  // alone (the ref was moved in), so the remaining answers are still the
  // pre-edit ones.
  std::vector<Assignment> got;
  Assignment a;
  for (size_t i = 0; i < before.size() / 2; ++i) {
    ASSERT_TRUE(cur->Next(&a));
    got.push_back(a);
  }
  ScriptedEditor script(tree, 23, 3);
  for (int i = 0; i < 30; ++i) e.document().ApplyEdit(script.NextEdit());
  while (cur->Next(&a)) got.push_back(a);
  // Cursor emission order differs from EnumerateAll's; compare as sets.
  std::sort(got.begin(), got.end());
  std::sort(before.begin(), before.end());
  EXPECT_EQ(got, before);
}

// ---- Lifecycle accounting ----

TEST(Snapshot, PublishAndRetireCountsAreExact) {
  Rng rng(109);
  UnrankedTree tree = RandomTree(30, 3, rng);
  DynamicDocument doc(tree, 3);
  doc.Register(QuerySelectLabel(3, 1));

  // The constructor published version 0; nothing is retired yet.
  EXPECT_EQ(doc.snapshots_published(), 1u);
  EXPECT_EQ(doc.live_snapshots(), 1u);

  // Each non-batch edit publishes once. The previous version retires at
  // publish and is drained at the *next* edit, so steady state holds the
  // current version plus the just-retired one.
  std::vector<NodeId> leaves = tree.PreorderNodes();
  doc.Relabel(leaves[0], 1);
  EXPECT_EQ(doc.snapshots_published(), 2u);
  EXPECT_EQ(doc.live_snapshots(), 2u);
  doc.Relabel(leaves[0], 2);
  EXPECT_EQ(doc.snapshots_published(), 3u);
  EXPECT_EQ(doc.live_snapshots(), 2u);

  // A held ref keeps its version alive across edits...
  {
    SnapshotRef held = doc.CurrentSnapshot();
    doc.Relabel(leaves[0], 0);
    doc.Relabel(leaves[0], 1);
    EXPECT_EQ(doc.live_snapshots(), 3u);  // current + just-retired + held
  }
  // ... and two more edits after release drain it (release retires; the
  // next edit drains; the edit itself retires its predecessor).
  doc.Relabel(leaves[0], 2);
  doc.Relabel(leaves[0], 0);
  EXPECT_EQ(doc.live_snapshots(), 2u);

  // A batch publishes once per commit, not once per edit.
  uint64_t published = doc.snapshots_published();
  doc.BeginBatch();
  for (Label l = 0; l < 3; ++l) doc.Relabel(leaves[1], l);
  doc.CommitBatch();
  EXPECT_EQ(doc.snapshots_published(), published + 1);
}

// ---- Epoch gate ----

// A query registered after edits were applied has no derived state for
// earlier versions: reading an older snapshot through it must trip the
// TREENUM_CHECK gate instead of returning garbage.
TEST(SnapshotDeathTest, RejectsSnapshotsPredatingRegistration) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(113);
  UnrankedTree tree = RandomTree(30, 3, rng);
  DynamicDocument doc(tree, 3);
  doc.Register(QuerySelectLabel(3, 1));

  SnapshotRef old_snap = doc.CurrentSnapshot();
  std::vector<NodeId> nodes = tree.PreorderNodes();
  doc.Relabel(nodes[0], 1);
  doc.Relabel(nodes[0], 2);

  DynamicDocument::QueryHandle late = doc.Register(QueryMarkedAncestor(3, 1, 2));
  // The snapshot current at registration time (and later ones) work fine.
  EXPECT_EQ(doc.EnumerateAt(doc.CurrentSnapshot(), late),
            doc.pipeline(late).EnumerateAll());
  EXPECT_DEATH(doc.EnumerateAt(old_snap, late), "predates");
}

// ---- Steady-state allocation-freeness ----

// Path-copying must not cost the edit path its zero-allocation steady
// state: retired versions feed the free list the next edit's spine copies
// consume, and Snapshot objects recycle through the pool — including when
// a reader pins and releases a snapshot around every edit.
TEST(Snapshot, SteadyStatePathCopyingEditsAreAllocationFree) {
  ASSERT_TRUE(AllocGaugeActive())
      << "snapshot_test must link treenum_alloc_gauge";

  Rng rng(127);
  UnrankedTree tree = RandomTree(150, 3, rng);
  DynamicDocument doc(tree, 3);
  doc.Register(QueryMarkedAncestor(3, 1, 2));

  std::vector<NodeId> targets = tree.PreorderNodes();
  auto run_pass = [&] {
    for (NodeId n : targets) {
      for (Label l = 0; l < 3; ++l) {
        SnapshotRef pin = doc.CurrentSnapshot();
        doc.Relabel(n, l);
        pin.Reset();
      }
    }
  };
  int pass = 0;
  for (; pass < 8; ++pass) {
    AllocGaugeScope warm;
    run_pass();
    if (warm.allocs() == 0) break;
  }
  ASSERT_LT(pass, 8) << "snapshot churn failed to reach a steady state";
  uint64_t copies = doc.term().path_copies();
  uint64_t recycled = doc.term().nodes_recycled();
  AllocGaugeScope gauge;
  run_pass();
  EXPECT_EQ(gauge.allocs(), 0u)
      << "steady-state path-copying relabels with snapshot churn allocated";
  // Every edit path-copied its spine (the current snapshot always pins the
  // published root) and the copies were fed by recycled node versions.
  EXPECT_GT(doc.term().path_copies(), copies);
  EXPECT_GT(doc.term().nodes_recycled(), recycled);
}

}  // namespace
}  // namespace treenum
