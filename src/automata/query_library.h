// A library of MSO-expressible queries built directly as unranked stepwise
// TVAs (the paper takes automata as input; full MSO-to-automaton translation
// is nonelementary, see §1). These are the workloads used by the examples,
// tests and benchmarks.
#ifndef TREENUM_AUTOMATA_QUERY_LIBRARY_H_
#define TREENUM_AUTOMATA_QUERY_LIBRARY_H_

#include "automata/unranked_tva.h"

namespace treenum {

/// Φ(x) := label(x) = a. One free first-order variable; answers are all
/// a-labeled nodes.
UnrankedTva QuerySelectLabel(size_t num_labels, Label a);

/// Φ(x) := true. Answers are all nodes (stress test: |output| = |T|).
UnrankedTva QuerySelectAll(size_t num_labels);

/// Φ(x) := label(x) = special ∧ ∃y (label(y) = marked ∧ y proper ancestor
/// of x). The existential marked-ancestor query of §9.
UnrankedTva QueryMarkedAncestor(size_t num_labels, Label marked,
                                Label special);

/// Φ(x, y) := label(x) = a ∧ label(y) = b ∧ y proper descendant of x.
/// Two free first-order variables (quadratically many answers possible).
UnrankedTva QueryDescendantPairs(size_t num_labels, Label a, Label b);

/// Boolean query (no free variables): does the tree contain an a-node?
/// The only satisfying assignment (if any) is the empty one.
UnrankedTva QueryContainsLabel(size_t num_labels, Label a);

/// Φ(X) := X is exactly the set of a-labeled leaves... more precisely, a
/// second-order variable query: X may be any non-empty set of a-labeled
/// nodes. Assignments have unbounded size (exercises the |S| factor in the
/// delay bound).
UnrankedTva QueryAnySubsetOfLabel(size_t num_labels, Label a);

/// A family with tunable nondeterminism for the combined-complexity
/// experiment: Φ(x) := x has an a-labeled ancestor at proper distance
/// exactly k above it. The natural nondeterministic stepwise automaton has
/// O(k) states; determinizing blows up exponentially in k.
UnrankedTva QueryAncestorAtDistance(size_t num_labels, Label a, size_t k);

/// Φ(x) := label(x) = b ∧ label(parent(x)) = a (the XPath child axis).
UnrankedTva QueryChildOfLabel(size_t num_labels, Label a, Label b);

/// Φ(x) := x is a leaf.
UnrankedTva QuerySelectLeaves(size_t num_labels);

/// Φ(x, y) := label(x) = a ∧ label(y) = b ∧ y is the immediate right
/// sibling of x (exercises the sibling order, which stepwise automata read
/// natively).
UnrankedTva QueryNextSibling(size_t num_labels, Label a, Label b);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_QUERY_LIBRARY_H_
