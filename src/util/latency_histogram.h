// Lock-free log-bucketed latency histogram for serving benchmarks.
//
// HdrHistogram-style bucketing: values below 2^kSubBucketBits are recorded
// exactly (one bucket per value); above that, each power-of-two octave is
// split into 2^kSubBucketBits linear sub-buckets, so the relative
// quantization error is bounded by 2^-(kSubBucketBits+1) (~1.6% at the
// default 5 sub-bucket bits) across the full uint64 range. The whole
// histogram is a fixed 1920-counter array — no allocation after
// construction, no rescaling, no locks.
//
// Concurrency: Record() is a relaxed atomic increment, safe from any number
// of threads simultaneously (this is what "lock-free" buys: shard workers
// and reader threads record into shared or private histograms without a
// mutex on the latency path). The intended high-throughput pattern is still
// one histogram per thread + MergeFrom() at report time — a shared
// histogram is correct but bounces cache lines. Quantile/count/etc. taken
// concurrently with recording see some consistent-enough prefix (each
// counter individually atomic); exact totals require external quiescence,
// which the serving benchmark gets by draining the server first.
#ifndef TREENUM_UTIL_LATENCY_HISTOGRAM_H_
#define TREENUM_UTIL_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace treenum {

/// Fixed-size log-bucketed histogram of uint64 values (typically
/// nanoseconds). See the file comment for the bucketing scheme and the
/// concurrency contract.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave = 2^kSubBucketBits; also the width of
  /// the exact region [0, 2^kSubBucketBits).
  static constexpr size_t kSubBucketBits = 5;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;
  /// Octaves kSubBucketBits..63 each contribute kSubBuckets buckets on top
  /// of the kSubBuckets exact small-value buckets.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value. Any thread, lock-free (relaxed fetch_add).
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Adds every count of `other` into this histogram (both may keep
  /// recording, but totals are only exact under quiescence).
  void MergeFrom(const LatencyHistogram& other);

  /// Total number of recorded values.
  uint64_t count() const { return total_.load(std::memory_order_relaxed); }

  /// Nearest-rank quantile (q in [0, 1]): the representative value of the
  /// bucket containing the ceil(q * count)-th smallest recording (bucket
  /// midpoint, so the result is within the quantization bound of the true
  /// sample quantile). Returns 0 when empty.
  uint64_t Quantile(double q) const;

  /// Upper bound of the highest non-empty bucket (0 when empty).
  uint64_t MaxBound() const;

  /// Zeroes every counter (not concurrency-safe against Record).
  void Reset();

  /// Bucket index of a value (exposed for the oracle tests).
  static size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    // Highest set bit; v >= kSubBuckets so exp >= kSubBucketBits.
    const int exp = 63 - __builtin_clzll(v);
    const uint64_t top = v >> (exp - static_cast<int>(kSubBucketBits));
    return (static_cast<size_t>(exp) - kSubBucketBits + 1) * kSubBuckets +
           static_cast<size_t>(top - kSubBuckets);
  }

  /// Inclusive lower bound of bucket `i`'s value range.
  static uint64_t BucketLow(size_t i) {
    if (i < kSubBuckets) return static_cast<uint64_t>(i);
    const size_t octave = i / kSubBuckets;  // >= 1
    const uint64_t top = kSubBuckets + (i % kSubBuckets);
    return top << (octave - 1);
  }

  /// Exclusive upper bound of bucket `i`'s value range (saturated for the
  /// final bucket, whose true bound is 2^64).
  static uint64_t BucketHigh(size_t i) {
    if (i < kSubBuckets) return static_cast<uint64_t>(i) + 1;
    if (i == kNumBuckets - 1) return ~uint64_t{0};
    const size_t octave = i / kSubBuckets;
    const uint64_t top = kSubBuckets + (i % kSubBuckets);
    return (top + 1) << (octave - 1);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> total_{0};
};

}  // namespace treenum

#endif  // TREENUM_UTIL_LATENCY_HISTOGRAM_H_
