#include "trees/assignment.h"

#include <algorithm>

namespace treenum {

Assignment::Assignment(std::vector<Singleton> singletons)
    : singletons_(std::move(singletons)) {
  Normalize();
}

void Assignment::Normalize() {
  std::sort(singletons_.begin(), singletons_.end());
  singletons_.erase(std::unique(singletons_.begin(), singletons_.end()),
                    singletons_.end());
}

Assignment Assignment::DisjointUnion(const Assignment& a,
                                     const Assignment& b) {
  Assignment out;
  out.singletons_.resize(a.size() + b.size());
  std::merge(a.singletons_.begin(), a.singletons_.end(),
             b.singletons_.begin(), b.singletons_.end(),
             out.singletons_.begin());
  return out;
}

std::string Assignment::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < singletons_.size(); ++i) {
    if (i) s += ", ";
    s += "<X" + std::to_string(singletons_[i].var) + ":" +
         std::to_string(singletons_[i].node) + ">";
  }
  s += "}";
  return s;
}

size_t AssignmentHash::operator()(const Assignment& a) const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Singleton& s : a.singletons()) {
    uint64_t v = (static_cast<uint64_t>(s.var) << 32) | s.node;
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace treenum
