// Serving-layer workload generation, shared by bench_serving and
// serving_test.
//
// CommandScript is the multi-tenant cousin of the test suite's mirror-tree
// ScriptedEditor: it owns a mirror UnrankedTree per document and emits a
// reproducible mixed stream of serving commands — leaf edits, structural
// subtree moves/deletes, and query register/unregister churn markers — each
// already validated against the mirror, so the same seed drives any number
// of replica documents (S=1 vs S=8 determinism) or a document plus an
// oracle in lockstep with identical NodeIds.
//
// PoissonArrivals is the open-loop clock: exponential inter-arrival gaps at
// a fixed target rate, independent of service times, so queueing delay
// shows up in the recorded latencies instead of being hidden by
// closed-loop back-pressure.
#ifndef TREENUM_SERVING_WORKLOAD_H_
#define TREENUM_SERVING_WORKLOAD_H_

#include <cstdint>
#include <random>
#include <vector>

#include "core/engine.h"
#include "serving/shard_server.h"
#include "trees/unranked_tree.h"
#include "util/random.h"

namespace treenum {
namespace serving {

/// Mix knobs for one document's command stream.
struct WorkloadOptions {
  size_t num_labels = 3;
  /// Fraction of commands that are whole-subtree transactions.
  double structural_fraction = 0.0;
  /// Fraction of commands that are query churn (alternating register /
  /// unregister markers; the submitter decides which query to register).
  double churn_fraction = 0.0;
  /// Structural deletes are suppressed when they would shrink the
  /// document below this size.
  size_t min_size = 8;
};

/// One generated command. kRegister/kUnregister are churn *markers*: the
/// submitter maps them to RegisterQuery/UnregisterQuery with a query and
/// handle of its choosing (the script only sequences them, alternating so
/// at most one churn registration is outstanding).
struct DocCommand {
  enum class Kind : uint8_t { kEdit, kStructural, kRegister, kUnregister };
  Kind kind = Kind::kEdit;
  Edit edit{};
  StructuralOp structural{};
};

/// Deterministic per-document command generator over a mirror tree.
class CommandScript {
 public:
  CommandScript(UnrankedTree mirror, uint64_t seed,
                const WorkloadOptions& opts);

  /// Generates the next command and applies it to the mirror, so emitted
  /// NodeIds are valid on every document fed the same command sequence.
  DocCommand Next();

  /// The mirror after all emitted commands (reference state for oracles).
  const UnrankedTree& mirror() const { return mirror_; }

 private:
  Edit NextEdit();
  bool NextStructural(StructuralOp* op);
  NodeId Pick();
  /// True iff `u` lies in the subtree rooted at `v` (parent walk).
  bool InSubtree(NodeId u, NodeId v) const;

  UnrankedTree mirror_;
  Rng rng_;
  WorkloadOptions opts_;
  std::vector<NodeId> pool_;  ///< Alive-ish node pool, purged lazily.
  bool churn_live_ = false;   ///< A churn registration is outstanding.
};

/// Open-loop arrival clock: exponential gaps at `rate_per_sec`.
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_sec, uint64_t seed)
      : rng_(seed), exp_(rate_per_sec) {}

  /// Nanoseconds until the next arrival.
  uint64_t NextGapNs() {
    double gap_s = exp_(rng_.engine());
    return static_cast<uint64_t>(gap_s * 1e9);
  }

 private:
  Rng rng_;
  std::exponential_distribution<double> exp_;
};

}  // namespace serving
}  // namespace treenum

#endif  // TREENUM_SERVING_WORKLOAD_H_
