#include "baseline/static_engine.h"

namespace treenum {

StaticEngine::StaticEngine(UnrankedTree tree, UnrankedTva query)
    : RecomputeEngineBase(std::move(tree)), query_(std::move(query)) {
  Refresh();
}

UpdateStats StaticEngine::Refresh() {
  inner_ = std::make_unique<TreeEnumerator>(tree_, query_);
  UpdateStats stats;
  stats.rebuilt_size = tree_.size();
  return stats;
}

}  // namespace treenum
