#include "falgebra/update.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace treenum {
namespace {

void ExpectSync(const DynamicEncoding& enc) {
  ASSERT_EQ(enc.term().Validate(), "");
  UnrankedTree decoded = enc.term().Decode();
  EXPECT_TRUE(decoded == enc.tree())
      << "term decodes to " << decoded.ToString() << " but tree is "
      << enc.tree().ToString();
  // Leaf bijection intact.
  for (NodeId n : enc.tree().PreorderNodes()) {
    TermNodeId leaf = enc.LeafOf(n);
    ASSERT_NE(leaf, kNoTerm);
    EXPECT_EQ(enc.term().node(leaf).tree_node, n);
  }
}

TEST(Update, RelabelLeafAndInternal) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b) (c (d)))"), 5);
  NodeId root = enc.tree().root();
  NodeId c = enc.tree().children(root)[1];
  UpdateResult r1 = enc.Relabel(c, 4);
  EXPECT_FALSE(r1.changed_bottom_up.empty());
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().label(c), 4u);
  UpdateResult r2 = enc.Relabel(root, 3);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(d (b) (e (d)))");
  (void)r2;
}

TEST(Update, InsertRightSiblingOfLeaf) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b) (c))"), 5);
  NodeId b = enc.tree().children(enc.tree().root())[0];
  enc.InsertRightSibling(b, 4);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (b) (e) (c))");
}

TEST(Update, InsertRightSiblingOfInternal) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c) (d)) (e))"), 6);
  NodeId b = enc.tree().children(enc.tree().root())[0];
  enc.InsertRightSibling(b, 5);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (b (c) (d)) (f) (e))");
}

TEST(Update, InsertFirstChildOfLeaf) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b))"), 5);
  NodeId b = enc.tree().children(enc.tree().root())[0];
  enc.InsertFirstChild(b, 2);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (b (c)))");
}

TEST(Update, InsertFirstChildOfInternal) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b) (c))"), 5);
  enc.InsertFirstChild(enc.tree().root(), 3);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (d) (b) (c))");
}

TEST(Update, InsertFirstChildWhenFirstChildIsInternal) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c)) (d))"), 5);
  enc.InsertFirstChild(enc.tree().root(), 4);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (e) (b (c)) (d))");
}

TEST(Update, DeleteLeafWithSiblings) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b) (c) (d))"), 5);
  NodeId c = enc.tree().children(enc.tree().root())[1];
  UpdateResult r = enc.DeleteLeaf(c);
  EXPECT_EQ(r.freed.size(), 2u);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (b) (d))");
}

TEST(Update, DeleteSoleChildClosesHole) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c)) (d))"), 5);
  NodeId b = enc.tree().children(enc.tree().root())[0];
  NodeId c = enc.tree().children(b)[0];
  enc.DeleteLeaf(c);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (b) (d))");
  // b's symbol must now be a tree leaf again.
  EXPECT_TRUE(enc.term().alphabet().IsTreeLeaf(
      enc.term().node(enc.LeafOf(b)).label));
}

TEST(Update, DeleteDeepSoleChildChain) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c (d (e)))))"), 5);
  // Repeatedly delete the deepest node.
  for (int i = 0; i < 4; ++i) {
    NodeId cur = enc.tree().root();
    while (!enc.tree().IsLeaf(cur)) cur = enc.tree().children(cur)[0];
    enc.DeleteLeaf(cur);
    ExpectSync(enc);
  }
  EXPECT_EQ(enc.tree().ToString(), "(a)");
}

TEST(Update, InsertManyKeepsBalance) {
  DynamicEncoding enc(UnrankedTree(0), 3);
  Rng rng(41);
  NodeId cur = enc.tree().root();
  // Grow a path by always inserting as first child of the deepest node —
  // the adversarial case for balance.
  for (int i = 0; i < 2000; ++i) {
    NodeId u;
    enc.InsertFirstChild(cur, static_cast<Label>(rng.Index(3)), &u);
    cur = u;
  }
  EXPECT_TRUE(enc.CheckBalanced());
  uint32_t h = enc.term().node(enc.term().root()).height;
  EXPECT_LE(h, MaxAllowedHeight(2001));
  ExpectSync(enc);
}

TEST(Update, RandomEditScriptProperty) {
  Rng rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    DynamicEncoding enc(RandomTree(1 + rng.Index(30), 3, rng), 3);
    for (int step = 0; step < 120; ++step) {
      std::vector<NodeId> nodes = enc.tree().PreorderNodes();
      NodeId n = nodes[rng.Index(nodes.size())];
      switch (rng.Index(4)) {
        case 0:
          enc.Relabel(n, static_cast<Label>(rng.Index(3)));
          break;
        case 1:
          enc.InsertFirstChild(n, static_cast<Label>(rng.Index(3)));
          break;
        case 2:
          if (n != enc.tree().root()) {
            enc.InsertRightSibling(n, static_cast<Label>(rng.Index(3)));
          }
          break;
        case 3:
          if (n != enc.tree().root() && enc.tree().IsLeaf(n)) {
            enc.DeleteLeaf(n);
          }
          break;
      }
      if (step % 20 == 19) ExpectSync(enc);
    }
    ExpectSync(enc);
    EXPECT_TRUE(enc.CheckBalanced());
  }
}

TEST(Update, GrowAndShrinkToSingleton) {
  DynamicEncoding enc(UnrankedTree(0), 2);
  std::vector<NodeId> inserted;
  NodeId root = enc.tree().root();
  for (int i = 0; i < 50; ++i) {
    NodeId u;
    enc.InsertFirstChild(root, 1, &u);
    inserted.push_back(u);
  }
  ExpectSync(enc);
  // Delete in insertion order (each is a leaf: children of root).
  for (NodeId u : inserted) enc.DeleteLeaf(u);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().size(), 1u);
}

TEST(Update, ChangedListIsChildrenFirst) {
  Rng rng(48);
  DynamicEncoding enc(RandomTree(50, 2, rng), 2);
  for (int step = 0; step < 40; ++step) {
    std::vector<NodeId> nodes = enc.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    UpdateResult r = enc.InsertFirstChild(n, 1);
    // children-first: when id appears, none of its descendants may appear
    // later in the list.
    for (size_t i = 0; i < r.changed_bottom_up.size(); ++i) {
      for (size_t j = i + 1; j < r.changed_bottom_up.size(); ++j) {
        // j must not be an ancestor-before-descendant violation: check that
        // changed[i] is not a proper ancestor of changed[j].
        TermNodeId x = r.changed_bottom_up[j];
        while (x != kNoTerm && x != r.changed_bottom_up[i]) {
          x = enc.term().node(x).parent;
        }
        EXPECT_EQ(x, kNoTerm)
            << "ancestor " << r.changed_bottom_up[i]
            << " appears before descendant " << r.changed_bottom_up[j];
      }
    }
  }
}

}  // namespace
}  // namespace treenum
