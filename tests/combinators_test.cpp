#include "automata/combinators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "automata/query_library.h"
#include "baseline/naive_engine.h"
#include "core/tree_enumerator.h"
#include "test_util.h"

namespace treenum {
namespace {

std::vector<Assignment> SetUnion(std::vector<Assignment> a,
                                 const std::vector<Assignment>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

std::vector<Assignment> SetIntersection(const std::vector<Assignment>& a,
                                        const std::vector<Assignment>& b) {
  std::vector<Assignment> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(Combinators, UnionOfLabelSelections) {
  Rng rng(401);
  UnrankedTva qa = QuerySelectLabel(3, 0);
  UnrankedTva qb = QuerySelectLabel(3, 1);
  UnrankedTva u = UnionTva(qa, qb);
  for (int trial = 0; trial < 8; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(40), 3, rng);
    TreeEnumerator e(t, u);
    EXPECT_EQ(e.EnumerateAll(),
              SetUnion(MaterializeAssignments(t, qa),
                       MaterializeAssignments(t, qb)));
  }
}

TEST(Combinators, IntersectionSelectsBoth) {
  // label(x) = special AND x has a marked ancestor — intersecting
  // select-label with marked-ancestor must equal marked-ancestor itself.
  Rng rng(409);
  UnrankedTva qa = QuerySelectLabel(3, 2);
  UnrankedTva qb = QueryMarkedAncestor(3, 1, 2);
  UnrankedTva i = IntersectTva(qa, qb);
  for (int trial = 0; trial < 8; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(40), 3, rng);
    TreeEnumerator e(t, i);
    EXPECT_EQ(e.EnumerateAll(), MaterializeAssignments(t, qb));
  }
}

TEST(Combinators, RandomUnionProperty) {
  Rng rng(419);
  for (int trial = 0; trial < 12; ++trial) {
    UnrankedTva qa = RandomUnrankedTva(rng, 2, 2, 1, 3, 6);
    UnrankedTva qb = RandomUnrankedTva(rng, 3, 2, 1, 3, 7);
    UnrankedTva u = UnionTva(qa, qb);
    UnrankedTree t = RandomTree(1 + rng.Index(20), 2, rng);
    EXPECT_EQ(MaterializeAssignments(t, u),
              SetUnion(MaterializeAssignments(t, qa),
                       MaterializeAssignments(t, qb)))
        << "trial " << trial;
  }
}

TEST(Combinators, RandomIntersectionProperty) {
  Rng rng(421);
  for (int trial = 0; trial < 12; ++trial) {
    UnrankedTva qa = RandomUnrankedTva(rng, 2, 2, 1, 4, 6);
    UnrankedTva qb = RandomUnrankedTva(rng, 2, 2, 1, 4, 6);
    UnrankedTva i = IntersectTva(qa, qb);
    UnrankedTree t = RandomTree(1 + rng.Index(15), 2, rng);
    EXPECT_EQ(MaterializeAssignments(t, i),
              SetIntersection(MaterializeAssignments(t, qa),
                              MaterializeAssignments(t, qb)))
        << "trial " << trial;
  }
}

TEST(Combinators, CombinedQueryThroughFullPipelineWithUpdates) {
  Rng rng(431);
  UnrankedTva q = IntersectTva(QuerySelectLabel(3, 2),
                               QueryMarkedAncestor(3, 1, 2));
  UnrankedTree t = RandomTree(20, 3, rng);
  TreeEnumerator e(t, q);
  NaiveEngine oracle(t, q);
  for (int step = 0; step < 30; ++step) {
    std::vector<NodeId> nodes = oracle.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    Label l = static_cast<Label>(rng.Index(3));
    e.Relabel(n, l);
    oracle.Relabel(n, l);
    ASSERT_EQ(e.EnumerateAll(), oracle.results()) << "step " << step;
  }
}

TEST(Combinators, EachVariableOnceSemantics) {
  UnrankedTva sing = EachVariableOnce(2, 2);
  UnrankedTree t = UnrankedTree::Parse("(a (b) (b))");
  std::vector<Assignment> res = MaterializeAssignments(t, sing);
  // Each of x, y independently picks one of the 3 nodes (they may share a
  // node — masks only enforce "exactly once" per variable): 3 × 3 = 9.
  EXPECT_EQ(res.size(), 9u);
  for (const Assignment& a : res) EXPECT_EQ(a.size(), 2u);
}

TEST(Combinators, MakeFirstOrderRestrictsToSingletons) {
  // QueryAnySubsetOfLabel has answers of all sizes; the first-order
  // restriction must keep exactly the size-1 ones (= QuerySelectLabel).
  Rng rng(443);
  UnrankedTva q = MakeFirstOrder(QueryAnySubsetOfLabel(2, 1));
  UnrankedTva ref = QuerySelectLabel(2, 1);
  for (int trial = 0; trial < 8; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(30), 2, rng);
    TreeEnumerator e(t, q);
    EXPECT_EQ(e.EnumerateAll(), MaterializeAssignments(t, ref));
  }
}

TEST(Combinators, AssignmentsToTuples) {
  Rng rng(449);
  UnrankedTree t = RandomTree(25, 2, rng);
  UnrankedTva q = QueryDescendantPairs(2, 0, 1);
  TreeEnumerator e(t, q);
  std::vector<Assignment> res = e.EnumerateAll();
  std::vector<std::vector<NodeId>> tuples = AssignmentsToTuples(res, 2);
  ASSERT_EQ(tuples.size(), res.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_EQ(tuples[i].size(), 2u);
    EXPECT_EQ(t.label(tuples[i][0]), 0u);  // x is the a-node
    EXPECT_EQ(t.label(tuples[i][1]), 1u);  // y is the b-node
  }
}

TEST(Combinators, WvaUnionProperty) {
  Rng rng(433);
  for (int trial = 0; trial < 12; ++trial) {
    Wva a(2, 2, 1), b(2, 2, 1);
    for (Wva* w : {&a, &b}) {
      w->AddInitial(0);
      for (int i = 0; i < 6; ++i) {
        w->AddTransition(static_cast<State>(rng.Index(2)),
                         static_cast<Label>(rng.Index(2)),
                         static_cast<VarMask>(rng.Index(2)),
                         static_cast<State>(rng.Index(2)));
      }
      w->AddFinal(static_cast<State>(rng.Index(2)));
    }
    Wva u = UnionWva(a, b);
    Word word;
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      word.push_back(static_cast<Label>(rng.Index(2)));
    }
    EXPECT_EQ(u.BruteForceAssignments(word),
              SetUnion(a.BruteForceAssignments(word),
                       b.BruteForceAssignments(word)));
  }
}

TEST(Combinators, WvaIntersectionProperty) {
  Rng rng(439);
  for (int trial = 0; trial < 12; ++trial) {
    Wva a(2, 2, 1), b(2, 2, 1);
    for (Wva* w : {&a, &b}) {
      w->AddInitial(0);
      for (int i = 0; i < 7; ++i) {
        w->AddTransition(static_cast<State>(rng.Index(2)),
                         static_cast<Label>(rng.Index(2)),
                         static_cast<VarMask>(rng.Index(2)),
                         static_cast<State>(rng.Index(2)));
      }
      w->AddFinal(static_cast<State>(rng.Index(2)));
    }
    Wva inter = IntersectWva(a, b);
    Word word;
    for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
      word.push_back(static_cast<Label>(rng.Index(2)));
    }
    EXPECT_EQ(inter.BruteForceAssignments(word),
              SetIntersection(a.BruteForceAssignments(word),
                              b.BruteForceAssignments(word)));
  }
}

}  // namespace
}  // namespace treenum
