// Reference semantics of assignment circuits (Definition 3.1/3.3): explicit
// materialization of captured sets. Exponential-size in general — this is
// the correctness oracle for the enumeration algorithms and the engine used
// by the naive recompute baseline, not a production path.
#ifndef TREENUM_CIRCUIT_ASSIGNMENT_CIRCUIT_H_
#define TREENUM_CIRCUIT_ASSIGNMENT_CIRCUIT_H_

#include <set>
#include <vector>

#include "circuit/circuit.h"
#include "trees/assignment.h"

namespace treenum {

/// Materializes S(γ(id, q)) as an explicit, duplicate-free, sorted set.
/// For a ⊤-gate this is {∅}; for ⊥ it is ∅.
std::set<Assignment> MaterializeGamma(const AssignmentCircuit& circuit,
                                      TermNodeId id, State q);

/// Materializes the satisfying assignments represented by the circuit:
/// the union of S(γ(root, q)) over final states q, including the empty
/// assignment iff some final 0-state's root gate is ⊤.
std::vector<Assignment> MaterializeSatisfying(const AssignmentCircuit& circuit,
                                              const std::vector<uint8_t>& kind);

}  // namespace treenum

#endif  // TREENUM_CIRCUIT_ASSIGNMENT_CIRCUIT_H_
