// Set circuits (§3 of the paper), specialized to the shape produced by the
// construction of Lemma 3.7: a complete structured DNNF whose v-tree is the
// input term, with one box per term node.
//
// Gate inventory per box B_n (n a term node, A = (Q, ι, δ, F) homogenized):
//   * for each state q, γ(n, q) is ⊥, ⊤, or a ∪-gate (at most |Q| ∪-gates);
//   * ×-gates д^{q1,q2} with left input γ(left(n), q1) and right input
//     γ(right(n), q2), shared across result states (≤ w² per box);
//   * var-gates ⟨Y : n⟩ in leaf boxes, shared across states (Svar injective).
//
// Wires therefore go only (same box) var/×-gate → ∪-gate, child-box ∪-gate →
// ×-gate, and — through the ⊤-collapse rule that keeps ⊤-gates from being
// inputs — child-box ∪-gate → ∪-gate. The last kind forms the long ∪-chains
// that the jump index of §6 exists to skip.
//
// Storage layout (arena/CSR): boxes own no heap memory. Per-state data
// (γ kinds, dense ∪-gate indices) and per-∪-gate data (states, CSR end
// offsets) live in fixed-stride arrays indexed by box id; the variable-
// length wire lists live in flat SpanPools with per-box (offset, len)
// spans that are recycled across box refreshes (see circuit/arena.h).
// `box(id)` returns a cheap Box *view* — invalidated by the next rebuild.
#ifndef TREENUM_CIRCUIT_CIRCUIT_H_
#define TREENUM_CIRCUIT_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "automata/binary_tva.h"
#include "circuit/arena.h"
#include "falgebra/term.h"

namespace treenum {

enum class GateKind : uint8_t { kBot = 0, kTop = 1, kUnion = 2 };

/// A ×-gate: left input γ(left child, left_state), right input
/// γ(right child, right_state); both are ∪-gates (never ⊤/⊥ by collapse).
struct CrossGate {
  State left_state;
  State right_state;
};

/// A ∪→∪ wire created by ⊤-collapse: side 0 = left child box, 1 = right.
struct ChildUnionInput {
  uint8_t side;
  State state;
};

inline constexpr int32_t kNoGate = -1;

/// Widest automaton the 32-bit arena offsets support: w² ×-gate ids per box
/// must fit in uint32_t. Enforced by TREENUM_CHECK at circuit construction
/// (the old int16_t/uint16_t layout overflowed silently long before this).
inline constexpr size_t kMaxCircuitWidth = 65535;

/// Per-∪-gate CSR end offsets into the owning box's pool spans; gate u's
/// inputs occupy [ends[u-1].x_end, ends[u].x_end) with gate -1 ending at 0.
struct GateEnds {
  uint32_t cross_end;
  uint32_t child_end;
  uint32_t var_end;
};

/// A read-only view of one box (= one term node), resolving the arena
/// spans to raw pointers once. Invalidated by the next RebuildBox/FreeBox.
class Box {
 public:
  /// γ(n, q) kind (size of the state axis = automaton state count).
  GateKind gamma(State q) const { return gamma_[q]; }
  /// Dense index of γ(n, q) among this box's ∪-gates, or kNoGate.
  int32_t union_idx(State q) const { return union_idx_[q]; }
  /// Dense ∪-gate index -> state.
  State union_state(size_t u) const { return union_states_[u]; }
  size_t num_unions() const { return num_unions_; }

  /// Local ×-gates (internal boxes only), deduplicated by (q1, q2).
  Span<CrossGate> cross_gates() const {
    return Span<CrossGate>(cross_gates_, num_cross_gates_);
  }
  const CrossGate& cross_gate(size_t c) const { return cross_gates_[c]; }
  size_t num_cross_gates() const { return num_cross_gates_; }

  /// Per ∪-gate: local ×-gate ids feeding it.
  Span<uint32_t> cross_inputs(size_t u) const {
    uint32_t b = u == 0 ? 0 : ends_[u - 1].cross_end;
    return Span<uint32_t>(cross_in_ + b, ends_[u].cross_end - b);
  }
  /// Per ∪-gate: child-box ∪-gate inputs created by ⊤-collapse.
  Span<ChildUnionInput> child_union_inputs(size_t u) const {
    uint32_t b = u == 0 ? 0 : ends_[u - 1].child_end;
    return Span<ChildUnionInput>(child_in_ + b, ends_[u].child_end - b);
  }
  /// Per ∪-gate: indices into var_masks().
  Span<uint32_t> var_inputs(size_t u) const {
    uint32_t b = u == 0 ? 0 : ends_[u - 1].var_end;
    return Span<uint32_t>(var_in_ + b, ends_[u].var_end - b);
  }

  /// Distinct variable masks of this (leaf) box's var-gates.
  Span<VarMask> var_masks() const {
    return Span<VarMask>(var_masks_, num_var_masks_);
  }
  VarMask var_mask(size_t v) const { return var_masks_[v]; }
  size_t num_var_masks() const { return num_var_masks_; }

  bool HasNonUnionInput(size_t u) const {
    return !cross_inputs(u).empty() || !var_inputs(u).empty();
  }

 private:
  friend class AssignmentCircuit;

  const GateKind* gamma_ = nullptr;
  const int32_t* union_idx_ = nullptr;
  const State* union_states_ = nullptr;
  const GateEnds* ends_ = nullptr;
  const CrossGate* cross_gates_ = nullptr;
  const uint32_t* cross_in_ = nullptr;
  const ChildUnionInput* child_in_ = nullptr;
  const uint32_t* var_in_ = nullptr;
  const VarMask* var_masks_ = nullptr;
  uint32_t num_unions_ = 0;
  uint32_t num_cross_gates_ = 0;
  uint32_t num_var_masks_ = 0;
};

/// The assignment circuit of a homogenized binary TVA on a term, maintained
/// incrementally: boxes are (re)computed per term node, bottom-up, into
/// arena-backed flat storage.
class AssignmentCircuit {
 public:
  /// `term`, `tva` and `kind` must outlive the circuit. `kind[q]` says
  /// whether state q is a 1-state (see HomogenizedTva).
  AssignmentCircuit(const Term* term, const BinaryTva* tva,
                    const std::vector<uint8_t>* kind);

  const Term& term() const { return *term_; }
  const BinaryTva& tva() const { return *tva_; }
  /// Width bound w: the automaton's state count.
  size_t width() const { return w_; }

  /// Builds all boxes bottom-up (preprocessing, O(|T| * |A|)).
  void BuildAll();

  /// Recomputes the box of `id` from its children's boxes (Lemma 7.3 step).
  /// Steady-state refreshes reuse the box's arena spans in place.
  void RebuildBox(TermNodeId id);

  /// Drops the box of a freed term node, recycling its spans.
  void FreeBox(TermNodeId id);

  /// Batch hint: pre-grows the arena pools for ~`boxes` upcoming rebuilds
  /// (sized from the running per-box averages), so one transaction's
  /// refresh loop does not re-grow pool tails repeatedly.
  void ReserveForRebuild(size_t boxes);

  /// Cheap view of a box; invalidated by the next RebuildBox/FreeBox.
  Box box(TermNodeId id) const;
  GateKind GammaKind(TermNodeId id, State q) const {
    return gamma_[static_cast<size_t>(id) * w_ + q];
  }

  /// Total number of gates (for accounting tests/benches).
  size_t CountGates() const;

  /// Validates the arena invariants: span bounds, CSR monotonicity, and
  /// that live spans never overlap within a pool. Returns an empty string
  /// if consistent, else a description of the first violation. (Test hook.)
  std::string ValidateStorage() const;

 private:
  /// Per-box span directory into the pools.
  struct BoxSpans {
    SpanRef cross_gates;
    SpanRef cross_in;
    SpanRef child_in;
    SpanRef var_in;
    SpanRef var_masks;
    uint32_t num_unions = 0;
  };

  void BuildLeafBox(TermNodeId id);
  void BuildInternalBox(TermNodeId id);
  void EnsureSlot(TermNodeId id);
  /// Writes the per-∪-gate scratch accumulators of `id` into the arena.
  /// For leaves the local inputs are var-mask indices, for internal boxes
  /// ×-gate ids; the two kinds route to different pools.
  void CommitUnions(TermNodeId id, bool is_leaf);

  const Term* term_;
  const BinaryTva* tva_;
  const std::vector<uint8_t>* kind_;
  uint32_t w_;

  // Fixed-stride per-box state (index = id * w_ + q / + u). CowStore-backed
  // so concurrent snapshot readers survive writer growth (util/cow_store.h).
  CowStore<GateKind> gamma_;
  CowStore<int32_t> union_idx_;
  CowStore<State> union_states_;
  CowStore<GateEnds> gate_ends_;
  CowStore<BoxSpans> spans_;

  // Flat pools, one per wire kind.
  SpanPool<CrossGate> cross_gate_pool_;
  SpanPool<uint32_t> cross_in_pool_;
  SpanPool<ChildUnionInput> child_in_pool_;
  SpanPool<uint32_t> var_in_pool_;
  SpanPool<VarMask> var_mask_pool_;

  // Pooled build scratch, reused across rebuilds (clear() keeps capacity),
  // so steady-state refreshes never touch the heap. local_in holds ×-gate
  // ids (internal boxes) or var-mask indices (leaf boxes) per result state.
  std::vector<std::vector<uint32_t>> local_in_scratch_;         // per state
  std::vector<std::vector<ChildUnionInput>> child_in_scratch_;  // per state
  std::vector<uint8_t> has_top_scratch_;
  std::vector<CrossGate> cross_gates_scratch_;
  std::vector<VarMask> var_masks_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_CIRCUIT_CIRCUIT_H_
