#include "falgebra/word_avl.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace treenum {

WordEncoding::WordEncoding(const Word& w, size_t num_base_labels)
    : term_(TermAlphabet(num_base_labels)) {
  if (w.empty()) {
    throw std::invalid_argument("WordEncoding: word must be non-empty");
  }
  // Perfectly balanced initial term.
  auto build = [&](auto&& self, size_t lo, size_t hi) -> TermNodeId {
    if (hi - lo == 1) {
      NodeId id = AllocPosition(w[lo]);
      TermNodeId leaf = term_.NewLeaf(term_.alphabet().TreeLeaf(w[lo]), id);
      pos_leaf_[id] = leaf;
      return leaf;
    }
    size_t mid = lo + (hi - lo) / 2;
    // Children built left before right so initial position ids equal the
    // initial positions (ids are assigned in allocation order).
    TermNodeId left = self(self, lo, mid);
    TermNodeId right = self(self, mid, hi);
    return term_.NewNode(TermOp::kConcatHH, left, right);
  };
  term_.set_root(build(build, 0, w.size()));
  size_ = w.size();
}

NodeId WordEncoding::AllocPosition(Label l) {
  NodeId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    letters_[id] = l;
  } else {
    id = static_cast<NodeId>(letters_.size());
    letters_.push_back(l);
    pos_leaf_.push_back(kNoTerm);
  }
  return id;
}

void WordEncoding::ApplyRemap() {
  for (const auto& [old_id, new_id] : term_.remap_log()) {
    if (!term_.IsAlive(new_id) || !term_.IsLeaf(new_id)) continue;
    NodeId n = term_.node(new_id).tree_node;
    if (n == kNoNode || n >= pos_leaf_.size()) continue;
    if (pos_leaf_[n] == old_id) pos_leaf_[n] = new_id;
  }
}

TermNodeId WordEncoding::LeafAt(size_t pos) const {
  assert(pos < size_);
  TermNodeId x = term_.root();
  while (!term_.IsLeaf(x)) {
    TermNodeId l = term_.node(x).left;
    uint32_t ls = term_.node(l).size;
    if (pos < ls) {
      x = l;
    } else {
      pos -= ls;
      x = term_.node(x).right;
    }
  }
  return x;
}

Label WordEncoding::LetterAt(size_t pos) const {
  return letters_[term_.node(LeafAt(pos)).tree_node];
}

NodeId WordEncoding::PositionId(size_t pos) const {
  return term_.node(LeafAt(pos)).tree_node;
}

size_t WordEncoding::PositionOf(NodeId id) const {
  TermNodeId x = pos_leaf_[id];
  size_t pos = 0;
  while (term_.node(x).parent != kNoTerm) {
    TermNodeId p = term_.node(x).parent;
    if (term_.node(p).right == x) pos += term_.node(term_.node(p).left).size;
    x = p;
  }
  return pos;
}

Word WordEncoding::Current() const {
  Word w;
  w.reserve(size_);
  auto walk = [&](auto&& self, TermNodeId x) -> void {
    if (term_.IsLeaf(x)) {
      w.push_back(letters_[term_.node(x).tree_node]);
      return;
    }
    self(self, term_.node(x).left);
    self(self, term_.node(x).right);
  };
  walk(walk, term_.root());
  return w;
}

UpdateResult& WordEncoding::ResetResult() {
  result_.freed.clear();
  result_.changed_bottom_up.clear();
  result_.rebuilt_size = 0;
  return result_;
}

void WordEncoding::FilterChanged(std::vector<TermNodeId>& v) {
  if (seen_stamp_.size() < term_.id_bound()) {
    seen_stamp_.resize(term_.id_bound(), 0);
  }
  if (++seen_epoch_ == 0) {
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    seen_epoch_ = 1;
  }
  filter_out_.clear();
  for (auto it = v.rbegin(); it != v.rend(); ++it) {
    if (seen_stamp_[*it] == seen_epoch_) continue;
    seen_stamp_[*it] = seen_epoch_;
    if (term_.IsAlive(*it)) filter_out_.push_back(*it);
  }
  v.assign(filter_out_.rbegin(), filter_out_.rend());
}

const UpdateResult& WordEncoding::Replace(size_t pos, Label l) {
  UpdateResult& result = ResetResult();
  term_.BeginEdit();
  TermNodeId leaf = term_.EnsureMutable(LeafAt(pos));
  NodeId id = term_.node(leaf).tree_node;
  letters_[id] = l;
  pos_leaf_[id] = leaf;
  term_.SetLabel(leaf, term_.alphabet().TreeLeaf(l));
  for (TermNodeId x = leaf; x != kNoTerm; x = term_.node(x).parent) {
    result.changed_bottom_up.push_back(x);
  }
  term_.SweepZeros(&result.freed);
  ApplyRemap();
  return result;
}

const UpdateResult& WordEncoding::Insert(size_t pos, Label l) {
  assert(pos <= size_);
  UpdateResult& result = ResetResult();
  term_.BeginEdit();
  NodeId id = AllocPosition(l);
  TermNodeId fresh = term_.NewLeaf(term_.alphabet().TreeLeaf(l), id);
  pos_leaf_[id] = fresh;
  result.changed_bottom_up.push_back(fresh);

  bool at_end = pos == size_;
  TermNodeId anchor = at_end ? LeafAt(size_ - 1) : LeafAt(pos);
  TermNodeId nn = term_.SpliceOp(TermOp::kConcatHH, anchor, fresh,
                                 /*fresh_on_left=*/!at_end);
  ++size_;
  RebalanceUp(nn, result);
  term_.SweepZeros(&result.freed);
  ApplyRemap();
  return result;
}

const UpdateResult& WordEncoding::Erase(size_t pos) {
  if (size_ <= 1) {
    throw std::invalid_argument("Erase: word must keep at least one letter");
  }
  UpdateResult& result = ResetResult();
  term_.BeginEdit();
  TermNodeId leaf = LeafAt(pos);
  NodeId id = term_.node(leaf).tree_node;
  TermNodeId p = term_.node(leaf).parent;
  TermNodeId sib = term_.node(p).left == leaf ? term_.node(p).right
                                              : term_.node(p).left;
  // Detaching p drops its last current-version reference; the end-of-edit
  // sweep reclaims p and leaf unless a pinned snapshot still reaches them.
  term_.ReplaceChild(p, sib);
  TermNodeId above = term_.node(sib).parent;
  pos_leaf_[id] = kNoTerm;
  free_ids_.push_back(id);
  --size_;
  if (above != kNoTerm) RebalanceUp(above, result);
  term_.SweepZeros(&result.freed);
  ApplyRemap();
  return result;
}

uint32_t WordEncoding::HeightOf(TermNodeId x) const {
  return term_.node(x).height;
}

int WordEncoding::BalanceFactor(TermNodeId x) const {
  const TermNode& t = term_.node(x);
  if (t.left == kNoTerm) return 0;
  return static_cast<int>(term_.node(t.left).height) -
         static_cast<int>(term_.node(t.right).height);
}

TermNodeId WordEncoding::RotateRight(TermNodeId x, UpdateResult& result) {
  x = term_.EnsureMutable(x);
  TermNodeId y = term_.EnsureMutable(term_.node(x).left);
  TermNodeId b = term_.node(y).right;
  TermNodeId p = term_.node(x).parent;
  bool was_left = p != kNoTerm && term_.node(p).left == x;
  bool was_root = term_.root() == x;
  term_.SetChildrenRaw(x, b, term_.node(x).right);
  term_.SetChildrenRaw(y, term_.node(y).left, x);
  if (p != kNoTerm) {
    term_.SetChildSlot(p, was_left, y);
  } else if (was_root) {
    term_.set_root(y);
  } else {
    term_.ClearParent(y);  // rotation inside a detached subtree (bulk ops)
  }
  result.changed_bottom_up.push_back(x);
  return y;
}

TermNodeId WordEncoding::RotateLeft(TermNodeId x, UpdateResult& result) {
  x = term_.EnsureMutable(x);
  TermNodeId y = term_.EnsureMutable(term_.node(x).right);
  TermNodeId b = term_.node(y).left;
  TermNodeId p = term_.node(x).parent;
  bool was_left = p != kNoTerm && term_.node(p).left == x;
  bool was_root = term_.root() == x;
  term_.SetChildrenRaw(x, term_.node(x).left, b);
  term_.SetChildrenRaw(y, x, term_.node(y).right);
  if (p != kNoTerm) {
    term_.SetChildSlot(p, was_left, y);
  } else if (was_root) {
    term_.set_root(y);
  } else {
    term_.ClearParent(y);
  }
  result.changed_bottom_up.push_back(x);
  return y;
}

TermNodeId WordEncoding::RebalanceNode(TermNodeId x, UpdateResult& result) {
  x = term_.EnsureMutable(x);
  term_.SetChildrenRaw(x, term_.node(x).left, term_.node(x).right);
  int bf = BalanceFactor(x);
  if (bf > 1) {
    TermNodeId l = term_.node(x).left;
    if (BalanceFactor(l) < 0) RotateLeft(l, result);
    return RotateRight(x, result);
  }
  if (bf < -1) {
    TermNodeId r = term_.node(x).right;
    if (BalanceFactor(r) > 0) RotateRight(r, result);
    return RotateLeft(x, result);
  }
  return x;
}

TermNodeId WordEncoding::JoinTerms(TermNodeId a, TermNodeId b,
                                   UpdateResult& result) {
  if (a == kNoTerm) return b;
  if (b == kNoTerm) return a;
  int ha = static_cast<int>(term_.node(a).height);
  int hb = static_cast<int>(term_.node(b).height);
  if (ha - hb >= -1 && ha - hb <= 1) {
    TermNodeId nn = term_.JoinDetached(a, b);
    result.changed_bottom_up.push_back(nn);
    return nn;
  }
  if (ha > hb) {
    // Descend the right spine of a until the join site balances. The spine
    // node is about to be re-linked, so path-copy it first if frozen.
    a = term_.EnsureMutable(a);
    TermNodeId r = term_.node(a).right;
    term_.ClearParent(r);
    TermNodeId nr = JoinTerms(r, b, result);
    term_.SetChildSlot(a, /*left_slot=*/false, nr);
    TermNodeId nx = RebalanceNode(a, result);
    result.changed_bottom_up.push_back(nx);
    return nx;
  }
  b = term_.EnsureMutable(b);
  TermNodeId l = term_.node(b).left;
  term_.ClearParent(l);
  TermNodeId nl = JoinTerms(a, l, result);
  term_.SetChildSlot(b, /*left_slot=*/true, nl);
  TermNodeId nx = RebalanceNode(b, result);
  result.changed_bottom_up.push_back(nx);
  return nx;
}

std::pair<TermNodeId, TermNodeId> WordEncoding::SplitAt(
    TermNodeId t, size_t k, UpdateResult& result) {
  size_t sz = term_.node(t).size;
  assert(k <= sz);
  if (k == 0) return {kNoTerm, t};
  if (k == sz) return {t, kNoTerm};
  // t must be internal. It is detached and dismantled here: its children are
  // cut loose (pointer-only) and t itself is reclaimed by the end-of-edit
  // sweep once nothing references it.
  auto [l, r] = term_.SplitChildren(t);
  size_t ls = term_.node(l).size;
  if (k < ls) {
    auto [a, b] = SplitAt(l, k, result);
    return {a, JoinTerms(b, r, result)};
  }
  if (k == ls) return {l, r};
  auto [a, b] = SplitAt(r, k - ls, result);
  return {JoinTerms(l, a, result), b};
}

WordEncoding::SplitOut WordEncoding::SplitOutRange(size_t begin, size_t end,
                                                  UpdateResult& result) {
  assert(begin < end && end <= size_);
  TermNodeId whole = term_.root();
  term_.set_root(kNoTerm);
  auto [a, bc] = SplitAt(whole, begin, result);
  auto [b, c] = SplitAt(bc, end - begin, result);
  return SplitOut{a, b, c};
}

const UpdateResult& WordEncoding::MoveRange(size_t begin, size_t end,
                                            size_t dst) {
  assert(dst <= size_ - (end - begin));
  UpdateResult& result = ResetResult();
  term_.BeginEdit();
  SplitOut s = SplitOutRange(begin, end, result);
  TermNodeId rest = JoinTerms(s.prefix, s.suffix, result);
  TermNodeId root;
  if (rest == kNoTerm) {
    root = s.factor;  // the moved factor is the whole word
  } else {
    auto [r1, r2] = SplitAt(rest, dst, result);
    root = JoinTerms(JoinTerms(r1, s.factor, result), r2, result);
  }
  term_.set_root(root);
  // Reclaim dismantled split/join scaffolding before filtering on liveness.
  term_.SweepZeros(&result.freed);
  ApplyRemap();
  FilterChanged(result.changed_bottom_up);
  return result;
}

void WordEncoding::FreePositions(TermNodeId t) {
  walk_scratch_.clear();
  walk_scratch_.push_back(t);
  while (!walk_scratch_.empty()) {
    TermNodeId x = walk_scratch_.back();
    walk_scratch_.pop_back();
    if (term_.IsLeaf(x)) {
      NodeId id = term_.node(x).tree_node;
      pos_leaf_[id] = kNoTerm;
      free_ids_.push_back(id);
      continue;
    }
    walk_scratch_.push_back(term_.node(x).left);
    walk_scratch_.push_back(term_.node(x).right);
  }
}

const UpdateResult& WordEncoding::EraseRange(size_t begin, size_t end) {
  return ExtractRange(begin, end, nullptr);
}

const UpdateResult& WordEncoding::ExtractRange(size_t begin, size_t end,
                                               Word* extracted) {
  if (end - begin >= size_) {
    throw std::invalid_argument(
        "ExtractRange: word must keep at least one letter");
  }
  UpdateResult& result = ResetResult();
  term_.BeginEdit();
  if (extracted) {
    extracted->clear();
    extracted->reserve(end - begin);
    for (size_t i = begin; i < end; ++i) extracted->push_back(LetterAt(i));
  }
  SplitOut s = SplitOutRange(begin, end, result);
  term_.set_root(JoinTerms(s.prefix, s.suffix, result));
  size_ -= end - begin;
  FreePositions(s.factor);
  // The factor's root may be a join node created this edit (refs == 0, so
  // no DecRef will ever queue it); hand it to the sweep explicitly.
  term_.ReleaseDetached(s.factor);
  term_.SweepZeros(&result.freed);
  ApplyRemap();
  FilterChanged(result.changed_bottom_up);
  return result;
}

TermNodeId WordEncoding::BuildDetached(const Word& w, size_t lo, size_t hi,
                                       UpdateResult& result) {
  if (hi - lo == 1) {
    NodeId id = AllocPosition(w[lo]);
    TermNodeId leaf = term_.NewLeaf(term_.alphabet().TreeLeaf(w[lo]), id);
    pos_leaf_[id] = leaf;
    result.changed_bottom_up.push_back(leaf);
    return leaf;
  }
  size_t mid = lo + (hi - lo) / 2;
  TermNodeId left = BuildDetached(w, lo, mid, result);
  TermNodeId right = BuildDetached(w, mid, hi, result);
  TermNodeId nn = term_.JoinDetached(left, right);
  result.changed_bottom_up.push_back(nn);
  return nn;
}

const UpdateResult& WordEncoding::Concat(const Word& w) {
  if (w.empty()) {
    throw std::invalid_argument("Concat: appended word must be non-empty");
  }
  UpdateResult& result = ResetResult();
  term_.BeginEdit();
  TermNodeId fresh = BuildDetached(w, 0, w.size(), result);
  TermNodeId whole = term_.root();
  term_.set_root(kNoTerm);
  term_.set_root(JoinTerms(whole, fresh, result));
  size_ += w.size();
  term_.SweepZeros(&result.freed);
  ApplyRemap();
  FilterChanged(result.changed_bottom_up);
  return result;
}

void WordEncoding::RebalanceUp(TermNodeId from, UpdateResult& result) {
  TermNodeId x = from;
  while (x != kNoTerm) {
    x = term_.EnsureMutable(x);
    if (!term_.IsLeaf(x)) {
      term_.SetChildrenRaw(x, term_.node(x).left, term_.node(x).right);
      int bf = BalanceFactor(x);
      if (bf > 1) {
        TermNodeId l = term_.node(x).left;
        if (BalanceFactor(l) < 0) RotateLeft(l, result);
        x = RotateRight(x, result);
      } else if (bf < -1) {
        TermNodeId r = term_.node(x).right;
        if (BalanceFactor(r) > 0) RotateRight(r, result);
        x = RotateLeft(x, result);
      }
    }
    result.changed_bottom_up.push_back(x);
    x = term_.node(x).parent;
  }
}

bool WordEncoding::CheckBalanced() const {
  if (term_.root() == kNoTerm) return true;
  std::vector<TermNodeId> stack{term_.root()};
  while (!stack.empty()) {
    TermNodeId id = stack.back();
    stack.pop_back();
    if (term_.IsLeaf(id)) continue;
    int bf = BalanceFactor(id);
    if (bf < -1 || bf > 1) return false;
    stack.push_back(term_.node(id).left);
    stack.push_back(term_.node(id).right);
  }
  return true;
}

}  // namespace treenum
