#include "circuit/assignment_circuit.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace treenum {

namespace {

using AssignmentSet = std::set<Assignment>;

class Materializer {
 public:
  explicit Materializer(const AssignmentCircuit& circuit)
      : circuit_(circuit) {}

  const AssignmentSet& Gamma(TermNodeId id, State q) {
    auto key = std::make_pair(id, q);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    AssignmentSet out;
    const Box box = circuit_.box(id);
    GateKind k = box.gamma(q);
    if (k == GateKind::kTop) {
      out.insert(Assignment{});
    } else if (k == GateKind::kUnion) {
      size_t u = static_cast<size_t>(box.union_idx(q));
      const Term& term = circuit_.term();
      NodeId leaf_node = term.node(id).tree_node;
      // Var-gate inputs (leaf boxes).
      for (uint32_t vi : box.var_inputs(u)) {
        VarMask mask = box.var_mask(vi);
        Assignment a;
        for (VarId v = 0; mask >> v; ++v) {
          if (mask & (VarMask{1} << v)) a.Add(Singleton{v, leaf_node});
        }
        a.Normalize();
        out.insert(std::move(a));
      }
      // ×-gate inputs.
      TermNodeId lc = term.node(id).left;
      TermNodeId rc = term.node(id).right;
      for (uint32_t ci : box.cross_inputs(u)) {
        const CrossGate& cg = box.cross_gate(ci);
        const AssignmentSet& sl = Gamma(lc, cg.left_state);
        const AssignmentSet& sr = Gamma(rc, cg.right_state);
        for (const Assignment& a : sl) {
          for (const Assignment& b : sr) {
            out.insert(Assignment::DisjointUnion(a, b));
          }
        }
      }
      // Child ∪-gate inputs (⊤-collapse).
      for (const auto& [side, state] : box.child_union_inputs(u)) {
        const AssignmentSet& s = Gamma(side == 0 ? lc : rc, state);
        out.insert(s.begin(), s.end());
      }
    }
    return memo_.emplace(key, std::move(out)).first->second;
  }

 private:
  const AssignmentCircuit& circuit_;
  std::map<std::pair<TermNodeId, State>, AssignmentSet> memo_;
};

}  // namespace

std::set<Assignment> MaterializeGamma(const AssignmentCircuit& circuit,
                                      TermNodeId id, State q) {
  Materializer m(circuit);
  return m.Gamma(id, q);
}

std::vector<Assignment> MaterializeSatisfying(
    const AssignmentCircuit& circuit, const std::vector<uint8_t>& kind) {
  Materializer m(circuit);
  AssignmentSet all;
  TermNodeId root = circuit.term().root();
  for (State q : circuit.tva().final_states()) {
    GateKind k = circuit.GammaKind(root, q);
    if (k == GateKind::kBot) continue;
    if (kind[q] == 0) {
      assert(k == GateKind::kTop);
      all.insert(Assignment{});
    } else {
      const AssignmentSet& s = m.Gamma(root, q);
      all.insert(s.begin(), s.end());
    }
  }
  return {all.begin(), all.end()};
}

}  // namespace treenum
