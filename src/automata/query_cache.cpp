#include "automata/query_cache.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "automata/serialize.h"
#include "automata/translate.h"
#include "util/check.h"

namespace treenum {
namespace {

// Structural equality of source automata, order-sensitive over the
// relation vectors (the retained copy preserves declaration order, so an
// equal construction compares equal; a merely renumbered or reordered
// variant misses here, recompiles, and converges in the canonical map).
bool UnrankedTvaEqual(const UnrankedTva& a, const UnrankedTva& b) {
  return a.num_states() == b.num_states() &&
         a.num_labels() == b.num_labels() && a.num_vars() == b.num_vars() &&
         a.inits() == b.inits() && a.transitions() == b.transitions() &&
         a.final_states() == b.final_states();
}

bool WvaEqual(const Wva& a, const Wva& b) {
  return a.num_states() == b.num_states() &&
         a.num_labels() == b.num_labels() && a.num_vars() == b.num_vars() &&
         a.transitions() == b.transitions() &&
         a.initial_states() == b.initial_states() &&
         a.final_states() == b.final_states();
}

// Domain separators mixed into the source-map key so a tree query and a
// word query can never alias even on equal raw fingerprints.
constexpr uint64_t kTreeSourceTag = 0x7472656571756572ULL;
constexpr uint64_t kWordSourceTag = 0x776f726471756572ULL;

// The constant every fingerprint collapses to under the collision test
// hook (set_test_force_fingerprint_collisions).
constexpr uint64_t kForcedFingerprint = 0x636f6c6c69646521ULL;

}  // namespace

QueryCache::QueryCache() = default;
QueryCache::~QueryCache() = default;

QueryCache& QueryCache::Global() {
  // Leaked on purpose: handles embedded in static-lifetime documents may
  // release during static destruction, after a function-local static
  // cache would already be gone.
  static QueryCache* const cache = new QueryCache();
  return *cache;
}

// ---------------------------------------------------------------------------
// Lookup / compilation
// ---------------------------------------------------------------------------

uint64_t QueryCache::CanonicalFingerprintLocked(
    const HomogenizedTva& a) const {
  return test_collide_ ? kForcedFingerprint : FingerprintHomogenizedTva(a);
}

uint64_t QueryCache::SourceKeyLocked(bool is_word,
                                     uint64_t raw_fingerprint) const {
  if (test_collide_) return kForcedFingerprint;
  return FingerprintCombine(is_word ? kWordSourceTag : kTreeSourceTag,
                            raw_fingerprint);
}

size_t QueryCache::FindSourceLocked(uint64_t key, bool is_word,
                                    const UnrankedTva* tq, const Wva* wq) {
  auto range = sources_.equal_range(key);
  for (auto it = range.first; it != range.second; ++it) {
    const SourceEntry& s = it->second;
    if (s.is_word != is_word) {
      ++collisions_;
      continue;
    }
    const bool equal = is_word ? WvaEqual(*s.word_src, *wq)
                               : UnrankedTvaEqual(*s.tree_src, *tq);
    if (equal) return s.slot;
    ++collisions_;
  }
  return kNoSlot;
}

void QueryCache::AddSourceLocked(uint64_t key, bool is_word,
                                 const UnrankedTva* tq, const Wva* wq,
                                 size_t slot) {
  if (FindSourceLocked(key, is_word, tq, wq) != kNoSlot) return;
  SourceEntry s;
  s.is_word = is_word;
  if (is_word) {
    s.word_src = std::make_unique<Wva>(*wq);
  } else {
    s.tree_src = std::make_unique<UnrankedTva>(*tq);
  }
  s.slot = slot;
  sources_.emplace(key, std::move(s));
}

size_t QueryCache::InternCanonicalLocked(HomogenizedTva&& homog) {
  const uint64_t fp = CanonicalFingerprintLocked(homog);
  auto range = by_fingerprint_.equal_range(fp);
  for (auto it = range.first; it != range.second; ++it) {
    const Entry& e = entries_[it->second];
    if (HomogenizedTvaEqual(*e.automaton, homog)) {
      ++canonical_hits_;
      return it->second;
    }
    ++collisions_;
  }
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = entries_.size();
    entries_.emplace_back();
  }
  Entry& e = entries_[slot];
  e.fingerprint = fp;
  e.automaton = std::make_shared<const HomogenizedTva>(std::move(homog));
  // Build the grouped-CSR delta cache before any handle escapes: shard
  // workers build pipelines over this shared plan concurrently, and the
  // cache mutates on first access (binary_tva.h).
  e.automaton->tva.EnsureDeltaGroups();
  e.external_refs = 0;
  e.last_use = ++clock_;
  ++unreferenced_;
  by_fingerprint_.emplace(fp, slot);
  ++insertions_;
  return slot;
}

QueryCache::Handle QueryCache::AcquireLocked(size_t slot) {
  Entry& e = entries_[slot];
  TREENUM_CHECK(e.automaton != nullptr, "acquire of a free cache slot");
  if (e.external_refs == 0) --unreferenced_;
  ++e.external_refs;
  e.last_use = ++clock_;
  // The handle aliases the entry's owning pointer; its deleter only
  // notifies the cache (libfive's Cache::del idiom). The entry is never
  // evicted while external_refs > 0, so the pointee outlives the handle.
  QueryCache* self = this;
  return Handle(e.automaton.get(),
                [self, slot](const HomogenizedTva*) { self->Release(slot); });
}

void QueryCache::Release(size_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[slot];
  TREENUM_CHECK(e.automaton != nullptr && e.external_refs > 0,
                "release of an unpinned cache slot");
  if (--e.external_refs == 0) {
    ++unreferenced_;
    e.last_use = ++clock_;
    EnforceCapLocked();
  }
}

QueryCache::Handle QueryCache::CompileTree(const UnrankedTva& query) {
  const uint64_t raw_fp = FingerprintUnrankedTva(query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++lookups_;
    const uint64_t key = SourceKeyLocked(false, raw_fp);
    size_t slot = FindSourceLocked(key, false, &query, nullptr);
    if (slot != kNoSlot) {
      ++source_hits_;
      return AcquireLocked(slot);
    }
  }
  // Cold: compile outside the lock. Two threads racing on the same new
  // query both compile; the loser's intern lands on the winner's entry.
  TranslatedTva translated = TranslateUnrankedTva(query);
  HomogenizedTva homog = HomogenizeBinaryTva(translated.tva);
  CanonicalizeHomogenizedTva(&homog);

  std::lock_guard<std::mutex> lock(mu_);
  ++translations_;
  ++homogenizations_;
  ++canonicalizations_;
  const size_t slot = InternCanonicalLocked(std::move(homog));
  AddSourceLocked(SourceKeyLocked(false, raw_fp), false, &query, nullptr,
                  slot);
  Handle h = AcquireLocked(slot);
  EnforceCapLocked();
  return h;
}

QueryCache::Handle QueryCache::CompileWord(const Wva& query) {
  const uint64_t raw_fp = FingerprintWva(query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++lookups_;
    const uint64_t key = SourceKeyLocked(true, raw_fp);
    size_t slot = FindSourceLocked(key, true, nullptr, &query);
    if (slot != kNoSlot) {
      ++source_hits_;
      return AcquireLocked(slot);
    }
  }
  TranslatedTva translated = TranslateWva(query);
  HomogenizedTva homog = HomogenizeBinaryTva(translated.tva);
  CanonicalizeHomogenizedTva(&homog);

  std::lock_guard<std::mutex> lock(mu_);
  ++translations_;
  ++homogenizations_;
  ++canonicalizations_;
  const size_t slot = InternCanonicalLocked(std::move(homog));
  AddSourceLocked(SourceKeyLocked(true, raw_fp), true, nullptr, &query, slot);
  Handle h = AcquireLocked(slot);
  EnforceCapLocked();
  return h;
}

QueryCache::Handle QueryCache::Intern(HomogenizedTva homog) {
  CanonicalizeHomogenizedTva(&homog);
  std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  ++canonicalizations_;
  const size_t slot = InternCanonicalLocked(std::move(homog));
  Handle h = AcquireLocked(slot);
  EnforceCapLocked();
  return h;
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

void QueryCache::set_retention_cap(size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  retention_cap_ = cap;
  EnforceCapLocked();
}

size_t QueryCache::retention_cap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retention_cap_;
}

void QueryCache::EnforceCapLocked() {
  while (unreferenced_ > retention_cap_) {
    size_t victim = kNoSlot;
    uint64_t oldest = ~uint64_t{0};
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.automaton != nullptr && e.external_refs == 0 &&
          e.last_use < oldest) {
        oldest = e.last_use;
        victim = i;
      }
    }
    if (victim == kNoSlot) break;  // counter out of sync; be safe
    EvictLocked(victim);
  }
}

void QueryCache::EvictLocked(size_t slot) {
  Entry& e = entries_[slot];
  auto range = by_fingerprint_.equal_range(e.fingerprint);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == slot) {
      by_fingerprint_.erase(it);
      break;
    }
  }
  for (auto it = sources_.begin(); it != sources_.end();) {
    it = it->second.slot == slot ? sources_.erase(it) : std::next(it);
  }
  e.automaton.reset();  // marks the slot free
  free_slots_.push_back(slot);
  --unreferenced_;
  ++evictions_;
}

size_t QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].automaton != nullptr && entries_[i].external_refs == 0) {
      EvictLocked(i);
      ++dropped;
    }
  }
  return dropped;
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.lookups = lookups_;
  s.source_hits = source_hits_;
  s.canonical_hits = canonical_hits_;
  s.translations = translations_;
  s.homogenizations = homogenizations_;
  s.canonicalizations = canonicalizations_;
  s.insertions = insertions_;
  s.collisions = collisions_;
  s.evictions = evictions_;
  s.entries = entries_.size() - free_slots_.size();
  s.unreferenced_entries = unreferenced_;
  s.source_entries = sources_.size();
  return s;
}

void QueryCache::set_test_force_fingerprint_collisions(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  TREENUM_CHECK(entries_.empty() || !on,
                "collision hook must be set before the first insertion");
  test_collide_ = on;
}

// ---------------------------------------------------------------------------
// Whole-cache serialization
// ---------------------------------------------------------------------------
//
// Image payload (one kCacheImage record, checksummed as a whole):
//   u64 entry count
//   per entry: HomogenizedTva body | u32 source count |
//              per source: u8 is_word | UnrankedTva or Wva body

bool QueryCache::SaveCache(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  serialize::ByteWriter w;
  uint64_t count = 0;
  for (const Entry& e : entries_) {
    if (e.automaton != nullptr) ++count;
  }
  w.PutU64(count);
  for (size_t slot = 0; slot < entries_.size(); ++slot) {
    const Entry& e = entries_[slot];
    if (e.automaton == nullptr) continue;
    serialize::AppendHomogenizedTva(*e.automaton, &w);
    uint32_t num_sources = 0;
    for (const auto& kv : sources_) {
      if (kv.second.slot == slot) ++num_sources;
    }
    w.PutU32(num_sources);
    for (const auto& kv : sources_) {
      const SourceEntry& s = kv.second;
      if (s.slot != slot) continue;
      w.PutU8(s.is_word ? 1 : 0);
      if (s.is_word) {
        serialize::AppendWva(*s.word_src, &w);
      } else {
        serialize::AppendUnrankedTva(*s.tree_src, &w);
      }
    }
  }
  return serialize::WriteRecord(serialize::RecordKind::kCacheImage, w.bytes(),
                                out);
}

bool QueryCache::SaveCache(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out && SaveCache(out);
}

size_t QueryCache::WarmStart(std::istream& in, std::string* error) {
  serialize::RecordKind kind;
  std::string payload;
  if (!serialize::ReadRecord(in, &kind, &payload, error)) return 0;
  if (kind != serialize::RecordKind::kCacheImage) {
    if (error != nullptr) *error = "not a cache image";
    return 0;
  }

  // Stage the whole image before admitting anything, so a record that
  // goes bad halfway through restores nothing.
  struct StagedSource {
    bool is_word = false;
    std::unique_ptr<UnrankedTva> tree_src;
    std::unique_ptr<Wva> word_src;
  };
  struct StagedEntry {
    HomogenizedTva homog;
    std::vector<StagedSource> sources;
  };
  std::vector<StagedEntry> staged;

  serialize::ByteReader r(payload.data(), payload.size());
  uint64_t count;
  if (!r.GetU64(&count)) {
    if (error != nullptr) *error = "truncated cache image";
    return 0;
  }
  for (uint64_t i = 0; i < count; ++i) {
    StagedEntry entry;
    if (!serialize::ParseHomogenizedTva(&r, &entry.homog, error)) return 0;
    uint32_t num_sources;
    if (!r.GetU32(&num_sources)) {
      if (error != nullptr) *error = "truncated source count";
      return 0;
    }
    for (uint32_t j = 0; j < num_sources; ++j) {
      uint8_t is_word;
      if (!r.GetU8(&is_word) || is_word > 1) {
        if (error != nullptr) *error = "bad source mode";
        return 0;
      }
      StagedSource src;
      src.is_word = is_word == 1;
      if (src.is_word) {
        Wva wva(0, 0, 0);
        if (!serialize::ParseWva(&r, &wva, error)) return 0;
        src.word_src = std::make_unique<Wva>(std::move(wva));
      } else {
        UnrankedTva tva(0, 0, 0);
        if (!serialize::ParseUnrankedTva(&r, &tva, error)) return 0;
        src.tree_src = std::make_unique<UnrankedTva>(std::move(tva));
      }
      entry.sources.push_back(std::move(src));
    }
    staged.push_back(std::move(entry));
  }
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "trailing bytes in cache image";
    return 0;
  }

  size_t admitted = 0;
  for (StagedEntry& entry : staged) {
    // Re-canonicalize on admission: images produced by SaveCache are
    // already canonical (idempotent), and hand-crafted ones converge to
    // the same interned plan a live compile would produce.
    CanonicalizeHomogenizedTva(&entry.homog);
    std::lock_guard<std::mutex> lock(mu_);
    const size_t slot = InternCanonicalLocked(std::move(entry.homog));
    for (StagedSource& src : entry.sources) {
      const uint64_t raw_fp = src.is_word
                                  ? FingerprintWva(*src.word_src)
                                  : FingerprintUnrankedTva(*src.tree_src);
      AddSourceLocked(SourceKeyLocked(src.is_word, raw_fp), src.is_word,
                      src.tree_src.get(), src.word_src.get(), slot);
    }
    ++admitted;
    EnforceCapLocked();
  }
  return admitted;
}

size_t QueryCache::WarmStart(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open cache image";
    return 0;
  }
  return WarmStart(in, error);
}

}  // namespace treenum
