// Experiment E2 — Theorem 8.1, preprocessing: time linear in |T|.
// Reported per-node cost should be flat across the size sweep; the split
// benchmarks show where the time goes (encoding, circuit, index).
#include <benchmark/benchmark.h>

#include "automata/homogenize.h"
#include "automata/translate.h"
#include "bench_util.h"
#include "falgebra/builder.h"

namespace treenum {
namespace {

void BM_Preprocess_Full(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  UnrankedTree tree = bench::MakeTree(n);
  UnrankedTva query = bench::StandardQuery();
  for (auto _ : state) {
    TreeEnumerator e(tree, query);
    benchmark::DoNotOptimize(e.width());
  }
  state.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Preprocess_Full)
    ->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

void BM_Preprocess_EncodeOnly(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  UnrankedTree tree = bench::MakeTree(n);
  for (auto _ : state) {
    Encoding enc = EncodeTree(tree, 3);
    benchmark::DoNotOptimize(enc.term.num_alive());
  }
}
BENCHMARK(BM_Preprocess_EncodeOnly)
    ->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

void BM_Preprocess_PathTree(benchmark::State& state) {
  // Adversarially deep input: the balanced encoding keeps preprocessing
  // near-linear (the encoder's split scans add at most a log factor).
  size_t n = static_cast<size_t>(state.range(0));
  UnrankedTree tree = bench::MakePath(n);
  UnrankedTva query = bench::StandardQuery();
  for (auto _ : state) {
    TreeEnumerator e(tree, query);
    benchmark::DoNotOptimize(e.width());
  }
  state.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Preprocess_PathTree)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMillisecond);

void BM_Preprocess_AutomatonTranslation(benchmark::State& state) {
  // The query-side cost (Lemma 7.4 + Lemma 2.1), independent of the tree.
  UnrankedTva query = bench::StandardQuery();
  for (auto _ : state) {
    HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(query).tva);
    benchmark::DoNotOptimize(h.tva.num_states());
  }
}
BENCHMARK(BM_Preprocess_AutomatonTranslation)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
