// Experiment E6 — Theorem 8.5: document spanners on dynamic words.
// Preprocessing linear in |w|, updates worst-case O(log |w|) (genuine AVL
// rebalancing, Corollary 8.4), delay independent of |w|.
#include <benchmark/benchmark.h>

#include "automata/regex_spanner.h"
#include "core/word_enumerator.h"
#include "util/random.h"

namespace treenum {
namespace {

constexpr uint64_t kSeed = 0x5EED;

Word RandomText(size_t n, size_t alphabet) {
  Rng rng(kSeed + n);
  Word w;
  w.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    w.push_back(static_cast<Label>(rng.Index(alphabet)));
  }
  return w;
}

Wva Spanner() {
  // b positions immediately followed by at least one c.
  return CompileRegexSpanner(".*<0:b>c+.*|.*<0:b>c+", 3, 1);
}

void BM_Words_Preprocess(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Word w = RandomText(n, 3);
  Wva q = Spanner();
  for (auto _ : state) {
    WordEnumerator e(w, q);
    benchmark::DoNotOptimize(e.width());
  }
  state.counters["ns_per_char"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Words_Preprocess)
    ->Range(1024, 262144)
    ->Unit(benchmark::kMillisecond);

void BM_Words_Update(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  WordEnumerator e(RandomText(n, 3), Spanner());
  Rng rng(kSeed);
  for (auto _ : state) {
    switch (rng.Index(3)) {
      case 0:
        e.Insert(rng.Index(e.word_size() + 1),
                 static_cast<Label>(rng.Index(3)));
        break;
      case 1:
        if (e.word_size() > 1) e.Erase(rng.Index(e.word_size()));
        break;
      default:
        e.Replace(rng.Index(e.word_size()),
                  static_cast<Label>(rng.Index(3)));
        break;
    }
  }
}
BENCHMARK(BM_Words_Update)->Range(1024, 262144)->Unit(benchmark::kMicrosecond);

void BM_Words_BulkMove(benchmark::State& state) {
  // The "move part of the text" bulk update (paper conclusion, future
  // work): AVL split/join, O(log n) per move regardless of factor length.
  size_t n = static_cast<size_t>(state.range(0));
  WordEnumerator e(RandomText(n, 3), Spanner());
  Rng rng(kSeed);
  for (auto _ : state) {
    size_t sz = e.word_size();
    size_t begin = rng.Index(sz - 1);
    size_t end = begin + 1 + rng.Index(sz - begin - 1);
    size_t dst = rng.Index(sz - (end - begin) + 1);
    e.MoveRange(begin, end, dst);
  }
}
BENCHMARK(BM_Words_BulkMove)->Range(1024, 262144)->Unit(benchmark::kMicrosecond);

void BM_Words_EnumeratePerMatch(benchmark::State& state) {
  // Fixed ~32 matches embedded in growing all-'a' text.
  size_t n = static_cast<size_t>(state.range(0));
  Word w(n, 0);
  for (size_t i = 0; i < 32; ++i) {
    size_t pos = (i + 1) * n / 34;
    w[pos] = 1;
    w[pos + 1] = 2;
  }
  WordEnumerator e(w, Spanner());
  size_t matches = 0;
  for (auto _ : state) {
    matches = e.EnumerateAll().size();
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["ns_per_match"] = benchmark::Counter(
      static_cast<double>(matches) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Words_EnumeratePerMatch)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
