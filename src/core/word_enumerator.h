// WordEnumerator — Theorem 8.5: enumeration of the satisfying assignments
// of a nondeterministic WVA (document spanner) on a word, with character
// edits in worst-case O(log |w| * poly(|Q|)) via AVL-balanced ⊕HH terms
// (Corollary 8.4).
//
// Like TreeEnumerator, a thin view over a private single-query
// DynamicDocument (the word-backed variant); all derived-state maintenance
// is shared with the tree engine through the document layer and
// EnumerationPipeline. As an Engine, its NodeIds are the stable position
// ids: Relabel = replace the letter, InsertRightSibling = insert after,
// InsertFirstChild = insert before, DeleteLeaf = erase. Multi-spanner
// serving over one shared word goes through DynamicDocument directly.
#ifndef TREENUM_CORE_WORD_ENUMERATOR_H_
#define TREENUM_CORE_WORD_ENUMERATOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "automata/wva.h"
#include "core/document.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "falgebra/word_avl.h"
#include "trees/assignment.h"

namespace treenum {

class WordEnumerator : public Engine {
 public:
  WordEnumerator(const Word& w, const Wva& query,
                 BoxEnumMode mode = BoxEnumMode::kIndexed);

  size_t word_size() const { return doc_.word_encoding().size(); }
  size_t size() const override { return doc_.word_encoding().size(); }
  size_t width() const { return pipe_->width(); }
  const WordEncoding& encoding() const { return doc_.word_encoding(); }

  /// Satisfying assignments; singleton NodeIds are *stable position ids* —
  /// translate to current positions with PositionOf.
  std::vector<Assignment> EnumerateAll() const override;
  std::unique_ptr<Engine::Cursor> MakeCursor() const override;
  bool HasAnswer() const override { return pipe_->HasAnswer(); }
  /// Current logical position of a stable position id.
  size_t PositionOf(NodeId id) const {
    return doc_.word_encoding().PositionOf(id);
  }

  /// Like EnumerateAll but with singletons rewritten to current positions.
  std::vector<Assignment> EnumerateAllByPosition() const;

  // ---- Concurrent snapshot reads (see core/document.h) ----

  /// Pins the most recently committed version. Any thread.
  SnapshotRef CurrentSnapshot() const { return doc_.CurrentSnapshot(); }
  /// All satisfying assignments at a pinned snapshot (stable position ids)
  /// — runs on reader threads concurrently with writer edits; old
  /// snapshots keep answering with their pre-edit results (time-travel).
  std::vector<Assignment> EnumerateAt(const SnapshotRef& snap) const {
    return doc_.EnumerateAt(snap, handle_);
  }
  /// HasAnswer at a pinned snapshot. Any thread.
  bool HasAnswerAt(const SnapshotRef& snap) const {
    return doc_.HasAnswerAt(snap, handle_);
  }
  /// Cursor at a pinned snapshot; the cursor co-owns the pin.
  std::unique_ptr<Engine::Cursor> MakeCursorAt(SnapshotRef snap) const {
    return doc_.MakeCursorAt(std::move(snap), handle_);
  }

  // ---- Word edits by logical position, worst-case O(log |w|) ----
  UpdateStats Replace(size_t pos, Label l) { return doc_.Replace(pos, l); }
  UpdateStats Insert(size_t pos, Label l) { return doc_.Insert(pos, l); }
  UpdateStats Erase(size_t pos) { return doc_.Erase(pos); }
  /// Bulk edit: move the factor [begin, end) so it starts at `dst` of the
  /// remaining word. Also O(log |w|) (AVL split/join).
  UpdateStats MoveRange(size_t begin, size_t end, size_t dst) {
    return doc_.MoveRange(begin, end, dst);
  }

  // ---- Engine edit surface, by stable position id ----
  UpdateStats Relabel(NodeId n, Label l) override {
    return doc_.Relabel(n, l);
  }
  UpdateStats InsertFirstChild(NodeId n, Label l,
                               NodeId* new_node = nullptr) override {
    return doc_.InsertFirstChild(n, l, new_node);
  }
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr) override {
    return doc_.InsertRightSibling(n, l, new_node);
  }
  UpdateStats DeleteLeaf(NodeId n) override { return doc_.DeleteLeaf(n); }

  void BeginBatch() override { doc_.BeginBatch(); }
  UpdateStats CommitBatch() override { return doc_.CommitBatch(); }
  bool in_batch() const override { return doc_.in_batch(); }

  DynamicDocument& document() { return doc_; }
  const DynamicDocument& document() const { return doc_; }
  const EnumerationPipeline& pipeline() const { return *pipe_; }
  const AssignmentCircuit& circuit() const { return pipe_->circuit(); }

 private:
  DynamicDocument doc_;
  DynamicDocument::QueryHandle handle_;
  EnumerationPipeline* pipe_;
};

}  // namespace treenum

#endif  // TREENUM_CORE_WORD_ENUMERATOR_H_
