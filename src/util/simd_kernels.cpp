// Kernel dispatch: resolves the process-wide tier once, from cpuid plus the
// TREENUM_SIMD override, and hands out per-tier tables for tests and
// benchmarks. The per-tier implementations live in their own TUs so each
// can be compiled with its own arch flags (see CMakeLists.txt).
#include "util/simd_kernels.h"

#include <cstdlib>
#include <cstring>

namespace treenum {

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

SimdTier BestAvailableTier() {
  if (KernelsForTier(SimdTier::kAvx512) != nullptr) return SimdTier::kAvx512;
  if (KernelsForTier(SimdTier::kAvx2) != nullptr) return SimdTier::kAvx2;
  return SimdTier::kScalar;
}

/// TREENUM_SIMD override + cpuid, with graceful step-down when the forced
/// tier cannot run here (so a CI matrix can set avx512 on any runner).
SimdTier ResolveActiveTier() {
  const char* env = std::getenv("TREENUM_SIMD");
  if (env != nullptr && *env != '\0') {
    SimdTier want = BestAvailableTier();
    if (std::strcmp(env, "scalar") == 0) {
      want = SimdTier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = SimdTier::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      want = SimdTier::kAvx512;
    }
    while (KernelsForTier(want) == nullptr) {
      want = static_cast<SimdTier>(static_cast<int>(want) - 1);
    }
    return want;
  }
  return BestAvailableTier();
}

}  // namespace

const char* TierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const BitKernels* KernelsForTier(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return &internal::ScalarKernels();
    case SimdTier::kAvx2:
      return CpuHasAvx2() ? internal::Avx2KernelsOrNull() : nullptr;
    case SimdTier::kAvx512:
      return CpuHasAvx512() ? internal::Avx512KernelsOrNull() : nullptr;
  }
  return nullptr;
}

SimdTier ActiveTier() {
  static const SimdTier tier = ResolveActiveTier();
  return tier;
}

const BitKernels& ActiveKernels() {
  static const BitKernels& k = *KernelsForTier(ActiveTier());
  return k;
}

}  // namespace treenum
