// Stepwise tree variable automata on unranked trees (§7 of the paper).
//
// A Λ,X-TVA on unranked trees is A = (Q, ι, δ, F) where ι ⊆ Λ × 2^X × Q
// assigns possible initial states to every node (annotations are read at all
// nodes), and δ ⊆ Q × Q × Q consumes the states of the children one by one,
// like a word automaton: (q, p, q') ∈ δ means "in intermediate state q,
// reading a child that finished in state p, move to intermediate state q'".
// The state of a node is the intermediate state after all children are read.
#ifndef TREENUM_AUTOMATA_UNRANKED_TVA_H_
#define TREENUM_AUTOMATA_UNRANKED_TVA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/binary_tva.h"
#include "trees/unranked_tree.h"

namespace treenum {

/// A stepwise transition (q, p, q') ∈ δ.
struct StepTransition {
  State from;
  State child;
  State to;
  friend bool operator==(const StepTransition& a, const StepTransition& b) {
    return a.from == b.from && a.child == b.child && a.to == b.to;
  }
};

/// A nondeterministic stepwise TVA on unranked Λ-trees.
class UnrankedTva {
 public:
  UnrankedTva(size_t num_states, size_t num_labels, size_t num_vars)
      : num_states_(num_states),
        num_labels_(num_labels),
        num_vars_(num_vars) {}

  size_t num_states() const { return num_states_; }
  size_t num_labels() const { return num_labels_; }
  size_t num_vars() const { return num_vars_; }

  /// Declares (l, Y, q) ∈ ι.
  void AddInit(Label l, VarMask vars, State q);
  /// Declares (q, p, q') ∈ δ.
  void AddTransition(State from, State child, State to);
  void AddFinal(State q);

  const std::vector<LeafInit>& inits() const { return inits_; }
  const std::vector<StepTransition>& transitions() const {
    return transitions_;
  }
  const std::vector<State>& final_states() const { return final_states_; }
  bool IsFinal(State q) const;

  /// ι(l, Y): set of initial states for label l under annotation Y.
  const std::vector<State>& InitsFor(Label l, VarMask vars) const;
  /// All (Y, q) pairs for label l.
  const std::vector<std::pair<VarMask, State>>& InitsForLabel(Label l) const;
  /// δ(q, p): successor states when reading child state p in state q.
  const std::vector<State>& Step(State from, State child) const;

  /// Boolean evaluation: does A accept `tree` under valuation ν given as a
  /// per-node VarMask (indexed by NodeId)? Runs the standard bottom-up
  /// reachable-state-set computation in O(|T| * |δ|).
  bool Accepts(const UnrankedTree& tree,
               const std::vector<VarMask>& valuation) const;

  /// Reachable states of the subtree rooted at `node` under `valuation`.
  std::vector<State> ReachableStates(
      const UnrankedTree& tree, NodeId node,
      const std::vector<VarMask>& valuation) const;

  /// Brute-force computation of all satisfying assignments by trying all
  /// 2^(|X| * |T|) valuations. Only usable on tiny instances; this is the
  /// ground-truth oracle for correctness tests.
  std::vector<Assignment> BruteForceAssignments(
      const UnrankedTree& tree) const;

  std::string ToString() const;

 private:
  size_t num_states_;
  size_t num_labels_;
  size_t num_vars_;

  std::vector<LeafInit> inits_;
  std::vector<StepTransition> transitions_;
  std::vector<State> final_states_;
  std::vector<bool> is_final_;

  // inits_by_label_mask_[l][mask] = states.
  std::vector<std::vector<std::vector<State>>> inits_by_label_mask_;
  std::vector<std::vector<std::pair<VarMask, State>>> inits_by_label_;
  // step_[from * num_states + child] = states.
  std::vector<std::vector<State>> step_;

  static const std::vector<State> kEmptyStates;
  static const std::vector<std::pair<VarMask, State>> kEmptyInits;
};

/// 64-bit structural fingerprint of `a`, invariant under the *declaration
/// order* of its inits/transitions/finals (commutative fold) but not under
/// state renumbering. A fast pre-translation cache key: queries with equal
/// fingerprints are usually the same construction. The shared-document
/// registry does not rely on it — dedupe is decided on the canonical
/// homogenized form (see automata/homogenize.h), which also merges
/// renumbered variants.
uint64_t FingerprintUnrankedTva(const UnrankedTva& a);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_UNRANKED_TVA_H_
