#include "util/bit_matrix.h"

#include <cassert>

namespace treenum {

namespace {

bool AnyWord(const uint64_t* words, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (words[i]) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------- View

bool BitMatrixView::RowAny(size_t r) const {
  return AnyWord(Row(r), words_per_row_);
}

bool BitMatrixView::Any() const {
  return AnyWord(words_, rows_ * words_per_row_);
}

size_t BitMatrixView::Count() const {
  size_t n = 0;
  for (size_t i = 0; i < rows_ * words_per_row_; ++i) {
    n += static_cast<size_t>(__builtin_popcountll(words_[i]));
  }
  return n;
}

void BitMatrixView::NonEmptyRowsInto(std::vector<uint32_t>* out) const {
  out->clear();
  for (size_t r = 0; r < rows_; ++r) {
    if (RowAny(r)) out->push_back(static_cast<uint32_t>(r));
  }
}

void BitMatrixView::ComposeIntoWords(const BitMatrixView& a,
                                     const BitMatrixView& b, uint64_t* out) {
  assert(a.cols() == b.rows());
  const size_t b_wpr = b.words_per_row();
  for (size_t r = 0; r < a.rows_; ++r) {
    const uint64_t* row = a.Row(r);
    uint64_t* o = out + r * b_wpr;
    for (size_t w = 0; w < a.words_per_row_; ++w) {
      uint64_t bits = row[w];
      while (bits) {
        size_t m = w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const uint64_t* mid = b.Row(m);
        for (size_t ow = 0; ow < b_wpr; ++ow) o[ow] |= mid[ow];
      }
    }
  }
}

void BitMatrixView::ComposeInto(const BitMatrixView& other,
                                BitMatrix* result) const {
  result->Assign(rows_, other.cols());
  if (rows_ == 0) return;
  ComposeIntoWords(*this, other, result->MutableRow(0));
}

// -------------------------------------------------------------- Matrix

BitMatrix BitMatrix::Identity(size_t n) {
  BitMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

void BitMatrix::Assign(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  words_per_row_ = (cols + 63) / 64;
  bits_.assign(rows * words_per_row_, 0);
}

bool BitMatrix::RowAny(size_t r) const {
  return AnyWord(Row(r), words_per_row_);
}

bool BitMatrix::ColAny(size_t c) const {
  // Stride the column's word with a fixed mask — one word probe per row
  // instead of a bit test through Get (the analog of RowAny's word scan).
  const size_t cw = c / 64;
  const uint64_t mask = uint64_t{1} << (c % 64);
  for (size_t r = 0; r < rows_; ++r) {
    if (bits_[r * words_per_row_ + cw] & mask) return true;
  }
  return false;
}

bool BitMatrix::Any() const {
  return AnyWord(bits_.data(), bits_.size());
}

size_t BitMatrix::Count() const {
  size_t n = 0;
  for (uint64_t w : bits_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

BitMatrix BitMatrix::Compose(const BitMatrixView& other) const {
  BitMatrix result;
  BitMatrixView(*this).ComposeInto(other, &result);
  return result;
}

void BitMatrix::ComposeInto(const BitMatrixView& other,
                            BitMatrix* result) const {
  assert(result != this);
  BitMatrixView(*this).ComposeInto(other, result);
}

void BitMatrix::UnionWith(const BitMatrixView& other) {
  assert(rows_ == other.rows() && cols_ == other.cols());
  if (bits_.empty()) return;
  const uint64_t* src = other.Row(0);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= src[i];
}

void BitMatrix::ZeroRowsNotIn(const std::vector<uint64_t>& keep) {
  for (size_t r = 0; r < rows_; ++r) {
    bool kept = r / 64 < keep.size() && ((keep[r / 64] >> (r % 64)) & 1u);
    if (!kept) {
      uint64_t* row = MutableRow(r);
      for (size_t w = 0; w < words_per_row_; ++w) row[w] = 0;
    }
  }
}

std::vector<uint32_t> BitMatrix::NonEmptyRows() const {
  std::vector<uint32_t> out;
  for (size_t r = 0; r < rows_; ++r) {
    if (RowAny(r)) out.push_back(static_cast<uint32_t>(r));
  }
  return out;
}

void BitMatrix::NonEmptyRowsInto(std::vector<uint32_t>* out) const {
  BitMatrixView(*this).NonEmptyRowsInto(out);
}

std::vector<uint32_t> BitMatrix::NonEmptyCols() const {
  std::vector<uint32_t> out;
  std::vector<uint64_t> acc(words_per_row_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    const uint64_t* row = Row(r);
    for (size_t w = 0; w < words_per_row_; ++w) acc[w] |= row[w];
  }
  for (size_t c = 0; c < cols_; ++c) {
    if ((acc[c / 64] >> (c % 64)) & 1u) out.push_back(static_cast<uint32_t>(c));
  }
  return out;
}

std::string BitMatrix::ToString() const {
  std::string s;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) s += Get(r, c) ? '1' : '0';
    s += '\n';
  }
  return s;
}

BitMatrix ComposeNaive(const BitMatrix& a, const BitMatrix& b) {
  assert(a.cols() == b.rows());
  BitMatrix result(a.rows(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t m = 0; m < a.cols(); ++m) {
      if (!a.Get(r, m)) continue;
      for (size_t c = 0; c < b.cols(); ++c) {
        if (b.Get(m, c)) result.Set(r, c);
      }
    }
  }
  return result;
}

}  // namespace treenum
