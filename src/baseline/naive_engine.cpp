#include "baseline/naive_engine.h"

#include <algorithm>
#include <memory>
#include <set>

namespace treenum {

namespace {

using AssignmentSet = std::set<Assignment>;

Assignment MaskAssignment(VarMask mask, NodeId n) {
  Assignment a;
  for (VarId v = 0; mask >> v; ++v) {
    if (mask & (VarMask{1} << v)) a.Add(Singleton{v, n});
  }
  a.Normalize();
  return a;
}

}  // namespace

std::vector<Assignment> MaterializeAssignments(const UnrankedTree& tree,
                                               const UnrankedTva& query) {
  size_t w = query.num_states();

  // Iterative post-order: compute per node the vector (per state) of
  // assignment sets for the subtree rooted there.
  struct F {
    NodeId n;
    size_t ci;
    // Intermediate stepwise states after consuming ci children.
    std::vector<AssignmentSet> acc;
  };
  std::vector<F> stack;
  auto open = [&](NodeId n) {
    F f;
    f.n = n;
    f.ci = 0;
    f.acc.resize(w);
    for (const auto& [mask, q] : query.InitsForLabel(tree.label(n))) {
      f.acc[q].insert(MaskAssignment(mask, n));
    }
    stack.push_back(std::move(f));
  };

  std::vector<AssignmentSet> done;  // result of the last closed node
  open(tree.root());
  while (true) {
    F& f = stack.back();
    const auto& ch = tree.children(f.n);
    if (f.ci < ch.size()) {
      open(ch[f.ci]);  // the fold happens when the child closes, below
      continue;
    }
    // Close this node.
    done = std::move(f.acc);
    stack.pop_back();
    if (stack.empty()) break;
    // Fold `done` (the child's sets) into the parent's accumulator.
    F& p = stack.back();
    ++p.ci;
    std::vector<AssignmentSet> next(w);
    for (State q = 0; q < w; ++q) {
      if (p.acc[q].empty()) continue;
      for (State c = 0; c < w; ++c) {
        if (done[c].empty()) continue;
        for (State to : query.Step(q, c)) {
          for (const Assignment& a : p.acc[q]) {
            for (const Assignment& b : done[c]) {
              next[to].insert(Assignment::DisjointUnion(a, b));
            }
          }
        }
      }
    }
    p.acc = std::move(next);
  }

  AssignmentSet all;
  for (State q : query.final_states()) {
    all.insert(done[q].begin(), done[q].end());
  }
  return {all.begin(), all.end()};
}

NaiveEngine::NaiveEngine(UnrankedTree tree, UnrankedTva query)
    : RecomputeEngineBase(std::move(tree)), query_(std::move(query)) {
  Refresh();
}

UpdateStats NaiveEngine::Refresh() {
  results_ = MaterializeAssignments(tree_, query_);
  UpdateStats stats;
  stats.rebuilt_size = tree_.size();
  return stats;
}

std::unique_ptr<Engine::Cursor> NaiveEngine::MakeCursor() const {
  // Snapshot so the cursor survives subsequent recomputes.
  class Snapshot : public Engine::Cursor {
   public:
    explicit Snapshot(std::vector<Assignment> results)
        : results_(std::move(results)) {}
    bool Next(Assignment* out) override {
      if (pos_ >= results_.size()) return false;
      *out = results_[pos_++];
      return true;
    }

   private:
    std::vector<Assignment> results_;
    size_t pos_ = 0;
  };
  return std::make_unique<Snapshot>(results_);
}

}  // namespace treenum
