#include "core/tree_enumerator.h"

#include <cassert>

namespace treenum {

TreeEnumerator::TreeEnumerator(UnrankedTree tree, const UnrankedTva& query,
                               BoxEnumMode mode)
    : doc_(std::move(tree), query.num_labels()),
      handle_(doc_.Register(query, mode)),
      pipe_(&doc_.pipeline(handle_)) {}

TreeEnumerator::Cursor TreeEnumerator::Enumerate() const {
  Cursor c;
  c.emit_empty_ = pipe_->EmptyAssignmentSatisfies();
  c.inner_ = pipe_->MakeRootCursor();
  return c;
}

bool TreeEnumerator::Cursor::Next(Assignment* out) {
  if (emit_empty_) {
    emit_empty_ = false;
    *out = Assignment{};
    return true;
  }
  if (!inner_) return false;
  EnumOutput o;
  if (!inner_->Next(&o)) return false;
  *out = o.ToAssignment();
  return true;
}

size_t TreeEnumerator::Cursor::steps() const {
  return inner_ ? inner_->steps() : 0;
}

std::vector<Assignment> TreeEnumerator::EnumerateAll() const {
  return pipe_->EnumerateAll();
}

std::unique_ptr<Engine::Cursor> TreeEnumerator::MakeCursor() const {
  return pipe_->MakeEngineCursor();
}

std::vector<std::vector<NodeId>> AssignmentsToTuples(
    const std::vector<Assignment>& assignments, size_t num_vars) {
  std::vector<std::vector<NodeId>> tuples;
  tuples.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    std::vector<NodeId> tuple(num_vars, kNoNode);
    for (const Singleton& s : a.singletons()) {
      assert(s.var < num_vars && tuple[s.var] == kNoNode &&
             "assignment is not first-order");
      tuple[s.var] = s.node;
    }
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

}  // namespace treenum
