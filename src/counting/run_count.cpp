#include "counting/run_count.h"

#include <algorithm>

namespace treenum {

void RunCounter::EnsureSlot(TermNodeId id) {
  size_t need = (static_cast<size_t>(id) + 1) * circuit_->width();
  if (counts_.size() < need) counts_.resize(need, 0);
}

void RunCounter::BuildAll() {
  const Term& term = circuit_->term();
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term.root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBoxCounts(f.id);
  }
}

void RunCounter::RebuildBoxCounts(TermNodeId id) {
  EnsureSlot(id);
  const Term& term = circuit_->term();
  const BinaryTva& tva = circuit_->tva();
  const size_t w = tva.num_states();
  uint64_t* counts = counts_.data() + static_cast<size_t>(id) * w;
  std::fill_n(counts, w, 0);
  const TermNode& t = term.node(id);

  if (t.left == kNoTerm) {
    // One run start per matching ι entry (each annotation choice of this
    // leaf contributes its entries).
    for (const auto& [vars, q] : tva.LeafInitsFor(t.label)) {
      (void)vars;
      counts[q] += 1;
    }
  } else {
    const uint64_t* lc = counts_.data() + static_cast<size_t>(t.left) * w;
    const uint64_t* rc = counts_.data() + static_cast<size_t>(t.right) * w;
    for (State q1 = 0; q1 < w; ++q1) {
      if (lc[q1] == 0) continue;
      for (State q2 = 0; q2 < w; ++q2) {
        if (rc[q2] == 0) continue;
        uint64_t prod = lc[q1] * rc[q2];
        for (State q : tva.TransitionsFor(t.label, q1, q2)) {
          counts[q] += prod;
        }
      }
    }
  }
}

void RunCounter::FreeBoxCounts(TermNodeId id) {
  const size_t w = circuit_->width();
  size_t base = static_cast<size_t>(id) * w;
  if (base + w <= counts_.size()) {
    std::fill_n(counts_.begin() + base, w, 0);
  }
}

uint64_t RunCounter::Count(TermNodeId id, State q) const {
  const size_t w = circuit_->width();
  size_t base = static_cast<size_t>(id) * w;
  if (base + w > counts_.size()) return 0;
  return counts_[base + q];
}

uint64_t RunCounter::TotalAcceptingRuns() const {
  const Term& term = circuit_->term();
  const BinaryTva& tva = circuit_->tva();
  uint64_t total = 0;
  for (State q : tva.final_states()) {
    total += Count(term.root(), q);
  }
  return total;
}

}  // namespace treenum
