// Experiment E8 — structural transactions: one join-based SubtreeMove (or
// word split/join MoveRange) versus replaying the same move as individual
// leaf edits, at n = 131072 and subtree/range sizes m in {16, 256, 4096}.
// The transaction re-encodes the covering region once and rebuilds each
// surviving box once (ApplyCoalesced), so it must beat the 2m-edit replay —
// the acceptance bar is a >= 5x speedup at m = 4096, pinned in
// BENCH_structural.json together with the steady-state allocs_per_txn
// gauge (0 once warm; this binary links treenum_alloc_gauge).
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_util.h"
#include "core/document.h"

namespace treenum {
namespace {

constexpr size_t kDocSize = 131072;

// Tree document with two anchors under the root and one movable "broom"
// subtree of exactly m nodes (a root with m - 1 leaf children — the region
// re-encode cost depends on m, not the subtree's shape, and the flat shape
// makes the leaf-edit replay straightforward).
struct MoveSetup {
  explicit MoveSetup(size_t m) : doc(bench::MakeTree(kDocSize), 3) {
    h = doc.Register(bench::StandardQuery());
    NodeId root = doc.tree().root();
    doc.InsertFirstChild(root, 0, &a);
    doc.InsertFirstChild(root, 0, &b);
    doc.InsertFirstChild(a, 1, &v);
    for (size_t i = 1; i < m; ++i) {
      doc.InsertFirstChild(v, static_cast<Label>(2 - (i & 1)));
    }
  }

  // One transaction: ping-pong the subtree between the anchors.
  void MoveOnce(int parity) {
    doc.SubtreeMove(v, parity ? b : a, AttachWhere::kFirstChild);
  }

  // The same move replayed as leaf edits: delete the broom leaf by leaf,
  // then rebuild it node by node under the other anchor (2m edits).
  void ReplayOnce(int parity) {
    std::vector<Label> labels;
    labels.reserve(doc.tree().children(v).size());
    while (!doc.tree().children(v).empty()) {
      NodeId c = doc.tree().children(v).back();
      labels.push_back(doc.tree().label(c));
      doc.DeleteLeaf(c);
    }
    Label lv = doc.tree().label(v);
    doc.DeleteLeaf(v);
    doc.InsertFirstChild(parity ? b : a, lv, &v);
    for (size_t i = labels.size(); i-- > 0;) {
      doc.InsertFirstChild(v, labels[i]);
    }
  }

  DynamicDocument doc;
  DynamicDocument::QueryHandle h;
  NodeId a = kNoNode, b = kNoNode, v = kNoNode;
};

// Timed SubtreeMove transactions with the allocation gauge: after warmup
// the whole path (detach, region re-encode, rebalance, coalesced box
// rebuild, publish) must be allocation-free.
void BM_Structural_SubtreeMove(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  MoveSetup s(m);
  int parity = 0;
  for (int i = 0; i < 8; ++i) s.MoveOnce(parity ^= 1);  // warm scratch/pools
  bench::AllocGauge gauge;
  for (auto _ : state) {
    s.MoveOnce(parity ^= 1);
  }
  size_t txns = state.iterations();
  state.counters["allocs_per_txn"] = gauge.per(txns);
  state.SetItemsProcessed(static_cast<int64_t>(txns));
  bench::EmitJson("structural_subtree_move",
                  {{"n", static_cast<double>(kDocSize)},
                   {"m", static_cast<double>(m)},
                   {"allocs_per_txn", gauge.per(txns)},
                   {"iterations", static_cast<double>(txns)}});
}
BENCHMARK(BM_Structural_SubtreeMove)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// Head-to-head on one document instance: k transactions vs k replays,
// manually timed so one JSON record carries the speedup the acceptance
// criteria pin (>= 5x at m = 4096).
void BM_Structural_SubtreeMoveVsReplay(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  MoveSetup s(m);
  int parity = 0;
  for (int i = 0; i < 4; ++i) s.MoveOnce(parity ^= 1);
  const int kMoves = m >= 4096 ? 8 : 32;
  const int kReplays = m >= 4096 ? 2 : 8;
  using Clock = std::chrono::steady_clock;
  double us_move = 0, us_replay = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    for (int i = 0; i < kMoves; ++i) s.MoveOnce(parity ^= 1);
    auto t1 = Clock::now();
    for (int i = 0; i < kReplays; ++i) s.ReplayOnce(parity ^= 1);
    auto t2 = Clock::now();
    us_move = std::chrono::duration<double, std::micro>(t1 - t0).count() /
              kMoves;
    us_replay = std::chrono::duration<double, std::micro>(t2 - t1).count() /
                kReplays;
  }
  double speedup = us_move > 0 ? us_replay / us_move : 0;
  state.counters["us_per_move"] = us_move;
  state.counters["us_per_replay"] = us_replay;
  state.counters["speedup"] = speedup;
  bench::EmitJson("structural_move_vs_replay",
                  {{"n", static_cast<double>(kDocSize)},
                   {"m", static_cast<double>(m)},
                   {"us_per_move", us_move},
                   {"us_per_replay", us_replay},
                   {"speedup", speedup}});
}
BENCHMARK(BM_Structural_SubtreeMoveVsReplay)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(1);

// Word counterpart: AVL split/join MoveRange vs moving the same factor one
// letter at a time (2m edits), on a 131072-letter document with a spanner
// selecting every b position.
void BM_Structural_WordMoveVsReplay(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  // a*<x:b>(a|b)* — select every b position.
  Wva select_b(2, 2, 1);
  select_b.AddInitial(0);
  select_b.AddTransition(0, 0, 0, 0);
  select_b.AddTransition(0, 1, 0, 0);
  select_b.AddTransition(0, 1, 1, 1);
  select_b.AddTransition(1, 0, 0, 1);
  select_b.AddTransition(1, 1, 0, 1);
  select_b.AddFinal(1);

  Rng rng(bench::kSeed);
  Word w;
  w.reserve(kDocSize);
  for (size_t i = 0; i < kDocSize; ++i) {
    w.push_back(static_cast<Label>(rng.Index(2)));
  }
  DynamicDocument doc(w, 2);
  doc.Register(select_b);

  size_t n = doc.word_encoding().size();
  auto move_once = [&](int parity) {
    if (parity) {
      doc.MoveRange(0, m, n - m);  // front block to the back
    } else {
      doc.MoveRange(n - m, n, 0);  // and back again
    }
  };
  auto replay_once = [&](int parity) {
    for (size_t i = 0; i < m; ++i) {
      if (parity) {
        Label l = doc.word_encoding().LetterAt(0);
        doc.Erase(0);
        doc.Insert(doc.word_encoding().size(), l);
      } else {
        Label l = doc.word_encoding().LetterAt(doc.word_encoding().size() - 1);
        doc.Erase(doc.word_encoding().size() - 1);
        doc.Insert(0, l);
      }
    }
  };

  int parity = 0;
  for (int i = 0; i < 4; ++i) move_once(parity ^= 1);
  const int kMoves = 32;
  const int kReplays = m >= 4096 ? 2 : 8;
  using Clock = std::chrono::steady_clock;
  double us_move = 0, us_replay = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    for (int i = 0; i < kMoves; ++i) move_once(parity ^= 1);
    auto t1 = Clock::now();
    for (int i = 0; i < kReplays; ++i) replay_once(parity ^= 1);
    auto t2 = Clock::now();
    us_move = std::chrono::duration<double, std::micro>(t1 - t0).count() /
              kMoves;
    us_replay = std::chrono::duration<double, std::micro>(t2 - t1).count() /
                kReplays;
  }
  double speedup = us_move > 0 ? us_replay / us_move : 0;
  state.counters["us_per_move"] = us_move;
  state.counters["us_per_replay"] = us_replay;
  state.counters["speedup"] = speedup;
  bench::EmitJson("structural_word_move_vs_replay",
                  {{"n", static_cast<double>(kDocSize)},
                   {"m", static_cast<double>(m)},
                   {"us_per_move", us_move},
                   {"us_per_replay", us_replay},
                   {"speedup", speedup}});
}
BENCHMARK(BM_Structural_WordMoveVsReplay)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(1);

}  // namespace
}  // namespace treenum
