#include "automata/homogenize.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <tuple>

namespace treenum {

StateKinds ComputeStateKinds(const BinaryTva& a) {
  StateKinds kinds;
  kinds.zero_state.assign(a.num_states(), false);
  kinds.one_state.assign(a.num_states(), false);

  for (const LeafInit& li : a.leaf_inits()) {
    if (li.vars == 0) {
      kinds.zero_state[li.state] = true;
    } else {
      kinds.one_state[li.state] = true;
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : a.transitions()) {
      bool l0 = kinds.zero_state[t.left], l1 = kinds.one_state[t.left];
      bool r0 = kinds.zero_state[t.right], r1 = kinds.one_state[t.right];
      // 0-state: both children reached under empty valuations.
      if (l0 && r0 && !kinds.zero_state[t.state]) {
        kinds.zero_state[t.state] = true;
        changed = true;
      }
      // 1-state: at least one child is a 1-state, the other reachable at all.
      bool l_any = l0 || l1;
      bool r_any = r0 || r1;
      if (((l1 && r_any) || (r1 && l_any)) && !kinds.one_state[t.state]) {
        kinds.one_state[t.state] = true;
        changed = true;
      }
    }
  }
  return kinds;
}

bool IsHomogenized(const BinaryTva& a) {
  StateKinds k = ComputeStateKinds(a);
  for (State q = 0; q < a.num_states(); ++q) {
    if (!(k.zero_state[q] ^ k.one_state[q])) return false;
  }
  return true;
}

BinaryTva TrimBinaryTva(const BinaryTva& a, std::vector<State>* old_to_new) {
  std::vector<bool> reachable(a.num_states(), false);
  for (const LeafInit& li : a.leaf_inits()) reachable[li.state] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : a.transitions()) {
      if (reachable[t.left] && reachable[t.right] && !reachable[t.state]) {
        reachable[t.state] = true;
        changed = true;
      }
    }
  }

  std::vector<State> map(a.num_states(), kNoState);
  State next = 0;
  for (State q = 0; q < a.num_states(); ++q) {
    if (reachable[q]) map[q] = next++;
  }

  BinaryTva out(next, a.num_labels(), a.num_vars());
  for (const LeafInit& li : a.leaf_inits()) {
    out.AddLeafInit(li.label, li.vars, map[li.state]);
  }
  for (const Transition& t : a.transitions()) {
    if (reachable[t.left] && reachable[t.right]) {
      out.AddTransition(t.label, map[t.left], map[t.right], map[t.state]);
    }
  }
  for (State q : a.final_states()) {
    if (reachable[q]) out.AddFinal(map[q]);
  }
  if (old_to_new) *old_to_new = std::move(map);
  return out;
}

HomogenizedTva HomogenizeBinaryTva(const BinaryTva& a) {
  // Product states: (q, bit) -> 2*q + bit.
  size_t n = a.num_states();
  BinaryTva prod(2 * n, a.num_labels(), a.num_vars());
  for (const LeafInit& li : a.leaf_inits()) {
    uint32_t bit = li.vars == 0 ? 0 : 1;
    prod.AddLeafInit(li.label, li.vars, 2 * li.state + bit);
  }
  for (const Transition& t : a.transitions()) {
    for (uint32_t b1 = 0; b1 <= 1; ++b1) {
      for (uint32_t b2 = 0; b2 <= 1; ++b2) {
        prod.AddTransition(t.label, 2 * t.left + b1, 2 * t.right + b2,
                           2 * t.state + (b1 | b2));
      }
    }
  }
  for (State q : a.final_states()) {
    prod.AddFinal(2 * q);
    prod.AddFinal(2 * q + 1);
  }

  std::vector<State> map;
  BinaryTva trimmed = TrimBinaryTva(prod, &map);

  HomogenizedTva out{std::move(trimmed), {}};
  out.kind.assign(out.tva.num_states(), 0);
  for (State old = 0; old < 2 * n; ++old) {
    if (map[old] != kNoState) out.kind[map[old]] = old & 1;
  }
  assert(IsHomogenized(out.tva));
  return out;
}

// ---- Canonical form and fingerprints ----

namespace {

uint64_t Mix64(uint64_t x) { return FingerprintMix(x); }

uint64_t Combine(uint64_t h, uint64_t v) { return FingerprintCombine(h, v); }

size_t CountDistinct(std::vector<uint64_t> colors) {
  std::sort(colors.begin(), colors.end());
  return static_cast<size_t>(
      std::unique(colors.begin(), colors.end()) - colors.begin());
}

// Iterated signature refinement: the color of a state folds in the colors
// of every iota/delta entry it appears in (in each role), so two states get
// equal colors only if their local neighborhoods look alike. Refines
// `color` in place to the stable partition; returns its class count.
size_t RefineToFixpoint(const HomogenizedTva& a, std::vector<uint64_t>& color) {
  const BinaryTva& tva = a.tva;
  size_t n = tva.num_states();
  std::vector<uint64_t> next(n);
  std::vector<std::vector<uint64_t>> sigs(n);
  size_t distinct = CountDistinct(color);
  for (size_t round = 0; round < n; ++round) {
    for (const LeafInit& li : tva.leaf_inits()) {
      sigs[li.state].push_back(
          Combine(Combine(11, li.label), li.vars));
    }
    for (const Transition& t : tva.transitions()) {
      uint64_t base = Combine(13, t.label);
      sigs[t.state].push_back(
          Combine(Combine(Combine(base, 1), color[t.left]), color[t.right]));
      sigs[t.left].push_back(
          Combine(Combine(Combine(base, 2), color[t.right]), color[t.state]));
      sigs[t.right].push_back(
          Combine(Combine(Combine(base, 3), color[t.left]), color[t.state]));
    }
    for (State q = 0; q < n; ++q) {
      std::sort(sigs[q].begin(), sigs[q].end());
      uint64_t h = color[q];
      for (uint64_t s : sigs[q]) h = Combine(h, s);
      next[q] = h;
      sigs[q].clear();
    }
    color.swap(next);
    size_t nd = CountDistinct(color);
    if (nd == distinct) break;  // partition stable (or fully discrete)
    distinct = nd;
  }
  return distinct;
}

// Serialized relabeling of the whole automaton under `order` (order[new] =
// old). Two orderings yield equal keys iff the renumbered automata are
// identical, so lexicographic comparison of keys picks a numbering-invariant
// representative among candidate orderings.
std::vector<uint64_t> CanonicalKey(const HomogenizedTva& a,
                                   const std::vector<State>& order) {
  const BinaryTva& tva = a.tva;
  size_t n = tva.num_states();
  std::vector<State> new_of_old(n);
  for (State nq = 0; nq < n; ++nq) new_of_old[order[nq]] = nq;
  std::vector<uint64_t> key;
  key.reserve(n + 3 * tva.leaf_inits().size() + 4 * tva.transitions().size() +
              tva.final_states().size());
  for (State nq = 0; nq < n; ++nq) key.push_back(a.kind[order[nq]]);
  std::vector<std::array<uint64_t, 3>> inits;
  inits.reserve(tva.leaf_inits().size());
  for (const LeafInit& li : tva.leaf_inits()) {
    inits.push_back({li.label, li.vars, new_of_old[li.state]});
  }
  std::sort(inits.begin(), inits.end());
  for (const auto& e : inits) key.insert(key.end(), e.begin(), e.end());
  std::vector<std::array<uint64_t, 4>> trans;
  trans.reserve(tva.transitions().size());
  for (const Transition& t : tva.transitions()) {
    trans.push_back({t.label, new_of_old[t.left], new_of_old[t.right],
                     new_of_old[t.state]});
  }
  std::sort(trans.begin(), trans.end());
  for (const auto& e : trans) key.insert(key.end(), e.begin(), e.end());
  std::vector<uint64_t> finals;
  finals.reserve(tva.final_states().size());
  for (State q : tva.final_states()) finals.push_back(new_of_old[q]);
  std::sort(finals.begin(), finals.end());
  key.insert(key.end(), finals.begin(), finals.end());
  return key;
}

// Individualization-refinement search (the completeness half of canonical
// labeling, as in nauty-style algorithms): whenever refinement stabilizes
// with a non-discrete partition — the automaton has a nontrivial
// automorphism or a hash-coincidence — pick the class with the smallest
// color value (numbering-invariant), individualize each member in turn,
// re-refine, and recurse; keep the ordering whose fully-relabeled automaton
// is lexicographically smallest. `budget` caps explored discrete leaves so
// pathological symmetry cannot blow up; on exhaustion the best ordering
// found so far is kept (still deterministic for a fixed input numbering).
void SearchOrder(const HomogenizedTva& a, std::vector<uint64_t> color,
                 size_t distinct, std::vector<uint64_t>& best_key,
                 std::vector<State>& best_order, size_t& budget) {
  size_t n = a.tva.num_states();
  if (budget == 0) return;
  if (distinct == n) {
    --budget;
    std::vector<State> order(n);
    for (State q = 0; q < n; ++q) order[q] = q;
    std::sort(order.begin(), order.end(),
              [&](State x, State y) { return color[x] < color[y]; });
    std::vector<uint64_t> key = CanonicalKey(a, order);
    if (best_key.empty() || key < best_key) {
      best_key = std::move(key);
      best_order = std::move(order);
    }
    return;
  }
  // Target class: smallest color value occurring at least twice.
  std::vector<uint64_t> sorted(color);
  std::sort(sorted.begin(), sorted.end());
  uint64_t target = 0;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i] == sorted[i + 1]) {
      target = sorted[i];
      break;
    }
  }
  for (State q = 0; q < n; ++q) {
    if (color[q] != target) continue;
    std::vector<uint64_t> child(color);
    child[q] = Mix64(Combine(child[q], 0x494e444956ULL));  // individualize q
    size_t nd = RefineToFixpoint(a, child);
    SearchOrder(a, std::move(child), nd, best_key, best_order, budget);
    if (budget == 0) return;
  }
}

// Deterministic state ordering: signature refinement, then — if the stable
// partition is not discrete — individualization-refinement to break ties in
// a numbering-invariant way. Automata too large for the search (n > 512)
// fall back to breaking ties by the incoming numbering, which is complete
// for automata whose refinement is already discrete.
std::vector<State> CanonicalStateOrder(const HomogenizedTva& a) {
  const BinaryTva& tva = a.tva;
  size_t n = tva.num_states();
  std::vector<uint64_t> color(n);
  for (State q = 0; q < n; ++q) {
    color[q] = Mix64(1 + (a.kind[q] ? 2u : 0u) + (tva.IsFinal(q) ? 4u : 0u));
  }
  size_t distinct = RefineToFixpoint(a, color);

  if (distinct < n && n <= 512) {
    std::vector<uint64_t> best_key;
    std::vector<State> best_order;
    size_t budget = 4096;
    SearchOrder(a, std::move(color), distinct, best_key, best_order, budget);
    if (!best_order.empty()) return best_order;  // order[new_id] = old_id
    color.assign(n, 0);
    for (State q = 0; q < n; ++q) {
      color[q] = Mix64(1 + (a.kind[q] ? 2u : 0u) + (tva.IsFinal(q) ? 4u : 0u));
    }
    RefineToFixpoint(a, color);
  }

  std::vector<State> order(n);
  for (State q = 0; q < n; ++q) order[q] = q;
  std::sort(order.begin(), order.end(), [&](State x, State y) {
    return std::tie(color[x], x) < std::tie(color[y], y);
  });
  return order;  // order[new_id] = old_id
}

}  // namespace

void CanonicalizeHomogenizedTva(HomogenizedTva* a) {
  const BinaryTva& tva = a->tva;
  size_t n = tva.num_states();
  std::vector<State> order = CanonicalStateOrder(*a);
  std::vector<State> new_of_old(n);
  for (State nq = 0; nq < n; ++nq) new_of_old[order[nq]] = nq;

  std::vector<LeafInit> inits = tva.leaf_inits();
  for (LeafInit& li : inits) li.state = new_of_old[li.state];
  std::sort(inits.begin(), inits.end(), [](const LeafInit& x, const LeafInit& y) {
    return std::tie(x.label, x.vars, x.state) <
           std::tie(y.label, y.vars, y.state);
  });

  std::vector<Transition> trans = tva.transitions();
  for (Transition& t : trans) {
    t.left = new_of_old[t.left];
    t.right = new_of_old[t.right];
    t.state = new_of_old[t.state];
  }
  std::sort(trans.begin(), trans.end(),
            [](const Transition& x, const Transition& y) {
              return std::tie(x.label, x.left, x.right, x.state) <
                     std::tie(y.label, y.left, y.right, y.state);
            });

  std::vector<State> finals = tva.final_states();
  for (State& q : finals) q = new_of_old[q];
  std::sort(finals.begin(), finals.end());

  BinaryTva out(n, tva.num_labels(), tva.num_vars());
  for (const LeafInit& li : inits) out.AddLeafInit(li.label, li.vars, li.state);
  for (const Transition& t : trans) {
    out.AddTransition(t.label, t.left, t.right, t.state);
  }
  for (State q : finals) out.AddFinal(q);

  std::vector<uint8_t> kind(n);
  for (State old = 0; old < n; ++old) kind[new_of_old[old]] = a->kind[old];

  a->tva = std::move(out);
  a->kind = std::move(kind);
}

uint64_t FingerprintHomogenizedTva(const HomogenizedTva& a) {
  const BinaryTva& tva = a.tva;
  uint64_t h = Mix64(0x7265656e756dULL);  // arbitrary seed
  h = Combine(h, tva.num_states());
  h = Combine(h, tva.num_labels());
  h = Combine(h, tva.num_vars());
  for (uint8_t k : a.kind) h = Combine(h, k);
  for (const LeafInit& li : tva.leaf_inits()) {
    h = Combine(Combine(Combine(h, li.label), li.vars), li.state);
  }
  for (const Transition& t : tva.transitions()) {
    h = Combine(Combine(Combine(Combine(h, t.label), t.left), t.right),
                t.state);
  }
  for (State q : tva.final_states()) h = Combine(h, q);
  return h;
}

bool HomogenizedTvaEqual(const HomogenizedTva& a, const HomogenizedTva& b) {
  return a.tva.num_states() == b.tva.num_states() &&
         a.tva.num_labels() == b.tva.num_labels() &&
         a.tva.num_vars() == b.tva.num_vars() && a.kind == b.kind &&
         a.tva.leaf_inits() == b.tva.leaf_inits() &&
         a.tva.transitions() == b.tva.transitions() &&
         a.tva.final_states() == b.tva.final_states();
}

}  // namespace treenum
