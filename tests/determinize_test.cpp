#include "automata/determinize.h"

#include <gtest/gtest.h>

#include "automata/query_library.h"
#include "automata/translate.h"
#include "test_util.h"

namespace treenum {
namespace {

TEST(Determinize, ResultIsDeterministicAndEquivalent) {
  Rng rng(251);
  for (int trial = 0; trial < 20; ++trial) {
    BinaryTva a = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 8);
    auto det = DeterminizeBinaryTva(a, 1 << 10);
    ASSERT_TRUE(det.has_value());
    EXPECT_TRUE(IsDeterministic(det->tva));
    // Equivalence on random small terms.
    for (int t = 0; t < 5; ++t) {
      Term term(TermAlphabet{2});
      term.set_root(BuildRandomHHTerm(term, rng, 1 + rng.Index(5), 2));
      EXPECT_EQ(TermBruteForceAssignments(a, term),
                TermBruteForceAssignments(det->tva, term))
          << "trial " << trial;
    }
  }
}

TEST(Determinize, RespectsStateCap) {
  Rng rng(257);
  BinaryTva a = RandomBinaryTvaOnHH(rng, 6, 2, 1, 10, 40);
  auto det = DeterminizeBinaryTva(a, 2);
  // Either it fit in 2 subset states (unlikely) or we get nullopt.
  if (det.has_value()) {
    EXPECT_LE(det->num_subsets, 2u);
  }
}

TEST(Determinize, BlowupGrowsWithNondeterminism) {
  // Determinizing the translated ancestor-at-distance-k automaton blows up
  // with k while the nondeterministic pipeline stays polynomial.
  size_t prev = 0;
  for (size_t k : {1u, 2u, 3u}) {
    UnrankedTva q = QueryAncestorAtDistance(2, 0, k);
    TranslatedTva tr = TranslateUnrankedTva(q);
    auto det = DeterminizeBinaryTva(tr.tva, size_t{1} << 22);
    ASSERT_TRUE(det.has_value()) << "k=" << k;
    EXPECT_GT(det->num_subsets, prev) << "k=" << k;
    prev = det->num_subsets;
  }
}

}  // namespace
}  // namespace treenum
