#include "automata/serialize.h"

#include <istream>
#include <ostream>

namespace treenum {
namespace serialize {
namespace {

constexpr char kMagic[4] = {'T', 'N', 'Q', 'A'};

// Refuse to allocate for absurd element counts before the bounds-checked
// parse would naturally fail: every payload element is at least one byte,
// so a count larger than the bytes remaining is malformed by construction.
// This keeps corrupted counts from triggering multi-gigabyte resizes.
bool PlausibleCount(const ByteReader& r, uint64_t count,
                    size_t min_bytes_per_element) {
  if (min_bytes_per_element == 0) min_bytes_per_element = 1;
  return count <= r.remaining() / min_bytes_per_element;
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Fail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

// Common size prologue of every automaton payload. Variables are capped at
// 31 (VarMask is a uint32_t bitmask), so masks can be range-checked.
bool ParseSizes(ByteReader* r, uint64_t* states, uint64_t* labels,
                uint64_t* vars, std::string* error) {
  if (!r->GetU64(states) || !r->GetU64(labels) || !r->GetU64(vars)) {
    return Fail(error, "truncated automaton sizes");
  }
  if (*vars > 31) return Fail(error, "num_vars out of range");
  return true;
}

bool ValidMask(VarMask mask, uint64_t num_vars) {
  if (num_vars >= 32) return false;
  return (static_cast<uint64_t>(mask) >> num_vars) == 0;
}

}  // namespace

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

bool ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(*p_++);
  return true;
}

bool ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
  }
  *v = out;
  return true;
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

void AppendHomogenizedTva(const HomogenizedTva& a, ByteWriter* w) {
  const BinaryTva& t = a.tva;
  w->PutU64(t.num_states());
  w->PutU64(t.num_labels());
  w->PutU64(t.num_vars());
  w->PutU64(a.kind.size());
  for (uint8_t k : a.kind) w->PutU8(k);
  w->PutU64(t.leaf_inits().size());
  for (const LeafInit& li : t.leaf_inits()) {
    w->PutU32(li.label);
    w->PutU32(li.vars);
    w->PutU32(li.state);
  }
  w->PutU64(t.transitions().size());
  for (const Transition& tr : t.transitions()) {
    w->PutU32(tr.label);
    w->PutU32(tr.left);
    w->PutU32(tr.right);
    w->PutU32(tr.state);
  }
  w->PutU64(t.final_states().size());
  for (State q : t.final_states()) w->PutU32(q);
}

bool ParseHomogenizedTva(ByteReader* r, HomogenizedTva* out,
                         std::string* error) {
  uint64_t states, labels, vars;
  if (!ParseSizes(r, &states, &labels, &vars, error)) return false;

  uint64_t kind_count;
  if (!r->GetU64(&kind_count)) return Fail(error, "truncated kind vector");
  if (kind_count != states) return Fail(error, "kind vector size mismatch");
  if (!PlausibleCount(*r, kind_count, 1)) {
    return Fail(error, "kind vector overruns payload");
  }
  std::vector<uint8_t> kind(static_cast<size_t>(kind_count));
  for (uint8_t& k : kind) {
    if (!r->GetU8(&k)) return Fail(error, "truncated kind vector");
    if (k > 1) return Fail(error, "state kind out of range");
  }

  BinaryTva tva(static_cast<size_t>(states), static_cast<size_t>(labels),
                static_cast<size_t>(vars));

  uint64_t init_count;
  if (!r->GetU64(&init_count)) return Fail(error, "truncated leaf inits");
  if (!PlausibleCount(*r, init_count, 12)) {
    return Fail(error, "leaf inits overrun payload");
  }
  for (uint64_t i = 0; i < init_count; ++i) {
    uint32_t label, mask, state;
    if (!r->GetU32(&label) || !r->GetU32(&mask) || !r->GetU32(&state)) {
      return Fail(error, "truncated leaf init");
    }
    if (label >= labels || state >= states || !ValidMask(mask, vars)) {
      return Fail(error, "leaf init index out of range");
    }
    tva.AddLeafInit(label, mask, state);
  }

  uint64_t trans_count;
  if (!r->GetU64(&trans_count)) return Fail(error, "truncated transitions");
  if (!PlausibleCount(*r, trans_count, 16)) {
    return Fail(error, "transitions overrun payload");
  }
  for (uint64_t i = 0; i < trans_count; ++i) {
    uint32_t label, left, right, state;
    if (!r->GetU32(&label) || !r->GetU32(&left) || !r->GetU32(&right) ||
        !r->GetU32(&state)) {
      return Fail(error, "truncated transition");
    }
    if (label >= labels || left >= states || right >= states ||
        state >= states) {
      return Fail(error, "transition index out of range");
    }
    tva.AddTransition(label, left, right, state);
  }

  uint64_t final_count;
  if (!r->GetU64(&final_count)) return Fail(error, "truncated final states");
  if (!PlausibleCount(*r, final_count, 4)) {
    return Fail(error, "final states overrun payload");
  }
  for (uint64_t i = 0; i < final_count; ++i) {
    uint32_t q;
    if (!r->GetU32(&q)) return Fail(error, "truncated final state");
    if (q >= states) return Fail(error, "final state out of range");
    tva.AddFinal(q);
  }

  out->tva = std::move(tva);
  out->kind = std::move(kind);
  return true;
}

void AppendUnrankedTva(const UnrankedTva& a, ByteWriter* w) {
  w->PutU64(a.num_states());
  w->PutU64(a.num_labels());
  w->PutU64(a.num_vars());
  w->PutU64(a.inits().size());
  for (const LeafInit& li : a.inits()) {
    w->PutU32(li.label);
    w->PutU32(li.vars);
    w->PutU32(li.state);
  }
  w->PutU64(a.transitions().size());
  for (const StepTransition& tr : a.transitions()) {
    w->PutU32(tr.from);
    w->PutU32(tr.child);
    w->PutU32(tr.to);
  }
  w->PutU64(a.final_states().size());
  for (State q : a.final_states()) w->PutU32(q);
}

bool ParseUnrankedTva(ByteReader* r, UnrankedTva* out, std::string* error) {
  uint64_t states, labels, vars;
  if (!ParseSizes(r, &states, &labels, &vars, error)) return false;
  UnrankedTva a(static_cast<size_t>(states), static_cast<size_t>(labels),
                static_cast<size_t>(vars));

  uint64_t init_count;
  if (!r->GetU64(&init_count)) return Fail(error, "truncated inits");
  if (!PlausibleCount(*r, init_count, 12)) {
    return Fail(error, "inits overrun payload");
  }
  for (uint64_t i = 0; i < init_count; ++i) {
    uint32_t label, mask, state;
    if (!r->GetU32(&label) || !r->GetU32(&mask) || !r->GetU32(&state)) {
      return Fail(error, "truncated init");
    }
    if (label >= labels || state >= states || !ValidMask(mask, vars)) {
      return Fail(error, "init index out of range");
    }
    a.AddInit(label, mask, state);
  }

  uint64_t trans_count;
  if (!r->GetU64(&trans_count)) return Fail(error, "truncated transitions");
  if (!PlausibleCount(*r, trans_count, 12)) {
    return Fail(error, "transitions overrun payload");
  }
  for (uint64_t i = 0; i < trans_count; ++i) {
    uint32_t from, child, to;
    if (!r->GetU32(&from) || !r->GetU32(&child) || !r->GetU32(&to)) {
      return Fail(error, "truncated transition");
    }
    if (from >= states || child >= states || to >= states) {
      return Fail(error, "transition index out of range");
    }
    a.AddTransition(from, child, to);
  }

  uint64_t final_count;
  if (!r->GetU64(&final_count)) return Fail(error, "truncated final states");
  if (!PlausibleCount(*r, final_count, 4)) {
    return Fail(error, "final states overrun payload");
  }
  for (uint64_t i = 0; i < final_count; ++i) {
    uint32_t q;
    if (!r->GetU32(&q)) return Fail(error, "truncated final state");
    if (q >= states) return Fail(error, "final state out of range");
    a.AddFinal(q);
  }

  *out = std::move(a);
  return true;
}

void AppendWva(const Wva& a, ByteWriter* w) {
  w->PutU64(a.num_states());
  w->PutU64(a.num_labels());
  w->PutU64(a.num_vars());
  w->PutU64(a.transitions().size());
  for (const WvaTransition& tr : a.transitions()) {
    w->PutU32(tr.from);
    w->PutU32(tr.label);
    w->PutU32(tr.vars);
    w->PutU32(tr.to);
  }
  w->PutU64(a.initial_states().size());
  for (State q : a.initial_states()) w->PutU32(q);
  w->PutU64(a.final_states().size());
  for (State q : a.final_states()) w->PutU32(q);
}

bool ParseWva(ByteReader* r, Wva* out, std::string* error) {
  uint64_t states, labels, vars;
  if (!ParseSizes(r, &states, &labels, &vars, error)) return false;
  Wva a(static_cast<size_t>(states), static_cast<size_t>(labels),
        static_cast<size_t>(vars));

  uint64_t trans_count;
  if (!r->GetU64(&trans_count)) return Fail(error, "truncated transitions");
  if (!PlausibleCount(*r, trans_count, 16)) {
    return Fail(error, "transitions overrun payload");
  }
  for (uint64_t i = 0; i < trans_count; ++i) {
    uint32_t from, label, mask, to;
    if (!r->GetU32(&from) || !r->GetU32(&label) || !r->GetU32(&mask) ||
        !r->GetU32(&to)) {
      return Fail(error, "truncated transition");
    }
    if (from >= states || to >= states || label >= labels ||
        !ValidMask(mask, vars)) {
      return Fail(error, "transition index out of range");
    }
    a.AddTransition(from, label, mask, to);
  }

  uint64_t initial_count;
  if (!r->GetU64(&initial_count)) {
    return Fail(error, "truncated initial states");
  }
  if (!PlausibleCount(*r, initial_count, 4)) {
    return Fail(error, "initial states overrun payload");
  }
  for (uint64_t i = 0; i < initial_count; ++i) {
    uint32_t q;
    if (!r->GetU32(&q)) return Fail(error, "truncated initial state");
    if (q >= states) return Fail(error, "initial state out of range");
    a.AddInitial(q);
  }

  uint64_t final_count;
  if (!r->GetU64(&final_count)) return Fail(error, "truncated final states");
  if (!PlausibleCount(*r, final_count, 4)) {
    return Fail(error, "final states overrun payload");
  }
  for (uint64_t i = 0; i < final_count; ++i) {
    uint32_t q;
    if (!r->GetU32(&q)) return Fail(error, "truncated final state");
    if (q >= states) return Fail(error, "final state out of range");
    a.AddFinal(q);
  }

  *out = std::move(a);
  return true;
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

bool WriteRecord(RecordKind kind, const std::string& payload,
                 std::ostream& out) {
  ByteWriter header;
  for (char c : kMagic) header.PutU8(static_cast<uint8_t>(c));
  header.PutU32(kFormatVersion);
  header.PutU32(kEndianMark);
  header.PutU8(static_cast<uint8_t>(kind));
  header.PutU64(payload.size());
  out.write(header.bytes().data(),
            static_cast<std::streamsize>(header.bytes().size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  ByteWriter footer;
  footer.PutU64(Fnv1a64(payload));
  out.write(footer.bytes().data(),
            static_cast<std::streamsize>(footer.bytes().size()));
  return static_cast<bool>(out);
}

bool ReadRecord(std::istream& in, RecordKind* kind, std::string* payload,
                std::string* error) {
  char header[4 + 4 + 4 + 1 + 8];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Fail(error, "truncated record header");
  }
  ByteReader r(header, sizeof(header));
  for (char c : kMagic) {
    uint8_t b;
    r.GetU8(&b);
    if (b != static_cast<uint8_t>(c)) return Fail(error, "bad magic");
  }
  uint32_t version, endian;
  uint8_t kind_byte;
  uint64_t payload_len;
  r.GetU32(&version);
  r.GetU32(&endian);
  r.GetU8(&kind_byte);
  r.GetU64(&payload_len);
  if (version != kFormatVersion) return Fail(error, "unsupported version");
  if (endian != kEndianMark) return Fail(error, "foreign byte order");
  if (kind_byte < static_cast<uint8_t>(RecordKind::kHomogenizedTva) ||
      kind_byte > static_cast<uint8_t>(RecordKind::kCacheImage)) {
    return Fail(error, "unknown record kind");
  }
  // Cap the up-front allocation: a corrupted length either exceeds the cap
  // (rejected here) or the read below comes up short (rejected there).
  constexpr uint64_t kMaxPayload = uint64_t{1} << 30;
  if (payload_len > kMaxPayload) return Fail(error, "payload too large");

  payload->resize(static_cast<size_t>(payload_len));
  if (payload_len > 0) {
    in.read(&(*payload)[0], static_cast<std::streamsize>(payload_len));
    if (in.gcount() != static_cast<std::streamsize>(payload_len)) {
      return Fail(error, "truncated payload");
    }
  }
  char footer[8];
  in.read(footer, sizeof(footer));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(footer))) {
    return Fail(error, "truncated checksum");
  }
  ByteReader fr(footer, sizeof(footer));
  uint64_t checksum;
  fr.GetU64(&checksum);
  if (checksum != Fnv1a64(*payload)) return Fail(error, "checksum mismatch");
  *kind = static_cast<RecordKind>(kind_byte);
  return true;
}

}  // namespace serialize

// ---------------------------------------------------------------------------
// Compiled-plan wrappers
// ---------------------------------------------------------------------------

bool SaveCompiled(const HomogenizedTva& a, std::ostream& out) {
  serialize::ByteWriter w;
  serialize::AppendHomogenizedTva(a, &w);
  return serialize::WriteRecord(serialize::RecordKind::kHomogenizedTva,
                                w.bytes(), out);
}

bool LoadCompiled(std::istream& in, HomogenizedTva* out, std::string* error) {
  serialize::RecordKind kind;
  std::string payload;
  if (!serialize::ReadRecord(in, &kind, &payload, error)) return false;
  if (kind != serialize::RecordKind::kHomogenizedTva) {
    if (error != nullptr) *error = "unexpected record kind";
    return false;
  }
  serialize::ByteReader r(payload.data(), payload.size());
  if (!serialize::ParseHomogenizedTva(&r, out, error)) return false;
  if (r.remaining() != 0) {
    if (error != nullptr) *error = "trailing bytes in payload";
    return false;
  }
  return true;
}

}  // namespace treenum
