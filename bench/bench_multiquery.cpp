// Shared-document multi-query serving (core/document.h): two costs as a
// function of the number of registered queries Q.
//
//   1. Per-edit maintenance: one DynamicDocument with Q registered queries
//      pays the O(log n) balanced-term encoding maintenance once per edit
//      and only fans the changed path out per query, vs. Q independent
//      TreeEnumerators that each re-do the encoding half (and, on
//      rebalances, the full subterm rebuild) — the `multiquery_shared` /
//      `multiquery_independent` series.
//   2. Registry dedupe: the same query registered Q times collapses onto
//      one refcounted pipeline, so per-edit cost tracks *distinct* queries
//      — the `multiquery_dedupe` series (flat in Q).
//   3. Batched-commit wall time with parallel refresh fan-out: the merged
//      changed-box set is computed once and each query's pipeline is
//      refreshed on a ThreadPool lane; pool sizes 1/4/8 give the
//      `multiquery_commit` series (pool=1 is the deterministic inline
//      fallback, i.e. the serial baseline).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/document.h"
#include "util/thread_pool.h"

namespace treenum {
namespace {

using bench::kSeed;

// A mix of library queries over the shared 3-label alphabet, so registered
// pipelines have different widths (uneven per-lane work, the realistic
// case for the dynamic index hand-out of ThreadPool). All 8 are pairwise
// distinct automata: the document's registry dedupes identical queries to
// one pipeline, so repeating a query here would silently shrink the
// shared-document workload and skew the shared-vs-independent comparison
// (the dedupe effect itself is measured by the dedupe series below).
UnrankedTva QueryAt(size_t i) {
  switch (i % 8) {
    case 0:
      return QueryMarkedAncestor(3, 1, 2);
    case 1:
      return QuerySelectLabel(3, 1);
    case 2:
      return QueryChildOfLabel(3, 0, 2);
    case 3:
      return QueryDescendantPairs(3, 0, 1);
    case 4:
      return QueryMarkedAncestor(3, 2, 1);
    case 5:
      return QuerySelectLabel(3, 2);
    case 6:
      return QueryChildOfLabel(3, 1, 0);
    default:
      return QueryDescendantPairs(3, 2, 0);
  }
}

using bench::EditScript;

// ---- 1. Per-edit maintenance vs. Q ----

void BM_MultiQuery_IndependentEngines(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t q = static_cast<size_t>(state.range(1));
  UnrankedTree tree = bench::MakeTree(n);
  std::vector<std::unique_ptr<TreeEnumerator>> engines;
  for (size_t i = 0; i < q; ++i) {
    engines.push_back(std::make_unique<TreeEnumerator>(tree, QueryAt(i)));
  }
  EditScript script(tree, kSeed);
  double total_us = 0;
  size_t edits = 0;
  for (auto _ : state) {
    Edit e = script.Next();
    auto t0 = std::chrono::steady_clock::now();
    for (auto& engine : engines) engine->ApplyEdit(e);
    total_us += std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++edits;
  }
  state.counters["queries"] = static_cast<double>(q);
  bench::EmitJson("multiquery_independent",
                  {{"n", static_cast<double>(n)},
                   {"q", static_cast<double>(q)},
                   {"us_per_edit", edits ? total_us / edits : 0.0},
                   {"iterations", static_cast<double>(state.iterations())}});
}
BENCHMARK(BM_MultiQuery_IndependentEngines)
    ->Args({131072, 1})
    ->Args({131072, 2})
    ->Args({131072, 4})
    ->Args({131072, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_MultiQuery_SharedDocument(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t q = static_cast<size_t>(state.range(1));
  UnrankedTree tree = bench::MakeTree(n);
  DynamicDocument doc(tree, 3);
  for (size_t i = 0; i < q; ++i) doc.Register(QueryAt(i));
  EditScript script(tree, kSeed);
  double total_us = 0;
  size_t edits = 0;
  for (auto _ : state) {
    Edit e = script.Next();
    auto t0 = std::chrono::steady_clock::now();
    doc.ApplyEdit(e);
    total_us += std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++edits;
  }
  state.counters["queries"] = static_cast<double>(q);
  bench::EmitJson("multiquery_shared",
                  {{"n", static_cast<double>(n)},
                   {"q", static_cast<double>(q)},
                   {"us_per_edit", edits ? total_us / edits : 0.0},
                   {"iterations", static_cast<double>(state.iterations())}});
}
BENCHMARK(BM_MultiQuery_SharedDocument)
    ->Args({131072, 1})
    ->Args({131072, 2})
    ->Args({131072, 4})
    ->Args({131072, 8})
    ->Unit(benchmark::kMicrosecond);

// ---- 2. Duplicate-heavy registration (registry dedupe) ----
//
// The same query registered Q times: the registry canonicalizes and maps
// every registration onto one refcounted pipeline, so per-edit refresh
// cost scales with the number of *distinct* queries (1 here), not with
// the number of registrations — the `multiquery_dedupe` series should be
// flat in Q (compare with `multiquery_shared`, where the Q queries are
// distinct, and `multiquery_independent`, where each registration is a
// whole engine).
void BM_MultiQuery_DuplicateQueries(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t q = static_cast<size_t>(state.range(1));
  UnrankedTree tree = bench::MakeTree(n);
  DynamicDocument doc(tree, 3);
  for (size_t i = 0; i < q; ++i) doc.Register(bench::StandardQuery());
  EditScript script(tree, kSeed);
  double total_us = 0;
  size_t edits = 0;
  for (auto _ : state) {
    Edit e = script.Next();
    auto t0 = std::chrono::steady_clock::now();
    doc.ApplyEdit(e);
    total_us += std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++edits;
  }
  state.counters["queries"] = static_cast<double>(q);
  state.counters["distinct"] = static_cast<double>(doc.num_pipelines());
  bench::EmitJson("multiquery_dedupe",
                  {{"n", static_cast<double>(n)},
                   {"q", static_cast<double>(q)},
                   {"distinct", static_cast<double>(doc.num_pipelines())},
                   {"us_per_edit", edits ? total_us / edits : 0.0},
                   {"iterations", static_cast<double>(state.iterations())}});
}
BENCHMARK(BM_MultiQuery_DuplicateQueries)
    ->Args({131072, 1})
    ->Args({131072, 2})
    ->Args({131072, 4})
    ->Args({131072, 8})
    ->Unit(benchmark::kMicrosecond);

// ---- 3. Batched commits with parallel refresh fan-out ----

void BM_MultiQuery_BatchedCommit(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t q = static_cast<size_t>(state.range(1));
  size_t lanes = static_cast<size_t>(state.range(2));
  constexpr size_t kBatch = 256;

  UnrankedTree tree = bench::MakeTree(n);
  ThreadPool pool(lanes);
  DynamicDocument doc(tree, 3);
  doc.set_pool(&pool);
  for (size_t i = 0; i < q; ++i) doc.Register(QueryAt(i));
  EditScript script(tree, kSeed);
  // Warm the arena spans so the measured commits are refresh-dominated.
  doc.BeginBatch();
  for (size_t i = 0; i < kBatch; ++i) doc.ApplyEdit(script.NextRelabel());
  doc.CommitBatch();

  double commit_us = 0;
  size_t commits = 0;
  for (auto _ : state) {
    doc.BeginBatch();
    for (size_t i = 0; i < kBatch; ++i) doc.ApplyEdit(script.NextRelabel());
    auto t0 = std::chrono::steady_clock::now();
    doc.CommitBatch();
    commit_us += std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    ++commits;
  }
  state.counters["queries"] = static_cast<double>(q);
  state.counters["pool"] = static_cast<double>(lanes);
  state.counters["us_per_commit"] = commits ? commit_us / commits : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
  bench::EmitJson("multiquery_commit",
                  {{"n", static_cast<double>(n)},
                   {"q", static_cast<double>(q)},
                   {"k", static_cast<double>(kBatch)},
                   {"pool", static_cast<double>(lanes)},
                   {"us_per_commit", commits ? commit_us / commits : 0.0},
                   {"iterations", static_cast<double>(state.iterations())}});
}
BENCHMARK(BM_MultiQuery_BatchedCommit)
    ->Args({131072, 8, 1})
    ->Args({131072, 8, 4})
    ->Args({131072, 8, 8})
    ->Args({131072, 4, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace treenum
