// Static-engine baseline (the Bagan'06 / Kazana-Segoufin row of Table 1):
// linear-time preprocessing and constant-delay enumeration, but no update
// support — every edit triggers a full preprocessing run. Batched updates
// (BeginBatch/CommitBatch) re-preprocess once at commit.
#ifndef TREENUM_BASELINE_STATIC_ENGINE_H_
#define TREENUM_BASELINE_STATIC_ENGINE_H_

#include <memory>

#include "baseline/recompute_engine.h"
#include "core/tree_enumerator.h"

namespace treenum {

class StaticEngine : public RecomputeEngineBase {
 public:
  /// Preprocesses `tree` for `query` (both copied; edits re-preprocess —
  /// O(|T|) each, the update cost Table 1 attributes to the static state
  /// of the art).
  StaticEngine(UnrankedTree tree, UnrankedTva query);

  /// All satisfying assignments (sorted, duplicate-free).
  std::vector<Assignment> EnumerateAll() const override {
    return inner_->EnumerateAll();
  }
  /// Constant-delay cursor over the satisfying assignments.
  TreeEnumerator::Cursor Enumerate() const { return inner_->Enumerate(); }
  std::unique_ptr<Engine::Cursor> MakeCursor() const override {
    return inner_->MakeCursor();
  }
  bool HasAnswer() const override { return inner_->HasAnswer(); }

 protected:
  UpdateStats Refresh() override;

 private:
  UnrankedTva query_;
  std::unique_ptr<TreeEnumerator> inner_;
};

}  // namespace treenum

#endif  // TREENUM_BASELINE_STATIC_ENGINE_H_
