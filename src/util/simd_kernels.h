// Runtime-dispatched word-block kernels for the bit-matrix layer.
//
// Every BitMatrix / BitMatrixView primitive that scans or combines packed
// 64-bit rows (composition of ∪-reachability relations, row/whole-matrix
// any, popcount, union, zero-fill) bottoms out in one of the function
// pointers below. Three implementations exist — scalar, AVX2 and AVX-512 —
// compiled in separate translation units with per-TU arch flags
// (simd_kernels_{scalar,avx2,avx512}.cpp; see CMakeLists.txt), so the
// library itself stays runnable on any x86-64 while still containing the
// wide code paths. The running tier is picked once, at first use, from
// cpuid (__builtin_cpu_supports) and can be forced with the environment
// variable
//
//   TREENUM_SIMD=scalar|avx2|avx512
//
// for testing and benchmarking. A forced tier the machine (or the build)
// cannot run falls back to the next lower available tier, so e.g.
// TREENUM_SIMD=avx512 on an AVX2-only host degrades gracefully to avx2.
#ifndef TREENUM_UTIL_SIMD_KERNELS_H_
#define TREENUM_UTIL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace treenum {

enum class SimdTier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One dispatch table of word-block kernels. All pointers are non-null.
struct BitKernels {
  /// dst[i] |= src[i] for i in [0, n). dst and src must not overlap
  /// (except dst == src, which is a no-op union).
  void (*or_into)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst[i] = 0 for i in [0, n).
  void (*zero)(uint64_t* dst, size_t n);
  /// True iff some word in [0, n) is non-zero.
  bool (*any)(const uint64_t* words, size_t n);
  /// Total number of set bits in [0, n). (Scalar popcnt reduction on every
  /// tier: the deployment CPUs lack AVX-512 VPOPCNTDQ, and the hot paths
  /// are any/compose, not count.)
  size_t (*popcount)(const uint64_t* words, size_t n);
  /// Boolean matrix product out = a ∘ b over packed rows:
  ///   out(r, c) = ∃m a(r, m) && b(m, c).
  /// `a` is a_rows rows of a_wpr words; `b` has one row of b_wpr words per
  /// column index of `a` that can be set (i.e. at least 64 * a_wpr rows
  /// never hold set bits past a's column count — the standard tail-bits
  /// invariant); `out` is a_rows * b_wpr words.
  ///
  /// OVERWRITE semantics: every word of `out` is written (accumulators
  /// start at zero inside the kernel), so callers need not pre-zero.
  /// `out` must not alias `a` or `b`. Tail bits of `out` rows stay zero
  /// because `b`'s tail bits are zero.
  void (*compose)(const uint64_t* a, size_t a_rows, size_t a_wpr,
                  const uint64_t* b, size_t b_wpr, uint64_t* out);
  /// Tier name for logs/benchmarks ("scalar", "avx2", "avx512").
  const char* name;
};

/// Printable name of a tier.
const char* TierName(SimdTier tier);

/// The kernel table for `tier`, or null when this build or this CPU cannot
/// run it. kScalar is always available. Lets tests and benchmarks iterate
/// every runnable tier in one process, independent of the active choice.
const BitKernels* KernelsForTier(SimdTier tier);

/// The tier the process-wide dispatch resolved to (cpuid + TREENUM_SIMD
/// override, evaluated once at first use).
SimdTier ActiveTier();

/// The process-wide kernel table; what bit_matrix.cpp routes through.
const BitKernels& ActiveKernels();

namespace internal {
// Per-TU entry points used by the dispatcher; not part of the public API.
const BitKernels& ScalarKernels();
const BitKernels* Avx2KernelsOrNull();    // null when built without AVX2
const BitKernels* Avx512KernelsOrNull();  // null when built without AVX-512
}  // namespace internal

}  // namespace treenum

#endif  // TREENUM_UTIL_SIMD_KERNELS_H_
