// Word variable automata (WVA, §8 of the paper) — the analogue of extended
// sequential variable-set automata from the document-spanner literature.
//
// A Λ,X-WVA is A = (Q, δ, I, F) with δ ⊆ Q × Λ × 2^X × Q: in state q,
// reading letter l annotated with variable set Y, the automaton may move to
// state q'. Satisfying assignments pair variables with word positions.
#ifndef TREENUM_AUTOMATA_WVA_H_
#define TREENUM_AUTOMATA_WVA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/binary_tva.h"
#include "trees/assignment.h"

namespace treenum {

/// A word is a sequence of labels; positions are 0-based.
using Word = std::vector<Label>;

/// A WVA transition (q, l, Y, q') ∈ δ.
struct WvaTransition {
  State from;
  Label label;
  VarMask vars;
  State to;
  friend bool operator==(const WvaTransition& a, const WvaTransition& b) {
    return a.from == b.from && a.label == b.label && a.vars == b.vars &&
           a.to == b.to;
  }
};

/// A nondeterministic word variable automaton.
class Wva {
 public:
  Wva(size_t num_states, size_t num_labels, size_t num_vars)
      : num_states_(num_states),
        num_labels_(num_labels),
        num_vars_(num_vars) {}

  size_t num_states() const { return num_states_; }
  size_t num_labels() const { return num_labels_; }
  size_t num_vars() const { return num_vars_; }

  void AddTransition(State from, Label l, VarMask vars, State to);
  void AddInitial(State q);
  void AddFinal(State q);

  const std::vector<WvaTransition>& transitions() const {
    return transitions_;
  }
  const std::vector<State>& initial_states() const { return initial_states_; }
  const std::vector<State>& final_states() const { return final_states_; }
  bool IsInitial(State q) const;
  bool IsFinal(State q) const;

  /// All (Y, q') reachable from q reading letter l.
  const std::vector<std::pair<VarMask, State>>& Step(State q, Label l) const;

  /// Boolean evaluation under a fixed per-position valuation.
  bool Accepts(const Word& w, const std::vector<VarMask>& valuation) const;

  /// Ground-truth oracle: all satisfying assignments by brute force over all
  /// valuations; only for tiny instances (|w| * |X| <= ~22 bits).
  std::vector<Assignment> BruteForceAssignments(const Word& w) const;

  std::string ToString() const;

 private:
  size_t num_states_;
  size_t num_labels_;
  size_t num_vars_;

  std::vector<WvaTransition> transitions_;
  std::vector<State> initial_states_;
  std::vector<State> final_states_;
  std::vector<bool> is_initial_;
  std::vector<bool> is_final_;

  // step_[q * num_labels + l] = list of (vars, to).
  std::vector<std::vector<std::pair<VarMask, State>>> step_;

  static const std::vector<std::pair<VarMask, State>> kEmptySteps;
};

/// 64-bit structural fingerprint of `a`, invariant under the *declaration
/// order* of its transitions and initial/final sets (commutative fold) but
/// not under state renumbering. A fast pre-translation cache key; the
/// shared-document registry dedupes on the canonical homogenized form
/// instead (see automata/homogenize.h).
uint64_t FingerprintWva(const Wva& a);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_WVA_H_
