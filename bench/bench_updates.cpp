// Experiment E4 — Theorem 8.1, updates: O(log n) per edit. Separate series
// per edit kind; the relabel series is worst-case logarithmic (pure path
// recomputation), the structural series are amortized (partial rebuilds,
// see DESIGN.md §2.1) — the reported averages grow logarithmically.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace treenum {
namespace {

using bench::kSeed;

void BM_Update_Relabel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator e(bench::MakeTree(n), bench::StandardQuery());
  Rng rng(kSeed);
  std::vector<NodeId> nodes = e.tree().PreorderNodes();
  for (auto _ : state) {
    NodeId target = nodes[rng.Index(nodes.size())];
    e.Relabel(target, static_cast<Label>(rng.Index(3)));
  }
}
BENCHMARK(BM_Update_Relabel)->Range(1024, 262144)->Unit(benchmark::kMicrosecond);

void BM_Update_InsertLeaf(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator e(bench::MakeTree(n), bench::StandardQuery());
  Rng rng(kSeed);
  // Insertion targets cycle through a fixed precomputed set so target
  // selection costs O(1) inside the timed region.
  std::vector<NodeId> targets = e.tree().PreorderNodes();
  size_t ti = 0;
  size_t rebuilds = 0;
  size_t rebuilt_nodes = 0;
  for (auto _ : state) {
    NodeId target = targets[ti++ % targets.size()];
    UpdateStats s =
        e.InsertFirstChild(target, static_cast<Label>(rng.Index(3)));
    rebuilds += s.rebuilt_size > 0;
    rebuilt_nodes += s.rebuilt_size;
  }
  state.counters["rebuild_fraction"] =
      static_cast<double>(rebuilds) / static_cast<double>(state.iterations());
  state.counters["rebuilt_nodes_per_update"] =
      static_cast<double>(rebuilt_nodes) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Update_InsertLeaf)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMicrosecond);

void BM_Update_InsertDeleteCycle(benchmark::State& state) {
  // Insert then delete the same leaf: size stays constant, so the series is
  // clean of growth effects.
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator e(bench::MakeTree(n), bench::StandardQuery());
  Rng rng(kSeed);
  std::vector<NodeId> nodes = e.tree().PreorderNodes();
  for (auto _ : state) {
    NodeId target = nodes[rng.Index(nodes.size())];
    NodeId u;
    e.InsertFirstChild(target, 2, &u);
    e.DeleteLeaf(u);
  }
}
BENCHMARK(BM_Update_InsertDeleteCycle)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMicrosecond);

void BM_Update_MixedStream(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator e(bench::MakeTree(n), bench::StandardQuery());
  bench::EditDriver driver(e, kSeed);
  size_t boxes = 0;
  for (auto _ : state) {
    UpdateStats s = driver.Step();
    boxes += s.boxes_recomputed;
  }
  state.counters["boxes_per_update"] =
      static_cast<double>(boxes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Update_MixedStream)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMicrosecond);

// ---- Batched updates: ApplyEdits(k edits) vs the same k edits applied
// one-by-one. The batch coalesces the changed_bottom_up sets, so shared
// root-path boxes are refreshed once per batch instead of once per edit;
// the win grows with k (until the batch covers the whole tree).
template <bool kBatched>
void UpdateScriptBench(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  UnrankedTree tree = bench::MakeTree(n);
  TreeEnumerator e(tree, bench::StandardQuery());
  bench::EngineEditDriver driver(e, tree, kSeed);
  size_t boxes = 0;
  for (auto _ : state) {
    if (kBatched) e.BeginBatch();
    for (size_t i = 0; i < k; ++i) boxes += driver.Step().boxes_recomputed;
    if (kBatched) boxes += e.CommitBatch().boxes_recomputed;
  }
  double per_edit_boxes = static_cast<double>(boxes) /
                          static_cast<double>(state.iterations() * k);
  state.counters["boxes_per_edit"] = per_edit_boxes;
  state.counters["edits_per_batch"] = static_cast<double>(k);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * k));
  bench::EmitJson(kBatched ? "update_batched" : "update_sequential",
                  {{"n", static_cast<double>(n)},
                   {"k", static_cast<double>(k)},
                   {"boxes_per_edit", per_edit_boxes},
                   {"iterations", static_cast<double>(state.iterations())}});
}

void BM_Update_SequentialEdits(benchmark::State& state) {
  UpdateScriptBench<false>(state);
}
BENCHMARK(BM_Update_SequentialEdits)
    ->Args({131072, 16})
    ->Args({131072, 64})
    ->Args({131072, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_Update_BatchedEdits(benchmark::State& state) {
  UpdateScriptBench<true>(state);
}
BENCHMARK(BM_Update_BatchedEdits)
    ->Args({131072, 16})
    ->Args({131072, 64})
    ->Args({131072, 256})
    ->Unit(benchmark::kMicrosecond);

// ---- Relabel-heavy scripts: relabels are the paper's cheapest update
// (pure O(log n) path recomputation, no rebalancing) and the steady-state
// showcase for the arena/CSR storage — after warmup, a relabel's circuit
// *and* jump-index refresh reuse their pool spans in place, so the indexed
// and _NoIndex series are both allocation-free in steady state.
// allocs_per_edit reports the remaining whole-engine heap traffic via the
// allocation gauge (first-touch pool growth only; decays towards 0 as the
// script revisits configurations).
template <bool kBatched>
void RelabelScriptBench(benchmark::State& state, BoxEnumMode mode) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  UnrankedTree tree = bench::MakeTree(n);
  TreeEnumerator e(tree, bench::StandardQuery(), mode);
  bench::EngineEditDriver driver(e, tree, kSeed);
  // Untimed warmup pass: sizes the arena spans touched by the script.
  for (size_t i = 0; i < k; ++i) driver.RelabelStep();
  size_t boxes = 0;
  bench::AllocGauge gauge;
  // Snapshot-layer cost: spine nodes path-copied per edit (the published
  // snapshot pins the root, so every edit copies its O(log n) spine) and
  // node versions recycled through the term's free list.
  uint64_t copies0 = e.term().path_copies();
  uint64_t recycled0 = e.term().nodes_recycled();
  for (auto _ : state) {
    if (kBatched) e.BeginBatch();
    for (size_t i = 0; i < k; ++i) {
      boxes += driver.RelabelStep().boxes_recomputed;
    }
    if (kBatched) boxes += e.CommitBatch().boxes_recomputed;
  }
  size_t edits = state.iterations() * k;
  double per_edit_boxes =
      static_cast<double>(boxes) / static_cast<double>(edits);
  double copies_per_edit =
      static_cast<double>(e.term().path_copies() - copies0) /
      static_cast<double>(edits);
  double nodes_recycled =
      static_cast<double>(e.term().nodes_recycled() - recycled0);
  state.counters["boxes_per_edit"] = per_edit_boxes;
  state.counters["allocs_per_edit"] = gauge.per(edits);
  state.counters["path_copies_per_edit"] = copies_per_edit;
  state.counters["nodes_recycled"] = nodes_recycled;
  state.SetItemsProcessed(static_cast<int64_t>(edits));
  bool indexed = mode == BoxEnumMode::kIndexed;
  const char* name =
      kBatched ? (indexed ? "relabel_batched" : "relabel_batched_noindex")
               : (indexed ? "relabel_sequential"
                          : "relabel_sequential_noindex");
  bench::EmitJson(name,
                  {{"n", static_cast<double>(n)},
                   {"k", static_cast<double>(k)},
                   {"indexed", indexed ? 1.0 : 0.0},
                   {"boxes_per_edit", per_edit_boxes},
                   {"allocs_per_edit", gauge.per(edits)},
                   {"path_copies_per_edit", copies_per_edit},
                   {"nodes_recycled", nodes_recycled},
                   {"iterations", static_cast<double>(state.iterations())}});
}

void BM_Update_SequentialRelabels(benchmark::State& state) {
  RelabelScriptBench<false>(state, BoxEnumMode::kIndexed);
}
BENCHMARK(BM_Update_SequentialRelabels)
    ->Args({131072, 256})
    ->Args({262144, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_Update_BatchedRelabels(benchmark::State& state) {
  RelabelScriptBench<true>(state, BoxEnumMode::kIndexed);
}
BENCHMARK(BM_Update_BatchedRelabels)
    ->Args({131072, 256})
    ->Args({262144, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_Update_SequentialRelabels_NoIndex(benchmark::State& state) {
  RelabelScriptBench<false>(state, BoxEnumMode::kNaive);
}
BENCHMARK(BM_Update_SequentialRelabels_NoIndex)
    ->Args({131072, 256})
    ->Args({262144, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_Update_BatchedRelabels_NoIndex(benchmark::State& state) {
  RelabelScriptBench<true>(state, BoxEnumMode::kNaive);
}
BENCHMARK(BM_Update_BatchedRelabels_NoIndex)
    ->Args({131072, 256})
    ->Args({262144, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_Update_AdversarialPathGrowth(benchmark::State& state) {
  // Always extend the deepest node: maximal rebalancing pressure.
  TreeEnumerator e(UnrankedTree(0), bench::StandardQuery());
  NodeId cur = e.tree().root();
  size_t rebuilt_nodes = 0;
  for (auto _ : state) {
    NodeId u;
    UpdateStats s = e.InsertFirstChild(cur, 0, &u);
    rebuilt_nodes += s.rebuilt_size;
    cur = u;
  }
  state.counters["rebuilt_nodes_per_update"] =
      static_cast<double>(rebuilt_nodes) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Update_AdversarialPathGrowth)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
