// Edge-case and failure-injection tests across the pipeline: degenerate
// trees/words, automata with no accepting behaviour, annotation-free
// queries, invalid-edit rejection, and state-id stability corner cases.
#include <gtest/gtest.h>

#include "automata/query_library.h"
#include "automata/regex_spanner.h"
#include "baseline/naive_engine.h"
#include "core/tree_enumerator.h"
#include "core/word_enumerator.h"
#include "test_util.h"

namespace treenum {
namespace {

TEST(EdgeCases, SingletonTree) {
  UnrankedTree t(1);
  TreeEnumerator e(t, QuerySelectLabel(2, 1));
  std::vector<Assignment> res = e.EnumerateAll();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].singletons()[0].node, t.root());
}

TEST(EdgeCases, SingletonTreeNoMatch) {
  TreeEnumerator e(UnrankedTree(0), QuerySelectLabel(2, 1));
  EXPECT_TRUE(e.EnumerateAll().empty());
}

TEST(EdgeCases, AutomatonWithNoFinalStates) {
  UnrankedTva q(2, 2, 1);
  q.AddInit(0, 0, 0);
  q.AddInit(1, 0, 0);
  q.AddInit(0, 1, 1);
  q.AddTransition(0, 0, 0);
  // no AddFinal
  Rng rng(801);
  TreeEnumerator e(RandomTree(20, 2, rng), q);
  EXPECT_TRUE(e.EnumerateAll().empty());
}

TEST(EdgeCases, AutomatonRejectingEverything) {
  // ι empty: no runs at all.
  UnrankedTva q(2, 2, 1);
  q.AddTransition(0, 0, 1);
  q.AddFinal(1);
  Rng rng(803);
  TreeEnumerator e(RandomTree(10, 2, rng), q);
  EXPECT_TRUE(e.EnumerateAll().empty());
}

TEST(EdgeCases, UpdatesOnEmptyResultStayEmpty) {
  UnrankedTva q(1, 2, 1);
  q.AddInit(0, 0, 0);  // only label a, empty annotation
  q.AddTransition(0, 0, 0);
  q.AddFinal(0);
  // Query accepts only the all-empty valuation on all-a trees: the sole
  // satisfying assignment is the empty one.
  TreeEnumerator e(UnrankedTree(0), q);
  std::vector<Assignment> r = e.EnumerateAll();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].empty());
  NodeId u;
  e.InsertFirstChild(e.tree().root(), 1, &u);  // a b-node kills acceptance
  EXPECT_TRUE(e.EnumerateAll().empty());
  e.Relabel(u, 0);
  EXPECT_EQ(e.EnumerateAll().size(), 1u);
}

TEST(EdgeCases, DeleteRejectionsDoNotCorruptState) {
  TreeEnumerator e(UnrankedTree::Parse("(a (b))"), QuerySelectLabel(2, 1));
  EXPECT_THROW(e.DeleteLeaf(e.tree().root()), std::invalid_argument);
  NodeId b = e.tree().children(e.tree().root())[0];
  NodeId u;
  e.InsertFirstChild(b, 1, &u);
  EXPECT_THROW(e.DeleteLeaf(b), std::invalid_argument);  // not a leaf
  EXPECT_EQ(e.EnumerateAll().size(), 2u);
  e.DeleteLeaf(u);
  EXPECT_EQ(e.EnumerateAll().size(), 1u);
}

TEST(EdgeCases, WordOfLengthOne) {
  Wva q = CompileRegexSpanner("<0:.>", 2, 1);
  WordEnumerator e(ToWord("a"), q);
  std::vector<Assignment> res = e.EnumerateAllByPosition();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].singletons()[0].node, 0u);
  e.Replace(0, 1);
  EXPECT_EQ(e.EnumerateAllByPosition().size(), 1u);
}

TEST(EdgeCases, WordShrinkToOneLetterAndBack) {
  Wva q = CompileRegexSpanner(".*<0:b>.*", 2, 1);
  WordEnumerator e(ToWord("bab"), q);
  EXPECT_EQ(e.EnumerateAllByPosition().size(), 2u);
  e.Erase(0);
  e.Erase(0);
  EXPECT_EQ(e.word_size(), 1u);
  EXPECT_EQ(e.EnumerateAllByPosition().size(), 1u);
  e.Insert(0, 0);
  e.Insert(2, 1);
  EXPECT_EQ(e.EnumerateAllByPosition().size(), 2u);
}

TEST(EdgeCases, HugeFanoutNode) {
  // 1000 children under one node: stresses forest splitting and stepwise
  // folds.
  UnrankedTree t(0);
  for (int i = 0; i < 1000; ++i) {
    t.AppendChild(t.root(), static_cast<Label>(i % 2));
  }
  TreeEnumerator e(t, QuerySelectLabel(2, 1));
  EXPECT_EQ(e.EnumerateAll().size(), 500u);
  // Edit in the middle of the fanout.
  NodeId mid = e.tree().children(e.tree().root())[500];
  e.Relabel(mid, 1);
  size_t after = e.EnumerateAll().size();
  EXPECT_TRUE(after == 500u || after == 501u);
}

TEST(EdgeCases, AllNodesSameLabelSelectAll) {
  Rng rng(809);
  UnrankedTree t = RandomTree(64, 1, rng);
  TreeEnumerator e(t, QuerySelectAll(1));
  EXPECT_EQ(e.EnumerateAll().size(), 64u);
}

TEST(EdgeCases, TwoVarQueryOnSingleton) {
  TreeEnumerator e(UnrankedTree(0), QueryDescendantPairs(2, 0, 1));
  EXPECT_TRUE(e.EnumerateAll().empty());
}

TEST(EdgeCases, RepeatedInsertDeleteAtSamePosition) {
  TreeEnumerator e(UnrankedTree::Parse("(a (b) (b))"),
                   QuerySelectLabel(2, 1));
  NodeId root = e.tree().root();
  for (int i = 0; i < 100; ++i) {
    NodeId u;
    e.InsertFirstChild(root, 1, &u);
    ASSERT_EQ(e.EnumerateAll().size(), 3u);
    e.DeleteLeaf(u);
    ASSERT_EQ(e.EnumerateAll().size(), 2u);
  }
}

TEST(EdgeCases, NaiveEngineMatchesOnDegenerateShapes) {
  Rng rng(811);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  // Star.
  UnrankedTree star(1);
  for (int i = 0; i < 30; ++i) star.AppendChild(star.root(), 2);
  EXPECT_EQ(TreeEnumerator(star, q).EnumerateAll(),
            MaterializeAssignments(star, q));
  // Deep path.
  UnrankedTree path = PathTree(40, 3, rng);
  EXPECT_EQ(TreeEnumerator(path, q).EnumerateAll(),
            MaterializeAssignments(path, q));
}

}  // namespace
}  // namespace treenum
