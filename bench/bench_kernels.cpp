// SIMD kernel microbenchmark — a PAM time_operations.h-style harness (own
// main, no google-benchmark dependency) timing every word-block kernel of
// util/simd_kernels.h per dispatch tier across (rows, cols) grids drawn
// from real index shapes, and reporting GB/s.
//
// Output: one table per kernel on stdout (ns/op, GB/s, speedup vs the
// scalar tier at the same shape), plus JSON-lines into $TREENUM_BENCH_JSON
// (series kernel_compose / kernel_or_into / kernel_any / kernel_popcount /
// kernel_zero — see docs/BENCHMARKS.md). Set TREENUM_BENCH_MIN_TIME to
// shrink or grow the per-measurement budget (seconds, default 0.12).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/aligned_alloc.h"
#include "util/bit_matrix.h"
#include "util/random.h"
#include "util/simd_kernels.h"

namespace treenum {
namespace {

volatile uint64_t g_sink = 0;

double MinSeconds() {
  const char* env = std::getenv("TREENUM_BENCH_MIN_TIME");
  if (env != nullptr && *env != '\0') {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.12;
}

/// Repeats `fn` until the measured batch exceeds the time budget and
/// returns seconds per call (the time_operations.h repeat-until idiom).
template <typename Fn>
double TimeOp(const Fn& fn, double min_seconds) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm caches and the dispatch statics
  size_t reps = 1;
  for (;;) {
    auto t0 = Clock::now();
    for (size_t i = 0; i < reps; ++i) fn();
    double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt >= min_seconds) return dt / static_cast<double>(reps);
    double scale = dt > 0 ? min_seconds * 1.4 / dt : 16.0;
    reps = static_cast<size_t>(static_cast<double>(reps) * scale) + 1;
  }
}

/// A rows x cols matrix with ~`density` of its bits set (tail bits zero).
BitMatrix RandomMatrix(size_t rows, size_t cols, double density, Rng& rng) {
  BitMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.Flip(density)) m.Set(r, c);
    }
  }
  return m;
}

struct TierResult {
  SimdTier tier;
  double ns_op = 0;
  double gbps = 0;
};

void PrintHeader(const char* kernel) {
  std::printf("\n%-14s %-18s %-8s %12s %10s %10s\n", kernel, "shape", "tier",
              "ns/op", "GB/s", "vs scalar");
}

void PrintRow(const char* kernel, const std::string& shape,
              const TierResult& r, double scalar_ns) {
  std::printf("%-14s %-18s %-8s %12.1f %10.2f %9.2fx\n", kernel,
              shape.c_str(), TierName(r.tier), r.ns_op, r.gbps,
              scalar_ns > 0 ? scalar_ns / r.ns_op : 1.0);
}

const SimdTier kTiers[] = {SimdTier::kScalar, SimdTier::kAvx2,
                           SimdTier::kAvx512};

// ---- compose --------------------------------------------------------------

void BenchCompose(double min_seconds) {
  // (a_rows, inner, b_cols): square relation composes at growing widths —
  // the O(w^omega) kernel of the paper — plus the narrow (b_wpr == 1)
  // shape the standard w <= 64 queries hit, and one rectangular
  // candidate-times-wire shape.
  const size_t shapes[][3] = {{64, 64, 64},    {128, 128, 128},
                              {256, 256, 256}, {512, 512, 512},
                              {1024, 64, 64},  {256, 512, 128}};
  Rng rng(bench::kSeed);
  for (const auto& sh : shapes) {
    const size_t rows = sh[0], inner = sh[1], cols = sh[2];
    BitMatrix a = RandomMatrix(rows, inner, 0.25, rng);
    BitMatrix b = RandomMatrix(inner, cols, 0.25, rng);
    const BitMatrixView av(a), bv(b);
    const size_t a_wpr = av.words_per_row(), b_wpr = bv.words_per_row();
    AlignedWordVector out(rows * b_wpr, 0);
    // Traffic model: read a once, read one b row per set bit of a, write
    // out once. The same formula across tiers makes GB/s comparable.
    const double bytes =
        8.0 * (static_cast<double>(rows * a_wpr) +
               static_cast<double>(a.Count()) * static_cast<double>(b_wpr) +
               static_cast<double>(rows * b_wpr));
    std::string shape = std::to_string(rows) + "x" + std::to_string(inner) +
                        "x" + std::to_string(cols);
    double scalar_ns = 0;
    PrintHeader("compose");
    for (SimdTier tier : kTiers) {
      const BitKernels* k = KernelsForTier(tier);
      if (k == nullptr) continue;
      double sec = TimeOp(
          [&] {
            k->compose(av.Row(0), rows, a_wpr, bv.Row(0), b_wpr, out.data());
            g_sink += out[0];
          },
          min_seconds);
      TierResult r{tier, sec * 1e9, bytes / sec * 1e-9};
      if (tier == SimdTier::kScalar) scalar_ns = r.ns_op;
      PrintRow("compose", shape, r, scalar_ns);
      bench::EmitJson("kernel_compose",
                      {{"tier", static_cast<double>(tier)},
                       {"rows", static_cast<double>(rows)},
                       {"inner", static_cast<double>(inner)},
                       {"cols", static_cast<double>(cols)},
                       {"ns_op", r.ns_op},
                       {"gbps", r.gbps},
                       {"speedup_vs_scalar",
                        scalar_ns > 0 ? scalar_ns / r.ns_op : 1.0}});
    }
  }
}

// ---- flat word-range kernels ----------------------------------------------

template <typename Run>
void BenchFlat(const char* kernel, const char* series, double bytes_per_word,
               double min_seconds, const Run& run) {
  // Word counts spanning the relation-block sizes the index allocates:
  // one row of a narrow relation up to a full wide-automaton block.
  const size_t sizes[] = {64, 1024, 16384, 262144};
  Rng rng(bench::kSeed + 1);
  for (size_t n : sizes) {
    AlignedWordVector dst(n, 0);
    AlignedWordVector src(n);
    for (size_t i = 0; i < n; ++i) {
      src[i] = (static_cast<uint64_t>(rng.Int(0, INT64_MAX)) << 1) | 1;
    }
    std::string shape = std::to_string(n) + "w";
    double scalar_ns = 0;
    PrintHeader(kernel);
    for (SimdTier tier : kTiers) {
      const BitKernels* k = KernelsForTier(tier);
      if (k == nullptr) continue;
      double sec =
          TimeOp([&] { run(*k, dst.data(), src.data(), n); }, min_seconds);
      TierResult r{tier, sec * 1e9,
                   bytes_per_word * static_cast<double>(n) / sec * 1e-9};
      if (tier == SimdTier::kScalar) scalar_ns = r.ns_op;
      PrintRow(kernel, shape, r, scalar_ns);
      bench::EmitJson(series, {{"tier", static_cast<double>(tier)},
                               {"words", static_cast<double>(n)},
                               {"ns_op", r.ns_op},
                               {"gbps", r.gbps},
                               {"speedup_vs_scalar",
                                scalar_ns > 0 ? scalar_ns / r.ns_op : 1.0}});
    }
  }
}

}  // namespace
}  // namespace treenum

int main() {
  using namespace treenum;
  const double min_seconds = MinSeconds();
  std::printf("active tier: %s (TREENUM_SIMD=%s)\n", TierName(ActiveTier()),
              std::getenv("TREENUM_SIMD") ? std::getenv("TREENUM_SIMD")
                                          : "<unset>");
  std::printf("available tiers:");
  for (SimdTier t : kTiers) {
    if (KernelsForTier(t) != nullptr) std::printf(" %s", TierName(t));
  }
  std::printf("\n");

  BenchCompose(min_seconds);
  // or_into: read dst + src, write dst = 24 bytes per word.
  BenchFlat("or_into", "kernel_or_into", 24.0, min_seconds,
            [](const BitKernels& k, uint64_t* dst, const uint64_t* src,
               size_t n) { k.or_into(dst, src, n); });
  // any over an all-zero buffer: the full-scan worst case, 8 bytes/word.
  BenchFlat("any", "kernel_any", 8.0, min_seconds,
            [](const BitKernels& k, uint64_t* dst, const uint64_t*,
               size_t n) { g_sink += k.any(dst, n) ? 1 : 0; });
  // popcount reads src, 8 bytes per word.
  BenchFlat("popcount", "kernel_popcount", 8.0, min_seconds,
            [](const BitKernels& k, uint64_t*, const uint64_t* src,
               size_t n) { g_sink += k.popcount(src, n); });
  // zero writes dst, 8 bytes per word.
  BenchFlat("zero", "kernel_zero", 8.0, min_seconds,
            [](const BitKernels& k, uint64_t* dst, const uint64_t*,
               size_t n) { k.zero(dst, n); });
  return 0;
}
