// Tests for the binary automaton serialization (automata/serialize.h):
// round-trip bit-equivalence over the whole query library (tree and word
// modes), header rejection (magic / version / endianness), truncated and
// corrupted input rejected cleanly (the suite runs under ASan in CI, so
// any out-of-bounds read on malformed input fails loudly), whole-cache
// SaveCache/WarmStart round-trips, and a golden fixture in tests/data/
// pinning the byte format across revisions.
//
// Regenerate the golden fixture (after a deliberate format bump) with:
//   TREENUM_REGEN_GOLDEN=1 ./serialize_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/query_cache.h"
#include "automata/query_library.h"
#include "automata/regex_spanner.h"
#include "automata/serialize.h"
#include "automata/translate.h"

namespace treenum {
namespace {

// Every tree query in the library (fixed small parameterizations).
std::vector<UnrankedTva> LibraryTreeQueries() {
  std::vector<UnrankedTva> qs;
  qs.push_back(QuerySelectLabel(3, 1));
  qs.push_back(QuerySelectAll(3));
  qs.push_back(QueryMarkedAncestor(3, 1, 2));
  qs.push_back(QueryDescendantPairs(3, 0, 1));
  qs.push_back(QueryContainsLabel(3, 2));
  qs.push_back(QueryAnySubsetOfLabel(3, 0));
  qs.push_back(QueryAncestorAtDistance(3, 1, 3));
  qs.push_back(QueryChildOfLabel(3, 0, 2));
  qs.push_back(QuerySelectLeaves(3));
  qs.push_back(QueryNextSibling(3, 1, 0));
  return qs;
}

std::vector<Wva> LibraryWordQueries() {
  std::vector<Wva> qs;
  qs.push_back(CompileRegexSpanner("a*<0:b>.*", 3, 1));
  qs.push_back(CompileRegexSpanner("<0:a>b*<1:c>", 3, 2));
  Wva any(2, 3, 1);
  any.AddInitial(0);
  any.AddFinal(1);
  for (Label l = 0; l < 3; ++l) {
    any.AddTransition(0, l, 0, 0);
    any.AddTransition(1, l, 0, 1);
    any.AddTransition(0, l, 1, 1);
  }
  qs.push_back(any);
  return qs;
}

HomogenizedTva CompileTree(const UnrankedTva& q) {
  HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
  CanonicalizeHomogenizedTva(&h);
  return h;
}

HomogenizedTva CompileWord(const Wva& q) {
  HomogenizedTva h = HomogenizeBinaryTva(TranslateWva(q).tva);
  CanonicalizeHomogenizedTva(&h);
  return h;
}

std::string Serialized(const HomogenizedTva& h) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveCompiled(h, out));
  return out.str();
}

// ---- Round trips ----

TEST(Serialize, CompiledPlanRoundTripsForEveryLibraryQuery) {
  std::vector<HomogenizedTva> plans;
  for (const UnrankedTva& q : LibraryTreeQueries()) {
    plans.push_back(CompileTree(q));
  }
  for (const Wva& q : LibraryWordQueries()) {
    plans.push_back(CompileWord(q));
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    const std::string bytes = Serialized(plans[i]);
    std::istringstream in(bytes, std::ios::binary);
    HomogenizedTva loaded;
    std::string error;
    ASSERT_TRUE(LoadCompiled(in, &loaded, &error)) << error;
    EXPECT_TRUE(HomogenizedTvaEqual(plans[i], loaded));
    EXPECT_EQ(FingerprintHomogenizedTva(plans[i]),
              FingerprintHomogenizedTva(loaded));
    // Bit-equivalence: re-serializing the loaded plan reproduces the
    // exact bytes (the format has one encoding per automaton).
    EXPECT_EQ(Serialized(loaded), bytes);
  }
}

TEST(Serialize, SourceAutomataRoundTrip) {
  using namespace serialize;
  for (const UnrankedTva& q : LibraryTreeQueries()) {
    ByteWriter w;
    AppendUnrankedTva(q, &w);
    ByteReader r(w.bytes().data(), w.bytes().size());
    UnrankedTva loaded(0, 0, 0);
    std::string error;
    ASSERT_TRUE(ParseUnrankedTva(&r, &loaded, &error)) << error;
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(FingerprintUnrankedTva(q), FingerprintUnrankedTva(loaded));
    EXPECT_EQ(q.inits(), loaded.inits());
    EXPECT_EQ(q.transitions(), loaded.transitions());
    EXPECT_EQ(q.final_states(), loaded.final_states());
  }
  for (const Wva& q : LibraryWordQueries()) {
    ByteWriter w;
    AppendWva(q, &w);
    ByteReader r(w.bytes().data(), w.bytes().size());
    Wva loaded(0, 0, 0);
    std::string error;
    ASSERT_TRUE(ParseWva(&r, &loaded, &error)) << error;
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_EQ(FingerprintWva(q), FingerprintWva(loaded));
    EXPECT_EQ(q.transitions(), loaded.transitions());
    EXPECT_EQ(q.initial_states(), loaded.initial_states());
    EXPECT_EQ(q.final_states(), loaded.final_states());
  }
}

// ---- Header rejection ----

TEST(Serialize, RejectsBadMagicVersionAndEndianness) {
  const std::string good = Serialized(CompileTree(QuerySelectLabel(3, 1)));

  auto load = [](std::string bytes, std::string* error) {
    std::istringstream in(bytes, std::ios::binary);
    HomogenizedTva out;
    return LoadCompiled(in, &out, error);
  };

  std::string error;
  ASSERT_TRUE(load(good, &error)) << error;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(load(bad_magic, &error));
  EXPECT_EQ(error, "bad magic");

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0x7f);  // version -> 0x7f
  EXPECT_FALSE(load(bad_version, &error));
  EXPECT_EQ(error, "unsupported version");

  // Byte-swap the endian mark: a big-endian writer would produce exactly
  // this header for the same logical value.
  std::string bad_endian = good;
  std::swap(bad_endian[8], bad_endian[11]);
  std::swap(bad_endian[9], bad_endian[10]);
  EXPECT_FALSE(load(bad_endian, &error));
  EXPECT_EQ(error, "foreign byte order");

  std::string bad_kind = good;
  bad_kind[12] = static_cast<char>(0x63);
  EXPECT_FALSE(load(bad_kind, &error));
  EXPECT_EQ(error, "unknown record kind");
}

// ---- Truncation / corruption (no UB; run under ASan in CI) ----

TEST(Serialize, RejectsEveryTruncation) {
  const std::string good = Serialized(CompileTree(QueryMarkedAncestor(3, 1, 2)));
  for (size_t len = 0; len < good.size(); ++len) {
    std::istringstream in(good.substr(0, len), std::ios::binary);
    HomogenizedTva out;
    std::string error;
    EXPECT_FALSE(LoadCompiled(in, &out, &error)) << "prefix length " << len;
  }
}

TEST(Serialize, RejectsCorruptedPayloadAndChecksum) {
  const std::string good = Serialized(CompileTree(QuerySelectLeaves(3)));
  // Flip one byte at a time across the whole record: every single-byte
  // corruption must be rejected (header checks or checksum mismatch) —
  // never silently accepted, never UB.
  size_t rejected = 0;
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    std::istringstream in(bad, std::ios::binary);
    HomogenizedTva out;
    if (!LoadCompiled(in, &out, nullptr)) ++rejected;
  }
  EXPECT_EQ(rejected, good.size());
}

TEST(Serialize, RejectsOversizedPayloadLengthWithoutAllocating) {
  std::string good = Serialized(CompileTree(QuerySelectLabel(3, 0)));
  // Stamp a ~2^62 payload length into the header (offset 13, u64 LE).
  for (int i = 0; i < 8; ++i) good[13 + i] = static_cast<char>(0xff);
  good[13 + 7] = static_cast<char>(0x3f);
  std::istringstream in(good, std::ios::binary);
  HomogenizedTva out;
  std::string error;
  EXPECT_FALSE(LoadCompiled(in, &out, &error));
  EXPECT_EQ(error, "payload too large");
}

// ---- Whole-cache images ----

TEST(Serialize, CacheImageRoundTripsAndWarmStartsWithoutCompiling) {
  QueryCache cache;
  for (const UnrankedTva& q : LibraryTreeQueries()) cache.CompileTree(q);
  for (const Wva& q : LibraryWordQueries()) cache.CompileWord(q);
  const QueryCache::Stats cold = cache.stats();

  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(cache.SaveCache(out));

  QueryCache warmed;
  std::istringstream in(out.str(), std::ios::binary);
  std::string error;
  EXPECT_EQ(warmed.WarmStart(in, &error), cold.entries) << error;
  EXPECT_EQ(warmed.stats().entries, cold.entries);
  EXPECT_EQ(warmed.stats().source_entries, cold.source_entries);

  // Every library query is now served from the warm cache with zero
  // translation / homogenization work.
  for (const UnrankedTva& q : LibraryTreeQueries()) warmed.CompileTree(q);
  for (const Wva& q : LibraryWordQueries()) warmed.CompileWord(q);
  QueryCache::Stats warm = warmed.stats();
  EXPECT_EQ(warm.translations, 0u);
  EXPECT_EQ(warm.homogenizations, 0u);
  EXPECT_EQ(warm.source_hits,
            LibraryTreeQueries().size() + LibraryWordQueries().size());

  // Warm plans are the same automata the cold cache compiled.
  QueryCache::Handle a = cache.CompileTree(QueryMarkedAncestor(3, 1, 2));
  QueryCache::Handle b = warmed.CompileTree(QueryMarkedAncestor(3, 1, 2));
  EXPECT_TRUE(HomogenizedTvaEqual(*a, *b));

  // A truncated image restores nothing.
  std::string bytes = out.str();
  std::istringstream cut(bytes.substr(0, bytes.size() / 2),
                         std::ios::binary);
  QueryCache empty;
  EXPECT_EQ(empty.WarmStart(cut, &error), 0u);
  EXPECT_EQ(empty.stats().entries, 0u);
}

// ---- Golden fixture ----

TEST(Serialize, GoldenFixtureStaysLoadable) {
  const std::string path =
      std::string(TREENUM_TEST_DATA_DIR) + "/compiled_select_label_v1.bin";
  const HomogenizedTva expected = CompileTree(QuerySelectLabel(3, 1));

  if (std::getenv("TREENUM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(SaveCompiled(expected, out));
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden fixture " << path;
  HomogenizedTva loaded;
  std::string error;
  ASSERT_TRUE(LoadCompiled(in, &loaded, &error)) << error;
  EXPECT_TRUE(HomogenizedTvaEqual(expected, loaded))
      << "byte format or canonical form drifted from the checked-in fixture";
  EXPECT_EQ(Serialized(expected),
            Serialized(loaded));
}

}  // namespace
}  // namespace treenum
