// Tests for the shared-document multi-query layer: N queries registered on
// one DynamicDocument, driven by mixed edit scripts (relabels + structural
// inserts/deletes, sequential and batched), every pipeline cross-checked
// against a per-query recompute-from-scratch oracle; pool-size invariance
// (1 lane vs 8 lanes produce identical answers); the ThreadPool itself;
// and the allocation/threading guarantees the fan-out relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "automata/query_library.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "core/engine.h"
#include "core/tree_enumerator.h"
#include "core/word_enumerator.h"
#include "test_util.h"
#include "util/alloc_gauge.h"
#include "util/thread_pool.h"

namespace treenum {
namespace {

// Edit scripts come from test_util's ScriptedEditor (mirror-tree scripter).

std::vector<UnrankedTva> TestQueries() {
  std::vector<UnrankedTva> queries;
  queries.push_back(QuerySelectLabel(3, 1));
  queries.push_back(QueryMarkedAncestor(3, 1, 2));
  queries.push_back(QueryDescendantPairs(3, 0, 1));
  queries.push_back(QueryChildOfLabel(3, 0, 2));
  return queries;
}

// ---- ThreadPool ----

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // The pool is reusable: a second job sees fresh indices.
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 2) << "index " << i;
  }
}

TEST(ThreadPool, SingleLanePoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPool, EmptyAndSingletonJobs) {
  ThreadPool pool(3);
  size_t calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

// ---- Multi-query documents vs per-query oracles ----

TEST(DynamicDocument, SequentialMixedScriptMatchesPerQueryOracles) {
  Rng rng(211);
  std::vector<UnrankedTva> queries = TestQueries();
  UnrankedTree tree = RandomTree(40 + rng.Index(30), 3, rng);

  DynamicDocument doc(tree, 3);
  std::vector<DynamicDocument::QueryId> ids;
  std::vector<std::unique_ptr<StaticEngine>> oracles;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    // Mix box-enum modes across the registered queries.
    BoxEnumMode mode =
        qi % 2 == 0 ? BoxEnumMode::kIndexed : BoxEnumMode::kNaive;
    ids.push_back(doc.Register(queries[qi], mode));
    oracles.push_back(std::make_unique<StaticEngine>(tree, queries[qi]));
  }
  ASSERT_EQ(doc.num_queries(), queries.size());

  ScriptedEditor script(tree, 733, 3);
  for (int step = 0; step < 200; ++step) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    for (auto& oracle : oracles) oracle->ApplyEdit(e);
    if (step % 10 == 9) {
      for (size_t qi = 0; qi < ids.size(); ++qi) {
        const EnumerationPipeline& p = doc.pipeline(ids[qi]);
        ASSERT_EQ(p.circuit().ValidateStorage(), "")
            << "query " << qi << " step " << step;
        if (p.mode() == BoxEnumMode::kIndexed) {
          ASSERT_EQ(p.index().ValidateStorage(), "")
              << "query " << qi << " step " << step;
        }
        ASSERT_EQ(p.EnumerateAll(), oracles[qi]->EnumerateAll())
            << "query " << qi << " step " << step;
      }
    }
  }
}

// Batched commits, cross-checked after every commit, and run twice — once
// with no pool (inline fan-out) and once with an 8-lane pool — to assert
// that parallel refresh produces bit-identical answers.
TEST(DynamicDocument, BatchedCommitsMatchOraclesOnEveryPoolSize) {
  Rng rng(223);
  std::vector<UnrankedTva> queries = TestQueries();
  UnrankedTree tree = RandomTree(60, 3, rng);

  ThreadPool pool8(8);
  DynamicDocument doc1(tree, 3);   // inline fan-out (no pool)
  DynamicDocument doc8(tree, 3);
  doc8.set_pool(&pool8);

  std::vector<DynamicDocument::QueryId> ids1, ids8;
  std::vector<std::unique_ptr<StaticEngine>> oracles;
  for (const UnrankedTva& q : queries) {
    ids1.push_back(doc1.Register(q));
    ids8.push_back(doc8.Register(q));
    oracles.push_back(std::make_unique<StaticEngine>(tree, q));
  }

  ScriptedEditor script(tree, 4242, 3);
  for (int round = 0; round < 12; ++round) {
    std::vector<Edit> edits;
    for (int i = 0; i < 24; ++i) edits.push_back(script.NextEdit());
    UpdateStats s1 = doc1.ApplyEdits(edits);
    UpdateStats s8 = doc8.ApplyEdits(edits);
    EXPECT_EQ(s1.boxes_recomputed, s8.boxes_recomputed) << "round " << round;
    for (auto& oracle : oracles) oracle->ApplyEdits(edits);

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<Assignment> expected = oracles[qi]->EnumerateAll();
      ASSERT_EQ(doc1.pipeline(ids1[qi]).EnumerateAll(), expected)
          << "query " << qi << " round " << round;
      ASSERT_EQ(doc8.pipeline(ids8[qi]).EnumerateAll(), expected)
          << "query " << qi << " round " << round;
      ASSERT_EQ(doc8.pipeline(ids8[qi]).circuit().ValidateStorage(), "")
          << "query " << qi << " round " << round;
      ASSERT_EQ(doc8.pipeline(ids8[qi]).index().ValidateStorage(), "")
          << "query " << qi << " round " << round;
    }
  }
}

// Interleaves sequential edits and batches on a pooled document, with
// counting enabled on one pipeline — the fan-out must refresh counts too.
TEST(DynamicDocument, MixedSequentialAndBatchedWithCounting) {
  Rng rng(227);
  UnrankedTree tree = RandomTree(50, 3, rng);
  ThreadPool pool(4);
  DynamicDocument doc(tree, 3);
  doc.set_pool(&pool);

  DynamicDocument::QueryId qa = doc.Register(QueryMarkedAncestor(3, 1, 2));
  DynamicDocument::QueryId qb = doc.Register(QuerySelectLabel(3, 0));
  doc.pipeline(qa).EnableCounting();

  StaticEngine oracle_a(tree, QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle_b(tree, QuerySelectLabel(3, 0));

  ScriptedEditor script(tree, 929, 3);
  for (int round = 0; round < 10; ++round) {
    if (round % 2 == 0) {
      for (int i = 0; i < 8; ++i) {
        Edit e = script.NextEdit();
        doc.ApplyEdit(e);
        oracle_a.ApplyEdit(e);
        oracle_b.ApplyEdit(e);
      }
    } else {
      std::vector<Edit> edits;
      for (int i = 0; i < 16; ++i) edits.push_back(script.NextEdit());
      doc.ApplyEdits(edits);
      oracle_a.ApplyEdits(edits);
      oracle_b.ApplyEdits(edits);
    }
    std::vector<Assignment> expected_a = oracle_a.EnumerateAll();
    ASSERT_EQ(doc.pipeline(qa).EnumerateAll(), expected_a) << round;
    ASSERT_EQ(doc.pipeline(qb).EnumerateAll(), oracle_b.EnumerateAll())
        << round;
    // Query-library automata are unambiguous: runs == assignments.
    ASSERT_EQ(doc.pipeline(qa).AcceptingRuns(), expected_a.size()) << round;
  }
}

// With no pipeline cap, an unregistered query's pipeline stays *warm*
// (still refreshed, ready for re-admission); survivors must be unaffected
// and registration after edits must build over the current tree. The
// eviction path (where maintenance really stops) is covered in
// registry_test.cpp.
TEST(DynamicDocument, UnregisterKeepsSurvivorsCorrect) {
  Rng rng(233);
  UnrankedTree tree = RandomTree(40, 3, rng);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryId qa = doc.Register(QueryMarkedAncestor(3, 1, 2));
  DynamicDocument::QueryId qb = doc.Register(QuerySelectLabel(3, 1));
  StaticEngine oracle(tree, QuerySelectLabel(3, 1));

  ScriptedEditor script(tree, 311, 3);
  for (int i = 0; i < 20; ++i) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    oracle.ApplyEdit(e);
  }
  EXPECT_EQ(doc.num_queries(), 2u);
  doc.Unregister(qa);
  EXPECT_EQ(doc.num_queries(), 1u);
  EXPECT_FALSE(doc.IsRegistered(qa));
  EXPECT_TRUE(doc.IsRegistered(qb));

  for (int i = 0; i < 40; ++i) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    oracle.ApplyEdit(e);
  }
  EXPECT_EQ(doc.pipeline(qb).EnumerateAll(), oracle.EnumerateAll());

  // Registering after the edits serves the *current* tree (here via warm
  // re-admission of qa's pipeline, which kept refreshing at refcount 0).
  DynamicDocument::QueryId qc = doc.Register(QueryMarkedAncestor(3, 1, 2));
  StaticEngine fresh(doc.tree(), QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(doc.pipeline(qc).EnumerateAll(), fresh.EnumerateAll());
}

// The thin engine views and a shared document must agree edit for edit.
TEST(DynamicDocument, AgreesWithSingleQueryEngines) {
  Rng rng(239);
  std::vector<UnrankedTva> queries = TestQueries();
  UnrankedTree tree = RandomTree(45, 3, rng);

  DynamicDocument doc(tree, 3);
  std::vector<DynamicDocument::QueryId> ids;
  std::vector<std::unique_ptr<TreeEnumerator>> engines;
  for (const UnrankedTva& q : queries) {
    ids.push_back(doc.Register(q));
    engines.push_back(std::make_unique<TreeEnumerator>(tree, q));
  }

  ScriptedEditor script(tree, 541, 3);
  for (int step = 0; step < 120; ++step) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    for (auto& engine : engines) engine->ApplyEdit(e);
    if (step % 15 == 14) {
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ASSERT_EQ(doc.pipeline(ids[qi]).EnumerateAll(),
                  engines[qi]->EnumerateAll())
            << "query " << qi << " step " << step;
      }
    }
  }
}

// ---- Word documents ----

TEST(DynamicDocument, WordDocumentServesMultipleSpanners) {
  // Two spanners over {a, b}: every b position, and every a position.
  auto select_letter = [](Label which) {
    Wva a(2, 2, 1);
    a.AddInitial(0);
    for (Label l = 0; l < 2; ++l) a.AddTransition(0, l, 0, 0);
    a.AddTransition(0, which, 1, 1);
    for (Label l = 0; l < 2; ++l) a.AddTransition(1, l, 0, 1);
    a.AddFinal(1);
    return a;
  };
  Wva select_b = select_letter(1);
  Wva select_a = select_letter(0);

  Rng rng(241);
  Word ref;
  for (int i = 0; i < 24; ++i) ref.push_back(static_cast<Label>(rng.Index(2)));

  ThreadPool pool(8);
  DynamicDocument doc(ref, 2);
  doc.set_pool(&pool);
  DynamicDocument::QueryId qb = doc.Register(select_b);
  DynamicDocument::QueryId qa = doc.Register(select_a);

  auto by_position = [&](DynamicDocument::QueryId id) {
    std::vector<Assignment> out;
    for (const Assignment& s : doc.pipeline(id).EnumerateAll()) {
      Assignment b;
      for (const Singleton& sg : s.singletons()) {
        b.Add(Singleton{sg.var, static_cast<NodeId>(
                                    doc.word_encoding().PositionOf(sg.node))});
      }
      b.Normalize();
      out.push_back(std::move(b));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (int step = 0; step < 120; ++step) {
    switch (rng.Index(3)) {
      case 0: {
        size_t pos = rng.Index(ref.size() + 1);
        Label l = static_cast<Label>(rng.Index(2));
        ref.insert(ref.begin() + pos, l);
        doc.Insert(pos, l);
        break;
      }
      case 1: {
        if (ref.size() <= 1) break;
        size_t pos = rng.Index(ref.size());
        ref.erase(ref.begin() + pos);
        doc.Erase(pos);
        break;
      }
      default: {
        size_t pos = rng.Index(ref.size());
        Label l = static_cast<Label>(rng.Index(2));
        ref[pos] = l;
        doc.Replace(pos, l);
        break;
      }
    }
    if (step % 10 == 9) {
      // Cross-check against fresh single-query engines on the current word
      // (brute force is exponential in |w|, so only for short words).
      ASSERT_EQ(by_position(qb),
                WordEnumerator(ref, select_b).EnumerateAllByPosition())
          << "step " << step;
      ASSERT_EQ(by_position(qa),
                WordEnumerator(ref, select_a).EnumerateAllByPosition())
          << "step " << step;
      if (ref.size() <= 10) {
        ASSERT_EQ(by_position(qb), select_b.BruteForceAssignments(ref))
            << "step " << step;
      }
    }
  }
}

// ---- Allocation / threading guarantees behind the fan-out ----

// The single-query inline path through the document layer must preserve the
// zero-allocation steady state the engines had before the refactor.
TEST(DynamicDocument, SingleQuerySteadyStateRelabelsAreAllocationFree) {
  ASSERT_TRUE(AllocGaugeActive())
      << "document_test must link treenum_alloc_gauge";

  Rng rng(251);
  UnrankedTree tree = RandomTree(150, 3, rng);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryId q = doc.Register(QueryMarkedAncestor(3, 1, 2));
  doc.pipeline(q).EnableCounting();

  std::vector<NodeId> targets = tree.PreorderNodes();
  auto run_pass = [&](bool batched) {
    for (NodeId n : targets) {
      if (batched) doc.BeginBatch();
      for (Label l = 0; l < 3; ++l) doc.Relabel(n, l);
      if (batched) doc.CommitBatch();
    }
  };
  for (bool batched : {false, true}) {
    // Warm until the pool spans and scratch capacities reach their fixed
    // point (buffer recycling can circulate spans for a few passes; see
    // the box-enum steady-state note in flat_storage_test).
    int pass = 0;
    for (; pass < 8; ++pass) {
      AllocGaugeScope warm;
      run_pass(batched);
      if (warm.allocs() == 0) break;
    }
    ASSERT_LT(pass, 8) << "relabel passes failed to reach a steady state";
    AllocGaugeScope gauge;
    run_pass(batched);
    EXPECT_EQ(gauge.allocs(), 0u)
        << (batched ? "batched" : "sequential")
        << " steady-state relabels through the document layer allocated";
  }
}

// The registry must not cost the steady state anything: duplicate
// registrations collapse onto one pipeline, so relabels with Q duplicate
// handles do exactly the single-query work — and stay allocation-free
// (the registry's hash map and LRU stamps are touched only at
// Register/Unregister time, never on the edit path).
TEST(DynamicDocument, DeduplicatedSteadyStateRelabelsAreAllocationFree) {
  ASSERT_TRUE(AllocGaugeActive())
      << "document_test must link treenum_alloc_gauge";

  Rng rng(257);
  UnrankedTree tree = RandomTree(150, 3, rng);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryHandle q1 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  DynamicDocument::QueryHandle q2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  ASSERT_EQ(&doc.pipeline(q1), &doc.pipeline(q2));
  ASSERT_EQ(doc.num_pipelines(), 1u);

  std::vector<NodeId> targets = tree.PreorderNodes();
  auto run_pass = [&] {
    for (NodeId n : targets) {
      for (Label l = 0; l < 3; ++l) doc.Relabel(n, l);
    }
  };
  int pass = 0;
  for (; pass < 8; ++pass) {
    AllocGaugeScope warm;
    run_pass();
    if (warm.allocs() == 0) break;
  }
  ASSERT_LT(pass, 8) << "relabel passes failed to reach a steady state";
  AllocGaugeScope gauge;
  run_pass();
  EXPECT_EQ(gauge.allocs(), 0u)
      << "steady-state relabels through the registry allocated";
}

// The alloc gauge counters are relaxed atomics: hammering them from pool
// workers while the main thread reads deltas must be race-free (this is
// what keeps the zero-allocation assertions valid once refresh fan-out
// runs on worker threads; run under TSan in CI).
TEST(DynamicDocument, AllocGaugeIsThreadSafeUnderParallelFanOut) {
  ASSERT_TRUE(AllocGaugeActive());
  ThreadPool pool(4);
  AllocGaugeScope gauge;
  uint64_t before_frees = FreeCount();
  pool.ParallelFor(64, [](size_t i) {
    std::vector<std::unique_ptr<int>> v;
    for (size_t k = 0; k < 100; ++k) {
      v.push_back(std::make_unique<int>(static_cast<int>(i + k)));
    }
  });
  // 64 tasks x 100 boxed ints, plus vector growth: at least 6400 of each.
  EXPECT_GE(gauge.allocs(), 6400u);
  EXPECT_GE(FreeCount() - before_frees, 6400u);
}

}  // namespace
}  // namespace treenum
