// Chase-Lev work-stealing deque for the sharded document server.
//
// One OWNER thread pushes and pops work at the *bottom* (LIFO — freshly
// readied documents stay cache-hot on their shard); any number of THIEF
// threads steal from the *top* (FIFO — thieves take the oldest, least
// cache-relevant work). This is the inter-document scheduling primitive
// that sits alongside util/thread_pool.h: the fork-join ThreadPool keeps
// its ParallelFor contract for *intra*-document refresh fan-out, while
// shard workers use these deques to move whole-document command drains
// between shards when load is skewed.
//
// Implementation notes (Chase & Lev, SPAA'05; memory orderings after Lê
// et al., PPoPP'13, with the standalone fences strengthened into seq_cst
// accesses on top_/bottom_ — marginally more expensive, but every shared
// access is a std::atomic operation, which keeps ThreadSanitizer precise;
// deque traffic is one push/pop per *document drain*, not per command, so
// the scheduling cost is noise):
//
//   * Elements must be trivially copyable (we store DocState pointers).
//   * The buffer grows geometrically on overflow; superseded buffers are
//     retired, not freed, until destruction — a thief may still be reading
//     an index of an old buffer, and indices in [top, bottom) hold the
//     same values in every live buffer.
//   * PopBottom and StealTop race on the last element; the seq_cst CAS on
//     top_ arbitrates, and the loser sees an empty deque.
#ifndef TREENUM_UTIL_WORK_STEALING_DEQUE_H_
#define TREENUM_UTIL_WORK_STEALING_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace treenum {

/// Single-owner, multi-thief lock-free deque. PushBottom/PopBottom are
/// owner-thread-only; StealTop may run on any thread concurrently.
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable<T>::value,
                "WorkStealingDeque elements must be trivially copyable");

 public:
  explicit WorkStealingDeque(size_t initial_capacity = 64) {
    size_t cap = 8;
    while (cap < initial_capacity) cap *= 2;
    buffers_.push_back(std::make_unique<Buffer>(cap));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: push one item at the bottom.
  void PushBottom(T item) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->capacity)) {
      buf = Grow(buf, t, b);
    }
    buf->Put(b, item);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pop the most recently pushed item. Returns false when the
  /// deque is empty (or a thief won the race for the last item).
  bool PopBottom(T* out) {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *out = buf->Get(b);
    if (t == b) {
      // Last element: race thieves for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread: steal the oldest item. Returns false when empty or when
  /// another thief (or the owner, on the last item) won the race — callers
  /// treat both as "nothing to steal here right now".
  bool StealTop(T* out) {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    const T item = buf->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = item;
    return true;
  }

  /// Approximate (racy) size; exact only on the owner thread while no
  /// thief is active.
  size_t SizeApprox() const {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

 private:
  // Power-of-two ring buffer of atomic slots. Slot accesses are relaxed:
  // the top/bottom protocol (seq_cst publication + the steal CAS) provides
  // the ordering; atomicity is only needed because a thief may read a slot
  // the owner concurrently overwrites after wraparound, in which case the
  // thief's CAS fails and the torn-free-but-stale value is discarded.
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    void Put(int64_t i, T v) {
      slots[static_cast<size_t>(i) & mask].store(v, std::memory_order_relaxed);
    }
    T Get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  /// Owner only: double the buffer, copying the live range [t, b).
  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* bigger = buffers_.back().get();
    for (int64_t i = t; i < b; ++i) bigger->Put(i, old->Get(i));
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  // Every buffer ever allocated, retired in place (see the file comment).
  // Owner-only; thieves reach buffers through buffer_ alone.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace treenum

#endif  // TREENUM_UTIL_WORK_STEALING_DEQUE_H_
