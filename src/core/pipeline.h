// EnumerationPipeline — the per-query owner of all derived enumeration
// state.
//
// The paper's machinery (Theorem 8.1 / Corollary 8.4) is one pipeline
// instantiated over different encodings: a balanced forest-algebra term
// (tree `DynamicEncoding` or word AVL `WordEncoding`) feeds an assignment
// circuit (Lemma 3.7), a jump index (Lemma 6.3), and optionally dynamic
// run counts. This class concentrates the maintenance logic that
// TreeEnumerator and WordEnumerator previously duplicated: consuming the
// `UpdateResult` of any encoding backend and refreshing circuit boxes,
// index entries, and count vectors along the changed path (Lemma 7.3).
//
// A pipeline does not own its term: the `DynamicDocument` layer
// (core/document.h) owns one encoding and fans each edit's UpdateResult
// out to every pipeline registered on it — possibly from worker threads,
// which is safe because during a refresh the pipelines share only the
// already-mutated, now-immutable term, and everything a refresh writes
// (circuit arena, index pools, counts) is pipeline-private. Batch
// *coalescing* also lives in the document (it depends only on the term,
// so it is computed once per commit, not once per query); the pipeline
// exposes ApplyCoalesced() to consume the merged changed-box set.
#ifndef TREENUM_CORE_PIPELINE_H_
#define TREENUM_CORE_PIPELINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "automata/homogenize.h"
#include "circuit/circuit.h"
#include "counting/run_count.h"
#include "core/engine.h"
#include "enumeration/enumerate.h"
#include "enumeration/index.h"
#include "falgebra/update.h"

namespace treenum {

/// The per-query owner of all derived enumeration state — assignment
/// circuit, jump index, optional run counts — over a shared term it does
/// not own (see the file comment above for the full contract).
class EnumerationPipeline {
 public:
  /// Builds the circuit (and, in kIndexed mode, the jump index) over
  /// `term`, which must outlive the pipeline and is mutated externally by
  /// the encoding backend that produces the UpdateResults fed to Apply().
  /// The automaton is shared, not owned: the document's query registry
  /// keeps the canonical `HomogenizedTva` alive and hands the same object
  /// to every pipeline built for it — including the re-admission path,
  /// where an evicted query's pipeline is rebuilt over the current term
  /// from the retained automaton without re-translating or re-homogenizing
  /// the query.
  EnumerationPipeline(const Term* term,
                      std::shared_ptr<const HomogenizedTva> homog,
                      BoxEnumMode mode);

  EnumerationPipeline(const EnumerationPipeline&) = delete;
  EnumerationPipeline& operator=(const EnumerationPipeline&) = delete;

  // ---- Introspection ----

  /// The shared term this pipeline's boxes are built over.
  const Term& term() const { return *term_; }
  /// The homogenized (canonical) binary TVA driving the circuit.
  const BinaryTva& tva() const { return homog_->tva; }
  /// Per-state 0-/1-state classification of tva() (see HomogenizedTva).
  const std::vector<uint8_t>& state_kinds() const { return homog_->kind; }
  /// Width of the circuit (= trimmed, homogenized |Q'|).
  size_t width() const { return homog_->tva.num_states(); }
  /// The canonical automaton, shared with the owning registry entry.
  const std::shared_ptr<const HomogenizedTva>& automaton() const {
    return homog_;
  }
  /// The assignment circuit (Lemma 3.7) maintained over term().
  const AssignmentCircuit& circuit() const { return circuit_; }
  /// The jump index (Lemma 6.3); empty unless mode() is kIndexed.
  const EnumIndex& index() const { return index_; }
  /// Box-enumeration mode this pipeline was built for.
  BoxEnumMode mode() const { return mode_; }

  // ---- Dynamic counting (optional; see counting/run_count.h) ----

  /// Builds the run-count vectors (O(size * poly(w)) once); afterwards
  /// every refresh also maintains them along the changed path.
  void EnableCounting();
  /// True once EnableCounting() has run.
  bool counting_enabled() const { return counter_ != nullptr; }
  /// Accepting (valuation, run) pairs mod 2^64; requires EnableCounting().
  uint64_t AcceptingRuns() const;

  // ---- Incremental maintenance ----

  /// Consumes one encoding UpdateResult immediately: releases the freed
  /// boxes and refreshes the changed ones in the given (children-first)
  /// order.
  UpdateStats Apply(const UpdateResult& result);

  /// Consumes a document-coalesced transaction: `dead_freed` are the term
  /// ids dead at commit (a slot freed mid-batch and re-allocated by a
  /// later edit is alive and appears in `ordered_changed` instead);
  /// `ordered_changed` are the surviving changed ids, deepest first, each
  /// refreshed exactly once. Pre-grows the circuit/index pools for the
  /// whole transaction so the refresh loop never re-grows a pool tail.
  UpdateStats ApplyCoalesced(const std::vector<TermNodeId>& dead_freed,
                             const std::vector<TermNodeId>& ordered_changed);

  /// Set by the owning document while an edit transaction is open: term
  /// nodes created mid-batch have no boxes until commit, so querying is
  /// unsupported — the query surface asserts in debug builds and reports
  /// no answers in release builds.
  void set_update_pending(bool pending) { update_pending_ = pending; }
  /// True while the owning document has an open batch.
  bool update_pending() const { return update_pending_; }

  // ---- Query surface (invalid while update_pending()) ----

  /// True iff some final 0-state's root gate is ⊤ (the empty assignment
  /// satisfies the query).
  bool EmptyAssignmentSatisfies() const;
  /// Dense ∪-gate indices of the final 1-states at the root box.
  std::vector<uint32_t> FinalGamma() const;
  /// O(w) Boolean answer.
  bool HasAnswer() const;
  /// Cursor over the non-empty satisfying assignments, or null when the
  /// root boxed set is empty. (Callers handle EmptyAssignmentSatisfies.)
  std::unique_ptr<AssignmentCursor> MakeRootCursor() const;
  /// Type-erased cursor over *all* satisfying assignments (including the
  /// empty one) — the shared implementation behind Engine::MakeCursor.
  std::unique_ptr<Engine::Cursor> MakeEngineCursor() const;
  /// All satisfying assignments (sorted), including the empty one.
  std::vector<Assignment> EnumerateAll() const;

  // ---- Snapshot query surface ----
  //
  // The same queries evaluated at an explicit root — the pinned root of a
  // published Snapshot (core/snapshot.h) — instead of the term's current
  // root. No update_pending gate: a pinned version is frozen, its node
  // versions are never mutated or freed and its boxes are never rebuilt in
  // place, so these run safely on reader threads *concurrently with writer
  // edits and the refresh fan-out*. The root must be a pinned snapshot root
  // published no earlier than this pipeline was built (the document checks
  // the snapshot epoch against min_snapshot_epoch()).

  /// EmptyAssignmentSatisfies at a pinned snapshot root.
  bool EmptyAssignmentSatisfiesAt(TermNodeId root) const;
  /// FinalGamma at a pinned snapshot root.
  std::vector<uint32_t> FinalGammaAt(TermNodeId root) const;
  /// HasAnswer at a pinned snapshot root.
  bool HasAnswerAt(TermNodeId root) const;
  /// MakeRootCursor at a pinned snapshot root.
  std::unique_ptr<AssignmentCursor> MakeRootCursorAt(TermNodeId root) const;
  /// MakeEngineCursor at a pinned snapshot root.
  std::unique_ptr<Engine::Cursor> MakeEngineCursorAt(TermNodeId root) const;
  /// EnumerateAll at a pinned snapshot root.
  std::vector<Assignment> EnumerateAllAt(TermNodeId root) const;

  /// Oldest snapshot epoch this pipeline can serve: the one current when it
  /// was built (older versions contain node ids it never built boxes for).
  uint64_t min_snapshot_epoch() const { return min_snapshot_epoch_; }

  /// Releases the boxes of term-node versions reclaimed when a retired
  /// snapshot was drained — the deferred counterpart of an UpdateResult's
  /// freed list, broadcast by the document before the next edit.
  void ReleaseBoxes(const std::vector<TermNodeId>& freed);

 private:
  void RefreshBox(TermNodeId id);
  void ReleaseBox(TermNodeId id);

  const Term* term_;
  std::shared_ptr<const HomogenizedTva> homog_;
  AssignmentCircuit circuit_;
  EnumIndex index_;
  BoxEnumMode mode_;
  std::unique_ptr<RunCounter> counter_;
  uint64_t min_snapshot_epoch_ = 0;
  bool update_pending_ = false;
};

}  // namespace treenum

#endif  // TREENUM_CORE_PIPELINE_H_
