#include "core/word_enumerator.h"

#include <algorithm>

namespace treenum {

WordEnumerator::WordEnumerator(const Word& w, const Wva& query,
                               BoxEnumMode mode)
    : doc_(w, query.num_labels()),
      handle_(doc_.Register(query, mode)),
      pipe_(&doc_.pipeline(handle_)) {}

std::vector<Assignment> WordEnumerator::EnumerateAll() const {
  return pipe_->EnumerateAll();
}

std::unique_ptr<Engine::Cursor> WordEnumerator::MakeCursor() const {
  return pipe_->MakeEngineCursor();
}

std::vector<Assignment> WordEnumerator::EnumerateAllByPosition() const {
  const WordEncoding& enc = doc_.word_encoding();
  std::vector<Assignment> out;
  for (const Assignment& a : EnumerateAll()) {
    Assignment b;
    for (const Singleton& s : a.singletons()) {
      b.Add(Singleton{s.var, static_cast<NodeId>(enc.PositionOf(s.node))});
    }
    b.Normalize();
    out.push_back(std::move(b));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace treenum
