// Experiment E7 — copy-on-write snapshots: concurrent reader enumeration
// while the writer edits.
//
// Three questions, three benchmark families (JSON key BENCH_snapshots.json
// via $TREENUM_BENCH_JSON; schema in BENCHMARKS.md):
//
//  * Reader scaling — aggregate EnumerateAt throughput at 1/2/4/8 reader
//    threads under a free-running batched writer, against the serialized
//    baseline (one thread alternating the same writer batches and
//    enumerations — the old update_pending barrier world, where a reader
//    and the writer could never overlap).
//  * Writer overhead — batched-relabel latency with 0 and 4 concurrent
//    readers. The readers:0 series is workload-identical to
//    BM_Update_BatchedRelabels (bench_updates), so the cross-PR JSON
//    trajectory exposes what path-copying costs the writer.
//  * Mechanism cost — pin/unpin churn on the snapshot handoff, and the
//    full edit→publish→retire→drain cycle on a small tree.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/document.h"

namespace treenum {
namespace {

using bench::kSeed;

constexpr size_t kBatch = 16;          // writer edits per batch
constexpr size_t kEnumsPerReader = 32; // enumerations per reader per iteration

// Serialized enumerations/sec, stashed by the baseline bench (registered
// first) so the scaling benches can report speedup directly.
double g_serialized_eps = 0.0;

// One thread alternates writer batches and enumerations: the throughput a
// reader saw when enumeration and edits excluded each other. Manual time
// so the benchmark clock and the stashed enums/sec agree.
void SerializedBaseline(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  UnrankedTree tree = bench::MakeTree(n);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryHandle h = doc.Register(bench::StandardQuery());
  bench::EditScript script(tree, kSeed, 3);

  size_t enums = 0;
  size_t answers = 0;
  double seconds = 0.0;
  std::vector<Edit> batch;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kEnumsPerReader; ++i) {
      batch.clear();
      for (size_t j = 0; j < kBatch; ++j) batch.push_back(script.NextRelabel());
      doc.ApplyEdits(batch);
      answers += doc.pipeline(h).EnumerateAll().size();
      ++enums;
    }
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    seconds += dt.count();
    state.SetIterationTime(dt.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(enums));
  double eps = seconds > 0 ? static_cast<double>(enums) / seconds : 0.0;
  g_serialized_eps = eps;
  state.counters["enums_per_sec"] = eps;
  state.counters["answers_per_enum"] =
      static_cast<double>(answers) / static_cast<double>(enums);
  bench::EmitJson("snapshot_serialized_baseline",
                  {{"n", static_cast<double>(n)},
                   {"enums_per_sec", eps},
                   {"iterations", static_cast<double>(state.iterations())}});
}

// R reader threads enumerate pinned snapshots while the writer free-runs
// batched relabels on the bench thread's clock. Reported time covers the
// reader phase only (manual time); the writer runs for exactly that span.
void ReaderThroughput(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int readers = static_cast<int>(state.range(1));
  UnrankedTree tree = bench::MakeTree(n);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryHandle h = doc.Register(bench::StandardQuery());
  bench::EditScript script(tree, kSeed, 3);

  size_t enums = 0;
  double seconds = 0.0;
  std::atomic<size_t> answers{0};
  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      std::vector<Edit> batch;
      while (!stop.load(std::memory_order_acquire)) {
        batch.clear();
        for (size_t j = 0; j < kBatch; ++j) {
          batch.push_back(script.NextRelabel());
        }
        doc.ApplyEdits(batch);
      }
    });
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&] {
        size_t local = 0;
        for (size_t i = 0; i < kEnumsPerReader; ++i) {
          SnapshotRef snap = doc.CurrentSnapshot();
          local += doc.EnumerateAt(snap, h).size();
        }
        answers.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : pool) t.join();
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    stop.store(true, std::memory_order_release);
    writer.join();
    seconds += dt.count();
    state.SetIterationTime(dt.count());
    enums += static_cast<size_t>(readers) * kEnumsPerReader;
  }
  state.SetItemsProcessed(static_cast<int64_t>(enums));
  double eps = seconds > 0 ? static_cast<double>(enums) / seconds : 0.0;
  state.counters["enums_per_sec"] = eps;
  state.counters["readers"] = static_cast<double>(readers);
  double speedup = g_serialized_eps > 0 ? eps / g_serialized_eps : 0.0;
  state.counters["speedup_vs_serialized"] = speedup;
  bench::EmitJson("snapshot_reader_throughput",
                  {{"n", static_cast<double>(n)},
                   {"readers", static_cast<double>(readers)},
                   {"enums_per_sec", eps},
                   {"speedup_vs_serialized", speedup},
                   {"snapshots_published",
                    static_cast<double>(doc.snapshots_published())},
                   {"iterations", static_cast<double>(state.iterations())}});
}

void BM_Snapshot_ReaderThroughput(benchmark::State& state) {
  ReaderThroughput(state);
}

// Writer-side cost of path-copying: batched relabels (same workload as
// BM_Update_BatchedRelabels) with 0 and 4 concurrent readers.
void WriterUnderReaders(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  int readers = static_cast<int>(state.range(2));
  UnrankedTree tree = bench::MakeTree(n);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryHandle h = doc.Register(bench::StandardQuery());
  bench::EditScript script(tree, kSeed, 3);

  // Untimed warmup, as in bench_updates: size the arena spans.
  {
    std::vector<Edit> warm;
    for (size_t i = 0; i < k; ++i) warm.push_back(script.NextRelabel());
    doc.ApplyEdits(warm);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        SnapshotRef snap = doc.CurrentSnapshot();
        benchmark::DoNotOptimize(doc.EnumerateAt(snap, h).size());
      }
    });
  }
  uint64_t copies0 = doc.term().path_copies();
  std::vector<Edit> batch;
  for (auto _ : state) {
    batch.clear();
    for (size_t i = 0; i < k; ++i) batch.push_back(script.NextRelabel());
    doc.ApplyEdits(batch);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  size_t edits = state.iterations() * k;
  double copies_per_edit =
      static_cast<double>(doc.term().path_copies() - copies0) /
      static_cast<double>(edits);
  state.counters["path_copies_per_edit"] = copies_per_edit;
  state.counters["readers"] = static_cast<double>(readers);
  state.SetItemsProcessed(static_cast<int64_t>(edits));
  bench::EmitJson("snapshot_writer_batched_relabels",
                  {{"n", static_cast<double>(n)},
                   {"k", static_cast<double>(k)},
                   {"readers", static_cast<double>(readers)},
                   {"path_copies_per_edit", copies_per_edit},
                   {"iterations", static_cast<double>(state.iterations())}});
}

void BM_Snapshot_WriterBatchedRelabels(benchmark::State& state) {
  WriterUnderReaders(state);
}

// Pin/unpin churn: the mutex + refcount handoff a reader pays per
// EnumerateAt, isolated from the enumeration itself.
void BM_Snapshot_PinUnpin(benchmark::State& state) {
  UnrankedTree tree = bench::MakeTree(1024);
  DynamicDocument doc(tree, 3);
  doc.Register(bench::StandardQuery());
  for (auto _ : state) {
    SnapshotRef snap = doc.CurrentSnapshot();
    benchmark::DoNotOptimize(snap.root());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  bench::EmitJson("snapshot_pin_unpin",
                  {{"iterations", static_cast<double>(state.iterations())}});
}

// Full publish/retire/drain cycle: one relabel per iteration on a small
// tree, so the snapshot machinery (spine copy, publish, retire the
// predecessor, drain, recycle) is a visible fraction of the edit.
void BM_Snapshot_PublishRetireCycle(benchmark::State& state) {
  UnrankedTree tree = bench::MakeTree(1024);
  DynamicDocument doc(tree, 3);
  doc.Register(bench::StandardQuery());
  bench::EditScript script(tree, kSeed, 3);
  for (auto _ : state) {
    doc.ApplyEdit(script.NextRelabel());
  }
  uint64_t published = doc.snapshots_published();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["nodes_recycled"] =
      static_cast<double>(doc.term().nodes_recycled());
  bench::EmitJson("snapshot_publish_retire",
                  {{"published", static_cast<double>(published)},
                   {"nodes_recycled",
                    static_cast<double>(doc.term().nodes_recycled())},
                   {"iterations", static_cast<double>(state.iterations())}});
}

void BM_Snapshot_SerializedBaselineBench(benchmark::State& state) {
  SerializedBaseline(state);
}

BENCHMARK(BM_Snapshot_SerializedBaselineBench)
    ->Arg(16384)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Snapshot_ReaderThroughput)
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Args({16384, 4})
    ->Args({16384, 8})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Snapshot_WriterBatchedRelabels)
    ->Args({131072, 256, 0})
    ->Args({131072, 256, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Snapshot_PinUnpin)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_Snapshot_PublishRetireCycle)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
