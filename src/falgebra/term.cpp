#include "falgebra/term.h"

#include <cassert>
#include <deque>
#include <stdexcept>

namespace treenum {

TermNodeId Term::Alloc() {
  TermNodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = TermNode{};
  } else {
    id = static_cast<TermNodeId>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[id].alive = true;
  ++num_alive_;
  return id;
}

TermNodeId Term::NewLeaf(Label symbol, NodeId n) {
  assert(alphabet_.IsLeafSymbol(symbol));
  TermNodeId id = Alloc();
  TermNode& t = nodes_[id];
  t.label = symbol;
  t.tree_node = n;
  t.size = 1;
  t.height = 0;
  t.is_context = alphabet_.IsContextLeaf(symbol);
  return id;
}

TermNodeId Term::NewNode(TermOp op, TermNodeId left, TermNodeId right) {
  assert(IsAlive(left) && IsAlive(right));
  assert(nodes_[left].parent == kNoTerm && nodes_[right].parent == kNoTerm);
  assert(nodes_[left].is_context == OpLeftIsContext(op));
  assert(nodes_[right].is_context == OpRightIsContext(op));
  TermNodeId id = Alloc();
  TermNode& t = nodes_[id];
  t.label = alphabet_.Op(op);
  t.left = left;
  t.right = right;
  t.is_context = OpYieldsContext(op);
  nodes_[left].parent = id;
  nodes_[right].parent = id;
  RecomputeNode(id);
  return id;
}

void Term::ReplaceChild(TermNodeId old_id, TermNodeId new_id) {
  TermNodeId p = nodes_[old_id].parent;
  nodes_[old_id].parent = kNoTerm;
  nodes_[new_id].parent = p;
  if (p == kNoTerm) {
    root_ = new_id;
    return;
  }
  if (nodes_[p].left == old_id) {
    nodes_[p].left = new_id;
  } else {
    assert(nodes_[p].right == old_id);
    nodes_[p].right = new_id;
  }
}

void Term::ClearParent(TermNodeId id) { nodes_[id].parent = kNoTerm; }

void Term::SetChildSlot(TermNodeId parent, bool left_slot, TermNodeId child) {
  if (left_slot) {
    nodes_[parent].left = child;
  } else {
    nodes_[parent].right = child;
  }
  nodes_[child].parent = parent;
}

void Term::SetChildrenRaw(TermNodeId id, TermNodeId l, TermNodeId r) {
  nodes_[id].left = l;
  nodes_[id].right = r;
  nodes_[l].parent = id;
  nodes_[r].parent = id;
  RecomputeNode(id);
}

TermNodeId Term::SpliceOp(TermOp op, TermNodeId existing, TermNodeId fresh,
                          bool fresh_on_left) {
  TermNodeId p = nodes_[existing].parent;
  bool was_left = p != kNoTerm && nodes_[p].left == existing;
  nodes_[existing].parent = kNoTerm;
  TermNodeId nn = fresh_on_left ? NewNode(op, fresh, existing)
                                : NewNode(op, existing, fresh);
  nodes_[nn].parent = p;
  if (p == kNoTerm) {
    root_ = nn;
  } else if (was_left) {
    nodes_[p].left = nn;
  } else {
    nodes_[p].right = nn;
  }
  return nn;
}

void Term::SetLabel(TermNodeId id, Label label) { nodes_[id].label = label; }
void Term::SetTreeNode(TermNodeId id, NodeId n) { nodes_[id].tree_node = n; }
void Term::SetContext(TermNodeId id, bool is_context) {
  nodes_[id].is_context = is_context;
}

void Term::RecomputeNode(TermNodeId id) {
  TermNode& t = nodes_[id];
  if (t.left == kNoTerm) {
    t.size = 1;
    t.height = 0;
    return;
  }
  const TermNode& l = nodes_[t.left];
  const TermNode& r = nodes_[t.right];
  t.size = l.size + r.size;
  t.height = 1 + std::max(l.height, r.height);
}

void Term::RecomputeUp(TermNodeId id, std::vector<TermNodeId>* path) {
  while (id != kNoTerm) {
    RecomputeNode(id);
    if (path) path->push_back(id);
    id = nodes_[id].parent;
  }
}

void Term::FreeNode(TermNodeId id) {
  assert(IsAlive(id));
  nodes_[id].alive = false;
  free_list_.push_back(id);
  --num_alive_;
}

void Term::FreeSubterm(TermNodeId id, std::vector<TermNodeId>* freed) {
  std::vector<TermNodeId> stack{id};
  while (!stack.empty()) {
    TermNodeId n = stack.back();
    stack.pop_back();
    if (nodes_[n].left != kNoTerm) {
      stack.push_back(nodes_[n].left);
      stack.push_back(nodes_[n].right);
    }
    if (freed) freed->push_back(n);
    FreeNode(n);
  }
}

namespace {

/// Intermediate decoded node; holes are marked nodes that get substituted.
struct DNode {
  Label label = 0;
  std::vector<DNode*> children;
  bool is_hole = false;
  TermNodeId term_leaf = kNoTerm;
};

struct DForest {
  std::vector<DNode*> roots;
  DNode* hole = nullptr;  ///< Non-null iff this is a context.
};

}  // namespace

UnrankedTree Term::Decode(std::vector<NodeId>* term_to_tree) const {
  if (root_ == kNoTerm) {
    throw std::logic_error("Decode: empty term");
  }
  std::deque<DNode> arena;
  auto make = [&]() {
    arena.emplace_back();
    return &arena.back();
  };

  // Recursive evaluation (term height is O(log n) for balanced terms; decode
  // is a test/rebuild helper, not on the enumeration fast path).
  auto eval = [&](auto&& self, TermNodeId id) -> DForest {
    const TermNode& t = nodes_[id];
    if (t.left == kNoTerm) {
      DNode* n = make();
      n->label = alphabet_.BaseLabel(t.label);
      n->term_leaf = id;
      if (alphabet_.IsContextLeaf(t.label)) {
        DNode* hole = make();
        hole->is_hole = true;
        n->children.push_back(hole);
        return DForest{{n}, hole};
      }
      return DForest{{n}, nullptr};
    }
    DForest l = self(self, t.left);
    DForest r = self(self, t.right);
    TermOp op = alphabet_.OpOf(t.label);
    switch (op) {
      case TermOp::kConcatHH:
      case TermOp::kConcatHV:
      case TermOp::kConcatVH: {
        DForest out;
        out.roots = l.roots;
        out.roots.insert(out.roots.end(), r.roots.begin(), r.roots.end());
        out.hole = l.hole ? l.hole : r.hole;
        return out;
      }
      case TermOp::kApplyVV:
      case TermOp::kApplyVH: {
        // Replace l's hole node by r's roots, in place in its parent's child
        // list. The hole is always a child slot (never a root) because a_□
        // holes start below their node.
        DNode* hole = l.hole;
        assert(hole != nullptr);
        // Find hole in its parent: we do not store parents in DNode; instead
        // mark the hole node as becoming a "splice" node that adopts r's
        // roots and is flattened during conversion.
        hole->is_hole = false;
        hole->label = static_cast<Label>(-1);  // splice marker
        hole->children = r.roots;
        DForest out;
        out.roots = l.roots;
        out.hole = r.hole;
        return out;
      }
    }
    return {};
  };
  DForest top = eval(eval, root_);
  if (top.hole != nullptr) {
    throw std::logic_error("Decode: term is context-typed");
  }
  // Flatten splice markers: a node's effective children expand markers.
  if (top.roots.size() != 1) {
    throw std::logic_error("Decode: term represents a forest, not one tree");
  }

  UnrankedTree tree(0);
  if (term_to_tree) term_to_tree->assign(nodes_.size(), kNoNode);

  auto convert = [&](auto&& self, DNode* d, NodeId parent) -> void {
    NodeId me;
    if (parent == kNoNode) {
      me = tree.root();
      tree.Relabel(me, d->label);
    } else {
      me = tree.AppendChild(parent, d->label);
    }
    if (term_to_tree && d->term_leaf != kNoTerm) {
      (*term_to_tree)[d->term_leaf] = me;
    }
    // Expand splice markers depth-first so child order is preserved.
    auto emit = [&](auto&& emit_self, DNode* c) -> void {
      if (c->label == static_cast<Label>(-1) && c->term_leaf == kNoTerm) {
        for (DNode* cc : c->children) emit_self(emit_self, cc);
      } else {
        self(self, c, me);
      }
    };
    for (DNode* c : d->children) emit(emit, c);
  };
  convert(convert, top.roots[0], kNoNode);
  return tree;
}

std::string Term::Validate() const {
  if (root_ == kNoTerm) return "no root";
  std::string err;
  auto fail = [&](TermNodeId id, const std::string& what) {
    if (err.empty()) {
      err = "node " + std::to_string(id) + ": " + what;
    }
  };
  auto walk = [&](auto&& self, TermNodeId id) -> void {
    if (!err.empty()) return;
    const TermNode& t = nodes_[id];
    if (!t.alive) {
      fail(id, "not alive");
      return;
    }
    if (t.left == kNoTerm) {
      if (t.right != kNoTerm) fail(id, "leaf with right child");
      if (!alphabet_.IsLeafSymbol(t.label)) fail(id, "leaf with op label");
      if (t.tree_node == kNoNode) fail(id, "leaf without tree node");
      if (t.size != 1 || t.height != 0) fail(id, "bad leaf counters");
      if (t.is_context != alphabet_.IsContextLeaf(t.label)) {
        fail(id, "leaf type mismatch");
      }
      return;
    }
    if (!alphabet_.IsOp(t.label)) {
      fail(id, "internal node with leaf label");
      return;
    }
    TermOp op = alphabet_.OpOf(t.label);
    const TermNode& l = nodes_[t.left];
    const TermNode& r = nodes_[t.right];
    if (l.parent != id || r.parent != id) fail(id, "bad child parent link");
    if (l.is_context != OpLeftIsContext(op)) fail(id, "left operand type");
    if (r.is_context != OpRightIsContext(op)) fail(id, "right operand type");
    if (t.is_context != OpYieldsContext(op)) fail(id, "result type");
    if (t.size != l.size + r.size) fail(id, "bad size");
    if (t.height != 1 + std::max(l.height, r.height)) fail(id, "bad height");
    self(self, t.left);
    self(self, t.right);
  };
  walk(walk, root_);
  if (err.empty() && nodes_[root_].parent != kNoTerm) err = "root has parent";
  return err;
}

std::string Term::ToString(TermNodeId id) const {
  const TermNode& t = nodes_[id];
  if (t.left == kNoTerm) {
    return alphabet_.LabelName(t.label) + "#" + std::to_string(t.tree_node);
  }
  return "(" + alphabet_.LabelName(t.label) + " " + ToString(t.left) + " " +
         ToString(t.right) + ")";
}

}  // namespace treenum
