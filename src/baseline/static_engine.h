// Static-engine baseline (the Bagan'06 / Kazana-Segoufin row of Table 1):
// linear-time preprocessing and constant-delay enumeration, but no update
// support — every edit triggers a full preprocessing run.
#ifndef TREENUM_BASELINE_STATIC_ENGINE_H_
#define TREENUM_BASELINE_STATIC_ENGINE_H_

#include <memory>

#include "core/tree_enumerator.h"

namespace treenum {

class StaticEngine {
 public:
  /// Preprocesses `tree` for `query` (both copied; edits re-preprocess).
  StaticEngine(UnrankedTree tree, UnrankedTva query);

  const UnrankedTree& tree() const { return tree_; }
  /// All satisfying assignments (sorted, duplicate-free).
  std::vector<Assignment> EnumerateAll() const { return inner_->EnumerateAll(); }
  /// Constant-delay cursor over the satisfying assignments.
  TreeEnumerator::Cursor Enumerate() const { return inner_->Enumerate(); }

  /// Edits rebuild the entire enumeration structure — O(|T|) each; this is
  /// the update cost Table 1 attributes to the static state of the art.
  void Relabel(NodeId n, Label l);
  NodeId InsertFirstChild(NodeId n, Label l);
  NodeId InsertRightSibling(NodeId n, Label l);
  void DeleteLeaf(NodeId n);

 private:
  void Rebuild();

  UnrankedTree tree_;
  UnrankedTva query_;
  std::unique_ptr<TreeEnumerator> inner_;
};

}  // namespace treenum

#endif  // TREENUM_BASELINE_STATIC_ENGINE_H_
