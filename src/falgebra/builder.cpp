#include "falgebra/builder.h"

#include <algorithm>
#include <cassert>

namespace treenum {

namespace {

class PieceEncoder {
 public:
  PieceEncoder(Term& term, const UnrankedTree& tree,
               std::vector<TermNodeId>& leaf_of, EncodeScratch& scratch,
               std::vector<TermNodeId>* created)
      : term_(term),
        tree_(tree),
        leaf_of_(leaf_of),
        sc_(scratch),
        created_(created) {}

  TermNodeId Encode(const Piece* pieces, size_t num_pieces) {
    // New epoch invalidates all cached sizes without clearing.
    if (sc_.csize.size() < tree_.id_bound()) {
      sc_.csize.resize(tree_.id_bound(), 0);
      sc_.stamp.resize(tree_.id_bound(), 0);
    }
    if (++sc_.epoch == 0) {
      std::fill(sc_.stamp.begin(), sc_.stamp.end(), 0);
      sc_.epoch = 1;
    }
    for (size_t i = 0; i < num_pieces; ++i) {
      SizeDfs(pieces[i].root, pieces[i].hole_parent);
    }
    size_t b = sc_.forest.size();
    sc_.forest.insert(sc_.forest.end(), pieces, pieces + num_pieces);
    TermNodeId r = EncForest(b, sc_.forest.size());
    sc_.forest.resize(b);
    return r;
  }

 private:
  // Csize(n) = number of fragment nodes in n's subtree, where "fragment"
  // excludes everything strictly below the enclosing piece's hole parent.
  uint32_t Csize(NodeId n) const {
    assert(sc_.stamp[n] == sc_.epoch);
    return sc_.csize[n];
  }

  void SizeDfs(NodeId root, NodeId hole_parent) {
    auto& st = sc_.dfs;
    assert(st.empty());
    st.push_back({root, 0, 1});
    while (!st.empty()) {
      EncodeScratch::DfsFrame& f = st.back();
      const auto& ch = tree_.children(f.n);
      if (f.n == hole_parent || f.ci >= ch.size()) {
        sc_.csize[f.n] = f.acc;
        sc_.stamp[f.n] = sc_.epoch;
        uint32_t a = f.acc;
        st.pop_back();
        if (!st.empty()) st.back().acc += a;
      } else {
        NodeId c = ch[f.ci++];
        st.push_back({c, 0, 1});
      }
    }
  }

  uint64_t PieceSize(const Piece& p) const {
    uint32_t r = Csize(p.root);
    if (!p.IsContext()) return r;
    return r - Csize(p.hole_parent) + 1;
  }

  TermNodeId MakeLeaf(bool ctx, NodeId n) {
    Label base = tree_.label(n);
    Label sym = ctx ? term_.alphabet().ContextLeaf(base)
                    : term_.alphabet().TreeLeaf(base);
    TermNodeId id = term_.NewLeaf(sym, n);
    leaf_of_[n] = id;
    if (created_) created_->push_back(id);
    return id;
  }

  TermNodeId MakeNode(TermOp op, TermNodeId l, TermNodeId r) {
    TermNodeId id = term_.NewNode(op, l, r);
    if (created_) created_->push_back(id);
    return id;
  }

  /// Concatenation with the operator dictated by operand types.
  TermNodeId Combine(TermNodeId l, TermNodeId r) {
    TermNodeId id = term_.JoinDetached(l, r);
    if (created_) created_->push_back(id);
    return id;
  }

  // Encodes sc_.forest[begin, end). The recursion only ever splits the range
  // into contiguous subranges, so no piece list is ever copied; EncTree /
  // EncContext append their child forests past `end` and truncate on return.
  // sc_.forest may reallocate during nested appends, so pieces are copied
  // out before recursing.
  TermNodeId EncForest(size_t begin, size_t end) {
    assert(begin < end);
    if (end - begin == 1) {
      Piece p = sc_.forest[begin];
      return EncPiece(p);
    }

    uint64_t s = 0;
    for (size_t i = begin; i < end; ++i) s += PieceSize(sc_.forest[i]);

    // Isolate a piece exceeding half the total (at most one exists).
    for (size_t i = begin; i < end; ++i) {
      if (2 * PieceSize(sc_.forest[i]) <= s) continue;
      Piece p = sc_.forest[i];
      TermNodeId mid = EncPiece(p);
      if (i > begin) mid = Combine(EncForest(begin, i), mid);
      if (i + 1 < end) mid = Combine(mid, EncForest(i + 1, end));
      return mid;
    }

    // All pieces ≤ s/2: crossing split; both sides land in [s/4, 3s/4].
    uint64_t cum = 0;
    for (size_t j = begin; j < end; ++j) {
      uint64_t prev = cum;
      cum += PieceSize(sc_.forest[j]);
      if (2 * cum >= s) {
        size_t split = (4 * prev >= s) ? j : j + 1;  // before or after j
        assert(split > begin && split < end);
        return Combine(EncForest(begin, split), EncForest(split, end));
      }
    }
    assert(false && "crossing point must exist");
    return kNoTerm;
  }

  TermNodeId EncPiece(const Piece& p) {
    if (!p.IsContext()) return EncTree(p.root);
    return EncContext(p.root, p.hole_parent);
  }

  TermNodeId EncTree(NodeId root) {
    uint64_t s = Csize(root);
    if (s == 1) return MakeLeaf(/*ctx=*/false, root);
    // v = deepest node with subtree size > s/2 (start at root, descend).
    NodeId v = root;
    while (true) {
      NodeId next = kNoNode;
      for (NodeId c : tree_.children(v)) {
        if (2 * static_cast<uint64_t>(Csize(c)) > s) {
          next = c;
          break;
        }
      }
      if (next == kNoNode) break;
      v = next;
    }
    TermNodeId ctx = (v == root) ? MakeLeaf(/*ctx=*/true, root)
                                 : EncContext(root, v);
    size_t b = sc_.forest.size();
    for (NodeId c : tree_.children(v)) sc_.forest.push_back(Piece{c, kNoNode});
    assert(sc_.forest.size() > b);
    TermNodeId f = EncForest(b, sc_.forest.size());
    sc_.forest.resize(b);
    return MakeNode(TermOp::kApplyVH, ctx, f);
  }

  TermNodeId EncContext(NodeId u, NodeId w) {
    if (u == w) return MakeLeaf(/*ctx=*/true, u);
    uint64_t m = Csize(u) - Csize(w) + 1;
    // x = deepest node on the hole path u→w whose child forest (within the
    // piece) exceeds m/2; y = x's child on the path.
    NodeId x = kNoNode;
    NodeId y_path = kNoNode;
    NodeId child = w;  // path-child of the node currently scanned
    for (NodeId y = tree_.parent(w);; y = tree_.parent(y)) {
      uint64_t cf = Csize(y) - Csize(w);
      if (2 * cf > m) {
        x = y;
        y_path = child;
        break;
      }
      if (y == u) break;
      child = y;
    }
    if (x == kNoNode) {
      // No hole-path node's child forest exceeds m/2 (e.g. m == 2):
      // split directly below u.
      x = u;
      y_path = child;
    }
    TermNodeId c1 =
        (x == u) ? MakeLeaf(/*ctx=*/true, u) : EncContext(u, x);
    size_t b = sc_.forest.size();
    for (NodeId c : tree_.children(x)) {
      if (c == y_path) {
        sc_.forest.push_back(Piece{c, w});
      } else {
        sc_.forest.push_back(Piece{c, kNoNode});
      }
    }
    assert(sc_.forest.size() > b);
    TermNodeId f = EncForest(b, sc_.forest.size());
    sc_.forest.resize(b);
    return MakeNode(TermOp::kApplyVV, c1, f);
  }

  Term& term_;
  const UnrankedTree& tree_;
  std::vector<TermNodeId>& leaf_of_;
  EncodeScratch& sc_;
  std::vector<TermNodeId>* created_;
};

}  // namespace

TermNodeId EncodePieces(Term& term, const UnrankedTree& tree,
                        const Piece* pieces, size_t num_pieces,
                        std::vector<TermNodeId>& leaf_of,
                        EncodeScratch& scratch,
                        std::vector<TermNodeId>* created) {
  if (leaf_of.size() < tree.id_bound()) {
    leaf_of.resize(tree.id_bound(), kNoTerm);
  }
  PieceEncoder enc(term, tree, leaf_of, scratch, created);
  return enc.Encode(pieces, num_pieces);
}

TermNodeId EncodePieces(Term& term, const UnrankedTree& tree,
                        const std::vector<Piece>& pieces,
                        std::vector<TermNodeId>& leaf_of,
                        std::vector<TermNodeId>* created) {
  EncodeScratch scratch;
  return EncodePieces(term, tree, pieces.data(), pieces.size(), leaf_of,
                      scratch, created);
}

Encoding EncodeTree(UnrankedTree tree, size_t num_base_labels) {
  Encoding e(std::move(tree), TermAlphabet(num_base_labels));
  e.leaf_of.assign(e.tree.id_bound(), kNoTerm);
  TermNodeId root = EncodePieces(e.term, e.tree,
                                 {Piece{e.tree.root(), kNoNode}}, e.leaf_of);
  e.term.set_root(root);
  return e;
}

uint32_t MaxAllowedHeight(uint32_t size) {
  uint32_t lg = 0;
  while ((uint32_t{1} << (lg + 1)) <= size) ++lg;
  return kBalanceC * lg + kBalanceK;
}

void CollectPiecesInto(const Term& term, TermNodeId id,
                       std::vector<Piece>& out) {
  const TermNode& t = term.node(id);
  const TermAlphabet& alphabet = term.alphabet();
  if (t.left == kNoTerm) {
    if (alphabet.IsContextLeaf(t.label)) {
      out.push_back(Piece{t.tree_node, t.tree_node});
    } else {
      out.push_back(Piece{t.tree_node, kNoNode});
    }
    return;
  }
  size_t b = out.size();
  CollectPiecesInto(term, t.left, out);
  TermOp op = alphabet.OpOf(t.label);
  if (op == TermOp::kConcatHH || op == TermOp::kConcatHV ||
      op == TermOp::kConcatVH) {
    CollectPiecesInto(term, t.right, out);
    return;
  }
  // Apply (⊙VV / ⊙VH): the left context's hole is filled by the right term;
  // its pieces are absorbed below the hole parent. For ⊙VV the combined
  // piece keeps the right side's hole.
  size_t ctx_idx = out.size();
  for (size_t i = b; i < out.size(); ++i) {
    if (out[i].IsContext()) {
      ctx_idx = i;
      break;
    }
  }
  assert(ctx_idx < out.size());
  if (op == TermOp::kApplyVV) {
    size_t b2 = out.size();
    CollectPiecesInto(term, t.right, out);
    NodeId inner_hole = kNoNode;
    for (size_t i = b2; i < out.size(); ++i) {
      if (out[i].IsContext()) inner_hole = out[i].hole_parent;
    }
    assert(inner_hole != kNoNode);
    out.resize(b2);
    out[ctx_idx].hole_parent = inner_hole;
  } else {
    out[ctx_idx].hole_parent = kNoNode;
  }
}

std::vector<Piece> CollectPieces(const Term& term, TermNodeId id) {
  std::vector<Piece> out;
  CollectPiecesInto(term, id, out);
  return out;
}

}  // namespace treenum
