// TreeEnumerator — the paper's main result (Theorem 8.1, Corollaries
// 8.2/8.3) as a library facade.
//
// Given an unranked tree T and a query as a nondeterministic unranked
// stepwise TVA A, preprocessing (the constructor) runs in O(|T| * poly(|Q|)):
//   1. translate A to a binary TVA A' over the forest-algebra term alphabet
//      (Lemma 7.4) and homogenize it (Lemma 2.1);
//   2. encode T as a balanced term (the encoding scheme ω);
//   3. build the assignment circuit (Lemma 3.7) and the jump index
//      (Lemma 6.3).
// Afterwards, satisfying assignments can be enumerated with delay
// independent of |T| (Theorem 6.5), and the edit operations of
// Definition 7.1 are supported in logarithmic time (Lemma 7.3), after which
// enumeration can simply be restarted.
#ifndef TREENUM_CORE_TREE_ENUMERATOR_H_
#define TREENUM_CORE_TREE_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "automata/homogenize.h"
#include "automata/translate.h"
#include "automata/unranked_tva.h"
#include "circuit/circuit.h"
#include "counting/run_count.h"
#include "enumeration/enumerate.h"
#include "enumeration/index.h"
#include "falgebra/update.h"
#include "trees/assignment.h"
#include "trees/unranked_tree.h"

namespace treenum {

/// Per-update cost report (for benchmarks).
struct UpdateStats {
  size_t boxes_recomputed = 0;
  size_t rebuilt_size = 0;  ///< Term nodes rebuilt by rebalancing (0 = none).
};

class TreeEnumerator {
 public:
  /// Preprocessing. `mode` selects the indexed (paper) or naive
  /// (depth-dependent-delay baseline) box enumeration.
  TreeEnumerator(UnrankedTree tree, const UnrankedTva& query,
                 BoxEnumMode mode = BoxEnumMode::kIndexed);

  const UnrankedTree& tree() const { return enc_.tree(); }
  const Term& term() const { return enc_.term(); }
  /// Width of the circuit (= trimmed, homogenized |Q'|).
  size_t width() const { return homog_.tva.num_states(); }

  // ---- Enumeration ----

  /// Pull-style cursor over the satisfying assignments (no duplicates).
  class Cursor {
   public:
    /// Produces the next satisfying assignment; false when exhausted.
    bool Next(Assignment* out);
    /// Elementary steps so far (delay accounting).
    size_t steps() const;

   private:
    friend class TreeEnumerator;
    bool emit_empty_ = false;
    std::unique_ptr<AssignmentCursor> inner_;
  };

  Cursor Enumerate() const;
  std::vector<Assignment> EnumerateAll() const;

  /// O(w) Boolean answer: does the query have at least one satisfying
  /// assignment on the current tree?
  bool HasAnswer() const;

  // ---- Dynamic counting (optional; see counting/run_count.h) ----

  /// Enables maintenance of accepting-run counts (O(|T| * poly(w)) once;
  /// afterwards each update also refreshes the counts on the changed path).
  void EnableCounting();
  bool counting_enabled() const { return counter_ != nullptr; }
  /// Number of accepting (valuation, run) pairs mod 2^64. Equals the number
  /// of satisfying assignments when the automaton is unambiguous (all
  /// query_library queries are). Requires EnableCounting().
  uint64_t AcceptingRuns() const;

  // ---- Updates (Definition 7.1), O(log |T| * poly(|Q|)) each ----

  UpdateStats Relabel(NodeId n, Label l);
  UpdateStats InsertFirstChild(NodeId n, Label l, NodeId* new_node = nullptr);
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr);
  UpdateStats DeleteLeaf(NodeId n);

  // ---- Introspection (tests / benches) ----
  const AssignmentCircuit& circuit() const { return circuit_; }
  const EnumIndex& index() const { return index_; }
  const BinaryTva& binary_tva() const { return homog_.tva; }
  const std::vector<uint8_t>& state_kinds() const { return homog_.kind; }

 private:
  UpdateStats ApplyUpdate(const UpdateResult& result);
  std::vector<uint32_t> FinalGamma() const;
  bool EmptyAssignmentSatisfies() const;

  HomogenizedTva homog_;
  DynamicEncoding enc_;
  AssignmentCircuit circuit_;
  EnumIndex index_;
  BoxEnumMode mode_;
  std::unique_ptr<RunCounter> counter_;
};

/// Corollary 8.3 convenience: converts assignments of a first-order query
/// (every assignment has size exactly num_vars, one singleton per variable
/// — e.g. a query passed through MakeFirstOrder) into answer tuples, where
/// tuple[v] is the node bound to variable v.
std::vector<std::vector<NodeId>> AssignmentsToTuples(
    const std::vector<Assignment>& assignments, size_t num_vars);

}  // namespace treenum

#endif  // TREENUM_CORE_TREE_ENUMERATOR_H_
