#include "core/document.h"

#include <algorithm>
#include <cassert>

#include "automata/translate.h"
#include "util/check.h"

namespace treenum {

DynamicDocument::DynamicDocument(UnrankedTree tree, size_t num_labels)
    : tree_enc_(std::make_unique<DynamicEncoding>(std::move(tree), num_labels)),
      term_(&tree_enc_->term()) {}

DynamicDocument::DynamicDocument(const Word& w, size_t num_labels)
    : word_enc_(std::make_unique<WordEncoding>(w, num_labels)),
      term_(&word_enc_->term()) {}

const UnrankedTree& DynamicDocument::tree() const {
  TREENUM_CHECK(tree_enc_ != nullptr, "tree() requires a tree document");
  return tree_enc_->tree();
}

const DynamicEncoding& DynamicDocument::tree_encoding() const {
  TREENUM_CHECK(tree_enc_ != nullptr,
                "tree_encoding() requires a tree document");
  return *tree_enc_;
}

const WordEncoding& DynamicDocument::word_encoding() const {
  TREENUM_CHECK(word_enc_ != nullptr,
                "word_encoding() requires a word document");
  return *word_enc_;
}

size_t DynamicDocument::size() const {
  return tree_enc_ ? tree_enc_->tree().size() : word_enc_->size();
}

DynamicDocument::QueryId DynamicDocument::Register(const UnrankedTva& query,
                                                   BoxEnumMode mode) {
  TREENUM_CHECK(tree_enc_ != nullptr,
                "tree queries require a tree document");
  TranslatedTva translated = TranslateUnrankedTva(query);
  TREENUM_CHECK(
      translated.alphabet.num_base_labels() == term_->alphabet().num_base_labels(),
      "query alphabet must match the document alphabet");
  return RegisterPrepared(HomogenizeBinaryTva(translated.tva), mode);
}

DynamicDocument::QueryId DynamicDocument::Register(const Wva& query,
                                                   BoxEnumMode mode) {
  TREENUM_CHECK(word_enc_ != nullptr,
                "word queries require a word document");
  TranslatedTva translated = TranslateWva(query);
  TREENUM_CHECK(
      translated.alphabet.num_base_labels() == term_->alphabet().num_base_labels(),
      "query alphabet must match the document alphabet");
  return RegisterPrepared(HomogenizeBinaryTva(translated.tva), mode);
}

DynamicDocument::QueryId DynamicDocument::RegisterPrepared(HomogenizedTva homog,
                                                           BoxEnumMode mode) {
  TREENUM_CHECK(!in_batch_, "cannot register a query mid-batch");
  pipelines_.push_back(
      std::make_unique<EnumerationPipeline>(term_, std::move(homog), mode));
  ++num_live_;
  return pipelines_.size() - 1;
}

void DynamicDocument::Unregister(QueryId id) {
  TREENUM_CHECK(!in_batch_, "cannot unregister a query mid-batch");
  TREENUM_CHECK(IsRegistered(id), "unknown or already-unregistered query");
  pipelines_[id].reset();
  --num_live_;
}

bool DynamicDocument::IsRegistered(QueryId id) const {
  return id < pipelines_.size() && pipelines_[id] != nullptr;
}

EnumerationPipeline& DynamicDocument::pipeline(QueryId id) {
  TREENUM_CHECK(IsRegistered(id), "unknown or already-unregistered query");
  return *pipelines_[id];
}

const EnumerationPipeline& DynamicDocument::pipeline(QueryId id) const {
  TREENUM_CHECK(IsRegistered(id), "unknown or already-unregistered query");
  return *pipelines_[id];
}

template <typename Fn>
void DynamicDocument::FanOut(const Fn& fn) {
  if (pool_ != nullptr && pool_->size() > 1 && num_live_ > 1) {
    fan_scratch_.clear();
    for (const std::unique_ptr<EnumerationPipeline>& p : pipelines_) {
      if (p) fan_scratch_.push_back(p.get());
    }
    pool_->ParallelFor(fan_scratch_.size(),
                       [&](size_t i) { fn(*fan_scratch_[i]); });
  } else {
    for (const std::unique_ptr<EnumerationPipeline>& p : pipelines_) {
      if (p) fn(*p);
    }
  }
}

void DynamicDocument::SetPipelinesPending(bool pending) {
  for (const std::unique_ptr<EnumerationPipeline>& p : pipelines_) {
    if (p) p->set_update_pending(pending);
  }
}

UpdateStats DynamicDocument::Dispatch(const UpdateResult& result) {
  UpdateStats stats;
  stats.edits_applied = 1;
  stats.rebuilt_size = result.rebuilt_size;
  if (in_batch_) {
    batch_freed_.insert(batch_freed_.end(), result.freed.begin(),
                        result.freed.end());
    batch_changed_.insert(batch_changed_.end(),
                          result.changed_bottom_up.begin(),
                          result.changed_bottom_up.end());
    return stats;  // every pipeline refreshed at CommitBatch
  }
  FanOut([&result](EnumerationPipeline& p) { p.Apply(result); });
  stats.boxes_recomputed = result.changed_bottom_up.size() * num_live_;
  return stats;
}

// ---- Tree edits ----

UpdateStats DynamicDocument::Relabel(NodeId n, Label l) {
  if (word_enc_) return Replace(word_enc_->PositionOf(n), l);
  return Dispatch(tree_enc_->Relabel(n, l));
}

UpdateStats DynamicDocument::InsertFirstChild(NodeId n, Label l,
                                              NodeId* new_node) {
  if (word_enc_) return WordInsertAt(word_enc_->PositionOf(n), l, new_node);
  return Dispatch(tree_enc_->InsertFirstChild(n, l, new_node));
}

UpdateStats DynamicDocument::InsertRightSibling(NodeId n, Label l,
                                                NodeId* new_node) {
  if (word_enc_) {
    return WordInsertAt(word_enc_->PositionOf(n) + 1, l, new_node);
  }
  return Dispatch(tree_enc_->InsertRightSibling(n, l, new_node));
}

UpdateStats DynamicDocument::DeleteLeaf(NodeId n) {
  if (word_enc_) return Erase(word_enc_->PositionOf(n));
  return Dispatch(tree_enc_->DeleteLeaf(n));
}

// ---- Word edits ----

UpdateStats DynamicDocument::Replace(size_t pos, Label l) {
  TREENUM_CHECK(word_enc_ != nullptr, "Replace requires a word document");
  return Dispatch(word_enc_->Replace(pos, l));
}

UpdateStats DynamicDocument::Insert(size_t pos, Label l) {
  TREENUM_CHECK(word_enc_ != nullptr, "Insert requires a word document");
  return Dispatch(word_enc_->Insert(pos, l));
}

UpdateStats DynamicDocument::Erase(size_t pos) {
  TREENUM_CHECK(word_enc_ != nullptr, "Erase requires a word document");
  return Dispatch(word_enc_->Erase(pos));
}

UpdateStats DynamicDocument::MoveRange(size_t begin, size_t end, size_t dst) {
  TREENUM_CHECK(word_enc_ != nullptr, "MoveRange requires a word document");
  return Dispatch(word_enc_->MoveRange(begin, end, dst));
}

UpdateStats DynamicDocument::WordInsertAt(size_t pos, Label l,
                                          NodeId* new_node) {
  UpdateStats stats = Dispatch(word_enc_->Insert(pos, l));
  if (new_node) *new_node = word_enc_->PositionId(pos);
  return stats;
}

// ---- Batched updates ----

void DynamicDocument::BeginBatch() {
  assert(!in_batch_ && "nested batches are not supported");
  in_batch_ = true;
  SetPipelinesPending(true);
}

UpdateStats DynamicDocument::CommitBatch() {
  assert(in_batch_);
  in_batch_ = false;

  UpdateStats stats;

  // Free each slot that is dead *now*; a slot freed mid-batch and then
  // re-allocated by a later edit is alive and will be rebuilt below.
  std::sort(batch_freed_.begin(), batch_freed_.end());
  batch_freed_.erase(std::unique(batch_freed_.begin(), batch_freed_.end()),
                     batch_freed_.end());
  dead_freed_.clear();
  for (TermNodeId id : batch_freed_) {
    if (!term_->IsAlive(id)) dead_freed_.push_back(id);
  }

  // Coalesce: every alive changed node once, deepest first. Each edit's
  // changed_bottom_up conservatively includes the full path to the root,
  // so the union covers every node whose box inputs may have changed;
  // depth order guarantees children are rebuilt before their parents.
  // Computed once here — it depends only on the shared term, not on any
  // query — and consumed by every pipeline.
  std::sort(batch_changed_.begin(), batch_changed_.end());
  batch_changed_.erase(
      std::unique(batch_changed_.begin(), batch_changed_.end()),
      batch_changed_.end());
  order_scratch_.clear();
  order_scratch_.reserve(batch_changed_.size());
  for (TermNodeId id : batch_changed_) {
    if (!term_->IsAlive(id)) continue;
    uint32_t depth = 0;
    for (TermNodeId p = term_->node(id).parent; p != kNoTerm;
         p = term_->node(p).parent) {
      ++depth;
    }
    order_scratch_.emplace_back(depth, id);
  }
  std::sort(order_scratch_.begin(), order_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  ordered_changed_.clear();
  ordered_changed_.reserve(order_scratch_.size());
  for (const auto& [depth, id] : order_scratch_) {
    (void)depth;
    ordered_changed_.push_back(id);
  }

  FanOut([this](EnumerationPipeline& p) {
    p.ApplyCoalesced(dead_freed_, ordered_changed_);
  });
  stats.boxes_recomputed = ordered_changed_.size() * num_live_;

  batch_freed_.clear();
  batch_changed_.clear();
  SetPipelinesPending(false);
  return stats;
}

UpdateStats DynamicDocument::ApplyEdit(const Edit& e, NodeId* new_node) {
  switch (e.kind) {
    case Edit::Kind::kRelabel:
      return Relabel(e.node, e.label);
    case Edit::Kind::kInsertFirstChild:
      return InsertFirstChild(e.node, e.label, new_node);
    case Edit::Kind::kInsertRightSibling:
      return InsertRightSibling(e.node, e.label, new_node);
    case Edit::Kind::kDeleteLeaf:
      return DeleteLeaf(e.node);
  }
  return UpdateStats{};
}

UpdateStats DynamicDocument::ApplyEdits(const std::vector<Edit>& edits) {
  UpdateStats stats;
  if (in_batch_) {
    for (const Edit& e : edits) stats += ApplyEdit(e);
    return stats;
  }
  BeginBatch();
  for (const Edit& e : edits) stats += ApplyEdit(e);
  stats += CommitBatch();
  return stats;
}

}  // namespace treenum
