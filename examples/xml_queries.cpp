// XML-style querying under updates: a synthetic "document" tree with
// sections, figures and paragraphs; we maintain two queries while the
// document is edited — the motivating scenario of the paper's introduction
// (querying tree-shaped data such as XML/JSON documents that change).
#include <cstdio>

#include "automata/query_library.h"
#include "core/tree_enumerator.h"
#include "util/random.h"

using namespace treenum;

namespace {

// Alphabet: 0 = doc, 1 = section, 2 = figure, 3 = para.
constexpr Label kDoc = 0, kSection = 1, kFigure = 2, kPara = 3;

UnrankedTree MakeDocument(size_t sections, size_t paras_per_section,
                          Rng& rng) {
  UnrankedTree t(kDoc);
  for (size_t s = 0; s < sections; ++s) {
    NodeId sec = t.AppendChild(t.root(), kSection);
    for (size_t p = 0; p < paras_per_section; ++p) {
      t.AppendChild(sec, rng.Flip(0.2) ? kFigure : kPara);
    }
  }
  return t;
}

}  // namespace

int main() {
  Rng rng(2024);
  UnrankedTree doc = MakeDocument(8, 6, rng);
  std::printf("document: %zu nodes\n", doc.size());

  // Q1(x): every figure that is inside a section (marked-ancestor shape).
  TreeEnumerator figures_in_sections(
      doc, QueryMarkedAncestor(4, /*marked=*/kSection, /*special=*/kFigure));
  // Q2(x, y): section x together with each figure y below it.
  TreeEnumerator section_figure_pairs(
      doc, QueryDescendantPairs(4, kSection, kFigure));

  std::printf("figures inside sections: %zu\n",
              figures_in_sections.EnumerateAll().size());
  std::printf("(section, figure) pairs: %zu\n",
              section_figure_pairs.EnumerateAll().size());

  // Editorial workflow: insert new figures, convert paragraphs to figures,
  // delete figures — and keep both result sets current.
  for (int round = 0; round < 5; ++round) {
    std::vector<NodeId> nodes = figures_in_sections.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    const UnrankedTree& cur = figures_in_sections.tree();
    if (cur.label(n) == kSection) {
      figures_in_sections.InsertFirstChild(n, kFigure);
      section_figure_pairs.InsertFirstChild(n, kFigure);
      std::printf("round %d: inserted a figure under a section\n", round);
    } else if (cur.label(n) == kPara) {
      figures_in_sections.Relabel(n, kFigure);
      section_figure_pairs.Relabel(n, kFigure);
      std::printf("round %d: converted a paragraph to a figure\n", round);
    } else if (cur.label(n) == kFigure && cur.IsLeaf(n) &&
               n != cur.root()) {
      figures_in_sections.DeleteLeaf(n);
      section_figure_pairs.DeleteLeaf(n);
      std::printf("round %d: deleted a figure\n", round);
    } else {
      std::printf("round %d: no-op on label %u\n", round, cur.label(n));
    }
    std::printf("  figures in sections: %zu, pairs: %zu\n",
                figures_in_sections.EnumerateAll().size(),
                section_figure_pairs.EnumerateAll().size());
  }
  return 0;
}
