#include "trees/unranked_tree.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/random.h"

namespace treenum {

UnrankedTree::UnrankedTree(Label root_label) {
  root_ = AllocNode(root_label, kNoNode);
}

NodeId UnrankedTree::AllocNode(Label l, NodeId parent) {
  NodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = Node{};
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[id].label = l;
  nodes_[id].parent = parent;
  nodes_[id].alive = true;
  ++size_;
  return id;
}

void UnrankedTree::Relabel(NodeId n, Label l) {
  assert(IsAlive(n));
  nodes_[n].label = l;
}

NodeId UnrankedTree::InsertFirstChild(NodeId n, Label l) {
  assert(IsAlive(n));
  NodeId id = AllocNode(l, n);
  auto& ch = nodes_[n].children;
  ch.insert(ch.begin(), id);
  return id;
}

NodeId UnrankedTree::InsertRightSibling(NodeId n, Label l) {
  assert(IsAlive(n));
  NodeId p = nodes_[n].parent;
  if (p == kNoNode) {
    throw std::invalid_argument("InsertRightSibling: n must not be the root");
  }
  NodeId id = AllocNode(l, p);
  auto& ch = nodes_[p].children;
  auto it = std::find(ch.begin(), ch.end(), n);
  assert(it != ch.end());
  ch.insert(it + 1, id);
  return id;
}

void UnrankedTree::DeleteLeaf(NodeId n) {
  assert(IsAlive(n));
  if (!IsLeaf(n)) {
    throw std::invalid_argument("DeleteLeaf: node is not a leaf");
  }
  if (n == root_) {
    throw std::invalid_argument("DeleteLeaf: cannot delete the root");
  }
  NodeId p = nodes_[n].parent;
  auto& ch = nodes_[p].children;
  ch.erase(std::find(ch.begin(), ch.end(), n));
  nodes_[n].alive = false;
  free_list_.push_back(n);
  --size_;
}

NodeId UnrankedTree::AppendChild(NodeId n, Label l) {
  assert(IsAlive(n));
  NodeId id = AllocNode(l, n);
  nodes_[n].children.push_back(id);
  return id;
}

std::vector<NodeId> UnrankedTree::PreorderNodes() const {
  std::vector<NodeId> out;
  out.reserve(size_);
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const auto& ch = nodes_[n].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

size_t UnrankedTree::Depth(NodeId n) const {
  size_t d = 0;
  while (nodes_[n].parent != kNoNode) {
    n = nodes_[n].parent;
    ++d;
  }
  return d;
}

size_t UnrankedTree::Height() const {
  size_t h = 0;
  // Iterative DFS carrying depth.
  std::vector<std::pair<NodeId, size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    h = std::max(h, d);
    for (NodeId c : nodes_[n].children) stack.emplace_back(c, d + 1);
  }
  return h;
}

namespace {

void ToStringRec(const UnrankedTree& t, NodeId n, std::string& out) {
  out += '(';
  Label l = t.label(n);
  if (l < 26) {
    out += static_cast<char>('a' + l);
  } else {
    out += 'L';
    out += std::to_string(l);
  }
  for (NodeId c : t.children(n)) {
    out += ' ';
    ToStringRec(t, c, out);
  }
  out += ')';
}

}  // namespace

std::string UnrankedTree::ToString() const {
  std::string out;
  ToStringRec(*this, root_, out);
  return out;
}

UnrankedTree UnrankedTree::Parse(const std::string& sexpr) {
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < sexpr.size() && sexpr[pos] == ' ') ++pos;
  };

  // Recursive-descent parser.
  struct Parser {
    const std::string& s;
    size_t& pos;
    UnrankedTree* tree;
    void Node(NodeId parent) {
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos >= s.size() || s[pos] != '(') {
        throw std::invalid_argument("Parse error: expected '('");
      }
      ++pos;
      if (pos >= s.size() || s[pos] < 'a' || s[pos] > 'z') {
        throw std::invalid_argument("Parse error: expected label letter");
      }
      Label l = static_cast<Label>(s[pos] - 'a');
      ++pos;
      NodeId me;
      if (parent == kNoNode) {
        me = tree->root();
        tree->Relabel(me, l);
      } else {
        me = tree->AppendChild(parent, l);
      }
      while (true) {
        while (pos < s.size() && s[pos] == ' ') ++pos;
        if (pos < s.size() && s[pos] == '(') {
          Node(me);
        } else {
          break;
        }
      }
      if (pos >= s.size() || s[pos] != ')') {
        throw std::invalid_argument("Parse error: expected ')'");
      }
      ++pos;
    }
  };

  UnrankedTree t(0);
  skip_ws();
  Parser p{sexpr, pos, &t};
  p.Node(kNoNode);
  skip_ws();
  if (pos != sexpr.size()) {
    throw std::invalid_argument("Parse error: trailing characters");
  }
  return t;
}

namespace {

bool SubtreeEquals(const UnrankedTree& a, NodeId na, const UnrankedTree& b,
                   NodeId nb) {
  if (a.label(na) != b.label(nb)) return false;
  const auto& ca = a.children(na);
  const auto& cb = b.children(nb);
  if (ca.size() != cb.size()) return false;
  for (size_t i = 0; i < ca.size(); ++i) {
    if (!SubtreeEquals(a, ca[i], b, cb[i])) return false;
  }
  return true;
}

}  // namespace

bool UnrankedTree::operator==(const UnrankedTree& other) const {
  if (size_ != other.size_) return false;
  return SubtreeEquals(*this, root_, other, other.root_);
}

UnrankedTree RandomTree(size_t n, size_t num_labels, Rng& rng) {
  assert(n >= 1);
  UnrankedTree t(static_cast<Label>(rng.Index(num_labels)));
  std::vector<NodeId> ids{t.root()};
  for (size_t i = 1; i < n; ++i) {
    NodeId parent = ids[rng.Index(ids.size())];
    NodeId c = t.AppendChild(parent, static_cast<Label>(rng.Index(num_labels)));
    ids.push_back(c);
  }
  return t;
}

UnrankedTree PathTree(size_t n, size_t num_labels, Rng& rng) {
  assert(n >= 1);
  UnrankedTree t(static_cast<Label>(rng.Index(num_labels)));
  NodeId cur = t.root();
  for (size_t i = 1; i < n; ++i) {
    cur = t.AppendChild(cur, static_cast<Label>(rng.Index(num_labels)));
  }
  return t;
}

UnrankedTree KaryTree(size_t n, size_t k, size_t num_labels, Rng& rng) {
  assert(n >= 1 && k >= 1);
  UnrankedTree t(static_cast<Label>(rng.Index(num_labels)));
  std::vector<NodeId> frontier{t.root()};
  size_t made = 1;
  size_t fi = 0;
  while (made < n) {
    NodeId p = frontier[fi++];
    for (size_t j = 0; j < k && made < n; ++j) {
      frontier.push_back(
          t.AppendChild(p, static_cast<Label>(rng.Index(num_labels))));
      ++made;
    }
  }
  return t;
}

}  // namespace treenum
