// TreeEnumerator — the paper's main result (Theorem 8.1, Corollaries
// 8.2/8.3) as a library facade.
//
// Given an unranked tree T and a query as a nondeterministic unranked
// stepwise TVA A, preprocessing (the constructor) runs in O(|T| * poly(|Q|)):
//   1. translate A to a binary TVA A' over the forest-algebra term alphabet
//      (Lemma 7.4) and homogenize it (Lemma 2.1);
//   2. encode T as a balanced term (the encoding scheme ω);
//   3. build the assignment circuit (Lemma 3.7) and the jump index
//      (Lemma 6.3).
// Afterwards, satisfying assignments can be enumerated with delay
// independent of |T| (Theorem 6.5), and the edit operations of
// Definition 7.1 are supported in logarithmic time (Lemma 7.3), after which
// enumeration can simply be restarted.
//
// This class is a thin view over a private single-query DynamicDocument:
// the document owns the tree encoding and edit/batch dispatch, the
// registered EnumerationPipeline owns all derived state (circuit, index,
// counts). To serve several queries over one shared tree — paying the
// encoding maintenance once per edit instead of once per query — hold a
// DynamicDocument (core/document.h) directly.
#ifndef TREENUM_CORE_TREE_ENUMERATOR_H_
#define TREENUM_CORE_TREE_ENUMERATOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "automata/unranked_tva.h"
#include "core/document.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "falgebra/update.h"
#include "trees/assignment.h"
#include "trees/unranked_tree.h"

namespace treenum {

class TreeEnumerator : public Engine {
 public:
  /// Preprocessing. `mode` selects the indexed (paper) or naive
  /// (depth-dependent-delay baseline) box enumeration.
  TreeEnumerator(UnrankedTree tree, const UnrankedTva& query,
                 BoxEnumMode mode = BoxEnumMode::kIndexed);

  const UnrankedTree& tree() const { return doc_.tree(); }
  const Term& term() const { return doc_.term(); }
  /// Width of the circuit (= trimmed, homogenized |Q'|).
  size_t width() const { return pipe_->width(); }
  size_t size() const override { return doc_.tree().size(); }

  // ---- Enumeration ----

  /// Pull-style cursor over the satisfying assignments (no duplicates).
  class Cursor {
   public:
    /// Produces the next satisfying assignment; false when exhausted.
    bool Next(Assignment* out);
    /// Elementary steps so far (delay accounting).
    size_t steps() const;

   private:
    friend class TreeEnumerator;
    bool emit_empty_ = false;
    std::unique_ptr<AssignmentCursor> inner_;
  };

  Cursor Enumerate() const;
  std::vector<Assignment> EnumerateAll() const override;
  std::unique_ptr<Engine::Cursor> MakeCursor() const override;

  /// O(w) Boolean answer: does the query have at least one satisfying
  /// assignment on the current tree?
  bool HasAnswer() const override { return pipe_->HasAnswer(); }

  // ---- Concurrent snapshot reads (see core/document.h) ----

  /// Pins the most recently committed version. Any thread.
  SnapshotRef CurrentSnapshot() const { return doc_.CurrentSnapshot(); }
  /// All satisfying assignments at a pinned snapshot — runs on reader
  /// threads concurrently with writer edits; old snapshots keep answering
  /// with their pre-edit results (time-travel).
  std::vector<Assignment> EnumerateAt(const SnapshotRef& snap) const {
    return doc_.EnumerateAt(snap, handle_);
  }
  /// HasAnswer at a pinned snapshot. Any thread.
  bool HasAnswerAt(const SnapshotRef& snap) const {
    return doc_.HasAnswerAt(snap, handle_);
  }
  /// Cursor at a pinned snapshot; the cursor co-owns the pin.
  std::unique_ptr<Engine::Cursor> MakeCursorAt(SnapshotRef snap) const {
    return doc_.MakeCursorAt(std::move(snap), handle_);
  }

  // ---- Dynamic counting (optional; see counting/run_count.h) ----

  /// Enables maintenance of accepting-run counts (O(|T| * poly(w)) once;
  /// afterwards each update also refreshes the counts on the changed path).
  void EnableCounting() { pipe_->EnableCounting(); }
  bool counting_enabled() const { return pipe_->counting_enabled(); }
  /// Number of accepting (valuation, run) pairs mod 2^64. Equals the number
  /// of satisfying assignments when the automaton is unambiguous (all
  /// query_library queries are). Requires EnableCounting().
  uint64_t AcceptingRuns() const { return pipe_->AcceptingRuns(); }

  // ---- Updates (Definition 7.1), O(log |T| * poly(|Q|)) each ----

  UpdateStats Relabel(NodeId n, Label l) override {
    return doc_.Relabel(n, l);
  }
  UpdateStats InsertFirstChild(NodeId n, Label l,
                               NodeId* new_node = nullptr) override {
    return doc_.InsertFirstChild(n, l, new_node);
  }
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr) override {
    return doc_.InsertRightSibling(n, l, new_node);
  }
  UpdateStats DeleteLeaf(NodeId n) override { return doc_.DeleteLeaf(n); }

  /// Batched updates: circuit/index/count maintenance is coalesced at the
  /// document and the changed boxes are refreshed once at CommitBatch
  /// (see core/document.h).
  void BeginBatch() override { doc_.BeginBatch(); }
  UpdateStats CommitBatch() override { return doc_.CommitBatch(); }
  bool in_batch() const override { return doc_.in_batch(); }

  // ---- Introspection (tests / benches) ----
  DynamicDocument& document() { return doc_; }
  const DynamicDocument& document() const { return doc_; }
  const EnumerationPipeline& pipeline() const { return *pipe_; }
  const AssignmentCircuit& circuit() const { return pipe_->circuit(); }
  const EnumIndex& index() const { return pipe_->index(); }
  const BinaryTva& binary_tva() const { return pipe_->tva(); }
  const std::vector<uint8_t>& state_kinds() const {
    return pipe_->state_kinds();
  }

 private:
  DynamicDocument doc_;
  DynamicDocument::QueryHandle handle_;
  EnumerationPipeline* pipe_;
};

/// Corollary 8.3 convenience: converts assignments of a first-order query
/// (every assignment has size exactly num_vars, one singleton per variable
/// — e.g. a query passed through MakeFirstOrder) into answer tuples, where
/// tuple[v] is the node bound to variable v.
std::vector<std::vector<NodeId>> AssignmentsToTuples(
    const std::vector<Assignment>& assignments, size_t num_vars);

}  // namespace treenum

#endif  // TREENUM_CORE_TREE_ENUMERATOR_H_
