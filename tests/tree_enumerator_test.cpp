#include "core/tree_enumerator.h"

#include <gtest/gtest.h>

#include "automata/query_library.h"
#include "baseline/naive_engine.h"
#include "baseline/static_engine.h"
#include "test_util.h"

namespace treenum {
namespace {

TEST(TreeEnumerator, SelectLabelStatic) {
  UnrankedTree t = UnrankedTree::Parse("(a (b) (a (b) (b)) (a))");
  TreeEnumerator e(t, QuerySelectLabel(2, 1));
  std::vector<Assignment> res = e.EnumerateAll();
  EXPECT_EQ(res.size(), 3u);  // three b-nodes
  for (const Assignment& a : res) {
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(t.label(a.singletons()[0].node), 1u);
  }
}

TEST(TreeEnumerator, MatchesNaiveOnRandomTrees) {
  Rng rng(151);
  UnrankedTva queries[] = {QuerySelectLabel(2, 1), QuerySelectAll(2),
                           QueryDescendantPairs(2, 0, 1),
                           QueryContainsLabel(2, 1)};
  for (const UnrankedTva& q : queries) {
    for (int trial = 0; trial < 8; ++trial) {
      UnrankedTree t = RandomTree(1 + rng.Index(60), 2, rng);
      TreeEnumerator e(t, q);
      EXPECT_EQ(e.EnumerateAll(), MaterializeAssignments(t, q));
    }
  }
}

TEST(TreeEnumerator, EmptyAssignmentForBooleanQuery) {
  UnrankedTva q = QueryContainsLabel(2, 1);
  TreeEnumerator yes(UnrankedTree::Parse("(a (b))"), q);
  std::vector<Assignment> r1 = yes.EnumerateAll();
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1[0].empty());
  TreeEnumerator no(UnrankedTree::Parse("(a (a))"), q);
  EXPECT_TRUE(no.EnumerateAll().empty());
}

TEST(TreeEnumerator, SecondOrderVariableAnswers) {
  // Any non-empty subset of b-nodes: 2^k - 1 answers.
  UnrankedTree t = UnrankedTree::Parse("(a (b) (b) (b))");
  TreeEnumerator e(t, QueryAnySubsetOfLabel(2, 1));
  EXPECT_EQ(e.EnumerateAll().size(), 7u);
}

TEST(TreeEnumerator, UpdatesTrackNaiveEngine) {
  Rng rng(157);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  for (int trial = 0; trial < 4; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(25), 3, rng);
    TreeEnumerator e(t, q);
    NaiveEngine naive(t, q);
    for (int step = 0; step < 60; ++step) {
      std::vector<NodeId> nodes = naive.tree().PreorderNodes();
      NodeId n = nodes[rng.Index(nodes.size())];
      switch (rng.Index(4)) {
        case 0: {
          Label l = static_cast<Label>(rng.Index(3));
          e.Relabel(n, l);
          naive.Relabel(n, l);
          break;
        }
        case 1: {
          Label l = static_cast<Label>(rng.Index(3));
          e.InsertFirstChild(n, l);
          naive.InsertFirstChild(n, l);
          break;
        }
        case 2: {
          if (n == naive.tree().root()) break;
          Label l = static_cast<Label>(rng.Index(3));
          e.InsertRightSibling(n, l);
          naive.InsertRightSibling(n, l);
          break;
        }
        case 3: {
          if (n == naive.tree().root() || !naive.tree().IsLeaf(n)) break;
          e.DeleteLeaf(n);
          naive.DeleteLeaf(n);
          break;
        }
      }
      ASSERT_EQ(e.EnumerateAll(), naive.results())
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(TreeEnumerator, NaiveModeAgreesWithIndexedMode) {
  Rng rng(163);
  UnrankedTva q = QueryDescendantPairs(2, 0, 1);
  for (int trial = 0; trial < 6; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(50), 2, rng);
    TreeEnumerator indexed(t, q, BoxEnumMode::kIndexed);
    TreeEnumerator naive(t, q, BoxEnumMode::kNaive);
    EXPECT_EQ(indexed.EnumerateAll(), naive.EnumerateAll());
  }
}

TEST(TreeEnumerator, CursorIsRestartable) {
  UnrankedTree t = UnrankedTree::Parse("(a (b) (b))");
  TreeEnumerator e(t, QuerySelectLabel(2, 1));
  for (int round = 0; round < 3; ++round) {
    TreeEnumerator::Cursor c = e.Enumerate();
    Assignment a;
    size_t n = 0;
    while (c.Next(&a)) ++n;
    EXPECT_EQ(n, 2u);
  }
}

TEST(TreeEnumerator, EnumerationAfterUpdateReflectsChange) {
  UnrankedTree t = UnrankedTree::Parse("(a (b))");
  TreeEnumerator e(t, QuerySelectLabel(2, 1));
  EXPECT_EQ(e.EnumerateAll().size(), 1u);
  NodeId u;
  e.InsertFirstChild(e.tree().root(), 1, &u);
  EXPECT_EQ(e.EnumerateAll().size(), 2u);
  e.Relabel(u, 0);
  EXPECT_EQ(e.EnumerateAll().size(), 1u);
  e.DeleteLeaf(u);
  EXPECT_EQ(e.EnumerateAll().size(), 1u);
}

TEST(TreeEnumerator, StaticEngineAgrees) {
  Rng rng(167);
  UnrankedTva q = QuerySelectLabel(2, 1);
  UnrankedTree t = RandomTree(30, 2, rng);
  StaticEngine st(t, q);
  TreeEnumerator dyn(t, q);
  EXPECT_EQ(st.EnumerateAll(), dyn.EnumerateAll());
  // One update each.
  std::vector<NodeId> nodes = st.tree().PreorderNodes();
  NodeId n = nodes[5];
  st.Relabel(n, 1);
  dyn.Relabel(n, 1);
  EXPECT_EQ(st.EnumerateAll(), dyn.EnumerateAll());
}

TEST(TreeEnumerator, UpdateStatsReportRebuilds) {
  // Pathological insert chain must trigger at least one rebalance rebuild.
  TreeEnumerator e(UnrankedTree(0), QuerySelectLabel(2, 1));
  NodeId cur = e.tree().root();
  size_t rebuilds = 0;
  for (int i = 0; i < 300; ++i) {
    NodeId u;
    UpdateStats s = e.InsertFirstChild(cur, 1, &u);
    rebuilds += s.rebuilt_size > 0;
    cur = u;
  }
  EXPECT_GT(rebuilds, 0u);
  EXPECT_EQ(e.EnumerateAll().size(), 300u);
}

TEST(TreeEnumerator, HasAnswerFastPath) {
  Rng rng(179);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  for (int trial = 0; trial < 15; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(40), 3, rng);
    TreeEnumerator e(t, q);
    EXPECT_EQ(e.HasAnswer(), !e.EnumerateAll().empty());
  }
  // Boolean query: HasAnswer reflects the empty-assignment case.
  TreeEnumerator b(UnrankedTree::Parse("(a (b))"), QueryContainsLabel(2, 1));
  EXPECT_TRUE(b.HasAnswer());
}

TEST(TreeEnumerator, IntegratedCountingTracksUpdates) {
  Rng rng(181);
  TreeEnumerator e(RandomTree(60, 3, rng), QueryMarkedAncestor(3, 1, 2));
  e.EnableCounting();
  ASSERT_TRUE(e.counting_enabled());
  EXPECT_EQ(e.AcceptingRuns(), e.EnumerateAll().size());
  for (int step = 0; step < 30; ++step) {
    std::vector<NodeId> nodes = e.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    switch (rng.Index(3)) {
      case 0:
        e.Relabel(n, static_cast<Label>(rng.Index(3)));
        break;
      case 1:
        e.InsertFirstChild(n, static_cast<Label>(rng.Index(3)));
        break;
      default:
        if (n != e.tree().root() && e.tree().IsLeaf(n)) {
          e.DeleteLeaf(n);
        }
        break;
    }
    ASSERT_EQ(e.AcceptingRuns(), e.EnumerateAll().size()) << "step " << step;
  }
}

TEST(TreeEnumerator, DelayIndependentOfTreeSize) {
  // One single answer in trees of very different sizes: the number of
  // elementary enumeration steps must not grow with |T|.
  Rng rng(173);
  auto steps_for = [&](size_t n) {
    UnrankedTree t = PathTree(n, 1, rng);  // all label a
    // relabel the deepest node to b
    NodeId cur = t.root();
    while (!t.IsLeaf(cur)) cur = t.children(cur)[0];
    t.Relabel(cur, 1);
    TreeEnumerator e(t, QuerySelectLabel(2, 1));
    TreeEnumerator::Cursor c = e.Enumerate();
    Assignment a;
    size_t count = 0;
    while (c.Next(&a)) ++count;
    EXPECT_EQ(count, 1u);
    return c.steps();
  };
  size_t small = steps_for(64);
  size_t large = steps_for(4096);
  EXPECT_LE(large, 3 * small + 32);
}

}  // namespace
}  // namespace treenum
