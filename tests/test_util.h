// Shared helpers for the treenum test suite: random automata/tree/term
// generators, the mirror-tree edit scripter, and independent brute-force
// oracles.
#ifndef TREENUM_TESTS_TEST_UTIL_H_
#define TREENUM_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "automata/binary_tva.h"
#include "automata/unranked_tva.h"
#include "core/engine.h"
#include "falgebra/term.h"
#include "trees/assignment.h"
#include "trees/unranked_tree.h"
#include "util/random.h"

namespace treenum {

/// Mirror-tree edit scripter: generates random Definition 7.1 edits that
/// are valid on every engine/document seeded with the same tree (identical
/// edits produce identical NodeIds everywhere), so one script can drive
/// several engines, documents, and oracles in lockstep. Like bench_util's
/// EngineEditDriver, but emitting Edit values instead of applying them.
class ScriptedEditor {
 public:
  ScriptedEditor(UnrankedTree mirror, uint64_t seed, size_t num_labels)
      : mirror_(std::move(mirror)), rng_(seed), num_labels_(num_labels) {
    pool_ = mirror_.PreorderNodes();
  }

  Edit NextEdit() {
    NodeId n = Pick();
    Label l = static_cast<Label>(rng_.Index(num_labels_));
    switch (rng_.Index(4)) {
      case 1: {
        NodeId u = mirror_.InsertFirstChild(n, l);
        pool_.push_back(u);
        return Edit::InsertFirstChild(n, l);
      }
      case 2:
        if (n != mirror_.root()) {
          NodeId u = mirror_.InsertRightSibling(n, l);
          pool_.push_back(u);
          return Edit::InsertRightSibling(n, l);
        }
        break;
      case 3:
        if (n != mirror_.root() && mirror_.IsLeaf(n)) {
          mirror_.DeleteLeaf(n);
          return Edit::DeleteLeaf(n);
        }
        break;
      default:
        break;
    }
    mirror_.Relabel(n, l);
    return Edit::Relabel(n, l);
  }

 private:
  NodeId Pick() {
    while (true) {
      size_t i = rng_.Index(pool_.size());
      NodeId n = pool_[i];
      if (mirror_.IsAlive(n)) return n;
      pool_[i] = pool_.back();  // drop stale (deleted) entries lazily
      pool_.pop_back();
    }
  }

  UnrankedTree mirror_;
  Rng rng_;
  size_t num_labels_;
  std::vector<NodeId> pool_;
};

/// Random nondeterministic unranked stepwise TVA. Densities control how
/// many ι entries / δ triples are created.
inline UnrankedTva RandomUnrankedTva(Rng& rng, size_t states, size_t labels,
                                     size_t vars, size_t num_inits,
                                     size_t num_transitions) {
  UnrankedTva a(states, labels, vars);
  // Guarantee every label has at least one empty-annotation init so random
  // trees are never trivially rejected everywhere.
  for (Label l = 0; l < labels; ++l) {
    a.AddInit(l, 0, static_cast<State>(rng.Index(states)));
  }
  for (size_t i = 0; i < num_inits; ++i) {
    a.AddInit(static_cast<Label>(rng.Index(labels)),
              static_cast<VarMask>(rng.Index(size_t{1} << vars)),
              static_cast<State>(rng.Index(states)));
  }
  for (size_t i = 0; i < num_transitions; ++i) {
    a.AddTransition(static_cast<State>(rng.Index(states)),
                    static_cast<State>(rng.Index(states)),
                    static_cast<State>(rng.Index(states)));
  }
  a.AddFinal(static_cast<State>(rng.Index(states)));
  if (states > 1) a.AddFinal(static_cast<State>(rng.Index(states)));
  return a;
}

/// Random nondeterministic binary TVA over an ⊕HH-only term alphabet
/// (leaves a_t for `labels` base labels, one internal operator). Used to
/// exercise the circuit/enumeration layers directly on arbitrary binary
/// trees.
inline BinaryTva RandomBinaryTvaOnHH(Rng& rng, size_t states, size_t labels,
                                     size_t vars, size_t num_inits,
                                     size_t num_transitions) {
  TermAlphabet alphabet(labels);
  BinaryTva a(states, alphabet.num_labels(), vars);
  for (Label l = 0; l < labels; ++l) {
    a.AddLeafInit(alphabet.TreeLeaf(l), 0,
                  static_cast<State>(rng.Index(states)));
  }
  for (size_t i = 0; i < num_inits; ++i) {
    a.AddLeafInit(alphabet.TreeLeaf(static_cast<Label>(rng.Index(labels))),
                  static_cast<VarMask>(rng.Index(size_t{1} << vars)),
                  static_cast<State>(rng.Index(states)));
  }
  Label op = alphabet.Op(TermOp::kConcatHH);
  for (size_t i = 0; i < num_transitions; ++i) {
    a.AddTransition(op, static_cast<State>(rng.Index(states)),
                    static_cast<State>(rng.Index(states)),
                    static_cast<State>(rng.Index(states)));
  }
  a.AddFinal(static_cast<State>(rng.Index(states)));
  if (states > 1) a.AddFinal(static_cast<State>(rng.Index(states)));
  return a;
}

/// Random binary ⊕HH term with `leaves` leaf symbols over `labels` base
/// labels; leaf tree_node ids are 0..leaves-1.
inline TermNodeId BuildRandomHHTerm(Term& term, Rng& rng, size_t leaves,
                                    size_t labels) {
  const TermAlphabet& alphabet = term.alphabet();
  std::vector<TermNodeId> nodes;
  for (size_t i = 0; i < leaves; ++i) {
    nodes.push_back(term.NewLeaf(
        alphabet.TreeLeaf(static_cast<Label>(rng.Index(labels))),
        static_cast<NodeId>(i)));
  }
  while (nodes.size() > 1) {
    size_t i = rng.Index(nodes.size() - 1);
    TermNodeId combined =
        term.NewNode(TermOp::kConcatHH, nodes[i], nodes[i + 1]);
    nodes[i] = combined;
    nodes.erase(nodes.begin() + i + 1);
  }
  return nodes[0];
}

/// Reachable states of a binary TVA at a term node under a fixed valuation
/// of the leaf symbols (indexed by leaf tree_node id).
inline std::vector<bool> TermReachableStates(
    const BinaryTva& a, const Term& term, TermNodeId id,
    const std::vector<VarMask>& valuation) {
  const TermNode& t = term.node(id);
  std::vector<bool> out(a.num_states(), false);
  if (t.left == kNoTerm) {
    VarMask mask = t.tree_node < valuation.size() ? valuation[t.tree_node] : 0;
    for (const auto& [vars, q] : a.LeafInitsFor(t.label)) {
      if (vars == mask) out[q] = true;
    }
    return out;
  }
  std::vector<bool> l = TermReachableStates(a, term, t.left, valuation);
  std::vector<bool> r = TermReachableStates(a, term, t.right, valuation);
  for (State q1 = 0; q1 < a.num_states(); ++q1) {
    if (!l[q1]) continue;
    for (State q2 = 0; q2 < a.num_states(); ++q2) {
      if (!r[q2]) continue;
      for (State q : a.TransitionsFor(t.label, q1, q2)) out[q] = true;
    }
  }
  return out;
}

/// Brute-force satisfying assignments of a binary TVA on a term, trying all
/// valuations of the leaf symbols (tiny instances only). Returns sorted.
inline std::vector<Assignment> TermBruteForceAssignments(const BinaryTva& a,
                                                         const Term& term) {
  // Collect leaves.
  std::vector<std::pair<TermNodeId, NodeId>> leaves;
  auto walk = [&](auto&& self, TermNodeId id) -> void {
    const TermNode& t = term.node(id);
    if (t.left == kNoTerm) {
      leaves.emplace_back(id, t.tree_node);
      return;
    }
    self(self, t.left);
    self(self, t.right);
  };
  walk(walk, term.root());

  size_t vars = a.num_vars();
  size_t bits = leaves.size() * vars;
  std::vector<Assignment> out;
  NodeId max_id = 0;
  for (auto& [tid, nid] : leaves) max_id = std::max(max_id, nid);
  for (uint64_t code = 0; code < (uint64_t{1} << bits); ++code) {
    std::vector<VarMask> nu(max_id + 1, 0);
    uint64_t c = code;
    for (auto& [tid, nid] : leaves) {
      nu[nid] = static_cast<VarMask>(c & ((VarMask{1} << vars) - 1));
      c >>= vars;
    }
    std::vector<bool> root = TermReachableStates(a, term, term.root(), nu);
    bool ok = false;
    for (State q : a.final_states()) ok = ok || root[q];
    if (ok) {
      Assignment as;
      for (auto& [tid, nid] : leaves) {
        for (VarId v = 0; v < vars; ++v) {
          if (nu[nid] & (VarMask{1} << v)) as.Add(Singleton{v, nid});
        }
      }
      as.Normalize();
      out.push_back(std::move(as));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Random edit script driver: applies `steps` random edits to a tree-like
/// interface via callbacks. (Used by update/pipeline tests.)
enum class EditKind { kRelabel, kInsertFirst, kInsertRight, kDeleteLeaf };

}  // namespace treenum

#endif  // TREENUM_TESTS_TEST_UTIL_H_
