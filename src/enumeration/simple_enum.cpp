#include "enumeration/simple_enum.h"

#include <cassert>

namespace treenum {

SimpleEnumCursor::SimpleEnumCursor(const AssignmentCircuit* circuit,
                                   TermNodeId box, uint32_t gate)
    : circuit_(circuit) {
  auto f = std::make_unique<Frame>();
  f->box = box;
  f->gate = gate;
  stack_.push_back(std::move(f));
}

bool SimpleEnumCursor::Next(EnumOutput* out) {
  const Term& term = circuit_->term();
  while (!stack_.empty()) {
    Frame& f = *stack_.back();
    const Box b = circuit_->box(f.box);
    uint32_t u = f.gate;

    if (f.var_pos < b.var_inputs(u).size()) {
      uint32_t vi = b.var_inputs(u)[f.var_pos++];
      out->contributions.clear();
      out->contributions.emplace_back(b.var_mask(vi),
                                      term.node(f.box).tree_node);
      out->provenance.clear();
      return true;
    }

    if (f.cross_pos < b.cross_inputs(u).size()) {
      uint32_t ci = b.cross_inputs(u)[f.cross_pos];
      const CrossGate& cg = b.cross_gate(ci);
      TermNodeId lchild = term.node(f.box).left;
      TermNodeId rchild = term.node(f.box).right;
      const Box lb = circuit_->box(lchild);
      const Box rb = circuit_->box(rchild);

      if (!f.left && !f.have_left) {
        f.left = std::make_unique<SimpleEnumCursor>(
            circuit_, lchild,
            static_cast<uint32_t>(lb.union_idx(cg.left_state)));
      }
      if (!f.have_left) {
        if (!f.left->Next(&f.left_out)) {
          f.left.reset();
          f.right.reset();
          ++f.cross_pos;
          continue;
        }
        f.have_left = true;
        f.right = std::make_unique<SimpleEnumCursor>(
            circuit_, rchild,
            static_cast<uint32_t>(rb.union_idx(cg.right_state)));
      }
      EnumOutput r;
      if (f.right->Next(&r)) {
        out->contributions = f.left_out.contributions;
        out->contributions.insert(out->contributions.end(),
                                  r.contributions.begin(),
                                  r.contributions.end());
        out->provenance.clear();
        return true;
      }
      f.have_left = false;
      continue;
    }

    if (f.child_pos < b.child_union_inputs(u).size()) {
      const auto& [side, state] = b.child_union_inputs(u)[f.child_pos++];
      TermNodeId child =
          side == 0 ? term.node(f.box).left : term.node(f.box).right;
      const Box cb = circuit_->box(child);
      auto nf = std::make_unique<Frame>();
      nf->box = child;
      nf->gate = static_cast<uint32_t>(cb.union_idx(state));
      stack_.push_back(std::move(nf));
      continue;
    }

    stack_.pop_back();
  }
  return false;
}

std::vector<Assignment> SimpleEnumerateAll(
    const AssignmentCircuit& circuit, TermNodeId box,
    const std::vector<uint32_t>& gates) {
  std::vector<Assignment> out;
  for (uint32_t g : gates) {
    SimpleEnumCursor cur(&circuit, box, g);
    EnumOutput o;
    while (cur.Next(&o)) out.push_back(o.ToAssignment());
  }
  return out;
}

}  // namespace treenum
