#include "core/document.h"

#include <algorithm>
#include <cassert>

#include "util/check.h"

namespace treenum {

DynamicDocument::DynamicDocument(UnrankedTree tree, size_t num_labels,
                                 QueryCache* cache)
    : tree_enc_(std::make_unique<DynamicEncoding>(std::move(tree), num_labels)),
      term_(&tree_enc_->term()),
      snapshots_(std::make_unique<TermSnapshots>(&mutable_term())),
      cache_(cache != nullptr ? cache : &QueryCache::Global()) {
  snapshots_->Publish();
}

DynamicDocument::DynamicDocument(const Word& w, size_t num_labels,
                                 QueryCache* cache)
    : word_enc_(std::make_unique<WordEncoding>(w, num_labels)),
      term_(&word_enc_->term()),
      snapshots_(std::make_unique<TermSnapshots>(&mutable_term())),
      cache_(cache != nullptr ? cache : &QueryCache::Global()) {
  snapshots_->Publish();
}

const UnrankedTree& DynamicDocument::tree() const {
  TREENUM_CHECK(tree_enc_ != nullptr, "tree() requires a tree document");
  return tree_enc_->tree();
}

const DynamicEncoding& DynamicDocument::tree_encoding() const {
  TREENUM_CHECK(tree_enc_ != nullptr,
                "tree_encoding() requires a tree document");
  return *tree_enc_;
}

const WordEncoding& DynamicDocument::word_encoding() const {
  TREENUM_CHECK(word_enc_ != nullptr,
                "word_encoding() requires a word document");
  return *word_enc_;
}

size_t DynamicDocument::size() const {
  return tree_enc_ ? tree_enc_->tree().size() : word_enc_->size();
}

DynamicDocument::QueryHandle DynamicDocument::Register(const UnrankedTva& query,
                                                   BoxEnumMode mode) {
  TREENUM_CHECK(tree_enc_ != nullptr,
                "tree queries require a tree document");
  TREENUM_CHECK(!in_batch_, "cannot register a query mid-batch");
  // Translation always builds TermAlphabet(query.num_labels()), so the
  // alphabet check needs no translation — which lets a cache hit skip
  // the whole compile pipeline.
  TREENUM_CHECK(query.num_labels() == term_->alphabet().num_base_labels(),
                "query alphabet must match the document alphabet");
  return AdmitShared(cache_->CompileTree(query), mode);
}

DynamicDocument::QueryHandle DynamicDocument::Register(const Wva& query,
                                                   BoxEnumMode mode) {
  TREENUM_CHECK(word_enc_ != nullptr,
                "word queries require a word document");
  TREENUM_CHECK(!in_batch_, "cannot register a query mid-batch");
  TREENUM_CHECK(query.num_labels() == term_->alphabet().num_base_labels(),
                "query alphabet must match the document alphabet");
  return AdmitShared(cache_->CompileWord(query), mode);
}

DynamicDocument::QueryHandle DynamicDocument::RegisterPrepared(
    HomogenizedTva homog, BoxEnumMode mode) {
  TREENUM_CHECK(!in_batch_, "cannot register a query mid-batch");
  return AdmitShared(cache_->Intern(std::move(homog)), mode);
}

DynamicDocument::QueryHandle DynamicDocument::AdmitShared(
    std::shared_ptr<const HomogenizedTva> homog, BoxEnumMode mode) {
  TREENUM_CHECK(!in_batch_, "cannot register a query mid-batch");
  uint64_t fp = FingerprintHomogenizedTva(*homog);

  size_t entry_idx = kNoEntry;
  auto range = by_fingerprint_.equal_range(fp);
  for (auto it = range.first; it != range.second; ++it) {
    const QueryEntry& e = entries_[it->second];
    // Plans served by this document's cache dedupe by pointer identity;
    // the structural fallback covers plans from a different cache.
    if (e.mode == mode &&
        (e.homog == homog || HomogenizedTvaEqual(*e.homog, *homog))) {
      entry_idx = it->second;
      break;
    }
  }

  if (entry_idx == kNoEntry) {
    // Genuinely new query: a registry entry (recycling a reclaimed slot
    // when one is free) + pipeline over the current term. The canonical
    // automaton stays owned by the cache; entry and pipeline share the
    // refcounted handle, so document retention pins the cache entry.
    if (!entry_free_.empty()) {
      entry_idx = entry_free_.back();
      entry_free_.pop_back();
      entries_[entry_idx] = QueryEntry{};
    } else {
      entry_idx = entries_.size();
      entries_.emplace_back();
    }
    QueryEntry& entry = entries_[entry_idx];
    entry.fingerprint = fp;
    entry.homog = std::move(homog);
    entry.mode = mode;
    entry.pipeline =
        std::make_unique<EnumerationPipeline>(term_, entry.homog, mode);
    by_fingerprint_.emplace(fp, entry_idx);
    built_entries_.push_back(entry_idx);
  } else {
    QueryEntry& e = entries_[entry_idx];
    if (e.pipeline == nullptr) {
      // Evicted entry: rebuild over the current term from the retained
      // canonical automaton (no re-translation / re-homogenization).
      e.pipeline =
          std::make_unique<EnumerationPipeline>(term_, e.homog, e.mode);
      built_entries_.push_back(entry_idx);
      --retained_evicted_;
      ++rebuilds_;
    } else if (e.refcount == 0) {
      ++readmissions_;  // warm hit: the pipeline never went cold
    } else {
      ++shared_hits_;  // active hit: another registration shares it
    }
  }

  QueryEntry& e = entries_[entry_idx];
  ++e.refcount;
  e.last_use = ++use_clock_;
  ++num_live_;
  uint32_t slot;
  if (!handle_free_.empty()) {
    slot = handle_free_.back();
    handle_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(handle_entry_.size());
    handle_entry_.push_back(kNoEntry);
    handle_gen_.push_back(0);
  }
  handle_entry_[slot] = entry_idx;
  EnforceCap();
  return MakeHandle(slot, handle_gen_[slot]);
}

void DynamicDocument::Unregister(QueryHandle handle) {
  TREENUM_CHECK(!in_batch_, "cannot unregister a query mid-batch");
  TREENUM_CHECK(IsRegistered(handle), "unknown or already-unregistered query");
  const uint32_t slot = HandleSlot(handle);
  QueryEntry& e = entries_[handle_entry_[slot]];
  handle_entry_[slot] = kNoEntry;
  ++handle_gen_[slot];  // invalidate any copies of this handle
  handle_free_.push_back(slot);
  --e.refcount;
  --num_live_;
  if (e.refcount == 0) {
    e.last_use = ++use_clock_;
    EnforceCap();
  }
}

bool DynamicDocument::IsRegistered(QueryHandle handle) const {
  const uint32_t slot = HandleSlot(handle);
  return slot < handle_entry_.size() &&
         handle_gen_[slot] == HandleGen(handle) &&
         handle_entry_[slot] != kNoEntry;
}

EnumerationPipeline& DynamicDocument::pipeline(QueryHandle handle) {
  TREENUM_CHECK(IsRegistered(handle), "unknown or already-unregistered query");
  return *entries_[handle_entry_[HandleSlot(handle)]].pipeline;
}

const EnumerationPipeline& DynamicDocument::pipeline(
    QueryHandle handle) const {
  TREENUM_CHECK(IsRegistered(handle), "unknown or already-unregistered query");
  return *entries_[handle_entry_[HandleSlot(handle)]].pipeline;
}

// ---- Concurrent snapshot reads ----

bool DynamicDocument::ReaderView::HasAnswerAt(const SnapshotRef& snap) const {
  TREENUM_CHECK(snap && snap.epoch() >= pipeline_->min_snapshot_epoch(),
                "snapshot predates this query's pipeline");
  return pipeline_->HasAnswerAt(snap.root());
}

std::vector<Assignment> DynamicDocument::ReaderView::EnumerateAt(
    const SnapshotRef& snap) const {
  TREENUM_CHECK(snap && snap.epoch() >= pipeline_->min_snapshot_epoch(),
                "snapshot predates this query's pipeline");
  return pipeline_->EnumerateAllAt(snap.root());
}

std::unique_ptr<Engine::Cursor> DynamicDocument::ReaderView::MakeCursorAt(
    SnapshotRef snap) const {
  TREENUM_CHECK(snap && snap.epoch() >= pipeline_->min_snapshot_epoch(),
                "snapshot predates this query's pipeline");
  class PinnedCursor : public Engine::Cursor {
   public:
    PinnedCursor(SnapshotRef s, std::unique_ptr<Engine::Cursor> inner)
        : snap_(std::move(s)), inner_(std::move(inner)) {}
    bool Next(Assignment* out) override { return inner_->Next(out); }

   private:
    SnapshotRef snap_;
    std::unique_ptr<Engine::Cursor> inner_;
  };
  std::unique_ptr<Engine::Cursor> inner =
      pipeline_->MakeEngineCursorAt(snap.root());
  return std::make_unique<PinnedCursor>(std::move(snap), std::move(inner));
}

bool DynamicDocument::HasAnswerAt(const SnapshotRef& snap,
                                  QueryHandle handle) const {
  const EnumerationPipeline& p = pipeline(handle);
  TREENUM_CHECK(snap && snap.epoch() >= p.min_snapshot_epoch(),
                "snapshot predates this query's pipeline");
  return p.HasAnswerAt(snap.root());
}

std::vector<Assignment> DynamicDocument::EnumerateAt(const SnapshotRef& snap,
                                                     QueryHandle handle) const {
  const EnumerationPipeline& p = pipeline(handle);
  TREENUM_CHECK(snap && snap.epoch() >= p.min_snapshot_epoch(),
                "snapshot predates this query's pipeline");
  return p.EnumerateAllAt(snap.root());
}

std::unique_ptr<Engine::Cursor> DynamicDocument::MakeCursorAt(
    SnapshotRef snap, QueryHandle handle) const {
  const EnumerationPipeline& p = pipeline(handle);
  TREENUM_CHECK(snap && snap.epoch() >= p.min_snapshot_epoch(),
                "snapshot predates this query's pipeline");
  // The cursor co-owns the pin: the snapshot version stays frozen until
  // the cursor is destroyed, even if the caller's ref is released first.
  class PinnedCursor : public Engine::Cursor {
   public:
    PinnedCursor(SnapshotRef s, std::unique_ptr<Engine::Cursor> inner)
        : snap_(std::move(s)), inner_(std::move(inner)) {}
    bool Next(Assignment* out) override { return inner_->Next(out); }

   private:
    SnapshotRef snap_;
    std::unique_ptr<Engine::Cursor> inner_;
  };
  std::unique_ptr<Engine::Cursor> inner = p.MakeEngineCursorAt(snap.root());
  return std::make_unique<PinnedCursor>(std::move(snap), std::move(inner));
}

void DynamicDocument::set_pipeline_cap(size_t cap) {
  TREENUM_CHECK(!in_batch_, "cannot change the pipeline cap mid-batch");
  pipeline_cap_ = cap;
  EnforceCap();
}

void DynamicDocument::EnforceCap() {
  while (built_entries_.size() > pipeline_cap_) {
    // Cost-aware victim selection (see set_pipeline_cap): evict the warm
    // pipeline minimizing keep value = accumulated refresh cost /
    // staleness. boxes_refreshed proxies how expensive this pipeline has
    // been to keep current (and thus what a rebuild-after-eviction would
    // cost); staleness is measured in registry clock ticks since its last
    // use. Ties (e.g. all costs equal) fall back to LRU.
    size_t victim = kNoEntry;
    double best_keep = 0.0;
    for (size_t idx : built_entries_) {
      const QueryEntry& e = entries_[idx];
      if (e.refcount != 0) continue;
      double staleness = static_cast<double>(use_clock_ - e.last_use);
      double keep =
          (static_cast<double>(e.boxes_refreshed) + 1.0) / (staleness + 1.0);
      if (victim == kNoEntry || keep < best_keep ||
          (keep == best_keep && e.last_use < entries_[victim].last_use)) {
        best_keep = keep;
        victim = idx;
      }
    }
    if (victim == kNoEntry) break;  // every built pipeline is pinned
    entries_[victim].pipeline.reset();
    built_entries_.erase(
        std::find(built_entries_.begin(), built_entries_.end(), victim));
    ++retained_evicted_;
    ++evictions_;
  }
  // Second-level cap: evicted entries keep only their canonical automaton,
  // but even that must not grow with every query ever seen. Reclaim the
  // LRU evicted entries outright — fingerprint forgotten, slot recycled.
  while (retained_evicted_ > evicted_retention_cap_) {
    size_t victim = kNoEntry;
    uint64_t oldest = ~uint64_t{0};
    for (size_t i = 0; i < entries_.size(); ++i) {
      const QueryEntry& e = entries_[i];
      if (e.pipeline == nullptr && e.homog != nullptr && e.last_use < oldest) {
        oldest = e.last_use;
        victim = i;
      }
    }
    if (victim == kNoEntry) break;  // counter out of sync; be safe
    auto range = by_fingerprint_.equal_range(entries_[victim].fingerprint);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == victim) {
        by_fingerprint_.erase(it);
        break;
      }
    }
    entries_[victim].homog.reset();  // marks the slot free
    entry_free_.push_back(victim);
    --retained_evicted_;
    ++reclaimed_;
  }
}

void DynamicDocument::set_evicted_retention_cap(size_t cap) {
  TREENUM_CHECK(!in_batch_, "cannot change the retention cap mid-batch");
  evicted_retention_cap_ = cap;
  EnforceCap();
}

DocumentStats DynamicDocument::stats() const {
  DocumentStats s;
  s.live_queries = num_live_;
  s.live_pipelines = built_entries_.size();
  s.shared_hits = shared_hits_;
  s.readmissions = readmissions_;
  s.rebuilds = rebuilds_;
  s.evictions = evictions_;
  s.handle_slots = handle_entry_.size();
  s.registry_entries = entries_.size() - entry_free_.size();
  s.reclaimed_entries = reclaimed_;
  for (const QueryEntry& e : entries_) {
    if (e.homog == nullptr) continue;  // reclaimed slot awaiting reuse
    if (e.pipeline != nullptr) {
      if (e.refcount > 0) {
        ++s.active_pipelines;
      } else {
        ++s.warm_pipelines;
      }
    } else {
      ++s.evicted_entries;
    }
    DocumentStats::PipelineStats ps;
    ps.fingerprint = e.fingerprint;
    ps.queries = e.refcount;
    ps.width = e.homog->tva.num_states();
    ps.boxes_refreshed = e.boxes_refreshed;
    ps.built = e.pipeline != nullptr;
    s.pipelines.push_back(ps);
  }
  return s;
}

template <typename Fn>
void DynamicDocument::FanOut(const Fn& fn) {
  if (pool_ != nullptr && pool_->size() > 1 && built_entries_.size() > 1) {
    fan_scratch_.clear();
    for (size_t idx : built_entries_) {
      fan_scratch_.push_back(entries_[idx].pipeline.get());
    }
    pool_->ParallelFor(fan_scratch_.size(),
                       [&](size_t i) { fn(*fan_scratch_[i]); });
  } else {
    for (size_t idx : built_entries_) fn(*entries_[idx].pipeline);
  }
}

void DynamicDocument::SetPipelinesPending(bool pending) {
  for (size_t idx : built_entries_) {
    entries_[idx].pipeline->set_update_pending(pending);
  }
}

void DynamicDocument::ChargeRefresh(size_t boxes) {
  for (size_t idx : built_entries_) {
    entries_[idx].boxes_refreshed += boxes;
  }
}

void DynamicDocument::PreEdit() {
  if (in_batch_) return;  // drained once, at BeginBatch
  drained_freed_.clear();
  snapshots_->DrainRetired(&drained_freed_);
  if (drained_freed_.empty()) return;
  // Inline, not FanOut: releasing spans is a few free-list pushes per box,
  // far below fork-join overhead.
  for (size_t idx : built_entries_) {
    entries_[idx].pipeline->ReleaseBoxes(drained_freed_);
  }
}

UpdateStats DynamicDocument::Dispatch(const UpdateResult& result) {
  UpdateStats stats;
  stats.edits_applied = 1;
  stats.rebuilt_size = result.rebuilt_size;
  if (in_batch_) {
    batch_freed_.insert(batch_freed_.end(), result.freed.begin(),
                        result.freed.end());
    batch_changed_.insert(batch_changed_.end(),
                          result.changed_bottom_up.begin(),
                          result.changed_bottom_up.end());
    return stats;  // every pipeline refreshed at CommitBatch
  }
  FanOut([&result](EnumerationPipeline& p) { p.Apply(result); });
  stats.boxes_recomputed =
      result.changed_bottom_up.size() * built_entries_.size();
  ChargeRefresh(result.changed_bottom_up.size());
  // Every box of the new version is current — publish it for readers.
  snapshots_->Publish();
  return stats;
}

// ---- Tree edits ----

UpdateStats DynamicDocument::Relabel(NodeId n, Label l) {
  if (word_enc_) return Replace(word_enc_->PositionOf(n), l);
  PreEdit();
  return Dispatch(tree_enc_->Relabel(n, l));
}

UpdateStats DynamicDocument::InsertFirstChild(NodeId n, Label l,
                                              NodeId* new_node) {
  if (word_enc_) return WordInsertAt(word_enc_->PositionOf(n), l, new_node);
  PreEdit();
  return Dispatch(tree_enc_->InsertFirstChild(n, l, new_node));
}

UpdateStats DynamicDocument::InsertRightSibling(NodeId n, Label l,
                                                NodeId* new_node) {
  if (word_enc_) {
    return WordInsertAt(word_enc_->PositionOf(n) + 1, l, new_node);
  }
  PreEdit();
  return Dispatch(tree_enc_->InsertRightSibling(n, l, new_node));
}

UpdateStats DynamicDocument::DeleteLeaf(NodeId n) {
  if (word_enc_) return Erase(word_enc_->PositionOf(n));
  PreEdit();
  return Dispatch(tree_enc_->DeleteLeaf(n));
}

// ---- Word edits ----

UpdateStats DynamicDocument::Replace(size_t pos, Label l) {
  TREENUM_CHECK(word_enc_ != nullptr, "Replace requires a word document");
  PreEdit();
  return Dispatch(word_enc_->Replace(pos, l));
}

UpdateStats DynamicDocument::Insert(size_t pos, Label l) {
  TREENUM_CHECK(word_enc_ != nullptr, "Insert requires a word document");
  PreEdit();
  return Dispatch(word_enc_->Insert(pos, l));
}

UpdateStats DynamicDocument::Erase(size_t pos) {
  TREENUM_CHECK(word_enc_ != nullptr, "Erase requires a word document");
  PreEdit();
  return Dispatch(word_enc_->Erase(pos));
}

UpdateStats DynamicDocument::DispatchTransaction(const UpdateResult& result) {
  UpdateStats stats;
  stats.edits_applied = 1;
  stats.rebuilt_size = result.rebuilt_size;
  if (in_batch_) {
    batch_freed_.insert(batch_freed_.end(), result.freed.begin(),
                        result.freed.end());
    batch_changed_.insert(batch_changed_.end(),
                          result.changed_bottom_up.begin(),
                          result.changed_bottom_up.end());
    return stats;  // coalesced with the rest of the batch at CommitBatch
  }
  // A transaction's freed list may still hold ids pinned by live snapshots;
  // only the dead ones release their spans now (the rest drain at PreEdit
  // once the last pinning snapshot retires).
  dead_freed_.clear();
  for (TermNodeId id : result.freed) {
    if (!term_->IsAlive(id)) dead_freed_.push_back(id);
  }
  FanOut([this, &result](EnumerationPipeline& p) {
    p.ApplyCoalesced(dead_freed_, result.changed_bottom_up);
  });
  stats.boxes_recomputed =
      result.changed_bottom_up.size() * built_entries_.size();
  ChargeRefresh(result.changed_bottom_up.size());
  snapshots_->Publish();  // one epoch per transaction
  return stats;
}

// ---- Tree structural transactions ----

UpdateStats DynamicDocument::SubtreeMove(NodeId v, NodeId dst,
                                         AttachWhere where) {
  TREENUM_CHECK(tree_enc_ != nullptr, "SubtreeMove requires a tree document");
  PreEdit();
  return DispatchTransaction(
      tree_enc_->SubtreeMove(v, dst, where == AttachWhere::kFirstChild));
}

UpdateStats DynamicDocument::SubtreeDelete(NodeId v) {
  TREENUM_CHECK(tree_enc_ != nullptr, "SubtreeDelete requires a tree document");
  PreEdit();
  return DispatchTransaction(tree_enc_->SubtreeDelete(v));
}

UpdateStats DynamicDocument::SubtreeExtract(NodeId v,
                                            UnrankedTree* extracted) {
  TREENUM_CHECK(tree_enc_ != nullptr,
                "SubtreeExtract requires a tree document");
  PreEdit();
  return DispatchTransaction(tree_enc_->SubtreeExtract(v, extracted));
}

UpdateStats DynamicDocument::GraftSubtree(const UnrankedTree& src,
                                          NodeId src_root, NodeId dst,
                                          AttachWhere where,
                                          NodeId* new_root) {
  TREENUM_CHECK(tree_enc_ != nullptr, "GraftSubtree requires a tree document");
  PreEdit();
  return DispatchTransaction(tree_enc_->GraftSubtree(
      src, src_root, dst, where == AttachWhere::kFirstChild, new_root));
}

// ---- Word structural transactions ----

UpdateStats DynamicDocument::MoveRange(size_t begin, size_t end, size_t dst) {
  TREENUM_CHECK(word_enc_ != nullptr, "MoveRange requires a word document");
  PreEdit();
  return DispatchTransaction(word_enc_->MoveRange(begin, end, dst));
}

UpdateStats DynamicDocument::EraseRange(size_t begin, size_t end) {
  TREENUM_CHECK(word_enc_ != nullptr, "EraseRange requires a word document");
  PreEdit();
  return DispatchTransaction(word_enc_->EraseRange(begin, end));
}

UpdateStats DynamicDocument::ExtractRange(size_t begin, size_t end,
                                          Word* extracted) {
  TREENUM_CHECK(word_enc_ != nullptr, "ExtractRange requires a word document");
  PreEdit();
  return DispatchTransaction(word_enc_->ExtractRange(begin, end, extracted));
}

UpdateStats DynamicDocument::Concat(const Word& w) {
  TREENUM_CHECK(word_enc_ != nullptr, "Concat requires a word document");
  PreEdit();
  return DispatchTransaction(word_enc_->Concat(w));
}

UpdateStats DynamicDocument::WordInsertAt(size_t pos, Label l,
                                          NodeId* new_node) {
  PreEdit();
  UpdateStats stats = Dispatch(word_enc_->Insert(pos, l));
  if (new_node) *new_node = word_enc_->PositionId(pos);
  return stats;
}

// ---- Batched updates ----

void DynamicDocument::BeginBatch() {
  assert(!in_batch_ && "nested batches are not supported");
  PreEdit();  // drain retired snapshots once for the whole transaction
  in_batch_ = true;
  SetPipelinesPending(true);
}

UpdateStats DynamicDocument::CommitBatch() {
  assert(in_batch_);
  in_batch_ = false;

  UpdateStats stats;

  // Free each slot that is dead *now*; a slot freed mid-batch and then
  // re-allocated by a later edit is alive and will be rebuilt below.
  std::sort(batch_freed_.begin(), batch_freed_.end());
  batch_freed_.erase(std::unique(batch_freed_.begin(), batch_freed_.end()),
                     batch_freed_.end());
  dead_freed_.clear();
  for (TermNodeId id : batch_freed_) {
    if (!term_->IsAlive(id)) dead_freed_.push_back(id);
  }

  // Coalesce: every alive changed node once, deepest first. Each edit's
  // changed_bottom_up conservatively includes the full path to the root,
  // so the union covers every node whose box inputs may have changed;
  // depth order guarantees children are rebuilt before their parents.
  // Computed once here — it depends only on the shared term, not on any
  // query — and consumed by every pipeline.
  std::sort(batch_changed_.begin(), batch_changed_.end());
  batch_changed_.erase(
      std::unique(batch_changed_.begin(), batch_changed_.end()),
      batch_changed_.end());
  order_scratch_.clear();
  order_scratch_.reserve(batch_changed_.size());
  for (TermNodeId id : batch_changed_) {
    if (!term_->IsAlive(id)) continue;
    uint32_t depth = 0;
    for (TermNodeId p = term_->node(id).parent; p != kNoTerm;
         p = term_->node(p).parent) {
      ++depth;
    }
    order_scratch_.emplace_back(depth, id);
  }
  std::sort(order_scratch_.begin(), order_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  ordered_changed_.clear();
  ordered_changed_.reserve(order_scratch_.size());
  for (const auto& [depth, id] : order_scratch_) {
    (void)depth;
    ordered_changed_.push_back(id);
  }

  FanOut([this](EnumerationPipeline& p) {
    p.ApplyCoalesced(dead_freed_, ordered_changed_);
  });
  stats.boxes_recomputed = ordered_changed_.size() * built_entries_.size();
  ChargeRefresh(ordered_changed_.size());

  batch_freed_.clear();
  batch_changed_.clear();
  SetPipelinesPending(false);
  // One publish per transaction: readers never observe intermediate
  // versions of a batch.
  snapshots_->Publish();
  return stats;
}

UpdateStats DynamicDocument::ApplyEdit(const Edit& e, NodeId* new_node) {
  switch (e.kind) {
    case Edit::Kind::kRelabel:
      return Relabel(e.node, e.label);
    case Edit::Kind::kInsertFirstChild:
      return InsertFirstChild(e.node, e.label, new_node);
    case Edit::Kind::kInsertRightSibling:
      return InsertRightSibling(e.node, e.label, new_node);
    case Edit::Kind::kDeleteLeaf:
      return DeleteLeaf(e.node);
  }
  return UpdateStats{};
}

UpdateStats DynamicDocument::ApplyEdits(const std::vector<Edit>& edits) {
  UpdateStats stats;
  if (in_batch_) {
    for (const Edit& e : edits) stats += ApplyEdit(e);
    return stats;
  }
  BeginBatch();
  for (const Edit& e : edits) stats += ApplyEdit(e);
  stats += CommitBatch();
  return stats;
}

}  // namespace treenum
