// Counting global operator new/delete replacements — the measuring half of
// util/alloc_gauge.h. Link this translation unit (the `treenum_alloc_gauge`
// object library) ONLY into binaries that assert or report allocation
// counts; it slows every allocation slightly, so latency-sensitive binaries
// must not include it.
//
// All forms funnel into malloc/free, so new/delete stay a matched pair for
// the sanitizers, which intercept the underlying malloc. The recording
// calls land on relaxed atomics (util/alloc_gauge.cpp), so these
// replacements are safe to hit from worker threads (the CI TSan job runs
// the gauge-linked suites to keep that true).
#include <cstdlib>
#include <new>

#include "util/alloc_gauge.h"

namespace {

const bool g_registered = treenum::internal::MarkGaugeActive();

void* CountedAlloc(size_t size, size_t align) {
  treenum::internal::RecordAlloc(size);
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires the size to be a multiple of the alignment.
    size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded);
  }
  return std::malloc(size);
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  treenum::internal::RecordFree();
  std::free(p);
}

void* ThrowingAlloc(size_t size, size_t align) {
  void* p = CountedAlloc(size, align);
  if (p == nullptr && size != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) {
  (void)g_registered;
  return ThrowingAlloc(size ? size : 1, 0);
}
void* operator new[](size_t size) { return ThrowingAlloc(size ? size : 1, 0); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size ? size : 1, 0);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size ? size : 1, 0);
}
void* operator new(size_t size, std::align_val_t align) {
  return ThrowingAlloc(size ? size : 1, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return ThrowingAlloc(size ? size : 1, static_cast<size_t>(align));
}
void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlloc(size ? size : 1, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlloc(size ? size : 1, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, size_t) noexcept { CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
