// Tests for the process-wide compiled-query cache (automata/query_cache.h):
// cross-document dedupe down to pointer identity with zero recompilation,
// refcount-driven retention and LRU eviction of warm plans, the exact-
// comparison fallback under forced fingerprint collisions, shard-server
// plumbing, and an 8-thread concurrent Acquire/Release stress run (in the
// CI TSan filter).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "automata/query_cache.h"
#include "automata/query_library.h"
#include "automata/translate.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "serving/shard_server.h"
#include "test_util.h"

namespace treenum {
namespace {

using Handle = QueryCache::Handle;

// ---- Cross-document dedupe ----

// Registering the same query on a second document must be served entirely
// by the cache: zero translation / homogenization / canonicalization work
// (the acceptance counter-assert), and both documents' pipelines must
// share one compiled plan object.
TEST(QueryCache, SecondDocumentRegistrationCompilesNothing) {
  Rng rng(11);
  QueryCache cache;
  DynamicDocument doc1(RandomTree(40, 3, rng), 3, &cache);
  DynamicDocument doc2(RandomTree(25, 3, rng), 3, &cache);

  auto h1 = doc1.Register(QueryMarkedAncestor(3, 1, 2));
  QueryCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.translations, 1u);
  EXPECT_EQ(after_first.homogenizations, 1u);
  EXPECT_EQ(after_first.canonicalizations, 1u);
  EXPECT_EQ(after_first.insertions, 1u);

  auto h2 = doc2.Register(QueryMarkedAncestor(3, 1, 2));
  QueryCache::Stats after_second = cache.stats();
  EXPECT_EQ(after_second.translations, after_first.translations)
      << "second-document registration must not translate";
  EXPECT_EQ(after_second.homogenizations, after_first.homogenizations)
      << "second-document registration must not homogenize";
  EXPECT_EQ(after_second.canonicalizations, after_first.canonicalizations)
      << "second-document registration must not canonicalize";
  EXPECT_EQ(after_second.source_hits, 1u);
  EXPECT_EQ(after_second.entries, 1u);

  // Pointer identity: one compiled plan serves both documents.
  EXPECT_EQ(doc1.pipeline(h1).automaton().get(),
            doc2.pipeline(h2).automaton().get());

  // And both answer correctly over their own trees.
  StaticEngine o1(doc1.tree(), QueryMarkedAncestor(3, 1, 2));
  StaticEngine o2(doc2.tree(), QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(doc1.pipeline(h1).EnumerateAll(), o1.EnumerateAll());
  EXPECT_EQ(doc2.pipeline(h2).EnumerateAll(), o2.EnumerateAll());
}

// Renumbered/reordered variants miss the source map but converge in the
// canonical map: still exactly one compiled plan.
TEST(QueryCache, RenumberedVariantConvergesCanonically) {
  // QuerySelectLabel(3, 1) with states swapped and declarations reordered.
  UnrankedTva permuted(2, 3, 1);
  permuted.AddFinal(0);
  permuted.AddTransition(0, 1, 0);
  permuted.AddTransition(1, 0, 0);
  permuted.AddTransition(1, 1, 1);
  permuted.AddInit(1, 1, 0);
  for (Label l = 3; l-- > 0;) permuted.AddInit(l, 0, 1);

  QueryCache cache;
  Handle a = cache.CompileTree(QuerySelectLabel(3, 1));
  Handle b = cache.CompileTree(permuted);
  EXPECT_EQ(a.get(), b.get()) << "canonically equal plans must be shared";
  QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.translations, 2u) << "source miss still compiles";
  EXPECT_EQ(s.insertions, 1u) << "but interns into one entry";
  EXPECT_EQ(s.canonical_hits, 1u);
  EXPECT_EQ(s.source_entries, 2u) << "both sources link to the plan";
}

// Word queries go through the same cache under a separate source domain.
TEST(QueryCache, WordQueriesShareAcrossDocuments) {
  // Spanner: x matches any position labeled 1.
  Wva wva(2, 3, 1);
  wva.AddInitial(0);
  wva.AddFinal(1);
  for (Label l = 0; l < 3; ++l) {
    wva.AddTransition(0, l, 0, 0);
    wva.AddTransition(1, l, 0, 1);
  }
  wva.AddTransition(0, 1, 1, 1);

  QueryCache cache;
  Word w1 = {0, 1, 2, 1};
  Word w2 = {2, 2, 1};
  DynamicDocument doc1(w1, 3, &cache);
  DynamicDocument doc2(w2, 3, &cache);
  auto h1 = doc1.Register(wva);
  auto h2 = doc2.Register(wva);
  EXPECT_EQ(doc1.pipeline(h1).automaton().get(),
            doc2.pipeline(h2).automaton().get());
  QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.translations, 1u);
  EXPECT_EQ(s.source_hits, 1u);

  // Cache-served answers match freshly compiled pipelines over the same
  // words (fresh private caches -> full cold compile).
  QueryCache fresh1, fresh2;
  DynamicDocument ref1(w1, 3, &fresh1);
  DynamicDocument ref2(w2, 3, &fresh2);
  auto r1 = ref1.Register(wva);
  auto r2 = ref2.Register(wva);
  EXPECT_EQ(doc1.pipeline(h1).EnumerateAll(), ref1.pipeline(r1).EnumerateAll());
  EXPECT_EQ(doc2.pipeline(h2).EnumerateAll(), ref2.pipeline(r2).EnumerateAll());
}

// RegisterPrepared routes through Intern: automaton-identical prepared
// registrations across documents share the plan too.
TEST(QueryCache, PreparedRegistrationsIntern) {
  Rng rng(12);
  QueryCache cache;
  DynamicDocument doc1(RandomTree(20, 3, rng), 3, &cache);
  DynamicDocument doc2(RandomTree(20, 3, rng), 3, &cache);
  auto prepare = [] {
    return HomogenizeBinaryTva(
        TranslateUnrankedTva(QuerySelectLabel(3, 0)).tva);
  };
  auto h1 = doc1.RegisterPrepared(prepare(), BoxEnumMode::kIndexed);
  auto h2 = doc2.RegisterPrepared(prepare(), BoxEnumMode::kIndexed);
  EXPECT_EQ(doc1.pipeline(h1).automaton().get(),
            doc2.pipeline(h2).automaton().get());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().canonical_hits, 1u);
}

// ---- Refcounting, retention, eviction ----

TEST(QueryCache, DropToZeroRetainsUntilCapEvicts) {
  Rng rng(13);
  QueryCache cache;
  cache.set_retention_cap(2);

  {
    DynamicDocument doc(RandomTree(30, 3, rng), 3, &cache);
    doc.Register(QuerySelectLabel(3, 0));
    EXPECT_EQ(cache.stats().unreferenced_entries, 0u)
        << "document + pipeline pin the plan";
  }
  // Document destroyed: the plan dropped to refcount zero but stays warm.
  QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.unreferenced_entries, 1u);
  EXPECT_EQ(s.evictions, 0u);

  // Re-acquiring the warm plan is a source hit, not a recompile.
  {
    DynamicDocument doc(RandomTree(18, 3, rng), 3, &cache);
    doc.Register(QuerySelectLabel(3, 0));
    s = cache.stats();
    EXPECT_EQ(s.translations, 1u);
    EXPECT_EQ(s.source_hits, 1u);
  }

  // Churning distinct queries beyond the cap evicts LRU warm plans and
  // their source links; live totals stay bounded by the cap.
  for (Label a = 0; a < 3; ++a) {
    for (Label b = 0; b < 3; ++b) {
      if (a == b) continue;
      Handle h = cache.CompileTree(QueryMarkedAncestor(3, a, b));
      EXPECT_TRUE(h != nullptr);
    }
  }
  s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.entries, 2u);
  EXPECT_LE(s.unreferenced_entries, 2u);
  EXPECT_LE(s.source_entries, 2u + 1u)
      << "source links die with their evicted plan";

  // An evicted query recompiles and still answers correctly.
  DynamicDocument doc(RandomTree(22, 3, rng), 3, &cache);
  auto h = doc.Register(QuerySelectLabel(3, 0));
  StaticEngine oracle(doc.tree(), QuerySelectLabel(3, 0));
  EXPECT_EQ(doc.pipeline(h).EnumerateAll(), oracle.EnumerateAll());
}

TEST(QueryCache, PinnedPlansAreNeverEvicted) {
  QueryCache cache;
  cache.set_retention_cap(0);
  Handle pinned = cache.CompileTree(QuerySelectAll(3));
  for (Label a = 0; a < 3; ++a) {
    cache.CompileTree(QuerySelectLabel(3, a));  // dropped immediately
  }
  QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 1u) << "only the pinned plan survives cap 0";
  EXPECT_EQ(s.unreferenced_entries, 0u);
  EXPECT_EQ(s.evictions, 3u);
  EXPECT_EQ(pinned->tva.num_states(), pinned->kind.size());
  EXPECT_EQ(cache.Clear(), 0u) << "Clear drops only unreferenced plans";
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---- Fingerprint-collision fallback ----

// With every fingerprint forced to one constant, correctness rests
// entirely on the exact-comparison fallbacks in both maps: distinct
// queries must stay distinct, identical ones must still dedupe.
TEST(QueryCache, ForcedCollisionsFallBackToExactComparison) {
  QueryCache cache;
  cache.set_test_force_fingerprint_collisions(true);

  Handle a0 = cache.CompileTree(QuerySelectLabel(3, 0));
  Handle a1 = cache.CompileTree(QuerySelectLabel(3, 1));
  Handle a2 = cache.CompileTree(QueryMarkedAncestor(3, 1, 2));
  EXPECT_NE(a0.get(), a1.get());
  EXPECT_NE(a1.get(), a2.get());

  Handle b0 = cache.CompileTree(QuerySelectLabel(3, 0));
  EXPECT_EQ(a0.get(), b0.get()) << "identical query still dedupes";

  QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_GT(s.collisions, 0u) << "the fallback actually ran";
  EXPECT_EQ(s.source_hits, 1u);

  // Collided-but-distinct plans answer their own queries correctly.
  Rng rng(14);
  DynamicDocument doc(RandomTree(35, 3, rng), 3, &cache);
  auto h0 = doc.Register(QuerySelectLabel(3, 0));
  auto h2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  StaticEngine o0(doc.tree(), QuerySelectLabel(3, 0));
  StaticEngine o2(doc.tree(), QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(doc.pipeline(h0).EnumerateAll(), o0.EnumerateAll());
  EXPECT_EQ(doc.pipeline(h2).EnumerateAll(), o2.EnumerateAll());
}

// ---- Shard-server plumbing ----

// One cache threaded through all shard workers: the same query registered
// on documents living on different shards compiles once server-wide.
TEST(QueryCache, ShardServerSharesOneCacheAcrossShards) {
  Rng rng(15);
  QueryCache cache;
  serving::DocumentShardServer::Options opts;
  opts.shards = 4;
  opts.query_cache = &cache;
  serving::DocumentShardServer server(opts);

  std::vector<serving::DocumentShardServer::DocRef> docs;
  std::vector<serving::DocumentShardServer::QueryRef> refs;
  for (int i = 0; i < 8; ++i) {
    docs.push_back(server.AddDocument(RandomTree(24, 3, rng), 3));
  }
  for (auto& d : docs) {
    refs.push_back(server.RegisterQuery(d, QueryMarkedAncestor(3, 1, 2)));
  }
  server.Drain();

  QueryCache::Stats s = cache.stats();
  EXPECT_EQ(s.translations, 1u) << "8 registrations, one compile";
  EXPECT_EQ(s.source_hits, 7u);
  const HomogenizedTva* plan =
      server.document(docs[0]).pipeline(refs[0].handle).automaton().get();
  for (size_t i = 1; i < docs.size(); ++i) {
    EXPECT_EQ(
        server.document(docs[i]).pipeline(refs[i].handle).automaton().get(),
        plan);
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    StaticEngine oracle(server.document(docs[i]).tree(),
                        QueryMarkedAncestor(3, 1, 2));
    SnapshotRef snap = server.Pin(docs[i]);
    EXPECT_EQ(refs[i].view.EnumerateAt(snap), oracle.EnumerateAll());
  }
}

// ---- Concurrent stress (CI TSan filter) ----

// 8 threads hammer one cache with a small query set: compile (acquire),
// hold, release, plus occasional Intern of prepared automata. Exercises
// concurrent source hits, racing cold compiles of the same query, the
// deleter notification path, and eviction under a small retention cap.
TEST(QueryCache, ConcurrentAcquireReleaseStress) {
  QueryCache cache;
  cache.set_retention_cap(3);
  constexpr int kThreads = 8;
  constexpr int kIters = 120;

  std::vector<UnrankedTva> queries;
  for (Label a = 0; a < 3; ++a) queries.push_back(QuerySelectLabel(3, a));
  queries.push_back(QueryMarkedAncestor(3, 1, 2));
  queries.push_back(QueryMarkedAncestor(3, 2, 0));
  queries.push_back(QuerySelectLeaves(3));

  // Reference plans, compiled single-threaded in a private cache.
  std::vector<HomogenizedTva> reference;
  {
    QueryCache ref_cache;
    for (const UnrankedTva& q : queries) {
      reference.push_back(*ref_cache.CompileTree(q));
    }
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::vector<Handle> held;
      for (int i = 0; i < kIters; ++i) {
        size_t qi = rng.Index(queries.size());
        Handle h;
        if (i % 5 == 4) {
          h = cache.Intern(HomogenizeBinaryTva(
              TranslateUnrankedTva(queries[qi]).tva));
        } else {
          h = cache.CompileTree(queries[qi]);
        }
        if (!HomogenizedTvaEqual(*h, reference[qi])) failed = true;
        if (rng.Flip(0.5)) {
          held.push_back(std::move(h));  // pin across iterations
        }
        if (held.size() > 4) held.erase(held.begin());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load()) << "a thread saw a wrong compiled plan";

  QueryCache::Stats s = cache.stats();
  EXPECT_LE(s.entries, queries.size());
  EXPECT_EQ(s.lookups, uint64_t{kThreads} * kIters);
  EXPECT_EQ(s.unreferenced_entries,
            std::min<size_t>(s.entries, 3u))
      << "all handles released; warm plans bounded by the cap";
}

}  // namespace
}  // namespace treenum
