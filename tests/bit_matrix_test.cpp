#include "util/bit_matrix.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace treenum {
namespace {

TEST(BitMatrix, SetGet) {
  BitMatrix m(3, 70);
  EXPECT_FALSE(m.Get(2, 69));
  m.Set(2, 69);
  EXPECT_TRUE(m.Get(2, 69));
  m.Set(2, 69, false);
  EXPECT_FALSE(m.Get(2, 69));
  EXPECT_FALSE(m.Any());
  m.Set(0, 0);
  EXPECT_TRUE(m.Any());
  EXPECT_EQ(m.Count(), 1u);
}

TEST(BitMatrix, Identity) {
  BitMatrix id = BitMatrix::Identity(5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(id.Get(i, j), i == j);
    }
  }
}

TEST(BitMatrix, RowColAny) {
  BitMatrix m(4, 4);
  m.Set(1, 3);
  EXPECT_TRUE(m.RowAny(1));
  EXPECT_FALSE(m.RowAny(0));
  EXPECT_TRUE(m.ColAny(3));
  EXPECT_FALSE(m.ColAny(1));
  EXPECT_EQ(m.NonEmptyRows(), std::vector<uint32_t>{1});
  EXPECT_EQ(m.NonEmptyCols(), std::vector<uint32_t>{3});
}

TEST(BitMatrix, ComposeSmall) {
  // R1 = {(0,1)}, R2 = {(1,2)}  =>  R1∘R2 = {(0,2)}.
  BitMatrix a(2, 3), b(3, 4);
  a.Set(0, 1);
  b.Set(1, 2);
  BitMatrix c = a.Compose(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_TRUE(c.Get(0, 2));
  EXPECT_EQ(c.Count(), 1u);
}

TEST(BitMatrix, ComposeIdentityIsNoop) {
  Rng rng(1);
  BitMatrix m(6, 6);
  for (int i = 0; i < 12; ++i) m.Set(rng.Index(6), rng.Index(6));
  EXPECT_EQ(BitMatrix::Identity(6).Compose(m), m);
  EXPECT_EQ(m.Compose(BitMatrix::Identity(6)), m);
}

TEST(BitMatrix, ComposeMatchesNaiveOracle) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.Index(90);
    size_t m = 1 + rng.Index(90);
    size_t k = 1 + rng.Index(90);
    BitMatrix a(n, m), b(m, k);
    for (size_t i = 0; i < n * m / 3 + 1; ++i) {
      a.Set(rng.Index(n), rng.Index(m));
    }
    for (size_t i = 0; i < m * k / 3 + 1; ++i) {
      b.Set(rng.Index(m), rng.Index(k));
    }
    EXPECT_EQ(a.Compose(b), ComposeNaive(a, b)) << "trial " << trial;
  }
}

TEST(BitMatrix, ComposeIsAssociative) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix a(10, 10), b(10, 10), c(10, 10);
    for (int i = 0; i < 25; ++i) {
      a.Set(rng.Index(10), rng.Index(10));
      b.Set(rng.Index(10), rng.Index(10));
      c.Set(rng.Index(10), rng.Index(10));
    }
    EXPECT_EQ(a.Compose(b).Compose(c), a.Compose(b.Compose(c)));
  }
}

TEST(BitMatrix, UnionWith) {
  BitMatrix a(2, 2), b(2, 2);
  a.Set(0, 0);
  b.Set(1, 1);
  a.UnionWith(b);
  EXPECT_TRUE(a.Get(0, 0));
  EXPECT_TRUE(a.Get(1, 1));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitMatrix, ZeroRowsNotIn) {
  BitMatrix a(3, 3);
  a.Set(0, 1);
  a.Set(1, 1);
  a.Set(2, 1);
  std::vector<uint64_t> keep{0b101};  // keep rows 0 and 2
  a.ZeroRowsNotIn(keep);
  EXPECT_TRUE(a.Get(0, 1));
  EXPECT_FALSE(a.Get(1, 1));
  EXPECT_TRUE(a.Get(2, 1));
}

// The word-strided ColAny must agree with a per-entry scan, in particular
// for columns past the first 64-bit word (the old implementation probed
// bit-by-bit through Get; the regression risk of the word version is a
// wrong word index / mask for c >= 64).
TEST(BitMatrix, ColAnyWideMatrix) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    size_t rows = 1 + rng.Index(20);
    size_t cols = 65 + rng.Index(150);  // always spans >= 2 words
    BitMatrix m(rows, cols);
    for (size_t i = 0; i < rows * cols / 7 + 1; ++i) {
      m.Set(rng.Index(rows), rng.Index(cols));
    }
    for (size_t c = 0; c < cols; ++c) {
      bool expected = false;
      for (size_t r = 0; r < rows; ++r) expected |= m.Get(r, c);
      EXPECT_EQ(m.ColAny(c), expected) << "col " << c << " trial " << trial;
    }
  }
  // Exact boundary columns of an empty-but-one matrix.
  BitMatrix m(2, 130);
  m.Set(1, 64);
  EXPECT_FALSE(m.ColAny(63));
  EXPECT_TRUE(m.ColAny(64));
  EXPECT_FALSE(m.ColAny(65));
  EXPECT_FALSE(m.ColAny(129));
}

TEST(BitMatrix, ComposeIntoMatchesComposeAndReusesBuffer) {
  Rng rng(13);
  BitMatrix result;  // one reused destination across all trials
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.Index(70);
    size_t m = 1 + rng.Index(70);
    size_t k = 1 + rng.Index(70);
    BitMatrix a(n, m), b(m, k);
    for (size_t i = 0; i < n * m / 3 + 1; ++i) {
      a.Set(rng.Index(n), rng.Index(m));
    }
    for (size_t i = 0; i < m * k / 3 + 1; ++i) {
      b.Set(rng.Index(m), rng.Index(k));
    }
    a.ComposeInto(b, &result);
    EXPECT_EQ(result, a.Compose(b)) << "trial " << trial;
  }
}

TEST(BitMatrix, NonEmptyRowsIntoMatchesNonEmptyRows) {
  Rng rng(17);
  std::vector<uint32_t> out;
  for (int trial = 0; trial < 30; ++trial) {
    size_t rows = 1 + rng.Index(40);
    size_t cols = 1 + rng.Index(140);
    BitMatrix m(rows, cols);
    for (size_t i = 0; i < rows * cols / 9 + 1; ++i) {
      m.Set(rng.Index(rows), rng.Index(cols));
    }
    m.NonEmptyRowsInto(&out);
    EXPECT_EQ(out, m.NonEmptyRows()) << "trial " << trial;
  }
}

TEST(BitMatrix, ViewReadsMatchOwningMatrix) {
  Rng rng(19);
  BitMatrix m(7, 100);
  for (int i = 0; i < 60; ++i) m.Set(rng.Index(7), rng.Index(100));
  BitMatrixView v(m);
  EXPECT_EQ(v.rows(), m.rows());
  EXPECT_EQ(v.cols(), m.cols());
  EXPECT_EQ(v.Count(), m.Count());
  EXPECT_EQ(v.Any(), m.Any());
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(v.RowAny(r), m.RowAny(r));
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(v.Get(r, c), m.Get(r, c));
    }
  }
}

TEST(BitMatrix, AssignReshapesAndZeroes) {
  BitMatrix m(4, 4);
  m.Set(3, 3);
  m.Assign(2, 130);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 130u);
  EXPECT_FALSE(m.Any());
  m.Set(1, 129);
  EXPECT_TRUE(m.Get(1, 129));
  m.Assign(4, 4);
  EXPECT_FALSE(m.Any());
  EXPECT_EQ(m, BitMatrix(4, 4));
}

#ifndef NDEBUG
// The blocked compose kernel re-reads operand rows after writing `out`,
// so an aliased destination silently corrupts the composition. Debug
// builds TREENUM_CHECK the precondition; both operand overlaps must trip.
TEST(BitMatrixDeathTest, ComposeIntoWordsRejectsAliasedDestination) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<uint64_t> left(4, 0), right(4, 0), out(4, 0);
  BitMatrixView a(left.data(), 4, 3);
  BitMatrixView b(right.data(), 3, 5);
  BitMatrixView::ComposeIntoWords(a, b, out.data());  // disjoint: fine
  EXPECT_DEATH(BitMatrixView::ComposeIntoWords(a, b, left.data() + 1),
               "overlaps the left operand");
  EXPECT_DEATH(BitMatrixView::ComposeIntoWords(a, b, right.data() + 2),
               "overlaps the right operand");
}
#endif

}  // namespace
}  // namespace treenum
