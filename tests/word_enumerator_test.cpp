#include "core/word_enumerator.h"

#include <gtest/gtest.h>

#include "automata/regex_spanner.h"
#include "util/random.h"

namespace treenum {
namespace {

Wva SomeBPosition() {
  // a*<x:b>(a|b)* — select every b position.
  Wva a(2, 2, 1);
  a.AddInitial(0);
  a.AddTransition(0, 0, 0, 0);
  a.AddTransition(0, 1, 0, 0);
  a.AddTransition(0, 1, 1, 1);
  a.AddTransition(1, 0, 0, 1);
  a.AddTransition(1, 1, 0, 1);
  a.AddFinal(1);
  return a;
}

TEST(WordEnumerator, StaticEnumeration) {
  WordEnumerator e(ToWord("abab"), SomeBPosition());
  std::vector<Assignment> res = e.EnumerateAllByPosition();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].singletons()[0].node, 1u);
  EXPECT_EQ(res[1].singletons()[0].node, 3u);
}

TEST(WordEnumerator, MatchesBruteForceOnRandomWords) {
  Rng rng(181);
  Wva q = SomeBPosition();
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.Index(10);
    Word w;
    for (size_t i = 0; i < n; ++i) {
      w.push_back(static_cast<Label>(rng.Index(2)));
    }
    WordEnumerator e(w, q);
    EXPECT_EQ(e.EnumerateAllByPosition(), q.BruteForceAssignments(w));
  }
}

TEST(WordEnumerator, UpdatesTrackBruteForce) {
  Rng rng(191);
  Wva q = SomeBPosition();
  Word ref = ToWord("ab");
  WordEnumerator e(ref, q);
  for (int step = 0; step < 200; ++step) {
    switch (rng.Index(3)) {
      case 0: {
        size_t pos = rng.Index(ref.size() + 1);
        Label l = static_cast<Label>(rng.Index(2));
        ref.insert(ref.begin() + pos, l);
        e.Insert(pos, l);
        break;
      }
      case 1: {
        if (ref.size() <= 1) break;
        size_t pos = rng.Index(ref.size());
        ref.erase(ref.begin() + pos);
        e.Erase(pos);
        break;
      }
      case 2: {
        size_t pos = rng.Index(ref.size());
        Label l = static_cast<Label>(rng.Index(2));
        ref[pos] = l;
        e.Replace(pos, l);
        break;
      }
    }
    if (ref.size() <= 10) {
      ASSERT_EQ(e.EnumerateAllByPosition(), q.BruteForceAssignments(ref))
          << "step " << step;
    } else {
      // Cross-check against a fresh enumerator (brute force too slow).
      WordEnumerator fresh(ref, q);
      ASSERT_EQ(e.EnumerateAllByPosition(), fresh.EnumerateAllByPosition())
          << "step " << step;
    }
  }
}

TEST(WordEnumerator, RegexSpannerEndToEnd) {
  // All b positions preceded only by a's.
  Wva q = CompileRegexSpanner("a*<0:b>.*", 2, 1);
  WordEnumerator e(ToWord("aababb"), q);
  std::vector<Assignment> res = e.EnumerateAllByPosition();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].singletons()[0].node, 2u);
}

TEST(WordEnumerator, TwoVariableSpanner) {
  // <0:a>.*<1:b>: every a position paired with every later b position.
  Wva q = CompileRegexSpanner("<0:a>.*<1:b>", 2, 2);
  // The pattern is anchored: the captured a must be the first letter and
  // the captured b the last one.
  WordEnumerator e(ToWord("aabb"), q);
  std::vector<Assignment> res = e.EnumerateAllByPosition();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0], Assignment({{0, 0}, {1, 3}}));
  EXPECT_EQ(res, q.BruteForceAssignments(ToWord("aabb")));
}

}  // namespace
}  // namespace treenum
