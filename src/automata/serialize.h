// Binary serialization of automata (libfive's `serialize` idiom).
//
// Compiled plans (canonical HomogenizedTva) and their pre-translation
// sources (UnrankedTva / Wva) are written as self-delimiting *records*:
//
//   magic "TNQA" | u32 version | u32 endian mark | u8 kind |
//   u64 payload length | payload bytes | u64 FNV-1a checksum of payload
//
// Every multi-byte integer — in the header and in payloads — is written
// little-endian with explicit byte shifts, so records are byte-identical
// across hosts; the endian mark (0x01020304) and version are rejected on
// mismatch rather than silently reinterpreted. Readers are fully bounds-
// checked: truncated, oversized or corrupted input yields a clean failure
// (false + error string), never undefined behavior — asserted under ASan
// by tests/serialize_test.cpp, with a golden fixture in tests/data/
// pinning the byte format.
//
// The process-wide QueryCache (automata/query_cache.h) composes these
// primitives into whole-cache images (SaveCache / WarmStart).
#ifndef TREENUM_AUTOMATA_SERIALIZE_H_
#define TREENUM_AUTOMATA_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "automata/homogenize.h"
#include "automata/unranked_tva.h"
#include "automata/wva.h"

namespace treenum {
namespace serialize {

/// Format version stamped into every record header; readers reject any
/// other value.
inline constexpr uint32_t kFormatVersion = 1;

/// Endianness canary stamped into every record header (always written as
/// the little-endian byte sequence 04 03 02 01); a reader that decodes a
/// different value is looking at a foreign or corrupted byte order.
inline constexpr uint32_t kEndianMark = 0x01020304u;

/// Record kinds (the u8 tag after the header).
enum class RecordKind : uint8_t {
  kHomogenizedTva = 1,  ///< A compiled (homogenized, canonical) plan.
  kUnrankedTva = 2,     ///< A pre-translation tree query.
  kWva = 3,             ///< A pre-translation word query (spanner).
  kCacheImage = 4,      ///< A whole QueryCache image (see query_cache.h).
};

/// Append-only little-endian byte buffer used to build record payloads.
class ByteWriter {
 public:
  /// Appends one byte.
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  /// Appends `v` as 4 little-endian bytes.
  void PutU32(uint32_t v);
  /// Appends `v` as 8 little-endian bytes.
  void PutU64(uint64_t v);
  /// The bytes written so far.
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a payload. Every getter
/// returns false (and reads nothing) once the input is exhausted, so
/// parsing truncated or corrupted payloads fails cleanly.
class ByteReader {
 public:
  /// Reads from `data[0, size)`; the buffer must outlive the reader.
  ByteReader(const char* data, size_t size) : p_(data), end_(data + size) {}
  /// Reads one byte into `*v`.
  bool GetU8(uint8_t* v);
  /// Reads 4 little-endian bytes into `*v`.
  bool GetU32(uint32_t* v);
  /// Reads 8 little-endian bytes into `*v`.
  bool GetU64(uint64_t* v);
  /// Bytes not yet consumed.
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const char* p_;
  const char* end_;
};

// ---- Payload codecs (no record framing) ----
// Append* writes the automaton body into `w`; Parse* is the bounds- and
// range-checked inverse (false + `*error` on malformed input). These are
// the building blocks the whole-cache image uses to nest many automata
// inside one checksummed record.

/// Appends the body of a compiled plan (sizes, kind vector, ι, δ, F).
void AppendHomogenizedTva(const HomogenizedTva& a, ByteWriter* w);
/// Parses a compiled-plan body; validates every state/label/var index.
bool ParseHomogenizedTva(ByteReader* r, HomogenizedTva* out,
                         std::string* error);
/// Appends the body of an unranked stepwise tree query.
void AppendUnrankedTva(const UnrankedTva& a, ByteWriter* w);
/// Parses an unranked-tree-query body with full index validation.
bool ParseUnrankedTva(ByteReader* r, UnrankedTva* out, std::string* error);
/// Appends the body of a word query (WVA / spanner).
void AppendWva(const Wva& a, ByteWriter* w);
/// Parses a word-query body with full index validation.
bool ParseWva(ByteReader* r, Wva* out, std::string* error);

// ---- Record framing ----

/// Writes one framed record (header, payload, checksum) to `out`.
/// Returns false iff the stream write fails.
bool WriteRecord(RecordKind kind, const std::string& payload,
                 std::ostream& out);

/// Reads one framed record from `in`: rejects bad magic, unknown version,
/// foreign endianness, truncation and checksum mismatch. On success fills
/// `*kind` and `*payload`.
bool ReadRecord(std::istream& in, RecordKind* kind, std::string* payload,
                std::string* error);

}  // namespace serialize

// ---- Compiled-plan convenience wrappers (the libfive-style surface) ----

/// Serializes one compiled plan as a single framed record.
bool SaveCompiled(const HomogenizedTva& a, std::ostream& out);

/// Deserializes one compiled plan written by SaveCompiled. Returns false
/// (with `*error` describing why, when non-null) on any malformed input —
/// wrong header, truncation, checksum mismatch, or out-of-range indices —
/// without invoking undefined behavior.
bool LoadCompiled(std::istream& in, HomogenizedTva* out,
                  std::string* error = nullptr);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_SERIALIZE_H_
