// A regex-with-captures → WVA compiler for the document-spanner use case
// (§8, "Results on Words"). Patterns must match the *whole* word; capture
// atoms bind a variable to the position of a single matched letter.
//
// Syntax (over the letters a-z, mapped to labels 0-25):
//   a        literal letter
//   .        any letter
//   (e)      grouping
//   e1|e2    alternation
//   e*       Kleene star
//   e+       one or more
//   e?       optional
//   e1 e2    concatenation (juxtaposition)
//   <v:a>    capture: letter a (or '.') bound to variable index v (digit)
//
// Example: "a*<0:b>.*" enumerates, for every word, all positions of b
// letters that are preceded only by a's.
//
// Compilation: Thompson construction followed by ε-elimination, yielding a
// (generally nondeterministic) WVA — exactly the automaton class whose
// combined complexity the paper makes tractable.
#ifndef TREENUM_AUTOMATA_REGEX_SPANNER_H_
#define TREENUM_AUTOMATA_REGEX_SPANNER_H_

#include <string>

#include "automata/wva.h"

namespace treenum {

/// Compiles `pattern`; `num_labels` is the alphabet size (letters beyond it
/// are rejected), `num_vars` the variable count (capture indices must be
/// smaller). Throws std::invalid_argument on syntax errors.
Wva CompileRegexSpanner(const std::string& pattern, size_t num_labels,
                        size_t num_vars);

/// Maps a string of letters a-z to a Word (labels 0-25).
Word ToWord(const std::string& s);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_REGEX_SPANNER_H_
