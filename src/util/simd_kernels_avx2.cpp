// AVX2 kernel tier. This TU is compiled with -mavx2 (see CMakeLists.txt);
// when the toolchain cannot do that the guard below compiles it down to a
// null entry point and the dispatcher never offers the tier.
#include "util/simd_kernels.h"
#include "util/simd_kernels_common.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace treenum {
namespace internal {
namespace {

void OrIntoAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i* s = reinterpret_cast<const __m256i*>(src + i);
    __m256i v0 = _mm256_or_si256(_mm256_loadu_si256(d + 0),
                                 _mm256_loadu_si256(s + 0));
    __m256i v1 = _mm256_or_si256(_mm256_loadu_si256(d + 1),
                                 _mm256_loadu_si256(s + 1));
    __m256i v2 = _mm256_or_si256(_mm256_loadu_si256(d + 2),
                                 _mm256_loadu_si256(s + 2));
    __m256i v3 = _mm256_or_si256(_mm256_loadu_si256(d + 3),
                                 _mm256_loadu_si256(s + 3));
    _mm256_storeu_si256(d + 0, v0);
    _mm256_storeu_si256(d + 1, v1);
    _mm256_storeu_si256(d + 2, v2);
    _mm256_storeu_si256(d + 3, v3);
  }
  for (; i + 4 <= n; i += 4) {
    __m256i* d = reinterpret_cast<__m256i*>(dst + i);
    const __m256i* s = reinterpret_cast<const __m256i*>(src + i);
    _mm256_storeu_si256(
        d, _mm256_or_si256(_mm256_loadu_si256(d), _mm256_loadu_si256(s)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

bool AnyAvx2(const uint64_t* words, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i* p = reinterpret_cast<const __m256i*>(words + i);
    __m256i v = _mm256_or_si256(
        _mm256_or_si256(_mm256_loadu_si256(p + 0), _mm256_loadu_si256(p + 1)),
        _mm256_or_si256(_mm256_loadu_si256(p + 2), _mm256_loadu_si256(p + 3)));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i) {
    if (words[i]) return true;
  }
  return false;
}

// Streaming compose for b_wpr == 2 (w <= 128, an important real shape):
// one destination row at a time with a single xmm accumulator, so each set
// bit costs exactly one 16-byte load and one OR — no masks, no broadcasts.
void ComposeStream2Avx2(const uint64_t* a, size_t a_rows, size_t a_wpr,
                        const uint64_t* b, uint64_t* out) {
  for (size_t r = 0; r < a_rows; ++r) {
    const uint64_t* row = a + r * a_wpr;
    __m128i acc = _mm_setzero_si128();
    for (size_t w = 0; w < a_wpr; ++w) {
      uint64_t bits = row[w];
      const uint64_t* bbase = b + (w * 64) * 2;
      while (bits) {
        const size_t j = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        acc = _mm_or_si128(
            acc, _mm_loadu_si128(
                     reinterpret_cast<const __m128i*>(bbase + j * 2)));
      }
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r * 2), acc);
  }
}

// Streaming compose for moderate widths (b_wpr <= 4 * NV): one destination
// row at a time, accumulated across NV ymm registers — one (masked only on
// the tail vector) load plus one OR per set bit per vector. Beats the
// row-blocked scheme whenever b is cache-resident, because it needs no
// per-row masking at all.
template <size_t NV>
void ComposeStreamAvx2(const uint64_t* a, size_t a_rows, size_t a_wpr,
                       const uint64_t* b, size_t b_wpr, uint64_t* out) {
  const size_t rem = b_wpr - 4 * (NV - 1);  // tail words, 1..4
  const bool tail_full = rem == 4;
  const __m256i tailmask = _mm256_setr_epi64x(-1, rem > 1 ? -1 : 0,
                                              rem > 2 ? -1 : 0,
                                              rem > 3 ? -1 : 0);
  for (size_t r = 0; r < a_rows; ++r) {
    const uint64_t* row = a + r * a_wpr;
    __m256i acc[NV];
    for (size_t v = 0; v < NV; ++v) acc[v] = _mm256_setzero_si256();
    for (size_t w = 0; w < a_wpr; ++w) {
      uint64_t bits = row[w];
      const uint64_t* bbase = b + (w * 64) * b_wpr;
      while (bits) {
        const size_t j = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const uint64_t* brow = bbase + j * b_wpr;
        for (size_t v = 0; v + 1 < NV; ++v) {
          acc[v] = _mm256_or_si256(
              acc[v], _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(brow + 4 * v)));
        }
        const long long* tp =
            reinterpret_cast<const long long*>(brow + 4 * (NV - 1));
        acc[NV - 1] = _mm256_or_si256(
            acc[NV - 1],
            tail_full ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tp))
                      : _mm256_maskload_epi64(tp, tailmask));
      }
    }
    uint64_t* o = out + r * b_wpr;
    for (size_t v = 0; v + 1 < NV; ++v) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 4 * v), acc[v]);
    }
    long long* op = reinterpret_cast<long long*>(o + 4 * (NV - 1));
    if (tail_full) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(op), acc[NV - 1]);
    } else {
      _mm256_maskstore_epi64(op, tailmask, acc[NV - 1]);
    }
  }
}

// Register-blocked compose for wide b (b_wpr > 16): 4 destination rows by
// one 4-word (256-bit) column tile per pass. Each touched b row is loaded
// once per row block and or-ed into up to four ymm accumulators under
// per-row broadcast masks (branchless), instead of once per set bit —
// worth the masking overhead once b outgrows the cache.
void ComposeBlockedAvx2(const uint64_t* a, size_t a_rows, size_t a_wpr,
                        const uint64_t* b, size_t b_wpr, uint64_t* out) {
  constexpr size_t kTile = 4;
  for (size_t r0 = 0; r0 < a_rows; r0 += kBlockRows) {
    const size_t nr = a_rows - r0 < kBlockRows ? a_rows - r0 : kBlockRows;
    const uint64_t* arow[kBlockRows];
    for (size_t k = 0; k < kBlockRows; ++k) {
      // Rows past nr duplicate row 0; their accumulators are dropped.
      arow[k] = a + (r0 + (k < nr ? k : 0)) * a_wpr;
    }
    for (size_t t0 = 0; t0 < b_wpr; t0 += kTile) {
      const size_t nt = b_wpr - t0 < kTile ? b_wpr - t0 : kTile;
      const bool full = nt == kTile;
      const __m256i lanemask =
          _mm256_setr_epi64x(-1, nt > 1 ? -1 : 0, nt > 2 ? -1 : 0,
                             nt > 3 ? -1 : 0);
      __m256i acc[kBlockRows] = {_mm256_setzero_si256(),
                                 _mm256_setzero_si256(),
                                 _mm256_setzero_si256(),
                                 _mm256_setzero_si256()};
      for (size_t w = 0; w < a_wpr; ++w) {
        const uint64_t w0 = arow[0][w], w1 = arow[1][w];
        const uint64_t w2 = arow[2][w], w3 = arow[3][w];
        uint64_t live = w0 | w1 | w2 | w3;
        const uint64_t* bbase = b + (w * 64) * b_wpr + t0;
        while (live) {
          const size_t j = static_cast<size_t>(__builtin_ctzll(live));
          live &= live - 1;
          const long long* brow =
              reinterpret_cast<const long long*>(bbase + j * b_wpr);
          const __m256i bv =
              full ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(brow))
                   : _mm256_maskload_epi64(brow, lanemask);
          acc[0] = _mm256_or_si256(
              acc[0], _mm256_and_si256(
                          bv, _mm256_set1_epi64x(
                                  -static_cast<long long>((w0 >> j) & 1))));
          acc[1] = _mm256_or_si256(
              acc[1], _mm256_and_si256(
                          bv, _mm256_set1_epi64x(
                                  -static_cast<long long>((w1 >> j) & 1))));
          acc[2] = _mm256_or_si256(
              acc[2], _mm256_and_si256(
                          bv, _mm256_set1_epi64x(
                                  -static_cast<long long>((w2 >> j) & 1))));
          acc[3] = _mm256_or_si256(
              acc[3], _mm256_and_si256(
                          bv, _mm256_set1_epi64x(
                                  -static_cast<long long>((w3 >> j) & 1))));
        }
      }
      for (size_t k = 0; k < nr; ++k) {
        long long* o =
            reinterpret_cast<long long*>(out + (r0 + k) * b_wpr + t0);
        if (full) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(o), acc[k]);
        } else {
          _mm256_maskstore_epi64(o, lanemask, acc[k]);
        }
      }
    }
  }
}

void ComposeAvx2(const uint64_t* a, size_t a_rows, size_t a_wpr,
                 const uint64_t* b, size_t b_wpr, uint64_t* out) {
  if (a_rows == 0 || b_wpr == 0) return;
  if (a_wpr == 0) {
    ZeroWords(out, a_rows * b_wpr);
    return;
  }
  switch (b_wpr) {
    case 1:
      // Destination rows fit one GPR; the scalar gather is already optimal.
      // Defer to the scalar TU: the same loop compiled under -mavx2 here
      // picks up slower codegen.
      ScalarKernels().compose(a, a_rows, a_wpr, b, b_wpr, out);
      return;
    case 2:
      ComposeStream2Avx2(a, a_rows, a_wpr, b, out);
      return;
    case 3:
    case 4:
      ComposeStreamAvx2<1>(a, a_rows, a_wpr, b, b_wpr, out);
      return;
    case 5:
    case 6:
    case 7:
    case 8:
      ComposeStreamAvx2<2>(a, a_rows, a_wpr, b, b_wpr, out);
      return;
    default:
      if (b_wpr <= 12) {
        ComposeStreamAvx2<3>(a, a_rows, a_wpr, b, b_wpr, out);
      } else if (b_wpr <= 16) {
        ComposeStreamAvx2<4>(a, a_rows, a_wpr, b, b_wpr, out);
      } else {
        ComposeBlockedAvx2(a, a_rows, a_wpr, b, b_wpr, out);
      }
      return;
  }
}

}  // namespace

const BitKernels* Avx2KernelsOrNull() {
  static const BitKernels k = {&OrIntoAvx2,    &ZeroWords,   &AnyAvx2,
                               &PopcountWords, &ComposeAvx2, "avx2"};
  return &k;
}

}  // namespace internal
}  // namespace treenum

#else  // !defined(__AVX2__)

namespace treenum {
namespace internal {
const BitKernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace internal
}  // namespace treenum

#endif
