// Tests for the XPath-style additions to the query library (child axis,
// leaf selection, sibling adjacency), each validated against an independent
// tree-walk reference and exercised under updates.
#include <gtest/gtest.h>

#include "automata/query_library.h"
#include "baseline/naive_engine.h"
#include "circuit/dot_export.h"
#include "core/tree_enumerator.h"
#include "test_util.h"

namespace treenum {
namespace {

std::vector<Assignment> RefChildOf(const UnrankedTree& t, Label a, Label b) {
  std::vector<Assignment> out;
  for (NodeId n : t.PreorderNodes()) {
    if (t.label(n) == b && t.parent(n) != kNoNode &&
        t.label(t.parent(n)) == a) {
      out.push_back(Assignment({{0, n}}));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Assignment> RefLeaves(const UnrankedTree& t) {
  std::vector<Assignment> out;
  for (NodeId n : t.PreorderNodes()) {
    if (t.IsLeaf(n)) out.push_back(Assignment({{0, n}}));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Assignment> RefNextSibling(const UnrankedTree& t, Label a,
                                       Label b) {
  std::vector<Assignment> out;
  for (NodeId p : t.PreorderNodes()) {
    const auto& ch = t.children(p);
    for (size_t i = 0; i + 1 < ch.size(); ++i) {
      if (t.label(ch[i]) == a && t.label(ch[i + 1]) == b) {
        out.push_back(Assignment({{0, ch[i]}, {1, ch[i + 1]}}));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QueryLibraryMore, ChildOfLabelAgainstReference) {
  Rng rng(701);
  for (int trial = 0; trial < 12; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(60), 3, rng);
    TreeEnumerator e(t, QueryChildOfLabel(3, 0, 1));
    EXPECT_EQ(e.EnumerateAll(), RefChildOf(t, 0, 1)) << t.ToString();
  }
}

TEST(QueryLibraryMore, ChildOfLabelRootNeverSelected) {
  UnrankedTree t = UnrankedTree::Parse("(b (a (b)))");
  TreeEnumerator e(t, QueryChildOfLabel(2, 0, 1));
  std::vector<Assignment> res = e.EnumerateAll();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_NE(res[0].singletons()[0].node, t.root());
}

TEST(QueryLibraryMore, SelectLeavesAgainstReference) {
  Rng rng(709);
  for (int trial = 0; trial < 12; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(50), 2, rng);
    TreeEnumerator e(t, QuerySelectLeaves(2));
    EXPECT_EQ(e.EnumerateAll(), RefLeaves(t)) << t.ToString();
  }
}

TEST(QueryLibraryMore, SelectLeavesSingletonTree) {
  UnrankedTree t(0);
  TreeEnumerator e(t, QuerySelectLeaves(2));
  std::vector<Assignment> res = e.EnumerateAll();
  ASSERT_EQ(res.size(), 1u);  // the root is a leaf
}

TEST(QueryLibraryMore, NextSiblingAgainstReference) {
  Rng rng(719);
  for (int trial = 0; trial < 12; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(50), 2, rng);
    TreeEnumerator e(t, QueryNextSibling(2, 0, 1));
    EXPECT_EQ(e.EnumerateAll(), RefNextSibling(t, 0, 1)) << t.ToString();
  }
}

TEST(QueryLibraryMore, NextSiblingTracksSiblingInsertions) {
  // Inserting a node *between* an (a, b) pair must remove the answer;
  // inserting a b right of an a must add one.
  UnrankedTree t = UnrankedTree::Parse("(a (a) (b))");
  TreeEnumerator e(t, QueryNextSibling(2, 0, 1));
  EXPECT_EQ(e.EnumerateAll().size(), 1u);
  NodeId first_child = e.tree().children(e.tree().root())[0];
  e.InsertRightSibling(first_child, 0);  // children: a, a, b
  EXPECT_EQ(e.EnumerateAll().size(), 1u);  // only the (a, b) at the end
  e.InsertRightSibling(first_child, 1);  // children: a, b, a, b
  EXPECT_EQ(e.EnumerateAll().size(), 2u);
  // Breaking an adjacency removes the answer.
  NodeId second = e.tree().children(e.tree().root())[1];
  e.InsertRightSibling(second, 1);  // children: a, b, b, a, b
  EXPECT_EQ(e.EnumerateAll().size(), 2u);  // (a,b)@0-1 and (a,b)@3-4
}

TEST(QueryLibraryMore, LeavesUnderEditScript) {
  Rng rng(727);
  TreeEnumerator e(RandomTree(15, 2, rng), QuerySelectLeaves(2));
  for (int step = 0; step < 60; ++step) {
    std::vector<NodeId> nodes = e.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    if (rng.Flip(0.5)) {
      e.InsertFirstChild(n, static_cast<Label>(rng.Index(2)));
    } else if (n != e.tree().root() && e.tree().IsLeaf(n)) {
      e.DeleteLeaf(n);
    }
    ASSERT_EQ(e.EnumerateAll(), RefLeaves(e.tree())) << "step " << step;
  }
}

TEST(DotExport, ProducesWellFormedOutput) {
  UnrankedTree t = UnrankedTree::Parse("(a (b) (c))");
  TreeEnumerator e(t, QuerySelectLabel(3, 1));
  std::string term_dot = TermToDot(e.term());
  EXPECT_NE(term_dot.find("digraph term"), std::string::npos);
  EXPECT_NE(term_dot.find(".VH"), std::string::npos);
  std::string circuit_dot = CircuitToDot(e.circuit());
  EXPECT_NE(circuit_dot.find("digraph circuit"), std::string::npos);
  EXPECT_NE(circuit_dot.find("cluster_"), std::string::npos);
  // Every cluster for every alive term node.
  size_t clusters = 0;
  for (size_t pos = 0; (pos = circuit_dot.find("subgraph", pos)) !=
                       std::string::npos;
       ++pos) {
    ++clusters;
  }
  EXPECT_EQ(clusters, e.term().num_alive());
}

}  // namespace
}  // namespace treenum
