#include "core/engine.h"

namespace treenum {

UpdateStats Engine::ApplyEdit(const Edit& e, NodeId* new_node) {
  switch (e.kind) {
    case Edit::Kind::kRelabel:
      return Relabel(e.node, e.label);
    case Edit::Kind::kInsertFirstChild:
      return InsertFirstChild(e.node, e.label, new_node);
    case Edit::Kind::kInsertRightSibling:
      return InsertRightSibling(e.node, e.label, new_node);
    case Edit::Kind::kDeleteLeaf:
      return DeleteLeaf(e.node);
  }
  return UpdateStats{};
}

UpdateStats Engine::ApplyEdits(const std::vector<Edit>& edits) {
  const bool own_batch = !in_batch();
  if (own_batch) BeginBatch();
  UpdateStats total;
  for (const Edit& e : edits) total += ApplyEdit(e);
  if (own_batch) total += CommitBatch();
  total.edits_applied = edits.size();
  return total;
}

}  // namespace treenum
