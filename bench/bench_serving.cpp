// Open-loop serving load harness (BENCH_serving.json).
//
// Unlike the google-benchmark suites, this binary models a *served* system:
// a DocumentShardServer with S shard workers hosting D tenant documents,
// driven by a fixed-rate open-loop generator. Closed-loop benchmarks hide
// queueing delay (the generator waits for the system), so tail latency
// looks flat right up to collapse; an open-loop generator schedules
// arrivals on a Poisson clock independent of service times, and the
// submit→commit latency recorded by the server therefore *includes* the
// queueing the load actually causes.
//
// Two phases per (S, D) configuration:
//
//   1. Saturation: a fixed command budget is submitted as fast as the
//      generator can go, then Drain() — the wall time gives the sustained
//      commands/sec ceiling for this configuration.
//   2. Open-loop latency: the same mixed workload (edits + structural
//      transactions + query churn) replayed at a fixed fraction of the
//      measured ceiling on Poisson arrivals, while reader threads pin
//      snapshots and enumerate on their own threads (never queued behind
//      edits). Per-command submit→commit latencies come from the server's
//      per-shard lock-free histograms; enumeration latencies are recorded
//      by the readers into a shared histogram.
//
// Knobs (env):
//   TREENUM_SERVING_SMOKE=1      CI smoke: tiny budgets, S={1,2}, D={16}
//   TREENUM_SERVING_CMDS=N       commands per phase per configuration
//   TREENUM_SERVING_DOC_SIZE=N   initial nodes per document
//   TREENUM_SERVING_SHARDS=a,b   shard counts to sweep
//   TREENUM_SERVING_DOCS=a,b     document counts to sweep
//   TREENUM_SERVING_LOAD=f       open-loop rate as a fraction of the
//                                measured ceiling (default 0.6)
//   TREENUM_BENCH_JSON=path      append one JSON line per configuration
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "automata/query_cache.h"
#include "automata/query_library.h"
#include "bench_util.h"
#include "core/document.h"
#include "serving/shard_server.h"
#include "serving/workload.h"
#include "util/latency_histogram.h"

namespace treenum {
namespace {

using serving::CommandScript;
using serving::DocCommand;
using serving::DocumentShardServer;
using serving::PoissonArrivals;
using serving::WorkloadOptions;

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  return v ? static_cast<size_t>(std::strtoull(v, nullptr, 10)) : def;
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v ? std::strtod(v, nullptr) : def;
}

std::vector<size_t> EnvSizeList(const char* name,
                                std::vector<size_t> def) {
  const char* v = std::getenv(name);
  if (!v) return def;
  std::vector<size_t> out;
  for (const char* p = v; *p != '\0';) {
    out.push_back(static_cast<size_t>(std::strtoull(p, nullptr, 10)));
    const char* comma = std::strchr(p, ',');
    if (!comma) break;
    p = comma + 1;
  }
  return out.empty() ? def : out;
}

double Us(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// One tenant document being served: its server ref, persistent query
/// registration, churn slot, and the deterministic command script.
struct Tenant {
  DocumentShardServer::DocRef doc;
  DocumentShardServer::QueryRef query;
  DynamicDocument::QueryHandle churn_handle = 0;
  bool churn_live = false;
  CommandScript script;

  Tenant(DocumentShardServer::DocRef d, DocumentShardServer::QueryRef q,
         CommandScript s)
      : doc(d), query(q), script(std::move(s)) {}
};

/// Maps one generated command onto the server. Register/unregister churn
/// markers register a second, distinct query (deduplication makes repeats
/// cheap re-admissions, which is the churn pattern being modeled).
void SubmitCommand(DocumentShardServer& server, Tenant& t,
                   const UnrankedTva& churn_query, const DocCommand& c) {
  switch (c.kind) {
    case DocCommand::Kind::kEdit:
      server.SubmitEdit(t.doc, c.edit);
      break;
    case DocCommand::Kind::kStructural:
      server.SubmitStructural(t.doc, c.structural);
      break;
    case DocCommand::Kind::kRegister:
      t.churn_handle = server.RegisterQuery(t.doc, churn_query).handle;
      t.churn_live = true;
      break;
    case DocCommand::Kind::kUnregister:
      if (t.churn_live) {
        server.UnregisterQuery(t.doc, t.churn_handle);
        t.churn_live = false;
      }
      break;
  }
}

struct PhaseResult {
  uint64_t submitted = 0;
  double wall_s = 0;
  double rate_eps = 0;  ///< mutation commands per second
};

/// Reader thread body: pin → existence check → bounded cursor drain,
/// recording wall latency per enumeration into `hist`.
void ReaderLoop(DocumentShardServer& server, std::vector<Tenant>& tenants,
                std::atomic<bool>& stop, uint64_t seed,
                LatencyHistogram& hist, std::atomic<uint64_t>& answers) {
  Rng rng(seed);
  while (!stop.load(std::memory_order_acquire)) {
    Tenant& t = tenants[rng.Index(tenants.size())];
    const uint64_t t0 = DocumentShardServer::NowNs();
    SnapshotRef snap = server.Pin(t.doc);
    uint64_t local = 0;
    if (t.query.view.HasAnswerAt(snap)) {
      auto cursor = t.query.view.MakeCursorAt(snap);
      Assignment a;
      for (size_t k = 0; k < 8 && cursor->Next(&a); ++k) ++local;
    }
    snap.Reset();
    hist.Record(DocumentShardServer::NowNs() - t0);
    answers.fetch_add(local, std::memory_order_relaxed);
    // Modest pacing so readers probe rather than saturate the host.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void RunConfig(size_t shards, size_t docs, size_t doc_size, size_t cmds,
               double load_factor, size_t readers, double structural_frac,
               double churn_frac) {
  DocumentShardServer::Options so;
  so.shards = shards;
  DocumentShardServer server(so);

  WorkloadOptions wo;
  wo.num_labels = 3;
  wo.structural_fraction = structural_frac;
  wo.churn_fraction = churn_frac;

  const UnrankedTva query = bench::StandardQuery();
  const UnrankedTva churn_query = QuerySelectLabel(3, 1);

  std::vector<Tenant> tenants;
  tenants.reserve(docs);
  for (size_t i = 0; i < docs; ++i) {
    Rng rng(bench::kSeed + i);
    UnrankedTree tree = RandomTree(doc_size, 3, rng);
    auto doc = server.AddDocument(tree, 3);
    auto q = server.RegisterQuery(doc, query);
    tenants.emplace_back(doc, q,
                         CommandScript(std::move(tree), bench::kSeed ^ i, wo));
  }

  // ---- Phase 1: saturation (fixed budget, submit flat out, drain) ----
  PhaseResult sat;
  {
    const uint64_t t0 = DocumentShardServer::NowNs();
    for (size_t k = 0; k < cmds; ++k) {
      Tenant& t = tenants[k % tenants.size()];
      SubmitCommand(server, t, churn_query, t.script.Next());
    }
    server.Drain();
    const uint64_t t1 = DocumentShardServer::NowNs();
    sat.submitted = cmds;
    sat.wall_s = static_cast<double>(t1 - t0) / 1e9;
    sat.rate_eps = static_cast<double>(cmds) / sat.wall_s;
  }
  server.ResetEditLatency();

  // ---- Phase 2: open-loop latency at a fraction of the ceiling ----
  const double target_rate = sat.rate_eps * load_factor;
  LatencyHistogram enum_hist;
  std::atomic<uint64_t> enum_answers{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> reader_threads;
  for (size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      ReaderLoop(server, tenants, stop, bench::kSeed + 1000 + r, enum_hist,
                 enum_answers);
    });
  }

  PhaseResult open;
  {
    PoissonArrivals arrivals(target_rate, bench::kSeed + 7);
    const uint64_t t0 = DocumentShardServer::NowNs();
    uint64_t next = t0;
    for (size_t k = 0; k < cmds; ++k) {
      next += arrivals.NextGapNs();
      // Open loop: the arrival schedule never waits for the system. If we
      // are behind, submit immediately (the backlog is the point).
      for (;;) {
        const uint64_t now = DocumentShardServer::NowNs();
        if (now >= next) break;
        const uint64_t gap = next - now;
        if (gap > 100000) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(gap - 50000));
        }
      }
      Tenant& t = tenants[k % tenants.size()];
      SubmitCommand(server, t, churn_query, t.script.Next());
    }
    server.Drain();
    const uint64_t t1 = DocumentShardServer::NowNs();
    open.submitted = cmds;
    open.wall_s = static_cast<double>(t1 - t0) / 1e9;
    open.rate_eps = static_cast<double>(cmds) / open.wall_s;
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : reader_threads) th.join();

  LatencyHistogram edit_hist;
  server.MergeEditLatency(&edit_hist);
  const DocumentShardServer::Stats stats = server.stats();

  const double p50 = Us(edit_hist.Quantile(0.50));
  const double p99 = Us(edit_hist.Quantile(0.99));
  const double p999 = Us(edit_hist.Quantile(0.999));
  const double ep50 = Us(enum_hist.Quantile(0.50));
  const double ep99 = Us(enum_hist.Quantile(0.99));

  std::printf(
      "serving S=%zu docs=%zu size=%zu cmds=%zu | sustained %.0f cmd/s "
      "(drain %.2fs) | open-loop @%.0f/s: p50 %.1fus p99 %.1fus p999 %.1fus "
      "| enum n=%" PRIu64 " p50 %.1fus p99 %.1fus | steals %" PRIu64
      " commits %" PRIu64 " structural %" PRIu64 "\n",
      shards, docs, doc_size, cmds, sat.rate_eps, sat.wall_s, target_rate,
      p50, p99, p999, enum_hist.count(), ep50, ep99, stats.steals,
      stats.commits, stats.structural_applied);

  bench::EmitJson(
      "serving",
      {{"shards", static_cast<double>(shards)},
       {"docs", static_cast<double>(docs)},
       {"doc_size", static_cast<double>(doc_size)},
       {"commands", static_cast<double>(cmds)},
       {"sustained_eps", sat.rate_eps},
       {"sat_wall_s", sat.wall_s},
       {"target_eps", target_rate},
       {"open_eps", open.rate_eps},
       {"p50_us", p50},
       {"p99_us", p99},
       {"p999_us", p999},
       {"enum_count", static_cast<double>(enum_hist.count())},
       {"enum_p50_us", ep50},
       {"enum_p99_us", ep99},
       {"steals", static_cast<double>(stats.steals)},
       {"commits", static_cast<double>(stats.commits)},
       {"edits", static_cast<double>(stats.edits_applied)},
       {"structural", static_cast<double>(stats.structural_applied)},
       {"registers", static_cast<double>(stats.registers)},
       {"unregisters", static_cast<double>(stats.unregisters)}});
}

// ---- Warm-start phase (serving_warmstart series) ----
//
// Cold: the whole query library registered on a fresh document through a
// fresh QueryCache — each registration pays translation, determinization,
// homogenization and canonicalization before the pipeline is built. The
// cache image is then serialized (SaveCache) and restored into a second
// cache (WarmStart); re-registering the same library on a new document
// pays only the pipeline build. The cold/warm latency ratio is the
// restart-time win a server gets from shipping its compiled-plan cache.
void RunWarmStart(size_t doc_size) {
  std::vector<UnrankedTva> library;
  library.push_back(QuerySelectLabel(3, 1));
  library.push_back(QuerySelectAll(3));
  library.push_back(QueryMarkedAncestor(3, 1, 2));
  library.push_back(QueryDescendantPairs(3, 0, 1));
  library.push_back(QueryContainsLabel(3, 2));
  library.push_back(QueryAnySubsetOfLabel(3, 0));
  // Compile cost grows exponentially with the distance k while the
  // per-document pipeline cost only tracks the final automaton, so this
  // query dominates the cold leg — exactly the plan a warm start saves.
  library.push_back(QueryAncestorAtDistance(3, 1, 6));
  library.push_back(QueryChildOfLabel(3, 0, 2));
  library.push_back(QuerySelectLeaves(3));
  library.push_back(QueryNextSibling(3, 1, 0));

  Rng rng(bench::kSeed + 31);
  UnrankedTree tree = RandomTree(doc_size, 3, rng);

  QueryCache cold_cache;
  uint64_t cold_ns = 0;
  {
    DynamicDocument doc(tree, 3, &cold_cache);
    for (const UnrankedTva& q : library) {
      const uint64_t t0 = DocumentShardServer::NowNs();
      doc.Register(q);
      cold_ns += DocumentShardServer::NowNs() - t0;
    }
  }

  std::stringstream image(std::ios::in | std::ios::out | std::ios::binary);
  if (!cold_cache.SaveCache(image)) {
    std::fprintf(stderr, "warmstart: SaveCache failed\n");
    return;
  }
  const size_t image_bytes = image.str().size();

  QueryCache warm_cache;
  std::string error;
  const size_t admitted = warm_cache.WarmStart(image, &error);
  if (admitted != library.size()) {
    std::fprintf(stderr, "warmstart: restored %zu/%zu plans (%s)\n", admitted,
                 library.size(), error.c_str());
    return;
  }

  uint64_t warm_ns = 0;
  {
    DynamicDocument doc(tree, 3, &warm_cache);
    for (const UnrankedTva& q : library) {
      const uint64_t t0 = DocumentShardServer::NowNs();
      doc.Register(q);
      warm_ns += DocumentShardServer::NowNs() - t0;
    }
  }
  const QueryCache::Stats ws = warm_cache.stats();

  const double speedup =
      warm_ns > 0 ? static_cast<double>(cold_ns) / static_cast<double>(warm_ns)
                  : 0.0;
  std::printf(
      "serving_warmstart size=%zu queries=%zu | cold %.1fus warm %.1fus "
      "(%.1fx) | image %zu bytes | warm translations %" PRIu64 "\n",
      doc_size, library.size(), Us(cold_ns), Us(warm_ns), speedup, image_bytes,
      static_cast<uint64_t>(ws.translations));

  bench::EmitJson("serving_warmstart",
                  {{"doc_size", static_cast<double>(doc_size)},
                   {"queries", static_cast<double>(library.size())},
                   {"cold_register_us", Us(cold_ns)},
                   {"warm_register_us", Us(warm_ns)},
                   {"speedup", speedup},
                   {"image_bytes", static_cast<double>(image_bytes)},
                   {"warm_translations", static_cast<double>(ws.translations)}});
}

}  // namespace
}  // namespace treenum

int main() {
  using namespace treenum;
  const bool smoke = EnvSize("TREENUM_SERVING_SMOKE", 0) != 0;
  const size_t cmds = EnvSize("TREENUM_SERVING_CMDS", smoke ? 1500 : 20000);
  const size_t doc_size =
      EnvSize("TREENUM_SERVING_DOC_SIZE", smoke ? 96 : 256);
  const double load = EnvDouble("TREENUM_SERVING_LOAD", 0.6);
  const size_t readers = smoke ? 1 : 2;
  std::vector<size_t> shard_list = EnvSizeList(
      "TREENUM_SERVING_SHARDS",
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 4, 8});
  std::vector<size_t> docs_list =
      EnvSizeList("TREENUM_SERVING_DOCS", smoke ? std::vector<size_t>{16}
                                                : std::vector<size_t>{16, 256});
  RunWarmStart(/*doc_size=*/32);
  for (size_t docs : docs_list) {
    for (size_t shards : shard_list) {
      RunConfig(shards, docs, doc_size, cmds, load, readers,
                /*structural_frac=*/0.05, /*churn_frac=*/0.01);
    }
  }
  return 0;
}
