// Concurrency stress for the copy-on-write snapshot layer: one writer
// thread streams batched edits while reader threads pin snapshots and
// enumerate, checking every answer set against per-version oracles
// precomputed by replaying the same edit script single-threaded. Run
// under TSan in CI (the debug-tsan job) — the interesting assertions here
// are the ones the sanitizer makes, not just the EXPECTs.
//
// Version bookkeeping: the document constructor publishes epoch 0 and
// each batch commit publishes the next epoch, so a pinned snapshot's
// epoch() indexes the expected-answers table directly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "automata/query_library.h"
#include "automata/regex_spanner.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "core/word_enumerator.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace treenum {
namespace {

constexpr int kReaders = 4;
constexpr size_t kMinIterations = 10;  // per reader before the writer stops

Wva SomeBPosition() {
  // a*<x:b>(a|b)* — select every b position.
  Wva a(2, 2, 1);
  a.AddInitial(0);
  a.AddTransition(0, 0, 0, 0);
  a.AddTransition(0, 1, 0, 0);
  a.AddTransition(0, 1, 1, 1);
  a.AddTransition(1, 0, 0, 1);
  a.AddTransition(1, 1, 0, 1);
  a.AddFinal(1);
  return a;
}

// Readers loop {pin, enumerate, compare against expected[epoch]} until the
// writer signals done; mismatches are counted (not EXPECTed — gtest
// assertions are not thread-safe) and reported after the join. Reader 0
// additionally re-verifies a version-0 pin every iteration (time travel
// under write pressure).
struct ReaderState {
  std::atomic<bool> done{false};
  std::atomic<size_t> iterations{0};
  std::atomic<size_t> mismatches{0};
};

TEST(SnapshotStress, TreeReadersRaceBatchedWriter) {
  Rng rng(201);
  UnrankedTree tree = RandomTree(40, 3, rng);
  const UnrankedTva q1 = QuerySelectLabel(3, 1);
  const UnrankedTva q2 = QueryMarkedAncestor(3, 1, 2);

  // Precompute the edit script and the per-version answer tables.
  constexpr int kBatches = 60;
  constexpr int kBatchSize = 4;
  ScriptedEditor script(tree, 3001, 3);
  std::vector<std::vector<Edit>> batches;
  std::vector<std::vector<Assignment>> expected1, expected2;
  {
    StaticEngine oracle1(tree, q1), oracle2(tree, q2);
    expected1.push_back(oracle1.EnumerateAll());
    expected2.push_back(oracle2.EnumerateAll());
    for (int j = 0; j < kBatches; ++j) {
      std::vector<Edit> batch;
      for (int i = 0; i < kBatchSize; ++i) batch.push_back(script.NextEdit());
      oracle1.ApplyEdits(batch);
      oracle2.ApplyEdits(batch);
      expected1.push_back(oracle1.EnumerateAll());
      expected2.push_back(oracle2.EnumerateAll());
      batches.push_back(std::move(batch));
    }
  }

  DynamicDocument doc(tree, 3);
  ThreadPool pool(2);  // refresh fan-out races the readers too
  doc.set_pool(&pool);
  DynamicDocument::QueryHandle h1 = doc.Register(q1);
  DynamicDocument::QueryHandle h2 = doc.Register(q2);

  ReaderState state;
  SnapshotRef genesis = doc.CurrentSnapshot();
  ASSERT_EQ(genesis.epoch(), 0u);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SnapshotRef time_travel = r == 0 ? genesis : SnapshotRef();
      while (!state.done.load(std::memory_order_acquire)) {
        SnapshotRef snap = doc.CurrentSnapshot();
        const size_t v = static_cast<size_t>(snap.epoch());
        if (doc.EnumerateAt(snap, h1) != expected1[v] ||
            doc.EnumerateAt(snap, h2) != expected2[v] ||
            doc.HasAnswerAt(snap, h1) != !expected1[v].empty()) {
          state.mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (time_travel && doc.EnumerateAt(time_travel, h1) != expected1[0]) {
          state.mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        state.iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer (this thread): pace the batches against reader progress so the
  // interleaving is real under any scheduler, then keep readers spinning
  // until each has done a minimum amount of verified work.
  for (int j = 0; j < kBatches; ++j) {
    while (state.iterations.load(std::memory_order_relaxed) <
           static_cast<size_t>(j) / 2) {
      std::this_thread::yield();
    }
    doc.ApplyEdits(batches[j]);
  }
  while (state.iterations.load(std::memory_order_relaxed) <
         kMinIterations * kReaders) {
    std::this_thread::yield();
  }
  state.done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(state.mismatches.load(), 0u);
  EXPECT_GE(state.iterations.load(), kMinIterations * kReaders);
  // The writer-side view stayed coherent too.
  EXPECT_EQ(doc.EnumerateAt(doc.CurrentSnapshot(), h1), expected1[kBatches]);
  EXPECT_EQ(doc.EnumerateAt(genesis, h1), expected1[0]);
  EXPECT_EQ(doc.snapshots_published(), static_cast<uint64_t>(kBatches) + 1);
}

TEST(SnapshotStress, WordReadersRaceBatchedWriter) {
  const Word w = ToWord("abababababab");
  const Wva q = SomeBPosition();

  // Replace-only script (positions stay stable), precomputed per version
  // by replaying a second enumerator.
  constexpr int kBatches = 40;
  constexpr int kBatchSize = 3;
  Rng rng(211);
  std::vector<std::vector<std::pair<size_t, Label>>> batches;
  std::vector<std::vector<Assignment>> expected;
  {
    WordEnumerator replay(w, q);
    expected.push_back(replay.EnumerateAll());
    for (int j = 0; j < kBatches; ++j) {
      std::vector<std::pair<size_t, Label>> batch;
      for (int i = 0; i < kBatchSize; ++i) {
        batch.emplace_back(rng.Index(w.size()),
                           static_cast<Label>(rng.Index(2)));
      }
      replay.BeginBatch();
      for (const auto& e : batch) replay.Replace(e.first, e.second);
      replay.CommitBatch();
      expected.push_back(replay.EnumerateAll());
      batches.push_back(std::move(batch));
    }
  }

  WordEnumerator e(w, q);
  ReaderState state;
  SnapshotRef genesis = e.CurrentSnapshot();

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SnapshotRef time_travel = r == 0 ? genesis : SnapshotRef();
      while (!state.done.load(std::memory_order_acquire)) {
        SnapshotRef snap = e.CurrentSnapshot();
        const size_t v = static_cast<size_t>(snap.epoch());
        if (e.EnumerateAt(snap) != expected[v]) {
          state.mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (time_travel && e.EnumerateAt(time_travel) != expected[0]) {
          state.mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        state.iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int j = 0; j < kBatches; ++j) {
    while (state.iterations.load(std::memory_order_relaxed) <
           static_cast<size_t>(j) / 2) {
      std::this_thread::yield();
    }
    e.BeginBatch();
    for (const auto& ed : batches[j]) e.Replace(ed.first, ed.second);
    e.CommitBatch();
  }
  while (state.iterations.load(std::memory_order_relaxed) <
         kMinIterations * kReaders) {
    std::this_thread::yield();
  }
  state.done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(state.mismatches.load(), 0u);
  EXPECT_EQ(e.EnumerateAt(e.CurrentSnapshot()), expected[kBatches]);
  EXPECT_EQ(e.EnumerateAt(genesis), expected[0]);
}

}  // namespace
}  // namespace treenum
