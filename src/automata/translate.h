// Automaton translation (Lemma 7.4 and Corollary 8.4).
//
// Translates an unranked stepwise TVA A with state space Q into a binary TVA
// A' over the forest-algebra term alphabet Λ' such that for every unranked
// tree T and every term T' representing T, A accepts T under ν iff A'
// accepts T' under ν ∘ φ (where φ maps term leaves to tree nodes).
//
// States of A' are the reachable subset of Q² ∪ (Q²)²:
//  * a forest-typed node gets state (q1, q2): "reading the root states of
//    this forest takes the parent automaton from q1 to q2";
//  * a context-typed node gets state ((o1, o2), (h1, h2)): "if the hole is
//    filled by a forest taking h1 to h2, the whole context's roots take o1
//    to o2".
//
// Only states reachable by the least fixpoint of the seed/closure rules are
// materialized, which keeps the automaton near the paper's trimmed size.
#ifndef TREENUM_AUTOMATA_TRANSLATE_H_
#define TREENUM_AUTOMATA_TRANSLATE_H_

#include <vector>

#include "automata/binary_tva.h"
#include "automata/unranked_tva.h"
#include "automata/wva.h"
#include "falgebra/alphabet.h"

namespace treenum {

/// The translated automaton plus state bookkeeping used by tests.
struct TranslatedTva {
  BinaryTva tva;
  TermAlphabet alphabet;
  /// For each new state: is it a forest-pair state (vs. a context quad)?
  std::vector<bool> is_pair;
  /// For pair states: the (q1, q2) pair over the augmented state space of A
  /// (where the last two states are the fresh q0, qf).
  std::vector<std::pair<State, State>> pair_of;
};

/// Lemma 7.4 (last bullet): unranked TVA → binary TVA over Λ'.
/// The result accepts a well-formed term iff A accepts the represented tree
/// (under the corresponding valuation); its final state is the pair (q0, qf)
/// from the w.l.o.g. augmentation of the proof.
TranslatedTva TranslateUnrankedTva(const UnrankedTva& a);

/// Corollary 8.4: WVA → binary TVA over the word term alphabet (only a_t
/// leaves and ⊕HH), with O(|Q|²) states and O(|Q|³) transitions. Final
/// states are all pairs (i, f) with i initial and f final.
TranslatedTva TranslateWva(const Wva& a);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_TRANSLATE_H_
