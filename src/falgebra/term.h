// Forest algebra pre-terms and terms (§7 and Appendix E of the paper).
//
// A term is a binary tree whose leaves are a_t / a_□ symbols and whose
// internal nodes are the five operators ⊕HH, ⊕HV, ⊕VH, ⊙VV, ⊙VH. Each node
// is typed as a forest or a context; a term represents an unranked forest
// (here: always a single tree, the encoded input tree).
//
// Invariant maintained by this library (used by updates and rebuilds): the
// hole of every context is the *entire child-forest slot* of the tree node
// carried by its a_□ leaf. Equivalently, every context piece is of the form
// "subtree of T rooted at u, with everything strictly below w removed", for
// a node w in that subtree; the hole sits where w's children go.
//
// Versioning (copy-on-write snapshots): every node carries a reference count
// and the edit epoch it was created in. While at least one snapshot root is
// pinned (PinRoot), mutating an old-epoch node first path-copies it with
// EnsureMutable — the copy gets the current epoch, the frozen original keeps
// serving pinned snapshot readers. Reference counts track parent edges
// across all live versions plus the root slot plus snapshot pins; a count
// that drops to zero is queued and reclaimed by SweepZeros at the end of the
// edit, cascading into unreachable children. With no pins the term behaves
// exactly like the historical in-place encoding (no copies are ever made).
#ifndef TREENUM_FALGEBRA_TERM_H_
#define TREENUM_FALGEBRA_TERM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "falgebra/alphabet.h"
#include "trees/unranked_tree.h"
#include "util/cow_store.h"

namespace treenum {

using TermNodeId = uint32_t;
inline constexpr TermNodeId kNoTerm = static_cast<TermNodeId>(-1);

/// A node of a forest algebra term.
struct TermNode {
  Label label = 0;           ///< Symbol in Λ' (leaf symbol or operator).
  TermNodeId left = kNoTerm;
  TermNodeId right = kNoTerm;
  TermNodeId parent = kNoTerm;  ///< Current-version navigation (writer only).
  NodeId tree_node = kNoNode;  ///< For leaf symbols: the represented T-node.
  uint32_t size = 0;           ///< Number of leaf symbols below (incl. self).
  uint32_t height = 0;         ///< Height of the subterm (leaf = 0).
  uint32_t refs = 0;   ///< Parent edges over all live versions + root + pins.
  uint32_t epoch = 0;  ///< Edit epoch this node version was created in.
  bool is_context = false;     ///< Type: context vs. forest.
  bool alive = false;
};

/// A mutable forest algebra term with stable node ids.
///
/// The term is the binary tree the assignment circuit of §3 is built on:
/// circuit boxes are indexed by TermNodeId. All structural operations keep
/// size/height of the affected nodes consistent (callers use RecomputeUp for
/// path updates after splices).
///
/// Single-writer / multi-reader: all mutators run on one writer thread.
/// Reader threads may concurrently call node()/IsLeaf()/IsAlive() on node
/// ids reachable from a pinned snapshot root — those versions are frozen
/// (never mutated, never freed) until the pin is released. Node storage is
/// a CowStore, so writer growth never invalidates reader pointers.
class Term {
 public:
  explicit Term(const TermAlphabet& alphabet) : alphabet_(alphabet) {}

  const TermAlphabet& alphabet() const { return alphabet_; }

  TermNodeId root() const { return root_; }
  void set_root(TermNodeId r);

  const TermNode& node(TermNodeId id) const { return nodes_[id]; }
  bool IsAlive(TermNodeId id) const {
    return id < nodes_.size() && nodes_[id].alive;
  }
  bool IsLeaf(TermNodeId id) const { return nodes_[id].left == kNoTerm; }
  size_t num_alive() const { return num_alive_; }
  /// Upper bound over all ids ever allocated (for dense side arrays).
  size_t id_bound() const { return nodes_.size(); }

  /// Creates a leaf symbol node (a_t or a_□) for tree node `n`.
  TermNodeId NewLeaf(Label symbol, NodeId n);

  /// Creates an operator node over two existing root-less nodes; sets parent
  /// pointers and computes size/height/type. Children must not already have
  /// a parent.
  TermNodeId NewNode(TermOp op, TermNodeId left, TermNodeId right);

  /// Replaces subterm `old_id` by `new_id` in old's parent (or as root).
  /// `old_id` keeps its subtree and becomes detached (its reference count
  /// drops; if it reaches zero the subtree is reclaimed by SweepZeros).
  /// Path-copies the parent first if it is frozen.
  void ReplaceChild(TermNodeId old_id, TermNodeId new_id);

  /// Replaces `existing` (in place, inside its parent) by a new operator
  /// node combining `existing` with the detached subterm `fresh`:
  /// op(fresh, existing) if fresh_on_left, else op(existing, fresh).
  /// Returns the new operator node. Does not recompute ancestor counters.
  /// Path-copies the parent first if it is frozen.
  TermNodeId SpliceOp(TermOp op, TermNodeId existing, TermNodeId fresh,
                      bool fresh_on_left);

  // ---- Join/split primitives (structural transactions) ----

  /// Joins two detached subterms under the concatenation operator dictated
  /// by their types (⊕HH / ⊕HV / ⊕VH; at most one operand may be a
  /// context). Returns the new detached operator node. This is the base
  /// step of every join-based bulk operation: the word AVL join, the piece
  /// encoder's forest concatenation, and the tree subtree transactions all
  /// funnel through it.
  TermNodeId JoinDetached(TermNodeId left, TermNodeId right);

  /// Splits a detached internal node into its two children: detaches both
  /// child parent pointers (pointer-only) and returns {left, right}. The
  /// dismantled node `t` keeps its child references until it is reclaimed
  /// by SweepZeros (or kept alive by a pinned snapshot), exactly like the
  /// scaffolding nodes of the word AVL split.
  std::pair<TermNodeId, TermNodeId> SplitChildren(TermNodeId t);

  /// Queues a detached subterm the caller no longer wants (e.g. the middle
  /// factor of an erase-range) for the end-of-edit sweep. A freshly built
  /// subterm has a zero reference count and would otherwise never enter the
  /// sweep queue; a subterm still referenced by dismantled scaffolding or a
  /// pinned snapshot is left to the normal cascade.
  void ReleaseDetached(TermNodeId id);

  /// Low-level re-linking used by AVL rotations on ⊕HH chains (word terms):
  /// sets both children of `id`, fixes parent pointers, and recomputes the
  /// node's counters. Caller is responsible for type correctness and for
  /// `id` being mutable (EnsureMutable).
  void SetChildrenRaw(TermNodeId id, TermNodeId l, TermNodeId r);

  /// Sets one child slot of `parent` to `child` and fixes child's parent
  /// pointer. Does not recompute counters. `parent` must be mutable.
  void SetChildSlot(TermNodeId parent, bool left_slot, TermNodeId child);

  /// Detaches `id` from its parent pointer (the parent's child slot is NOT
  /// updated — used when dismantling a node whose children move elsewhere).
  /// Pointer-only: reference counts are adjusted when the parent's slot is
  /// overwritten or the parent is reclaimed.
  void ClearParent(TermNodeId id);

  /// Changes the label of a node in place (used by relabelings and by the
  /// context→forest retyping walk of leaf deletion). `id` must be mutable.
  void SetLabel(TermNodeId id, Label label);
  void SetTreeNode(TermNodeId id, NodeId n);
  void SetContext(TermNodeId id, bool is_context);

  /// Recomputes size/height from `id` upward to the root; appends the
  /// visited ids (bottom-up, starting at id) to `path` if non-null.
  void RecomputeUp(TermNodeId id, std::vector<TermNodeId>* path = nullptr);

  /// Frees the node `id` only (not its subtree). Raw primitive that bypasses
  /// reference counts — must not be used while snapshots are pinned.
  void FreeNode(TermNodeId id);
  /// Frees the whole subtree rooted at `id`; appends freed ids if non-null.
  /// Raw primitive bypassing reference counts (see FreeNode).
  void FreeSubterm(TermNodeId id, std::vector<TermNodeId>* freed = nullptr);

  // ---- Copy-on-write snapshot support ----

  /// True iff `id` must not be mutated in place: some snapshot is pinned and
  /// this node version predates the current edit epoch. Conservative — the
  /// node may not actually be reachable from any pinned root; useless copies
  /// are reclaimed by the end-of-edit sweep.
  bool frozen(TermNodeId id) const {
    return live_pins_ > 0 &&
           nodes_[id].epoch != static_cast<uint32_t>(cur_epoch_);
  }

  /// Returns a mutable version of `id`: `id` itself when not frozen, else a
  /// path-copy (the copy's ancestors are copied too, up to the root / first
  /// already-mutable ancestor). Records (old, new) pairs in remap_log().
  TermNodeId EnsureMutable(TermNodeId id);

  /// Starts an edit: clears the remap log. Each public edit operation of the
  /// encodings calls this once on entry.
  void BeginEdit() { remap_log_.clear(); }

  /// (old, new) id pairs produced by EnsureMutable since BeginEdit — used by
  /// the encodings to fix their leaf/position maps.
  const std::vector<std::pair<TermNodeId, TermNodeId>>& remap_log() const {
    return remap_log_;
  }

  /// Reclaims every queued zero-reference node, cascading into children
  /// whose counts drop to zero; appends freed ids if non-null. Called at the
  /// end of each edit operation and after UnpinRoot.
  void SweepZeros(std::vector<TermNodeId>* freed = nullptr);

  /// Pins `r` as a snapshot root: readers may traverse the version rooted at
  /// `r` until UnpinRoot. Bumps r's reference count and the live-pin gauge.
  void PinRoot(TermNodeId r);
  /// Releases a snapshot pin and reclaims newly unreachable versions
  /// (appended to `freed` if non-null). Writer thread only.
  void UnpinRoot(TermNodeId r, std::vector<TermNodeId>* freed = nullptr);
  /// Number of currently pinned snapshot roots.
  size_t live_pins() const { return live_pins_; }

  uint64_t epoch() const { return cur_epoch_; }
  /// Advances the edit epoch — called by the snapshot layer right after
  /// publishing, so nodes created before the publish freeze.
  void BumpEpoch() { ++cur_epoch_; }

  /// Lifetime number of path-copied nodes (perf gauge).
  uint64_t path_copies() const { return path_copies_; }
  /// Lifetime number of node slots recycled through the free list.
  uint64_t nodes_recycled() const { return nodes_recycled_; }
  /// Reference count of a node (tests).
  uint32_t refs(TermNodeId id) const { return nodes_[id].refs; }

  /// Decodes the represented forest; requires the term to be well-formed and
  /// forest-typed with a single represented tree. Labels come from the leaf
  /// symbols; the returned tree's node ids are fresh, and `term_to_tree`
  /// (indexed by leaf TermNodeId) receives the new NodeId of each leaf
  /// symbol if non-null.
  UnrankedTree Decode(std::vector<NodeId>* term_to_tree = nullptr) const;

  /// Decodes the version rooted at `r` instead of the current root
  /// (time-travel test helper; `r` must be a pinned snapshot root).
  UnrankedTree DecodeAt(TermNodeId r,
                        std::vector<NodeId>* term_to_tree = nullptr) const;

  /// Validates structural invariants: typing of all five operators, leaf
  /// symbols, parent pointers, size/height counters. Returns an empty string
  /// if valid, else a description of the first violation. (Test helper.)
  std::string Validate() const;

  /// Deep validation for the transaction tests, mirroring ValidateStorage
  /// in circuit/arena.h: everything Validate() checks, plus the balance
  /// envelope on every node reachable from the current root, a global
  /// reference-count audit (each alive node's count covers its alive parent
  /// edges plus the root slot, and the global surplus equals the live
  /// snapshot pins — so no version leaks and no dangling splice scaffolding
  /// survives an edit), and an empty zero-pending queue (every transaction
  /// must end with a sweep). `max_height(size)` is the envelope to enforce
  /// (pass MaxAllowedHeight for tree terms; word AVL terms satisfy it too).
  /// Returns "" if valid. Call only between edits, on the writer thread.
  std::string ValidateStructure(uint32_t (*max_height)(uint32_t)) const;

  /// Renders the subterm rooted at `id` (debugging).
  std::string ToString(TermNodeId id) const;

 private:
  TermNodeId Alloc();
  TermNodeId CopyForWrite(TermNodeId id);
  void RecomputeNode(TermNodeId id);
  void IncRef(TermNodeId id) { ++nodes_[id].refs; }
  void DecRef(TermNodeId id);

  TermAlphabet alphabet_;
  CowStore<TermNode> nodes_;
  std::vector<TermNodeId> free_list_;
  TermNodeId root_ = kNoTerm;
  size_t num_alive_ = 0;

  uint64_t cur_epoch_ = 0;
  size_t live_pins_ = 0;
  std::vector<TermNodeId> zero_pending_;
  std::vector<std::pair<TermNodeId, TermNodeId>> remap_log_;
  uint64_t path_copies_ = 0;
  uint64_t nodes_recycled_ = 0;
};

}  // namespace treenum

#endif  // TREENUM_FALGEBRA_TERM_H_
