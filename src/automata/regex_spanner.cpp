#include "automata/regex_spanner.h"

#include <stdexcept>
#include <vector>

namespace treenum {

namespace {

constexpr int kAnyLetter = -1;

struct NfaEdge {
  State from;
  State to;
  bool eps;
  int letter;    // label or kAnyLetter (ignored for eps)
  VarMask mask;  // captured variables (ignored for eps)
};

struct Fragment {
  State start;
  State accept;
};

class Parser {
 public:
  Parser(const std::string& pattern, size_t num_labels, size_t num_vars)
      : s_(pattern), num_labels_(num_labels), num_vars_(num_vars) {}

  Fragment Parse() {
    Fragment f = Alt();
    if (pos_ != s_.size()) Fail("trailing characters");
    return f;
  }

  size_t num_states() const { return num_states_; }
  const std::vector<NfaEdge>& edges() const { return edges_; }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::invalid_argument("regex error at position " +
                                std::to_string(pos_) + ": " + what);
  }
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  bool AtAtomStart() const {
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    return (c >= 'a' && c <= 'z') || c == '.' || c == '(' || c == '<';
  }

  State NewState() { return static_cast<State>(num_states_++); }
  void Eps(State a, State b) {
    edges_.push_back(NfaEdge{a, b, true, 0, 0});
  }
  void Letter(State a, State b, int letter, VarMask mask) {
    edges_.push_back(NfaEdge{a, b, false, letter, mask});
  }

  Fragment Alt() {
    Fragment f = Cat();
    while (Peek('|')) {
      ++pos_;
      Fragment g = Cat();
      State s = NewState(), t = NewState();
      Eps(s, f.start);
      Eps(s, g.start);
      Eps(f.accept, t);
      Eps(g.accept, t);
      f = {s, t};
    }
    return f;
  }

  Fragment Cat() {
    if (!AtAtomStart()) Fail("expected an atom");
    Fragment f = Rep();
    while (AtAtomStart()) {
      Fragment g = Rep();
      Eps(f.accept, g.start);
      f = {f.start, g.accept};
    }
    return f;
  }

  Fragment Rep() {
    Fragment f = Atom();
    while (pos_ < s_.size() &&
           (s_[pos_] == '*' || s_[pos_] == '+' || s_[pos_] == '?')) {
      char op = s_[pos_++];
      State s = NewState(), t = NewState();
      Eps(s, f.start);
      Eps(f.accept, t);
      if (op == '*' || op == '?') Eps(s, t);
      if (op == '*' || op == '+') Eps(f.accept, f.start);
      f = {s, t};
    }
    return f;
  }

  int ReadLetter() {
    if (pos_ >= s_.size()) Fail("expected a letter");
    char c = s_[pos_];
    if (c == '.') {
      ++pos_;
      return kAnyLetter;
    }
    if (c < 'a' || c > 'z') Fail("expected a letter or '.'");
    size_t l = static_cast<size_t>(c - 'a');
    if (l >= num_labels_) Fail("letter outside the alphabet");
    ++pos_;
    return static_cast<int>(l);
  }

  Fragment Atom() {
    char c = s_[pos_];
    if (c == '(') {
      ++pos_;
      Fragment f = Alt();
      if (!Peek(')')) Fail("expected ')'");
      ++pos_;
      return f;
    }
    if (c == '<') {
      ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        Fail("expected a variable digit");
      }
      size_t v = static_cast<size_t>(s_[pos_++] - '0');
      if (v >= num_vars_) Fail("variable index out of range");
      if (!Peek(':')) Fail("expected ':'");
      ++pos_;
      int letter = ReadLetter();
      if (!Peek('>')) Fail("expected '>'");
      ++pos_;
      State a = NewState(), b = NewState();
      Letter(a, b, letter, VarMask{1} << v);
      return {a, b};
    }
    int letter = ReadLetter();
    State a = NewState(), b = NewState();
    Letter(a, b, letter, 0);
    return {a, b};
  }

  const std::string& s_;
  size_t pos_ = 0;
  size_t num_labels_;
  size_t num_vars_;
  size_t num_states_ = 0;
  std::vector<NfaEdge> edges_;
};

}  // namespace

Wva CompileRegexSpanner(const std::string& pattern, size_t num_labels,
                        size_t num_vars) {
  Parser parser(pattern, num_labels, num_vars);
  Fragment top = parser.Parse();
  size_t n = parser.num_states();

  // ε-closures by BFS.
  std::vector<std::vector<State>> eps_out(n);
  for (const NfaEdge& e : parser.edges()) {
    if (e.eps) eps_out[e.from].push_back(e.to);
  }
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (State q = 0; q < n; ++q) {
    std::vector<State> todo{q};
    closure[q][q] = true;
    while (!todo.empty()) {
      State x = todo.back();
      todo.pop_back();
      for (State y : eps_out[x]) {
        if (!closure[q][y]) {
          closure[q][y] = true;
          todo.push_back(y);
        }
      }
    }
  }

  Wva wva(n, num_labels, num_vars);
  for (State q = 0; q < n; ++q) {
    for (const NfaEdge& e : parser.edges()) {
      if (e.eps || !closure[q][e.from]) continue;
      if (e.letter == kAnyLetter) {
        for (Label l = 0; l < num_labels; ++l) {
          wva.AddTransition(q, l, e.mask, e.to);
        }
      } else {
        wva.AddTransition(q, static_cast<Label>(e.letter), e.mask, e.to);
      }
    }
  }
  wva.AddInitial(top.start);
  for (State q = 0; q < n; ++q) {
    if (closure[q][top.accept]) wva.AddFinal(q);
  }
  return wva;
}

Word ToWord(const std::string& s) {
  Word w;
  w.reserve(s.size());
  for (char c : s) {
    if (c < 'a' || c > 'z') {
      throw std::invalid_argument("ToWord: letters a-z only");
    }
    w.push_back(static_cast<Label>(c - 'a'));
  }
  return w;
}

}  // namespace treenum
