#include "automata/binary_tva.h"

#include <algorithm>
#include <cassert>

namespace treenum {

const std::vector<std::pair<VarMask, State>> BinaryTva::kEmptyLeafInits;
const std::vector<State> BinaryTva::kEmptyStates;
const std::vector<Transition> BinaryTva::kEmptyTransitions;
const std::vector<DeltaGroup> BinaryTva::kEmptyGroups;

void BinaryTva::AddLeafInit(Label l, VarMask vars, State q) {
  assert(l < num_labels_ && q < num_states_);
  // Deduplicate: a repeated ι entry would create duplicate var-gates and
  // break the no-duplicates guarantee of the enumeration algorithms.
  if (l < leaf_inits_by_label_.size()) {
    for (const auto& [m, s] : leaf_inits_by_label_[l]) {
      if (m == vars && s == q) return;
    }
  }
  leaf_inits_.push_back(LeafInit{l, vars, q});
  if (leaf_inits_by_label_.size() <= l) leaf_inits_by_label_.resize(l + 1);
  leaf_inits_by_label_[l].emplace_back(vars, q);
}

void BinaryTva::AddTransition(Label l, State left, State right, State q) {
  assert(l < num_labels_ && left < num_states_ && right < num_states_ &&
         q < num_states_);
  {
    uint64_t key = (static_cast<uint64_t>(l) * num_states_ + left) *
                       num_states_ +
                   right;
    auto it = delta_lookup_.find(key);
    if (it != delta_lookup_.end()) {
      for (State s : it->second) {
        if (s == q) return;  // duplicate transition
      }
    }
  }
  transitions_.push_back(Transition{l, left, right, q});
  if (transitions_by_label_.size() <= l) transitions_by_label_.resize(l + 1);
  transitions_by_label_[l].push_back(transitions_.back());
  uint64_t key = (static_cast<uint64_t>(l) * num_states_ + left) *
                     num_states_ +
                 right;
  delta_lookup_[key].push_back(q);
  delta_groups_dirty_ = true;
}

void BinaryTva::AddFinal(State q) {
  assert(q < num_states_);
  if (is_final_.size() < num_states_) is_final_.resize(num_states_, false);
  if (!is_final_[q]) {
    is_final_[q] = true;
    final_states_.push_back(q);
  }
}

bool BinaryTva::IsFinal(State q) const {
  return q < is_final_.size() && is_final_[q];
}

const std::vector<std::pair<VarMask, State>>& BinaryTva::LeafInitsFor(
    Label l) const {
  if (l >= leaf_inits_by_label_.size()) return kEmptyLeafInits;
  return leaf_inits_by_label_[l];
}

const std::vector<State>& BinaryTva::TransitionsFor(Label l, State q1,
                                                    State q2) const {
  uint64_t key =
      (static_cast<uint64_t>(l) * num_states_ + q1) * num_states_ + q2;
  auto it = delta_lookup_.find(key);
  if (it == delta_lookup_.end()) return kEmptyStates;
  return it->second;
}

const std::vector<Transition>& BinaryTva::TransitionsForLabel(Label l) const {
  if (l >= transitions_by_label_.size()) return kEmptyTransitions;
  return transitions_by_label_[l];
}

const std::vector<DeltaGroup>& BinaryTva::DeltaGroupsFor(Label l) const {
  EnsureDeltaGroups();
  if (l >= delta_groups_by_label_.size()) return kEmptyGroups;
  return delta_groups_by_label_[l];
}

void BinaryTva::EnsureDeltaGroups() const {
  if (!delta_groups_dirty_) return;
  delta_groups_dirty_ = false;
  delta_groups_by_label_.assign(transitions_by_label_.size(), {});
  delta_results_.clear();
  delta_results_.reserve(transitions_.size());
  std::vector<std::pair<State, State>> pairs;
  for (Label l = 0; l < transitions_by_label_.size(); ++l) {
    pairs.clear();
    for (const Transition& t : transitions_by_label_[l]) {
      pairs.emplace_back(t.left, t.right);
    }
    // Sorted (left, right) order matches the nested q1/q2 scan the groups
    // replace; within a group the delta_lookup_ vector preserves insertion
    // order, so downstream circuits come out bit-identical.
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    std::vector<DeltaGroup>& groups = delta_groups_by_label_[l];
    groups.reserve(pairs.size());
    for (const auto& [q1, q2] : pairs) {
      uint64_t key =
          (static_cast<uint64_t>(l) * num_states_ + q1) * num_states_ + q2;
      const std::vector<State>& results = delta_lookup_.at(key);
      DeltaGroup g{q1, q2, static_cast<uint32_t>(delta_results_.size()), 0};
      delta_results_.insert(delta_results_.end(), results.begin(),
                            results.end());
      g.end = static_cast<uint32_t>(delta_results_.size());
      groups.push_back(g);
    }
  }
}

std::string BinaryTva::ToString() const {
  std::string s = "BinaryTva(Q=" + std::to_string(num_states_) +
                  ", iota=" + std::to_string(leaf_inits_.size()) +
                  ", delta=" + std::to_string(transitions_.size()) +
                  ", F={";
  for (size_t i = 0; i < final_states_.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(final_states_[i]);
  }
  s += "})";
  return s;
}

}  // namespace treenum
