#include "falgebra/builder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace treenum {
namespace {

// Decode(Encode(T)) == T, and the leaf bijection maps every node to a leaf
// symbol with the node's label.
void CheckRoundtrip(const UnrankedTree& tree, size_t num_labels) {
  Encoding enc = EncodeTree(tree, num_labels);
  ASSERT_EQ(enc.term.Validate(), "") << tree.ToString();
  UnrankedTree decoded = enc.term.Decode();
  EXPECT_TRUE(decoded == tree) << "expected " << tree.ToString() << " got "
                               << decoded.ToString();
  for (NodeId n : tree.PreorderNodes()) {
    TermNodeId leaf = enc.leaf_of[n];
    ASSERT_NE(leaf, kNoTerm);
    EXPECT_EQ(enc.term.node(leaf).tree_node, n);
    EXPECT_EQ(enc.term.alphabet().BaseLabel(enc.term.node(leaf).label),
              tree.label(n));
    // Leaf kind: context symbol iff the node has children.
    EXPECT_EQ(enc.term.alphabet().IsContextLeaf(enc.term.node(leaf).label),
              !tree.IsLeaf(n));
  }
  // Leaf count equals tree size.
  EXPECT_EQ(enc.term.node(enc.term.root()).size, tree.size());
}

TEST(Builder, TinyTrees) {
  for (const char* s :
       {"(a)", "(a (b))", "(a (b) (c))", "(a (b (c)))", "(a (b) (c) (d))",
        "(a (b (c) (d)) (e))", "(a (b (c (d (e)))))"}) {
    CheckRoundtrip(UnrankedTree::Parse(s), 5);
  }
}

TEST(Builder, RandomTreesRoundtrip) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(200), 3, rng);
    CheckRoundtrip(t, 3);
  }
}

TEST(Builder, PathTreeRoundtripAndHeight) {
  Rng rng(19);
  for (size_t n : {1u, 2u, 3u, 10u, 100u, 1000u, 5000u}) {
    UnrankedTree t = PathTree(n, 2, rng);
    Encoding enc = EncodeTree(t, 2);
    ASSERT_EQ(enc.term.Validate(), "");
    EXPECT_TRUE(enc.term.Decode() == t);
    uint32_t h = enc.term.node(enc.term.root()).height;
    double bound = 4.0 * std::log2(static_cast<double>(n) + 1) + 8;
    EXPECT_LE(h, bound) << "n=" << n;
  }
}

TEST(Builder, StarTreeHeight) {
  for (size_t n : {10u, 100u, 1000u}) {
    UnrankedTree t(0);
    for (size_t i = 0; i + 1 < n; ++i) t.AppendChild(t.root(), 1);
    Encoding enc = EncodeTree(t, 2);
    ASSERT_EQ(enc.term.Validate(), "");
    uint32_t h = enc.term.node(enc.term.root()).height;
    EXPECT_LE(h, 4.0 * std::log2(static_cast<double>(n)) + 8) << "n=" << n;
  }
}

TEST(Builder, CaterpillarHeight) {
  // Path where every node also has a leaf child: stresses the context
  // splitting.
  for (size_t n : {10u, 100u, 1000u}) {
    UnrankedTree t(0);
    NodeId cur = t.root();
    for (size_t i = 0; i < n; ++i) {
      t.AppendChild(cur, 1);
      cur = t.AppendChild(cur, 0);
    }
    Encoding enc = EncodeTree(t, 2);
    ASSERT_EQ(enc.term.Validate(), "");
    EXPECT_TRUE(enc.term.Decode() == t);
    uint32_t h = enc.term.node(enc.term.root()).height;
    double sz = static_cast<double>(t.size());
    EXPECT_LE(h, 4.0 * std::log2(sz) + 8) << "n=" << n;
  }
}

TEST(Builder, RandomTreesHeightLogarithmic) {
  Rng rng(23);
  for (size_t n : {100u, 1000u, 10000u}) {
    UnrankedTree t = RandomTree(n, 3, rng);
    Encoding enc = EncodeTree(t, 3);
    uint32_t h = enc.term.node(enc.term.root()).height;
    EXPECT_LE(h, 4.0 * std::log2(static_cast<double>(n)) + 8) << "n=" << n;
  }
}

TEST(Builder, HeightWithinBalanceEnvelope) {
  // The static builder must stay comfortably inside MaxAllowedHeight so
  // that updates have slack before triggering rebuilds.
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(3000), 2, rng);
    Encoding enc = EncodeTree(t, 2);
    for (TermNodeId id = 0; id < enc.term.id_bound(); ++id) {
      if (!enc.term.IsAlive(id)) continue;
      const TermNode& nd = enc.term.node(id);
      ASSERT_LE(nd.height, MaxAllowedHeight(nd.size))
          << "node size " << nd.size;
    }
  }
}

TEST(Builder, CollectPiecesInverse) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(60), 2, rng);
    Encoding enc = EncodeTree(t, 2);
    std::vector<Piece> pieces = CollectPieces(enc.term, enc.term.root());
    ASSERT_EQ(pieces.size(), 1u);
    EXPECT_EQ(pieces[0].root, t.root());
    EXPECT_FALSE(pieces[0].IsContext());
    // Re-encoding the collected pieces yields an equivalent term.
    std::vector<TermNodeId> leaf_of(t.id_bound(), kNoTerm);
    Term term2(enc.term.alphabet());
    TermNodeId root2 = EncodePieces(term2, t, pieces, leaf_of);
    term2.set_root(root2);
    EXPECT_EQ(term2.Validate(), "");
    EXPECT_TRUE(term2.Decode() == t);
  }
}

TEST(Builder, CollectPiecesOnSubterms) {
  // Every subterm's pieces re-encode to a fragment with identical leaves.
  Rng rng(37);
  UnrankedTree t = RandomTree(40, 2, rng);
  Encoding enc = EncodeTree(t, 2);
  for (TermNodeId id = 0; id < enc.term.id_bound(); ++id) {
    if (!enc.term.IsAlive(id)) continue;
    std::vector<Piece> pieces = CollectPieces(enc.term, id);
    size_t ctx_count = 0;
    for (const Piece& p : pieces) ctx_count += p.IsContext();
    EXPECT_EQ(ctx_count, enc.term.node(id).is_context ? 1u : 0u);
  }
}

}  // namespace
}  // namespace treenum
