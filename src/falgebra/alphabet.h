// The binary term alphabet Λ' of forest algebra terms (§7, Appendix E).
//
// For a base alphabet Λ with L labels, Λ' consists of:
//   a_t  (forest leaf: single a-labeled node)     ids [0, L)
//   a_□  (context leaf: a-labeled node over hole) ids [L, 2L)
//   ⊕HH, ⊕HV, ⊕VH, ⊙VV, ⊙VH (operators)          ids [2L, 2L+5)
#ifndef TREENUM_FALGEBRA_ALPHABET_H_
#define TREENUM_FALGEBRA_ALPHABET_H_

#include <cstdint>
#include <string>

#include "trees/unranked_tree.h"

namespace treenum {

/// The five forest-algebra operators. H = horizontal (forest), V = vertical
/// (context); the suffix gives the operand types.
enum class TermOp : uint8_t {
  kConcatHH = 0,  ///< forest ⊕ forest → forest
  kConcatHV = 1,  ///< forest ⊕ context → context
  kConcatVH = 2,  ///< context ⊕ forest → context
  kApplyVV = 3,   ///< context ⊙ context → context
  kApplyVH = 4,   ///< context ⊙ forest → forest
};

/// Maps between base labels Λ, term-leaf symbols, operators, and the flat
/// label ids of the binary term alphabet Λ'.
class TermAlphabet {
 public:
  explicit TermAlphabet(size_t num_base_labels)
      : num_base_labels_(num_base_labels) {}

  size_t num_base_labels() const { return num_base_labels_; }
  /// Total size of Λ' = 2L + 5.
  size_t num_labels() const { return 2 * num_base_labels_ + 5; }

  /// The a_t symbol for base label a.
  Label TreeLeaf(Label a) const { return a; }
  /// The a_□ symbol for base label a.
  Label ContextLeaf(Label a) const {
    return static_cast<Label>(num_base_labels_ + a);
  }
  /// The label id of operator op.
  Label Op(TermOp op) const {
    return static_cast<Label>(2 * num_base_labels_ +
                              static_cast<uint32_t>(op));
  }

  bool IsTreeLeaf(Label l) const { return l < num_base_labels_; }
  bool IsContextLeaf(Label l) const {
    return l >= num_base_labels_ && l < 2 * num_base_labels_;
  }
  bool IsLeafSymbol(Label l) const { return l < 2 * num_base_labels_; }
  bool IsOp(Label l) const {
    return l >= 2 * num_base_labels_ && l < num_labels();
  }

  /// Base label of a leaf symbol (a_t or a_□).
  Label BaseLabel(Label l) const {
    return IsTreeLeaf(l) ? l : static_cast<Label>(l - num_base_labels_);
  }
  TermOp OpOf(Label l) const {
    return static_cast<TermOp>(l - 2 * num_base_labels_);
  }

  std::string LabelName(Label l) const {
    static const char* kOpNames[5] = {"+HH", "+HV", "+VH", ".VV", ".VH"};
    if (IsTreeLeaf(l)) return "t" + std::to_string(l);
    if (IsContextLeaf(l)) return "c" + std::to_string(BaseLabel(l));
    return kOpNames[static_cast<uint32_t>(OpOf(l))];
  }

 private:
  size_t num_base_labels_;
};

/// True iff the result of `op` is a context (vs. a forest).
inline bool OpYieldsContext(TermOp op) {
  return op == TermOp::kConcatHV || op == TermOp::kConcatVH ||
         op == TermOp::kApplyVV;
}

/// Whether the left/right operand of `op` must be a context.
inline bool OpLeftIsContext(TermOp op) {
  return op == TermOp::kConcatVH || op == TermOp::kApplyVV ||
         op == TermOp::kApplyVH;
}
inline bool OpRightIsContext(TermOp op) {
  return op == TermOp::kConcatHV || op == TermOp::kApplyVV;
}

}  // namespace treenum

#endif  // TREENUM_FALGEBRA_ALPHABET_H_
