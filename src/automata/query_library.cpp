#include "automata/query_library.h"

#include <cassert>

namespace treenum {

UnrankedTva QuerySelectLabel(size_t num_labels, Label a) {
  // States: 0 = no pick below, 1 = exactly one pick below.
  UnrankedTva q(2, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) q.AddInit(l, 0, 0);
  q.AddInit(a, 1, 1);
  q.AddTransition(0, 0, 0);
  q.AddTransition(0, 1, 1);
  q.AddTransition(1, 0, 1);
  q.AddFinal(1);
  return q;
}

UnrankedTva QuerySelectAll(size_t num_labels) {
  UnrankedTva q(2, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) {
    q.AddInit(l, 0, 0);
    q.AddInit(l, 1, 1);
  }
  q.AddTransition(0, 0, 0);
  q.AddTransition(0, 1, 1);
  q.AddTransition(1, 0, 1);
  q.AddFinal(1);
  return q;
}

UnrankedTva QueryMarkedAncestor(size_t num_labels, Label marked,
                                Label special) {
  assert(marked != special);
  // States: 0 = nothing below; 1 = nothing below, this node marked;
  //         2 = pick below, still waiting for a marked ancestor;
  //         3 = satisfied.
  enum : State { kS0 = 0, kM0 = 1, kS1 = 2, kS2 = 3 };
  UnrankedTva q(4, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) {
    q.AddInit(l, 0, l == marked ? kM0 : kS0);
  }
  q.AddInit(special, 1, kS1);
  // Child states kS0 and kM0 are both "nothing below" for the parent.
  for (State empty : {kS0, kM0}) {
    q.AddTransition(kS0, empty, kS0);
    q.AddTransition(kM0, empty, kM0);
    q.AddTransition(kS1, empty, kS1);
    q.AddTransition(kS2, empty, kS2);
  }
  q.AddTransition(kS0, kS1, kS1);
  q.AddTransition(kM0, kS1, kS2);  // this marked node discharges the pick
  q.AddTransition(kS0, kS2, kS2);
  q.AddTransition(kM0, kS2, kS2);
  q.AddFinal(kS2);
  return q;
}

UnrankedTva QueryDescendantPairs(size_t num_labels, Label a, Label b) {
  // Variables: x = bit 0 (the ancestor, labeled a), y = bit 1 (the
  // descendant, labeled b).
  enum : State { kU0 = 0, kUb = 1, kPx = 2, kXy = 3 };
  UnrankedTva q(4, num_labels, 2);
  for (Label l = 0; l < num_labels; ++l) q.AddInit(l, 0, kU0);
  q.AddInit(b, 0b10, kUb);
  q.AddInit(a, 0b01, kPx);
  q.AddTransition(kU0, kU0, kU0);
  q.AddTransition(kU0, kUb, kUb);
  q.AddTransition(kU0, kXy, kXy);
  q.AddTransition(kUb, kU0, kUb);
  q.AddTransition(kPx, kU0, kPx);
  q.AddTransition(kPx, kUb, kXy);
  q.AddTransition(kXy, kU0, kXy);
  q.AddFinal(kXy);
  return q;
}

UnrankedTva QueryContainsLabel(size_t num_labels, Label a) {
  UnrankedTva q(2, num_labels, 0);
  for (Label l = 0; l < num_labels; ++l) q.AddInit(l, 0, l == a ? 1 : 0);
  q.AddTransition(0, 0, 0);
  q.AddTransition(0, 1, 1);
  q.AddTransition(1, 0, 1);
  q.AddTransition(1, 1, 1);
  q.AddFinal(1);
  return q;
}

UnrankedTva QueryAnySubsetOfLabel(size_t num_labels, Label a) {
  UnrankedTva q(2, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) q.AddInit(l, 0, 0);
  q.AddInit(a, 1, 1);
  q.AddTransition(0, 0, 0);
  q.AddTransition(0, 1, 1);
  q.AddTransition(1, 0, 1);
  q.AddTransition(1, 1, 1);
  q.AddFinal(1);
  return q;
}

UnrankedTva QueryAncestorAtDistance(size_t num_labels, Label a, size_t k) {
  assert(k >= 1);
  // States: idle = 0; top_a = 1 (this node guesses it is the a-anchor);
  // sat = 2; c_i = 3 + i, 0 <= i < k ("the pick is i levels below").
  const State kIdle = 0, kTopA = 1, kSat = 2;
  auto c = [](size_t i) { return static_cast<State>(3 + i); };
  UnrankedTva q(3 + k, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) {
    q.AddInit(l, 0, kIdle);
    q.AddInit(l, 1, c(0));
  }
  q.AddInit(a, 0, kTopA);  // nondeterministic anchor guess
  q.AddTransition(kIdle, kIdle, kIdle);
  q.AddTransition(kIdle, kSat, kSat);
  q.AddTransition(kSat, kIdle, kSat);
  q.AddTransition(kTopA, kIdle, kTopA);
  q.AddTransition(kTopA, c(k - 1), kSat);
  for (size_t i = 0; i + 1 < k; ++i) {
    q.AddTransition(kIdle, c(i), c(i + 1));
  }
  for (size_t i = 0; i < k; ++i) {
    q.AddTransition(c(i), kIdle, c(i));
  }
  q.AddFinal(kSat);
  return q;
}

UnrankedTva QueryChildOfLabel(size_t num_labels, Label a, Label b) {
  // States: 0 = nothing; 1 = picked b-node, waiting for its parent to be an
  // a-node; 2 = satisfied; 3 = "this node is an a-node" (otherwise like 0).
  enum : State { kS0 = 0, kWait = 1, kSat = 2, kA0 = 3 };
  UnrankedTva q(4, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) {
    q.AddInit(l, 0, l == a ? kA0 : kS0);
  }
  q.AddInit(b, 1, kWait);
  for (State empty : {kS0, kA0}) {
    q.AddTransition(kS0, empty, kS0);
    q.AddTransition(kA0, empty, kA0);
    q.AddTransition(kSat, empty, kSat);
  }
  // Only an a-node may consume the freshly picked child; the pick is
  // discharged exactly one level up.
  q.AddTransition(kA0, kWait, kSat);
  q.AddTransition(kS0, kSat, kSat);
  q.AddTransition(kA0, kSat, kSat);
  // A waiting pick below anything else dies by absence of transitions.
  // The picked node itself may have arbitrary (unpicked) children:
  q.AddTransition(kWait, kS0, kWait);
  q.AddTransition(kWait, kA0, kWait);
  q.AddFinal(kSat);
  return q;
}

UnrankedTva QuerySelectLeaves(size_t num_labels) {
  // States: 0 = nothing; 1 = picked node with (so far) no children;
  // 2 = pick confirmed strictly below.
  enum : State { kS0 = 0, kPl = 1, kS1 = 2 };
  UnrankedTva q(3, num_labels, 1);
  for (Label l = 0; l < num_labels; ++l) {
    q.AddInit(l, 0, kS0);
    q.AddInit(l, 1, kPl);
  }
  q.AddTransition(kS0, kS0, kS0);
  q.AddTransition(kS0, kPl, kS1);
  q.AddTransition(kS0, kS1, kS1);
  q.AddTransition(kS1, kS0, kS1);
  // kPl must remain childless: no (kPl, ·, ·) transitions.
  q.AddFinal(kS1);
  q.AddFinal(kPl);  // the root itself may be the picked leaf
  return q;
}

UnrankedTva QueryNextSibling(size_t num_labels, Label a, Label b) {
  // Variables: x = bit 0 (left sibling, label a), y = bit 1 (right sibling,
  // label b). The stepwise child fold reads siblings in order, so the
  // adjacency constraint is one transition.
  enum : State { kU0 = 0, kPx = 1, kPy = 2, kW = 3, kB = 4 };
  UnrankedTva q(5, num_labels, 2);
  for (Label l = 0; l < num_labels; ++l) q.AddInit(l, 0, kU0);
  q.AddInit(a, 0b01, kPx);
  q.AddInit(b, 0b10, kPy);
  q.AddTransition(kU0, kU0, kU0);
  q.AddTransition(kU0, kPx, kW);  // saw x; the very next child must be y
  q.AddTransition(kW, kPy, kB);
  q.AddTransition(kB, kU0, kB);
  q.AddTransition(kU0, kB, kB);
  // Picked nodes may have arbitrary unpicked subtrees below.
  q.AddTransition(kPx, kU0, kPx);
  q.AddTransition(kPy, kU0, kPy);
  q.AddFinal(kB);
  return q;
}

}  // namespace treenum
