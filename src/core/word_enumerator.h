// WordEnumerator — Theorem 8.5: enumeration of the satisfying assignments
// of a nondeterministic WVA (document spanner) on a word, with character
// edits in worst-case O(log |w| * poly(|Q|)) via AVL-balanced ⊕HH terms
// (Corollary 8.4).
//
// Shares all derived-state maintenance (circuit, jump index, batching)
// with the tree engine through EnumerationPipeline. As an Engine, its
// NodeIds are the stable position ids: Relabel = replace the letter,
// InsertRightSibling = insert after, InsertFirstChild = insert before,
// DeleteLeaf = erase.
#ifndef TREENUM_CORE_WORD_ENUMERATOR_H_
#define TREENUM_CORE_WORD_ENUMERATOR_H_

#include <memory>
#include <vector>

#include "automata/wva.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "falgebra/word_avl.h"
#include "trees/assignment.h"

namespace treenum {

class WordEnumerator : public Engine {
 public:
  WordEnumerator(const Word& w, const Wva& query,
                 BoxEnumMode mode = BoxEnumMode::kIndexed);

  size_t word_size() const { return enc_.size(); }
  size_t size() const override { return enc_.size(); }
  size_t width() const { return pipeline_.width(); }
  const WordEncoding& encoding() const { return enc_; }

  /// Satisfying assignments; singleton NodeIds are *stable position ids* —
  /// translate to current positions with PositionOf.
  std::vector<Assignment> EnumerateAll() const override;
  std::unique_ptr<Engine::Cursor> MakeCursor() const override;
  bool HasAnswer() const override { return pipeline_.HasAnswer(); }
  /// Current logical position of a stable position id.
  size_t PositionOf(NodeId id) const { return enc_.PositionOf(id); }

  /// Like EnumerateAll but with singletons rewritten to current positions.
  std::vector<Assignment> EnumerateAllByPosition() const;

  // ---- Word edits by logical position, worst-case O(log |w|) ----
  UpdateStats Replace(size_t pos, Label l);
  UpdateStats Insert(size_t pos, Label l);
  UpdateStats Erase(size_t pos);
  /// Bulk edit: move the factor [begin, end) so it starts at `dst` of the
  /// remaining word. Also O(log |w|) (AVL split/join).
  UpdateStats MoveRange(size_t begin, size_t end, size_t dst);

  // ---- Engine edit surface, by stable position id ----
  UpdateStats Relabel(NodeId n, Label l) override;
  UpdateStats InsertFirstChild(NodeId n, Label l,
                               NodeId* new_node = nullptr) override;
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr) override;
  UpdateStats DeleteLeaf(NodeId n) override;

  void BeginBatch() override { pipeline_.BeginBatch(); }
  UpdateStats CommitBatch() override { return pipeline_.CommitBatch(); }
  bool in_batch() const override { return pipeline_.in_batch(); }

  const EnumerationPipeline& pipeline() const { return pipeline_; }
  const AssignmentCircuit& circuit() const { return pipeline_.circuit(); }

 private:
  /// Inserts at logical position `pos`, reporting the new stable id.
  UpdateStats InsertAt(size_t pos, Label l, NodeId* new_node);

  WordEncoding enc_;
  EnumerationPipeline pipeline_;
};

}  // namespace treenum

#endif  // TREENUM_CORE_WORD_ENUMERATOR_H_
