// The shared engine surface: every enumeration backend (the paper's
// dynamic tree engine, the AVL word engine of Corollary 8.4, and the two
// Table-1 baselines) implements this interface, so tests and benchmarks
// drive all of them through one API.
//
// The update vocabulary is the edit set of Definition 7.1. For word
// engines, nodes are *stable position ids* (a word is a forest of
// single-node trees): Relabel replaces the letter, InsertRightSibling
// inserts immediately after, InsertFirstChild inserts immediately before
// (positions have no children, so the slot is reused for the only
// remaining adjacency), and DeleteLeaf erases the position.
//
// Batched updates: BeginBatch()/CommitBatch() bracket a transaction in
// which edits mutate the input immediately but derived structures
// (circuit boxes, jump index, run counts — or, for the baselines, the
// materialized result set) are refreshed once at commit instead of once
// per edit. ApplyEdits() is the convenience wrapper: one transaction
// around a whole edit script.
#ifndef TREENUM_CORE_ENGINE_H_
#define TREENUM_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "trees/assignment.h"
#include "trees/unranked_tree.h"

namespace treenum {

/// Per-update cost report (for benchmarks). For a batched transaction,
/// boxes_recomputed counts the *unique* boxes refreshed at commit.
struct UpdateStats {
  size_t boxes_recomputed = 0;
  size_t rebuilt_size = 0;  ///< Term nodes rebuilt by rebalancing (0 = none).
  size_t edits_applied = 0;  ///< Edits covered by this report (1 per edit op).

  UpdateStats& operator+=(const UpdateStats& o) {
    boxes_recomputed += o.boxes_recomputed;
    rebuilt_size += o.rebuilt_size;
    edits_applied += o.edits_applied;
    return *this;
  }
};

/// One edit of Definition 7.1, as a value (for edit scripts / batches).
struct Edit {
  enum class Kind : uint8_t {
    kRelabel,
    kInsertFirstChild,
    kInsertRightSibling,
    kDeleteLeaf,
  };

  Kind kind = Kind::kRelabel;      ///< Which of the four edit ops.
  NodeId node = kNoNode;           ///< Target node (or word position id).
  Label label = 0;                 ///< Unused by kDeleteLeaf.

  /// Value form of Engine::Relabel.
  static Edit Relabel(NodeId n, Label l) { return {Kind::kRelabel, n, l}; }
  /// Value form of Engine::InsertFirstChild.
  static Edit InsertFirstChild(NodeId n, Label l) {
    return {Kind::kInsertFirstChild, n, l};
  }
  /// Value form of Engine::InsertRightSibling.
  static Edit InsertRightSibling(NodeId n, Label l) {
    return {Kind::kInsertRightSibling, n, l};
  }
  /// Value form of Engine::DeleteLeaf.
  static Edit DeleteLeaf(NodeId n) { return {Kind::kDeleteLeaf, n, 0}; }
};

/// The shared surface of every enumeration backend (dynamic tree engine,
/// AVL word engine, Table-1 baselines): enumeration, Definition 7.1
/// updates, and transactional batching.
class Engine {
 public:
  /// Type-erased pull cursor over satisfying assignments. Invalidated by
  /// updates to the engine it came from.
  class Cursor {
   public:
    virtual ~Cursor() = default;
    virtual bool Next(Assignment* out) = 0;
  };

  virtual ~Engine() = default;

  // ---- Enumeration ----

  /// All satisfying assignments (sorted, duplicate-free).
  virtual std::vector<Assignment> EnumerateAll() const = 0;
  /// Pull cursor (no duplicates; ordering is engine-specific).
  virtual std::unique_ptr<Cursor> MakeCursor() const = 0;
  /// Boolean answer: is there at least one satisfying assignment?
  virtual bool HasAnswer() const = 0;
  /// Current input size (tree nodes / word letters).
  virtual size_t size() const = 0;

  // ---- Updates ----

  /// Changes the label of node `n`.
  virtual UpdateStats Relabel(NodeId n, Label l) = 0;
  /// Inserts a new first child under `n` (id reported via `new_node`).
  virtual UpdateStats InsertFirstChild(NodeId n, Label l,
                                       NodeId* new_node = nullptr) = 0;
  /// Inserts a new right sibling of `n` (id reported via `new_node`).
  virtual UpdateStats InsertRightSibling(NodeId n, Label l,
                                         NodeId* new_node = nullptr) = 0;
  /// Deletes leaf `n`.
  virtual UpdateStats DeleteLeaf(NodeId n) = 0;

  // ---- Batched updates ----

  /// Opens a transaction: subsequent edits defer derived-structure
  /// maintenance until CommitBatch(). Querying between BeginBatch and
  /// CommitBatch is unsupported — the dynamic engines assert in debug
  /// builds and report no answers in release builds; the recompute
  /// baselines return pre-batch results. No-op default for engines with
  /// nothing to defer.
  virtual void BeginBatch() {}
  /// Closes the transaction, refreshing every derived structure once.
  virtual UpdateStats CommitBatch() { return UpdateStats{}; }
  /// True while a transaction is open. Engines with deferred maintenance
  /// override this; nesting BeginBatch is not supported.
  virtual bool in_batch() const { return false; }

  /// Applies one Edit by dispatching to the virtual ops above.
  UpdateStats ApplyEdit(const Edit& e, NodeId* new_node = nullptr);
  /// Applies a whole edit script in one transaction (BeginBatch, the
  /// edits, CommitBatch); returns the combined stats. When the caller
  /// already holds an open batch, the edits join that batch instead and
  /// the commit stays with the caller.
  virtual UpdateStats ApplyEdits(const std::vector<Edit>& edits);
};

}  // namespace treenum

#endif  // TREENUM_CORE_ENGINE_H_
