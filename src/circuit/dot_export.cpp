#include "circuit/dot_export.h"

#include <sstream>

namespace treenum {

std::string TermToDot(const Term& term) {
  std::ostringstream out;
  out << "digraph term {\n  node [shape=box];\n";
  auto walk = [&](auto&& self, TermNodeId id) -> void {
    const TermNode& t = term.node(id);
    out << "  t" << id << " [label=\"" << term.alphabet().LabelName(t.label);
    if (t.left == kNoTerm) out << " #" << t.tree_node;
    out << "\\nsize=" << t.size << " h=" << t.height << "\"";
    if (t.is_context) out << " style=dashed";
    out << "];\n";
    if (t.left != kNoTerm) {
      out << "  t" << id << " -> t" << t.left << ";\n";
      out << "  t" << id << " -> t" << t.right << ";\n";
      self(self, t.left);
      self(self, t.right);
    }
  };
  if (term.root() != kNoTerm) walk(walk, term.root());
  out << "}\n";
  return out.str();
}

std::string CircuitToDot(const AssignmentCircuit& circuit) {
  const Term& term = circuit.term();
  std::ostringstream out;
  out << "digraph circuit {\n  rankdir=BT;\n  node [fontsize=10];\n";

  auto gate_name = [](TermNodeId box, const char* kind, size_t idx) {
    std::ostringstream s;
    s << kind << "_" << box << "_" << idx;
    return s.str();
  };

  auto walk = [&](auto&& self, TermNodeId id) -> void {
    const Box b = circuit.box(id);
    out << "  subgraph cluster_" << id << " {\n    label=\"box " << id
        << " (" << term.alphabet().LabelName(term.node(id).label)
        << ")\";\n";
    for (State q = 0; q < circuit.width(); ++q) {
      if (b.gamma(q) == GateKind::kTop) {
        out << "    " << gate_name(id, "g", q) << " [label=\"T q" << q
            << "\" shape=triangle];\n";
      } else if (b.gamma(q) == GateKind::kUnion) {
        out << "    " << gate_name(id, "g", q) << " [label=\"U q" << q
            << "\" shape=ellipse];\n";
      }
    }
    for (size_t c = 0; c < b.num_cross_gates(); ++c) {
      out << "    " << gate_name(id, "x", c) << " [label=\"x("
          << b.cross_gate(c).left_state << ","
          << b.cross_gate(c).right_state << ")\" shape=box];\n";
    }
    for (size_t v = 0; v < b.num_var_masks(); ++v) {
      out << "    " << gate_name(id, "v", v) << " [label=\"vars mask="
          << b.var_mask(v) << "\" shape=plaintext];\n";
    }
    out << "  }\n";
    // Wires.
    const TermNode& t = term.node(id);
    for (size_t u = 0; u < b.num_unions(); ++u) {
      State q = b.union_state(u);
      for (uint32_t ci : b.cross_inputs(u)) {
        out << "  " << gate_name(id, "x", ci) << " -> "
            << gate_name(id, "g", q) << ";\n";
      }
      for (uint32_t vi : b.var_inputs(u)) {
        out << "  " << gate_name(id, "v", vi) << " -> "
            << gate_name(id, "g", q) << ";\n";
      }
      for (const auto& [side, state] : b.child_union_inputs(u)) {
        TermNodeId child = side == 0 ? t.left : t.right;
        out << "  " << gate_name(child, "g", state) << " -> "
            << gate_name(id, "g", q) << " [style=dashed];\n";
      }
    }
    for (size_t c = 0; c < b.num_cross_gates(); ++c) {
      out << "  " << gate_name(t.left, "g", b.cross_gate(c).left_state)
          << " -> " << gate_name(id, "x", c) << ";\n";
      out << "  " << gate_name(t.right, "g", b.cross_gate(c).right_state)
          << " -> " << gate_name(id, "x", c) << ";\n";
    }
    if (t.left != kNoTerm) {
      self(self, t.left);
      self(self, t.right);
    }
  };
  if (term.root() != kNoTerm) walk(walk, term.root());
  out << "}\n";
  return out.str();
}

}  // namespace treenum
