#include "util/thread_pool.h"

namespace treenum {

ThreadPool::ThreadPool(size_t threads) {
  size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunJob(size_t n, JobFn invoke, void* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_invoke_ = invoke;
    job_ctx_ = ctx;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    workers_busy_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller is a lane too: claim indices until the job is drained.
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    invoke(ctx, i);
  }
  // Wait for the workers; their final mutex release publishes all of the
  // body's side effects to this thread.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_busy_ == 0; });
  job_invoke_ = nullptr;
  job_ctx_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    JobFn invoke = nullptr;
    void* ctx = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      invoke = job_invoke_;
      ctx = job_ctx_;
      n = job_n_;
    }
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      invoke(ctx, i);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--workers_busy_ == 0) done_cv_.notify_all();
  }
}

}  // namespace treenum
