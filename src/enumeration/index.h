// The index structure I(C) of Definition 6.1, computed bottom-up over the
// tree of boxes (Lemma 6.3) and maintained incrementally under updates
// (Lemma 7.3).
//
// Per box B we store a set of *candidate* target boxes — the fib/span values
// of B's ∪-gates closed under least common ancestors — sorted by preorder,
// each with its ∪-reachability relation R(candidate, B). Because candidates
// of B that lie strictly below B are always candidates of the corresponding
// child, all quantities are computed from the children's index in O(1)
// lookups per entry, with no global preorder numbering (which could not be
// maintained under updates).
//
// Instead of fbb(g) we store span(g) := lca of the interesting boxes of g.
// span(g) equals fbb(g) whenever the ∪-closure of g branches and fib(g)
// otherwise; the jump loop of Algorithm 3 then computes the first
// bidirectional box of a boxed set Γ as lca{span(g) | g ∈ Γ} and terminates
// when that box is not a strict ancestor of fib(Γ). This evaluates correctly
// even for boxed sets that are only *jointly* bidirectional (each gate's own
// closure is a chain, but the chains split at a common box).
//
// Storage layout (arena/CSR, mirroring circuit/arena.h): a box's index owns
// no heap memory. Candidate records live in a CSR SpanPool, the fib/span
// arrays and the pairwise-lca table in an int32 SpanPool, and every relation
// matrix (per-candidate rel, wire_left, wire_right) is a word-aligned block
// in a BitMatrixPool (enumeration/index_arena.h), all with power-of-two span
// recycling across RebuildBoxIndex/FreeBoxIndex. `at(id)` returns a cheap
// BoxIndex *view* — invalidated by the next rebuild.
#ifndef TREENUM_ENUMERATION_INDEX_H_
#define TREENUM_ENUMERATION_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "enumeration/index_arena.h"
#include "util/bit_matrix.h"

namespace treenum {

inline constexpr int32_t kNoCand = -1;

/// One pooled candidate record.
struct CandRec {
  TermNodeId box;
  /// 0 = the box itself, 1 = inherited from left child, 2 = from right.
  uint8_t source;
  /// For source 1/2: index in the child's candidate list.
  int32_t child_cand;
  /// R(cand box, B): rows = candidate box's ∪-gates, cols = B's ∪-gates.
  BitsRef rel;
};

/// Read-only view of one box's index, resolving the arena spans to raw
/// pointers once. Invalidated by the next RebuildBoxIndex/FreeBoxIndex.
class BoxIndex {
 public:
  size_t num_unions() const { return nu_; }
  size_t num_cands() const { return num_cands_; }

  TermNodeId cand_box(int32_t c) const { return cands_[c].box; }
  uint8_t cand_source(int32_t c) const { return cands_[c].source; }
  int32_t cand_child(int32_t c) const { return cands_[c].child_cand; }
  /// R(cand box, B) of candidate c.
  BitMatrixView cand_rel(int32_t c) const {
    const BitsRef& r = cands_[c].rel;
    return BitMatrixView(bits_ + r.words.off, r.rows, r.cols);
  }

  /// Per ∪-gate: candidate index (always set).
  int32_t fib(size_t u) const { return fib_[u]; }
  int32_t span(size_t u) const { return span_[u]; }

  /// Wire relations to the children: R(child box, B) over the ∪→∪ wires
  /// (⊤-collapse inputs). Empty views for leaf boxes.
  BitMatrixView wire_left() const {
    return BitMatrixView(bits_ + wl_.words.off, wl_.rows, wl_.cols);
  }
  BitMatrixView wire_right() const {
    return BitMatrixView(bits_ + wr_.words.off, wr_.rows, wr_.cols);
  }

  int32_t Lca(int32_t a, int32_t b) const {
    return cand_lca_[static_cast<size_t>(a) * num_cands_ + b];
  }

  /// fib(Γ) as a candidate index: min over the gates' fib values (minimum
  /// candidate index = first in preorder). `gates` must be non-empty.
  int32_t FibLocal(const std::vector<uint32_t>& gates) const {
    int32_t best = fib_[gates[0]];
    for (uint32_t g : gates) best = std::min(best, fib_[g]);
    return best;
  }

  /// lca{span(g) | g ∈ gates} as a candidate index. lca over a set folds
  /// associatively, so one linear pass over the gates suffices (this was a
  /// quadratic pairwise loop; Observation 6.2 equates the fold with the
  /// preorder-minimal pairwise lca). `gates` must be non-empty.
  int32_t SpanLocal(const std::vector<uint32_t>& gates) const {
    int32_t best = span_[gates[0]];
    for (size_t i = 1; i < gates.size(); ++i) {
      best = Lca(best, span_[gates[i]]);
    }
    return best;
  }

 private:
  friend class EnumIndex;

  const CandRec* cands_ = nullptr;
  const int32_t* fib_ = nullptr;
  const int32_t* span_ = nullptr;
  const int32_t* cand_lca_ = nullptr;
  const uint64_t* bits_ = nullptr;
  BitsRef wl_;
  BitsRef wr_;
  uint32_t num_cands_ = 0;
  uint32_t nu_ = 0;
};

/// The full index, one BoxIndex per term node, rebuilt bottom-up into the
/// pooled flat storage.
class EnumIndex {
 public:
  explicit EnumIndex(const AssignmentCircuit* circuit) : circuit_(circuit) {}

  const AssignmentCircuit& circuit() const { return *circuit_; }

  /// Builds the index for every box, bottom-up (O(|T| * poly(w))).
  void BuildAll();

  /// Recomputes one box's index from its children's (which must be current).
  /// Steady-state refreshes reuse the box's arena spans.
  void RebuildBoxIndex(TermNodeId id);

  /// Drops the index of a freed term node, recycling its spans.
  void FreeBoxIndex(TermNodeId id);

  /// Cheap view of a box's index; invalidated by the next rebuild.
  BoxIndex at(TermNodeId id) const;

  /// Batch hint mirroring AssignmentCircuit::ReserveForRebuild: pre-grows
  /// the index pools for ~`boxes` upcoming rebuilds (sized from the running
  /// per-box averages), so one transaction's refresh loop does not re-grow
  /// pool tails repeatedly.
  void ReserveForRebuild(size_t boxes);

  /// Validates the index-arena invariants: span bounds and overlap-freedom
  /// per pool, shape consistency of the per-box spans, and that candidate
  /// relations have the dimensions Definition 6.1 dictates. Returns an
  /// empty string if consistent. (Test hook.)
  std::string ValidateStorage() const;

  /// fib(Γ) as a candidate index at `box`; see BoxIndex::FibLocal.
  int32_t FibOfSet(TermNodeId box, const std::vector<uint32_t>& gates) const {
    return at(box).FibLocal(gates);
  }

  /// lca{span(g)} as a candidate index; see BoxIndex::SpanLocal.
  int32_t SpanOfSet(TermNodeId box, const std::vector<uint32_t>& gates) const {
    return at(box).SpanLocal(gates);
  }

 private:
  /// Per-box span directory into the pools.
  struct BoxIndexSpans {
    SpanRef cands;     ///< CandRec pool; len = candidate count.
    SpanRef fib;       ///< int32 pool; len = num ∪-gates.
    SpanRef span;      ///< int32 pool; len = num ∪-gates.
    SpanRef cand_lca;  ///< int32 pool; len = candidate count squared.
    BitsRef wire_left;
    BitsRef wire_right;
  };

  /// Raw fib/span of one gate before candidate assembly.
  struct Pre {
    uint8_t source;  // 0 self, 1 left, 2 right
    int32_t cc;      // child candidate index (source 1/2)
  };

  /// Shape of one upcoming candidate, staged in scratch between the
  /// child-reading and pool-writing phases of a rebuild.
  struct CandMeta {
    TermNodeId box;
    uint8_t source;
    int32_t cc;
    uint32_t rows;  // = num ∪-gates of the candidate box
  };

  void EnsureSlot(TermNodeId id);
  /// Returns the bit blocks of s's candidate relations to the pool.
  void ReleaseCandRels(BoxIndexSpans& s);
  /// Releases every span of s (candidate rels included).
  void FreeSpans(BoxIndexSpans& s);

  const AssignmentCircuit* circuit_;
  // CowStore-backed so concurrent snapshot readers survive writer growth.
  CowStore<BoxIndexSpans> spans_;

  // Flat pools (see file comment).
  SpanPool<CandRec> cand_pool_;
  SpanPool<int32_t> i32_pool_;
  BitMatrixPool bits_pool_;

  // Rebuild scratch reused across RebuildBoxIndex calls (clear() keeps
  // capacity — the update path's counterpart of the circuit arena scratch).
  std::vector<std::vector<uint32_t>> in_left_scratch_;
  std::vector<std::vector<uint32_t>> in_right_scratch_;
  std::vector<Pre> fib_pre_scratch_;
  std::vector<Pre> span_pre_scratch_;
  std::vector<int32_t> used_l_scratch_;
  std::vector<int32_t> used_r_scratch_;
  std::vector<int32_t> map_l_scratch_;
  std::vector<int32_t> map_r_scratch_;
  std::vector<CandMeta> cand_meta_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_ENUMERATION_INDEX_H_
