// Shared scaffolding for the recompute-from-scratch baseline engines:
// both Table-1 baselines apply every Definition 7.1 edit directly to an
// owned tree and then rebuild their derived state wholesale (the
// materialized result set for NaiveEngine, the full enumeration
// structure for StaticEngine). This base implements the Engine edit and
// batching surface over a single virtual Refresh(); batches skip the
// per-edit refresh and rebuild once at commit.
#ifndef TREENUM_BASELINE_RECOMPUTE_ENGINE_H_
#define TREENUM_BASELINE_RECOMPUTE_ENGINE_H_

#include "core/engine.h"
#include "trees/unranked_tree.h"

namespace treenum {

class RecomputeEngineBase : public Engine {
 public:
  const UnrankedTree& tree() const { return tree_; }
  size_t size() const override { return tree_.size(); }

  UpdateStats Relabel(NodeId n, Label l) override {
    tree_.Relabel(n, l);
    return EditApplied();
  }
  UpdateStats InsertFirstChild(NodeId n, Label l,
                               NodeId* new_node = nullptr) override {
    NodeId u = tree_.InsertFirstChild(n, l);
    if (new_node) *new_node = u;
    return EditApplied();
  }
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr) override {
    NodeId u = tree_.InsertRightSibling(n, l);
    if (new_node) *new_node = u;
    return EditApplied();
  }
  UpdateStats DeleteLeaf(NodeId n) override {
    tree_.DeleteLeaf(n);
    return EditApplied();
  }

  void BeginBatch() override { in_batch_ = true; }
  UpdateStats CommitBatch() override {
    in_batch_ = false;
    return Refresh();
  }
  bool in_batch() const override { return in_batch_; }

 protected:
  explicit RecomputeEngineBase(UnrankedTree tree) : tree_(std::move(tree)) {}

  /// Rebuilds all derived state from tree_. Derived constructors must call
  /// this (or equivalent) themselves — the base constructor cannot.
  virtual UpdateStats Refresh() = 0;

  UnrankedTree tree_;

 private:
  UpdateStats EditApplied() {
    UpdateStats s = in_batch_ ? UpdateStats{} : Refresh();
    s.edits_applied = 1;
    return s;
  }

  bool in_batch_ = false;
};

}  // namespace treenum

#endif  // TREENUM_BASELINE_RECOMPUTE_ENGINE_H_
