// DocumentShardServer — sharded multi-document serving over DynamicDocument.
//
// Every bench before this layer was a closed-loop, single-document
// microbench; this is the multi-tenant composition of the PR 4–7
// ingredients into one served artifact:
//
//   * The server owns S *shards*, each with a dedicated worker thread.
//     Documents are placed on a home shard by hash (splitmix64 of the
//     document id), and every mutating command — leaf edits, structural
//     transactions, query register/unregister, document removal — is
//     enqueued MPSC-style: any number of client threads append to the
//     document's FIFO command queue and hand the document to its home
//     shard's inbox.
//   * Each shard worker drains whole documents at a time: it pops a
//     scheduled document, takes its queued commands, and applies them in
//     FIFO order with *group commit* — consecutive edit/structural
//     commands (up to Options::max_group_commit) coalesce into one
//     BeginBatch/CommitBatch, so a backlogged document pays the
//     depth-ordering and refresh fan-out once per batch, and one snapshot
//     epoch is published per commit. Per-command latency (submit →
//     commit) is recorded into a per-shard lock-free LatencyHistogram.
//   * Idle shard workers *steal whole documents* from loaded neighbours:
//     each shard's run queue is a Chase-Lev work-stealing deque
//     (util/work_stealing_deque.h) — the owner schedules LIFO, thieves
//     take the oldest entry FIFO. A document is in at most one run queue
//     and drained by at most one worker at a time (the `scheduled` flag
//     under the document mutex), so the single-writer contract of
//     DynamicDocument holds no matter which worker ends up applying the
//     commands — and because the per-document command order is FIFO
//     regardless of the executing worker, answers are bit-identical at
//     S=1 and S=8 (asserted in serving_test).
//   * Enumeration never enters the command queues: readers pin a snapshot
//     (Pin) and enumerate on their own thread through the ReaderView
//     captured at registration (QueryRef::view), so the read path scales
//     independently of the write path and is never queued behind edits.
//
// Threading contract:
//   * AddDocument / RegisterQuery / RemoveDocument are synchronous (the
//     register/remove commands still flow through the queue, FIFO with
//     the edits ahead of them; the call returns when the shard worker has
//     applied them). Any thread.
//   * SubmitEdit / SubmitStructural / UnregisterQuery are asynchronous
//     fire-and-forget commands. Any thread. Commands to ONE document are
//     applied in global submission FIFO order only if the callers
//     externally order their submissions (one writer per document, the
//     usual tenant model); commands from racing writers are applied in
//     queue-push order.
//   * A QueryRef's view (and any pinned snapshot) may be used from any
//     thread while the registration is live; stop using it before
//     submitting the unregister, and release pins before RemoveDocument.
//   * Drain() blocks until every queued command has been applied and all
//     workers are idle; call it after submissions quiesce (it is the
//     barrier the tests/benches use before oracle checks and histogram
//     reads). The destructor drains, then stops the workers.
#ifndef TREENUM_SERVING_SHARD_SERVER_H_
#define TREENUM_SERVING_SHARD_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/document.h"
#include "util/latency_histogram.h"
#include "util/work_stealing_deque.h"

namespace treenum {
namespace serving {

/// A whole-subtree transaction command (the serving-layer vocabulary for
/// DynamicDocument::SubtreeMove / SubtreeDelete).
struct StructuralOp {
  enum class Kind : uint8_t { kSubtreeMove, kSubtreeDelete };
  Kind kind = Kind::kSubtreeMove;
  NodeId v = kNoNode;    ///< Subtree root (non-root node).
  NodeId dst = kNoNode;  ///< Move destination anchor (kSubtreeMove only).
  AttachWhere where = AttachWhere::kFirstChild;

  static StructuralOp Move(NodeId v, NodeId dst, AttachWhere where) {
    return {Kind::kSubtreeMove, v, dst, where};
  }
  static StructuralOp Delete(NodeId v) {
    return {Kind::kSubtreeDelete, v, kNoNode, AttachWhere::kFirstChild};
  }
};

/// S-shard multi-document server; see the file comment for the design and
/// the threading contract.
class DocumentShardServer {
 public:
  struct Options {
    /// Shard (worker thread) count.
    size_t shards = 1;
    /// Idle workers steal whole documents from loaded neighbours.
    bool stealing = true;
    /// Max consecutive edit/structural commands coalesced into one batch
    /// commit (1 disables group commit).
    size_t max_group_commit = 32;
    /// Fairness bound: a worker applies at most this many commands from
    /// one document before rescheduling it behind its other work.
    size_t max_commands_per_run = 1024;
    /// Compiled-query cache threaded through every document on every
    /// shard (null = the process-wide QueryCache::Global()): a query
    /// registered on any document is compiled once server-wide, and
    /// registrations of it elsewhere reuse the shared plan. Must outlive
    /// the server.
    QueryCache* query_cache = nullptr;
  };

  /// Aggregated (relaxed-atomic) counters across all shards.
  struct Stats {
    uint64_t edits_applied = 0;       ///< Leaf edits committed.
    uint64_t structural_applied = 0;  ///< Structural transactions committed.
    uint64_t registers = 0;           ///< Query registrations applied.
    uint64_t unregisters = 0;         ///< Query unregistrations applied.
    uint64_t removes = 0;             ///< Documents removed.
    uint64_t commits = 0;             ///< Group commits (single or batched).
    uint64_t commands = 0;            ///< Commands consumed, all kinds.
    uint64_t steals = 0;              ///< Documents drained by a non-home worker.
    uint64_t doc_runs = 0;            ///< Document drain passes.
  };

  /// Opaque handle to a served document; cheap to copy, valid until the
  /// server is destroyed (the document itself dies at RemoveDocument).
  class DocRef {
   public:
    DocRef() = default;
    explicit operator bool() const { return doc_ != nullptr; }

   private:
    friend class DocumentShardServer;
    struct DocState;
    explicit DocRef(DocState* d) : doc_(d) {}
    DocState* doc_ = nullptr;
  };

  /// One live registration: the handle (for UnregisterQuery) and the
  /// any-thread read surface captured on the shard worker.
  struct QueryRef {
    DynamicDocument::QueryHandle handle = 0;
    DynamicDocument::ReaderView view;
  };

  explicit DocumentShardServer(const Options& options);
  /// Drains outstanding commands, then stops the shard workers.
  ~DocumentShardServer();

  DocumentShardServer(const DocumentShardServer&) = delete;
  DocumentShardServer& operator=(const DocumentShardServer&) = delete;

  /// Worker-thread count.
  size_t num_shards() const { return shards_.size(); }

  // ---- Document lifecycle ----

  /// Builds the document's encoding (on the calling thread — O(size)) and
  /// places it on its hashed home shard. Any thread, any time.
  DocRef AddDocument(UnrankedTree tree, size_t num_labels);
  /// The home shard `doc` was placed on.
  size_t shard_of(DocRef doc) const;
  /// Enqueues document destruction and waits for it. Must be the last
  /// command for `doc`; all pins, views and cursors must be released.
  void RemoveDocument(DocRef doc);

  // ---- Queries ----

  /// Enqueues a registration and waits for the shard worker to apply it
  /// (FIFO with the commands ahead of it). Any thread.
  QueryRef RegisterQuery(DocRef doc, const UnrankedTva& query,
                         BoxEnumMode mode = BoxEnumMode::kIndexed);
  /// Enqueues an unregistration (asynchronous). The caller must stop
  /// using the handle's views/pipelines before submitting this.
  void UnregisterQuery(DocRef doc, DynamicDocument::QueryHandle handle);

  // ---- Write path (asynchronous commands) ----

  /// Enqueues one leaf edit, timestamped now for latency accounting.
  void SubmitEdit(DocRef doc, const Edit& edit);
  /// Enqueues one structural transaction, timestamped now.
  void SubmitStructural(DocRef doc, const StructuralOp& op);

  // ---- Read path (caller threads; never queued) ----

  /// Pins the document's current snapshot. Any thread, concurrent with
  /// the write path.
  SnapshotRef Pin(DocRef doc) const;

  // ---- Quiesce / observability ----

  /// Blocks until every queued command has been applied and every worker
  /// is idle. Callers must have stopped submitting.
  void Drain();
  /// Aggregated counters (exact when drained, approximate while serving).
  Stats stats() const;
  /// Merges every shard's submit→commit edit-latency histogram (ns) into
  /// `out` (exact when drained).
  void MergeEditLatency(LatencyHistogram* out) const;
  /// Zeroes the shard latency histograms — phase separation for benches
  /// (e.g. discard saturation-phase latencies before the open-loop phase).
  /// Call only while drained.
  void ResetEditLatency();
  /// The served document (quiesced introspection only — e.g. rebuilding a
  /// fresh oracle over document(doc).tree() after Drain()).
  const DynamicDocument& document(DocRef doc) const;

  /// Monotonic nanosecond clock used for command timestamps (exposed so
  /// bench/readers record latencies on the same clock).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  class Ticket;
  struct Command;
  struct Shard;
  using DocState = DocRef::DocState;

  void Enqueue(DocState* d, Command cmd);
  void NoteUnscheduled();
  void WorkerLoop(size_t shard_index);
  /// Drains up to max_commands_per_run commands of `d`, then either
  /// unschedules it or requeues it on `self`'s own deque.
  void RunDoc(Shard& self, DocState* d, std::vector<Command>* scratch);
  /// Applies one taken command slice in FIFO order with group commit.
  void ApplyCommands(Shard& self, DocState* d, std::vector<Command>& cmds);

  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex docs_mu_;
  std::vector<std::unique_ptr<DocState>> docs_;

  /// Documents currently scheduled (queued or being drained); Drain()
  /// waits for zero.
  std::atomic<size_t> pending_docs_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace serving
}  // namespace treenum

#endif  // TREENUM_SERVING_SHARD_SERVER_H_
