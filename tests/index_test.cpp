#include "enumeration/index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "automata/homogenize.h"
#include "automata/query_library.h"
#include "automata/translate.h"
#include "falgebra/builder.h"
#include "falgebra/update.h"
#include "test_util.h"

namespace treenum {
namespace {

// --- naive reference implementations -------------------------------------

std::map<TermNodeId, size_t> PreorderNumbers(const Term& term) {
  std::map<TermNodeId, size_t> num;
  size_t next = 0;
  auto walk = [&](auto&& self, TermNodeId id) -> void {
    num[id] = next++;
    if (!term.IsLeaf(id)) {
      self(self, term.node(id).left);
      self(self, term.node(id).right);
    }
  };
  walk(walk, term.root());
  return num;
}

TermNodeId NaiveLca(const Term& term, TermNodeId a, TermNodeId b) {
  std::vector<TermNodeId> ancestors;
  for (TermNodeId x = a; x != kNoTerm; x = term.node(x).parent) {
    ancestors.push_back(x);
  }
  for (TermNodeId y = b; y != kNoTerm; y = term.node(y).parent) {
    for (TermNodeId x : ancestors) {
      if (x == y) return y;
    }
  }
  return kNoTerm;
}

// Boxes containing var/×-gates ∪-reachable from gate `u` of `box`
// (the interesting boxes of {u}).
std::vector<TermNodeId> NaiveInteresting(const AssignmentCircuit& c,
                                         TermNodeId box, uint32_t u) {
  std::vector<TermNodeId> out;
  std::vector<std::pair<TermNodeId, uint32_t>> stack{{box, u}};
  std::set<std::pair<TermNodeId, uint32_t>> seen;
  const Term& term = c.term();
  while (!stack.empty()) {
    auto [b, g] = stack.back();
    stack.pop_back();
    if (!seen.emplace(b, g).second) continue;
    const Box bx = c.box(b);
    if (bx.HasNonUnionInput(g)) out.push_back(b);
    for (const auto& [side, state] : bx.child_union_inputs(g)) {
      TermNodeId child = side == 0 ? term.node(b).left : term.node(b).right;
      out.size();  // no-op
      stack.push_back(
          {child,
           static_cast<uint32_t>(c.box(child).union_idx(state))});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct Pipeline {
  HomogenizedTva h;
  Encoding enc;
  AssignmentCircuit circuit;
  EnumIndex index;

  Pipeline(const UnrankedTva& q, UnrankedTree tree)
      : h(HomogenizeBinaryTva(TranslateUnrankedTva(q).tva)),
        enc(EncodeTree(std::move(tree), q.num_labels())),
        circuit(&enc.term, &h.tva, &h.kind),
        index(&circuit) {
    circuit.BuildAll();
    index.BuildAll();
  }
};

void CheckIndexAgainstNaive(const AssignmentCircuit& circuit,
                            const EnumIndex& index) {
  const Term& term = circuit.term();
  ASSERT_EQ(index.ValidateStorage(), "");
  std::map<TermNodeId, size_t> pre = PreorderNumbers(term);
  for (TermNodeId id = 0; id < term.id_bound(); ++id) {
    if (!term.IsAlive(id)) continue;
    const Box box = circuit.box(id);
    if (box.num_unions() == 0) continue;
    const BoxIndex bi = index.at(id);
    ASSERT_EQ(bi.num_unions(), box.num_unions());

    // Candidates sorted strictly by preorder.
    for (size_t i = 0; i + 1 < bi.num_cands(); ++i) {
      EXPECT_LT(pre.at(bi.cand_box(static_cast<int32_t>(i))),
                pre.at(bi.cand_box(static_cast<int32_t>(i + 1))));
    }

    for (uint32_t u = 0; u < box.num_unions(); ++u) {
      std::vector<TermNodeId> interesting = NaiveInteresting(circuit, id, u);
      ASSERT_FALSE(interesting.empty());
      // fib = preorder-first interesting box.
      TermNodeId first = interesting[0];
      for (TermNodeId b : interesting) {
        if (pre.at(b) < pre.at(first)) first = b;
      }
      EXPECT_EQ(bi.cand_box(bi.fib(u)), first) << "box " << id << " gate "
                                               << u;
      // span = lca of all interesting boxes.
      TermNodeId lca = interesting[0];
      for (TermNodeId b : interesting) lca = NaiveLca(term, lca, b);
      EXPECT_EQ(bi.cand_box(bi.span(u)), lca) << "box " << id << " gate "
                                              << u;
    }

    // Candidate lca table agrees with the naive lca.
    for (size_t a = 0; a < bi.num_cands(); ++a) {
      for (size_t b = 0; b < bi.num_cands(); ++b) {
        TermNodeId expected = NaiveLca(term, bi.cand_box(static_cast<int32_t>(a)),
                                       bi.cand_box(static_cast<int32_t>(b)));
        EXPECT_EQ(bi.cand_box(bi.Lca(static_cast<int32_t>(a),
                                     static_cast<int32_t>(b))),
                  expected);
      }
    }

    // Reachability relations: R(cand, B)[g', u] iff g' ∪⇝ u. Verify via
    // the naive closure from each gate u.
    for (uint32_t u = 0; u < box.num_unions(); ++u) {
      // Gates reachable from u by ∪-paths, per box.
      std::map<TermNodeId, std::set<uint32_t>> reach;
      std::vector<std::pair<TermNodeId, uint32_t>> stack{{id, u}};
      while (!stack.empty()) {
        auto [b, g] = stack.back();
        stack.pop_back();
        if (!reach[b].insert(g).second) continue;
        const Box bx = circuit.box(b);
        for (const auto& [side, state] : bx.child_union_inputs(g)) {
          TermNodeId child =
              side == 0 ? term.node(b).left : term.node(b).right;
          stack.push_back(
              {child,
               static_cast<uint32_t>(circuit.box(child).union_idx(state))});
        }
      }
      for (int32_t c = 0; c < static_cast<int32_t>(bi.num_cands()); ++c) {
        TermNodeId cbox = bi.cand_box(c);
        const BitMatrixView rel = bi.cand_rel(c);
        const auto it = reach.find(cbox);
        for (size_t g = 0; g < circuit.box(cbox).num_unions(); ++g) {
          bool expected =
              it != reach.end() && it->second.count(static_cast<uint32_t>(g));
          EXPECT_EQ(rel.Get(g, u), expected)
              << "box " << id << " cand box " << cbox << " g " << g << " u "
              << u;
        }
      }
    }
  }
}

TEST(Index, MatchesNaiveReferenceOnQueries) {
  Rng rng(83);
  UnrankedTva queries[] = {QuerySelectLabel(2, 1),
                           QueryMarkedAncestor(3, 1, 2),
                           QueryDescendantPairs(2, 0, 1)};
  for (const UnrankedTva& q : queries) {
    for (int trial = 0; trial < 6; ++trial) {
      Pipeline p(q, RandomTree(1 + rng.Index(40), q.num_labels(), rng));
      CheckIndexAgainstNaive(p.circuit, p.index);
    }
  }
}

TEST(Index, MatchesNaiveReferenceOnPathTrees) {
  Rng rng(89);
  Pipeline p(QueryMarkedAncestor(3, 1, 2), PathTree(30, 3, rng));
  CheckIndexAgainstNaive(p.circuit, p.index);
}

TEST(Index, MatchesNaiveReferenceOnRandomAutomata) {
  Rng rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    UnrankedTva q = RandomUnrankedTva(rng, 3, 2, 1, 3, 8);
    Pipeline p(q, RandomTree(1 + rng.Index(25), 2, rng));
    CheckIndexAgainstNaive(p.circuit, p.index);
  }
}

// Oracle for the satellite bugfix: SpanLocal's linear Lca fold must equal
// the old quadratic implementation — the minimum candidate index over all
// pairwise lcas Lca(span[g_i], span[g_j]), i <= j (self-pairs included, as
// the old loop had them) — on randomized indexes and random gate subsets.
int32_t SpanLocalPairwiseOracle(const BoxIndex& bi,
                                const std::vector<uint32_t>& gates) {
  int32_t best = bi.span(gates[0]);
  for (size_t i = 0; i < gates.size(); ++i) {
    for (size_t j = i; j < gates.size(); ++j) {
      best = std::min(best, bi.Lca(bi.span(gates[i]), bi.span(gates[j])));
    }
  }
  return best;
}

TEST(Index, SpanLocalFoldMatchesPairwiseOracle) {
  Rng rng(211);
  for (int trial = 0; trial < 8; ++trial) {
    UnrankedTva q = trial % 2 ? RandomUnrankedTva(rng, 3, 2, 1, 3, 8)
                              : QueryMarkedAncestor(3, 1, 2);
    Pipeline p(q, RandomTree(5 + rng.Index(40), q.num_labels(), rng));
    const Term& term = p.circuit.term();
    for (TermNodeId id = 0; id < term.id_bound(); ++id) {
      if (!term.IsAlive(id)) continue;
      size_t nu = p.circuit.box(id).num_unions();
      if (nu == 0) continue;
      const BoxIndex bi = p.index.at(id);
      for (int subset = 0; subset < 10; ++subset) {
        std::vector<uint32_t> gates;
        for (uint32_t u = 0; u < nu; ++u) {
          if (rng.Index(2)) gates.push_back(u);
        }
        if (gates.empty()) gates.push_back(static_cast<uint32_t>(rng.Index(nu)));
        EXPECT_EQ(bi.SpanLocal(gates), SpanLocalPairwiseOracle(bi, gates))
            << "box " << id;
        EXPECT_EQ(p.index.SpanOfSet(id, gates),
                  SpanLocalPairwiseOracle(bi, gates));
      }
    }
  }
}

TEST(Index, IncrementalRebuildMatchesFresh) {
  Rng rng(101);
  UnrankedTva q = QuerySelectLabel(2, 1);
  HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
  DynamicEncoding dyn(RandomTree(30, 2, rng), 2);
  AssignmentCircuit circuit(&dyn.term(), &h.tva, &h.kind);
  circuit.BuildAll();
  EnumIndex index(&circuit);
  index.BuildAll();

  for (int step = 0; step < 25; ++step) {
    std::vector<NodeId> nodes = dyn.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    UpdateResult r =
        step % 2 ? dyn.InsertFirstChild(n, 1)
                 : dyn.Relabel(n, static_cast<Label>(rng.Index(2)));
    for (TermNodeId id : r.freed) {
      circuit.FreeBox(id);
      index.FreeBoxIndex(id);
    }
    for (TermNodeId id : r.changed_bottom_up) {
      circuit.RebuildBox(id);
      index.RebuildBoxIndex(id);
    }
    CheckIndexAgainstNaive(circuit, index);
  }
}

}  // namespace
}  // namespace treenum
