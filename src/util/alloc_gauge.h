// Process-wide heap allocation gauge.
//
// The counters live in the core library, but the global operator new/delete
// replacements that feed them live in a separate object library
// (`treenum_alloc_gauge`, src/util/alloc_gauge_hooks.cpp) linked only into
// binaries that measure allocations — the replacement costs ~30% on
// allocation-heavy paths, so production consumers and latency benchmarks
// must not inherit it. In a binary without the hooks, AllocGaugeActive()
// is false and every counter stays 0.
//
// Thread safety: the counters are relaxed atomics, so the hooks may fire
// concurrently from any thread — in particular from the ThreadPool lanes
// of DynamicDocument's parallel refresh fan-out — without invalidating the
// zero-allocation steady-state assertions read on the main thread. Relaxed
// ordering is sufficient because the assertions only compare before/after
// deltas across a joined fork-join region (the join publishes the
// increments); no cross-counter consistency is implied mid-flight.
#ifndef TREENUM_UTIL_ALLOC_GAUGE_H_
#define TREENUM_UTIL_ALLOC_GAUGE_H_

#include <cstddef>
#include <cstdint>

namespace treenum {

/// True iff the counting operator new/delete hooks are linked into this
/// binary. Zero-allocation assertions must check this first — without the
/// hooks the deltas are vacuously zero.
bool AllocGaugeActive();

/// Number of global operator new calls since process start (0 without hooks).
uint64_t AllocCount();
/// Number of global operator delete calls since process start.
uint64_t FreeCount();
/// Total bytes requested through global operator new since process start.
uint64_t AllocBytes();

/// Scoped delta reader: captures the counters at construction; the
/// accessors report growth since then.
class AllocGaugeScope {
 public:
  AllocGaugeScope() : allocs_(AllocCount()), bytes_(AllocBytes()) {}
  uint64_t allocs() const { return AllocCount() - allocs_; }
  uint64_t bytes() const { return AllocBytes() - bytes_; }

 private:
  uint64_t allocs_;
  uint64_t bytes_;
};

namespace internal {

/// Called by the hook translation unit only.
void RecordAlloc(size_t bytes);
void RecordFree();
bool MarkGaugeActive();

}  // namespace internal
}  // namespace treenum

#endif  // TREENUM_UTIL_ALLOC_GAUGE_H_
