#include "util/random.h"

// Rng is header-only; this translation unit exists so the build file can
// list one .cpp per header uniformly.
namespace treenum {}
