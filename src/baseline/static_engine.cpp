#include "baseline/static_engine.h"

namespace treenum {

StaticEngine::StaticEngine(UnrankedTree tree, UnrankedTva query)
    : tree_(std::move(tree)), query_(std::move(query)) {
  Rebuild();
}

void StaticEngine::Rebuild() {
  inner_ = std::make_unique<TreeEnumerator>(tree_, query_);
}

void StaticEngine::Relabel(NodeId n, Label l) {
  tree_.Relabel(n, l);
  Rebuild();
}

NodeId StaticEngine::InsertFirstChild(NodeId n, Label l) {
  NodeId u = tree_.InsertFirstChild(n, l);
  Rebuild();
  return u;
}

NodeId StaticEngine::InsertRightSibling(NodeId n, Label l) {
  NodeId u = tree_.InsertRightSibling(n, l);
  Rebuild();
  return u;
}

void StaticEngine::DeleteLeaf(NodeId n) {
  tree_.DeleteLeaf(n);
  Rebuild();
}

}  // namespace treenum
