// Snapshot publication over the copy-on-write term (falgebra/term.h).
//
// The document layer is single-writer / multi-reader: one thread edits the
// encoding while any number of reader threads enumerate. Every committed
// edit publishes the new term root as an immutable `Snapshot`; readers pin
// the snapshot they start on (`SnapshotRef`, a plain refcount handle) and
// keep enumerating that version while the writer moves on — old snapshots
// double as time-travel queries.
//
// Lifecycle (see ARCHITECTURE.md for the full diagram):
//
//   Publish  (writer)  pool-allocate a Snapshot, PinRoot the current term
//                      root, capture the current epoch, BumpEpoch so every
//                      pre-publish node version freezes, swap it in as the
//                      current snapshot (mutex), release the previous one.
//   Pin      (reader)  Current() takes the mutex, bumps the refcount, and
//                      returns a SnapshotRef.
//   Retire   (any)     the last SnapshotRef release enqueues the snapshot
//                      on the retired list (mutex) — no term work happens
//                      on the reader thread.
//   Drain    (writer)  DrainRetired, called before the next edit, unpins
//                      each retired root — SweepZeros reclaims the node
//                      versions only that snapshot kept alive — and
//                      recycles the Snapshot object into the pool.
//
// The retire → drain mutex hand-off is the happens-before edge that makes
// span recycling safe: a freed node's circuit/index spans are only released
// (and thus reusable by the writer) after the last reader of that version
// has provably finished.
//
// Steady state is allocation-free: Snapshot objects recycle through a pool
// (slab-backed), the retired/drain vectors keep their capacity, and the
// unpinned node versions feed the term's free list, which the next edit's
// path copies consume.
#ifndef TREENUM_CORE_SNAPSHOT_H_
#define TREENUM_CORE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "falgebra/term.h"

namespace treenum {

class TermSnapshots;

/// One published term version: the pinned root and the epoch it captured.
/// Immutable after publication; refcounted via SnapshotRef. Allocated and
/// recycled by TermSnapshots only.
class Snapshot {
 public:
  TermNodeId root() const { return root_; }
  uint64_t epoch() const { return epoch_; }

  Snapshot() = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

 private:
  friend class TermSnapshots;
  friend class SnapshotRef;

  TermNodeId root_ = kNoTerm;
  uint64_t epoch_ = 0;
  std::atomic<uint32_t> refs_{0};
  TermSnapshots* owner_ = nullptr;
};

/// RAII handle pinning one Snapshot. Copyable (bumps the count) and movable;
/// the last release enqueues the snapshot for writer-side retirement. Must
/// not outlive the owning TermSnapshots (i.e. the document).
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(const SnapshotRef& o) : snap_(o.snap_) {
    if (snap_) snap_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  SnapshotRef(SnapshotRef&& o) noexcept : snap_(o.snap_) { o.snap_ = nullptr; }
  SnapshotRef& operator=(SnapshotRef o) noexcept {
    std::swap(snap_, o.snap_);
    return *this;
  }
  ~SnapshotRef() { Reset(); }

  explicit operator bool() const { return snap_ != nullptr; }
  const Snapshot* get() const { return snap_; }
  TermNodeId root() const { return snap_->root(); }
  uint64_t epoch() const { return snap_->epoch(); }

  /// Releases the pin; on the last release the snapshot is queued for the
  /// writer to drain. Safe to call from any thread.
  void Reset();

 private:
  friend class TermSnapshots;
  /// Adopts an already-counted reference.
  explicit SnapshotRef(Snapshot* s) : snap_(s) {}

  Snapshot* snap_ = nullptr;
};

/// Publishes and recycles Snapshots over one Term. Publish/DrainRetired are
/// writer-thread-only; Current() and SnapshotRef releases may run on any
/// thread concurrently with the writer.
class TermSnapshots {
 public:
  explicit TermSnapshots(Term* term) : term_(term) {}

  TermSnapshots(const TermSnapshots&) = delete;
  TermSnapshots& operator=(const TermSnapshots&) = delete;

  /// Releases the current snapshot and reclaims everything retired. Any
  /// still-outstanding SnapshotRef is a caller bug (dangling pin).
  ~TermSnapshots() {
    if (current_) {
      Snapshot* cur = current_;
      current_ = nullptr;
      if (cur->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Retire(cur);
      }
    }
    DrainRetired(nullptr);
  }

  /// Publishes the term's current root as the new current snapshot (writer
  /// thread). Pool-recycled: allocation-free once the pool is warm.
  void Publish() {
    Snapshot* s = AllocSnapshot();
    s->root_ = term_->root();
    s->epoch_ = term_->epoch();
    s->owner_ = this;
    // One reference held by current_. Readers add theirs under the mutex.
    s->refs_.store(1, std::memory_order_relaxed);
    term_->PinRoot(s->root_);
    term_->BumpEpoch();
    Snapshot* old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = current_;
      current_ = s;
      ++published_;
    }
    if (old && old->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Retire(old);
    }
  }

  /// Pins and returns the current snapshot. Any thread.
  SnapshotRef Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    current_->refs_.fetch_add(1, std::memory_order_relaxed);
    return SnapshotRef(current_);
  }

  /// Unpins every retired snapshot root, reclaiming the node versions only
  /// they kept alive (ids appended to `freed` if non-null), and recycles the
  /// Snapshot objects. Writer thread only — called before the next edit.
  void DrainRetired(std::vector<TermNodeId>* freed) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (retired_.empty()) return;
      drain_scratch_.swap(retired_);
    }
    for (Snapshot* s : drain_scratch_) {
      term_->UnpinRoot(s->root_, freed);
      pool_.push_back(s);
    }
    drain_scratch_.clear();
  }

  /// Lifetime number of publishes (perf gauge).
  uint64_t published() const {
    std::lock_guard<std::mutex> lock(mu_);
    return published_;
  }

  /// Snapshots currently alive: the current one plus every reader-pinned or
  /// not-yet-drained retired one (= the term's live pin count).
  size_t live_snapshots() const { return term_->live_pins(); }

 private:
  friend class SnapshotRef;

  /// Last-reference hand-off: enqueue for the writer's next drain. Any
  /// thread; the mutex push is the release edge the writer's drain acquires.
  void Retire(Snapshot* s) {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(s);
  }

  Snapshot* AllocSnapshot() {
    if (!pool_.empty()) {
      Snapshot* s = pool_.back();
      pool_.pop_back();
      return s;
    }
    slabs_.push_back(std::make_unique<Snapshot>());
    return slabs_.back().get();
  }

  Term* term_;
  mutable std::mutex mu_;
  Snapshot* current_ = nullptr;          // guarded by mu_
  std::vector<Snapshot*> retired_;       // guarded by mu_
  uint64_t published_ = 0;               // guarded by mu_
  std::vector<Snapshot*> drain_scratch_; // writer-only
  std::vector<Snapshot*> pool_;          // writer-only
  std::vector<std::unique_ptr<Snapshot>> slabs_;  // writer-only
};

inline void SnapshotRef::Reset() {
  if (snap_ && snap_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    snap_->owner_->Retire(snap_);
  }
  snap_ = nullptr;
}

}  // namespace treenum

#endif  // TREENUM_CORE_SNAPSHOT_H_
