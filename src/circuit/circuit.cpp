#include "circuit/circuit.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/check.h"

namespace treenum {

AssignmentCircuit::AssignmentCircuit(const Term* term, const BinaryTva* tva,
                                     const std::vector<uint8_t>* kind)
    : term_(term),
      tva_(tva),
      kind_(kind),
      w_(static_cast<uint32_t>(tva->num_states())) {
  TREENUM_CHECK(tva->num_states() <= kMaxCircuitWidth,
                "automaton too wide for 32-bit gate ids (w^2 must fit)");
  local_in_scratch_.resize(w_);
  child_in_scratch_.resize(w_);
  has_top_scratch_.resize(w_, 0);
  // Build the grouped-CSR δ cache now, while this thread owns the automaton:
  // box rebuilds may later run from parallel refresh workers, and the cache
  // mutates on first access.
  tva->EnsureDeltaGroups();
}

void AssignmentCircuit::EnsureSlot(TermNodeId id) {
  if (spans_.size() > id) return;
  size_t n = static_cast<size_t>(id) + 1;
  spans_.resize(n);
  gamma_.resize(n * w_, GateKind::kBot);
  union_idx_.resize(n * w_, kNoGate);
  union_states_.resize(n * w_);
  gate_ends_.resize(n * w_);
}

Box AssignmentCircuit::box(TermNodeId id) const {
  assert(id < spans_.size());
  Box b;
  size_t base = static_cast<size_t>(id) * w_;
  b.gamma_ = gamma_.data() + base;
  b.union_idx_ = union_idx_.data() + base;
  b.union_states_ = union_states_.data() + base;
  b.ends_ = gate_ends_.data() + base;
  const BoxSpans& s = spans_[id];
  b.cross_gates_ = cross_gate_pool_.at(s.cross_gates.off);
  b.cross_in_ = cross_in_pool_.at(s.cross_in.off);
  b.child_in_ = child_in_pool_.at(s.child_in.off);
  b.var_in_ = var_in_pool_.at(s.var_in.off);
  b.var_masks_ = var_mask_pool_.at(s.var_masks.off);
  b.num_unions_ = s.num_unions;
  b.num_cross_gates_ = s.cross_gates.len;
  b.num_var_masks_ = s.var_masks.len;
  return b;
}

void AssignmentCircuit::BuildAll() {
  // Post-order over the term with an explicit stack.
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term_->root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term_->node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBox(f.id);
  }
}

void AssignmentCircuit::RebuildBox(TermNodeId id) {
  EnsureSlot(id);
  if (term_->IsLeaf(id)) {
    BuildLeafBox(id);
  } else {
    BuildInternalBox(id);
  }
}

void AssignmentCircuit::FreeBox(TermNodeId id) {
  if (id >= spans_.size()) return;
  BoxSpans& s = spans_[id];
  cross_gate_pool_.Release(s.cross_gates);
  cross_in_pool_.Release(s.cross_in);
  child_in_pool_.Release(s.child_in);
  var_in_pool_.Release(s.var_in);
  var_mask_pool_.Release(s.var_masks);
  s.num_unions = 0;
  size_t base = static_cast<size_t>(id) * w_;
  std::fill_n(gamma_.data() + base, w_, GateKind::kBot);
  std::fill_n(union_idx_.data() + base, w_, kNoGate);
}

void AssignmentCircuit::ReserveForRebuild(size_t boxes) {
  size_t alive = term_->num_alive();
  if (alive == 0 || boxes == 0) return;
  // Per-box running averages (rounded up) scale the tail headroom.
  cross_gate_pool_.ReserveAdditional(boxes *
                                     (cross_gate_pool_.size() / alive + 1));
  cross_in_pool_.ReserveAdditional(boxes * (cross_in_pool_.size() / alive + 1));
  child_in_pool_.ReserveAdditional(boxes * (child_in_pool_.size() / alive + 1));
  var_in_pool_.ReserveAdditional(boxes * (var_in_pool_.size() / alive + 1));
  var_mask_pool_.ReserveAdditional(boxes * (var_mask_pool_.size() / alive + 1));
}

void AssignmentCircuit::BuildLeafBox(TermNodeId id) {
  const uint32_t w = w_;
  for (State q = 0; q < w; ++q) {
    local_in_scratch_[q].clear();
    child_in_scratch_[q].clear();
  }
  has_top_scratch_.assign(w, 0);
  var_masks_scratch_.clear();
  cross_gates_scratch_.clear();

  Label l = term_->node(id).label;
  for (const auto& [vars, q] : tva_->LeafInitsFor(l)) {
    if (vars == 0) {
      assert((*kind_)[q] == 0);
      has_top_scratch_[q] = 1;
    } else {
      assert((*kind_)[q] == 1);
      // Dedup masks by first appearance; leaf alphabets keep this list tiny,
      // so a linear scan beats any map.
      uint32_t vi = 0;
      while (vi < var_masks_scratch_.size() && var_masks_scratch_[vi] != vars) {
        ++vi;
      }
      if (vi == var_masks_scratch_.size()) var_masks_scratch_.push_back(vars);
      local_in_scratch_[q].push_back(vi);
    }
  }
  CommitUnions(id, /*is_leaf=*/true);
}

void AssignmentCircuit::BuildInternalBox(TermNodeId id) {
  const uint32_t w = w_;
  const TermNode& t = term_->node(id);
  // γ kinds live in the fixed-stride array, which cannot move during this
  // rebuild (EnsureSlot ran already), so raw child rows are safe to hold.
  const GateKind* lg = gamma_.data() + static_cast<size_t>(t.left) * w;
  const GateKind* rg = gamma_.data() + static_cast<size_t>(t.right) * w;
  Label l = t.label;

  for (State q = 0; q < w; ++q) {
    local_in_scratch_[q].clear();
    child_in_scratch_[q].clear();
  }
  has_top_scratch_.assign(w, 0);
  cross_gates_scratch_.clear();
  var_masks_scratch_.clear();

  // Iterate the grouped-CSR form of δ|l: one group per live (q1, q2) pair
  // instead of a w x w scan with a hash probe per pair — sparse automata
  // touch only |δ|l| groups, and the flat result array replaces 2.8e7-scale
  // hash lookups on large relabel batches.
  const std::vector<DeltaGroup>& groups = tva_->DeltaGroupsFor(l);
  const State* results = tva_->delta_results().data();
  for (const DeltaGroup& g : groups) {
    GateKind k1 = lg[g.left];
    if (k1 == GateKind::kBot) continue;
    GateKind k2 = rg[g.right];
    if (k2 == GateKind::kBot) continue;
    // Each (q1, q2) pair owns exactly one group, so the shared ×-gate
    // д^{q1,q2} is created lazily on its first live result state.
    int32_t cross_id = -1;
    for (uint32_t i = g.begin; i < g.end; ++i) {
      State q = results[i];
      if (k1 == GateKind::kTop && k2 == GateKind::kTop) {
        assert((*kind_)[q] == 0 && "homogenization violated");
        has_top_scratch_[q] = 1;
      } else if (k1 == GateKind::kTop) {
        // д^{q1,q2} collapses to γ(right, q2).
        child_in_scratch_[q].push_back(ChildUnionInput{uint8_t{1}, g.right});
      } else if (k2 == GateKind::kTop) {
        child_in_scratch_[q].push_back(ChildUnionInput{uint8_t{0}, g.left});
      } else {
        if (cross_id < 0) {
          cross_id = static_cast<int32_t>(cross_gates_scratch_.size());
          cross_gates_scratch_.push_back(CrossGate{g.left, g.right});
        }
        local_in_scratch_[q].push_back(static_cast<uint32_t>(cross_id));
      }
    }
  }
  CommitUnions(id, /*is_leaf=*/false);
}

void AssignmentCircuit::CommitUnions(TermNodeId id, bool is_leaf) {
  const uint32_t w = w_;
  size_t base = static_cast<size_t>(id) * w;
  GateKind* gamma = gamma_.data() + base;
  int32_t* uidx = union_idx_.data() + base;
  State* ustates = union_states_.data() + base;
  GateEnds* ends = gate_ends_.data() + base;
  BoxSpans& s = spans_[id];

  uint32_t nu = 0;
  // 64-bit accumulators: a box can hold up to w^3 input entries (one per
  // (q1, q2, result) triple), which overflows uint32_t long before the
  // kMaxCircuitWidth bound does — check loudly instead of wrapping.
  uint64_t nlocal = 0;
  uint64_t nchild = 0;
  for (State q = 0; q < w; ++q) {
    bool has =
        !local_in_scratch_[q].empty() || !child_in_scratch_[q].empty();
    if (has_top_scratch_[q]) {
      assert(!has && "homogenization violated");
      gamma[q] = GateKind::kTop;
      uidx[q] = kNoGate;
      continue;
    }
    if (!has) {
      gamma[q] = GateKind::kBot;
      uidx[q] = kNoGate;
      continue;
    }
    gamma[q] = GateKind::kUnion;
    uidx[q] = static_cast<int32_t>(nu);
    ustates[nu] = q;
    nlocal += local_in_scratch_[q].size();
    nchild += child_in_scratch_[q].size();
    ++nu;
  }
  s.num_unions = nu;
  TREENUM_CHECK(nlocal <= (uint64_t{1} << 31) && nchild <= (uint64_t{1} << 31),
                "box wire lists exceed 32-bit CSR offsets");

  // Span turnover: each pool span is reused in place when its capacity
  // suffices (Ensure), so steady-state refreshes stay allocation-free.
  cross_gate_pool_.Ensure(s.cross_gates,
                          static_cast<uint32_t>(cross_gates_scratch_.size()));
  var_mask_pool_.Ensure(s.var_masks,
                        static_cast<uint32_t>(var_masks_scratch_.size()));
  uint32_t nlocal32 = static_cast<uint32_t>(nlocal);
  cross_in_pool_.Ensure(s.cross_in, is_leaf ? 0 : nlocal32);
  var_in_pool_.Ensure(s.var_in, is_leaf ? nlocal32 : 0);
  child_in_pool_.Ensure(s.child_in, static_cast<uint32_t>(nchild));

  std::copy(cross_gates_scratch_.begin(), cross_gates_scratch_.end(),
            cross_gate_pool_.at(s.cross_gates.off));
  std::copy(var_masks_scratch_.begin(), var_masks_scratch_.end(),
            var_mask_pool_.at(s.var_masks.off));

  uint32_t* local_dst = is_leaf ? var_in_pool_.at(s.var_in.off)
                                : cross_in_pool_.at(s.cross_in.off);
  ChildUnionInput* child_dst = child_in_pool_.at(s.child_in.off);
  uint32_t lo = 0;
  uint32_t ch = 0;
  for (uint32_t u = 0; u < nu; ++u) {
    State q = ustates[u];
    for (uint32_t v : local_in_scratch_[q]) local_dst[lo++] = v;
    for (const ChildUnionInput& ci : child_in_scratch_[q]) {
      child_dst[ch++] = ci;
    }
    ends[u].cross_end = is_leaf ? 0 : lo;
    ends[u].var_end = is_leaf ? lo : 0;
    ends[u].child_end = ch;
  }
}

size_t AssignmentCircuit::CountGates() const {
  size_t n = 0;
  for (TermNodeId id = 0; id < spans_.size(); ++id) {
    if (!term_->IsAlive(id)) continue;
    const BoxSpans& s = spans_[id];
    n += w_;  // γ gates (⊤/⊥/∪)
    n += s.cross_gates.len;
    n += s.var_masks.len;
  }
  return n;
}

std::string AssignmentCircuit::ValidateStorage() const {
  std::ostringstream err;
  std::vector<LiveSpan> cg, ci, ch, vi, vm;
  for (TermNodeId id = 0; id < spans_.size(); ++id) {
    if (!term_->IsAlive(id)) continue;
    const BoxSpans& s = spans_[id];
    if (s.num_unions > w_) {
      err << "box " << id << " has more unions than states";
      return err.str();
    }
    if (term_->IsLeaf(id)) {
      if (s.cross_gates.len != 0 || s.cross_in.len != 0 ||
          s.child_in.len != 0) {
        err << "leaf box " << id << " owns internal-box wires";
        return err.str();
      }
    } else if (s.var_in.len != 0 || s.var_masks.len != 0) {
      err << "internal box " << id << " owns var gates";
      return err.str();
    }
    for (const auto& [ref, out] :
         {std::make_pair(&s.cross_gates, &cg), std::make_pair(&s.cross_in, &ci),
          std::make_pair(&s.child_in, &ch), std::make_pair(&s.var_in, &vi),
          std::make_pair(&s.var_masks, &vm)}) {
      if (ref->len > ref->cap) {
        err << "box " << id << " span length exceeds capacity";
        return err.str();
      }
      if (ref->cap != 0) out->push_back(LiveSpan{ref->off, ref->cap, id});
    }
    size_t base = static_cast<size_t>(id) * w_;
    uint32_t seen = 0;
    for (State q = 0; q < w_; ++q) {
      int32_t d = union_idx_[base + q];
      if (gamma_[base + q] == GateKind::kUnion) {
        if (d < 0 || static_cast<uint32_t>(d) >= s.num_unions ||
            union_states_[base + d] != q) {
          err << "box " << id << " dense index broken for state " << q;
          return err.str();
        }
        ++seen;
      } else if (d != kNoGate) {
        err << "box " << id << " stale union_idx for state " << q;
        return err.str();
      }
    }
    if (seen != s.num_unions) {
      err << "box " << id << " union count mismatch";
      return err.str();
    }
    // CSR ends must be monotone and bounded by the span lengths.
    uint32_t pc = 0, ph = 0, pv = 0;
    for (uint32_t u = 0; u < s.num_unions; ++u) {
      const GateEnds& e = gate_ends_[base + u];
      if (e.cross_end < pc || e.child_end < ph || e.var_end < pv ||
          e.cross_end > s.cross_in.len || e.child_end > s.child_in.len ||
          e.var_end > s.var_in.len) {
        err << "box " << id << " CSR offsets broken at gate " << u;
        return err.str();
      }
      pc = e.cross_end;
      ph = e.child_end;
      pv = e.var_end;
    }
    if (s.num_unions > 0 &&
        (pc != s.cross_in.len || ph != s.child_in.len || pv != s.var_in.len)) {
      err << "box " << id << " CSR tail does not cover its span";
      return err.str();
    }
  }
  std::string e;
  if (!(e = CheckPoolSpans("cross_gate", cross_gate_pool_.size(), cg)).empty())
    return e;
  if (!(e = CheckPoolSpans("cross_in", cross_in_pool_.size(), ci)).empty())
    return e;
  if (!(e = CheckPoolSpans("child_in", child_in_pool_.size(), ch)).empty())
    return e;
  if (!(e = CheckPoolSpans("var_in", var_in_pool_.size(), vi)).empty())
    return e;
  if (!(e = CheckPoolSpans("var_mask", var_mask_pool_.size(), vm)).empty())
    return e;
  return std::string();
}

}  // namespace treenum
