// Copy-on-grow flat storage for single-writer / multi-reader sharing.
//
// A CowStore<T> behaves like a std::vector<T> for the (single) writer
// thread, but publishes its backing buffer through an atomic pointer so
// concurrent reader threads can index into it without locking:
//
//  - The writer grows the store geometrically. On growth the old buffer is
//    NOT freed: its contents are memcpy'd into the new buffer, the base
//    pointer is store-released, and the old buffer is retired (kept alive
//    until the store is destroyed). A reader that loaded the base pointer
//    just before a growth keeps reading the old buffer — which still holds
//    the bit-identical data for every element that existed at load time.
//  - Element *mutation* safety is the caller's contract: readers may only
//    touch elements that were fully written before the pointer (or a
//    higher-level snapshot handle) was published to them, and the writer
//    must never mutate an element a reader may still dereference. The term
//    snapshot layer (core/snapshot.h) enforces this with per-node refcounts
//    and epoch-based copy-on-write.
//
// Retired buffers form a geometric series, so total retained memory is at
// most ~2x the live buffer — the price of lock-free readers without hazard
// pointers. T must be trivially copyable (elements move by memcpy).
#ifndef TREENUM_UTIL_COW_STORE_H_
#define TREENUM_UTIL_COW_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

namespace treenum {

template <typename T, size_t Align = alignof(T)>
class CowStore {
  static_assert(std::is_trivially_copyable<T>::value,
                "CowStore elements are relocated by memcpy");
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");

 public:
  CowStore() = default;
  ~CowStore() { Deallocate(); }

  CowStore(const CowStore&) = delete;
  CowStore& operator=(const CowStore&) = delete;

  CowStore(CowStore&& o) noexcept
      : buf_(o.buf_),
        cap_(o.cap_),
        size_(o.size_.load(std::memory_order_relaxed)),
        retired_(std::move(o.retired_)) {
    base_.store(buf_, std::memory_order_relaxed);
    o.buf_ = nullptr;
    o.base_.store(nullptr, std::memory_order_relaxed);
    o.cap_ = 0;
    o.size_.store(0, std::memory_order_relaxed);
    o.retired_.clear();
  }
  CowStore& operator=(CowStore&& o) noexcept {
    if (this != &o) {
      Deallocate();
      buf_ = o.buf_;
      cap_ = o.cap_;
      size_.store(o.size_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      retired_ = std::move(o.retired_);
      base_.store(buf_, std::memory_order_relaxed);
      o.buf_ = nullptr;
      o.base_.store(nullptr, std::memory_order_relaxed);
      o.cap_ = 0;
      o.size_.store(0, std::memory_order_relaxed);
      o.retired_.clear();
    }
    return *this;
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return cap_; }
  /// Number of retired (still-retained) buffers — introspection for tests.
  size_t retired_buffers() const { return retired_.size(); }

  /// Writer-side fast access (no atomics; the writer owns buf_).
  T* data() { return buf_; }
  T& operator[](size_t i) { return buf_[i]; }

  /// Reader-safe access: acquire-loads the published base pointer. Safe to
  /// call concurrently with writer growth (not with mutation of element i).
  const T* data() const { return base_.load(std::memory_order_acquire); }
  const T& operator[](size_t i) const { return data()[i]; }

  T& back() { return buf_[size() - 1]; }

  void reserve(size_t n) { EnsureCap(n); }

  /// Grows to n elements, value-initializing the tail (vector semantics);
  /// never shrinks the buffer (size can go down, capacity never does).
  void resize(size_t n) {
    size_t old = size();
    EnsureCap(n);
    for (size_t i = old; i < n; ++i) new (buf_ + i) T();
    size_.store(n, std::memory_order_relaxed);
  }
  /// Grows to n elements, filling the tail with v.
  void resize(size_t n, const T& v) {
    size_t old = size();
    EnsureCap(n);
    for (size_t i = old; i < n; ++i) new (buf_ + i) T(v);
    size_.store(n, std::memory_order_relaxed);
  }

  void push_back(const T& v) {
    size_t n = size();
    EnsureCap(n + 1);
    new (buf_ + n) T(v);
    size_.store(n + 1, std::memory_order_relaxed);
  }

  void clear() { size_.store(0, std::memory_order_relaxed); }

 private:
  static T* AllocBuffer(size_t cap) {
    void* p = ::operator new(cap * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  static void FreeBuffer(T* p) {
    ::operator delete(p, std::align_val_t(Align));
  }

  void EnsureCap(size_t n) {
    if (n <= cap_) return;
    size_t newcap = cap_ < 8 ? 8 : cap_ * 2;
    if (newcap < n) newcap = n;
    T* nb = AllocBuffer(newcap);
    size_t sz = size();
    if (sz > 0) std::memcpy(nb, buf_, sz * sizeof(T));
    if (buf_ != nullptr) retired_.push_back(buf_);
    buf_ = nb;
    cap_ = newcap;
    // Release: the memcpy above happens-before any reader's acquire load.
    base_.store(nb, std::memory_order_release);
  }

  void Deallocate() {
    for (T* p : retired_) FreeBuffer(p);
    retired_.clear();
    if (buf_ != nullptr) FreeBuffer(buf_);
    buf_ = nullptr;
    base_.store(nullptr, std::memory_order_relaxed);
    cap_ = 0;
    size_.store(0, std::memory_order_relaxed);
  }

  T* buf_ = nullptr;                  ///< Writer's cached base pointer.
  std::atomic<T*> base_{nullptr};     ///< Published base for readers.
  size_t cap_ = 0;
  std::atomic<size_t> size_{0};
  std::vector<T*> retired_;           ///< Old buffers kept for stale readers.
};

}  // namespace treenum

#endif  // TREENUM_UTIL_COW_STORE_H_
