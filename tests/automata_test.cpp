#include <gtest/gtest.h>

#include "automata/binary_tva.h"
#include "automata/homogenize.h"
#include "automata/unranked_tva.h"
#include "automata/wva.h"
#include "test_util.h"

namespace treenum {
namespace {

TEST(BinaryTva, LookupStructures) {
  BinaryTva a(3, 4, 2);
  a.AddLeafInit(0, 0b01, 1);
  a.AddLeafInit(0, 0b00, 0);
  a.AddTransition(2, 0, 1, 2);
  a.AddTransition(2, 0, 1, 1);
  a.AddFinal(2);

  EXPECT_EQ(a.LeafInitsFor(0).size(), 2u);
  EXPECT_TRUE(a.LeafInitsFor(1).empty());
  EXPECT_EQ(a.TransitionsFor(2, 0, 1).size(), 2u);
  EXPECT_TRUE(a.TransitionsFor(2, 1, 0).empty());
  EXPECT_TRUE(a.IsFinal(2));
  EXPECT_FALSE(a.IsFinal(0));
  EXPECT_EQ(a.size(), 3u + 2u + 2u);
}

TEST(BinaryTva, DeduplicatesEntries) {
  BinaryTva a(2, 3, 1);
  a.AddLeafInit(0, 1, 1);
  a.AddLeafInit(0, 1, 1);
  a.AddTransition(2, 0, 0, 1);
  a.AddTransition(2, 0, 0, 1);
  EXPECT_EQ(a.leaf_inits().size(), 1u);
  EXPECT_EQ(a.transitions().size(), 1u);
}

TEST(UnrankedTva, AcceptsStepwiseSemantics) {
  // Query: tree contains a node labeled 1 (no variables).
  UnrankedTva a(2, 2, 0);
  a.AddInit(0, 0, 0);
  a.AddInit(1, 0, 1);
  a.AddTransition(0, 0, 0);
  a.AddTransition(0, 1, 1);
  a.AddTransition(1, 0, 1);
  a.AddTransition(1, 1, 1);
  a.AddFinal(1);

  UnrankedTree yes = UnrankedTree::Parse("(a (a (b)) (a))");
  UnrankedTree no = UnrankedTree::Parse("(a (a) (a (a)))");
  std::vector<VarMask> empty(yes.id_bound(), 0);
  EXPECT_TRUE(a.Accepts(yes, empty));
  std::vector<VarMask> empty2(no.id_bound(), 0);
  EXPECT_FALSE(a.Accepts(no, empty2));
}

TEST(UnrankedTva, AnnotationsReadAtAllNodes) {
  // Query: the root is annotated with variable x (internal node!).
  UnrankedTva a(2, 1, 1);
  a.AddInit(0, 0, 0);
  a.AddInit(0, 1, 1);
  a.AddTransition(0, 0, 0);
  a.AddTransition(1, 0, 1);
  a.AddFinal(1);

  UnrankedTree t = UnrankedTree::Parse("(a (a))");
  std::vector<VarMask> nu(t.id_bound(), 0);
  nu[t.root()] = 1;
  EXPECT_TRUE(a.Accepts(t, nu));
  nu[t.root()] = 0;
  nu[t.children(t.root())[0]] = 1;
  EXPECT_FALSE(a.Accepts(t, nu));
}

TEST(UnrankedTva, BruteForceEnumerationTiny) {
  // Φ(x) = x labeled b. Tree (a (b) (b)).
  UnrankedTva a(2, 2, 1);
  a.AddInit(0, 0, 0);
  a.AddInit(1, 0, 0);
  a.AddInit(1, 1, 1);
  a.AddTransition(0, 0, 0);
  a.AddTransition(0, 1, 1);
  a.AddTransition(1, 0, 1);
  a.AddFinal(1);

  UnrankedTree t = UnrankedTree::Parse("(a (b) (b))");
  std::vector<Assignment> res = a.BruteForceAssignments(t);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].size(), 1u);
  EXPECT_EQ(res[1].size(), 1u);
}

TEST(Wva, AcceptsAndBruteForce) {
  // Words over {a, b}; query: some position labeled b, bound to x.
  Wva a(2, 2, 1);
  a.AddInitial(0);
  a.AddTransition(0, 0, 0, 0);
  a.AddTransition(0, 1, 0, 0);
  a.AddTransition(0, 1, 1, 1);
  a.AddTransition(1, 0, 0, 1);
  a.AddTransition(1, 1, 0, 1);
  a.AddFinal(1);

  Word w{0, 1, 0, 1};
  std::vector<VarMask> nu(4, 0);
  nu[1] = 1;
  EXPECT_TRUE(a.Accepts(w, nu));
  nu[1] = 0;
  nu[0] = 1;
  EXPECT_FALSE(a.Accepts(w, nu));

  std::vector<Assignment> res = a.BruteForceAssignments(w);
  ASSERT_EQ(res.size(), 2u);  // positions 1 and 3
}

TEST(Homogenize, StateKindsFixpoint) {
  // One state reachable only empty, one only non-empty, one both.
  BinaryTva a(3, 3, 1);
  TermAlphabet alpha(1);
  a.AddLeafInit(alpha.TreeLeaf(0), 0, 0);
  a.AddLeafInit(alpha.TreeLeaf(0), 1, 1);
  a.AddLeafInit(alpha.TreeLeaf(0), 0, 2);
  a.AddLeafInit(alpha.TreeLeaf(0), 1, 2);
  StateKinds k = ComputeStateKinds(a);
  EXPECT_TRUE(k.zero_state[0]);
  EXPECT_FALSE(k.one_state[0]);
  EXPECT_FALSE(k.zero_state[1]);
  EXPECT_TRUE(k.one_state[1]);
  EXPECT_TRUE(k.zero_state[2]);
  EXPECT_TRUE(k.one_state[2]);
  EXPECT_FALSE(IsHomogenized(a));
}

TEST(Homogenize, TrimRemovesUnreachable) {
  BinaryTva a(4, 3, 0);
  TermAlphabet alpha(1);
  a.AddLeafInit(alpha.TreeLeaf(0), 0, 0);
  a.AddTransition(alpha.Op(TermOp::kConcatHH), 0, 0, 1);
  // State 2 requires itself: unreachable. State 3 never mentioned.
  a.AddTransition(alpha.Op(TermOp::kConcatHH), 2, 0, 2);
  a.AddFinal(1);
  a.AddFinal(2);
  std::vector<State> map;
  BinaryTva trimmed = TrimBinaryTva(a, &map);
  EXPECT_EQ(trimmed.num_states(), 2u);
  EXPECT_EQ(map[2], kNoState);
  EXPECT_EQ(map[3], kNoState);
  EXPECT_EQ(trimmed.final_states().size(), 1u);
}

TEST(Homogenize, ProducesEquivalentHomogenizedAutomaton) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    BinaryTva a = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 8);
    HomogenizedTva h = HomogenizeBinaryTva(a);
    EXPECT_TRUE(IsHomogenized(h.tva));
    // Equivalence on random small terms.
    for (int t = 0; t < 5; ++t) {
      Term term(h.tva.num_labels() >= 2 * 2 + 5 ? TermAlphabet(2)
                                                : TermAlphabet(2));
      term.set_root(BuildRandomHHTerm(term, rng, 1 + rng.Index(4), 2));
      std::vector<Assignment> orig = TermBruteForceAssignments(a, term);
      std::vector<Assignment> homog = TermBruteForceAssignments(h.tva, term);
      EXPECT_EQ(orig, homog) << "trial " << trial;
    }
  }
}

TEST(Homogenize, KindsMatchComputedKinds) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    BinaryTva a = RandomBinaryTvaOnHH(rng, 4, 2, 2, 5, 10);
    HomogenizedTva h = HomogenizeBinaryTva(a);
    StateKinds k = ComputeStateKinds(h.tva);
    for (State q = 0; q < h.tva.num_states(); ++q) {
      EXPECT_EQ(h.kind[q] == 1, k.one_state[q]);
      EXPECT_EQ(h.kind[q] == 0, k.zero_state[q]);
    }
  }
}

}  // namespace
}  // namespace treenum
