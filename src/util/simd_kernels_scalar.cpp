// Scalar kernel tier: plain uint64 loops, compiled with the project's
// baseline flags only. Always available; the oracle every wide tier is
// tested against (tests/simd_kernels_test.cpp).
#include "util/simd_kernels.h"
#include "util/simd_kernels_common.h"

namespace treenum {
namespace internal {

namespace {

void OrIntoScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] |= src[i];
    dst[i + 1] |= src[i + 1];
    dst[i + 2] |= src[i + 2];
    dst[i + 3] |= src[i + 3];
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

bool AnyScalar(const uint64_t* words, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (words[i] | words[i + 1] | words[i + 2] | words[i + 3]) return true;
  }
  for (; i < n; ++i) {
    if (words[i]) return true;
  }
  return false;
}

}  // namespace

const BitKernels& ScalarKernels() {
  static const BitKernels k = {&OrIntoScalar, &ZeroWords,          &AnyScalar,
                               &PopcountWords, &ComposeBlockedScalar,
                               "scalar"};
  return k;
}

}  // namespace internal
}  // namespace treenum
