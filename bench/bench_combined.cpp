// Experiment E5 — tractable combined complexity (the paper's second
// contribution): the pipeline stays polynomial in the *nondeterministic*
// automaton, while the pre-existing approach (determinize, then run a
// deterministic-automaton algorithm) blows up exponentially.
//
// Workload: QueryAncestorAtDistance(k) — an O(k)-state nondeterministic
// stepwise TVA whose determinization must track subsets of distance
// counters.
#include <benchmark/benchmark.h>

#include "automata/determinize.h"
#include "automata/homogenize.h"
#include "automata/translate.h"
#include "bench_util.h"

namespace treenum {
namespace {

void BM_Combined_NondetPipeline(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  UnrankedTva q = QueryAncestorAtDistance(3, 1, k);
  UnrankedTree tree = bench::MakeTree(2048);
  size_t width = 0;
  for (auto _ : state) {
    TreeEnumerator e(tree, q);
    width = e.width();
    benchmark::DoNotOptimize(bench::Drain(e));
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["circuit_width"] = static_cast<double>(width);
}
BENCHMARK(BM_Combined_NondetPipeline)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Combined_Determinization(benchmark::State& state) {
  // The baseline's preprocessing bottleneck: subset-construct the translated
  // binary TVA. Reported: subset count (exponential in k) — the run aborts
  // the sweep where the cap (2^22 states) is exceeded.
  size_t k = static_cast<size_t>(state.range(0));
  UnrankedTva q = QueryAncestorAtDistance(3, 1, k);
  TranslatedTva tr = TranslateUnrankedTva(q);
  size_t subsets = 0;
  bool exceeded = false;
  for (auto _ : state) {
    auto det = DeterminizeBinaryTva(tr.tva, size_t{1} << 22);
    if (det.has_value()) {
      subsets = det->num_subsets;
    } else {
      exceeded = true;
    }
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["det_states"] =
      exceeded ? -1.0 : static_cast<double>(subsets);
  state.counters["nondet_states"] = static_cast<double>(tr.tva.num_states());
}
BENCHMARK(BM_Combined_Determinization)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Combined_TranslationSize(benchmark::State& state) {
  // |Q'| after translation+homogenization as a function of k: polynomial.
  size_t k = static_cast<size_t>(state.range(0));
  UnrankedTva q = QueryAncestorAtDistance(3, 1, k);
  size_t states = 0;
  for (auto _ : state) {
    HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
    states = h.tva.num_states();
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["homog_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Combined_TranslationSize)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace treenum
