#include "circuit/circuit.h"

#include <cassert>
#include <map>

namespace treenum {

AssignmentCircuit::AssignmentCircuit(const Term* term, const BinaryTva* tva,
                                     const std::vector<uint8_t>* kind)
    : term_(term), tva_(tva), kind_(kind) {}

void AssignmentCircuit::EnsureSlot(TermNodeId id) {
  if (boxes_.size() <= id) boxes_.resize(id + 1);
}

void AssignmentCircuit::BuildAll() {
  // Post-order over the term with an explicit stack.
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term_->root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term_->node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBox(f.id);
  }
}

void AssignmentCircuit::RebuildBox(TermNodeId id) {
  EnsureSlot(id);
  if (term_->IsLeaf(id)) {
    BuildLeafBox(id);
  } else {
    BuildInternalBox(id);
  }
}

void AssignmentCircuit::FreeBox(TermNodeId id) {
  if (id < boxes_.size()) boxes_[id] = Box{};
}

void AssignmentCircuit::BuildLeafBox(TermNodeId id) {
  const size_t w = tva_->num_states();
  Box box;
  box.gamma.assign(w, GateKind::kBot);
  box.union_idx.assign(w, kNoGate);

  Label l = term_->node(id).label;

  // Per-state accumulation of non-empty ι masks.
  std::vector<std::vector<VarMask>> masks(w);
  for (const auto& [vars, q] : tva_->LeafInitsFor(l)) {
    if (vars == 0) {
      assert((*kind_)[q] == 0);
      box.gamma[q] = GateKind::kTop;
    } else {
      assert((*kind_)[q] == 1);
      masks[q].push_back(vars);
    }
  }

  std::map<VarMask, uint16_t> mask_idx;
  for (State q = 0; q < w; ++q) {
    if (masks[q].empty()) continue;
    assert(box.gamma[q] == GateKind::kBot && "homogenization violated");
    box.gamma[q] = GateKind::kUnion;
    box.union_idx[q] = static_cast<int16_t>(box.union_states.size());
    box.union_states.push_back(q);
    box.cross_inputs.emplace_back();
    box.child_union_inputs.emplace_back();
    box.var_inputs.emplace_back();
    for (VarMask m : masks[q]) {
      auto it = mask_idx.find(m);
      uint16_t vi;
      if (it == mask_idx.end()) {
        vi = static_cast<uint16_t>(box.var_masks.size());
        mask_idx.emplace(m, vi);
        box.var_masks.push_back(m);
      } else {
        vi = it->second;
      }
      box.var_inputs.back().push_back(vi);
    }
  }
  boxes_[id] = std::move(box);
}

void AssignmentCircuit::BuildInternalBox(TermNodeId id) {
  const size_t w = tva_->num_states();
  const TermNode& t = term_->node(id);
  const Box& lb = boxes_[t.left];
  const Box& rb = boxes_[t.right];
  Label l = t.label;

  Box box;
  box.gamma.assign(w, GateKind::kBot);
  box.union_idx.assign(w, kNoGate);

  // Accumulators per result state.
  std::vector<std::vector<uint16_t>> cross_in(w);
  std::vector<std::vector<std::pair<uint8_t, State>>> child_in(w);
  std::vector<bool> has_top(w, false);
  std::map<std::pair<State, State>, uint16_t> cross_idx;

  // Iterate over live child state pairs; δ lookups give the result states.
  for (State q1 = 0; q1 < w; ++q1) {
    GateKind k1 = lb.gamma[q1];
    if (k1 == GateKind::kBot) continue;
    for (State q2 = 0; q2 < w; ++q2) {
      GateKind k2 = rb.gamma[q2];
      if (k2 == GateKind::kBot) continue;
      const std::vector<State>& results = tva_->TransitionsFor(l, q1, q2);
      if (results.empty()) continue;
      for (State q : results) {
        if (k1 == GateKind::kTop && k2 == GateKind::kTop) {
          assert((*kind_)[q] == 0 && "homogenization violated");
          has_top[q] = true;
        } else if (k1 == GateKind::kTop) {
          // д^{q1,q2} collapses to γ(right, q2).
          child_in[q].emplace_back(uint8_t{1}, q2);
        } else if (k2 == GateKind::kTop) {
          child_in[q].emplace_back(uint8_t{0}, q1);
        } else {
          auto [it, inserted] = cross_idx.try_emplace(
              std::make_pair(q1, q2),
              static_cast<uint16_t>(box.cross_gates.size()));
          if (inserted) box.cross_gates.push_back(CrossGate{q1, q2});
          cross_in[q].push_back(it->second);
        }
      }
    }
  }

  for (State q = 0; q < w; ++q) {
    if (has_top[q]) {
      assert(cross_in[q].empty() && child_in[q].empty() &&
             "homogenization violated");
      box.gamma[q] = GateKind::kTop;
      continue;
    }
    if (cross_in[q].empty() && child_in[q].empty()) continue;  // ⊥
    box.gamma[q] = GateKind::kUnion;
    box.union_idx[q] = static_cast<int16_t>(box.union_states.size());
    box.union_states.push_back(q);
    box.cross_inputs.push_back(std::move(cross_in[q]));
    box.child_union_inputs.push_back(std::move(child_in[q]));
    box.var_inputs.emplace_back();
  }
  boxes_[id] = std::move(box);
}

size_t AssignmentCircuit::CountGates() const {
  size_t n = 0;
  for (TermNodeId id = 0; id < boxes_.size(); ++id) {
    if (!term_->IsAlive(id)) continue;
    const Box& b = boxes_[id];
    n += b.gamma.size();  // γ gates (⊤/⊥/∪)
    n += b.cross_gates.size();
    n += b.var_masks.size();
  }
  return n;
}

}  // namespace treenum
