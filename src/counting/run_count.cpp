#include "counting/run_count.h"

#include <algorithm>

namespace treenum {

void RunCounter::EnsureSlot(TermNodeId id) {
  size_t need = (static_cast<size_t>(id) + 1) * circuit_->width();
  if (counts_.size() < need) counts_.resize(need, 0);
}

void RunCounter::BuildAll() {
  const Term& term = circuit_->term();
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term.root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBoxCounts(f.id);
  }
}

void RunCounter::RebuildBoxCounts(TermNodeId id) {
  EnsureSlot(id);
  const Term& term = circuit_->term();
  const BinaryTva& tva = circuit_->tva();
  const size_t w = tva.num_states();
  uint64_t* counts = counts_.data() + static_cast<size_t>(id) * w;
  std::fill_n(counts, w, 0);
  const TermNode& t = term.node(id);

  if (t.left == kNoTerm) {
    // One run start per matching ι entry (each annotation choice of this
    // leaf contributes its entries).
    for (const auto& [vars, q] : tva.LeafInitsFor(t.label)) {
      (void)vars;
      counts[q] += 1;
    }
  } else {
    const uint64_t* lc = counts_.data() + static_cast<size_t>(t.left) * w;
    const uint64_t* rc = counts_.data() + static_cast<size_t>(t.right) * w;
    // Grouped-CSR δ: only live (q1, q2) pairs, no hash probe per pair.
    const std::vector<DeltaGroup>& groups = tva.DeltaGroupsFor(t.label);
    const State* results = tva.delta_results().data();
    for (const DeltaGroup& g : groups) {
      const uint64_t cl = lc[g.left];
      if (cl == 0) continue;
      const uint64_t cr = rc[g.right];
      if (cr == 0) continue;
      const uint64_t prod = cl * cr;
      for (uint32_t i = g.begin; i < g.end; ++i) counts[results[i]] += prod;
    }
  }
}

void RunCounter::FreeBoxCounts(TermNodeId id) {
  const size_t w = circuit_->width();
  size_t base = static_cast<size_t>(id) * w;
  if (base + w <= counts_.size()) {
    std::fill_n(counts_.begin() + base, w, 0);
  }
}

uint64_t RunCounter::Count(TermNodeId id, State q) const {
  const size_t w = circuit_->width();
  size_t base = static_cast<size_t>(id) * w;
  if (base + w > counts_.size()) return 0;
  return counts_[base + q];
}

uint64_t RunCounter::TotalAcceptingRuns() const {
  const Term& term = circuit_->term();
  const BinaryTva& tva = circuit_->tva();
  uint64_t total = 0;
  for (State q : tva.final_states()) {
    total += Count(term.root(), q);
  }
  return total;
}

}  // namespace treenum
