#include "automata/wva.h"

#include <algorithm>
#include <cassert>

#include "automata/homogenize.h"

namespace treenum {

const std::vector<std::pair<VarMask, State>> Wva::kEmptySteps;

void Wva::AddTransition(State from, Label l, VarMask vars, State to) {
  assert(from < num_states_ && to < num_states_ && l < num_labels_);
  assert(vars < (VarMask{1} << num_vars_));
  transitions_.push_back(WvaTransition{from, l, vars, to});
  if (step_.empty()) step_.resize(num_states_ * num_labels_);
  step_[from * num_labels_ + l].emplace_back(vars, to);
}

void Wva::AddInitial(State q) {
  assert(q < num_states_);
  if (is_initial_.size() < num_states_) is_initial_.resize(num_states_, false);
  if (!is_initial_[q]) {
    is_initial_[q] = true;
    initial_states_.push_back(q);
  }
}

void Wva::AddFinal(State q) {
  assert(q < num_states_);
  if (is_final_.size() < num_states_) is_final_.resize(num_states_, false);
  if (!is_final_[q]) {
    is_final_[q] = true;
    final_states_.push_back(q);
  }
}

bool Wva::IsInitial(State q) const {
  return q < is_initial_.size() && is_initial_[q];
}

bool Wva::IsFinal(State q) const {
  return q < is_final_.size() && is_final_[q];
}

const std::vector<std::pair<VarMask, State>>& Wva::Step(State q,
                                                        Label l) const {
  if (step_.empty()) return kEmptySteps;
  return step_[q * num_labels_ + l];
}

bool Wva::Accepts(const Word& w, const std::vector<VarMask>& valuation) const {
  std::vector<bool> cur(num_states_, false);
  for (State q : initial_states_) cur[q] = true;
  for (size_t i = 0; i < w.size(); ++i) {
    std::vector<bool> next(num_states_, false);
    VarMask mask = i < valuation.size() ? valuation[i] : 0;
    for (State q = 0; q < num_states_; ++q) {
      if (!cur[q]) continue;
      for (const auto& [vars, to] : Step(q, w[i])) {
        if (vars == mask) next[to] = true;
      }
    }
    cur = std::move(next);
  }
  for (State q = 0; q < num_states_; ++q) {
    if (cur[q] && IsFinal(q)) return true;
  }
  return false;
}

std::vector<Assignment> Wva::BruteForceAssignments(const Word& w) const {
  size_t bits = w.size() * num_vars_;
  assert(bits <= 24 && "brute force only supports tiny instances");
  std::vector<Assignment> out;
  for (uint64_t code = 0; code < (uint64_t{1} << bits); ++code) {
    std::vector<VarMask> nu(w.size(), 0);
    uint64_t c = code;
    for (size_t i = 0; i < w.size(); ++i) {
      nu[i] = static_cast<VarMask>(c & ((VarMask{1} << num_vars_) - 1));
      c >>= num_vars_;
    }
    if (Accepts(w, nu)) {
      Assignment a;
      for (size_t i = 0; i < w.size(); ++i) {
        for (VarId v = 0; v < num_vars_; ++v) {
          if (nu[i] & (VarMask{1} << v)) {
            a.Add(Singleton{v, static_cast<NodeId>(i)});
          }
        }
      }
      a.Normalize();
      out.push_back(std::move(a));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Wva::ToString() const {
  return "Wva(Q=" + std::to_string(num_states_) +
         ", delta=" + std::to_string(transitions_.size()) + ")";
}

uint64_t FingerprintWva(const Wva& a) {
  uint64_t h = FingerprintMix(0x777661ULL);
  h = FingerprintCombine(h, a.num_states());
  h = FingerprintCombine(h, a.num_labels());
  h = FingerprintCombine(h, a.num_vars());
  // Commutative per-relation sums: declaration order does not matter.
  uint64_t trans = 0, inits = 0, finals = 0;
  for (const WvaTransition& t : a.transitions()) {
    trans += FingerprintMix(FingerprintCombine(
        FingerprintCombine(FingerprintCombine(uint64_t{t.from}, t.label),
                           t.vars),
        t.to));
  }
  for (State q : a.initial_states()) inits += FingerprintMix(q);
  for (State q : a.final_states()) finals += FingerprintMix(q);
  h = FingerprintCombine(h, trans);
  h = FingerprintCombine(h, inits);
  h = FingerprintCombine(h, finals);
  return h;
}

}  // namespace treenum
