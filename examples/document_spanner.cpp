// Information extraction on a dynamic text (the document-spanner scenario of
// §8): a regex-with-captures spanner runs over a log-like word, and the
// match set is maintained while the text is edited character by character.
#include <cstdio>
#include <string>

#include "automata/regex_spanner.h"
#include "core/word_enumerator.h"

using namespace treenum;

namespace {

std::string Render(const WordEnumerator& e) {
  std::string s;
  for (size_t i = 0; i < e.word_size(); ++i) {
    s += static_cast<char>('a' + e.encoding().LetterAt(i));
  }
  return s;
}

void Show(const WordEnumerator& e, const char* what) {
  std::printf("%s  text=\"%s\"\n", what, Render(e).c_str());
  for (const Assignment& a : e.EnumerateAllByPosition()) {
    std::printf("    match %s\n", a.ToString().c_str());
  }
}

}  // namespace

int main() {
  // Spanner: in a text over {a, b, c}, extract every position x of a 'b'
  // that is immediately followed by one or more 'c's ("error code" shape).
  Wva spanner = CompileRegexSpanner(".*<0:b>c+.*|.*<0:b>c+", 3, 1);

  WordEnumerator e(ToWord("abccabacc"), spanner);
  Show(e, "initial");

  // Edits: the word changes under the spanner.
  e.Replace(6, 1);  // 'a' -> 'b' at position 6: new match b@6 before "cc"
  Show(e, "after replace pos 6 -> b");

  e.Insert(4, 2);  // insert 'c' after the first "bcc"
  Show(e, "after insert c at pos 4");

  e.Erase(2);  // delete a 'c' of the first run
  Show(e, "after erase pos 2");

  std::printf("final matches: %zu\n", e.EnumerateAllByPosition().size());
  return 0;
}
