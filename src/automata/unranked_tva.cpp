#include "automata/unranked_tva.h"

#include <algorithm>
#include <cassert>

#include "automata/homogenize.h"

namespace treenum {

const std::vector<State> UnrankedTva::kEmptyStates;
const std::vector<std::pair<VarMask, State>> UnrankedTva::kEmptyInits;

void UnrankedTva::AddInit(Label l, VarMask vars, State q) {
  assert(l < num_labels_ && q < num_states_);
  assert(vars < (VarMask{1} << num_vars_));
  inits_.push_back(LeafInit{l, vars, q});
  if (inits_by_label_mask_.size() <= l) {
    inits_by_label_mask_.resize(l + 1);
    inits_by_label_.resize(l + 1);
  }
  auto& by_mask = inits_by_label_mask_[l];
  if (by_mask.size() < (size_t{1} << num_vars_)) {
    by_mask.resize(size_t{1} << num_vars_);
  }
  by_mask[vars].push_back(q);
  inits_by_label_[l].emplace_back(vars, q);
}

void UnrankedTva::AddTransition(State from, State child, State to) {
  assert(from < num_states_ && child < num_states_ && to < num_states_);
  transitions_.push_back(StepTransition{from, child, to});
  if (step_.empty()) step_.resize(num_states_ * num_states_);
  step_[from * num_states_ + child].push_back(to);
}

void UnrankedTva::AddFinal(State q) {
  assert(q < num_states_);
  if (is_final_.size() < num_states_) is_final_.resize(num_states_, false);
  if (!is_final_[q]) {
    is_final_[q] = true;
    final_states_.push_back(q);
  }
}

bool UnrankedTva::IsFinal(State q) const {
  return q < is_final_.size() && is_final_[q];
}

const std::vector<State>& UnrankedTva::InitsFor(Label l, VarMask vars) const {
  if (l >= inits_by_label_mask_.size()) return kEmptyStates;
  const auto& by_mask = inits_by_label_mask_[l];
  if (vars >= by_mask.size()) return kEmptyStates;
  return by_mask[vars];
}

const std::vector<std::pair<VarMask, State>>& UnrankedTva::InitsForLabel(
    Label l) const {
  if (l >= inits_by_label_.size()) return kEmptyInits;
  return inits_by_label_[l];
}

const std::vector<State>& UnrankedTva::Step(State from, State child) const {
  if (step_.empty()) return kEmptyStates;
  return step_[from * num_states_ + child];
}

std::vector<State> UnrankedTva::ReachableStates(
    const UnrankedTree& tree, NodeId node,
    const std::vector<VarMask>& valuation) const {
  // Bottom-up over the subtree; at each node, fold the children's state sets
  // through δ starting from ι(label, annotation).
  struct Rec {
    const UnrankedTva& a;
    const UnrankedTree& t;
    const std::vector<VarMask>& nu;
    std::vector<State> Run(NodeId n) const {
      VarMask mask = n < nu.size() ? nu[n] : 0;
      std::vector<bool> cur(a.num_states_, false);
      for (State q : a.InitsFor(t.label(n), mask)) cur[q] = true;
      for (NodeId c : t.children(n)) {
        std::vector<State> child_states = Run(c);
        std::vector<bool> next(a.num_states_, false);
        for (State q = 0; q < a.num_states_; ++q) {
          if (!cur[q]) continue;
          for (State p : child_states) {
            for (State q2 : a.Step(q, p)) next[q2] = true;
          }
        }
        cur = std::move(next);
      }
      std::vector<State> out;
      for (State q = 0; q < a.num_states_; ++q) {
        if (cur[q]) out.push_back(q);
      }
      return out;
    }
  };
  return Rec{*this, tree, valuation}.Run(node);
}

bool UnrankedTva::Accepts(const UnrankedTree& tree,
                          const std::vector<VarMask>& valuation) const {
  for (State q : ReachableStates(tree, tree.root(), valuation)) {
    if (IsFinal(q)) return true;
  }
  return false;
}

std::vector<Assignment> UnrankedTva::BruteForceAssignments(
    const UnrankedTree& tree) const {
  std::vector<NodeId> nodes = tree.PreorderNodes();
  size_t bits = nodes.size() * num_vars_;
  assert(bits <= 24 && "brute force only supports tiny instances");
  std::vector<Assignment> out;
  size_t max_id = 0;
  for (NodeId n : nodes) max_id = std::max<size_t>(max_id, n);
  for (uint64_t code = 0; code < (uint64_t{1} << bits); ++code) {
    std::vector<VarMask> nu(max_id + 1, 0);
    uint64_t c = code;
    for (NodeId n : nodes) {
      nu[n] = static_cast<VarMask>(c & ((VarMask{1} << num_vars_) - 1));
      c >>= num_vars_;
    }
    if (Accepts(tree, nu)) {
      Assignment a;
      for (NodeId n : nodes) {
        for (VarId v = 0; v < num_vars_; ++v) {
          if (nu[n] & (VarMask{1} << v)) a.Add(Singleton{v, n});
        }
      }
      a.Normalize();
      out.push_back(std::move(a));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string UnrankedTva::ToString() const {
  return "UnrankedTva(Q=" + std::to_string(num_states_) +
         ", iota=" + std::to_string(inits_.size()) +
         ", delta=" + std::to_string(transitions_.size()) + ")";
}

uint64_t FingerprintUnrankedTva(const UnrankedTva& a) {
  uint64_t h = FingerprintMix(0x756e72616e6bULL);
  h = FingerprintCombine(h, a.num_states());
  h = FingerprintCombine(h, a.num_labels());
  h = FingerprintCombine(h, a.num_vars());
  // Commutative per-relation sums: declaration order does not matter.
  uint64_t inits = 0, trans = 0, finals = 0;
  for (const LeafInit& li : a.inits()) {
    inits += FingerprintMix(FingerprintCombine(
        FingerprintCombine(uint64_t{li.label}, li.vars), li.state));
  }
  for (const StepTransition& t : a.transitions()) {
    trans += FingerprintMix(FingerprintCombine(
        FingerprintCombine(uint64_t{t.from}, t.child), t.to));
  }
  for (State q : a.final_states()) finals += FingerprintMix(q);
  h = FingerprintCombine(h, inits);
  h = FingerprintCombine(h, trans);
  h = FingerprintCombine(h, finals);
  return h;
}

}  // namespace treenum
