// DynamicDocument — one mutating document serving many registered queries.
//
// The paper maintains one circuit+index per (document, query) pair, and so
// did the engines: each TreeEnumerator/WordEnumerator privately owned its
// encoding, so serving Q queries over one document paid the O(log n)
// balanced-term maintenance (Lemma 7.3's encoding half) Q times per edit
// and refreshed every query's boxes serially. This layer splits the pair:
//
//   * The document owns exactly one encoding — the balanced tree term
//     (`DynamicEncoding`) or the word AVL term (`WordEncoding`). Each edit
//     mutates the term once and produces one `UpdateResult`.
//   * Every registered query owns one `EnumerationPipeline` (circuit, jump
//     index, optional counts) over the shared term. The per-edit
//     UpdateResult is broadcast to all of them, so the encoding half of
//     update maintenance is paid once regardless of Q.
//   * Batch transactions (BeginBatch/CommitBatch/ApplyEdits) are coalesced
//     at the document: the freed/changed term-node sets of the whole batch
//     are merged, filtered against the term, and depth-ordered exactly
//     once; each pipeline then consumes the same merged changed-box set.
//   * Refresh fan-out optionally runs on a ThreadPool (util/thread_pool.h).
//     Pipelines share only the immutable term during a refresh — all
//     written state (circuit arena, index pools, counts) is pipeline-
//     private — so per-query refreshes are embarrassingly parallel. With
//     no pool, or a pool of size 1, the fan-out runs inline in
//     registration order: the deterministic single-thread fallback, which
//     also keeps the single-query steady state allocation-free.
//
// TreeEnumerator and WordEnumerator are thin views over a private document
// with one registered query; multi-query servers hold a DynamicDocument
// directly and query each pipeline.
#ifndef TREENUM_CORE_DOCUMENT_H_
#define TREENUM_CORE_DOCUMENT_H_

#include <memory>
#include <utility>
#include <vector>

#include "automata/homogenize.h"
#include "automata/unranked_tva.h"
#include "automata/wva.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "falgebra/update.h"
#include "falgebra/word_avl.h"
#include "trees/unranked_tree.h"
#include "util/thread_pool.h"

namespace treenum {

class DynamicDocument {
 public:
  /// Handle of a registered query (stable across other registrations).
  using QueryId = size_t;

  /// A tree document: encodes `tree` as a balanced term (linear time).
  /// Every registered query must use exactly `num_labels` base labels.
  DynamicDocument(UnrankedTree tree, size_t num_labels);
  /// A word document over the AVL ⊕HH term (Corollary 8.4).
  DynamicDocument(const Word& w, size_t num_labels);

  DynamicDocument(const DynamicDocument&) = delete;
  DynamicDocument& operator=(const DynamicDocument&) = delete;

  // ---- Introspection ----

  bool is_word() const { return word_enc_ != nullptr; }
  const Term& term() const { return *term_; }
  /// Tree documents only.
  const UnrankedTree& tree() const;
  const DynamicEncoding& tree_encoding() const;
  /// Word documents only.
  const WordEncoding& word_encoding() const;
  /// Current input size (tree nodes / word letters).
  size_t size() const;

  // ---- Query registration ----

  /// Registers a query: translates + homogenizes it and builds its
  /// pipeline (circuit and, in kIndexed mode, jump index) over the current
  /// term — O(size * poly(|Q|)). Not allowed mid-batch.
  QueryId Register(const UnrankedTva& query,
                   BoxEnumMode mode = BoxEnumMode::kIndexed);
  QueryId Register(const Wva& query, BoxEnumMode mode = BoxEnumMode::kIndexed);
  /// Registers an already-prepared automaton (must be over this document's
  /// term alphabet).
  QueryId RegisterPrepared(HomogenizedTva homog, BoxEnumMode mode);
  /// Drops a query; its pipeline is destroyed and the id becomes invalid.
  void Unregister(QueryId id);
  bool IsRegistered(QueryId id) const;
  /// Number of live registered queries.
  size_t num_queries() const { return num_live_; }

  /// The pipeline of a registered query — the per-query surface for
  /// enumeration (EnumerateAll / MakeEngineCursor / HasAnswer / counting).
  EnumerationPipeline& pipeline(QueryId id);
  const EnumerationPipeline& pipeline(QueryId id) const;

  // ---- Refresh fan-out ----

  /// Attaches a worker pool (not owned; must outlive its use here). The
  /// pool runs one fork-join job at a time, so sharing it across
  /// documents requires external serialization: only one document may be
  /// inside an edit/commit at any moment. Pipelines refresh in parallel
  /// when the pool has > 1 lane and > 1 query is registered; null (the
  /// default) or a 1-lane pool means inline, deterministic,
  /// allocation-free fan-out.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* pool() const { return pool_; }

  // ---- Tree edits (Definition 7.1), O(log n * poly(Q)) + fan-out ----
  // UpdateStats totals are summed across registered queries:
  // boxes_recomputed counts every per-pipeline box refresh.

  UpdateStats Relabel(NodeId n, Label l);
  UpdateStats InsertFirstChild(NodeId n, Label l, NodeId* new_node = nullptr);
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr);
  UpdateStats DeleteLeaf(NodeId n);

  // ---- Word edits by logical position, worst-case O(log |w|) ----

  UpdateStats Replace(size_t pos, Label l);
  UpdateStats Insert(size_t pos, Label l);
  UpdateStats Erase(size_t pos);
  /// Moves the factor [begin, end) so it starts at `dst` of the remaining
  /// word (AVL split/join; position ids are preserved).
  UpdateStats MoveRange(size_t begin, size_t end, size_t dst);

  // ---- Batched updates ----

  /// Opens a transaction: edits mutate the term immediately but the
  /// freed/changed sets are only recorded (once, at the document — the
  /// pipelines see nothing until commit). Querying any pipeline while a
  /// batch is open is unsupported.
  void BeginBatch();
  /// Merges everything recorded since BeginBatch — a node touched by many
  /// edits is refreshed once per pipeline, a node created and deleted
  /// within the batch never — and fans the merged set out to every
  /// pipeline (in parallel when a pool is attached).
  UpdateStats CommitBatch();
  bool in_batch() const { return in_batch_; }

  /// Applies one Edit (tree vocabulary; on word documents Edit::node is a
  /// stable position id, exactly as in WordEnumerator's Engine surface).
  UpdateStats ApplyEdit(const Edit& e, NodeId* new_node = nullptr);
  /// Applies a whole edit script in one transaction; if a batch is already
  /// open the edits join it and the commit stays with the caller.
  UpdateStats ApplyEdits(const std::vector<Edit>& edits);

 private:
  /// Broadcasts one UpdateResult (outside a batch) or records it (inside).
  UpdateStats Dispatch(const UpdateResult& result);
  /// Runs fn(pipeline) on every live pipeline — on the pool when parallel
  /// fan-out is enabled, else inline in registration order.
  template <typename Fn>
  void FanOut(const Fn& fn);
  void SetPipelinesPending(bool pending);
  UpdateStats WordInsertAt(size_t pos, Label l, NodeId* new_node);

  // Exactly one encoding is non-null. unique_ptr keeps the Term address
  // stable for the pipelines.
  std::unique_ptr<DynamicEncoding> tree_enc_;
  std::unique_ptr<WordEncoding> word_enc_;
  const Term* term_;
  // Slot per ever-registered query; Unregister nulls the slot so QueryIds
  // of the surviving queries stay valid.
  std::vector<std::unique_ptr<EnumerationPipeline>> pipelines_;
  size_t num_live_ = 0;
  ThreadPool* pool_ = nullptr;

  bool in_batch_ = false;
  // Document-level transaction record and commit scratch. clear() keeps
  // capacities, so steady-state batched relabels stay allocation-free.
  std::vector<TermNodeId> batch_freed_;
  std::vector<TermNodeId> batch_changed_;
  std::vector<TermNodeId> dead_freed_;
  std::vector<TermNodeId> ordered_changed_;
  std::vector<std::pair<uint32_t, TermNodeId>> order_scratch_;
  std::vector<EnumerationPipeline*> fan_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_CORE_DOCUMENT_H_
