// Deterministic random generators used by tests, benchmarks and workload
// generators (random trees, random automata, random edit scripts).
#ifndef TREENUM_UTIL_RANDOM_H_
#define TREENUM_UTIL_RANDOM_H_

#include <cstdint>
#include <random>

namespace treenum {

/// A small deterministic RNG wrapper (mt19937_64) so workloads are
/// reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform in [0, n).
  size_t Index(size_t n) {
    return static_cast<size_t>(Int(0, static_cast<int64_t>(n) - 1));
  }

  /// Bernoulli with probability p.
  bool Flip(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace treenum

#endif  // TREENUM_UTIL_RANDOM_H_
