// Unranked ordered labeled trees (the input data model of the paper, §7)
// together with the edit operations of Definition 7.1: leaf insertion, leaf
// deletion, and relabeling.
#ifndef TREENUM_TREES_UNRANKED_TREE_H_
#define TREENUM_TREES_UNRANKED_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace treenum {

/// Tree labels are small integer ids; callers map their alphabet (e.g. XML
/// element names) to contiguous ids.
using Label = uint32_t;

/// Stable identifier of a tree node. Node ids are never reused while the
/// node is alive and remain valid across edits to other nodes.
using NodeId = uint32_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// An unranked, rooted, ordered, labeled tree.
///
/// Nodes are stored in a slot vector with a free list so NodeIds are stable
/// under insertions and deletions. Children are kept in order in a per-node
/// vector; sibling-local edits cost O(degree), which is outside the paper's
/// complexity accounting (the forest-algebra term layer is where the
/// logarithmic update bounds live).
class UnrankedTree {
 public:
  /// Creates a tree with a single root labeled `root_label`.
  explicit UnrankedTree(Label root_label);

  NodeId root() const { return root_; }
  Label label(NodeId n) const { return nodes_[n].label; }
  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[n].children;
  }
  bool IsLeaf(NodeId n) const { return nodes_[n].children.empty(); }
  bool IsAlive(NodeId n) const {
    return n < nodes_.size() && nodes_[n].alive;
  }

  /// Number of alive nodes.
  size_t size() const { return size_; }

  /// Exclusive upper bound on node ids ever allocated; suitable for sizing
  /// dense side arrays indexed by NodeId.
  size_t id_bound() const { return nodes_.size(); }

  // ---- Edit operations (Definition 7.1) ----

  /// relabel(n, l): change the label of n to l.
  void Relabel(NodeId n, Label l);

  /// insert(n, l): insert an l-node as the *first child* of n.
  /// Returns the id of the new node.
  NodeId InsertFirstChild(NodeId n, Label l);

  /// insertR(n, l): insert an l-node as the *right sibling* of n.
  /// n must not be the root. Returns the id of the new node.
  NodeId InsertRightSibling(NodeId n, Label l);

  /// delete(n): remove n (must be a leaf and not the root).
  void DeleteLeaf(NodeId n);

  // ---- Construction helpers (not edits; used to build initial trees) ----

  /// Appends an l-node as the last child of n. Returns the new node id.
  NodeId AppendChild(NodeId n, Label l);

  // ---- Structural transactions (whole-subtree operations) ----
  //
  // The bulk counterparts of the Definition 7.1 edits: a subtree is cut
  // loose in one step instead of one leaf at a time. Detached subtrees stay
  // alive and navigable (children/label/IsLeaf all work) but no longer
  // count towards size() and are unreachable from the root — the term
  // layer re-encodes them while detached. A detached subtree must be
  // either re-attached or freed before the next detach of the same nodes.

  /// Cuts the subtree rooted at `v` out of the tree. `v` must be alive and
  /// not the root. All subtree nodes stay alive; size() drops by the
  /// subtree size. Returns the number of detached nodes.
  size_t DetachSubtree(NodeId v);

  /// Re-attaches the detached subtree `v` as the first child of `p`.
  void AttachSubtreeFirstChild(NodeId v, NodeId p);

  /// Re-attaches the detached subtree `v` as the right sibling of `n`
  /// (`n` must not be the root).
  void AttachSubtreeRightSibling(NodeId v, NodeId n);

  /// Frees every node of the detached subtree `v` (slots recycle through
  /// the free list). size() is unaffected — DetachSubtree already
  /// subtracted the nodes.
  void FreeDetached(NodeId v);

  /// Deep-copies the subtree rooted at `v` (attached or detached) into a
  /// fresh tree with fresh ids (preorder allocation order).
  UnrankedTree CopySubtree(NodeId v) const;

  /// Copies the subtree of `src` rooted at `src_root` into this tree as a
  /// *detached* subtree with fresh ids; attach it with the methods above.
  /// Returns the new detached root's id.
  NodeId CopyDetachedFrom(const UnrankedTree& src, NodeId src_root);

  /// Number of nodes in the subtree rooted at `v` (attached or detached).
  size_t SubtreeSize(NodeId v) const;

  // ---- Traversal / inspection ----

  /// All alive node ids in document (preorder) order.
  std::vector<NodeId> PreorderNodes() const;

  /// Depth of node n (root has depth 0).
  size_t Depth(NodeId n) const;

  /// Height of the tree (single node = 0).
  size_t Height() const;

  /// Renders the tree as an s-expression, e.g. "(a (b) (c (d)))" with labels
  /// printed through `label_name` (defaults to the numeric id).
  std::string ToString() const;

  /// Parses an s-expression produced by ToString-like syntax where labels
  /// are single lowercase letters mapped a->0, b->1, ...  e.g. "(a (b) (c))".
  static UnrankedTree Parse(const std::string& sexpr);

  bool operator==(const UnrankedTree& other) const;

 private:
  struct Node {
    Label label = 0;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    bool alive = false;
  };

  NodeId AllocNode(Label l, NodeId parent);

  std::vector<Node> nodes_;
  std::vector<NodeId> free_list_;
  NodeId root_;
  size_t size_ = 0;
  /// DFS worklist reused by SubtreeSize / FreeDetached so steady-state
  /// structural transactions stay allocation-free.
  mutable std::vector<NodeId> walk_scratch_;
};

/// Generates a uniformly random tree shape with n nodes and labels drawn
/// uniformly from [0, num_labels). Attachment is "random parent" which
/// produces trees of expected logarithmic-ish height; see RandomPathTree for
/// adversarially deep inputs.
class Rng;
UnrankedTree RandomTree(size_t n, size_t num_labels, Rng& rng);

/// Generates a path-shaped tree (each node has one child) with n nodes;
/// the adversarial input for depth-dependent algorithms.
UnrankedTree PathTree(size_t n, size_t num_labels, Rng& rng);

/// Generates a full k-ary tree with ~n nodes.
UnrankedTree KaryTree(size_t n, size_t k, size_t num_labels, Rng& rng);

}  // namespace treenum

#endif  // TREENUM_TREES_UNRANKED_TREE_H_
