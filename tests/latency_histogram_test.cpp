// LatencyHistogram vs a sorted-vector oracle: bucket geometry invariants,
// nearest-rank quantiles within the quantization bound, merge, concurrent
// recording.
#include "util/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "util/random.h"

namespace treenum {
namespace {

uint64_t OracleQuantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::min(std::max<size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

/// Histogram results are bucket midpoints, so they match the oracle up to
/// the bucket width at that magnitude: exact below kSubBuckets, relative
/// error <= 2^-kSubBucketBits above.
void ExpectWithinQuantization(uint64_t got, uint64_t oracle) {
  const size_t i = LatencyHistogram::BucketIndex(oracle);
  EXPECT_GE(got, LatencyHistogram::BucketLow(i));
  EXPECT_LT(got, LatencyHistogram::BucketHigh(i));
}

TEST(LatencyHistogram, BucketGeometryInvariants) {
  // Every value maps to a bucket whose [low, high) range contains it, and
  // consecutive buckets tile the line with no gaps or overlaps.
  Rng rng(1);
  for (int t = 0; t < 20000; ++t) {
    const int bits = 1 + static_cast<int>(rng.Index(63));
    uint64_t v = static_cast<uint64_t>(rng.Int(0, (int64_t{1} << 32) - 1));
    v = (v << 16) ^ static_cast<uint64_t>(rng.Int(0, 1 << 16));
    v &= (bits >= 64) ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
    const size_t i = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(i, LatencyHistogram::kNumBuckets);
    EXPECT_GE(v, LatencyHistogram::BucketLow(i)) << "v=" << v << " i=" << i;
    if (i + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_LT(v, LatencyHistogram::BucketHigh(i)) << "v=" << v;
      // Tiling: the next bucket starts exactly where this one ends.
      EXPECT_EQ(LatencyHistogram::BucketHigh(i),
                LatencyHistogram::BucketLow(i + 1));
    }
  }
  // Boundary values land in their own bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::kSubBuckets - 1),
            LatencyHistogram::kSubBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  // Values below kSubBuckets get one bucket per value: quantiles exact.
  std::vector<uint64_t> values;
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Index(LatencyHistogram::kSubBuckets);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.Quantile(q), OracleQuantile(values, q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, QuantilesTrackSortedOracle) {
  LatencyHistogram h;
  std::vector<uint64_t> values;
  Rng rng(3);
  // Latency-shaped distribution: a log-uniform body with a heavy tail.
  for (int i = 0; i < 50000; ++i) {
    const int bits = 8 + static_cast<int>(rng.Index(16));  // ~256ns..16ms
    uint64_t v = static_cast<uint64_t>(
        rng.Int(1, (int64_t{1} << bits) - 1));
    if (rng.Flip(0.001)) v *= 1000;  // rare outliers
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.count(), values.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    ExpectWithinQuantization(h.Quantile(q), OracleQuantile(values, q));
  }
  // MaxBound covers the maximum.
  EXPECT_GE(h.MaxBound(), values.back());
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  std::vector<uint64_t> values;
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = static_cast<uint64_t>(rng.Int(0, 1 << 20));
    values.push_back(v);
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  LatencyHistogram merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.count(), combined.count());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(merged.MaxBound(), combined.MaxBound());
}

TEST(LatencyHistogram, ConcurrentRecordsLoseNothing) {
  // The lock-free claim: racing Record() calls from several threads must
  // not lose counts (relaxed fetch_add per bucket). Each thread records a
  // known deterministic stream; the totals and quantiles must match a
  // single-threaded oracle of the union.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40000;
  LatencyHistogram h;
  std::vector<uint64_t> all;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) {
      all.push_back(static_cast<uint64_t>(rng.Int(1, 1 << 24)));
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(rng.Int(1, 1 << 24)));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(h.count(), all.size());
  for (double q : {0.5, 0.99}) {
    ExpectWithinQuantization(h.Quantile(q), OracleQuantile(all, q));
  }
}

TEST(LatencyHistogram, ResetAndEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.MaxBound(), 0u);
  h.Record(123456);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Quantile(0.5), 0u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0u);
  EXPECT_EQ(h.MaxBound(), 0u);
}

}  // namespace
}  // namespace treenum
