// Conformance fuzzing for the process-wide query cache: seed-randomized
// queries and edit/structural scripts are replayed through TWO documents —
// one whose registrations are served from a pre-warmed shared QueryCache
// (zero compile work), one compiling freshly in a private cache — and both
// must produce answer sets identical to an independent oracle after every
// epoch. A divergence would mean a cached plan is not equivalent to a
// freshly compiled one. Failures log the seed via SCOPED_TRACE.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/query_cache.h"
#include "automata/query_library.h"
#include "automata/regex_spanner.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "core/word_enumerator.h"
#include "test_util.h"
#include "trees/unranked_tree.h"
#include "util/random.h"

namespace treenum {
namespace {

constexpr size_t kLabels = 3;

// One random edit-or-structural op applied identically to both documents.
// The documents are bit-identical replicas (same seed tree, same op
// history), so node ids picked from `a.tree()` are valid in both.
void ApplyRandomTreeOp(Rng& rng, DynamicDocument& a, DynamicDocument& b) {
  std::vector<NodeId> nodes = a.tree().PreorderNodes();
  NodeId n = nodes[rng.Index(nodes.size())];
  Label l = static_cast<Label>(rng.Index(kLabels));
  const NodeId root = a.tree().root();
  switch (rng.Index(6)) {
    case 0: {
      a.InsertFirstChild(n, l);
      b.InsertFirstChild(n, l);
      return;
    }
    case 1:
      if (n != root) {
        a.InsertRightSibling(n, l);
        b.InsertRightSibling(n, l);
        return;
      }
      break;
    case 2:
      if (n != root && a.tree().IsLeaf(n)) {
        a.DeleteLeaf(n);
        b.DeleteLeaf(n);
        return;
      }
      break;
    case 3:  // structural: drop a whole subtree
      if (n != root && nodes.size() > 8) {
        a.SubtreeDelete(n);
        b.SubtreeDelete(n);
        return;
      }
      break;
    case 4:  // structural: re-root a subtree under the root
      if (n != root) {
        a.SubtreeMove(n, root);
        b.SubtreeMove(n, root);
        return;
      }
      break;
    default:
      break;
  }
  a.Relabel(n, l);
  b.Relabel(n, l);
}

TEST(ConformanceFuzz, TreeCacheServedMatchesFreshCompileAndOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    std::vector<UnrankedTva> queries;
    queries.push_back(QuerySelectLabel(kLabels, 1));
    queries.push_back(QueryMarkedAncestor(kLabels, 1, 2));
    // Low annotation density keeps random answer sets polynomial — dense
    // random ι relations can make the satisfying-assignment count
    // exponential in the tree size, which the oracle then materializes.
    queries.push_back(RandomUnrankedTva(rng, 3, kLabels, 1, 2, 9));
    queries.push_back(RandomUnrankedTva(rng, 4, kLabels, 1, 3, 10));

    // Pre-warm the shared cache, then hang two replica documents off the
    // same seed tree: one cache-served, one compiling into a private cache.
    QueryCache shared, privat;
    for (const UnrankedTva& q : queries) shared.CompileTree(q);
    const QueryCache::Stats warm = shared.stats();

    UnrankedTree tree = RandomTree(16, kLabels, rng);
    DynamicDocument cached(tree, kLabels, &shared);
    DynamicDocument fresh(tree, kLabels, &privat);
    std::vector<DynamicDocument::QueryHandle> hc, hf;
    for (const UnrankedTva& q : queries) {
      hc.push_back(cached.Register(q));
      hf.push_back(fresh.Register(q));
    }
    // Cache-served means served: registration did zero new compile work.
    EXPECT_EQ(shared.stats().translations, warm.translations);
    EXPECT_EQ(shared.stats().homogenizations, warm.homogenizations);
    EXPECT_EQ(shared.stats().source_hits, warm.source_hits + queries.size());

    for (int epoch = 0; epoch < 6; ++epoch) {
      SCOPED_TRACE("epoch " + std::to_string(epoch));
      for (int op = 0; op < 5; ++op) ApplyRandomTreeOp(rng, cached, fresh);
      for (size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        StaticEngine oracle(fresh.tree(), queries[i]);
        std::vector<Assignment> expected = oracle.EnumerateAll();
        ASSERT_EQ(cached.pipeline(hc[i]).EnumerateAll(), expected);
        ASSERT_EQ(fresh.pipeline(hf[i]).EnumerateAll(), expected);
      }
    }
  }
}

TEST(ConformanceFuzz, TreeBatchedScriptsMatchUnderSharedCache) {
  // Same replica pair, but each epoch's edit script is applied as ONE
  // transaction (ApplyEdits) — the coalesced refresh path must converge to
  // the same answers on cache-served and freshly compiled pipelines.
  for (uint64_t seed = 21; seed <= 23; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    UnrankedTva q = RandomUnrankedTva(rng, 3, kLabels, 1, 4, 9);

    QueryCache shared, privat;
    shared.CompileTree(q);

    UnrankedTree tree = RandomTree(20, kLabels, rng);
    UnrankedTree mirror = tree;
    DynamicDocument cached(tree, kLabels, &shared);
    DynamicDocument fresh(tree, kLabels, &privat);
    DynamicDocument::QueryHandle hc = cached.Register(q);
    DynamicDocument::QueryHandle hf = fresh.Register(q);
    EXPECT_EQ(shared.stats().translations, 1u);

    ScriptedEditor editor(std::move(mirror), seed ^ 0x5eed, kLabels);
    for (int epoch = 0; epoch < 5; ++epoch) {
      SCOPED_TRACE("epoch " + std::to_string(epoch));
      std::vector<Edit> script;
      for (int op = 0; op < 6; ++op) script.push_back(editor.NextEdit());
      cached.ApplyEdits(script);
      fresh.ApplyEdits(script);
      StaticEngine oracle(fresh.tree(), q);
      std::vector<Assignment> expected = oracle.EnumerateAll();
      ASSERT_EQ(cached.pipeline(hc).EnumerateAll(), expected);
      ASSERT_EQ(fresh.pipeline(hf).EnumerateAll(), expected);
    }
  }
}

TEST(ConformanceFuzz, WordCacheServedMatchesFreshCompileAndOracle) {
  // Word documents answer in stable position ids, so the absolute
  // by-position oracle (a WordEnumerator rebuilt from the mirror word each
  // epoch) is compared by answer count — id renaming is a bijection — while
  // the cache-served and freshly compiled pipelines, which share one edit
  // history and therefore one id assignment, must match assignment-exactly.
  for (uint64_t seed = 5; seed <= 7; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    std::vector<Wva> queries;
    queries.push_back(CompileRegexSpanner("a*<0:b>.*", kLabels, 1));
    queries.push_back(CompileRegexSpanner(".*<0:a>.*<1:c>.*", kLabels, 2));

    QueryCache shared, privat;
    for (const Wva& q : queries) shared.CompileWord(q);
    const QueryCache::Stats warm = shared.stats();

    Word ref;
    for (int i = 0; i < 12; ++i) {
      ref.push_back(static_cast<Label>(rng.Index(kLabels)));
    }
    DynamicDocument cached(ref, kLabels, &shared);
    DynamicDocument fresh(ref, kLabels, &privat);
    std::vector<DynamicDocument::QueryHandle> hc, hf;
    for (const Wva& q : queries) {
      hc.push_back(cached.Register(q));
      hf.push_back(fresh.Register(q));
    }
    EXPECT_EQ(shared.stats().translations, warm.translations);

    for (int epoch = 0; epoch < 8; ++epoch) {
      SCOPED_TRACE("epoch " + std::to_string(epoch));
      for (int op = 0; op < 4; ++op) {
        size_t pos = rng.Index(ref.size());
        Label l = static_cast<Label>(rng.Index(kLabels));
        switch (rng.Index(3)) {
          case 0:
            ref[pos] = l;
            cached.Replace(pos, l);
            fresh.Replace(pos, l);
            break;
          case 1:
            ref.insert(ref.begin() + pos, l);
            cached.Insert(pos, l);
            fresh.Insert(pos, l);
            break;
          default:
            if (ref.size() > 2) {
              ref.erase(ref.begin() + pos);
              cached.Erase(pos);
              fresh.Erase(pos);
            }
            break;
        }
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        std::vector<Assignment> got = cached.pipeline(hc[i]).EnumerateAll();
        ASSERT_EQ(got, fresh.pipeline(hf[i]).EnumerateAll());
        WordEnumerator oracle(ref, queries[i]);
        ASSERT_EQ(got.size(), oracle.EnumerateAllByPosition().size());
      }
    }
  }
}

}  // namespace
}  // namespace treenum
