#include "automata/translate.h"

#include <cassert>
#include <unordered_map>

namespace treenum {

namespace {

// Builds the reachable subset of Q² ∪ (Q²)² by a worklist fixpoint: every
// new state is combined with all previously discovered states under the five
// operator rules, so each (left, right) pair is considered exactly once.
class ClosureBuilder {
 public:
  explicit ClosureBuilder(size_t n) : n_(n) {}

  struct PendingTransition {
    Label label;
    State left;
    State right;
    State result;
  };

  State PairId(State a, State b) {
    uint64_t key = static_cast<uint64_t>(a) * n_ + b;
    auto it = pair_ids_.find(key);
    if (it != pair_ids_.end()) return it->second;
    State id = static_cast<State>(num_states_++);
    pair_ids_.emplace(key, id);
    is_pair_.push_back(true);
    pairs_.emplace_back(a, b);
    quads_.push_back({});
    worklist_.push_back(id);
    return id;
  }

  State QuadId(State o1, State o2, State h1, State h2) {
    uint64_t key = ((static_cast<uint64_t>(o1) * n_ + o2) * n_ + h1) * n_ + h2;
    auto it = quad_ids_.find(key);
    if (it != quad_ids_.end()) return it->second;
    State id = static_cast<State>(num_states_++);
    quad_ids_.emplace(key, id);
    is_pair_.push_back(false);
    pairs_.emplace_back(0, 0);
    quads_.push_back({o1, o2, h1, h2});
    worklist_.push_back(id);
    return id;
  }

  bool HasPair(State a, State b) const {
    return pair_ids_.count(static_cast<uint64_t>(a) * n_ + b) > 0;
  }
  State LookupPair(State a, State b) const {
    return pair_ids_.at(static_cast<uint64_t>(a) * n_ + b);
  }

  /// Runs the closure until fixpoint, recording operator transitions through
  /// `alphabet`. Set `words_only` to restrict to ⊕HH (Corollary 8.4).
  void Close(const TermAlphabet& alphabet, bool words_only) {
    while (!worklist_.empty()) {
      State s = worklist_.back();
      worklist_.pop_back();
      // Combine s with every state of smaller or equal creation index. Every
      // unordered pair {x, y} is thus handled exactly once: at the (unique)
      // pop of max(x, y). States created during the loop have larger indices
      // and are on the worklist, so they will combine with s later.
      for (State t = 0; t <= s; ++t) {
        Combine(s, t, alphabet, words_only);
        if (t != s) Combine(t, s, alphabet, words_only);
      }
    }
  }

  size_t num_states() const { return num_states_; }
  const std::vector<bool>& is_pair() const { return is_pair_; }
  const std::vector<std::pair<State, State>>& pairs() const { return pairs_; }
  const std::vector<PendingTransition>& transitions() const {
    return transitions_;
  }

 private:
  struct Quad {
    State o1, o2, h1, h2;
  };

  void Combine(State l, State r, const TermAlphabet& alphabet,
               bool words_only) {
    if (is_pair_[l] && is_pair_[r]) {
      auto [a, b] = pairs_[l];
      auto [b2, c] = pairs_[r];
      // ⊕HH: forest(a,b) ⊕ forest(b,c) → forest(a,c).
      if (b == b2) {
        State res = PairId(a, c);
        transitions_.push_back(
            {alphabet.Op(TermOp::kConcatHH), l, r, res});
      }
      return;
    }
    if (words_only) return;
    if (is_pair_[l] && !is_pair_[r]) {
      // ⊕HV: forest(a,b) ⊕ context((b,c),(h)) → context((a,c),(h)).
      auto [a, b] = pairs_[l];
      // Copy: PairId/QuadId below may grow (and reallocate) the vectors.
      Quad q = quads_[r];
      if (q.o1 == b) {
        State res = QuadId(a, q.o2, q.h1, q.h2);
        transitions_.push_back(
            {alphabet.Op(TermOp::kConcatHV), l, r, res});
      }
      return;
    }
    if (!is_pair_[l] && is_pair_[r]) {
      Quad q = quads_[l];
      auto [b, c] = pairs_[r];
      // ⊕VH: context((a,b),(h)) ⊕ forest(b,c) → context((a,c),(h)).
      if (q.o2 == b) {
        State res = QuadId(q.o1, c, q.h1, q.h2);
        transitions_.push_back(
            {alphabet.Op(TermOp::kConcatVH), l, r, res});
      }
      // ⊙VH: context((o),(h1,h2)) ⊙ forest(h1,h2) → forest(o).
      if (q.h1 == b && q.h2 == c) {
        State res = PairId(q.o1, q.o2);
        transitions_.push_back(
            {alphabet.Op(TermOp::kApplyVH), l, r, res});
      }
      return;
    }
    // ⊙VV: context((o),(m)) ⊙ context((m),(h)) → context((o),(h)).
    Quad ql = quads_[l];
    Quad qr = quads_[r];
    if (ql.h1 == qr.o1 && ql.h2 == qr.o2) {
      State res = QuadId(ql.o1, ql.o2, qr.h1, qr.h2);
      transitions_.push_back({alphabet.Op(TermOp::kApplyVV), l, r, res});
    }
  }

  size_t n_;
  size_t num_states_ = 0;
  std::unordered_map<uint64_t, State> pair_ids_;
  std::unordered_map<uint64_t, State> quad_ids_;
  std::vector<bool> is_pair_;
  std::vector<std::pair<State, State>> pairs_;
  std::vector<Quad> quads_;
  std::vector<State> worklist_;
  std::vector<PendingTransition> transitions_;
};

}  // namespace

TranslatedTva TranslateUnrankedTva(const UnrankedTva& a) {
  // Augment with fresh q0, qf so acceptance becomes "root forest state is
  // exactly (q0, qf)".
  size_t n = a.num_states() + 2;
  State q0 = static_cast<State>(a.num_states());
  State qf = static_cast<State>(a.num_states() + 1);

  // δ_aug indexed by child state: (from, to) pairs.
  std::vector<std::vector<std::pair<State, State>>> by_child(n);
  std::vector<StepTransition> delta_aug = a.transitions();
  for (State f : a.final_states()) {
    delta_aug.push_back(StepTransition{q0, f, qf});
  }
  for (const StepTransition& t : delta_aug) {
    by_child[t.child].emplace_back(t.from, t.to);
  }

  TermAlphabet alphabet(a.num_labels());
  ClosureBuilder closure(n);

  struct PendingInit {
    Label label;
    VarMask vars;
    State state;
  };
  std::vector<PendingInit> inits;
  std::unordered_map<uint64_t, bool> init_seen;
  auto add_init = [&](Label l, VarMask vars, State s) {
    uint64_t key = (static_cast<uint64_t>(l) << 48) |
                   (static_cast<uint64_t>(vars) << 24) | s;
    if (!init_seen.emplace(key, true).second) return;
    inits.push_back({l, vars, s});
  };

  // Seeds for a_t leaves: (a_t, Y, (q1,q2)) when (q1, p, q2) ∈ δ_aug for
  // some p ∈ ι(a, Y).
  // Seeds for a_□ leaves: (a_□, Y, ((q1,q2),(q3,q4))) when (q1,q4,q2) ∈
  // δ_aug and q3 ∈ ι(a, Y).
  for (const LeafInit& li : a.inits()) {
    for (const auto& [from, to] : by_child[li.state]) {
      add_init(alphabet.TreeLeaf(li.label), li.vars,
               closure.PairId(from, to));
    }
    for (const StepTransition& t : delta_aug) {
      add_init(alphabet.ContextLeaf(li.label), li.vars,
               closure.QuadId(t.from, t.to, li.state, t.child));
    }
  }

  closure.Close(alphabet, /*words_only=*/false);

  BinaryTva out(closure.num_states(), alphabet.num_labels(), a.num_vars());
  for (const PendingInit& pi : inits) {
    out.AddLeafInit(pi.label, pi.vars, pi.state);
  }
  for (const auto& t : closure.transitions()) {
    out.AddTransition(t.label, t.left, t.right, t.result);
  }
  if (closure.HasPair(q0, qf)) {
    out.AddFinal(closure.LookupPair(q0, qf));
  }

  return TranslatedTva{std::move(out), alphabet, closure.is_pair(),
                       closure.pairs()};
}

TranslatedTva TranslateWva(const Wva& a) {
  TermAlphabet alphabet(a.num_labels());
  ClosureBuilder closure(a.num_states());

  struct PendingInit {
    Label label;
    VarMask vars;
    State state;
  };
  std::vector<PendingInit> inits;
  std::unordered_map<uint64_t, bool> init_seen;
  for (const WvaTransition& t : a.transitions()) {
    State s = closure.PairId(t.from, t.to);
    uint64_t key = (static_cast<uint64_t>(t.label) << 48) |
                   (static_cast<uint64_t>(t.vars) << 24) | s;
    if (!init_seen.emplace(key, true).second) continue;
    inits.push_back({alphabet.TreeLeaf(t.label), t.vars, s});
  }

  closure.Close(alphabet, /*words_only=*/true);

  BinaryTva out(closure.num_states(), alphabet.num_labels(), a.num_vars());
  for (const PendingInit& pi : inits) {
    out.AddLeafInit(pi.label, pi.vars, pi.state);
  }
  for (const auto& t : closure.transitions()) {
    out.AddTransition(t.label, t.left, t.right, t.result);
  }
  for (State i : a.initial_states()) {
    for (State f : a.final_states()) {
      if (closure.HasPair(i, f)) out.AddFinal(closure.LookupPair(i, f));
    }
  }

  return TranslatedTva{std::move(out), alphabet, closure.is_pair(),
                       closure.pairs()};
}

}  // namespace treenum
