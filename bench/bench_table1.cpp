// Experiment E1 — Table 1 of the paper, empirically.
//
// Rows (stand-ins for the state of the art):
//   Static      Bagan'06 / Kazana-Segoufin: constant delay, updates = full
//               re-preprocessing (O(n)).
//   NoIndex     enumeration without the §6 jump index: delay grows with the
//               circuit depth = O(log n) on balanced terms (the
//               Losemann-Martens / Niewerth'18 regime).
//   RelabelOnly Amarilli-Bourhis-Mengel'18: this paper's engine restricted
//               to relabeling updates.
//   ThisPaper   full engine: O(1)-delay (per answer), O(log n) updates of
//               all three kinds.
//
// The bench reports per-update time (…Update…) and per-answer delay
// (…Delay…) for each row across a size sweep; the *shape* (constant vs.
// logarithmic vs. linear growth) reproduces the table.
#include <benchmark/benchmark.h>

#include "baseline/static_engine.h"
#include "bench_util.h"

namespace treenum {
namespace {

using bench::kSeed;

void BM_Update_Static(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  StaticEngine engine(bench::MakeTree(n), bench::StandardQuery());
  Rng rng(kSeed);
  std::vector<NodeId> nodes;
  for (auto _ : state) {
    state.PauseTiming();
    nodes = engine.tree().PreorderNodes();
    NodeId target = nodes[rng.Index(nodes.size())];
    Label l = static_cast<Label>(rng.Index(3));
    state.ResumeTiming();
    engine.Relabel(target, l);  // triggers a full rebuild
  }
  state.SetLabel("Bagan06-staticrebuild");
}
BENCHMARK(BM_Update_Static)->Range(256, 16384)->Unit(benchmark::kMicrosecond);

template <BoxEnumMode mode>
void UpdateBench(benchmark::State& state, bool relabel_only,
                 const char* label) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator engine(bench::MakeTree(n), bench::StandardQuery(), mode);
  bench::EditDriver driver(engine, kSeed);
  for (auto _ : state) {
    if (relabel_only) {
      driver.RelabelStep();
    } else {
      driver.Step();
    }
  }
  state.SetLabel(label);
}

void BM_Update_NoIndex(benchmark::State& state) {
  UpdateBench<BoxEnumMode::kNaive>(state, false, "Niewerth18-noindex");
}
BENCHMARK(BM_Update_NoIndex)->Range(256, 65536)->Unit(benchmark::kMicrosecond);

void BM_Update_RelabelOnly(benchmark::State& state) {
  UpdateBench<BoxEnumMode::kIndexed>(state, true, "ABM18-relabels");
}
BENCHMARK(BM_Update_RelabelOnly)
    ->Range(256, 65536)
    ->Unit(benchmark::kMicrosecond);

void BM_Update_ThisPaper(benchmark::State& state) {
  UpdateBench<BoxEnumMode::kIndexed>(state, false, "this-paper");
}
BENCHMARK(BM_Update_ThisPaper)
    ->Range(256, 65536)
    ->Unit(benchmark::kMicrosecond);

// ---- Delay rows: time per produced answer, with the answer count held at
// ~16 regardless of n (so totals are delay-dominated).

UnrankedTree DelayTree(size_t n) {
  // All-a random tree with 16 c-nodes under a b-spine: 16 answers for the
  // marked-ancestor query at any n.
  Rng rng(kSeed + 7 * n);
  UnrankedTree t = RandomTree(n, 1, rng);  // all labels = a
  NodeId spine = t.AppendChild(t.root(), 1);
  for (int i = 0; i < 16; ++i) t.AppendChild(spine, 2);
  return t;
}

template <BoxEnumMode mode>
void DelayBench(benchmark::State& state, const char* label) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator engine(DelayTree(n), bench::StandardQuery(), mode);
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::Drain(engine);
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel(label);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["ns_per_answer"] = benchmark::Counter(
      static_cast<double>(answers) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Delay_ThisPaper(benchmark::State& state) {
  DelayBench<BoxEnumMode::kIndexed>(state, "this-paper");
}
BENCHMARK(BM_Delay_ThisPaper)->Range(256, 65536)->Unit(benchmark::kMicrosecond);

void BM_Delay_NoIndex(benchmark::State& state) {
  DelayBench<BoxEnumMode::kNaive>(state, "Niewerth18-noindex");
}
BENCHMARK(BM_Delay_NoIndex)->Range(256, 65536)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
