// Closure operations on stepwise unranked TVAs: union and intersection of
// queries (MSO is closed under boolean combinations; on the automaton side
// these are the disjoint-union and product constructions). Both preserve
// the variable set, so combined queries run through the same pipeline.
#ifndef TREENUM_AUTOMATA_COMBINATORS_H_
#define TREENUM_AUTOMATA_COMBINATORS_H_

#include "automata/unranked_tva.h"
#include "automata/wva.h"

namespace treenum {

/// Φ = Φ1 ∨ Φ2 (same variable set): disjoint union of the state spaces.
/// Satisfying assignments are the union of both queries' assignments.
UnrankedTva UnionTva(const UnrankedTva& a, const UnrankedTva& b);

/// Φ = Φ1 ∧ Φ2 (same variable set): product construction; a run of the
/// product simulates one run of each automaton on the same valuation.
/// Satisfying assignments are the intersection.
UnrankedTva IntersectTva(const UnrankedTva& a, const UnrankedTva& b);

/// Word analogues.
Wva UnionWva(const Wva& a, const Wva& b);
Wva IntersectWva(const Wva& a, const Wva& b);

/// The rewriting in the proof of Corollary 8.3: restricts a second-order
/// query so that every variable is interpreted as a singleton, by
/// intersecting with the "each variable appears exactly once" automaton
/// (2^|X| states tracking the set of variables seen). The result's
/// satisfying assignments all have size exactly |X| and correspond to the
/// answer tuples of the first-order query.
UnrankedTva MakeFirstOrder(const UnrankedTva& a);

/// Singleton-checker used by MakeFirstOrder (exposed for tests): accepts T
/// under ν iff every variable is assigned to exactly one node.
UnrankedTva EachVariableOnce(size_t num_labels, size_t num_vars);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_COMBINATORS_H_
