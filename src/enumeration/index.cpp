#include "enumeration/index.h"

#include <algorithm>
#include <cassert>

namespace treenum {

void EnumIndex::EnsureSlot(TermNodeId id) {
  if (indexes_.size() <= id) indexes_.resize(id + 1);
}

void EnumIndex::BuildAll() {
  const Term& term = circuit_->term();
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term.root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBoxIndex(f.id);
  }
}

void EnumIndex::FreeBoxIndex(TermNodeId id) {
  if (id < indexes_.size()) indexes_[id] = BoxIndex{};
}

namespace {

// Closes `items` (candidate indices of a child box) under the child's
// pairwise lca table. Candidate sets stay O(w), so the quadratic loop is
// within the per-box poly(w) budget of Lemma 6.3.
void LcaClose(const BoxIndex& child, std::vector<int32_t>& items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  bool grew = true;
  while (grew) {
    grew = false;
    size_t n = items.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        int32_t l = child.Lca(items[i], items[j]);
        if (!std::binary_search(items.begin(), items.end(), l)) {
          items.insert(std::lower_bound(items.begin(), items.end(), l), l);
          grew = true;
        }
      }
    }
  }
}

}  // namespace

void EnumIndex::RebuildBoxIndex(TermNodeId id) {
  EnsureSlot(id);
  const Term& term = circuit_->term();
  const Box box = circuit_->box(id);
  size_t nu = box.num_unions();
  BoxIndex bi;

  if (nu == 0) {
    indexes_[id] = std::move(bi);
    return;
  }

  if (term.IsLeaf(id)) {
    // Every ∪-gate of a leaf box has var-gate inputs, so fib = span = self.
    bi.cands.push_back(
        BoxIndex::Cand{id, 0, kNoCand, BitMatrix::Identity(nu)});
    bi.fib.assign(nu, 0);
    bi.span.assign(nu, 0);
    bi.cand_lca.assign(1, 0);
    indexes_[id] = std::move(bi);
    return;
  }

  TermNodeId lid = term.node(id).left;
  TermNodeId rid = term.node(id).right;
  const Box lbox = circuit_->box(lid);
  const Box rbox = circuit_->box(rid);
  const BoxIndex& lidx = indexes_[lid];
  const BoxIndex& ridx = indexes_[rid];

  // Wire relations R(child, B) over the ∪→∪ (⊤-collapse) wires.
  bi.wire_left = BitMatrix(lbox.num_unions(), nu);
  bi.wire_right = BitMatrix(rbox.num_unions(), nu);
  // Per-gate child input lists as dense child ∪-gate indices (scratch,
  // reused across rebuilds).
  if (in_left_scratch_.size() < nu) {
    in_left_scratch_.resize(nu);
    in_right_scratch_.resize(nu);
  }
  for (size_t u = 0; u < nu; ++u) {
    in_left_scratch_[u].clear();
    in_right_scratch_[u].clear();
  }
  std::vector<std::vector<uint32_t>>& in_left = in_left_scratch_;
  std::vector<std::vector<uint32_t>>& in_right = in_right_scratch_;
  for (size_t u = 0; u < nu; ++u) {
    for (const auto& [side, state] : box.child_union_inputs(u)) {
      if (side == 0) {
        int32_t d = lbox.union_idx(state);
        assert(d != kNoGate);
        bi.wire_left.Set(static_cast<size_t>(d), u);
        in_left[u].push_back(static_cast<uint32_t>(d));
      } else {
        int32_t d = rbox.union_idx(state);
        assert(d != kNoGate);
        bi.wire_right.Set(static_cast<size_t>(d), u);
        in_right[u].push_back(static_cast<uint32_t>(d));
      }
    }
  }

  // Raw fib/span per gate: (source, child candidate index).
  fib_pre_scratch_.assign(nu, Pre{0, kNoCand});
  span_pre_scratch_.assign(nu, Pre{0, kNoCand});
  std::vector<Pre>& fib_pre = fib_pre_scratch_;
  std::vector<Pre>& span_pre = span_pre_scratch_;
  for (size_t u = 0; u < nu; ++u) {
    bool local = box.HasNonUnionInput(u);
    bool has_l = !in_left[u].empty();
    bool has_r = !in_right[u].empty();
    assert(local || has_l || has_r);
    // fib: Equation (3).
    if (local) {
      fib_pre[u] = {0, kNoCand};
    } else if (has_l) {
      int32_t best = lidx.fib[in_left[u][0]];
      for (uint32_t g : in_left[u]) best = std::min(best, lidx.fib[g]);
      fib_pre[u] = {1, best};
    } else {
      int32_t best = ridx.fib[in_right[u][0]];
      for (uint32_t g : in_right[u]) best = std::min(best, ridx.fib[g]);
      fib_pre[u] = {2, best};
    }
    // span: lca of the gate's interesting boxes.
    if (local || (has_l && has_r)) {
      span_pre[u] = {0, kNoCand};
    } else if (has_l) {
      span_pre[u] = {1, lidx.SpanLocal(in_left[u])};
    } else {
      span_pre[u] = {2, ridx.SpanLocal(in_right[u])};
    }
  }

  // Candidate collection + lca closure per side.
  used_l_scratch_.clear();
  used_r_scratch_.clear();
  std::vector<int32_t>& used_l = used_l_scratch_;
  std::vector<int32_t>& used_r = used_r_scratch_;
  bool use_self = false;
  for (size_t u = 0; u < nu; ++u) {
    for (const Pre& p : {fib_pre[u], span_pre[u]}) {
      if (p.source == 0) {
        use_self = true;
      } else if (p.source == 1) {
        used_l.push_back(p.cc);
      } else {
        used_r.push_back(p.cc);
      }
    }
  }
  if (!used_l.empty()) LcaClose(lidx, used_l);
  if (!used_r.empty()) LcaClose(ridx, used_r);
  if (!used_l.empty() && !used_r.empty()) use_self = true;

  // Assemble candidates in preorder: self, left child's (in its order),
  // right child's.
  map_l_scratch_.assign(lidx.cands.size(), kNoCand);
  map_r_scratch_.assign(ridx.cands.size(), kNoCand);
  std::vector<int32_t>& map_l = map_l_scratch_;
  std::vector<int32_t>& map_r = map_r_scratch_;
  int32_t self_idx = kNoCand;
  if (use_self) {
    self_idx = static_cast<int32_t>(bi.cands.size());
    bi.cands.push_back(
        BoxIndex::Cand{id, 0, kNoCand, BitMatrix::Identity(nu)});
  }
  for (int32_t cc : used_l) {
    map_l[cc] = static_cast<int32_t>(bi.cands.size());
    bi.cands.push_back(BoxIndex::Cand{lidx.cands[cc].box, 1, cc,
                                      lidx.cands[cc].rel.Compose(
                                          bi.wire_left)});
  }
  for (int32_t cc : used_r) {
    map_r[cc] = static_cast<int32_t>(bi.cands.size());
    bi.cands.push_back(BoxIndex::Cand{ridx.cands[cc].box, 2, cc,
                                      ridx.cands[cc].rel.Compose(
                                          bi.wire_right)});
  }

  auto resolve = [&](const Pre& p) -> int32_t {
    if (p.source == 0) return self_idx;
    if (p.source == 1) return map_l[p.cc];
    return map_r[p.cc];
  };
  bi.fib.resize(nu);
  bi.span.resize(nu);
  for (size_t u = 0; u < nu; ++u) {
    bi.fib[u] = resolve(fib_pre[u]);
    bi.span[u] = resolve(span_pre[u]);
    assert(bi.fib[u] != kNoCand && bi.span[u] != kNoCand);
  }

  // Pairwise candidate lca table.
  size_t nc = bi.cands.size();
  bi.cand_lca.assign(nc * nc, kNoCand);
  for (size_t a = 0; a < nc; ++a) {
    for (size_t b = 0; b < nc; ++b) {
      int32_t v;
      if (a == b) {
        v = static_cast<int32_t>(a);
      } else if (bi.cands[a].source == 0 || bi.cands[b].source == 0 ||
                 bi.cands[a].source != bi.cands[b].source) {
        assert(self_idx != kNoCand);
        v = self_idx;
      } else if (bi.cands[a].source == 1) {
        v = map_l[lidx.Lca(bi.cands[a].child_cand, bi.cands[b].child_cand)];
      } else {
        v = map_r[ridx.Lca(bi.cands[a].child_cand, bi.cands[b].child_cand)];
      }
      assert(v != kNoCand);
      bi.cand_lca[a * nc + b] = v;
    }
  }

  indexes_[id] = std::move(bi);
}

int32_t EnumIndex::FibOfSet(TermNodeId box,
                            const std::vector<uint32_t>& gates) const {
  const BoxIndex& bi = indexes_[box];
  assert(!gates.empty());
  int32_t best = bi.fib[gates[0]];
  for (uint32_t g : gates) best = std::min(best, bi.fib[g]);
  return best;
}

int32_t EnumIndex::SpanOfSet(TermNodeId box,
                             const std::vector<uint32_t>& gates) const {
  return indexes_[box].SpanLocal(gates);
}

}  // namespace treenum
