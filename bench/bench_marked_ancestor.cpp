// Experiment E7 — the §9 lower-bound scenario, measured from above: the
// marked-ancestor problem solved through the enumeration pipeline. Updates
// (mark/unmark) are relabelings; a query is two relabelings plus one
// enumeration probe. Both series grow logarithmically in n — consistent
// with the Ω(log n / log log n) lower bound of Theorem 9.2 and the O(log n)
// upper bound of Theorem 8.1.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace treenum {
namespace {

using bench::kSeed;

constexpr Label kUnmarked = 0, kMarked = 1, kSpecial = 2;

TreeEnumerator MakeStructure(size_t n) {
  Rng rng(kSeed + n);
  UnrankedTree t = RandomTree(n, 1, rng);  // all unmarked
  return TreeEnumerator(std::move(t), QueryMarkedAncestor(3, kMarked,
                                                          kSpecial));
}

void BM_MarkedAncestor_Update(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator e = MakeStructure(n);
  Rng rng(kSeed);
  std::vector<NodeId> nodes = e.tree().PreorderNodes();
  for (auto _ : state) {
    NodeId v = nodes[rng.Index(nodes.size())];
    e.Relabel(v, rng.Flip(0.5) ? kMarked : kUnmarked);
  }
}
BENCHMARK(BM_MarkedAncestor_Update)
    ->Range(1024, 262144)
    ->Unit(benchmark::kMicrosecond);

void BM_MarkedAncestor_Query(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  TreeEnumerator e = MakeStructure(n);
  Rng rng(kSeed);
  std::vector<NodeId> nodes = e.tree().PreorderNodes();
  // Mark 1% of the nodes.
  for (size_t i = 0; i < nodes.size() / 100 + 1; ++i) {
    e.Relabel(nodes[rng.Index(nodes.size())], kMarked);
  }
  size_t yes = 0;
  for (auto _ : state) {
    NodeId v = nodes[rng.Index(nodes.size())];
    Label old = e.tree().label(v);
    e.Relabel(v, kSpecial);
    TreeEnumerator::Cursor c = e.Enumerate();
    Assignment a;
    yes += c.Next(&a);
    e.Relabel(v, old);
  }
  state.counters["yes_fraction"] =
      static_cast<double>(yes) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MarkedAncestor_Query)
    ->Range(1024, 262144)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
