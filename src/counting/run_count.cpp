#include "counting/run_count.h"

namespace treenum {

void RunCounter::EnsureSlot(TermNodeId id) {
  if (counts_.size() <= id) counts_.resize(id + 1);
}

void RunCounter::BuildAll() {
  const Term& term = circuit_->term();
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term.root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBoxCounts(f.id);
  }
}

void RunCounter::RebuildBoxCounts(TermNodeId id) {
  EnsureSlot(id);
  const Term& term = circuit_->term();
  const BinaryTva& tva = circuit_->tva();
  const size_t w = tva.num_states();
  std::vector<uint64_t> counts(w, 0);
  const TermNode& t = term.node(id);

  if (t.left == kNoTerm) {
    // One run start per matching ι entry (each annotation choice of this
    // leaf contributes its entries).
    for (const auto& [vars, q] : tva.LeafInitsFor(t.label)) {
      (void)vars;
      counts[q] += 1;
    }
  } else {
    const std::vector<uint64_t>& lc = counts_[t.left];
    const std::vector<uint64_t>& rc = counts_[t.right];
    for (State q1 = 0; q1 < w; ++q1) {
      if (lc[q1] == 0) continue;
      for (State q2 = 0; q2 < w; ++q2) {
        if (rc[q2] == 0) continue;
        uint64_t prod = lc[q1] * rc[q2];
        for (State q : tva.TransitionsFor(t.label, q1, q2)) {
          counts[q] += prod;
        }
      }
    }
  }
  counts_[id] = std::move(counts);
}

void RunCounter::FreeBoxCounts(TermNodeId id) {
  if (id < counts_.size()) counts_[id].clear();
}

uint64_t RunCounter::Count(TermNodeId id, State q) const {
  if (id >= counts_.size() || counts_[id].empty()) return 0;
  return counts_[id][q];
}

uint64_t RunCounter::TotalAcceptingRuns() const {
  const Term& term = circuit_->term();
  const BinaryTva& tva = circuit_->tva();
  uint64_t total = 0;
  for (State q : tva.final_states()) {
    total += Count(term.root(), q);
  }
  return total;
}

}  // namespace treenum
