#include "enumeration/box_enum.h"

#include <cassert>

namespace treenum {

BitMatrix InitialRelation(size_t num_unions,
                          const std::vector<uint32_t>& gamma) {
  BitMatrix r(num_unions, gamma.size());
  for (size_t i = 0; i < gamma.size(); ++i) r.Set(gamma[i], i);
  return r;
}

BitMatrix WireRelation(const AssignmentCircuit& circuit, TermNodeId box,
                       int side) {
  const Term& term = circuit.term();
  const Box b = circuit.box(box);
  TermNodeId child =
      side == 0 ? term.node(box).left : term.node(box).right;
  const Box cb = circuit.box(child);
  BitMatrix r(cb.num_unions(), b.num_unions());
  for (size_t u = 0; u < b.num_unions(); ++u) {
    for (const auto& [s, state] : b.child_union_inputs(u)) {
      if (s != side) continue;
      int32_t d = cb.union_idx(state);
      assert(d != kNoGate);
      r.Set(static_cast<size_t>(d), u);
    }
  }
  return r;
}

// ---------------------------------------------------------------- Indexed

IndexedBoxEnum::IndexedBoxEnum(const EnumIndex* index, TermNodeId box,
                               const std::vector<uint32_t>& gamma)
    : index_(index) {
  assert(!gamma.empty());
  BitMatrix r = InitialRelation(index_->circuit().box(box).num_unions(),
                                gamma);
  stack_.push_back(Frame{Frame::kEnter, box, std::move(r)});
}

// True iff the jump loop has another iteration at (box, rel): the first
// bidirectional box (lca of the gates' spans) is a strict ancestor of the
// first interesting box. Outputs the span candidate index.
static bool WalkViable(const EnumIndex& index, TermNodeId box,
                       const BitMatrix& rel, int32_t* span_cand) {
  std::vector<uint32_t> gates = rel.NonEmptyRows();
  if (gates.empty()) return false;
  const BoxIndex& bi = index.at(box);
  int32_t c1 = index.FibOfSet(box, gates);
  int32_t j = bi.SpanLocal(gates);
  if (j == c1) return false;
  if (bi.Lca(j, c1) != j) return false;  // j not a strict ancestor of c1
  *span_cand = j;
  return true;
}

bool IndexedBoxEnum::Next(BoxRelation* out) {
  const Term& term = index_->circuit().term();
  while (!stack_.empty()) {
    Frame f = std::move(stack_.back());
    stack_.pop_back();
    ++steps_;

    if (f.kind == Frame::kEnter) {
      std::vector<uint32_t> gates = f.rel.NonEmptyRows();
      assert(!gates.empty());
      const BoxIndex& bi = index_->at(f.box);
      int32_t c1 = index_->FibOfSet(f.box, gates);
      TermNodeId b1 = bi.cands[c1].box;
      BitMatrix r1 = bi.cands[c1].rel.Compose(f.rel);

      // The loop continuation for this frame (Line 11-17), pushed only when
      // it will do work — this is the tail-call elimination of Lemma 6.4.
      int32_t span_cand;
      if (WalkViable(*index_, f.box, f.rel, &span_cand)) {
        stack_.push_back(Frame{Frame::kWalk, f.box, std::move(f.rel)});
      }
      // Recurse below B1 (Lines 7-10); right pushed first so left pops
      // first.
      if (!term.IsLeaf(b1)) {
        const BoxIndex& b1i = index_->at(b1);
        BitMatrix rr = b1i.wire_right.Compose(r1);
        BitMatrix rl = b1i.wire_left.Compose(r1);
        if (rr.Any()) {
          stack_.push_back(
              Frame{Frame::kEnter, term.node(b1).right, std::move(rr)});
        }
        if (rl.Any()) {
          stack_.push_back(
              Frame{Frame::kEnter, term.node(b1).left, std::move(rl)});
        }
      }
      out->box = b1;
      out->rel = std::move(r1);
      return true;
    }

    // kWalk: one iteration of the jump loop. Frames are only pushed when
    // viable, so this always performs a jump.
    int32_t span_cand;
    bool viable = WalkViable(*index_, f.box, f.rel, &span_cand);
    assert(viable);
    (void)viable;
    const BoxIndex& bi = index_->at(f.box);
    const BoxIndex::Cand& j = bi.cands[span_cand];
    BitMatrix rj = j.rel.Compose(f.rel);
    const BoxIndex& ji = index_->at(j.box);
    assert(!term.IsLeaf(j.box));
    BitMatrix rl = ji.wire_left.Compose(rj);
    BitMatrix rr = ji.wire_right.Compose(rj);
    // Continue the loop at the left child (pushed first → popped after the
    // right subtree's Enter), if another iteration is viable there.
    int32_t next_span;
    if (rl.Any() &&
        WalkViable(*index_, term.node(j.box).left, rl, &next_span)) {
      stack_.push_back(
          Frame{Frame::kWalk, term.node(j.box).left, std::move(rl)});
    }
    if (rr.Any()) {
      stack_.push_back(
          Frame{Frame::kEnter, term.node(j.box).right, std::move(rr)});
    }
  }
  return false;
}

// ------------------------------------------------------------------ Naive

NaiveBoxEnum::NaiveBoxEnum(const AssignmentCircuit* circuit, TermNodeId box,
                           const std::vector<uint32_t>& gamma)
    : circuit_(circuit) {
  assert(!gamma.empty());
  BitMatrix r = InitialRelation(circuit_->box(box).num_unions(), gamma);
  stack_.push_back(Frame{box, std::move(r)});
}

bool NaiveBoxEnum::Next(BoxRelation* out) {
  const Term& term = circuit_->term();
  while (!stack_.empty()) {
    Frame f = std::move(stack_.back());
    stack_.pop_back();
    ++steps_;

    std::vector<uint32_t> gates = f.rel.NonEmptyRows();
    if (gates.empty()) continue;

    if (!term.IsLeaf(f.box)) {
      BitMatrix rl = WireRelation(*circuit_, f.box, 0).Compose(f.rel);
      BitMatrix rr = WireRelation(*circuit_, f.box, 1).Compose(f.rel);
      if (rr.Any()) {
        stack_.push_back(Frame{term.node(f.box).right, std::move(rr)});
      }
      if (rl.Any()) {
        stack_.push_back(Frame{term.node(f.box).left, std::move(rl)});
      }
    }

    const Box b = circuit_->box(f.box);
    bool interesting = false;
    for (uint32_t g : gates) {
      if (b.HasNonUnionInput(g)) {
        interesting = true;
        break;
      }
    }
    if (interesting) {
      out->box = f.box;
      out->rel = std::move(f.rel);
      return true;
    }
  }
  return false;
}

}  // namespace treenum
