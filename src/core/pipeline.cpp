#include "core/pipeline.h"

#include <algorithm>
#include <cassert>

namespace treenum {

EnumerationPipeline::EnumerationPipeline(
    const Term* term, std::shared_ptr<const HomogenizedTva> homog,
    BoxEnumMode mode)
    : term_(term),
      homog_(std::move(homog)),
      circuit_(term, &homog_->tva, &homog_->kind),
      index_(&circuit_),
      mode_(mode),
      // The snapshot current at build time captured epoch() - 1 (Publish
      // captures, then bumps); it and everything newer is servable. Epoch 0
      // means no snapshot layer is attached (bare-term pipelines in tests).
      min_snapshot_epoch_(term->epoch() == 0 ? 0 : term->epoch() - 1) {
  circuit_.BuildAll();
  if (mode_ == BoxEnumMode::kIndexed) index_.BuildAll();
}

void EnumerationPipeline::EnableCounting() {
  if (counter_) return;
  counter_ = std::make_unique<RunCounter>(&circuit_);
  counter_->BuildAll();
}

uint64_t EnumerationPipeline::AcceptingRuns() const {
  assert(!update_pending_ && "querying during an open batch is unsupported");
  if (update_pending_) return 0;
  return counter_ ? counter_->TotalAcceptingRuns() : 0;
}

void EnumerationPipeline::RefreshBox(TermNodeId id) {
  circuit_.RebuildBox(id);
  if (mode_ == BoxEnumMode::kIndexed) index_.RebuildBoxIndex(id);
  if (counter_) counter_->RebuildBoxCounts(id);
}

void EnumerationPipeline::ReleaseBox(TermNodeId id) {
  circuit_.FreeBox(id);
  if (mode_ == BoxEnumMode::kIndexed) index_.FreeBoxIndex(id);
  if (counter_) counter_->FreeBoxCounts(id);
}

UpdateStats EnumerationPipeline::Apply(const UpdateResult& result) {
  UpdateStats stats;
  stats.edits_applied = 1;
  stats.rebuilt_size = result.rebuilt_size;
  for (TermNodeId id : result.freed) ReleaseBox(id);
  for (TermNodeId id : result.changed_bottom_up) RefreshBox(id);
  stats.boxes_recomputed = result.changed_bottom_up.size();
  return stats;
}

UpdateStats EnumerationPipeline::ApplyCoalesced(
    const std::vector<TermNodeId>& dead_freed,
    const std::vector<TermNodeId>& ordered_changed) {
  UpdateStats stats;
  for (TermNodeId id : dead_freed) ReleaseBox(id);
  circuit_.ReserveForRebuild(ordered_changed.size());
  if (mode_ == BoxEnumMode::kIndexed) {
    index_.ReserveForRebuild(ordered_changed.size());
  }
  for (TermNodeId id : ordered_changed) RefreshBox(id);
  stats.boxes_recomputed = ordered_changed.size();
  return stats;
}

void EnumerationPipeline::ReleaseBoxes(const std::vector<TermNodeId>& freed) {
  for (TermNodeId id : freed) ReleaseBox(id);
}

bool EnumerationPipeline::EmptyAssignmentSatisfies() const {
  assert(!update_pending_ && "querying during an open batch is unsupported");
  // Release-mode safety: boxes of term nodes created mid-batch do not
  // exist until commit, so reading the root box would be out of bounds.
  if (update_pending_) return false;
  return EmptyAssignmentSatisfiesAt(term_->root());
}

std::vector<uint32_t> EnumerationPipeline::FinalGamma() const {
  assert(!update_pending_ && "querying during an open batch is unsupported");
  if (update_pending_) return {};
  return FinalGammaAt(term_->root());
}

bool EnumerationPipeline::HasAnswer() const {
  if (EmptyAssignmentSatisfies()) return true;
  return !FinalGamma().empty();
}

std::unique_ptr<AssignmentCursor> EnumerationPipeline::MakeRootCursor() const {
  assert(!update_pending_ && "querying during an open batch is unsupported");
  if (update_pending_) return nullptr;
  return MakeRootCursorAt(term_->root());
}

std::unique_ptr<Engine::Cursor> EnumerationPipeline::MakeEngineCursor() const {
  assert(!update_pending_ && "querying during an open batch is unsupported");
  return MakeEngineCursorAt(term_->root());
}

std::vector<Assignment> EnumerationPipeline::EnumerateAll() const {
  assert(!update_pending_ && "querying during an open batch is unsupported");
  return EnumerateAllAt(term_->root());
}

// ---- Snapshot (At-) query surface ----

bool EnumerationPipeline::EmptyAssignmentSatisfiesAt(TermNodeId root) const {
  const Box box = circuit_.box(root);
  for (State q : homog_->tva.final_states()) {
    if (homog_->kind[q] == 0 && box.gamma(q) == GateKind::kTop) return true;
  }
  return false;
}

std::vector<uint32_t> EnumerationPipeline::FinalGammaAt(
    TermNodeId root) const {
  std::vector<uint32_t> gamma;
  const Box box = circuit_.box(root);
  for (State q : homog_->tva.final_states()) {
    if (homog_->kind[q] == 1 && box.gamma(q) == GateKind::kUnion) {
      gamma.push_back(static_cast<uint32_t>(box.union_idx(q)));
    }
  }
  return gamma;
}

bool EnumerationPipeline::HasAnswerAt(TermNodeId root) const {
  if (EmptyAssignmentSatisfiesAt(root)) return true;
  return !FinalGammaAt(root).empty();
}

std::unique_ptr<AssignmentCursor> EnumerationPipeline::MakeRootCursorAt(
    TermNodeId root) const {
  std::vector<uint32_t> gamma = FinalGammaAt(root);
  if (gamma.empty()) return nullptr;
  return std::make_unique<AssignmentCursor>(&circuit_, &index_, mode_, root,
                                            std::move(gamma));
}

std::unique_ptr<Engine::Cursor> EnumerationPipeline::MakeEngineCursorAt(
    TermNodeId root) const {
  class Cursor : public Engine::Cursor {
   public:
    Cursor(bool emit_empty, std::unique_ptr<AssignmentCursor> inner)
        : emit_empty_(emit_empty), inner_(std::move(inner)) {}
    bool Next(Assignment* out) override {
      if (emit_empty_) {
        emit_empty_ = false;
        *out = Assignment{};
        return true;
      }
      if (!inner_) return false;
      EnumOutput o;
      if (!inner_->Next(&o)) return false;
      *out = o.ToAssignment();
      return true;
    }

   private:
    bool emit_empty_;
    std::unique_ptr<AssignmentCursor> inner_;
  };
  return std::make_unique<Cursor>(EmptyAssignmentSatisfiesAt(root),
                                  MakeRootCursorAt(root));
}

std::vector<Assignment> EnumerationPipeline::EnumerateAllAt(
    TermNodeId root) const {
  std::vector<Assignment> out;
  std::unique_ptr<Engine::Cursor> cursor = MakeEngineCursorAt(root);
  Assignment a;
  while (cursor->Next(&a)) out.push_back(std::move(a));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace treenum
