#include "core/word_enumerator.h"

#include <algorithm>

namespace treenum {

namespace {

HomogenizedTva PrepareWva(const Wva& query) {
  TranslatedTva translated = TranslateWva(query);
  return HomogenizeBinaryTva(translated.tva);
}

}  // namespace

WordEnumerator::WordEnumerator(const Word& w, const Wva& query,
                               BoxEnumMode mode)
    : homog_(PrepareWva(query)),
      enc_(w, query.num_labels()),
      circuit_(&enc_.term(), &homog_.tva, &homog_.kind),
      index_(&circuit_),
      mode_(mode) {
  circuit_.BuildAll();
  if (mode_ == BoxEnumMode::kIndexed) index_.BuildAll();
}

std::vector<uint32_t> WordEnumerator::FinalGamma() const {
  std::vector<uint32_t> gamma;
  TermNodeId root = enc_.term().root();
  const Box& box = circuit_.box(root);
  for (State q : homog_.tva.final_states()) {
    if (homog_.kind[q] == 1 && box.gamma[q] == GateKind::kUnion) {
      gamma.push_back(static_cast<uint32_t>(box.union_idx[q]));
    }
  }
  return gamma;
}

std::vector<Assignment> WordEnumerator::EnumerateAll() const {
  std::vector<Assignment> out;
  TermNodeId root = enc_.term().root();
  const Box& box = circuit_.box(root);
  for (State q : homog_.tva.final_states()) {
    if (homog_.kind[q] == 0 && box.gamma[q] == GateKind::kTop) {
      out.push_back(Assignment{});
      break;
    }
  }
  std::vector<uint32_t> gamma = FinalGamma();
  if (!gamma.empty()) {
    AssignmentCursor cursor(&circuit_, &index_, mode_, root, gamma);
    EnumOutput o;
    while (cursor.Next(&o)) out.push_back(o.ToAssignment());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Assignment> WordEnumerator::EnumerateAllByPosition() const {
  std::vector<Assignment> out;
  for (const Assignment& a : EnumerateAll()) {
    Assignment b;
    for (const Singleton& s : a.singletons()) {
      b.Add(Singleton{s.var, static_cast<NodeId>(enc_.PositionOf(s.node))});
    }
    b.Normalize();
    out.push_back(std::move(b));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void WordEnumerator::ApplyUpdate(const UpdateResult& result) {
  for (TermNodeId id : result.freed) {
    circuit_.FreeBox(id);
    if (mode_ == BoxEnumMode::kIndexed) index_.FreeBoxIndex(id);
  }
  for (TermNodeId id : result.changed_bottom_up) {
    circuit_.RebuildBox(id);
    if (mode_ == BoxEnumMode::kIndexed) index_.RebuildBoxIndex(id);
  }
}

void WordEnumerator::Replace(size_t pos, Label l) {
  ApplyUpdate(enc_.Replace(pos, l));
}

void WordEnumerator::Insert(size_t pos, Label l) {
  ApplyUpdate(enc_.Insert(pos, l));
}

void WordEnumerator::Erase(size_t pos) { ApplyUpdate(enc_.Erase(pos)); }

void WordEnumerator::MoveRange(size_t begin, size_t end, size_t dst) {
  ApplyUpdate(enc_.MoveRange(begin, end, dst));
}

}  // namespace treenum
