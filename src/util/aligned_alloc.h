// A minimal over-aligned std::allocator for the bit-matrix word buffers.
//
// The SIMD kernels (util/simd_kernels.h) use unaligned loads, so alignment
// is a performance contract, not a correctness one: 64-byte-aligned rows
// keep the AVX2/AVX-512 paths off split cache lines. BitMatrix and
// BitMatrixPool allocate their word storage through this allocator so every
// backing buffer starts on a cache-line boundary (block offsets inside the
// pool are then kept 64-byte-aligned by rounding, see index_arena.h).
#ifndef TREENUM_UTIL_ALIGNED_ALLOC_H_
#define TREENUM_UTIL_ALIGNED_ALLOC_H_

#include <cstddef>
#include <new>
#include <vector>

namespace treenum {

template <typename T, std::size_t Align>
struct AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment must not weaken the type's");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    // Routed through the aligned operator new so the alloc-gauge hooks
    // (util/alloc_gauge_hooks.cpp) and the sanitizers keep seeing every
    // allocation.
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// Cache-line-aligned uint64 buffer: the storage type shared by BitMatrix
/// and BitMatrixPool.
using AlignedWordVector =
    std::vector<uint64_t, AlignedAllocator<uint64_t, 64>>;

}  // namespace treenum

#endif  // TREENUM_UTIL_ALIGNED_ALLOC_H_
