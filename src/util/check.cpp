#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace treenum {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const char* msg) {
  std::fprintf(stderr, "TREENUM_CHECK failed at %s:%d: %s (%s)\n", file, line,
               expr, msg);
  std::abort();
}

}  // namespace internal
}  // namespace treenum
