// Bit-packed Boolean matrices used to represent the ∪-reachability relations
// R(B', B) of Section 6 of the paper. Composition of relations (the
// complexity kernel the paper bounds by O(w^ω)) is implemented word-parallel,
// i.e. in O(rows * cols / 64) per row pair.
//
// Two representations share the kernels:
//  * BitMatrix — owning (vector-backed, 64-byte-aligned), used for the
//    relations that cursors thread through their stacks;
//  * BitMatrixView — a borrowed (words, rows, cols) view over word-aligned
//    storage, used for the pooled index relations (enumeration/index_arena.h)
//    and to run the kernels without copying. A BitMatrix converts implicitly.
//
// Every scan/union/zero/compose below bottoms out in the runtime-dispatched
// word-block kernels of util/simd_kernels.h (scalar / AVX2 / AVX-512, picked
// once per process), so both representations share one implementation per
// primitive.
#ifndef TREENUM_UTIL_BIT_MATRIX_H_
#define TREENUM_UTIL_BIT_MATRIX_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "util/aligned_alloc.h"

namespace treenum {

class BitMatrix;

/// A borrowed rows x cols view over 64-bit packed rows (each row occupies
/// ceil(cols / 64) words; bits past `cols` are zero). Never owns memory;
/// invalidated by whatever invalidates the underlying storage.
class BitMatrixView {
 public:
  BitMatrixView() = default;
  BitMatrixView(const uint64_t* words, size_t rows, size_t cols)
      : words_(words),
        rows_(rows),
        cols_(cols),
        words_per_row_((cols + 63) / 64) {}
  BitMatrixView(const BitMatrix& m);  // NOLINT: implicit by design

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t words_per_row() const { return words_per_row_; }
  const uint64_t* Row(size_t r) const { return words_ + r * words_per_row_; }

  bool Get(size_t r, size_t c) const {
    return (Row(r)[c / 64] >> (c % 64)) & 1u;
  }
  /// True iff some entry in row r is set.
  bool RowAny(size_t r) const;
  /// True iff any entry is set.
  bool Any() const;
  /// Number of set entries.
  size_t Count() const;

  /// Appends-free variant of NonEmptyRows: clears `out` and fills it with
  /// the indices of rows having at least one set entry.
  void NonEmptyRowsInto(std::vector<uint32_t>* out) const;

  /// Relational composition into a reused owning matrix: reshapes `result`
  /// to rows() x other.cols() (keeping its capacity) and writes
  /// result(a, c) = ∃b this(a, b) && other(b, c). Requires cols() ==
  /// other.rows() and `result` distinct from both operands' storage.
  void ComposeInto(const BitMatrixView& other, BitMatrix* result) const;

  /// Low-level composition kernel: `out` must point at
  /// a.rows() * b.words_per_row() words that do NOT alias either operand's
  /// storage (the blocked kernel re-reads operand rows after writing `out`;
  /// the precondition is TREENUM_CHECKed in debug builds).
  /// OVERWRITE semantics: every word of `out` is written — accumulators
  /// start at zero inside the kernel — so callers need not pre-zero the
  /// block. Used by the index arena to compose directly into pooled storage.
  static void ComposeIntoWords(const BitMatrixView& a, const BitMatrixView& b,
                               uint64_t* out);

 private:
  const uint64_t* words_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t words_per_row_ = 0;
};

/// A dense rows x cols Boolean matrix with 64-bit packed rows.
///
/// Semantics throughout the enumeration module: entry (r, c) of the matrix
/// standing for relation R(B', B) is true iff the r-th ∪-gate of box B' has a
/// path of ∪-gates to the c-th ∪-gate of box B (the relation "g' ∪⇝ g").
class BitMatrix {
 public:
  BitMatrix() : rows_(0), cols_(0), words_per_row_(0) {}
  BitMatrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + 63) / 64),
        bits_(rows * words_per_row_, 0) {}

  /// The identity relation over n elements.
  static BitMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Reshapes to rows x cols and zeroes every entry, reusing the existing
  /// heap buffer whenever its capacity suffices (the cursors' steady-state
  /// allocation-free path).
  void Assign(size_t rows, size_t cols);

  void swap(BitMatrix& other) {
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
    std::swap(words_per_row_, other.words_per_row_);
    bits_.swap(other.bits_);
  }

  bool Get(size_t r, size_t c) const {
    return (bits_[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
  }
  void Set(size_t r, size_t c, bool v = true) {
    uint64_t& w = bits_[r * words_per_row_ + c / 64];
    if (v) {
      w |= (uint64_t{1} << (c % 64));
    } else {
      w &= ~(uint64_t{1} << (c % 64));
    }
  }

  /// True iff some entry in row r is set.
  bool RowAny(size_t r) const;
  /// True iff some entry in column c is set.
  bool ColAny(size_t c) const;
  /// True iff any entry is set.
  bool Any() const;
  /// Number of set entries.
  size_t Count() const;

  /// Relational composition: result(a, c) = ∃b this(a, b) && other(b, c).
  /// Requires cols() == other.rows().
  BitMatrix Compose(const BitMatrixView& other) const;
  /// Allocation-reusing variant; see BitMatrixView::ComposeInto.
  void ComposeInto(const BitMatrixView& other, BitMatrix* result) const;

  /// Entrywise union. Requires identical dimensions.
  void UnionWith(const BitMatrixView& other);

  /// Restrict rows: keep only rows whose index bit is set in `keep`
  /// (represented as a bitset over row indices packed into uint64 words);
  /// other rows are zeroed.
  void ZeroRowsNotIn(const std::vector<uint64_t>& keep);

  /// The set of row indices with at least one set entry ("π1" of the
  /// relation, as used in Algorithms 2 and 3).
  std::vector<uint32_t> NonEmptyRows() const;
  /// Reuse variant: clears `out` and fills it with the non-empty rows.
  void NonEmptyRowsInto(std::vector<uint32_t>* out) const;
  /// The set of column indices with at least one set entry.
  std::vector<uint32_t> NonEmptyCols() const;

  /// Row r as a bitset over column indices (words_per_row() words).
  const uint64_t* Row(size_t r) const { return &bits_[r * words_per_row_]; }
  uint64_t* MutableRow(size_t r) { return &bits_[r * words_per_row_]; }
  size_t words_per_row() const { return words_per_row_; }

  bool operator==(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           bits_ == other.bits_;
  }

  /// Debug rendering as '0'/'1' rows.
  std::string ToString() const;

 private:
  friend class BitMatrixView;

  /// Reshapes to rows x cols WITHOUT zeroing: entry values are unspecified
  /// afterwards. Only for callers about to overwrite every word (the
  /// compose path — see ComposeIntoWords' overwrite semantics).
  void ReshapeUninit(size_t rows, size_t cols);

  size_t rows_;
  size_t cols_;
  size_t words_per_row_;
  AlignedWordVector bits_;
};

inline BitMatrixView::BitMatrixView(const BitMatrix& m)
    : words_(m.rows() == 0 ? nullptr : m.Row(0)),
      rows_(m.rows()),
      cols_(m.cols()),
      words_per_row_(m.words_per_row()) {}

/// Naive cubic composition used as a test oracle for BitMatrix::Compose.
BitMatrix ComposeNaive(const BitMatrix& a, const BitMatrix& b);

}  // namespace treenum

#endif  // TREENUM_UTIL_BIT_MATRIX_H_
