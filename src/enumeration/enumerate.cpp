#include "enumeration/enumerate.h"

#include <algorithm>
#include <cassert>

namespace treenum {

namespace {

void OrInto(std::vector<uint64_t>& dst, const uint64_t* src, size_t words) {
  if (dst.size() < words) dst.resize(words, 0);
  for (size_t i = 0; i < words; ++i) dst[i] |= src[i];
}

bool BitAt(const std::vector<uint64_t>& bits, size_t pos) {
  return pos / 64 < bits.size() && ((bits[pos / 64] >> (pos % 64)) & 1u);
}

}  // namespace

Assignment EnumOutput::ToAssignment() const {
  Assignment a;
  for (const auto& [mask, node] : contributions) {
    for (VarId v = 0; mask >> v; ++v) {
      if (mask & (VarMask{1} << v)) a.Add(Singleton{v, node});
    }
  }
  a.Normalize();
  return a;
}

AssignmentCursor::AssignmentCursor(const AssignmentCircuit* circuit,
                                   const EnumIndex* index, BoxEnumMode mode,
                                   TermNodeId box,
                                   std::vector<uint32_t> gamma)
    : circuit_(circuit),
      index_(index),
      mode_(mode),
      box_(box),
      gamma_(std::move(gamma)),
      prov_words_((gamma_.size() + 63) / 64) {
  assert(!gamma_.empty());
  box_enum_ = MakeBoxEnum(box_, gamma_);
}

std::unique_ptr<BoxEnumCursor> AssignmentCursor::MakeBoxEnum(
    TermNodeId box, const std::vector<uint32_t>& g) {
  if (mode_ == BoxEnumMode::kIndexed) {
    assert(index_ != nullptr);
    return std::make_unique<IndexedBoxEnum>(index_, box, g);
  }
  return std::make_unique<NaiveBoxEnum>(circuit_, box, g);
}

void AssignmentCursor::PrepareBox() {
  const Box b = circuit_->box(cur_.box);
  var_agenda_.clear();
  var_pos_ = 0;
  crosses_.clear();
  cross_prov_.clear();

  std::vector<std::vector<uint64_t>> vacc(b.num_var_masks());
  std::vector<std::vector<uint64_t>> cacc(b.num_cross_gates());
  cur_.rel.NonEmptyRowsInto(&rows_scratch_);
  for (uint32_t g : rows_scratch_) {
    const uint64_t* row = cur_.rel.Row(g);
    size_t words = cur_.rel.words_per_row();
    for (uint32_t vi : b.var_inputs(g)) OrInto(vacc[vi], row, words);
    for (uint32_t ci : b.cross_inputs(g)) OrInto(cacc[ci], row, words);
    ++local_steps_;
  }
  for (uint32_t vi = 0; vi < vacc.size(); ++vi) {
    if (!vacc[vi].empty()) var_agenda_.emplace_back(vi, std::move(vacc[vi]));
  }
  for (uint32_t ci = 0; ci < cacc.size(); ++ci) {
    if (!cacc[ci].empty()) {
      crosses_.push_back(ci);
      cross_prov_.push_back(std::move(cacc[ci]));
    }
  }
}

void AssignmentCursor::SetupLeft() {
  if (crosses_.empty()) {
    stage_ = Stage::kNextBox;
    return;
  }
  const Box b = circuit_->box(cur_.box);
  const Term& term = circuit_->term();
  TermNodeId lchild = term.node(cur_.box).left;
  const Box lb = circuit_->box(lchild);

  gamma_left_.clear();
  left_pos_.assign(lb.num_unions(), -1);
  for (uint32_t p : crosses_) {
    const CrossGate& cg = b.cross_gate(p);
    int32_t d = lb.union_idx(cg.left_state);
    assert(d != kNoGate);
    if (left_pos_[d] < 0) {
      left_pos_[d] = static_cast<int32_t>(gamma_left_.size());
      gamma_left_.push_back(static_cast<uint32_t>(d));
    }
  }
  if (left_cursor_) local_steps_ += left_cursor_->steps();
  left_cursor_ = std::make_unique<AssignmentCursor>(circuit_, index_, mode_,
                                                    lchild, gamma_left_);
  stage_ = Stage::kPullLeft;
}

bool AssignmentCursor::SetupRight() {
  const Box b = circuit_->box(cur_.box);
  const Term& term = circuit_->term();
  TermNodeId lchild = term.node(cur_.box).left;
  TermNodeId rchild = term.node(cur_.box).right;
  const Box lb = circuit_->box(lchild);
  const Box rb = circuit_->box(rchild);

  // G×': crosses whose left input captures the current left assignment.
  crosses_left_.clear();
  for (uint32_t i = 0; i < crosses_.size(); ++i) {
    const CrossGate& cg = b.cross_gate(crosses_[i]);
    int32_t pos = left_pos_[lb.union_idx(cg.left_state)];
    if (BitAt(left_out_.provenance, static_cast<size_t>(pos))) {
      crosses_left_.push_back(i);
    }
  }
  assert(!crosses_left_.empty());

  gamma_right_.clear();
  right_pos_.assign(rb.num_unions(), -1);
  for (uint32_t i : crosses_left_) {
    const CrossGate& cg = b.cross_gate(crosses_[i]);
    int32_t d = rb.union_idx(cg.right_state);
    assert(d != kNoGate);
    if (right_pos_[d] < 0) {
      right_pos_[d] = static_cast<int32_t>(gamma_right_.size());
      gamma_right_.push_back(static_cast<uint32_t>(d));
    }
  }
  if (right_cursor_) local_steps_ += right_cursor_->steps();
  right_cursor_ = std::make_unique<AssignmentCursor>(circuit_, index_, mode_,
                                                     rchild, gamma_right_);
  return true;
}

bool AssignmentCursor::Next(EnumOutput* out) {
  const Term& term = circuit_->term();
  while (true) {
    switch (stage_) {
      case Stage::kDone:
        return false;

      case Stage::kNextBox: {
        if (!box_enum_->Next(&cur_)) {
          stage_ = Stage::kDone;
          return false;
        }
        PrepareBox();
        stage_ = Stage::kEmitVars;
        break;
      }

      case Stage::kEmitVars: {
        if (var_pos_ < var_agenda_.size()) {
          const auto& [vi, prov] = var_agenda_[var_pos_];
          ++var_pos_;
          const Box b = circuit_->box(cur_.box);
          out->contributions.clear();
          out->contributions.emplace_back(b.var_mask(vi),
                                          term.node(cur_.box).tree_node);
          out->provenance = prov;
          ++local_steps_;
          return true;
        }
        SetupLeft();
        break;
      }

      case Stage::kPullLeft: {
        if (!left_cursor_->Next(&left_out_)) {
          stage_ = Stage::kNextBox;
          break;
        }
        SetupRight();
        stage_ = Stage::kPullRight;
        break;
      }

      case Stage::kPullRight: {
        EnumOutput rout;
        if (!right_cursor_->Next(&rout)) {
          stage_ = Stage::kPullLeft;
          break;
        }
        const Box b = circuit_->box(cur_.box);
        const Box rb =
            circuit_->box(term.node(cur_.box).right);
        out->contributions = left_out_.contributions;
        out->contributions.insert(out->contributions.end(),
                                  rout.contributions.begin(),
                                  rout.contributions.end());
        out->provenance.assign(prov_words_, 0);
        bool any = false;
        for (uint32_t i : crosses_left_) {
          const CrossGate& cg = b.cross_gate(crosses_[i]);
          int32_t pos = right_pos_[rb.union_idx(cg.right_state)];
          if (BitAt(rout.provenance, static_cast<size_t>(pos))) {
            OrInto(out->provenance, cross_prov_[i].data(),
                   cross_prov_[i].size());
            any = true;
          }
        }
        assert(any);
        (void)any;
        ++local_steps_;
        return true;
      }
    }
  }
}

size_t AssignmentCursor::steps() const {
  size_t s = local_steps_ + box_enum_->steps();
  if (left_cursor_) s += left_cursor_->steps();
  if (right_cursor_) s += right_cursor_->steps();
  return s;
}

std::vector<Assignment> CollectAll(AssignmentCursor& cursor) {
  std::vector<Assignment> out;
  EnumOutput o;
  while (cursor.Next(&o)) out.push_back(o.ToAssignment());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace treenum
