#include "automata/homogenize.h"

#include <cassert>

namespace treenum {

StateKinds ComputeStateKinds(const BinaryTva& a) {
  StateKinds kinds;
  kinds.zero_state.assign(a.num_states(), false);
  kinds.one_state.assign(a.num_states(), false);

  for (const LeafInit& li : a.leaf_inits()) {
    if (li.vars == 0) {
      kinds.zero_state[li.state] = true;
    } else {
      kinds.one_state[li.state] = true;
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : a.transitions()) {
      bool l0 = kinds.zero_state[t.left], l1 = kinds.one_state[t.left];
      bool r0 = kinds.zero_state[t.right], r1 = kinds.one_state[t.right];
      // 0-state: both children reached under empty valuations.
      if (l0 && r0 && !kinds.zero_state[t.state]) {
        kinds.zero_state[t.state] = true;
        changed = true;
      }
      // 1-state: at least one child is a 1-state, the other reachable at all.
      bool l_any = l0 || l1;
      bool r_any = r0 || r1;
      if (((l1 && r_any) || (r1 && l_any)) && !kinds.one_state[t.state]) {
        kinds.one_state[t.state] = true;
        changed = true;
      }
    }
  }
  return kinds;
}

bool IsHomogenized(const BinaryTva& a) {
  StateKinds k = ComputeStateKinds(a);
  for (State q = 0; q < a.num_states(); ++q) {
    if (!(k.zero_state[q] ^ k.one_state[q])) return false;
  }
  return true;
}

BinaryTva TrimBinaryTva(const BinaryTva& a, std::vector<State>* old_to_new) {
  std::vector<bool> reachable(a.num_states(), false);
  for (const LeafInit& li : a.leaf_inits()) reachable[li.state] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : a.transitions()) {
      if (reachable[t.left] && reachable[t.right] && !reachable[t.state]) {
        reachable[t.state] = true;
        changed = true;
      }
    }
  }

  std::vector<State> map(a.num_states(), kNoState);
  State next = 0;
  for (State q = 0; q < a.num_states(); ++q) {
    if (reachable[q]) map[q] = next++;
  }

  BinaryTva out(next, a.num_labels(), a.num_vars());
  for (const LeafInit& li : a.leaf_inits()) {
    out.AddLeafInit(li.label, li.vars, map[li.state]);
  }
  for (const Transition& t : a.transitions()) {
    if (reachable[t.left] && reachable[t.right]) {
      out.AddTransition(t.label, map[t.left], map[t.right], map[t.state]);
    }
  }
  for (State q : a.final_states()) {
    if (reachable[q]) out.AddFinal(map[q]);
  }
  if (old_to_new) *old_to_new = std::move(map);
  return out;
}

HomogenizedTva HomogenizeBinaryTva(const BinaryTva& a) {
  // Product states: (q, bit) -> 2*q + bit.
  size_t n = a.num_states();
  BinaryTva prod(2 * n, a.num_labels(), a.num_vars());
  for (const LeafInit& li : a.leaf_inits()) {
    uint32_t bit = li.vars == 0 ? 0 : 1;
    prod.AddLeafInit(li.label, li.vars, 2 * li.state + bit);
  }
  for (const Transition& t : a.transitions()) {
    for (uint32_t b1 = 0; b1 <= 1; ++b1) {
      for (uint32_t b2 = 0; b2 <= 1; ++b2) {
        prod.AddTransition(t.label, 2 * t.left + b1, 2 * t.right + b2,
                           2 * t.state + (b1 | b2));
      }
    }
  }
  for (State q : a.final_states()) {
    prod.AddFinal(2 * q);
    prod.AddFinal(2 * q + 1);
  }

  std::vector<State> map;
  BinaryTva trimmed = TrimBinaryTva(prod, &map);

  HomogenizedTva out{std::move(trimmed), {}};
  out.kind.assign(out.tva.num_states(), 0);
  for (State old = 0; old < 2 * n; ++old) {
    if (map[old] != kNoState) out.kind[map[old]] = old & 1;
  }
  assert(IsHomogenized(out.tva));
  return out;
}

}  // namespace treenum
