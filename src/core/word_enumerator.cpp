#include "core/word_enumerator.h"

#include <algorithm>

#include "automata/homogenize.h"
#include "automata/translate.h"

namespace treenum {

namespace {

HomogenizedTva PrepareWva(const Wva& query) {
  TranslatedTva translated = TranslateWva(query);
  return HomogenizeBinaryTva(translated.tva);
}

}  // namespace

WordEnumerator::WordEnumerator(const Word& w, const Wva& query,
                               BoxEnumMode mode)
    : enc_(w, query.num_labels()),
      pipeline_(&enc_.term(), PrepareWva(query), mode) {}

std::vector<Assignment> WordEnumerator::EnumerateAll() const {
  return pipeline_.EnumerateAll();
}

std::unique_ptr<Engine::Cursor> WordEnumerator::MakeCursor() const {
  return pipeline_.MakeEngineCursor();
}

std::vector<Assignment> WordEnumerator::EnumerateAllByPosition() const {
  std::vector<Assignment> out;
  for (const Assignment& a : EnumerateAll()) {
    Assignment b;
    for (const Singleton& s : a.singletons()) {
      b.Add(Singleton{s.var, static_cast<NodeId>(enc_.PositionOf(s.node))});
    }
    b.Normalize();
    out.push_back(std::move(b));
  }
  std::sort(out.begin(), out.end());
  return out;
}

UpdateStats WordEnumerator::Replace(size_t pos, Label l) {
  return pipeline_.Apply(enc_.Replace(pos, l));
}

UpdateStats WordEnumerator::Insert(size_t pos, Label l) {
  return pipeline_.Apply(enc_.Insert(pos, l));
}

UpdateStats WordEnumerator::Erase(size_t pos) {
  return pipeline_.Apply(enc_.Erase(pos));
}

UpdateStats WordEnumerator::MoveRange(size_t begin, size_t end, size_t dst) {
  return pipeline_.Apply(enc_.MoveRange(begin, end, dst));
}

UpdateStats WordEnumerator::InsertAt(size_t pos, Label l, NodeId* new_node) {
  UpdateStats stats = pipeline_.Apply(enc_.Insert(pos, l));
  if (new_node) *new_node = enc_.PositionId(pos);
  return stats;
}

UpdateStats WordEnumerator::Relabel(NodeId n, Label l) {
  return Replace(enc_.PositionOf(n), l);
}

UpdateStats WordEnumerator::InsertFirstChild(NodeId n, Label l,
                                             NodeId* new_node) {
  return InsertAt(enc_.PositionOf(n), l, new_node);
}

UpdateStats WordEnumerator::InsertRightSibling(NodeId n, Label l,
                                               NodeId* new_node) {
  return InsertAt(enc_.PositionOf(n) + 1, l, new_node);
}

UpdateStats WordEnumerator::DeleteLeaf(NodeId n) {
  return Erase(enc_.PositionOf(n));
}

}  // namespace treenum
