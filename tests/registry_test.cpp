// Tests for the deduplicating query registry (core/document.h) and the
// canonical-form / fingerprint API it is built on (automata/homogenize.h):
// duplicate and state-renumbered queries share one refcounted pipeline,
// unregistering keeps survivors correct, warm refcount-zero pipelines are
// re-admitted without a rebuild, and the pipeline cap evicts cost-aware
// (cheapest-to-rebuild / stalest first, degenerating to LRU on equal
// costs) with eviction + re-admission round-tripping against a
// StaticEngine oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "automata/homogenize.h"
#include "automata/query_library.h"
#include "automata/translate.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "test_util.h"

namespace treenum {
namespace {

using QueryHandle = DynamicDocument::QueryHandle;

// QuerySelectLabel(3, a) with the two states swapped and the relations
// declared in a different order: textually different, automaton-identical.
UnrankedTva SelectLabelPermuted(Label a) {
  // Original states: 0 = no pick below, 1 = exactly one pick below.
  // Here: 1 = no pick below, 0 = exactly one pick below.
  UnrankedTva q(2, 3, 1);
  q.AddFinal(0);
  q.AddTransition(0, 1, 0);
  q.AddTransition(1, 0, 0);
  q.AddTransition(1, 1, 1);
  q.AddInit(a, 1, 0);
  for (Label l = 3; l-- > 0;) q.AddInit(l, 0, 1);
  return q;
}

HomogenizedTva Prepare(const UnrankedTva& q) {
  return HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
}

// ---- Canonical form and fingerprints ----

TEST(CanonicalForm, InvariantUnderRenumberingAndDeclarationOrder) {
  for (Label a = 0; a < 3; ++a) {
    HomogenizedTva h1 = Prepare(QuerySelectLabel(3, a));
    HomogenizedTva h2 = Prepare(SelectLabelPermuted(a));
    EXPECT_FALSE(HomogenizedTvaEqual(h1, h2))
        << "permuted variants should differ before canonicalization";
    CanonicalizeHomogenizedTva(&h1);
    CanonicalizeHomogenizedTva(&h2);
    EXPECT_TRUE(HomogenizedTvaEqual(h1, h2)) << "label " << a;
    EXPECT_EQ(FingerprintHomogenizedTva(h1), FingerprintHomogenizedTva(h2))
        << "label " << a;
  }
}

// A directed 6-cycle of states: vertex-transitive, so every state has the
// same refinement color at the fixpoint and signature refinement alone
// cannot order them. The individualization-refinement tie-break must still
// canonicalize every renumbered copy to the same automaton.
HomogenizedTva CyclicTva(const std::vector<State>& perm) {
  size_t n = perm.size();
  BinaryTva tva(n, /*num_labels=*/1, /*num_vars=*/1);
  for (size_t i = 0; i < n; ++i) {
    tva.AddLeafInit(0, 0, perm[i]);
    tva.AddTransition(0, perm[i], perm[i], perm[(i + 1) % n]);
  }
  HomogenizedTva out{std::move(tva), {}};
  out.kind.assign(n, 0);
  return out;
}

TEST(CanonicalForm, BreaksTiesOfVertexTransitiveAutomaton) {
  HomogenizedTva h1 = CyclicTva({0, 1, 2, 3, 4, 5});
  CanonicalizeHomogenizedTva(&h1);
  // Idempotent on the symmetric automaton too.
  HomogenizedTva again = h1;
  CanonicalizeHomogenizedTva(&again);
  EXPECT_TRUE(HomogenizedTvaEqual(h1, again));
  const std::vector<std::vector<State>> perms = {
      {1, 2, 3, 4, 5, 0},  // rotation (an automorphism of the cycle)
      {2, 4, 0, 5, 1, 3},  // arbitrary renumbering
      {5, 4, 3, 2, 1, 0},  // reversal
  };
  for (const std::vector<State>& perm : perms) {
    HomogenizedTva h2 = CyclicTva(perm);
    CanonicalizeHomogenizedTva(&h2);
    EXPECT_TRUE(HomogenizedTvaEqual(h1, h2));
    EXPECT_EQ(FingerprintHomogenizedTva(h1), FingerprintHomogenizedTva(h2));
  }
}

TEST(CanonicalForm, IsIdempotent) {
  HomogenizedTva h = Prepare(QueryMarkedAncestor(3, 1, 2));
  CanonicalizeHomogenizedTva(&h);
  HomogenizedTva again = h;
  CanonicalizeHomogenizedTva(&again);
  EXPECT_TRUE(HomogenizedTvaEqual(h, again));
  EXPECT_EQ(FingerprintHomogenizedTva(h), FingerprintHomogenizedTva(again));
}

TEST(CanonicalForm, DistinguishesDifferentQueries) {
  std::vector<HomogenizedTva> canon;
  std::vector<UnrankedTva> queries;
  queries.push_back(QuerySelectLabel(3, 1));
  queries.push_back(QuerySelectLabel(3, 2));
  queries.push_back(QueryMarkedAncestor(3, 1, 2));
  queries.push_back(QueryMarkedAncestor(3, 2, 1));
  queries.push_back(QueryChildOfLabel(3, 0, 2));
  for (const UnrankedTva& q : queries) {
    HomogenizedTva h = Prepare(q);
    CanonicalizeHomogenizedTva(&h);
    canon.push_back(std::move(h));
  }
  for (size_t i = 0; i < canon.size(); ++i) {
    for (size_t j = i + 1; j < canon.size(); ++j) {
      EXPECT_FALSE(HomogenizedTvaEqual(canon[i], canon[j]))
          << "queries " << i << " and " << j;
    }
  }
}

TEST(CanonicalForm, SourceFingerprintsIgnoreDeclarationOrder) {
  // The pre-translation fingerprints are declaration-order-insensitive
  // (commutative folds) but state-numbering-sensitive.
  UnrankedTva a = QuerySelectLabel(3, 1);
  UnrankedTva b(2, 3, 1);  // same query, relations declared backwards
  b.AddFinal(1);
  b.AddTransition(1, 0, 1);
  b.AddTransition(0, 1, 1);
  b.AddTransition(0, 0, 0);
  b.AddInit(1, 1, 1);
  for (Label l = 3; l-- > 0;) b.AddInit(l, 0, 0);
  EXPECT_EQ(FingerprintUnrankedTva(a), FingerprintUnrankedTva(b));
  EXPECT_NE(FingerprintUnrankedTva(a),
            FingerprintUnrankedTva(QuerySelectLabel(3, 2)));

  Wva w1(2, 2, 1), w2(2, 2, 1);
  w1.AddInitial(0);
  w1.AddTransition(0, 0, 0, 0);
  w1.AddTransition(0, 1, 1, 1);
  w1.AddFinal(1);
  w2.AddFinal(1);
  w2.AddTransition(0, 1, 1, 1);
  w2.AddTransition(0, 0, 0, 0);
  w2.AddInitial(0);
  EXPECT_EQ(FingerprintWva(w1), FingerprintWva(w2));
}

// ---- Registry: dedupe ----

TEST(QueryRegistry, DuplicateRegistrationsShareOnePipeline) {
  Rng rng(31);
  UnrankedTree tree = RandomTree(40, 3, rng);
  DynamicDocument doc(tree, 3);

  QueryHandle h1 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  QueryHandle h2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  QueryHandle h3 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  EXPECT_NE(h1, h2);
  EXPECT_NE(h2, h3);
  EXPECT_EQ(doc.num_queries(), 3u);
  EXPECT_EQ(doc.num_pipelines(), 1u);
  EXPECT_EQ(&doc.pipeline(h1), &doc.pipeline(h2));
  EXPECT_EQ(&doc.pipeline(h1), &doc.pipeline(h3));

  DocumentStats stats = doc.stats();
  EXPECT_EQ(stats.live_queries, 3u);
  EXPECT_EQ(stats.live_pipelines, 1u);
  EXPECT_EQ(stats.active_pipelines, 1u);
  EXPECT_EQ(stats.shared_hits, 2u);
  ASSERT_EQ(stats.pipelines.size(), 1u);
  EXPECT_EQ(stats.pipelines[0].queries, 3u);
}

TEST(QueryRegistry, RenumberedQueriesDedupeToOnePipeline) {
  Rng rng(37);
  UnrankedTree tree = RandomTree(30, 3, rng);
  DynamicDocument doc(tree, 3);
  QueryHandle h1 = doc.Register(QuerySelectLabel(3, 1));
  QueryHandle h2 = doc.Register(SelectLabelPermuted(1));
  EXPECT_EQ(&doc.pipeline(h1), &doc.pipeline(h2));
  EXPECT_EQ(doc.num_pipelines(), 1u);

  // ... and the shared pipeline answers correctly for both.
  StaticEngine oracle(tree, QuerySelectLabel(3, 1));
  EXPECT_EQ(doc.pipeline(h2).EnumerateAll(), oracle.EnumerateAll());
}

TEST(QueryRegistry, DistinctQueriesAndModesGetDistinctPipelines) {
  Rng rng(41);
  UnrankedTree tree = RandomTree(30, 3, rng);
  DynamicDocument doc(tree, 3);
  QueryHandle h1 = doc.Register(QuerySelectLabel(3, 1));
  QueryHandle h2 = doc.Register(QuerySelectLabel(3, 2));
  // Same automaton, different box-enum mode: must not share.
  QueryHandle h3 = doc.Register(QuerySelectLabel(3, 1), BoxEnumMode::kNaive);
  EXPECT_NE(&doc.pipeline(h1), &doc.pipeline(h2));
  EXPECT_NE(&doc.pipeline(h1), &doc.pipeline(h3));
  EXPECT_EQ(doc.num_pipelines(), 3u);
  EXPECT_EQ(doc.stats().shared_hits, 0u);
}

TEST(QueryRegistry, WordDocumentDedupesSpanners) {
  Word w;
  for (int i = 0; i < 12; ++i) w.push_back(static_cast<Label>(i % 2));
  auto select_b = [] {
    Wva a(2, 2, 1);
    a.AddInitial(0);
    for (Label l = 0; l < 2; ++l) a.AddTransition(0, l, 0, 0);
    a.AddTransition(0, 1, 1, 1);
    for (Label l = 0; l < 2; ++l) a.AddTransition(1, l, 0, 1);
    a.AddFinal(1);
    return a;
  };
  DynamicDocument doc(w, 2);
  QueryHandle h1 = doc.Register(select_b());
  QueryHandle h2 = doc.Register(select_b());
  EXPECT_EQ(&doc.pipeline(h1), &doc.pipeline(h2));
  EXPECT_EQ(doc.num_pipelines(), 1u);
}

// ---- Registry: unregister / refcounting ----

TEST(QueryRegistry, UnregisterToZeroKeepsSurvivorsCorrect) {
  Rng rng(43);
  UnrankedTree tree = RandomTree(50, 3, rng);
  DynamicDocument doc(tree, 3);

  QueryHandle dup1 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  QueryHandle dup2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  QueryHandle other = doc.Register(QuerySelectLabel(3, 1));
  StaticEngine oracle_ma(tree, QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle_sel(tree, QuerySelectLabel(3, 1));

  // Dropping one duplicate keeps the shared pipeline alive and correct.
  doc.Unregister(dup1);
  EXPECT_FALSE(doc.IsRegistered(dup1));
  EXPECT_TRUE(doc.IsRegistered(dup2));
  EXPECT_EQ(doc.num_queries(), 2u);
  EXPECT_EQ(doc.num_pipelines(), 2u);

  ScriptedEditor script(tree, 4711, 3);
  for (int i = 0; i < 60; ++i) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    oracle_ma.ApplyEdit(e);
    oracle_sel.ApplyEdit(e);
  }
  EXPECT_EQ(doc.pipeline(dup2).EnumerateAll(), oracle_ma.EnumerateAll());
  EXPECT_EQ(doc.pipeline(other).EnumerateAll(), oracle_sel.EnumerateAll());
}

TEST(QueryRegistry, WarmReadmissionReusesThePipeline) {
  Rng rng(47);
  UnrankedTree tree = RandomTree(50, 3, rng);
  DynamicDocument doc(tree, 3);

  QueryHandle h1 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  const EnumerationPipeline* pipe = &doc.pipeline(h1);
  StaticEngine oracle(tree, QueryMarkedAncestor(3, 1, 2));

  doc.Unregister(h1);
  EXPECT_EQ(doc.num_queries(), 0u);
  // Below the (default) cap: the refcount-zero pipeline stays warm and
  // keeps refreshing.
  EXPECT_EQ(doc.num_pipelines(), 1u);
  EXPECT_EQ(doc.stats().warm_pipelines, 1u);

  ScriptedEditor script(tree, 271, 3);
  for (int i = 0; i < 40; ++i) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    oracle.ApplyEdit(e);
  }

  QueryHandle h2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(&doc.pipeline(h2), pipe) << "re-admission must reuse the object";
  DocumentStats stats = doc.stats();
  EXPECT_EQ(stats.readmissions, 1u);
  EXPECT_EQ(stats.rebuilds, 0u);
  EXPECT_EQ(doc.pipeline(h2).EnumerateAll(), oracle.EnumerateAll());
}

// ---- Registry: admission / eviction ----

TEST(QueryRegistry, EvictionAndReadmissionRoundTripAgainstOracle) {
  Rng rng(53);
  UnrankedTree tree = RandomTree(50, 3, rng);
  DynamicDocument doc(tree, 3);
  doc.set_pipeline_cap(1);

  QueryHandle keep = doc.Register(QueryMarkedAncestor(3, 1, 2));
  QueryHandle drop = doc.Register(QuerySelectLabel(3, 1));
  // Both active: the cap never evicts referenced pipelines.
  EXPECT_EQ(doc.num_pipelines(), 2u);
  EXPECT_EQ(doc.stats().evictions, 0u);

  StaticEngine oracle_keep(tree, QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle_drop(tree, QuerySelectLabel(3, 1));

  // Releasing the second query pushes it to refcount zero; the cap evicts
  // it immediately (pipeline destroyed, canonical automaton retained).
  doc.Unregister(drop);
  EXPECT_EQ(doc.num_pipelines(), 1u);
  DocumentStats stats = doc.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.evicted_entries, 1u);

  ScriptedEditor script(tree, 6007, 3);
  for (int i = 0; i < 60; ++i) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    oracle_keep.ApplyEdit(e);
    oracle_drop.ApplyEdit(e);
  }
  EXPECT_EQ(doc.pipeline(keep).EnumerateAll(), oracle_keep.EnumerateAll());

  // Re-admission rebuilds the evicted pipeline over the *current* tree.
  QueryHandle again = doc.Register(QuerySelectLabel(3, 1));
  stats = doc.stats();
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.readmissions, 0u);
  EXPECT_EQ(doc.pipeline(again).EnumerateAll(), oracle_drop.EnumerateAll());

  // ... and stays correct under further edits.
  for (int i = 0; i < 30; ++i) {
    Edit e = script.NextEdit();
    doc.ApplyEdit(e);
    oracle_drop.ApplyEdit(e);
  }
  EXPECT_EQ(doc.pipeline(again).EnumerateAll(), oracle_drop.EnumerateAll());
}

// The cost-aware policy keeps the pipeline that is expensive to lose: A
// accumulated refresh cost over many edits, B was registered afterwards
// and never refreshed a box. A is released *before* B, so pure LRU would
// evict A — the policy must evict cheap-stale B and keep expensive A warm.
TEST(QueryRegistry, CapEvictsCheapStaleBeforeExpensiveHot) {
  Rng rng(73);
  UnrankedTree tree = RandomTree(40, 3, rng);
  DynamicDocument doc(tree, 3);

  QueryHandle ha = doc.Register(QueryMarkedAncestor(3, 1, 2));
  ScriptedEditor script(tree, 911, 3);
  for (int i = 0; i < 60; ++i) doc.ApplyEdit(script.NextEdit());
  ASSERT_GT(doc.stats().pipelines[0].boxes_refreshed, 0u);

  QueryHandle hb = doc.Register(QuerySelectLabel(3, 1));
  doc.Unregister(ha);  // older LRU stamp than B
  doc.Unregister(hb);
  EXPECT_EQ(doc.num_pipelines(), 2u);

  doc.set_pipeline_cap(1);
  EXPECT_EQ(doc.num_pipelines(), 1u);
  EXPECT_EQ(doc.stats().evictions, 1u);

  // A survived (warm readmission); B was the victim (rebuild).
  QueryHandle ha2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  DocumentStats stats = doc.stats();
  EXPECT_EQ(stats.readmissions, 1u) << "expensive-hot A must stay warm";
  EXPECT_EQ(stats.rebuilds, 0u);
  QueryHandle hb2 = doc.Register(QuerySelectLabel(3, 1));
  EXPECT_EQ(doc.stats().rebuilds, 1u) << "cheap-stale B must be evicted";

  // Both answer correctly over the edited tree.
  UnrankedTree current = doc.tree();
  StaticEngine oracle_a(current, QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle_b(current, QuerySelectLabel(3, 1));
  EXPECT_EQ(doc.pipeline(ha2).EnumerateAll(), oracle_a.EnumerateAll());
  EXPECT_EQ(doc.pipeline(hb2).EnumerateAll(), oracle_b.EnumerateAll());
}

TEST(QueryRegistry, CapEvictsWarmPipelinesInLruOrder) {
  Rng rng(59);
  UnrankedTree tree = RandomTree(40, 3, rng);
  DynamicDocument doc(tree, 3);

  QueryHandle ha = doc.Register(QuerySelectLabel(3, 0));
  QueryHandle hb = doc.Register(QuerySelectLabel(3, 1));
  QueryHandle hc = doc.Register(QuerySelectLabel(3, 2));
  doc.Unregister(ha);  // A released first -> least recently used
  doc.Unregister(hb);
  EXPECT_EQ(doc.num_pipelines(), 3u);  // below the default cap: all warm

  // Cap 2 evicts exactly one warm pipeline: A (LRU), not B.
  doc.set_pipeline_cap(2);
  EXPECT_EQ(doc.num_pipelines(), 2u);
  EXPECT_EQ(doc.stats().evictions, 1u);
  QueryHandle hb2 = doc.Register(QuerySelectLabel(3, 1));
  EXPECT_EQ(doc.stats().readmissions, 1u) << "B must still be warm";
  QueryHandle ha2 = doc.Register(QuerySelectLabel(3, 0));
  EXPECT_EQ(doc.stats().rebuilds, 1u) << "A must have been evicted";
  EXPECT_TRUE(doc.IsRegistered(hc));
  EXPECT_TRUE(doc.IsRegistered(hb2));
  EXPECT_TRUE(doc.IsRegistered(ha2));
}

TEST(QueryRegistry, HandlesStayStableAcrossUnregister) {
  Rng rng(61);
  UnrankedTree tree = RandomTree(30, 3, rng);
  DynamicDocument doc(tree, 3);
  QueryHandle h1 = doc.Register(QuerySelectLabel(3, 0));
  QueryHandle h2 = doc.Register(QuerySelectLabel(3, 1));
  QueryHandle h3 = doc.Register(QuerySelectLabel(3, 2));
  doc.Unregister(h2);
  EXPECT_TRUE(doc.IsRegistered(h1));
  EXPECT_FALSE(doc.IsRegistered(h2));
  EXPECT_TRUE(doc.IsRegistered(h3));
  // New handles are never recycled ids of live ones.
  QueryHandle h4 = doc.Register(QuerySelectLabel(3, 1));
  EXPECT_NE(h4, h1);
  EXPECT_NE(h4, h3);
  EXPECT_TRUE(doc.IsRegistered(h4));
  StaticEngine oracle(tree, QuerySelectLabel(3, 2));
  EXPECT_EQ(doc.pipeline(h3).EnumerateAll(), oracle.EnumerateAll());
}

// Long-lived documents with query churn (register, serve, unregister,
// repeat) must not accumulate registry metadata: handle slots recycle and
// reclaimed evicted entries keep the entry table bounded by the caps, not
// by the number of registrations or distinct queries ever seen.
TEST(QueryRegistry, ChurnKeepsRegistryMetadataBounded) {
  Rng rng(71);
  UnrankedTree tree = RandomTree(30, 3, rng);
  DynamicDocument doc(tree, 3);
  doc.set_pipeline_cap(2);
  doc.set_evicted_retention_cap(3);

  // 12 distinct (query, mode) combinations cycled 20 times, one live
  // registration at a time: 240 registrations total.
  for (int round = 0; round < 20; ++round) {
    for (Label a = 0; a < 3; ++a) {
      for (Label b = 0; b < 3; ++b) {
        if (a == b) continue;
        BoxEnumMode mode = (a + b) % 2 == 0 ? BoxEnumMode::kIndexed
                                            : BoxEnumMode::kNaive;
        DynamicDocument::QueryHandle h =
            doc.Register(QueryMarkedAncestor(3, a, b), mode);
        EXPECT_TRUE(doc.IsRegistered(h));
        doc.Unregister(h);
        EXPECT_FALSE(doc.IsRegistered(h));
      }
    }
    DocumentStats s = doc.stats();
    EXPECT_LE(s.handle_slots, 1u) << "one live handle -> one recycled slot";
    EXPECT_LE(s.registry_entries, 2u + 3u)
        << "entries bounded by pipeline cap + retention cap";
    EXPECT_EQ(s.pipelines.size(), s.registry_entries);
  }
  EXPECT_GT(doc.stats().reclaimed_entries, 0u);

  // A reclaimed query re-registers from scratch and still answers
  // correctly against the oracle.
  DynamicDocument::QueryHandle h = doc.Register(QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle(tree, QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(doc.pipeline(h).EnumerateAll(), oracle.EnumerateAll());
}

// The same 240-registration churn pattern routed through an explicitly
// shared QueryCache across two documents: the per-document registry
// metadata stays bounded exactly as above, and the process-wide cache's
// entry and source tables stay bounded by pins + its retention cap — not
// by the number of registrations ever made.
TEST(QueryRegistry, ChurnThroughSharedCacheStaysBounded) {
  Rng rng(73);
  UnrankedTree tree = RandomTree(30, 3, rng);
  QueryCache cache;
  cache.set_retention_cap(1);
  DynamicDocument doc1(tree, 3, &cache);
  DynamicDocument doc2(tree, 3, &cache);
  for (DynamicDocument* doc : {&doc1, &doc2}) {
    doc->set_pipeline_cap(2);
    doc->set_evicted_retention_cap(3);
  }

  // 6 distinct queries cycled 20 times on both documents: 240
  // registrations, one live handle per document at a time.
  for (int round = 0; round < 20; ++round) {
    for (Label a = 0; a < 3; ++a) {
      for (Label b = 0; b < 3; ++b) {
        if (a == b) continue;
        DynamicDocument::QueryHandle h1 =
            doc1.Register(QueryMarkedAncestor(3, a, b));
        DynamicDocument::QueryHandle h2 =
            doc2.Register(QueryMarkedAncestor(3, a, b));
        doc1.Unregister(h1);
        doc2.Unregister(h2);
      }
    }
    for (DynamicDocument* doc : {&doc1, &doc2}) {
      DocumentStats s = doc->stats();
      EXPECT_LE(s.handle_slots, 1u);
      EXPECT_LE(s.registry_entries, 2u + 3u)
          << "entries bounded by pipeline cap + retention cap";
    }
    QueryCache::Stats cs = cache.stats();
    // Each document's registry pins at most pipeline-cap + retention-cap
    // plans; beyond those the cache keeps at most its own retention cap.
    EXPECT_LE(cs.entries, 2 * (2u + 3u) + 1u);
    EXPECT_LE(cs.source_entries, cs.entries)
        << "sources are erased with their entry";
  }

  // The second document's registrations always hit the plan the first just
  // compiled (or retained): at least one cache hit per pair per round.
  QueryCache::Stats cs = cache.stats();
  EXPECT_GE(cs.source_hits, 120u);
  EXPECT_LT(cs.translations, 240u);

  // Releasing every document-side pin shrinks the cache to its own cap.
  for (DynamicDocument* doc : {&doc1, &doc2}) {
    doc->set_pipeline_cap(0);
    doc->set_evicted_retention_cap(0);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.stats().entries, 1u);

  // A fully evicted query recompiles through the cache and still answers
  // correctly.
  DynamicDocument::QueryHandle h = doc2.Register(QueryMarkedAncestor(3, 2, 0));
  StaticEngine oracle(tree, QueryMarkedAncestor(3, 2, 0));
  EXPECT_EQ(doc2.pipeline(h).EnumerateAll(), oracle.EnumerateAll());
}

// The batched-commit path must refresh warm pipelines too, so a
// re-admitted query is correct after commits that happened while it had
// refcount zero.
TEST(QueryRegistry, WarmPipelinesFollowBatchedCommits) {
  Rng rng(67);
  UnrankedTree tree = RandomTree(50, 3, rng);
  DynamicDocument doc(tree, 3);
  QueryHandle h = doc.Register(QueryMarkedAncestor(3, 1, 2));
  StaticEngine oracle(tree, QueryMarkedAncestor(3, 1, 2));
  doc.Unregister(h);

  ScriptedEditor script(tree, 6389, 3);
  for (int round = 0; round < 6; ++round) {
    std::vector<Edit> edits;
    for (int i = 0; i < 16; ++i) edits.push_back(script.NextEdit());
    doc.ApplyEdits(edits);
    oracle.ApplyEdits(edits);
  }
  QueryHandle h2 = doc.Register(QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(doc.stats().readmissions, 1u);
  EXPECT_EQ(doc.pipeline(h2).EnumerateAll(), oracle.EnumerateAll());
}

}  // namespace
}  // namespace treenum
