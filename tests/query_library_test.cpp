#include "automata/query_library.h"

#include <gtest/gtest.h>

#include "baseline/naive_engine.h"
#include "core/tree_enumerator.h"
#include "util/random.h"

namespace treenum {
namespace {

// Independent per-query reference implementations computed directly on the
// tree, used to validate the automata in the library.

std::vector<Assignment> RefSelectLabel(const UnrankedTree& t, Label a) {
  std::vector<Assignment> out;
  for (NodeId n : t.PreorderNodes()) {
    if (t.label(n) == a) out.push_back(Assignment({{0, n}}));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Assignment> RefMarkedAncestor(const UnrankedTree& t, Label marked,
                                          Label special) {
  std::vector<Assignment> out;
  for (NodeId n : t.PreorderNodes()) {
    if (t.label(n) != special) continue;
    bool has = false;
    for (NodeId p = t.parent(n); p != kNoNode; p = t.parent(p)) {
      if (t.label(p) == marked) has = true;
    }
    if (has) out.push_back(Assignment({{0, n}}));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Assignment> RefDescendantPairs(const UnrankedTree& t, Label a,
                                           Label b) {
  std::vector<Assignment> out;
  for (NodeId x : t.PreorderNodes()) {
    if (t.label(x) != a) continue;
    for (NodeId y : t.PreorderNodes()) {
      if (t.label(y) != b || y == x) continue;
      bool desc = false;
      for (NodeId p = t.parent(y); p != kNoNode; p = t.parent(p)) {
        if (p == x) desc = true;
      }
      if (desc) out.push_back(Assignment({{0, x}, {1, y}}));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Assignment> RefAncestorAtDistance(const UnrankedTree& t, Label a,
                                              size_t k) {
  std::vector<Assignment> out;
  for (NodeId n : t.PreorderNodes()) {
    NodeId p = n;
    for (size_t i = 0; i < k && p != kNoNode; ++i) p = t.parent(p);
    if (p != kNoNode && t.label(p) == a) {
      out.push_back(Assignment({{0, n}}));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QueryLibrary, SelectLabelAgainstReference) {
  Rng rng(211);
  for (int trial = 0; trial < 10; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(80), 3, rng);
    TreeEnumerator e(t, QuerySelectLabel(3, 2));
    EXPECT_EQ(e.EnumerateAll(), RefSelectLabel(t, 2));
  }
}

TEST(QueryLibrary, SelectAllCountsNodes) {
  Rng rng(223);
  UnrankedTree t = RandomTree(37, 2, rng);
  TreeEnumerator e(t, QuerySelectAll(2));
  EXPECT_EQ(e.EnumerateAll().size(), 37u);
}

TEST(QueryLibrary, MarkedAncestorAgainstReference) {
  Rng rng(227);
  for (int trial = 0; trial < 10; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(60), 3, rng);
    TreeEnumerator e(t, QueryMarkedAncestor(3, 1, 2));
    EXPECT_EQ(e.EnumerateAll(), RefMarkedAncestor(t, 1, 2));
  }
}

TEST(QueryLibrary, DescendantPairsAgainstReference) {
  Rng rng(229);
  for (int trial = 0; trial < 10; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(40), 2, rng);
    TreeEnumerator e(t, QueryDescendantPairs(2, 0, 1));
    EXPECT_EQ(e.EnumerateAll(), RefDescendantPairs(t, 0, 1));
  }
}

TEST(QueryLibrary, ContainsLabelBoolean) {
  Rng rng(233);
  for (int trial = 0; trial < 10; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(30), 2, rng);
    bool expected = false;
    for (NodeId n : t.PreorderNodes()) expected |= t.label(n) == 1;
    TreeEnumerator e(t, QueryContainsLabel(2, 1));
    EXPECT_EQ(e.EnumerateAll().size(), expected ? 1u : 0u);
  }
}

TEST(QueryLibrary, AnySubsetCountsPowerset) {
  Rng rng(239);
  UnrankedTree t = RandomTree(12, 2, rng);
  size_t b_count = 0;
  for (NodeId n : t.PreorderNodes()) b_count += t.label(n) == 1;
  TreeEnumerator e(t, QueryAnySubsetOfLabel(2, 1));
  EXPECT_EQ(e.EnumerateAll().size(), (size_t{1} << b_count) - 1);
}

TEST(QueryLibrary, AncestorAtDistanceAgainstReference) {
  Rng rng(241);
  for (size_t k : {1u, 2u, 3u}) {
    for (int trial = 0; trial < 6; ++trial) {
      UnrankedTree t = RandomTree(1 + rng.Index(40), 2, rng);
      TreeEnumerator e(t, QueryAncestorAtDistance(2, 0, k));
      EXPECT_EQ(e.EnumerateAll(), RefAncestorAtDistance(t, 0, k))
          << "k=" << k;
    }
  }
}

TEST(QueryLibrary, AncestorAtDistanceIsNondeterministic) {
  // The automaton must have genuinely nondeterministic ι (the anchor guess).
  UnrankedTva q = QueryAncestorAtDistance(2, 0, 3);
  EXPECT_GE(q.InitsFor(0, 0).size(), 2u);
}

}  // namespace
}  // namespace treenum
