// The index structure I(C) of Definition 6.1, computed bottom-up over the
// tree of boxes (Lemma 6.3) and maintained incrementally under updates
// (Lemma 7.3).
//
// Per box B we store a set of *candidate* target boxes — the fib/span values
// of B's ∪-gates closed under least common ancestors — sorted by preorder,
// each with its ∪-reachability relation R(candidate, B). Because candidates
// of B that lie strictly below B are always candidates of the corresponding
// child, all quantities are computed from the children's index in O(1)
// lookups per entry, with no global preorder numbering (which could not be
// maintained under updates).
//
// Instead of fbb(g) we store span(g) := lca of the interesting boxes of g.
// span(g) equals fbb(g) whenever the ∪-closure of g branches and fib(g)
// otherwise; the jump loop of Algorithm 3 then computes the first
// bidirectional box of a boxed set Γ as lca{span(g) | g ∈ Γ} and terminates
// when that box is not a strict ancestor of fib(Γ). This evaluates correctly
// even for boxed sets that are only *jointly* bidirectional (each gate's own
// closure is a chain, but the chains split at a common box).
#ifndef TREENUM_ENUMERATION_INDEX_H_
#define TREENUM_ENUMERATION_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "util/bit_matrix.h"

namespace treenum {

inline constexpr int32_t kNoCand = -1;

/// Index data of one box.
struct BoxIndex {
  struct Cand {
    TermNodeId box;
    /// 0 = the box itself, 1 = inherited from left child, 2 = from right.
    uint8_t source;
    /// For source 1/2: index in the child's candidate list.
    int32_t child_cand;
    /// R(cand box, B): rows = candidate box's ∪-gates, cols = B's ∪-gates.
    BitMatrix rel;
  };

  std::vector<Cand> cands;  ///< Sorted by preorder (B itself first if used).
  std::vector<int32_t> fib;   ///< Per ∪-gate: candidate index (always set).
  std::vector<int32_t> span;  ///< Per ∪-gate: candidate index (always set).
  /// Pairwise lca over candidates: cand_lca[a * cands.size() + b].
  std::vector<int32_t> cand_lca;
  /// Wire relations to the children: R(child box, B) over the ∪→∪ wires
  /// (⊤-collapse inputs). Empty matrices for leaf boxes.
  BitMatrix wire_left;
  BitMatrix wire_right;

  int32_t Lca(int32_t a, int32_t b) const {
    return cand_lca[static_cast<size_t>(a) * cands.size() + b];
  }

  /// lca{span(g) | g ∈ gates} as a candidate index (Observation 6.2: the
  /// preorder-minimal pairwise lca). `gates` must be non-empty.
  int32_t SpanLocal(const std::vector<uint32_t>& gates) const {
    int32_t best = span[gates[0]];
    for (size_t i = 0; i < gates.size(); ++i) {
      for (size_t j = i; j < gates.size(); ++j) {
        best = std::min(best, Lca(span[gates[i]], span[gates[j]]));
      }
    }
    return best;
  }
};

/// The full index, one BoxIndex per term node, rebuilt bottom-up.
class EnumIndex {
 public:
  explicit EnumIndex(const AssignmentCircuit* circuit) : circuit_(circuit) {}

  const AssignmentCircuit& circuit() const { return *circuit_; }

  /// Builds the index for every box, bottom-up (O(|T| * poly(w))).
  void BuildAll();

  /// Recomputes one box's index from its children's (which must be current).
  void RebuildBoxIndex(TermNodeId id);

  void FreeBoxIndex(TermNodeId id);

  const BoxIndex& at(TermNodeId id) const { return indexes_[id]; }

  /// fib(Γ) as a candidate index at `box`: min over the gates' fib values
  /// (minimum candidate index = first in preorder). `gates` are dense
  /// ∪-gate indices; must be non-empty.
  int32_t FibOfSet(TermNodeId box, const std::vector<uint32_t>& gates) const;

  /// lca{span(g)} as a candidate index (Observation 6.2: min over pairwise
  /// candidate lcas).
  int32_t SpanOfSet(TermNodeId box, const std::vector<uint32_t>& gates) const;

 private:
  /// Raw fib/span of one gate before candidate assembly.
  struct Pre {
    uint8_t source;  // 0 self, 1 left, 2 right
    int32_t cc;      // child candidate index (source 1/2)
  };

  void EnsureSlot(TermNodeId id);

  const AssignmentCircuit* circuit_;
  std::vector<BoxIndex> indexes_;

  // Rebuild scratch reused across RebuildBoxIndex calls (clear() keeps
  // capacity — the update path's counterpart of the circuit arena scratch).
  std::vector<std::vector<uint32_t>> in_left_scratch_;
  std::vector<std::vector<uint32_t>> in_right_scratch_;
  std::vector<Pre> fib_pre_scratch_;
  std::vector<Pre> span_pre_scratch_;
  std::vector<int32_t> used_l_scratch_;
  std::vector<int32_t> used_r_scratch_;
  std::vector<int32_t> map_l_scratch_;
  std::vector<int32_t> map_r_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_ENUMERATION_INDEX_H_
