#include "automata/translate.h"

#include <gtest/gtest.h>

#include "automata/query_library.h"
#include "automata/wva.h"
#include "falgebra/builder.h"
#include "falgebra/word_avl.h"
#include "test_util.h"

namespace treenum {
namespace {

// Faithfulness (Lemma 7.4): the binary TVA accepts the encoded term under
// ν∘φ exactly when the unranked TVA accepts the tree under ν. Since the
// encoding reuses the tree's NodeIds on leaf symbols, the two brute-force
// assignment sets must be literally equal.
void CheckFaithful(const UnrankedTva& a, const UnrankedTree& tree) {
  TranslatedTva tr = TranslateUnrankedTva(a);
  Encoding enc = EncodeTree(tree, a.num_labels());
  ASSERT_EQ(enc.term.Validate(), "");
  std::vector<Assignment> expected = a.BruteForceAssignments(tree);
  std::vector<Assignment> actual =
      TermBruteForceAssignments(tr.tva, enc.term);
  EXPECT_EQ(expected, actual) << tree.ToString();
}

TEST(Translate, SelectLabelOnSmallTrees) {
  UnrankedTva q = QuerySelectLabel(2, 1);
  for (const char* s :
       {"(a)", "(b)", "(a (b))", "(a (b) (b))", "(b (a (b)))",
        "(a (a) (b (a)))", "(a (b (a) (b)))"}) {
    CheckFaithful(q, UnrankedTree::Parse(s));
  }
}

TEST(Translate, MarkedAncestorOnSmallTrees) {
  // labels: a=0 plain, b=1 marked, c=2 special.
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  for (const char* s :
       {"(a (c))", "(b (c))", "(b (a (c)))", "(a (b (c) (c)) (c))",
        "(c (b (c)))"}) {
    CheckFaithful(q, UnrankedTree::Parse(s));
  }
}

TEST(Translate, DescendantPairsOnSmallTrees) {
  UnrankedTva q = QueryDescendantPairs(2, 0, 1);
  for (const char* s :
       {"(a (b))", "(b (a))", "(a (a (b)))", "(a (b) (b))", "(b)"}) {
    CheckFaithful(q, UnrankedTree::Parse(s));
  }
}

TEST(Translate, BooleanContainment) {
  UnrankedTva q = QueryContainsLabel(2, 1);
  for (const char* s : {"(a)", "(b)", "(a (a) (a (b)))", "(a (a) (a))"}) {
    CheckFaithful(q, UnrankedTree::Parse(s));
  }
}

TEST(Translate, RandomAutomataRandomTreesProperty) {
  Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    UnrankedTva a = RandomUnrankedTva(rng, 3, 2, 1, 3, 9);
    UnrankedTree tree = RandomTree(1 + rng.Index(6), 2, rng);
    CheckFaithful(a, tree);
  }
}

TEST(Translate, RandomTwoVarProperty) {
  Rng rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    UnrankedTva a = RandomUnrankedTva(rng, 2, 2, 2, 4, 6);
    UnrankedTree tree = RandomTree(1 + rng.Index(5), 2, rng);
    CheckFaithful(a, tree);
  }
}

TEST(Translate, PathAndStarShapes) {
  Rng rng(7);
  UnrankedTva q = QuerySelectLabel(2, 1);
  CheckFaithful(q, PathTree(7, 2, rng));
  // star: root with many leaves
  UnrankedTree star(0);
  for (int i = 0; i < 6; ++i) star.AppendChild(star.root(), 1);
  CheckFaithful(q, star);
}

TEST(TranslateWva, RegularLanguageFaithful) {
  // L = a*ba*, x bound to the b position.
  Wva a(2, 2, 1);
  a.AddInitial(0);
  a.AddTransition(0, 0, 0, 0);
  a.AddTransition(0, 1, 1, 1);
  a.AddTransition(1, 0, 0, 1);
  a.AddFinal(1);

  TranslatedTva tr = TranslateWva(a);
  for (const Word& w :
       {Word{0, 1, 0}, Word{1}, Word{0, 0}, Word{1, 1}, Word{0, 1, 0, 0}}) {
    WordEncoding enc(w, a.num_labels());
    std::vector<Assignment> expected = a.BruteForceAssignments(w);
    std::vector<Assignment> actual =
        TermBruteForceAssignments(tr.tva, enc.term());
    EXPECT_EQ(expected, actual);
  }
}

TEST(TranslateWva, RandomWvaProperty) {
  Rng rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    Wva a(3, 2, 1);
    a.AddInitial(static_cast<State>(rng.Index(3)));
    for (int i = 0; i < 10; ++i) {
      a.AddTransition(static_cast<State>(rng.Index(3)),
                      static_cast<Label>(rng.Index(2)),
                      static_cast<VarMask>(rng.Index(2)),
                      static_cast<State>(rng.Index(3)));
    }
    a.AddFinal(static_cast<State>(rng.Index(3)));
    size_t len = 1 + rng.Index(5);
    Word w;
    for (size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<Label>(rng.Index(2)));
    }
    TranslatedTva tr = TranslateWva(a);
    WordEncoding enc(w, a.num_labels());
    EXPECT_EQ(a.BruteForceAssignments(w),
              TermBruteForceAssignments(tr.tva, enc.term()))
        << "trial " << trial;
  }
}

TEST(Translate, TranslatedSizePolynomial) {
  // |Q'| ≤ (|Q|+2)^2 + (|Q|+2)^4 — and in practice much smaller after the
  // reachable-only closure.
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  TranslatedTva tr = TranslateUnrankedTva(q);
  size_t n = q.num_states() + 2;
  EXPECT_LE(tr.tva.num_states(), n * n + n * n * n * n);
  EXPECT_FALSE(tr.tva.final_states().empty());
}

}  // namespace
}  // namespace treenum
