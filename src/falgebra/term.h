// Forest algebra pre-terms and terms (§7 and Appendix E of the paper).
//
// A term is a binary tree whose leaves are a_t / a_□ symbols and whose
// internal nodes are the five operators ⊕HH, ⊕HV, ⊕VH, ⊙VV, ⊙VH. Each node
// is typed as a forest or a context; a term represents an unranked forest
// (here: always a single tree, the encoded input tree).
//
// Invariant maintained by this library (used by updates and rebuilds): the
// hole of every context is the *entire child-forest slot* of the tree node
// carried by its a_□ leaf. Equivalently, every context piece is of the form
// "subtree of T rooted at u, with everything strictly below w removed", for
// a node w in that subtree; the hole sits where w's children go.
#ifndef TREENUM_FALGEBRA_TERM_H_
#define TREENUM_FALGEBRA_TERM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "falgebra/alphabet.h"
#include "trees/unranked_tree.h"

namespace treenum {

using TermNodeId = uint32_t;
inline constexpr TermNodeId kNoTerm = static_cast<TermNodeId>(-1);

/// A node of a forest algebra term.
struct TermNode {
  Label label = 0;           ///< Symbol in Λ' (leaf symbol or operator).
  TermNodeId left = kNoTerm;
  TermNodeId right = kNoTerm;
  TermNodeId parent = kNoTerm;
  NodeId tree_node = kNoNode;  ///< For leaf symbols: the represented T-node.
  uint32_t size = 0;           ///< Number of leaf symbols below (incl. self).
  uint32_t height = 0;         ///< Height of the subterm (leaf = 0).
  bool is_context = false;     ///< Type: context vs. forest.
  bool alive = false;
};

/// A mutable forest algebra term with stable node ids.
///
/// The term is the binary tree the assignment circuit of §3 is built on:
/// circuit boxes are indexed by TermNodeId. All structural operations keep
/// size/height of the affected nodes consistent (callers use RecomputeUp for
/// path updates after splices).
class Term {
 public:
  explicit Term(const TermAlphabet& alphabet) : alphabet_(alphabet) {}

  const TermAlphabet& alphabet() const { return alphabet_; }

  TermNodeId root() const { return root_; }
  void set_root(TermNodeId r) {
    root_ = r;
    if (r != kNoTerm) nodes_[r].parent = kNoTerm;
  }

  const TermNode& node(TermNodeId id) const { return nodes_[id]; }
  bool IsAlive(TermNodeId id) const {
    return id < nodes_.size() && nodes_[id].alive;
  }
  bool IsLeaf(TermNodeId id) const { return nodes_[id].left == kNoTerm; }
  size_t num_alive() const { return num_alive_; }
  /// Upper bound over all ids ever allocated (for dense side arrays).
  size_t id_bound() const { return nodes_.size(); }

  /// Creates a leaf symbol node (a_t or a_□) for tree node `n`.
  TermNodeId NewLeaf(Label symbol, NodeId n);

  /// Creates an operator node over two existing root-less nodes; sets parent
  /// pointers and computes size/height/type. Children must not already have
  /// a parent.
  TermNodeId NewNode(TermOp op, TermNodeId left, TermNodeId right);

  /// Replaces subterm `old_id` by `new_id` in old's parent (or as root).
  /// `old_id` keeps its subtree and becomes detached.
  void ReplaceChild(TermNodeId old_id, TermNodeId new_id);

  /// Replaces `existing` (in place, inside its parent) by a new operator
  /// node combining `existing` with the detached subterm `fresh`:
  /// op(fresh, existing) if fresh_on_left, else op(existing, fresh).
  /// Returns the new operator node. Does not recompute ancestor counters.
  TermNodeId SpliceOp(TermOp op, TermNodeId existing, TermNodeId fresh,
                      bool fresh_on_left);

  /// Low-level re-linking used by AVL rotations on ⊕HH chains (word terms):
  /// sets both children of `id`, fixes parent pointers, and recomputes the
  /// node's counters. Caller is responsible for type correctness.
  void SetChildrenRaw(TermNodeId id, TermNodeId l, TermNodeId r);

  /// Sets one child slot of `parent` to `child` and fixes child's parent
  /// pointer. Does not recompute counters.
  void SetChildSlot(TermNodeId parent, bool left_slot, TermNodeId child);

  /// Detaches `id` from its parent pointer (the parent's child slot is NOT
  /// updated — used when dismantling a node whose children move elsewhere).
  void ClearParent(TermNodeId id);

  /// Changes the label of a node in place (used by relabelings and by the
  /// context→forest retyping walk of leaf deletion).
  void SetLabel(TermNodeId id, Label label);
  void SetTreeNode(TermNodeId id, NodeId n);
  void SetContext(TermNodeId id, bool is_context);

  /// Recomputes size/height from `id` upward to the root; appends the
  /// visited ids (bottom-up, starting at id) to `path` if non-null.
  void RecomputeUp(TermNodeId id, std::vector<TermNodeId>* path = nullptr);

  /// Frees the node `id` only (not its subtree).
  void FreeNode(TermNodeId id);
  /// Frees the whole subtree rooted at `id`; appends freed ids if non-null.
  void FreeSubterm(TermNodeId id, std::vector<TermNodeId>* freed = nullptr);

  /// Decodes the represented forest; requires the term to be well-formed and
  /// forest-typed with a single represented tree. Labels come from the leaf
  /// symbols; the returned tree's node ids are fresh, and `term_to_tree`
  /// (indexed by leaf TermNodeId) receives the new NodeId of each leaf
  /// symbol if non-null.
  UnrankedTree Decode(std::vector<NodeId>* term_to_tree = nullptr) const;

  /// Validates structural invariants: typing of all five operators, leaf
  /// symbols, parent pointers, size/height counters. Returns an empty string
  /// if valid, else a description of the first violation. (Test helper.)
  std::string Validate() const;

  /// Renders the subterm rooted at `id` (debugging).
  std::string ToString(TermNodeId id) const;

 private:
  TermNodeId Alloc();
  void RecomputeNode(TermNodeId id);

  TermAlphabet alphabet_;
  std::vector<TermNode> nodes_;
  std::vector<TermNodeId> free_list_;
  TermNodeId root_ = kNoTerm;
  size_t num_alive_ = 0;
};

}  // namespace treenum

#endif  // TREENUM_FALGEBRA_TERM_H_
