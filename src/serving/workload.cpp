#include "serving/workload.h"

namespace treenum {
namespace serving {

CommandScript::CommandScript(UnrankedTree mirror, uint64_t seed,
                             const WorkloadOptions& opts)
    : mirror_(std::move(mirror)), rng_(seed), opts_(opts) {
  pool_ = mirror_.PreorderNodes();
}

DocCommand CommandScript::Next() {
  DocCommand c;
  if (opts_.churn_fraction > 0 && rng_.Flip(opts_.churn_fraction)) {
    c.kind = churn_live_ ? DocCommand::Kind::kUnregister
                         : DocCommand::Kind::kRegister;
    churn_live_ = !churn_live_;
    return c;
  }
  if (opts_.structural_fraction > 0 && rng_.Flip(opts_.structural_fraction) &&
      NextStructural(&c.structural)) {
    c.kind = DocCommand::Kind::kStructural;
    return c;
  }
  c.kind = DocCommand::Kind::kEdit;
  c.edit = NextEdit();
  return c;
}

Edit CommandScript::NextEdit() {
  // Same mix as the test suite's ScriptedEditor: relabel-biased with
  // balanced inserts/deletes so the document size stays roughly stable.
  NodeId n = Pick();
  Label l = static_cast<Label>(rng_.Index(opts_.num_labels));
  switch (rng_.Index(4)) {
    case 1: {
      NodeId u = mirror_.InsertFirstChild(n, l);
      pool_.push_back(u);
      return Edit::InsertFirstChild(n, l);
    }
    case 2:
      if (n != mirror_.root()) {
        NodeId u = mirror_.InsertRightSibling(n, l);
        pool_.push_back(u);
        return Edit::InsertRightSibling(n, l);
      }
      break;
    case 3:
      if (n != mirror_.root() && mirror_.IsLeaf(n)) {
        mirror_.DeleteLeaf(n);
        return Edit::DeleteLeaf(n);
      }
      break;
    default:
      break;
  }
  mirror_.Relabel(n, l);
  return Edit::Relabel(n, l);
}

bool CommandScript::NextStructural(StructuralOp* op) {
  if (mirror_.size() < 2) return false;
  // A structural op needs a non-root subtree root.
  NodeId v = Pick();
  for (int tries = 0; v == mirror_.root() && tries < 8; ++tries) v = Pick();
  if (v == mirror_.root()) return false;

  if (rng_.Flip(0.3)) {
    // Subtree delete — unless it would shrink the document too far.
    size_t sub = mirror_.SubtreeSize(v);
    if (mirror_.size() - sub >= opts_.min_size) {
      *op = StructuralOp::Delete(v);
      mirror_.DetachSubtree(v);
      mirror_.FreeDetached(v);
      return true;
    }
  }

  // Subtree move: destination anchor must be outside subtree(v). The root
  // always qualifies (v is non-root), so rejection sampling has a safe
  // fallback.
  NodeId dst = kNoNode;
  for (int tries = 0; tries < 16; ++tries) {
    NodeId u = Pick();
    if (!InSubtree(u, v)) {
      dst = u;
      break;
    }
  }
  if (dst == kNoNode) dst = mirror_.root();
  AttachWhere where = AttachWhere::kFirstChild;
  if (dst != mirror_.root() && rng_.Flip(0.5)) {
    where = AttachWhere::kRightSibling;  // anchor must be non-root
  }
  *op = StructuralOp::Move(v, dst, where);
  mirror_.DetachSubtree(v);
  if (where == AttachWhere::kFirstChild) {
    mirror_.AttachSubtreeFirstChild(v, dst);
  } else {
    mirror_.AttachSubtreeRightSibling(v, dst);
  }
  return true;
}

NodeId CommandScript::Pick() {
  while (true) {
    size_t i = rng_.Index(pool_.size());
    NodeId n = pool_[i];
    if (mirror_.IsAlive(n)) return n;
    pool_[i] = pool_.back();  // drop stale (deleted) entries lazily
    pool_.pop_back();
  }
}

bool CommandScript::InSubtree(NodeId u, NodeId v) const {
  for (NodeId w = u; w != kNoNode; w = mirror_.parent(w)) {
    if (w == v) return true;
  }
  return false;
}

}  // namespace serving
}  // namespace treenum
