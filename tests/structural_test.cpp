// Structural transactions: encoding-level correctness (SubtreeMove /
// SubtreeDelete / SubtreeExtract / GraftSubtree keep tree, term, and leaf
// bijection in sync, balanced, and structurally valid).
#include <gtest/gtest.h>

#include "falgebra/update.h"
#include "util/random.h"

namespace treenum {
namespace {

void ExpectSync(const DynamicEncoding& enc) {
  ASSERT_EQ(enc.term().Validate(), "");
  ASSERT_EQ(enc.term().ValidateStructure(&MaxAllowedHeight), "");
  ASSERT_TRUE(enc.CheckBalanced());
  UnrankedTree decoded = enc.term().Decode();
  ASSERT_TRUE(decoded == enc.tree())
      << "term decodes to " << decoded.ToString() << " but tree is "
      << enc.tree().ToString();
  for (NodeId n : enc.tree().PreorderNodes()) {
    TermNodeId leaf = enc.LeafOf(n);
    ASSERT_NE(leaf, kNoTerm);
    ASSERT_EQ(enc.term().node(leaf).tree_node, n);
  }
}

TEST(Structural, SubtreeMoveToFirstChildOfLeaf) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c) (d)) (e))"), 6);
  NodeId root = enc.tree().root();
  NodeId b = enc.tree().children(root)[0];
  NodeId e = enc.tree().children(root)[1];
  const UpdateResult& r = enc.SubtreeMove(b, e, /*as_first_child=*/true);
  EXPECT_FALSE(r.changed_bottom_up.empty());
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (e (b (c) (d))))");
}

TEST(Structural, SubtreeMoveToRightSibling) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c) (d)) (e) (f))"), 6);
  NodeId root = enc.tree().root();
  NodeId b = enc.tree().children(root)[0];
  NodeId f = enc.tree().children(root)[2];
  enc.SubtreeMove(b, f, /*as_first_child=*/false);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (e) (f) (b (c) (d)))");
}

TEST(Structural, SubtreeMoveSoleChildClosesHole) {
  // Moving b away leaves a childless: its symbol must retype a_□ → a_t.
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c)) )"), 6);
  NodeId root = enc.tree().root();
  NodeId b = enc.tree().children(root)[0];
  NodeId c = enc.tree().children(b)[0];
  enc.SubtreeMove(c, root, /*as_first_child=*/true);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (c) (b))");
}

TEST(Structural, SubtreeMoveRejectsDestinationInsideSubtree) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c)))"), 6);
  NodeId b = enc.tree().children(enc.tree().root())[0];
  NodeId c = enc.tree().children(b)[0];
  EXPECT_THROW(enc.SubtreeMove(b, c, true), std::invalid_argument);
  EXPECT_THROW(enc.SubtreeMove(b, b, true), std::invalid_argument);
  EXPECT_THROW(enc.SubtreeMove(enc.tree().root(), b, true),
               std::invalid_argument);
  ExpectSync(enc);
}

TEST(Structural, SubtreeDeleteAndSoleChild) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c) (d)) (e (f)))"), 6);
  NodeId root = enc.tree().root();
  NodeId b = enc.tree().children(root)[0];
  const UpdateResult& r = enc.SubtreeDelete(b);
  EXPECT_FALSE(r.freed.empty());
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (e (f)))");
  // Deleting f leaves e childless (hole close).
  NodeId e = enc.tree().children(root)[0];
  NodeId f = enc.tree().children(e)[0];
  enc.SubtreeDelete(f);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (e))");
}

TEST(Structural, SubtreeExtractRoundTripsThroughGraft) {
  DynamicEncoding enc(UnrankedTree::Parse("(a (b (c) (d (e))) (f))"), 6);
  NodeId root = enc.tree().root();
  NodeId b = enc.tree().children(root)[0];
  UnrankedTree cut(0);
  enc.SubtreeExtract(b, &cut);
  ExpectSync(enc);
  EXPECT_EQ(enc.tree().ToString(), "(a (f))");
  EXPECT_EQ(cut.ToString(), "(b (c) (d (e)))");
  NodeId f = enc.tree().children(root)[0];
  NodeId back = kNoNode;
  enc.GraftSubtree(cut, cut.root(), f, /*as_first_child=*/false, &back);
  ExpectSync(enc);
  ASSERT_NE(back, kNoNode);
  EXPECT_EQ(enc.tree().ToString(), "(a (f) (b (c) (d (e))))");
}

// Randomized workload: interleaved structural transactions and leaf edits
// must keep the tree/term/bijection in sync, balanced, and valid.
TEST(Structural, RandomizedTransactionsStaySynced) {
  Rng rng(20260808);
  DynamicEncoding enc(RandomTree(300, 4, rng), 4);
  for (int step = 0; step < 400; ++step) {
    std::vector<NodeId> nodes = enc.tree().PreorderNodes();
    NodeId pick = nodes[rng.Index(nodes.size())];
    switch (rng.Index(8)) {
      case 0:
        enc.Relabel(pick, static_cast<Label>(rng.Index(4)));
        break;
      case 1:
        enc.InsertFirstChild(pick, static_cast<Label>(rng.Index(4)));
        break;
      case 2:
        if (pick != enc.tree().root()) {
          enc.InsertRightSibling(pick, static_cast<Label>(rng.Index(4)));
        }
        break;
      case 3:
        if (pick != enc.tree().root() && enc.tree().IsLeaf(pick)) {
          enc.DeleteLeaf(pick);
        }
        break;
      case 4:
      case 5: {  // SubtreeMove
        if (pick == enc.tree().root()) break;
        // Destination: any node outside subtree(pick).
        std::vector<NodeId> in_sub{pick};
        for (size_t i = 0; i < in_sub.size(); ++i) {
          for (NodeId c : enc.tree().children(in_sub[i])) {
            in_sub.push_back(c);
          }
        }
        auto inside = [&](NodeId n) {
          for (NodeId s : in_sub) {
            if (s == n) return true;
          }
          return false;
        };
        std::vector<NodeId> cands;
        for (NodeId n : nodes) {
          if (!inside(n)) cands.push_back(n);
        }
        if (cands.empty()) break;
        NodeId dst = cands[rng.Index(cands.size())];
        bool as_first = rng.Index(2) == 0 || dst == enc.tree().root();
        enc.SubtreeMove(pick, dst, as_first);
        break;
      }
      case 6:
        if (pick != enc.tree().root() && enc.tree().size() > 10) {
          enc.SubtreeDelete(pick);
        }
        break;
      case 7: {  // Extract, then graft back somewhere else.
        if (pick == enc.tree().root() || enc.tree().size() <= 10) break;
        UnrankedTree cut(0);
        enc.SubtreeExtract(pick, &cut);
        std::vector<NodeId> rest = enc.tree().PreorderNodes();
        NodeId dst = rest[rng.Index(rest.size())];
        bool as_first = rng.Index(2) == 0 || dst == enc.tree().root();
        enc.GraftSubtree(cut, cut.root(), dst, as_first);
        break;
      }
    }
    if (step % 7 == 0) ExpectSync(enc);
  }
  ExpectSync(enc);
}

}  // namespace
}  // namespace treenum
