// Parameterized sweeps over tree shapes and sizes for the forest-algebra
// layer: encode/decode roundtrip, height envelope, and balance maintenance
// under sustained edit pressure.
#include <gtest/gtest.h>

#include <cmath>

#include "falgebra/builder.h"
#include "falgebra/update.h"
#include "util/random.h"

namespace treenum {
namespace {

enum class Shape { kRandom, kPath, kStar, kCaterpillar, kBinary };

struct SweepConfig {
  Shape shape;
  size_t size;
};

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kRandom:
      return "Random";
    case Shape::kPath:
      return "Path";
    case Shape::kStar:
      return "Star";
    case Shape::kCaterpillar:
      return "Caterpillar";
    case Shape::kBinary:
      return "Binary";
  }
  return "?";
}

UnrankedTree MakeShape(Shape s, size_t n, Rng& rng) {
  switch (s) {
    case Shape::kRandom:
      return RandomTree(n, 3, rng);
    case Shape::kPath:
      return PathTree(n, 3, rng);
    case Shape::kStar: {
      UnrankedTree t(0);
      for (size_t i = 1; i < n; ++i) t.AppendChild(t.root(), 1);
      return t;
    }
    case Shape::kCaterpillar: {
      UnrankedTree t(0);
      NodeId cur = t.root();
      while (t.size() + 2 <= n) {
        t.AppendChild(cur, 1);
        cur = t.AppendChild(cur, 0);
      }
      return t;
    }
    case Shape::kBinary:
      return KaryTree(n, 2, 3, rng);
  }
  return UnrankedTree(0);
}

class FalgebraSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(FalgebraSweepTest, RoundtripAndHeightEnvelope) {
  const SweepConfig& cfg = GetParam();
  Rng rng(static_cast<uint64_t>(cfg.size) * 31 +
          static_cast<uint64_t>(cfg.shape));
  UnrankedTree t = MakeShape(cfg.shape, cfg.size, rng);
  Encoding enc = EncodeTree(t, 3);
  ASSERT_EQ(enc.term.Validate(), "");
  EXPECT_TRUE(enc.term.Decode() == t);
  uint32_t h = enc.term.node(enc.term.root()).height;
  double bound = 4.0 * std::log2(static_cast<double>(t.size()) + 1) + 8;
  EXPECT_LE(h, bound);
  // Every subterm inside the envelope.
  for (TermNodeId id = 0; id < enc.term.id_bound(); ++id) {
    if (!enc.term.IsAlive(id)) continue;
    const TermNode& nd = enc.term.node(id);
    ASSERT_LE(nd.height, MaxAllowedHeight(nd.size));
  }
}

TEST_P(FalgebraSweepTest, EditPressureKeepsInvariants) {
  const SweepConfig& cfg = GetParam();
  Rng rng(static_cast<uint64_t>(cfg.size) * 37 +
          static_cast<uint64_t>(cfg.shape));
  DynamicEncoding enc(MakeShape(cfg.shape, cfg.size, rng), 3);
  size_t edits = std::min<size_t>(cfg.size, 150);
  for (size_t step = 0; step < edits; ++step) {
    std::vector<NodeId> nodes = enc.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    switch (rng.Index(4)) {
      case 0:
        enc.Relabel(n, static_cast<Label>(rng.Index(3)));
        break;
      case 1:
        enc.InsertFirstChild(n, static_cast<Label>(rng.Index(3)));
        break;
      case 2:
        if (n != enc.tree().root()) {
          enc.InsertRightSibling(n, static_cast<Label>(rng.Index(3)));
        }
        break;
      case 3:
        if (n != enc.tree().root() && enc.tree().IsLeaf(n)) {
          enc.DeleteLeaf(n);
        }
        break;
    }
  }
  EXPECT_EQ(enc.term().Validate(), "");
  EXPECT_TRUE(enc.CheckBalanced());
  EXPECT_TRUE(enc.term().Decode() == enc.tree());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FalgebraSweepTest,
    ::testing::Values(SweepConfig{Shape::kRandom, 10},
                      SweepConfig{Shape::kRandom, 100},
                      SweepConfig{Shape::kRandom, 1000},
                      SweepConfig{Shape::kRandom, 5000},
                      SweepConfig{Shape::kPath, 10},
                      SweepConfig{Shape::kPath, 100},
                      SweepConfig{Shape::kPath, 2000},
                      SweepConfig{Shape::kStar, 10},
                      SweepConfig{Shape::kStar, 100},
                      SweepConfig{Shape::kStar, 2000},
                      SweepConfig{Shape::kCaterpillar, 20},
                      SweepConfig{Shape::kCaterpillar, 500},
                      SweepConfig{Shape::kCaterpillar, 2000},
                      SweepConfig{Shape::kBinary, 15},
                      SweepConfig{Shape::kBinary, 1023},
                      SweepConfig{Shape::kBinary, 4000}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return ShapeName(info.param.shape) + std::to_string(info.param.size);
    });

}  // namespace
}  // namespace treenum
