// Balanced word terms (Corollary 8.4): a word is a forest of single-node
// trees, its term uses only a_t leaves and ⊕HH, and — since ⊕HH is
// associative — the term can be kept balanced by ordinary AVL rotations.
// This gives genuinely worst-case O(log n) structural changes per edit
// (unlike the tree case, where we rebuild subterms; see DESIGN.md).
#ifndef TREENUM_FALGEBRA_WORD_AVL_H_
#define TREENUM_FALGEBRA_WORD_AVL_H_

#include <vector>

#include "automata/wva.h"
#include "falgebra/term.h"
#include "falgebra/update.h"

namespace treenum {

/// A word together with its AVL-balanced ⊕HH term. Positions have stable
/// ids (used as the NodeId of assignments); the logical order is the
/// in-order leaf sequence of the term.
class WordEncoding {
 public:
  /// Builds a balanced term for `w` (must be non-empty).
  WordEncoding(const Word& w, size_t num_base_labels);

  const Term& term() const { return term_; }
  size_t size() const { return size_; }

  /// Letter at logical position `pos` (0-based).
  Label LetterAt(size_t pos) const;
  /// Stable id of the position (the NodeId appearing in assignments).
  NodeId PositionId(size_t pos) const;
  /// Logical position of a stable id (O(log n)).
  size_t PositionOf(NodeId id) const;
  /// The current word, in order (O(n); for tests).
  Word Current() const;

  /// Replaces the letter at `pos`.
  ///
  /// Like the tree-side DynamicEncoding, every edit below returns a
  /// reference to an internal scratch UpdateResult that the next edit
  /// overwrites (vectors keep their capacity, so steady-state edits and
  /// structural transactions perform zero heap allocations). Copy it if it
  /// must outlive the next call.
  const UpdateResult& Replace(size_t pos, Label l);
  /// Inserts a letter so that it ends up at logical position `pos`
  /// (0 ≤ pos ≤ size()).
  const UpdateResult& Insert(size_t pos, Label l);
  /// Deletes the letter at `pos`. The word must keep at least one letter.
  const UpdateResult& Erase(size_t pos);

  // ---- Structural transactions (AVL split/join) ----

  /// Bulk update (the "move part of the text" operation from the paper's
  /// conclusion, implemented via AVL split/join): removes the factor
  /// [begin, end) and reinserts it so that it starts at position `dst` of
  /// the remaining word (0 ≤ dst ≤ size() - (end - begin)). O(log n)
  /// structural changes; position ids are preserved.
  const UpdateResult& MoveRange(size_t begin, size_t end, size_t dst);

  /// Deletes the factor [begin, end); at least one letter must remain.
  const UpdateResult& EraseRange(size_t begin, size_t end);

  /// Deletes the factor [begin, end) and assigns it to `*extracted`.
  const UpdateResult& ExtractRange(size_t begin, size_t end, Word* extracted);

  /// Appends the non-empty word `w`, encoded as one balanced detached
  /// subterm and joined at the right end (O(|w| + log n)).
  const UpdateResult& Concat(const Word& w);

  /// Test hook: AVL balance factors in {-1, 0, 1} everywhere on the current
  /// version (frozen snapshot versions are not checked).
  bool CheckBalanced() const;

  /// Writable term access for the snapshot layer (pin/publish/drain).
  Term& mutable_term() { return term_; }

 private:
  TermNodeId LeafAt(size_t pos) const;
  /// Re-points pos_leaf_ at path-copied leaves (term remap log of this edit).
  void ApplyRemap();
  uint32_t HeightOf(TermNodeId x) const;
  int BalanceFactor(TermNodeId x) const;
  /// AVL rebalancing walk from `from` to the root; records changed nodes.
  void RebalanceUp(TermNodeId from, UpdateResult& result);
  /// AVL join of two detached subtrees (either may be kNoTerm).
  TermNodeId JoinTerms(TermNodeId a, TermNodeId b, UpdateResult& result);
  /// Splits the detached subtree `t` into its first k leaves and the rest
  /// (either side may come back as kNoTerm). Frees dismantled op nodes.
  std::pair<TermNodeId, TermNodeId> SplitAt(TermNodeId t, size_t k,
                                            UpdateResult& result);
  /// Local rebalance of a detached node after a join step.
  TermNodeId RebalanceNode(TermNodeId x, UpdateResult& result);
  TermNodeId RotateLeft(TermNodeId x, UpdateResult& result);
  TermNodeId RotateRight(TermNodeId x, UpdateResult& result);
  NodeId AllocPosition(Label l);
  /// Clears and returns the scratch result (capacity preserved).
  UpdateResult& ResetResult();
  /// Keeps the last occurrence of each id, preserving order, drops dead ids.
  void FilterChanged(std::vector<TermNodeId>& v);
  /// Builds a balanced detached subterm over fresh positions for `w`
  /// (records created ids in `result.changed_bottom_up`).
  TermNodeId BuildDetached(const Word& w, size_t lo, size_t hi,
                           UpdateResult& result);
  /// Splits out the detached factor [begin, end) of the whole (rootless)
  /// term and returns {prefix, factor, suffix} roots (sides may be kNoTerm).
  /// Shared front half of MoveRange / EraseRange / ExtractRange.
  struct SplitOut {
    TermNodeId prefix, factor, suffix;
  };
  SplitOut SplitOutRange(size_t begin, size_t end, UpdateResult& result);
  /// Frees the position ids of every leaf under `t` (pre-sweep walk).
  void FreePositions(TermNodeId t);

  Term term_;
  std::vector<Label> letters_;        // by stable position id
  std::vector<TermNodeId> pos_leaf_;  // stable position id -> leaf term id
  std::vector<NodeId> free_ids_;
  size_t size_ = 0;
  UpdateResult result_;
  std::vector<uint32_t> seen_stamp_;  ///< FilterChanged dedupe marks
  uint32_t seen_epoch_ = 0;
  std::vector<TermNodeId> filter_out_;
  std::vector<TermNodeId> walk_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_FALGEBRA_WORD_AVL_H_
