// Dynamic maintenance of the balanced term under the edit operations of
// Definition 7.1 (the "tree hollowing" updates of §7).
//
// Every edit is realized as an O(1)-size local splice of the term, plus an
// O(log n) path recomputation, plus — when a subterm's height exceeds the
// balance envelope — a partial rebuild of the highest unbalanced subterm via
// the static encoder. The splice rules exploit the invariant that every
// hole is a whole-child-forest slot:
//
//  * relabel(n, l): relabel n's leaf symbol.
//  * insertR(n, l): the new node u goes immediately right of tree(n); splice
//    at n's root symbol:  a_t(n) ↦ a_t(n) ⊕HH a_t(u),
//                         a_□(n) ↦ a_□(n) ⊕VH a_t(u).
//  * insert(n, l) (first child): if n was a leaf, a_t(n) ↦ a_□(n) ⊙VH
//    a_t(u); otherwise u goes immediately left of n's (old) first child c:
//    a_t(c) ↦ a_t(u) ⊕HH a_t(c),  a_□(c) ↦ a_t(u) ⊕HV a_□(c).
//  * delete(n): remove a_t(n); if n was the sole child of m (i.e. a_t(n)
//    filled the hole of the context above a_□(m)), close the hole by
//    retyping the hole path of that context from a_□(m) upward
//    (⊕HV, ⊕VH ↦ ⊕HH; ⊙VV ↦ ⊙VH) — an O(log n) walk.
#ifndef TREENUM_FALGEBRA_UPDATE_H_
#define TREENUM_FALGEBRA_UPDATE_H_

#include <vector>

#include "falgebra/builder.h"
#include "falgebra/term.h"
#include "trees/unranked_tree.h"

namespace treenum {

/// What an update changed, for consumers maintaining per-term-node state
/// (the circuit boxes and enumeration index of Lemma 7.3).
struct UpdateResult {
  /// Term ids that are no longer alive.
  std::vector<TermNodeId> freed;
  /// New or structurally/label-modified ids together with all their
  /// ancestors up to the root, in an order where children precede parents.
  std::vector<TermNodeId> changed_bottom_up;
  /// Number of term nodes rebuilt by rebalancing (0 if none) — exposed for
  /// benchmarks measuring amortized update cost.
  size_t rebuilt_size = 0;
};

/// A tree paired with its balanced term encoding, kept in sync under edits.
class DynamicEncoding {
 public:
  /// Encodes `tree` (linear time).
  DynamicEncoding(UnrankedTree tree, size_t num_base_labels);

  const UnrankedTree& tree() const { return enc_.tree; }
  const Term& term() const { return enc_.term; }
  /// The leaf bijection φ: tree node → its leaf symbol's term id.
  TermNodeId LeafOf(NodeId n) const { return enc_.leaf_of[n]; }

  /// The returned reference aliases an internal scratch UpdateResult that
  /// is overwritten by the next edit (its vectors keep their capacity, so
  /// a steady-state relabel performs zero heap allocations). Copy it if it
  /// must outlive the next call.
  const UpdateResult& Relabel(NodeId n, Label l);
  const UpdateResult& InsertFirstChild(NodeId n, Label l,
                                       NodeId* new_node = nullptr);
  const UpdateResult& InsertRightSibling(NodeId n, Label l,
                                         NodeId* new_node = nullptr);
  const UpdateResult& DeleteLeaf(NodeId n);

  // ---- Structural transactions ----
  //
  // Each transaction is the join-based bulk counterpart of a leaf-edit
  // script: the minimal term region covering the subtree's leaves is cut
  // out and re-encoded once, the detached subtree is re-encoded as one
  // balanced subterm and spliced at its destination, and a single coalesced
  // UpdateResult reports the changed-box set for the whole operation.
  // Steady-state transactions reuse member scratch and perform no heap
  // allocations.

  /// Moves the subtree rooted at `v` (which must not contain `dst` and must
  /// not be the root) so it becomes the first child of `dst`
  /// (`as_first_child`) or the right sibling of `dst` (`dst` non-root).
  const UpdateResult& SubtreeMove(NodeId v, NodeId dst, bool as_first_child);

  /// Deletes the whole subtree rooted at `v` (non-root).
  const UpdateResult& SubtreeDelete(NodeId v);

  /// Deletes the subtree rooted at `v` (non-root) and assigns a copy of it
  /// (fresh ids, preorder) to `*extracted`.
  const UpdateResult& SubtreeExtract(NodeId v, UnrankedTree* extracted);

  /// Inserts a copy of `src`'s subtree at `src_root` as the first child /
  /// right sibling of `dst`. Reports the new subtree root through
  /// `*new_root` if non-null.
  const UpdateResult& GraftSubtree(const UnrankedTree& src, NodeId src_root,
                                   NodeId dst, bool as_first_child,
                                   NodeId* new_root = nullptr);

  /// Test hook: true iff every subterm of the current version respects the
  /// height envelope (frozen snapshot versions may legitimately keep the
  /// pre-rebuild shape and are not checked).
  bool CheckBalanced() const;

  /// Writable term access for the snapshot layer (pin/publish/drain).
  Term& mutable_term() { return enc_.term; }

 private:
  void EnsureLeafSlot(NodeId n);
  /// Re-points leaf_of at path-copied leaves (term remap log of this edit).
  void ApplyRemap();
  /// Recomputes counters from `from` to the root, rebalances if needed, and
  /// fills result.changed_bottom_up / freed / rebuilt_size.
  void FinishStructural(TermNodeId from, UpdateResult& result);
  /// Deduplicates / drops dead ids from result.changed_bottom_up.
  void FilterChangedPublic(UpdateResult& result);
  /// Clears and returns the scratch result (capacity preserved).
  UpdateResult& ResetResult();

  // -- transaction machinery --
  /// DFS-lists subtree(v) into sub_nodes_ and stamps every member in
  /// tree_stamp_ (query with InSubtree until the next MarkSubtree).
  void MarkSubtree(NodeId v);
  bool InSubtree(NodeId n) const {
    return n < tree_stamp_.size() && tree_stamp_[n] == tree_epoch_;
  }
  /// Cuts subtree(v)'s leaves out of the term: finds the minimal covering
  /// region X, detaches v in the tree, re-encodes X's surviving pieces and
  /// swaps the region. Requires MarkSubtree(v) and term.BeginEdit() first.
  /// Leaves leaf_of[] of subtree nodes stale (caller re-encodes or clears).
  void CutRegion(NodeId v, UpdateResult& result);
  /// Splices the detached tree-typed subterm `sub` (encoding the already
  /// tree-attached subtree whose destination anchor is `dst`) into the term;
  /// returns the new splice node. `dst_was_leaf` is dst's leaf-ness before
  /// the tree attach.
  TermNodeId SpliceDetached(TermNodeId sub, NodeId dst, bool as_first_child,
                            bool dst_was_leaf, UpdateResult& result);
  /// Rebuilds envelope-violating changed subterms (root-most first) until
  /// the current version is balanced again.
  void RebalanceLoop(UpdateResult& result);
  /// RebalanceLoop + sweep + leaf remap + changed-list filtering.
  void FinishTransaction(UpdateResult& result);
  /// Keeps the last occurrence of each id, preserving order, drops dead ids.
  void FilterChanged(std::vector<TermNodeId>& v);

  Encoding enc_;
  UpdateResult result_;

  // Scratch reused across transactions (steady state allocates nothing).
  EncodeScratch enc_scratch_;
  std::vector<Piece> pieces_;     ///< region decomposition (CollectPieces)
  std::vector<Piece> remaining_;  ///< pieces surviving the cut
  std::vector<NodeId> sub_nodes_;
  std::vector<uint32_t> tree_stamp_;
  uint32_t tree_epoch_ = 0;
  std::vector<TermNodeId> lca_path_;
  std::vector<uint32_t> term_stamp_;  ///< marks nodes with known meet point
  std::vector<uint32_t> term_reach_;  ///< index into lca_path_ of that meet
  uint32_t term_epoch_ = 0;
  std::vector<uint32_t> seen_stamp_;  ///< FilterChanged dedupe marks
  uint32_t seen_epoch_ = 0;
  std::vector<TermNodeId> filter_out_;
  std::vector<TermNodeId> path_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_FALGEBRA_UPDATE_H_
