// Parameterized end-to-end sweeps for the word/spanner pipeline: several
// regex spanners, random words, random edit scripts (including bulk moves),
// all cross-checked against the WVA brute-force oracle.
#include <gtest/gtest.h>

#include "automata/regex_spanner.h"
#include "core/word_enumerator.h"
#include "util/random.h"

namespace treenum {
namespace {

struct SpannerConfig {
  const char* name;
  const char* pattern;
  size_t num_labels;
  size_t num_vars;
};

class SpannerSweepTest : public ::testing::TestWithParam<SpannerConfig> {};

TEST_P(SpannerSweepTest, StaticAgainstBruteForce) {
  const SpannerConfig& cfg = GetParam();
  Wva q = CompileRegexSpanner(cfg.pattern, cfg.num_labels, cfg.num_vars);
  Rng rng(0xABCD);
  for (int trial = 0; trial < 15; ++trial) {
    size_t n = 1 + rng.Index(9);
    Word w;
    for (size_t i = 0; i < n; ++i) {
      w.push_back(static_cast<Label>(rng.Index(cfg.num_labels)));
    }
    WordEnumerator e(w, q);
    EXPECT_EQ(e.EnumerateAllByPosition(), q.BruteForceAssignments(w))
        << "trial " << trial;
  }
}

TEST_P(SpannerSweepTest, EditScriptAgainstBruteForce) {
  const SpannerConfig& cfg = GetParam();
  Wva q = CompileRegexSpanner(cfg.pattern, cfg.num_labels, cfg.num_vars);
  Rng rng(0xBEEF);
  Word ref{0, 1};
  WordEnumerator e(ref, q);
  for (int step = 0; step < 120; ++step) {
    switch (rng.Index(4)) {
      case 0: {
        size_t pos = rng.Index(ref.size() + 1);
        Label l = static_cast<Label>(rng.Index(cfg.num_labels));
        ref.insert(ref.begin() + pos, l);
        e.Insert(pos, l);
        break;
      }
      case 1: {
        if (ref.size() <= 1) break;
        size_t pos = rng.Index(ref.size());
        ref.erase(ref.begin() + pos);
        e.Erase(pos);
        break;
      }
      case 2: {
        size_t pos = rng.Index(ref.size());
        Label l = static_cast<Label>(rng.Index(cfg.num_labels));
        ref[pos] = l;
        e.Replace(pos, l);
        break;
      }
      case 3: {
        if (ref.size() < 2) break;
        size_t begin = rng.Index(ref.size() - 1);
        size_t end = begin + 1 + rng.Index(ref.size() - begin - 1);
        size_t dst = rng.Index(ref.size() - (end - begin) + 1);
        Word factor(ref.begin() + begin, ref.begin() + end);
        ref.erase(ref.begin() + begin, ref.begin() + end);
        ref.insert(ref.begin() + dst, factor.begin(), factor.end());
        e.MoveRange(begin, end, dst);
        break;
      }
    }
    if (ref.size() <= 9) {
      ASSERT_EQ(e.EnumerateAllByPosition(), q.BruteForceAssignments(ref))
          << cfg.name << " step " << step;
    } else {
      WordEnumerator fresh(ref, q);
      ASSERT_EQ(e.EnumerateAllByPosition(), fresh.EnumerateAllByPosition())
          << cfg.name << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SpannerSweepTest,
    ::testing::Values(
        SpannerConfig{"AnyB", ".*<0:b>.*", 2, 1},
        SpannerConfig{"BBeforeOnlyAs", "a*<0:b>.*", 2, 1},
        SpannerConfig{"BThenC", ".*<0:b>c+.*|.*<0:b>c+", 3, 1},
        SpannerConfig{"Pairs", ".*<0:a>.*<1:b>.*", 2, 2},
        SpannerConfig{"Anchored", "<0:.>.*", 2, 1},
        SpannerConfig{"AltStar", "(a|b)*<0:c>(a|b)*", 3, 1}),
    [](const ::testing::TestParamInfo<SpannerConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace treenum
