// QueryCache — process-wide hash-consed cache of compiled query plans.
//
// Compiling a registered query is the expensive half of registration:
// translation to the binary term alphabet, homogenization (Lemma 2.1) and
// canonicalization all cost poly(|Q|), while admitting the compiled plan
// to a document is cheap. PR 5's registry dedupes registrations *within*
// one document; a multi-tenant server runs many documents sharing few
// distinct queries, so this cache hoists compilation process-wide, in the
// style of libfive's `Cache::instance()`: every DynamicDocument (and
// every DocumentShardServer shard worker) routes compilation through one
// cache, and automaton-identical queries — across all documents — share a
// single immutable `HomogenizedTva`.
//
// Two lookup levels, both exact:
//
//   * Source map: pre-translation fingerprint (FingerprintUnrankedTva /
//     FingerprintWva) confirmed by structural equality with a retained
//     copy of the source automaton. A source hit returns the compiled
//     plan with ZERO translation/homogenization/canonicalization work —
//     the common case once any document has seen the query.
//   * Canonical map: the PR 5 canonical fingerprint confirmed by exact
//     HomogenizedTvaEqual, so fingerprint collisions fall back to
//     structural comparison and distinct queries never alias. Queries
//     whose sources differ (or were renumbered) but whose canonical forms
//     coincide converge here to one plan.
//
// Handles are `shared_ptr<const HomogenizedTva>` whose deleter notifies
// the cache (libfive's Cache::del idiom): while any document, pipeline or
// caller holds a handle the entry is pinned; at refcount zero it stays
// *warm* for cheap re-acquisition until the retention cap evicts it (LRU).
// The cache must outlive every handle it issued; `Global()` is leaked for
// exactly that reason.
//
// Thread safety: every public member is safe from any thread. Compilation
// runs outside the lock (concurrent cold compiles of the same query are
// benign — the second interns into the first's entry); the grouped-CSR
// delta cache of each plan is built eagerly before the first handle is
// published, so shard workers can build pipelines over one shared plan
// concurrently without racing its lazy initialization.
//
// Whole-cache images (SaveCache / WarmStart, automata/serialize.h) make
// restarts warm: a warm-started process re-registers its query library
// through the source map without compiling anything.
#ifndef TREENUM_AUTOMATA_QUERY_CACHE_H_
#define TREENUM_AUTOMATA_QUERY_CACHE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/homogenize.h"
#include "automata/unranked_tva.h"
#include "automata/wva.h"

namespace treenum {

/// Process-wide, thread-safe, refcounted hash-consing cache of compiled
/// query plans (see the file comment for the design).
class QueryCache {
 public:
  /// A refcounted reference to one cached compiled plan. All handles to
  /// the same plan point at the same object (pointer identity ==
  /// automaton identity). The cache must outlive every handle.
  using Handle = std::shared_ptr<const HomogenizedTva>;

  /// Default cap on *unreferenced* (warm) plans retained for cheap
  /// re-acquisition; pinned plans are never evicted and never counted.
  static constexpr size_t kDefaultRetentionCap = 1024;

  /// Cache observability counters (see stats()). Counter semantics are
  /// lifetime totals; `entries` / `unreferenced_entries` /
  /// `source_entries` are current gauges.
  struct Stats {
    uint64_t lookups = 0;          ///< CompileTree/CompileWord/Intern calls.
    uint64_t source_hits = 0;      ///< Served by the pre-translation map.
    uint64_t canonical_hits = 0;   ///< Served by the canonical map.
    uint64_t translations = 0;     ///< Source-to-binary translations paid.
    uint64_t homogenizations = 0;  ///< Homogenization passes paid.
    uint64_t canonicalizations = 0;  ///< Canonicalization passes paid.
    uint64_t insertions = 0;       ///< New canonical entries created.
    uint64_t collisions = 0;       ///< Fingerprint matches refuted by
                                   ///< exact comparison (either map).
    uint64_t evictions = 0;        ///< Warm entries dropped by the cap.
    size_t entries = 0;            ///< Live compiled plans.
    size_t unreferenced_entries = 0;  ///< Warm (refcount-zero) plans.
    size_t source_entries = 0;     ///< Pre-translation source links.
  };

  QueryCache();
  ~QueryCache();

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The process-wide instance every document uses by default.
  /// Intentionally leaked: handles held by static-lifetime objects must
  /// never outlive the cache.
  static QueryCache& Global();

  // ---- Lookup / compilation ----

  /// Returns the compiled plan for a tree query, compiling it only if no
  /// structurally equal source (and no canonically equal plan) is cached.
  Handle CompileTree(const UnrankedTva& query);
  /// Returns the compiled plan for a word query (WVA / spanner).
  Handle CompileWord(const Wva& query);
  /// Hash-conses an already-homogenized automaton: canonicalizes it, then
  /// returns the cached plan if one is canonically equal, else interns
  /// `homog` as a new plan.
  Handle Intern(HomogenizedTva homog);

  // ---- Retention policy ----

  /// Caps how many unreferenced plans stay warm; beyond it the LRU warm
  /// entries (and their source links) are evicted. Pinned plans are
  /// unaffected.
  void set_retention_cap(size_t cap);
  /// Current warm-retention cap.
  size_t retention_cap() const;
  /// Drops every unreferenced plan and its source links regardless of the
  /// cap; returns how many were dropped. Pinned plans survive.
  size_t Clear();
  /// Counter/gauge snapshot.
  Stats stats() const;

  // ---- Whole-cache serialization ----

  /// Writes every cached plan plus its source links as one checksummed
  /// record (automata/serialize.h). Returns false iff the write fails.
  bool SaveCache(std::ostream& out) const;
  /// SaveCache to a file path.
  bool SaveCache(const std::string& path) const;
  /// Restores plans saved by SaveCache into this cache (merging with its
  /// current contents) and returns how many records were admitted. On
  /// malformed input restores nothing, returns 0 and fills `*error`.
  size_t WarmStart(std::istream& in, std::string* error = nullptr);
  /// WarmStart from a file path.
  size_t WarmStart(const std::string& path, std::string* error = nullptr);

  // ---- Test hooks ----

  /// Forces every fingerprint (source and canonical) to one constant so
  /// tests can drive the exact-comparison collision fallback; never set
  /// in production.
  void set_test_force_fingerprint_collisions(bool on);

 private:
  /// One cached plan: the owning pointer, the canonical fingerprint it is
  /// indexed under, and the pin/LRU bookkeeping. `automaton == nullptr`
  /// marks a free slot.
  struct Entry {
    uint64_t fingerprint = 0;
    std::shared_ptr<const HomogenizedTva> automaton;
    size_t external_refs = 0;
    uint64_t last_use = 0;
  };

  /// One pre-translation source link: a retained copy of the source
  /// automaton (for exact confirmation) and the plan it compiled to.
  struct SourceEntry {
    bool is_word = false;
    std::unique_ptr<UnrankedTva> tree_src;
    std::unique_ptr<Wva> word_src;
    size_t slot = 0;
  };

  uint64_t CanonicalFingerprintLocked(const HomogenizedTva& a) const;
  uint64_t SourceKeyLocked(bool is_word, uint64_t raw_fingerprint) const;
  /// Finds the plan slot a structurally equal source maps to; kNoSlot if
  /// none.
  size_t FindSourceLocked(uint64_t key, bool is_word, const UnrankedTva* tq,
                          const Wva* wq);
  /// Links a source automaton to `slot` unless an equal source exists.
  void AddSourceLocked(uint64_t key, bool is_word, const UnrankedTva* tq,
                       const Wva* wq, size_t slot);
  /// Canonical-map lookup/insert of an already-canonical automaton.
  size_t InternCanonicalLocked(HomogenizedTva&& homog);
  /// Pins `slot` and wraps it in a deleter-notifying Handle.
  Handle AcquireLocked(size_t slot);
  /// Deleter notification: unpins `slot`, possibly triggering eviction.
  void Release(size_t slot);
  /// Evicts LRU warm entries until the retention cap holds.
  void EnforceCapLocked();
  /// Drops one warm entry: maps, source links, slot free list.
  void EvictLocked(size_t slot);

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::vector<size_t> free_slots_;
  std::unordered_multimap<uint64_t, size_t> by_fingerprint_;
  std::unordered_multimap<uint64_t, SourceEntry> sources_;
  size_t retention_cap_ = kDefaultRetentionCap;
  size_t unreferenced_ = 0;
  uint64_t clock_ = 0;
  bool test_collide_ = false;

  // Lifetime counters (under mu_; see Stats).
  uint64_t lookups_ = 0;
  uint64_t source_hits_ = 0;
  uint64_t canonical_hits_ = 0;
  uint64_t translations_ = 0;
  uint64_t homogenizations_ = 0;
  uint64_t canonicalizations_ = 0;
  uint64_t insertions_ = 0;
  uint64_t collisions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_QUERY_CACHE_H_
