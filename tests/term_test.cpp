#include "falgebra/term.h"

#include <gtest/gtest.h>

#include "falgebra/alphabet.h"

namespace treenum {
namespace {

TEST(TermAlphabet, LabelLayout) {
  TermAlphabet a(3);
  EXPECT_EQ(a.num_labels(), 11u);
  EXPECT_TRUE(a.IsTreeLeaf(a.TreeLeaf(2)));
  EXPECT_TRUE(a.IsContextLeaf(a.ContextLeaf(0)));
  EXPECT_TRUE(a.IsOp(a.Op(TermOp::kApplyVH)));
  EXPECT_EQ(a.BaseLabel(a.ContextLeaf(2)), 2u);
  EXPECT_EQ(a.BaseLabel(a.TreeLeaf(1)), 1u);
  EXPECT_EQ(a.OpOf(a.Op(TermOp::kApplyVV)), TermOp::kApplyVV);
}

TEST(TermAlphabet, OperatorTyping) {
  EXPECT_FALSE(OpYieldsContext(TermOp::kConcatHH));
  EXPECT_TRUE(OpYieldsContext(TermOp::kConcatHV));
  EXPECT_TRUE(OpYieldsContext(TermOp::kConcatVH));
  EXPECT_TRUE(OpYieldsContext(TermOp::kApplyVV));
  EXPECT_FALSE(OpYieldsContext(TermOp::kApplyVH));
  EXPECT_FALSE(OpLeftIsContext(TermOp::kConcatHV));
  EXPECT_TRUE(OpRightIsContext(TermOp::kConcatHV));
  EXPECT_TRUE(OpLeftIsContext(TermOp::kApplyVH));
  EXPECT_FALSE(OpRightIsContext(TermOp::kApplyVH));
}

// Builds the term  (a_□(0) ⊙VH (a_t(1) ⊕HH a_t(2)))  representing the tree
// with root node 0 and children 1, 2.
Term SmallTerm() {
  Term term(TermAlphabet{2});
  const TermAlphabet& a = term.alphabet();
  TermNodeId c = term.NewLeaf(a.ContextLeaf(0), 0);
  TermNodeId l1 = term.NewLeaf(a.TreeLeaf(1), 1);
  TermNodeId l2 = term.NewLeaf(a.TreeLeaf(1), 2);
  TermNodeId f = term.NewNode(TermOp::kConcatHH, l1, l2);
  TermNodeId root = term.NewNode(TermOp::kApplyVH, c, f);
  term.set_root(root);
  return term;
}

TEST(Term, CountersAndValidate) {
  Term term = SmallTerm();
  EXPECT_EQ(term.Validate(), "");
  const TermNode& root = term.node(term.root());
  EXPECT_EQ(root.size, 3u);
  EXPECT_EQ(root.height, 2u);
  EXPECT_FALSE(root.is_context);
}

TEST(Term, DecodeRepresentedTree) {
  Term term = SmallTerm();
  std::vector<NodeId> map;
  UnrankedTree t = term.Decode(&map);
  EXPECT_EQ(t.ToString(), "(a (b) (b))");
}

TEST(Term, DecodeDeepContextComposition) {
  // a_□(0) ⊙VV a_□(1) ⊙VH a_t(2)  =  (a (b (c))) with labels 0,1,2.
  Term term(TermAlphabet{3});
  const TermAlphabet& a = term.alphabet();
  TermNodeId c0 = term.NewLeaf(a.ContextLeaf(0), 0);
  TermNodeId c1 = term.NewLeaf(a.ContextLeaf(1), 1);
  TermNodeId t2 = term.NewLeaf(a.TreeLeaf(2), 2);
  TermNodeId vv = term.NewNode(TermOp::kApplyVV, c0, c1);
  TermNodeId root = term.NewNode(TermOp::kApplyVH, vv, t2);
  term.set_root(root);
  EXPECT_EQ(term.Validate(), "");
  UnrankedTree t = term.Decode();
  EXPECT_EQ(t.ToString(), "(a (b (c)))");
}

TEST(Term, DecodeSiblingAroundContext) {
  // (a_t(1) ⊕HV a_□(0)) ⊙VH a_t(2): tree 0 has child 2; node 1 is 0's left
  // sibling — the whole thing is a forest, so wrap under a root context.
  Term term(TermAlphabet{4});
  const TermAlphabet& a = term.alphabet();
  TermNodeId sib = term.NewLeaf(a.TreeLeaf(1), 1);
  TermNodeId ctx = term.NewLeaf(a.ContextLeaf(0), 0);
  TermNodeId hv = term.NewNode(TermOp::kConcatHV, sib, ctx);
  TermNodeId leaf = term.NewLeaf(a.TreeLeaf(2), 2);
  TermNodeId forest = term.NewNode(TermOp::kApplyVH, hv, leaf);
  TermNodeId top = term.NewLeaf(a.ContextLeaf(3), 3);
  TermNodeId root = term.NewNode(TermOp::kApplyVH, top, forest);
  term.set_root(root);
  EXPECT_EQ(term.Validate(), "");
  UnrankedTree t = term.Decode();
  EXPECT_EQ(t.ToString(), "(d (b) (a (c)))");
}

TEST(Term, ReplaceChildAndSplice) {
  Term term = SmallTerm();
  const TermAlphabet& a = term.alphabet();
  // Splice a new sibling right of leaf node 2's symbol.
  TermNodeId l2 = kNoTerm;
  for (TermNodeId id = 0; id < term.id_bound(); ++id) {
    if (term.IsAlive(id) && term.IsLeaf(id) && term.node(id).tree_node == 2) {
      l2 = id;
    }
  }
  ASSERT_NE(l2, kNoTerm);
  TermNodeId fresh = term.NewLeaf(a.TreeLeaf(0), 7);
  TermNodeId nn = term.SpliceOp(TermOp::kConcatHH, l2, fresh, false);
  term.RecomputeUp(nn);
  EXPECT_EQ(term.Validate(), "");
  EXPECT_EQ(term.Decode().ToString(), "(a (b) (b) (a))");
}

TEST(Term, ValidateCatchesTypeErrors) {
  Term term(TermAlphabet{2});
  const TermAlphabet& a = term.alphabet();
  TermNodeId l1 = term.NewLeaf(a.TreeLeaf(0), 0);
  TermNodeId l2 = term.NewLeaf(a.TreeLeaf(0), 1);
  TermNodeId n = term.NewNode(TermOp::kConcatHH, l1, l2);
  term.set_root(n);
  EXPECT_EQ(term.Validate(), "");
  term.SetLabel(l1, a.ContextLeaf(0));  // type now inconsistent
  EXPECT_NE(term.Validate(), "");
}

TEST(Term, FreeSubtermReclaimsIds) {
  Term term = SmallTerm();
  size_t before = term.num_alive();
  std::vector<TermNodeId> freed;
  term.FreeSubterm(term.node(term.root()).right, &freed);
  EXPECT_EQ(freed.size(), 3u);
  EXPECT_EQ(term.num_alive(), before - 3);
}

}  // namespace
}  // namespace treenum
