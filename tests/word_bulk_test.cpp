// Bulk word updates (MoveRange): AVL split/join correctness, balance, and
// end-to-end maintenance through the WordEnumerator.
#include <gtest/gtest.h>

#include "automata/regex_spanner.h"
#include "core/word_enumerator.h"
#include "falgebra/word_avl.h"
#include "util/random.h"

namespace treenum {
namespace {

Word MakeWord(const std::string& s) { return ToWord(s); }

void RefMove(Word& w, size_t begin, size_t end, size_t dst) {
  Word factor(w.begin() + begin, w.begin() + end);
  w.erase(w.begin() + begin, w.begin() + end);
  w.insert(w.begin() + dst, factor.begin(), factor.end());
}

TEST(WordBulk, MoveSmall) {
  WordEncoding enc(MakeWord("abcdef"), 6);
  enc.MoveRange(1, 3, 0);  // move "bc" to the front
  EXPECT_EQ(enc.Current(), MakeWord("bcadef"));
  EXPECT_TRUE(enc.CheckBalanced());
  EXPECT_EQ(enc.term().Validate(), "");
}

TEST(WordBulk, MoveToEnd) {
  WordEncoding enc(MakeWord("abcdef"), 6);
  enc.MoveRange(0, 2, 4);  // move "ab" behind "cdef"
  EXPECT_EQ(enc.Current(), MakeWord("cdefab"));
  EXPECT_TRUE(enc.CheckBalanced());
}

TEST(WordBulk, MoveWholeWordIsNoop) {
  WordEncoding enc(MakeWord("abc"), 3);
  enc.MoveRange(0, 3, 0);
  EXPECT_EQ(enc.Current(), MakeWord("abc"));
  EXPECT_EQ(enc.term().Validate(), "");
}

TEST(WordBulk, SingleLetterMove) {
  WordEncoding enc(MakeWord("abcd"), 4);
  enc.MoveRange(3, 4, 0);
  EXPECT_EQ(enc.Current(), MakeWord("dabc"));
}

TEST(WordBulk, RandomMovesMatchVector) {
  Rng rng(601);
  for (int trial = 0; trial < 10; ++trial) {
    Word ref;
    size_t n = 2 + rng.Index(60);
    for (size_t i = 0; i < n; ++i) {
      ref.push_back(static_cast<Label>(rng.Index(3)));
    }
    WordEncoding enc(ref, 3);
    for (int step = 0; step < 80; ++step) {
      size_t begin = rng.Index(ref.size());
      size_t end = begin + 1 + rng.Index(ref.size() - begin);
      size_t dst = rng.Index(ref.size() - (end - begin) + 1);
      RefMove(ref, begin, end, dst);
      enc.MoveRange(begin, end, dst);
      ASSERT_EQ(enc.Current(), ref) << "trial " << trial << " step " << step;
      ASSERT_TRUE(enc.CheckBalanced());
      ASSERT_EQ(enc.term().Validate(), "");
    }
  }
}

TEST(WordBulk, PositionIdsSurviveMoves) {
  WordEncoding enc(MakeWord("abcde"), 5);
  NodeId id_c = enc.PositionId(2);
  enc.MoveRange(2, 4, 0);  // "cdabe"
  EXPECT_EQ(enc.PositionOf(id_c), 0u);
  enc.MoveRange(0, 1, 4);  // "dabec"
  EXPECT_EQ(enc.PositionOf(id_c), 4u);
}

TEST(WordBulk, ChangedListIsChildrenFirstAndAlive) {
  Rng rng(607);
  Word ref;
  for (size_t i = 0; i < 100; ++i) {
    ref.push_back(static_cast<Label>(rng.Index(2)));
  }
  WordEncoding enc(ref, 2);
  for (int step = 0; step < 30; ++step) {
    size_t begin = rng.Index(ref.size() - 1);
    size_t end = begin + 1 + rng.Index(ref.size() - begin - 1);
    size_t dst = rng.Index(ref.size() - (end - begin) + 1);
    UpdateResult r = enc.MoveRange(begin, end, dst);
    RefMove(ref, begin, end, dst);
    for (size_t i = 0; i < r.changed_bottom_up.size(); ++i) {
      ASSERT_TRUE(enc.term().IsAlive(r.changed_bottom_up[i]));
      for (size_t j = i + 1; j < r.changed_bottom_up.size(); ++j) {
        // No ancestor before descendant.
        TermNodeId x = r.changed_bottom_up[j];
        while (x != kNoTerm && x != r.changed_bottom_up[i]) {
          x = enc.term().node(x).parent;
        }
        ASSERT_EQ(x, kNoTerm);
      }
    }
  }
  EXPECT_EQ(enc.Current(), ref);
}

TEST(WordBulk, MoveCostLogarithmic) {
  // Structural changes per move should be O(log n): compare counts at two
  // sizes.
  auto changes_for = [](size_t n) {
    Rng rng(613);
    Word w(n, 0);
    WordEncoding enc(w, 2);
    size_t total = 0;
    const int kMoves = 50;
    for (int i = 0; i < kMoves; ++i) {
      size_t begin = rng.Index(n / 2);
      size_t end = begin + 1 + rng.Index(n / 4);
      size_t dst = rng.Index(n - (end - begin));
      UpdateResult r = enc.MoveRange(begin, end, dst);
      total += r.changed_bottom_up.size() + r.freed.size();
    }
    return total / kMoves;
  };
  size_t small = changes_for(1024);
  size_t large = changes_for(65536);
  // log2(65536)/log2(1024) = 1.6; allow generous slack but rule out linear
  // growth (which would be a 64x ratio).
  EXPECT_LE(large, 4 * small);
}

TEST(WordBulk, EndToEndSpannerMaintenance) {
  Rng rng(617);
  Wva q = CompileRegexSpanner(".*<0:b>c+.*|.*<0:b>c+", 3, 1);
  Word ref = ToWord("abcabcbcc");
  WordEnumerator e(ref, q);
  for (int step = 0; step < 40; ++step) {
    size_t begin = rng.Index(ref.size() - 1);
    size_t end = begin + 1 + rng.Index(ref.size() - begin - 1);
    size_t dst = rng.Index(ref.size() - (end - begin) + 1);
    e.MoveRange(begin, end, dst);
    RefMove(ref, begin, end, dst);
    ASSERT_EQ(e.EnumerateAllByPosition(), q.BruteForceAssignments(ref))
        << "step " << step;
  }
}

}  // namespace
}  // namespace treenum
