#include "trees/unranked_tree.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace treenum {
namespace {

TEST(UnrankedTree, SingleRoot) {
  UnrankedTree t(3);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.label(t.root()), 3u);
  EXPECT_TRUE(t.IsLeaf(t.root()));
  EXPECT_EQ(t.parent(t.root()), kNoNode);
  EXPECT_EQ(t.Height(), 0u);
}

TEST(UnrankedTree, AppendChildOrder) {
  UnrankedTree t(0);
  NodeId a = t.AppendChild(t.root(), 1);
  NodeId b = t.AppendChild(t.root(), 2);
  ASSERT_EQ(t.children(t.root()).size(), 2u);
  EXPECT_EQ(t.children(t.root())[0], a);
  EXPECT_EQ(t.children(t.root())[1], b);
  EXPECT_EQ(t.Depth(a), 1u);
}

TEST(UnrankedTree, InsertFirstChild) {
  UnrankedTree t(0);
  NodeId a = t.AppendChild(t.root(), 1);
  NodeId u = t.InsertFirstChild(t.root(), 5);
  EXPECT_EQ(t.children(t.root())[0], u);
  EXPECT_EQ(t.children(t.root())[1], a);
  EXPECT_EQ(t.size(), 3u);
}

TEST(UnrankedTree, InsertRightSibling) {
  UnrankedTree t(0);
  NodeId a = t.AppendChild(t.root(), 1);
  NodeId b = t.AppendChild(t.root(), 2);
  NodeId u = t.InsertRightSibling(a, 7);
  const auto& ch = t.children(t.root());
  ASSERT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch[0], a);
  EXPECT_EQ(ch[1], u);
  EXPECT_EQ(ch[2], b);
}

TEST(UnrankedTree, InsertRightSiblingOfRootThrows) {
  UnrankedTree t(0);
  EXPECT_THROW(t.InsertRightSibling(t.root(), 1), std::invalid_argument);
}

TEST(UnrankedTree, DeleteLeaf) {
  UnrankedTree t(0);
  NodeId a = t.AppendChild(t.root(), 1);
  NodeId b = t.AppendChild(a, 2);
  EXPECT_THROW(t.DeleteLeaf(a), std::invalid_argument);  // not a leaf
  t.DeleteLeaf(b);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.IsLeaf(a));
  EXPECT_FALSE(t.IsAlive(b));
  EXPECT_THROW(t.DeleteLeaf(t.root()), std::invalid_argument);
}

TEST(UnrankedTree, NodeIdsStableAcrossEdits) {
  UnrankedTree t(0);
  NodeId a = t.AppendChild(t.root(), 1);
  NodeId b = t.AppendChild(t.root(), 2);
  t.DeleteLeaf(a);
  NodeId c = t.AppendChild(b, 3);
  EXPECT_TRUE(t.IsAlive(b));
  EXPECT_TRUE(t.IsAlive(c));
  EXPECT_EQ(t.label(b), 2u);
}

TEST(UnrankedTree, ParseToStringRoundtrip) {
  std::string s = "(a (b) (c (d) (e)) (b))";
  UnrankedTree t = UnrankedTree::Parse(s);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.ToString(), s);
}

TEST(UnrankedTree, ParseRejectsGarbage) {
  EXPECT_THROW(UnrankedTree::Parse("(a (b)"), std::invalid_argument);
  EXPECT_THROW(UnrankedTree::Parse("a"), std::invalid_argument);
  EXPECT_THROW(UnrankedTree::Parse("(a) junk"), std::invalid_argument);
}

TEST(UnrankedTree, EqualityIsStructural) {
  UnrankedTree a = UnrankedTree::Parse("(a (b) (c))");
  UnrankedTree b = UnrankedTree::Parse("(a (b) (c))");
  UnrankedTree c = UnrankedTree::Parse("(a (c) (b))");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(UnrankedTree, PreorderNodes) {
  UnrankedTree t = UnrankedTree::Parse("(a (b (d)) (c))");
  std::vector<NodeId> pre = t.PreorderNodes();
  ASSERT_EQ(pre.size(), 4u);
  EXPECT_EQ(t.label(pre[0]), 0u);  // a
  EXPECT_EQ(t.label(pre[1]), 1u);  // b
  EXPECT_EQ(t.label(pre[2]), 3u);  // d
  EXPECT_EQ(t.label(pre[3]), 2u);  // c
}

TEST(UnrankedTree, Generators) {
  Rng rng(5);
  UnrankedTree r = RandomTree(200, 3, rng);
  EXPECT_EQ(r.size(), 200u);
  UnrankedTree p = PathTree(50, 2, rng);
  EXPECT_EQ(p.size(), 50u);
  EXPECT_EQ(p.Height(), 49u);
  UnrankedTree k = KaryTree(100, 3, 2, rng);
  EXPECT_EQ(k.size(), 100u);
  EXPECT_LE(k.Height(), 6u);
}

}  // namespace
}  // namespace treenum
