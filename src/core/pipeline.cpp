#include "core/pipeline.h"

#include <algorithm>
#include <cassert>

namespace treenum {

EnumerationPipeline::EnumerationPipeline(const Term* term, HomogenizedTva homog,
                                         BoxEnumMode mode)
    : term_(term),
      homog_(std::move(homog)),
      circuit_(term, &homog_.tva, &homog_.kind),
      index_(&circuit_),
      mode_(mode) {
  circuit_.BuildAll();
  if (mode_ == BoxEnumMode::kIndexed) index_.BuildAll();
}

void EnumerationPipeline::EnableCounting() {
  if (counter_) return;
  counter_ = std::make_unique<RunCounter>(&circuit_);
  counter_->BuildAll();
}

uint64_t EnumerationPipeline::AcceptingRuns() const {
  assert(!in_batch_ && "querying during an open batch is unsupported");
  if (in_batch_) return 0;
  return counter_ ? counter_->TotalAcceptingRuns() : 0;
}

void EnumerationPipeline::RefreshBox(TermNodeId id) {
  circuit_.RebuildBox(id);
  if (mode_ == BoxEnumMode::kIndexed) index_.RebuildBoxIndex(id);
  if (counter_) counter_->RebuildBoxCounts(id);
}

void EnumerationPipeline::ReleaseBox(TermNodeId id) {
  circuit_.FreeBox(id);
  if (mode_ == BoxEnumMode::kIndexed) index_.FreeBoxIndex(id);
  if (counter_) counter_->FreeBoxCounts(id);
}

UpdateStats EnumerationPipeline::Apply(const UpdateResult& result) {
  UpdateStats stats;
  stats.edits_applied = 1;
  stats.rebuilt_size = result.rebuilt_size;
  if (in_batch_) {
    batch_freed_.insert(batch_freed_.end(), result.freed.begin(),
                        result.freed.end());
    batch_changed_.insert(batch_changed_.end(),
                          result.changed_bottom_up.begin(),
                          result.changed_bottom_up.end());
    return stats;  // boxes refreshed at CommitBatch
  }
  for (TermNodeId id : result.freed) ReleaseBox(id);
  for (TermNodeId id : result.changed_bottom_up) RefreshBox(id);
  stats.boxes_recomputed = result.changed_bottom_up.size();
  return stats;
}

void EnumerationPipeline::BeginBatch() {
  assert(!in_batch_ && "nested batches are not supported");
  in_batch_ = true;
}

UpdateStats EnumerationPipeline::CommitBatch() {
  assert(in_batch_);
  in_batch_ = false;

  UpdateStats stats;

  // Free each slot that is dead *now*; a slot freed mid-batch and then
  // re-allocated by a later edit is alive and will be rebuilt below.
  std::sort(batch_freed_.begin(), batch_freed_.end());
  batch_freed_.erase(std::unique(batch_freed_.begin(), batch_freed_.end()),
                     batch_freed_.end());
  for (TermNodeId id : batch_freed_) {
    if (!term_->IsAlive(id)) ReleaseBox(id);
  }

  // Coalesce: every alive changed node once, deepest first. Each edit's
  // changed_bottom_up conservatively includes the full path to the root,
  // so the union covers every node whose box inputs may have changed;
  // depth order guarantees children are rebuilt before their parents.
  std::sort(batch_changed_.begin(), batch_changed_.end());
  batch_changed_.erase(
      std::unique(batch_changed_.begin(), batch_changed_.end()),
      batch_changed_.end());
  std::vector<std::pair<uint32_t, TermNodeId>>& order = order_scratch_;
  order.clear();
  order.reserve(batch_changed_.size());
  for (TermNodeId id : batch_changed_) {
    if (!term_->IsAlive(id)) continue;
    uint32_t depth = 0;
    for (TermNodeId p = term_->node(id).parent; p != kNoTerm;
         p = term_->node(p).parent) {
      ++depth;
    }
    order.emplace_back(depth, id);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  // Pre-grow the circuit and index arenas for the whole transaction so the
  // refresh loop below never re-grows a pool tail mid-batch.
  circuit_.ReserveForRebuild(order.size());
  if (mode_ == BoxEnumMode::kIndexed) index_.ReserveForRebuild(order.size());
  for (const auto& [depth, id] : order) RefreshBox(id);
  stats.boxes_recomputed = order.size();

  batch_freed_.clear();
  batch_changed_.clear();
  return stats;
}

bool EnumerationPipeline::EmptyAssignmentSatisfies() const {
  assert(!in_batch_ && "querying during an open batch is unsupported");
  // Release-mode safety: boxes of term nodes created mid-batch do not
  // exist until commit, so reading the root box would be out of bounds.
  if (in_batch_) return false;
  const Box box = circuit_.box(term_->root());
  for (State q : homog_.tva.final_states()) {
    if (homog_.kind[q] == 0 && box.gamma(q) == GateKind::kTop) return true;
  }
  return false;
}

std::vector<uint32_t> EnumerationPipeline::FinalGamma() const {
  assert(!in_batch_ && "querying during an open batch is unsupported");
  std::vector<uint32_t> gamma;
  if (in_batch_) return gamma;
  const Box box = circuit_.box(term_->root());
  for (State q : homog_.tva.final_states()) {
    if (homog_.kind[q] == 1 && box.gamma(q) == GateKind::kUnion) {
      gamma.push_back(static_cast<uint32_t>(box.union_idx(q)));
    }
  }
  return gamma;
}

bool EnumerationPipeline::HasAnswer() const {
  if (EmptyAssignmentSatisfies()) return true;
  return !FinalGamma().empty();
}

std::unique_ptr<AssignmentCursor> EnumerationPipeline::MakeRootCursor() const {
  std::vector<uint32_t> gamma = FinalGamma();
  if (gamma.empty()) return nullptr;
  return std::make_unique<AssignmentCursor>(&circuit_, &index_, mode_,
                                            term_->root(), std::move(gamma));
}

std::unique_ptr<Engine::Cursor> EnumerationPipeline::MakeEngineCursor() const {
  class Cursor : public Engine::Cursor {
   public:
    Cursor(bool emit_empty, std::unique_ptr<AssignmentCursor> inner)
        : emit_empty_(emit_empty), inner_(std::move(inner)) {}
    bool Next(Assignment* out) override {
      if (emit_empty_) {
        emit_empty_ = false;
        *out = Assignment{};
        return true;
      }
      if (!inner_) return false;
      EnumOutput o;
      if (!inner_->Next(&o)) return false;
      *out = o.ToAssignment();
      return true;
    }

   private:
    bool emit_empty_;
    std::unique_ptr<AssignmentCursor> inner_;
  };
  return std::make_unique<Cursor>(EmptyAssignmentSatisfies(),
                                  MakeRootCursor());
}

std::vector<Assignment> EnumerationPipeline::EnumerateAll() const {
  std::vector<Assignment> out;
  std::unique_ptr<Engine::Cursor> cursor = MakeEngineCursor();
  Assignment a;
  while (cursor->Next(&a)) out.push_back(std::move(a));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace treenum
