#include "serving/shard_server.h"

#include <algorithm>
#include <iterator>

#include "util/check.h"

namespace treenum {
namespace serving {

namespace {

/// splitmix64 finalizer — the document-placement hash. Sequential ids map
/// to well-scattered shards, so tenants added in order don't all land on
/// shard 0.
uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

/// Completion slot for the synchronous commands (register / remove): the
/// submitter waits, the shard worker fills the result and completes. The
/// mutex/cv pair publishes the worker-resolved handle and ReaderView to the
/// waiting thread.
class DocumentShardServer::Ticket {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
  }
  void Complete() {
    // Notify while holding the mutex: the ticket lives on the submitter's
    // stack and is destroyed as soon as Wait() returns, so the broadcast
    // must be sequenced before the waiter can re-acquire mu_ and leave.
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    cv_.notify_all();
  }

  // Filled by the shard worker before Complete() (register only).
  DynamicDocument::QueryHandle handle = 0;
  DynamicDocument::ReaderView view;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

/// One queued unit of work for a document, applied in FIFO order by
/// whichever shard worker drains the document.
struct DocumentShardServer::Command {
  enum class Kind : uint8_t {
    kEdit,        ///< One leaf edit.
    kStructural,  ///< One subtree move/delete transaction.
    kRegister,    ///< Synchronous query registration (ticket != nullptr).
    kUnregister,  ///< Asynchronous query unregistration.
    kRemoveDoc,   ///< Synchronous document destruction (last command).
  };

  Kind kind = Kind::kEdit;
  Edit edit{};
  StructuralOp structural{};
  /// kRegister payload; shared_ptr so Command stays cheaply movable.
  std::shared_ptr<const UnrankedTva> query;
  BoxEnumMode mode = BoxEnumMode::kIndexed;
  DynamicDocument::QueryHandle handle = 0;  ///< kUnregister target.
  uint64_t submit_ns = 0;                   ///< NowNs() at submission.
  Ticket* ticket = nullptr;                 ///< Sync completion, if any.
};

/// Per-document serving state. The pointer identity is the DocRef; the
/// struct outlives the DynamicDocument (which dies at kRemoveDoc) and is
/// freed only at server destruction.
struct DocumentShardServer::DocRef::DocState {
  DocState(UnrankedTree tree, size_t num_labels, QueryCache* cache)
      : doc(std::make_unique<DynamicDocument>(std::move(tree), num_labels,
                                              cache)) {}

  std::unique_ptr<DynamicDocument> doc;
  uint64_t id = 0;
  size_t home = 0;

  /// Guards `queue` and `scheduled`. `scheduled` is the single-drainer
  /// token: true while the document sits in some shard's run queue / inbox
  /// or is being drained, so at most one worker ever touches `doc`.
  std::mutex mu;
  std::vector<Command> queue;
  bool scheduled = false;
};

/// One shard: a worker thread, its MPSC inbox (newly scheduled documents,
/// mutex-protected — pushes are rare, one per document wakeup, not one per
/// command), its single-owner run deque that thieves steal from, and its
/// slice of the serving counters.
struct DocumentShardServer::Shard {
  WorkStealingDeque<DocRef::DocState*> run_queue;

  std::mutex inbox_mu;
  std::condition_variable cv;
  std::vector<DocRef::DocState*> inbox;
  bool stop = false;  // under inbox_mu

  std::thread worker;

  LatencyHistogram edit_latency;
  std::atomic<uint64_t> edits{0};
  std::atomic<uint64_t> structural{0};
  std::atomic<uint64_t> registers{0};
  std::atomic<uint64_t> unregisters{0};
  std::atomic<uint64_t> removes{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> commands{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> doc_runs{0};
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

DocumentShardServer::DocumentShardServer(const Options& options)
    : opts_(options) {
  TREENUM_CHECK(opts_.shards >= 1, "DocumentShardServer: need >= 1 shard");
  if (opts_.max_group_commit == 0) opts_.max_group_commit = 1;
  if (opts_.max_commands_per_run == 0) opts_.max_commands_per_run = 1;
  shards_.reserve(opts_.shards);
  for (size_t i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Workers start only after every Shard exists: they scan neighbours.
  for (size_t i = 0; i < opts_.shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

DocumentShardServer::~DocumentShardServer() {
  Drain();
  for (auto& s : shards_) {
    {
      std::lock_guard<std::mutex> lock(s->inbox_mu);
      s->stop = true;
    }
    s->cv.notify_all();
  }
  for (auto& s : shards_) s->worker.join();
}

// ---------------------------------------------------------------------------
// Document lifecycle
// ---------------------------------------------------------------------------

DocumentShardServer::DocRef DocumentShardServer::AddDocument(
    UnrankedTree tree, size_t num_labels) {
  auto state = std::make_unique<DocState>(std::move(tree), num_labels,
                                          opts_.query_cache);
  DocState* d = state.get();
  {
    std::lock_guard<std::mutex> lock(docs_mu_);
    d->id = docs_.size();
    docs_.push_back(std::move(state));
  }
  d->home = static_cast<size_t>(Splitmix64(d->id) % shards_.size());
  return DocRef(d);
}

size_t DocumentShardServer::shard_of(DocRef doc) const {
  TREENUM_CHECK(doc, "shard_of: null DocRef");
  return doc.doc_->home;
}

void DocumentShardServer::RemoveDocument(DocRef doc) {
  TREENUM_CHECK(doc, "RemoveDocument: null DocRef");
  Ticket ticket;
  Command c;
  c.kind = Command::Kind::kRemoveDoc;
  c.submit_ns = NowNs();
  c.ticket = &ticket;
  Enqueue(doc.doc_, std::move(c));
  ticket.Wait();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

DocumentShardServer::QueryRef DocumentShardServer::RegisterQuery(
    DocRef doc, const UnrankedTva& query, BoxEnumMode mode) {
  TREENUM_CHECK(doc, "RegisterQuery: null DocRef");
  Ticket ticket;
  Command c;
  c.kind = Command::Kind::kRegister;
  c.query = std::make_shared<const UnrankedTva>(query);
  c.mode = mode;
  c.submit_ns = NowNs();
  c.ticket = &ticket;
  Enqueue(doc.doc_, std::move(c));
  ticket.Wait();
  return QueryRef{ticket.handle, ticket.view};
}

void DocumentShardServer::UnregisterQuery(DocRef doc,
                                          DynamicDocument::QueryHandle handle) {
  TREENUM_CHECK(doc, "UnregisterQuery: null DocRef");
  Command c;
  c.kind = Command::Kind::kUnregister;
  c.handle = handle;
  c.submit_ns = NowNs();
  Enqueue(doc.doc_, std::move(c));
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void DocumentShardServer::SubmitEdit(DocRef doc, const Edit& edit) {
  TREENUM_CHECK(doc, "SubmitEdit: null DocRef");
  Command c;
  c.kind = Command::Kind::kEdit;
  c.edit = edit;
  c.submit_ns = NowNs();
  Enqueue(doc.doc_, std::move(c));
}

void DocumentShardServer::SubmitStructural(DocRef doc,
                                           const StructuralOp& op) {
  TREENUM_CHECK(doc, "SubmitStructural: null DocRef");
  Command c;
  c.kind = Command::Kind::kStructural;
  c.structural = op;
  c.submit_ns = NowNs();
  Enqueue(doc.doc_, std::move(c));
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

SnapshotRef DocumentShardServer::Pin(DocRef doc) const {
  TREENUM_CHECK(doc, "Pin: null DocRef");
  // CurrentSnapshot() is the lock-free publication point TermSnapshots
  // maintains for exactly this cross-thread pin (PR 7); safe concurrent
  // with the shard worker committing.
  return doc.doc_->doc->CurrentSnapshot();
}

const DynamicDocument& DocumentShardServer::document(DocRef doc) const {
  TREENUM_CHECK(doc, "document: null DocRef");
  TREENUM_CHECK(doc.doc_->doc != nullptr, "document: document was removed");
  return *doc.doc_->doc;
}

// ---------------------------------------------------------------------------
// Quiesce / observability
// ---------------------------------------------------------------------------

void DocumentShardServer::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_docs_.load(std::memory_order_acquire) == 0;
  });
}

DocumentShardServer::Stats DocumentShardServer::stats() const {
  Stats total;
  for (const auto& s : shards_) {
    total.edits_applied += s->edits.load(std::memory_order_relaxed);
    total.structural_applied += s->structural.load(std::memory_order_relaxed);
    total.registers += s->registers.load(std::memory_order_relaxed);
    total.unregisters += s->unregisters.load(std::memory_order_relaxed);
    total.removes += s->removes.load(std::memory_order_relaxed);
    total.commits += s->commits.load(std::memory_order_relaxed);
    total.commands += s->commands.load(std::memory_order_relaxed);
    total.steals += s->steals.load(std::memory_order_relaxed);
    total.doc_runs += s->doc_runs.load(std::memory_order_relaxed);
  }
  return total;
}

void DocumentShardServer::MergeEditLatency(LatencyHistogram* out) const {
  for (const auto& s : shards_) out->MergeFrom(s->edit_latency);
}

void DocumentShardServer::ResetEditLatency() {
  for (auto& s : shards_) s->edit_latency.Reset();
}

// ---------------------------------------------------------------------------
// Scheduling core
// ---------------------------------------------------------------------------

void DocumentShardServer::Enqueue(DocState* d, Command cmd) {
  bool need_schedule = false;
  {
    std::lock_guard<std::mutex> lock(d->mu);
    TREENUM_CHECK(d->doc != nullptr || !d->queue.empty() || d->scheduled,
                  "Enqueue: command submitted after RemoveDocument");
    d->queue.push_back(std::move(cmd));
    if (!d->scheduled) {
      d->scheduled = true;
      need_schedule = true;
    }
  }
  if (!need_schedule) return;  // already queued/draining; FIFO picks it up
  pending_docs_.fetch_add(1, std::memory_order_acq_rel);
  Shard& home = *shards_[d->home];
  {
    std::lock_guard<std::mutex> lock(home.inbox_mu);
    home.inbox.push_back(d);
  }
  home.cv.notify_one();
}

void DocumentShardServer::NoteUnscheduled() {
  if (pending_docs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last scheduled document went idle: wake drainers. Taking drain_mu_
    // closes the race with a Drain() that just evaluated the predicate.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void DocumentShardServer::WorkerLoop(size_t shard_index) {
  Shard& self = *shards_[shard_index];
  const size_t num_shards = shards_.size();
  std::vector<Command> scratch;
  scratch.reserve(opts_.max_commands_per_run);

  for (;;) {
    // 1. Adopt newly scheduled documents from the MPSC inbox into the
    //    single-owner run deque (only this worker pushes it).
    {
      std::lock_guard<std::mutex> lock(self.inbox_mu);
      for (DocState* d : self.inbox) self.run_queue.PushBottom(d);
      self.inbox.clear();
    }

    // 2. Own work first, newest-first (LIFO keeps the hot document hot).
    DocState* d = nullptr;
    if (self.run_queue.PopBottom(&d)) {
      RunDoc(self, d, &scratch);
      continue;
    }

    // 3. Idle: steal a whole document from a loaded neighbour — oldest
    //    entry of their deque first (FIFO end, least contention with the
    //    owner), falling back to their unadopted inbox.
    if (opts_.stealing && num_shards > 1) {
      DocState* stolen = nullptr;
      for (size_t k = 1; k < num_shards && stolen == nullptr; ++k) {
        Shard& victim = *shards_[(shard_index + k) % num_shards];
        if (victim.run_queue.StealTop(&stolen)) break;
        std::lock_guard<std::mutex> lock(victim.inbox_mu);
        if (!victim.inbox.empty()) {
          stolen = victim.inbox.back();
          victim.inbox.pop_back();
        }
      }
      if (stolen != nullptr) {
        self.steals.fetch_add(1, std::memory_order_relaxed);
        RunDoc(self, stolen, &scratch);
        continue;
      }
    }

    // 4. Nothing anywhere: park briefly. The timeout doubles as the steal
    //    retry period — a neighbour's backlog has no edge to notify us on.
    std::unique_lock<std::mutex> lock(self.inbox_mu);
    if (!self.inbox.empty()) continue;
    if (self.stop) return;
    self.cv.wait_for(lock, std::chrono::microseconds(200));
  }
}

void DocumentShardServer::RunDoc(Shard& self, DocState* d,
                                 std::vector<Command>* scratch) {
  self.doc_runs.fetch_add(1, std::memory_order_relaxed);
  size_t budget = opts_.max_commands_per_run;
  for (;;) {
    scratch->clear();
    {
      std::lock_guard<std::mutex> lock(d->mu);
      if (d->queue.empty()) {
        d->scheduled = false;
        break;
      }
      if (d->queue.size() <= budget) {
        scratch->swap(d->queue);  // common path: take everything, O(1)
      } else {
        auto split = d->queue.begin() + static_cast<ptrdiff_t>(budget);
        scratch->assign(std::make_move_iterator(d->queue.begin()),
                        std::make_move_iterator(split));
        d->queue.erase(d->queue.begin(), split);
      }
    }
    ApplyCommands(self, d, *scratch);
    budget -= std::min(budget, scratch->size());
    if (budget == 0) {
      // Fairness: this document used its slice. If it still has work,
      // requeue it behind this worker's other documents (it stays
      // `scheduled`, so pending_docs_ is untouched); otherwise idle it.
      bool more;
      {
        std::lock_guard<std::mutex> lock(d->mu);
        more = !d->queue.empty();
        if (!more) d->scheduled = false;
      }
      if (more) {
        self.run_queue.PushBottom(d);
        return;
      }
      break;
    }
  }
  NoteUnscheduled();
}

void DocumentShardServer::ApplyCommands(Shard& self, DocState* d,
                                        std::vector<Command>& cmds) {
  const size_t n = cmds.size();
  self.commands.fetch_add(n, std::memory_order_relaxed);
  size_t i = 0;
  while (i < n) {
    DynamicDocument* doc = d->doc.get();
    TREENUM_CHECK(doc != nullptr,
                  "ApplyCommands: command after document removal");
    Command& c = cmds[i];
    switch (c.kind) {
      case Command::Kind::kEdit:
      case Command::Kind::kStructural: {
        // Group commit: find the run of consecutive mutation commands
        // (capped), apply them under one batch, publish one snapshot.
        size_t j = i + 1;
        const size_t limit = std::min(n, i + opts_.max_group_commit);
        while (j < limit && (cmds[j].kind == Command::Kind::kEdit ||
                             cmds[j].kind == Command::Kind::kStructural)) {
          ++j;
        }
        const bool batched = (j - i) > 1;
        if (batched) doc->BeginBatch();
        uint64_t edits = 0, txns = 0;
        for (size_t k = i; k < j; ++k) {
          if (cmds[k].kind == Command::Kind::kEdit) {
            doc->ApplyEdit(cmds[k].edit);
            ++edits;
          } else {
            const StructuralOp& op = cmds[k].structural;
            if (op.kind == StructuralOp::Kind::kSubtreeMove) {
              doc->SubtreeMove(op.v, op.dst, op.where);
            } else {
              doc->SubtreeDelete(op.v);
            }
            ++txns;
          }
        }
        if (batched) doc->CommitBatch();
        self.commits.fetch_add(1, std::memory_order_relaxed);
        self.edits.fetch_add(edits, std::memory_order_relaxed);
        self.structural.fetch_add(txns, std::memory_order_relaxed);
        // Every command in the group becomes durable (snapshot published,
        // pipelines refreshed) at this commit: that is its served latency.
        const uint64_t now = NowNs();
        for (size_t k = i; k < j; ++k) {
          self.edit_latency.Record(now - std::min(now, cmds[k].submit_ns));
        }
        i = j;
        break;
      }
      case Command::Kind::kRegister: {
        c.ticket->handle = doc->Register(*c.query, c.mode);
        // Resolve the any-thread read surface here, on the worker: the
        // submitter must never touch registry internals itself (they may
        // reallocate under a later Register on this shard).
        c.ticket->view = doc->reader_view(c.ticket->handle);
        self.registers.fetch_add(1, std::memory_order_relaxed);
        c.ticket->Complete();
        ++i;
        break;
      }
      case Command::Kind::kUnregister: {
        doc->Unregister(c.handle);
        self.unregisters.fetch_add(1, std::memory_order_relaxed);
        ++i;
        break;
      }
      case Command::Kind::kRemoveDoc: {
        TREENUM_CHECK(i + 1 == n, "RemoveDocument must be the last command");
        d->doc.reset();
        self.removes.fetch_add(1, std::memory_order_relaxed);
        c.ticket->Complete();
        ++i;
        break;
      }
    }
  }
}

}  // namespace serving
}  // namespace treenum
