#include "enumeration/index.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace treenum {

namespace {

/// Sets the diagonal of a zeroed n x n pooled matrix.
void FillIdentityWords(uint64_t* words, uint32_t n) {
  const uint32_t wpr = BitMatrixPool::WordsPerRow(n);
  for (uint32_t i = 0; i < n; ++i) {
    words[static_cast<size_t>(i) * wpr + i / 64] |= uint64_t{1} << (i % 64);
  }
}

// Closes `items` (candidate indices of a child box) under the child's
// pairwise lca table. Candidate sets stay O(w), so the quadratic loop is
// within the per-box poly(w) budget of Lemma 6.3.
void LcaClose(const BoxIndex& child, std::vector<int32_t>& items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  bool grew = true;
  while (grew) {
    grew = false;
    size_t n = items.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        int32_t l = child.Lca(items[i], items[j]);
        if (!std::binary_search(items.begin(), items.end(), l)) {
          items.insert(std::lower_bound(items.begin(), items.end(), l), l);
          grew = true;
        }
      }
    }
  }
}

}  // namespace

void EnumIndex::EnsureSlot(TermNodeId id) {
  if (spans_.size() <= id) spans_.resize(id + 1);
}

void EnumIndex::BuildAll() {
  const Term& term = circuit_->term();
  struct F {
    TermNodeId id;
    bool expanded;
  };
  std::vector<F> stack{{term.root(), false}};
  while (!stack.empty()) {
    F f = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(f.id);
    if (!f.expanded && t.left != kNoTerm) {
      stack.push_back({f.id, true});
      stack.push_back({t.right, false});
      stack.push_back({t.left, false});
      continue;
    }
    RebuildBoxIndex(f.id);
  }
}

BoxIndex EnumIndex::at(TermNodeId id) const {
  BoxIndex v;
  if (id >= spans_.size()) return v;
  const BoxIndexSpans& s = spans_[id];
  v.cands_ = cand_pool_.at(s.cands.off);
  v.fib_ = i32_pool_.at(s.fib.off);
  v.span_ = i32_pool_.at(s.span.off);
  v.cand_lca_ = i32_pool_.at(s.cand_lca.off);
  v.bits_ = bits_pool_.base();
  v.wl_ = s.wire_left;
  v.wr_ = s.wire_right;
  v.num_cands_ = s.cands.len;
  v.nu_ = s.fib.len;
  return v;
}

void EnumIndex::ReleaseCandRels(BoxIndexSpans& s) {
  CandRec* recs = cand_pool_.at(s.cands.off);
  for (uint32_t i = 0; i < s.cands.len; ++i) bits_pool_.Release(recs[i].rel);
}

void EnumIndex::FreeSpans(BoxIndexSpans& s) {
  ReleaseCandRels(s);
  cand_pool_.Release(s.cands);
  i32_pool_.Release(s.fib);
  i32_pool_.Release(s.span);
  i32_pool_.Release(s.cand_lca);
  bits_pool_.Release(s.wire_left);
  bits_pool_.Release(s.wire_right);
}

void EnumIndex::FreeBoxIndex(TermNodeId id) {
  if (id < spans_.size()) FreeSpans(spans_[id]);
}

void EnumIndex::ReserveForRebuild(size_t boxes) {
  size_t alive = circuit_->term().num_alive();
  if (alive == 0 || boxes == 0) return;
  // Per-box running averages (rounded up) scale the tail headroom, exactly
  // like AssignmentCircuit::ReserveForRebuild.
  cand_pool_.ReserveAdditional(boxes * (cand_pool_.size() / alive + 1));
  i32_pool_.ReserveAdditional(boxes * (i32_pool_.size() / alive + 1));
  bits_pool_.ReserveAdditional(boxes * (bits_pool_.size() / alive + 1));
}

void EnumIndex::RebuildBoxIndex(TermNodeId id) {
  EnsureSlot(id);
  const Term& term = circuit_->term();
  const Box box = circuit_->box(id);
  const uint32_t nu = static_cast<uint32_t>(box.num_unions());
  BoxIndexSpans& s = spans_[id];

  if (nu == 0) {
    FreeSpans(s);
    return;
  }

  if (term.IsLeaf(id)) {
    // Every ∪-gate of a leaf box has var-gate inputs, so fib = span = self.
    ReleaseCandRels(s);
    cand_pool_.Ensure(s.cands, 1);
    i32_pool_.Ensure(s.fib, nu);
    i32_pool_.Ensure(s.span, nu);
    i32_pool_.Ensure(s.cand_lca, 1);
    bits_pool_.Release(s.wire_left);
    bits_pool_.Release(s.wire_right);

    BitsRef rel{};
    bits_pool_.Ensure(rel, nu, nu);
    FillIdentityWords(bits_pool_.words(rel), nu);
    *cand_pool_.at(s.cands.off) = CandRec{id, 0, kNoCand, rel};
    std::fill_n(i32_pool_.at(s.fib.off), nu, 0);
    std::fill_n(i32_pool_.at(s.span.off), nu, 0);
    *i32_pool_.at(s.cand_lca.off) = 0;
    return;
  }

  const TermNodeId lid = term.node(id).left;
  const TermNodeId rid = term.node(id).right;
  const Box lbox = circuit_->box(lid);
  const Box rbox = circuit_->box(rid);
  const uint32_t lnu = static_cast<uint32_t>(lbox.num_unions());
  const uint32_t rnu = static_cast<uint32_t>(rbox.num_unions());

  // ---- Phase 1: read the children into scratch. No pool mutation here, so
  // the child views stay valid throughout.
  {
    const BoxIndex lidx = at(lid);
    const BoxIndex ridx = at(rid);

    // Per-gate child input lists as dense child ∪-gate indices.
    if (in_left_scratch_.size() < nu) {
      in_left_scratch_.resize(nu);
      in_right_scratch_.resize(nu);
    }
    for (uint32_t u = 0; u < nu; ++u) {
      in_left_scratch_[u].clear();
      in_right_scratch_[u].clear();
    }
    for (uint32_t u = 0; u < nu; ++u) {
      for (const auto& [side, state] : box.child_union_inputs(u)) {
        if (side == 0) {
          int32_t d = lbox.union_idx(state);
          assert(d != kNoGate);
          in_left_scratch_[u].push_back(static_cast<uint32_t>(d));
        } else {
          int32_t d = rbox.union_idx(state);
          assert(d != kNoGate);
          in_right_scratch_[u].push_back(static_cast<uint32_t>(d));
        }
      }
    }

    // Raw fib/span per gate: (source, child candidate index).
    fib_pre_scratch_.assign(nu, Pre{0, kNoCand});
    span_pre_scratch_.assign(nu, Pre{0, kNoCand});
    for (uint32_t u = 0; u < nu; ++u) {
      const std::vector<uint32_t>& inl = in_left_scratch_[u];
      const std::vector<uint32_t>& inr = in_right_scratch_[u];
      bool local = box.HasNonUnionInput(u);
      bool has_l = !inl.empty();
      bool has_r = !inr.empty();
      assert(local || has_l || has_r);
      // fib: Equation (3).
      if (local) {
        fib_pre_scratch_[u] = {0, kNoCand};
      } else if (has_l) {
        int32_t best = lidx.fib(inl[0]);
        for (uint32_t g : inl) best = std::min(best, lidx.fib(g));
        fib_pre_scratch_[u] = {1, best};
      } else {
        int32_t best = ridx.fib(inr[0]);
        for (uint32_t g : inr) best = std::min(best, ridx.fib(g));
        fib_pre_scratch_[u] = {2, best};
      }
      // span: lca of the gate's interesting boxes.
      if (local || (has_l && has_r)) {
        span_pre_scratch_[u] = {0, kNoCand};
      } else if (has_l) {
        span_pre_scratch_[u] = {1, lidx.SpanLocal(inl)};
      } else {
        span_pre_scratch_[u] = {2, ridx.SpanLocal(inr)};
      }
    }

    // Candidate collection + lca closure per side.
    used_l_scratch_.clear();
    used_r_scratch_.clear();
    bool use_self = false;
    for (uint32_t u = 0; u < nu; ++u) {
      for (const Pre& p : {fib_pre_scratch_[u], span_pre_scratch_[u]}) {
        if (p.source == 0) {
          use_self = true;
        } else if (p.source == 1) {
          used_l_scratch_.push_back(p.cc);
        } else {
          used_r_scratch_.push_back(p.cc);
        }
      }
    }
    if (!used_l_scratch_.empty()) LcaClose(lidx, used_l_scratch_);
    if (!used_r_scratch_.empty()) LcaClose(ridx, used_r_scratch_);
    if (!used_l_scratch_.empty() && !used_r_scratch_.empty()) use_self = true;

    // Stage the upcoming candidates in preorder (self, left child's in its
    // order, right child's) and record the child→new index maps.
    cand_meta_scratch_.clear();
    map_l_scratch_.assign(lidx.num_cands(), kNoCand);
    map_r_scratch_.assign(ridx.num_cands(), kNoCand);
    if (use_self) cand_meta_scratch_.push_back(CandMeta{id, 0, kNoCand, nu});
    for (int32_t cc : used_l_scratch_) {
      map_l_scratch_[cc] = static_cast<int32_t>(cand_meta_scratch_.size());
      cand_meta_scratch_.push_back(
          CandMeta{lidx.cand_box(cc), 1, cc,
                   static_cast<uint32_t>(lidx.cand_rel(cc).rows())});
    }
    for (int32_t cc : used_r_scratch_) {
      map_r_scratch_[cc] = static_cast<int32_t>(cand_meta_scratch_.size());
      cand_meta_scratch_.push_back(
          CandMeta{ridx.cand_box(cc), 2, cc,
                   static_cast<uint32_t>(ridx.cand_rel(cc).rows())});
    }
  }
  const uint32_t nc = static_cast<uint32_t>(cand_meta_scratch_.size());
  assert(nc > 0);
  const int32_t self_idx =
      cand_meta_scratch_[0].source == 0 ? 0 : kNoCand;

  // ---- Phase 2: (re)allocate this box's spans. Child raw views from phase
  // 1 are dead past this point; phase 3 re-resolves them.
  ReleaseCandRels(s);
  cand_pool_.Ensure(s.cands, nc);
  i32_pool_.Ensure(s.fib, nu);
  i32_pool_.Ensure(s.span, nu);
  i32_pool_.Ensure(s.cand_lca, nc * nc);
  bits_pool_.Ensure(s.wire_left, lnu, nu);
  bits_pool_.Ensure(s.wire_right, rnu, nu);
  // The CandRec pool is disjoint from the bit pool, so these records stay
  // put while the relation blocks are acquired.
  CandRec* recs = cand_pool_.at(s.cands.off);
  for (uint32_t c = 0; c < nc; ++c) {
    const CandMeta& m = cand_meta_scratch_[c];
    recs[c] = CandRec{m.box, m.source, m.cc, BitsRef{}};
    // Inherited candidates (source != 0) are compose targets, which the
    // kernel fully overwrites — skip the zero-fill for them. Only the
    // identity block (diagonal scatter) needs pre-zeroed words.
    if (m.source == 0) {
      bits_pool_.Ensure(recs[c].rel, m.rows, nu);
    } else {
      bits_pool_.EnsureUninit(recs[c].rel, m.rows, nu);
    }
  }

  // ---- Phase 3: fill. Reads child spans, writes this box's spans; no pool
  // mutation, so every view resolved below stays valid.
  const BoxIndex lidx = at(lid);
  const BoxIndex ridx = at(rid);

  // Wire relations R(child, B) over the ∪→∪ (⊤-collapse) wires.
  const uint32_t wpr = BitMatrixPool::WordsPerRow(nu);
  uint64_t* wl = bits_pool_.words(s.wire_left);
  uint64_t* wr = bits_pool_.words(s.wire_right);
  for (uint32_t u = 0; u < nu; ++u) {
    const uint64_t bit = uint64_t{1} << (u % 64);
    for (uint32_t d : in_left_scratch_[u]) {
      wl[static_cast<size_t>(d) * wpr + u / 64] |= bit;
    }
    for (uint32_t d : in_right_scratch_[u]) {
      wr[static_cast<size_t>(d) * wpr + u / 64] |= bit;
    }
  }

  // Candidate relations: self = identity (block pre-zeroed by Ensure),
  // inherited = child rel composed with the wire relation of that side
  // (blocks written wholesale by the overwrite-semantics compose kernel).
  const BitMatrixView wlv = bits_pool_.view(s.wire_left);
  const BitMatrixView wrv = bits_pool_.view(s.wire_right);
  for (uint32_t c = 0; c < nc; ++c) {
    uint64_t* dst = bits_pool_.words(recs[c].rel);
    if (recs[c].source == 0) {
      FillIdentityWords(dst, nu);
    } else if (recs[c].source == 1) {
      BitMatrixView::ComposeIntoWords(lidx.cand_rel(recs[c].child_cand), wlv,
                                      dst);
    } else {
      BitMatrixView::ComposeIntoWords(ridx.cand_rel(recs[c].child_cand), wrv,
                                      dst);
    }
  }

  // fib/span per gate, resolved to the new candidate indices.
  auto resolve = [&](const Pre& p) -> int32_t {
    if (p.source == 0) return self_idx;
    if (p.source == 1) return map_l_scratch_[p.cc];
    return map_r_scratch_[p.cc];
  };
  int32_t* fib = i32_pool_.at(s.fib.off);
  int32_t* span = i32_pool_.at(s.span.off);
  for (uint32_t u = 0; u < nu; ++u) {
    fib[u] = resolve(fib_pre_scratch_[u]);
    span[u] = resolve(span_pre_scratch_[u]);
    assert(fib[u] != kNoCand && span[u] != kNoCand);
  }

  // Pairwise candidate lca table.
  int32_t* lca = i32_pool_.at(s.cand_lca.off);
  for (uint32_t a = 0; a < nc; ++a) {
    for (uint32_t b = 0; b < nc; ++b) {
      int32_t v;
      if (a == b) {
        v = static_cast<int32_t>(a);
      } else if (recs[a].source == 0 || recs[b].source == 0 ||
                 recs[a].source != recs[b].source) {
        assert(self_idx != kNoCand);
        v = self_idx;
      } else if (recs[a].source == 1) {
        v = map_l_scratch_[lidx.Lca(recs[a].child_cand, recs[b].child_cand)];
      } else {
        v = map_r_scratch_[ridx.Lca(recs[a].child_cand, recs[b].child_cand)];
      }
      assert(v != kNoCand);
      lca[static_cast<size_t>(a) * nc + b] = v;
    }
  }
}

std::string EnumIndex::ValidateStorage() const {
  const Term& term = circuit_->term();
  std::ostringstream err;
  std::vector<LiveSpan> cands, i32s, bits;
  for (TermNodeId id = 0; id < spans_.size(); ++id) {
    if (!term.IsAlive(id)) continue;
    const BoxIndexSpans& s = spans_[id];
    const Box box = circuit_->box(id);
    const uint32_t nu = static_cast<uint32_t>(box.num_unions());
    if (nu == 0) {
      if (s.cands.len != 0 || s.fib.len != 0 || s.span.len != 0 ||
          s.cand_lca.len != 0 || s.wire_left.rows != 0 ||
          s.wire_right.rows != 0) {
        err << "gate-free box " << id << " owns index spans";
        return err.str();
      }
      continue;
    }
    const uint32_t nc = s.cands.len;
    if (nc == 0) {
      err << "box " << id << " has gates but no candidates";
      return err.str();
    }
    if (s.fib.len != nu || s.span.len != nu) {
      err << "box " << id << " fib/span length mismatch";
      return err.str();
    }
    if (s.cand_lca.len != nc * nc) {
      err << "box " << id << " lca table is not candidates squared";
      return err.str();
    }
    const CandRec* recs = cand_pool_.at(s.cands.off);
    for (uint32_t c = 0; c < nc; ++c) {
      const CandRec& rec = recs[c];
      if (!term.IsAlive(rec.box)) {
        err << "box " << id << " candidate " << c << " names a dead box";
        return err.str();
      }
      if (rec.rel.cols != nu ||
          rec.rel.rows !=
              static_cast<uint32_t>(circuit_->box(rec.box).num_unions())) {
        err << "box " << id << " candidate " << c << " rel shape mismatch";
        return err.str();
      }
      if (rec.rel.words.cap != 0) {
        bits.push_back(LiveSpan{rec.rel.words.off, rec.rel.words.cap, id});
      }
    }
    const int32_t* fib = i32_pool_.at(s.fib.off);
    const int32_t* span = i32_pool_.at(s.span.off);
    for (uint32_t u = 0; u < nu; ++u) {
      if (fib[u] < 0 || static_cast<uint32_t>(fib[u]) >= nc || span[u] < 0 ||
          static_cast<uint32_t>(span[u]) >= nc) {
        err << "box " << id << " fib/span out of candidate range at gate "
            << u;
        return err.str();
      }
    }
    const int32_t* lca = i32_pool_.at(s.cand_lca.off);
    for (uint32_t i = 0; i < nc * nc; ++i) {
      if (lca[i] < 0 || static_cast<uint32_t>(lca[i]) >= nc) {
        err << "box " << id << " lca table out of candidate range";
        return err.str();
      }
    }
    if (!term.IsLeaf(id)) {
      if (s.wire_left.cols != nu || s.wire_right.cols != nu ||
          s.wire_left.rows != static_cast<uint32_t>(
                                  circuit_->box(term.node(id).left)
                                      .num_unions()) ||
          s.wire_right.rows != static_cast<uint32_t>(
                                   circuit_->box(term.node(id).right)
                                       .num_unions())) {
        err << "internal box " << id << " wire shape mismatch";
        return err.str();
      }
    } else if (s.wire_left.rows != 0 || s.wire_right.rows != 0) {
      err << "leaf box " << id << " owns wire relations";
      return err.str();
    }
    if (s.cands.len > s.cands.cap) {
      err << "box " << id << " candidate span length exceeds capacity";
      return err.str();
    }
    if (s.cands.cap != 0) {
      cands.push_back(LiveSpan{s.cands.off, s.cands.cap, id});
    }
    for (const SpanRef* ref : {&s.fib, &s.span, &s.cand_lca}) {
      if (ref->len > ref->cap) {
        err << "box " << id << " int32 span length exceeds capacity";
        return err.str();
      }
      if (ref->cap != 0) i32s.push_back(LiveSpan{ref->off, ref->cap, id});
    }
    for (const BitsRef* ref : {&s.wire_left, &s.wire_right}) {
      if (ref->words.cap != 0) {
        bits.push_back(LiveSpan{ref->words.off, ref->words.cap, id});
      }
    }
  }
  std::string e;
  if (!(e = CheckPoolSpans("cand", cand_pool_.size(), cands)).empty())
    return e;
  if (!(e = CheckPoolSpans("index_i32", i32_pool_.size(), i32s)).empty())
    return e;
  if (!(e = CheckPoolSpans("index_bits", bits_pool_.size(), bits)).empty())
    return e;
  return std::string();
}

}  // namespace treenum
