// Per-tier equivalence tests for the dispatched word-block kernels
// (util/simd_kernels.h): every available tier must be bit-identical to the
// scalar oracle (and, for compose, to the naive BitMatrix product) across
// shapes chosen to hit every internal path — narrow single-word rows, the
// streaming widths, the blocked wide path, masked tails at word counts that
// are not multiples of 4/8, and the degenerate empty/one-row cases. Guard
// words around every destination catch out-of-bounds masked stores.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/bit_matrix.h"
#include "util/random.h"
#include "util/simd_kernels.h"

namespace treenum {
namespace {

constexpr uint64_t kGuard = 0xDEADBEEFCAFEF00Dull;
constexpr size_t kGuardWords = 4;

std::vector<SimdTier> AvailableTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t :
       {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (KernelsForTier(t) != nullptr) tiers.push_back(t);
  }
  return tiers;
}

/// A destination buffer of `n` payload words fenced by guard words.
struct Fenced {
  explicit Fenced(size_t n, uint64_t fill = 0)
      : words(n + 2 * kGuardWords, fill) {
    for (size_t i = 0; i < kGuardWords; ++i) {
      words[i] = kGuard;
      words[words.size() - 1 - i] = kGuard;
    }
  }
  uint64_t* data() { return words.data() + kGuardWords; }
  bool GuardsIntact() const {
    for (size_t i = 0; i < kGuardWords; ++i) {
      if (words[i] != kGuard) return false;
      if (words[words.size() - 1 - i] != kGuard) return false;
    }
    return true;
  }
  std::vector<uint64_t> words;
};

BitMatrix RandomMatrix(size_t rows, size_t cols, double density, Rng& rng) {
  BitMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.Flip(density)) m.Set(r, c);
    }
  }
  return m;
}

TEST(SimdKernels, DispatcherAlwaysYieldsATier) {
  ASSERT_NE(KernelsForTier(SimdTier::kScalar), nullptr)
      << "the scalar tier must exist everywhere";
  const BitKernels& k = ActiveKernels();
  EXPECT_STREQ(k.name, TierName(ActiveTier()));
}

// ---- compose -------------------------------------------------------------

TEST(SimdKernels, ComposeMatchesNaiveOracleOnAllTiers) {
  // Shapes hit: b_wpr == 1 (narrow), == 2 (stream2), 3..16 (avx2 streaming
  // widths incl. masked tails), 17..32 (avx512 streaming), > 32 (blocked),
  // rows not multiples of the 4-row block, and cols off every vector
  // boundary.
  const size_t rows_set[] = {1, 3, 5, 64, 101};
  const size_t dims[] = {1, 63, 64, 65, 127, 130, 257, 513, 1040, 2112};
  Rng rng(20240801);
  for (size_t rows : rows_set) {
    for (size_t inner : dims) {
      for (size_t cols : dims) {
        // Keep the grid affordable: skip the largest x largest products.
        if (rows * inner * cols > size_t{64} * 1040 * 257) continue;
        const double density = inner > 512 ? 0.05 : 0.3;
        BitMatrix a = RandomMatrix(rows, inner, density, rng);
        BitMatrix b = RandomMatrix(inner, cols, density, rng);
        BitMatrix expect = ComposeNaive(a, b);
        const BitMatrixView av(a), bv(b);
        const size_t b_wpr = bv.words_per_row();
        const uint64_t* want = BitMatrixView(expect).Row(0);
        for (SimdTier tier : AvailableTiers()) {
          Fenced out(rows * b_wpr, /*fill=*/~uint64_t{0});
          KernelsForTier(tier)->compose(av.Row(0), rows, av.words_per_row(),
                                        bv.Row(0), b_wpr, out.data());
          EXPECT_TRUE(out.GuardsIntact())
              << TierName(tier) << " wrote out of bounds at " << rows << "x"
              << inner << "x" << cols;
          for (size_t i = 0; i < rows * b_wpr; ++i) {
            ASSERT_EQ(out.data()[i], want[i])
                << TierName(tier) << " word " << i << " at " << rows << "x"
                << inner << "x" << cols;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, ComposeHandlesEmptyShapes) {
  Rng rng(7);
  BitMatrix a = RandomMatrix(4, 130, 0.5, rng);
  BitMatrix b = RandomMatrix(130, 70, 0.5, rng);
  const BitMatrixView av(a), bv(b);
  for (SimdTier tier : AvailableTiers()) {
    const BitKernels* k = KernelsForTier(tier);
    // a_rows == 0: must not touch out at all.
    Fenced untouched(8, 0x55);
    k->compose(av.Row(0), 0, av.words_per_row(), bv.Row(0),
               bv.words_per_row(), untouched.data());
    for (size_t i = 0; i < 8; ++i) EXPECT_EQ(untouched.data()[i], 0x55u);
    // a_wpr == 0 (a has zero columns): out must be fully zeroed.
    Fenced zeroed(4 * bv.words_per_row(), ~uint64_t{0});
    k->compose(av.Row(0), 4, 0, bv.Row(0), bv.words_per_row(), zeroed.data());
    for (size_t i = 0; i < 4 * bv.words_per_row(); ++i) {
      EXPECT_EQ(zeroed.data()[i], 0u) << TierName(tier);
    }
    EXPECT_TRUE(untouched.GuardsIntact());
    EXPECT_TRUE(zeroed.GuardsIntact());
  }
}

TEST(SimdKernels, ComposeKeepsTailBitsZero) {
  // Inputs with canonical zero tail bits must produce outputs with zero
  // tail bits — the overwrite contract says out's last-word padding comes
  // only from b's rows, which BitMatrix keeps canonical.
  Rng rng(99);
  for (size_t cols : {65u, 127u, 130u, 321u}) {
    BitMatrix a = RandomMatrix(9, 70, 0.6, rng);
    BitMatrix b = RandomMatrix(70, cols, 0.6, rng);
    const BitMatrixView av(a), bv(b);
    const size_t b_wpr = bv.words_per_row();
    const uint64_t tail_mask =
        cols % 64 == 0 ? ~uint64_t{0} : ((uint64_t{1} << (cols % 64)) - 1);
    for (SimdTier tier : AvailableTiers()) {
      std::vector<uint64_t> out(9 * b_wpr, ~uint64_t{0});
      KernelsForTier(tier)->compose(av.Row(0), 9, av.words_per_row(),
                                    bv.Row(0), b_wpr, out.data());
      for (size_t r = 0; r < 9; ++r) {
        uint64_t last = out[r * b_wpr + b_wpr - 1];
        EXPECT_EQ(last & ~tail_mask, 0u)
            << TierName(tier) << " row " << r << " cols " << cols;
      }
    }
  }
}

// ---- flat word-range kernels ---------------------------------------------

TEST(SimdKernels, FlatKernelsMatchScalarOnAllTiers) {
  const BitKernels* scalar = KernelsForTier(SimdTier::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(4242);
  // Word counts straddling every unroll width and masked-tail remainder.
  for (size_t n : {0u,  1u,  3u,  4u,  5u,  7u,  8u,  9u,  15u, 16u,
                   17u, 31u, 32u, 33u, 63u, 64u, 100u, 257u}) {
    std::vector<uint64_t> src(n), base(n);
    for (size_t i = 0; i < n; ++i) {
      src[i] = static_cast<uint64_t>(rng.Int(0, INT64_MAX)) << 1;
      base[i] = static_cast<uint64_t>(rng.Int(0, INT64_MAX));
      if (rng.Flip(0.3)) src[i] = 0;  // give `any` some all-zero prefixes
    }
    // Scalar oracle results.
    std::vector<uint64_t> want(base);
    if (n > 0) scalar->or_into(want.data(), src.data(), n);
    const bool want_any = scalar->any(src.data(), n);
    const size_t want_pop = scalar->popcount(src.data(), n);

    for (SimdTier tier : AvailableTiers()) {
      const BitKernels* k = KernelsForTier(tier);
      Fenced dst(n);
      for (size_t i = 0; i < n; ++i) dst.data()[i] = base[i];
      k->or_into(dst.data(), src.data(), n);
      EXPECT_TRUE(dst.GuardsIntact()) << TierName(tier) << " n=" << n;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst.data()[i], want[i])
            << TierName(tier) << " or_into word " << i << " n=" << n;
      }
      EXPECT_EQ(k->any(src.data(), n), want_any)
          << TierName(tier) << " n=" << n;
      EXPECT_EQ(k->popcount(src.data(), n), want_pop)
          << TierName(tier) << " n=" << n;
      Fenced zbuf(n, ~uint64_t{0});
      k->zero(zbuf.data(), n);
      EXPECT_TRUE(zbuf.GuardsIntact()) << TierName(tier) << " n=" << n;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(zbuf.data()[i], 0u) << TierName(tier) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, AnyFindsASingleBitAnywhere) {
  // `any` early-exits in unrolled chunks; a lone bit at every offset
  // exercises each chunk boundary.
  const size_t n = 37;
  for (SimdTier tier : AvailableTiers()) {
    const BitKernels* k = KernelsForTier(tier);
    std::vector<uint64_t> words(n, 0);
    EXPECT_FALSE(k->any(words.data(), n)) << TierName(tier);
    for (size_t i = 0; i < n; ++i) {
      words.assign(n, 0);
      words[i] = uint64_t{1} << (i % 64);
      EXPECT_TRUE(k->any(words.data(), n)) << TierName(tier) << " word " << i;
    }
  }
}

TEST(SimdKernels, EnvOverrideStepsDownGracefully) {
  // ResolveActiveTier caps a TREENUM_SIMD request at the best available
  // tier; this is resolved once per process, so here we only check the
  // invariant the override relies on: every offered tier is non-null and
  // tiers are ordered scalar <= avx2 <= avx512.
  const std::vector<SimdTier> tiers = AvailableTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), SimdTier::kScalar);
  for (size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
  const BitKernels* active = KernelsForTier(ActiveTier());
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active, &ActiveKernels());
}

}  // namespace
}  // namespace treenum
