#include "util/latency_histogram.h"

#include <cmath>

namespace treenum {

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

uint64_t LatencyHistogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the ceil(q*n)-th smallest recording, 1-based (q=0 maps
  // to rank 1 so Quantile(0) is the smallest bucket's representative).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Bucket midpoint: for exact (small-value) buckets this IS the value;
      // elsewhere it halves the worst-case quantization error.
      const uint64_t lo = BucketLow(i);
      const uint64_t hi = BucketHigh(i);
      return lo + (hi - lo - 1) / 2;
    }
  }
  return MaxBound();  // unreachable when counters are quiescent
}

uint64_t LatencyHistogram::MaxBound() const {
  for (size_t i = kNumBuckets; i-- > 0;) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      return BucketHigh(i);
    }
  }
  return 0;
}

void LatencyHistogram::Reset() {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace treenum
