// Document-level structural transactions: SubtreeMove / SubtreeDelete /
// SubtreeExtract / GraftSubtree on tree documents and MoveRange /
// EraseRange / ExtractRange / Concat on word documents, interleaved with
// leaf edits and cross-checked against recompute-from-scratch oracles;
// snapshot pinning across a transaction (one published epoch per
// transaction, pinned readers keep the old answers — run under TSan in
// CI); and the zero-allocation steady state of the whole transaction path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "automata/query_library.h"
#include "baseline/static_engine.h"
#include "core/document.h"
#include "core/word_enumerator.h"
#include "test_util.h"
#include "util/alloc_gauge.h"
#include "util/thread_pool.h"

namespace treenum {
namespace {

// ---- Tree documents ----

// Interleaves structural transactions with ordinary leaf edits; every
// checkpoint rebuilds a StaticEngine from the document's current tree (the
// transactions have no incremental oracle — recompute-from-scratch is the
// specification).
TEST(DocumentStructural, TreeTransactionsMatchFreshOracles) {
  Rng rng(20260807);
  UnrankedTree tree = RandomTree(120, 3, rng);
  std::vector<UnrankedTva> queries;
  queries.push_back(QuerySelectLabel(3, 1));
  queries.push_back(QueryMarkedAncestor(3, 1, 2));
  queries.push_back(QueryChildOfLabel(3, 0, 2));

  ThreadPool pool(4);
  DynamicDocument doc(tree, 3);
  doc.set_pool(&pool);
  std::vector<DynamicDocument::QueryHandle> ids;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    BoxEnumMode mode =
        qi % 2 == 0 ? BoxEnumMode::kIndexed : BoxEnumMode::kNaive;
    ids.push_back(doc.Register(queries[qi], mode));
  }

  auto pick_outside = [&](NodeId v) -> NodeId {
    // Any node outside subtree(v), or kNoNode if none exists.
    std::vector<NodeId> in_sub{v};
    for (size_t i = 0; i < in_sub.size(); ++i) {
      for (NodeId c : doc.tree().children(in_sub[i])) in_sub.push_back(c);
    }
    std::vector<NodeId> cands;
    for (NodeId n : doc.tree().PreorderNodes()) {
      if (std::find(in_sub.begin(), in_sub.end(), n) == in_sub.end()) {
        cands.push_back(n);
      }
    }
    return cands.empty() ? kNoNode : cands[rng.Index(cands.size())];
  };

  for (int step = 0; step < 160; ++step) {
    std::vector<NodeId> nodes = doc.tree().PreorderNodes();
    NodeId pick = nodes[rng.Index(nodes.size())];
    switch (rng.Index(8)) {
      case 0:
        doc.Relabel(pick, static_cast<Label>(rng.Index(3)));
        break;
      case 1:
        doc.InsertFirstChild(pick, static_cast<Label>(rng.Index(3)));
        break;
      case 2:
        if (pick != doc.tree().root()) {
          doc.InsertRightSibling(pick, static_cast<Label>(rng.Index(3)));
        }
        break;
      case 3:
        if (pick != doc.tree().root() && doc.tree().IsLeaf(pick)) {
          doc.DeleteLeaf(pick);
        }
        break;
      case 4:
      case 5: {
        if (pick == doc.tree().root()) break;
        NodeId dst = pick_outside(pick);
        if (dst == kNoNode) break;
        AttachWhere where = rng.Index(2) == 0 || dst == doc.tree().root()
                                ? AttachWhere::kFirstChild
                                : AttachWhere::kRightSibling;
        doc.SubtreeMove(pick, dst, where);
        break;
      }
      case 6:
        if (pick != doc.tree().root() && doc.tree().size() > 20) {
          doc.SubtreeDelete(pick);
        }
        break;
      case 7: {
        if (pick == doc.tree().root() || doc.tree().size() <= 20) break;
        UnrankedTree cut(0);
        doc.SubtreeExtract(pick, &cut);
        std::vector<NodeId> rest = doc.tree().PreorderNodes();
        NodeId dst = rest[rng.Index(rest.size())];
        AttachWhere where = rng.Index(2) == 0 || dst == doc.tree().root()
                                ? AttachWhere::kFirstChild
                                : AttachWhere::kRightSibling;
        doc.GraftSubtree(cut, cut.root(), dst, where);
        break;
      }
    }
    if (step % 8 == 7) {
      for (size_t qi = 0; qi < ids.size(); ++qi) {
        const EnumerationPipeline& p = doc.pipeline(ids[qi]);
        ASSERT_EQ(p.circuit().ValidateStorage(), "")
            << "query " << qi << " step " << step;
        StaticEngine oracle(doc.tree(), queries[qi]);
        ASSERT_EQ(p.EnumerateAll(), oracle.EnumerateAll())
            << "query " << qi << " step " << step;
      }
    }
  }
}

// Structural transactions recorded inside a batch coalesce with leaf edits
// into one commit (one epoch, one refresh per surviving box).
TEST(DocumentStructural, BatchedTransactionsCoalesceWithLeafEdits) {
  Rng rng(20260808);
  UnrankedTree tree = RandomTree(80, 3, rng);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryHandle h = doc.Register(QueryMarkedAncestor(3, 1, 2));

  for (int round = 0; round < 30; ++round) {
    std::vector<NodeId> nodes = doc.tree().PreorderNodes();
    NodeId pick = nodes[rng.Index(nodes.size())];
    uint64_t epoch_before = doc.CurrentSnapshot().epoch();
    doc.BeginBatch();
    doc.Relabel(nodes[rng.Index(nodes.size())],
                static_cast<Label>(rng.Index(3)));
    if (pick != doc.tree().root() && doc.tree().size() > 20) {
      doc.SubtreeDelete(pick);
    }
    doc.InsertFirstChild(doc.tree().root(), static_cast<Label>(rng.Index(3)));
    doc.CommitBatch();
    EXPECT_EQ(doc.CurrentSnapshot().epoch(), epoch_before + 1)
        << "a batch must publish exactly one epoch, round " << round;
    StaticEngine oracle(doc.tree(), QueryMarkedAncestor(3, 1, 2));
    ASSERT_EQ(doc.pipeline(h).EnumerateAll(), oracle.EnumerateAll())
        << "round " << round;
  }
}

// ---- Word documents ----

TEST(DocumentStructural, WordTransactionsMatchEnumerator) {
  // a*<x:b>(a|b)* — select every b position.
  Wva select_b(2, 2, 1);
  select_b.AddInitial(0);
  select_b.AddTransition(0, 0, 0, 0);
  select_b.AddTransition(0, 1, 0, 0);
  select_b.AddTransition(0, 1, 1, 1);
  select_b.AddTransition(1, 0, 0, 1);
  select_b.AddTransition(1, 1, 0, 1);
  select_b.AddFinal(1);

  Rng rng(20260809);
  Word ref;
  for (int i = 0; i < 40; ++i) ref.push_back(static_cast<Label>(rng.Index(2)));

  DynamicDocument doc(ref, 2);
  DynamicDocument::QueryHandle h = doc.Register(select_b);

  auto by_position = [&] {
    std::vector<Assignment> out;
    for (const Assignment& s : doc.pipeline(h).EnumerateAll()) {
      Assignment b;
      for (const Singleton& sg : s.singletons()) {
        b.Add(Singleton{sg.var, static_cast<NodeId>(
                                    doc.word_encoding().PositionOf(sg.node))});
      }
      b.Normalize();
      out.push_back(std::move(b));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (int step = 0; step < 200; ++step) {
    switch (rng.Index(7)) {
      case 0: {
        size_t pos = rng.Index(ref.size() + 1);
        Label l = static_cast<Label>(rng.Index(2));
        ref.insert(ref.begin() + pos, l);
        doc.Insert(pos, l);
        break;
      }
      case 1: {
        if (ref.size() <= 1) break;
        size_t pos = rng.Index(ref.size());
        ref.erase(ref.begin() + pos);
        doc.Erase(pos);
        break;
      }
      case 2: {
        size_t pos = rng.Index(ref.size());
        Label l = static_cast<Label>(rng.Index(2));
        ref[pos] = l;
        doc.Replace(pos, l);
        break;
      }
      case 3: {  // MoveRange
        if (ref.size() < 2) break;
        size_t begin = rng.Index(ref.size());
        size_t end = begin + 1 + rng.Index(ref.size() - begin);
        if (end - begin == ref.size()) break;
        Word factor(ref.begin() + begin, ref.begin() + end);
        ref.erase(ref.begin() + begin, ref.begin() + end);
        size_t dst = rng.Index(ref.size() + 1);
        ref.insert(ref.begin() + dst, factor.begin(), factor.end());
        doc.MoveRange(begin, end, dst);
        break;
      }
      case 4: {  // EraseRange
        if (ref.size() < 2) break;
        size_t begin = rng.Index(ref.size());
        size_t end = begin + 1 + rng.Index(ref.size() - begin);
        if (end - begin >= ref.size()) break;
        ref.erase(ref.begin() + begin, ref.begin() + end);
        doc.EraseRange(begin, end);
        break;
      }
      case 5: {  // ExtractRange: the extracted factor must match the mirror
        if (ref.size() < 2) break;
        size_t begin = rng.Index(ref.size());
        size_t end = begin + 1 + rng.Index(ref.size() - begin);
        if (end - begin >= ref.size()) break;
        Word expect_factor(ref.begin() + begin, ref.begin() + end);
        ref.erase(ref.begin() + begin, ref.begin() + end);
        Word got;
        doc.ExtractRange(begin, end, &got);
        ASSERT_EQ(got, expect_factor) << "step " << step;
        break;
      }
      case 6: {  // Concat
        Word tail;
        for (size_t i = 0; i < 1 + rng.Index(6); ++i) {
          tail.push_back(static_cast<Label>(rng.Index(2)));
        }
        ref.insert(ref.end(), tail.begin(), tail.end());
        doc.Concat(tail);
        break;
      }
    }
    ASSERT_EQ(doc.word_encoding().size(), ref.size()) << "step " << step;
    if (step % 10 == 9) {
      ASSERT_EQ(by_position(),
                WordEnumerator(ref, select_b).EnumerateAllByPosition())
          << "step " << step;
    }
  }
}

// ---- Snapshots across transactions ----

// A pinned snapshot must keep serving the pre-transaction answers while the
// writer runs SubtreeMoves, and each transaction publishes exactly one
// epoch. A reader thread enumerates the pin concurrently with the writer's
// transactions (the interesting assertions are TSan's).
TEST(DocumentStructural, PinnedSnapshotSurvivesConcurrentSubtreeMove) {
  Rng rng(20260810);
  UnrankedTree tree = RandomTree(90, 3, rng);
  const UnrankedTva q = QueryMarkedAncestor(3, 1, 2);

  ThreadPool pool(2);
  DynamicDocument doc(tree, 3);
  doc.set_pool(&pool);
  DynamicDocument::QueryHandle h = doc.Register(q);

  std::vector<Assignment> before = doc.pipeline(h).EnumerateAll();
  SnapshotRef pin = doc.CurrentSnapshot();
  const uint64_t pinned_epoch = pin.epoch();

  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (doc.EnumerateAt(pin, h) != before) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int step = 0; step < 40; ++step) {
    std::vector<NodeId> nodes = doc.tree().PreorderNodes();
    NodeId pick = nodes[rng.Index(nodes.size())];
    if (pick == doc.tree().root()) continue;
    std::vector<NodeId> in_sub{pick};
    for (size_t i = 0; i < in_sub.size(); ++i) {
      for (NodeId c : doc.tree().children(in_sub[i])) in_sub.push_back(c);
    }
    NodeId dst = kNoNode;
    for (NodeId n : nodes) {
      if (std::find(in_sub.begin(), in_sub.end(), n) == in_sub.end()) {
        dst = n;
        break;
      }
    }
    if (dst == kNoNode) continue;
    uint64_t epoch_before = doc.CurrentSnapshot().epoch();
    doc.SubtreeMove(pick, dst, AttachWhere::kFirstChild);
    ASSERT_EQ(doc.CurrentSnapshot().epoch(), epoch_before + 1)
        << "a transaction must publish exactly one epoch, step " << step;
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "pinned snapshot served post-transaction answers";
  EXPECT_EQ(pin.epoch(), pinned_epoch);
  EXPECT_EQ(doc.EnumerateAt(pin, h), before);
  StaticEngine oracle(doc.tree(), q);
  EXPECT_EQ(doc.pipeline(h).EnumerateAll(), oracle.EnumerateAll());
}

// ---- Allocation guarantees ----

// Ping-ponging a subtree between two anchors settles into a steady state
// where the whole transaction — detach, region re-encode, rebalance,
// coalesced box rebuild, publish — performs zero heap allocations.
TEST(DocumentStructural, SteadyStateSubtreeMovesAreAllocationFree) {
  ASSERT_TRUE(AllocGaugeActive())
      << "document_structural_test must link treenum_alloc_gauge";

  Rng rng(20260811);
  UnrankedTree tree = RandomTree(200, 3, rng);
  DynamicDocument doc(tree, 3);
  DynamicDocument::QueryHandle h = doc.Register(QueryMarkedAncestor(3, 1, 2));

  // Two stable anchors under the root plus a movable subtree.
  NodeId root = doc.tree().root();
  NodeId a = kNoNode, b = kNoNode, v = kNoNode;
  doc.InsertFirstChild(root, 0, &a);
  doc.InsertFirstChild(root, 0, &b);
  doc.InsertFirstChild(root, 1, &v);
  doc.InsertFirstChild(v, 2);
  doc.InsertFirstChild(v, 2);

  auto run_pass = [&] {
    for (int i = 0; i < 16; ++i) {
      doc.SubtreeMove(v, i % 2 == 0 ? a : b, AttachWhere::kFirstChild);
    }
  };
  int pass = 0;
  for (; pass < 10; ++pass) {
    AllocGaugeScope warm;
    run_pass();
    if (warm.allocs() == 0) break;
  }
  ASSERT_LT(pass, 10) << "SubtreeMove passes failed to reach a steady state";
  AllocGaugeScope gauge;
  run_pass();
  EXPECT_EQ(gauge.allocs(), 0u)
      << "steady-state SubtreeMove transactions allocated";
  StaticEngine oracle(doc.tree(), QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(doc.pipeline(h).EnumerateAll(), oracle.EnumerateAll());
}

}  // namespace
}  // namespace treenum
