#include "util/bit_matrix.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace treenum {
namespace {

TEST(BitMatrix, SetGet) {
  BitMatrix m(3, 70);
  EXPECT_FALSE(m.Get(2, 69));
  m.Set(2, 69);
  EXPECT_TRUE(m.Get(2, 69));
  m.Set(2, 69, false);
  EXPECT_FALSE(m.Get(2, 69));
  EXPECT_FALSE(m.Any());
  m.Set(0, 0);
  EXPECT_TRUE(m.Any());
  EXPECT_EQ(m.Count(), 1u);
}

TEST(BitMatrix, Identity) {
  BitMatrix id = BitMatrix::Identity(5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(id.Get(i, j), i == j);
    }
  }
}

TEST(BitMatrix, RowColAny) {
  BitMatrix m(4, 4);
  m.Set(1, 3);
  EXPECT_TRUE(m.RowAny(1));
  EXPECT_FALSE(m.RowAny(0));
  EXPECT_TRUE(m.ColAny(3));
  EXPECT_FALSE(m.ColAny(1));
  EXPECT_EQ(m.NonEmptyRows(), std::vector<uint32_t>{1});
  EXPECT_EQ(m.NonEmptyCols(), std::vector<uint32_t>{3});
}

TEST(BitMatrix, ComposeSmall) {
  // R1 = {(0,1)}, R2 = {(1,2)}  =>  R1∘R2 = {(0,2)}.
  BitMatrix a(2, 3), b(3, 4);
  a.Set(0, 1);
  b.Set(1, 2);
  BitMatrix c = a.Compose(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_TRUE(c.Get(0, 2));
  EXPECT_EQ(c.Count(), 1u);
}

TEST(BitMatrix, ComposeIdentityIsNoop) {
  Rng rng(1);
  BitMatrix m(6, 6);
  for (int i = 0; i < 12; ++i) m.Set(rng.Index(6), rng.Index(6));
  EXPECT_EQ(BitMatrix::Identity(6).Compose(m), m);
  EXPECT_EQ(m.Compose(BitMatrix::Identity(6)), m);
}

TEST(BitMatrix, ComposeMatchesNaiveOracle) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.Index(90);
    size_t m = 1 + rng.Index(90);
    size_t k = 1 + rng.Index(90);
    BitMatrix a(n, m), b(m, k);
    for (size_t i = 0; i < n * m / 3 + 1; ++i) {
      a.Set(rng.Index(n), rng.Index(m));
    }
    for (size_t i = 0; i < m * k / 3 + 1; ++i) {
      b.Set(rng.Index(m), rng.Index(k));
    }
    EXPECT_EQ(a.Compose(b), ComposeNaive(a, b)) << "trial " << trial;
  }
}

TEST(BitMatrix, ComposeIsAssociative) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix a(10, 10), b(10, 10), c(10, 10);
    for (int i = 0; i < 25; ++i) {
      a.Set(rng.Index(10), rng.Index(10));
      b.Set(rng.Index(10), rng.Index(10));
      c.Set(rng.Index(10), rng.Index(10));
    }
    EXPECT_EQ(a.Compose(b).Compose(c), a.Compose(b.Compose(c)));
  }
}

TEST(BitMatrix, UnionWith) {
  BitMatrix a(2, 2), b(2, 2);
  a.Set(0, 0);
  b.Set(1, 1);
  a.UnionWith(b);
  EXPECT_TRUE(a.Get(0, 0));
  EXPECT_TRUE(a.Get(1, 1));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(BitMatrix, ZeroRowsNotIn) {
  BitMatrix a(3, 3);
  a.Set(0, 1);
  a.Set(1, 1);
  a.Set(2, 1);
  std::vector<uint64_t> keep{0b101};  // keep rows 0 and 2
  a.ZeroRowsNotIn(keep);
  EXPECT_TRUE(a.Get(0, 1));
  EXPECT_FALSE(a.Get(1, 1));
  EXPECT_TRUE(a.Get(2, 1));
}

}  // namespace
}  // namespace treenum
