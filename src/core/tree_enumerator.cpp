#include "core/tree_enumerator.h"

#include <cassert>

#include "automata/homogenize.h"
#include "automata/translate.h"

namespace treenum {

namespace {

HomogenizedTva Prepare(const UnrankedTva& query) {
  TranslatedTva translated = TranslateUnrankedTva(query);
  return HomogenizeBinaryTva(translated.tva);
}

}  // namespace

TreeEnumerator::TreeEnumerator(UnrankedTree tree, const UnrankedTva& query,
                               BoxEnumMode mode)
    : enc_(std::move(tree), query.num_labels()),
      pipeline_(&enc_.term(), Prepare(query), mode) {}

TreeEnumerator::Cursor TreeEnumerator::Enumerate() const {
  Cursor c;
  c.emit_empty_ = pipeline_.EmptyAssignmentSatisfies();
  c.inner_ = pipeline_.MakeRootCursor();
  return c;
}

bool TreeEnumerator::Cursor::Next(Assignment* out) {
  if (emit_empty_) {
    emit_empty_ = false;
    *out = Assignment{};
    return true;
  }
  if (!inner_) return false;
  EnumOutput o;
  if (!inner_->Next(&o)) return false;
  *out = o.ToAssignment();
  return true;
}

size_t TreeEnumerator::Cursor::steps() const {
  return inner_ ? inner_->steps() : 0;
}

std::vector<Assignment> TreeEnumerator::EnumerateAll() const {
  return pipeline_.EnumerateAll();
}

std::unique_ptr<Engine::Cursor> TreeEnumerator::MakeCursor() const {
  return pipeline_.MakeEngineCursor();
}

UpdateStats TreeEnumerator::Relabel(NodeId n, Label l) {
  return pipeline_.Apply(enc_.Relabel(n, l));
}

UpdateStats TreeEnumerator::InsertFirstChild(NodeId n, Label l,
                                             NodeId* new_node) {
  return pipeline_.Apply(enc_.InsertFirstChild(n, l, new_node));
}

UpdateStats TreeEnumerator::InsertRightSibling(NodeId n, Label l,
                                               NodeId* new_node) {
  return pipeline_.Apply(enc_.InsertRightSibling(n, l, new_node));
}

UpdateStats TreeEnumerator::DeleteLeaf(NodeId n) {
  return pipeline_.Apply(enc_.DeleteLeaf(n));
}

std::vector<std::vector<NodeId>> AssignmentsToTuples(
    const std::vector<Assignment>& assignments, size_t num_vars) {
  std::vector<std::vector<NodeId>> tuples;
  tuples.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    std::vector<NodeId> tuple(num_vars, kNoNode);
    for (const Singleton& s : a.singletons()) {
      assert(s.var < num_vars && tuple[s.var] == kNoNode &&
             "assignment is not first-order");
      tuple[s.var] = s.node;
    }
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

}  // namespace treenum
