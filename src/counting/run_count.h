// Dynamic run aggregation on assignment circuits (the multiset semantics
// noted as a side remark in §4 of the paper: "each assignment in S(γ(n,q))
// is enumerated exactly as many times as there are runs...").
//
// For every term node n and state q we maintain
//     runs(n, q) = Σ_ν  #runs of A on the subtree encoded below n that
//                        reach q at n under ν,
// i.e. the number of (valuation, run) pairs, which equals the multiset size
// of S(γ(n,q)) under the multiset reading of Definition 3.1. Summed over
// the final states at the root this counts accepting (valuation, run)
// pairs of the whole tree.
//
// Exact *assignment* counting (set semantics) is not tractable on
// nondeterministic circuits — that would require a d-DNNF — but run counts
// are: one bottom-up pass, O(|Q|³) per box, and under updates only the
// O(log n) changed boxes are recomputed, giving a dynamic aggregate in the
// same O(log n) update bound as Theorem 8.1. For unambiguous automata
// (at most one run per valuation), runs(root) is exactly the number of
// satisfying valuations.
//
// Counts are maintained modulo 2^64 (wrap-around), which preserves equality
// checks used by the tests and keeps updates O(1) per arithmetic operation.
#ifndef TREENUM_COUNTING_RUN_COUNT_H_
#define TREENUM_COUNTING_RUN_COUNT_H_

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace treenum {

/// Per-box run-count vectors, maintained incrementally like the circuit and
/// the enumeration index.
class RunCounter {
 public:
  explicit RunCounter(const AssignmentCircuit* circuit) : circuit_(circuit) {}

  /// Builds all count vectors bottom-up.
  void BuildAll();

  /// Recomputes one box's counts from its children's (Lemma 7.3 pattern).
  void RebuildBoxCounts(TermNodeId id);
  void FreeBoxCounts(TermNodeId id);

  /// runs(n, q) mod 2^64 (0 for ⊥; ⊤ counts as 1, the empty valuation).
  uint64_t Count(TermNodeId id, State q) const;

  /// Total accepting (valuation, run) pairs at the root: Σ over final
  /// states of runs(root, q).
  uint64_t TotalAcceptingRuns() const;

 private:
  void EnsureSlot(TermNodeId id);

  const AssignmentCircuit* circuit_;
  // Flat stride-w rows (counts_[id * w + q]), matching the circuit's arena
  // layout: a box-count refresh overwrites its row in place and never
  // touches the heap.
  std::vector<uint64_t> counts_;
};

}  // namespace treenum

#endif  // TREENUM_COUNTING_RUN_COUNT_H_
