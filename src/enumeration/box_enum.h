// box-enum (§5/§6): enumerate, for a boxed set Γ, every interesting box B'
// (those containing var- or ×-gates ∪-reachable from Γ) together with the
// complete ∪-reachability relation R(B', Γ), each box exactly once.
//
// Two implementations share an interface:
//  * IndexedBoxEnum — Algorithm 3, jumping via the fib/span index with delay
//    O(poly(w)) independent of the circuit depth (Lemma 6.4);
//  * NaiveBoxEnum — plain descent through the tree of boxes maintaining the
//    relation, delay O(depth × poly(w)); the stand-in for the pre-index
//    state of the art and the correctness oracle for the indexed version.
//
// Both cursors recycle their stack frames' relation matrices: a pop swaps
// the relation into a scratch slot and a push composes into the retained
// buffer of a previously vacated slot, so after a warm-up traversal the
// per-result delay work performs no heap allocations (asserted with the
// allocation gauge in tests/flat_storage_test.cpp). Reset() rewinds a
// cursor for a fresh enumeration while keeping all warm storage.
#ifndef TREENUM_ENUMERATION_BOX_ENUM_H_
#define TREENUM_ENUMERATION_BOX_ENUM_H_

#include <vector>

#include "circuit/circuit.h"
#include "enumeration/index.h"
#include "util/bit_matrix.h"

namespace treenum {

/// One output of box-enum: an interesting box and R(box, Γ)
/// (rows = the box's dense ∪-gates, cols = positions in the original Γ).
struct BoxRelation {
  TermNodeId box;
  BitMatrix rel;
};

/// Pull-style cursor interface.
class BoxEnumCursor {
 public:
  virtual ~BoxEnumCursor() = default;
  /// Produces the next interesting box; false when exhausted.
  virtual bool Next(BoxRelation* out) = 0;
  /// Rewinds to a fresh enumeration of Γ (dense ∪-gate indices at `box`,
  /// non-empty), reusing all warm storage.
  virtual void Reset(TermNodeId box, const std::vector<uint32_t>& gamma) = 0;
  /// Number of elementary steps taken so far (delay accounting for tests
  /// and benchmarks; one step = one relation composition or box visit).
  size_t steps() const { return steps_; }

 protected:
  size_t steps_ = 0;
};

/// Algorithm 3 with an explicit stack (tail-call-free by construction).
class IndexedBoxEnum : public BoxEnumCursor {
 public:
  /// Starts the enumeration for the boxed set Γ given as dense ∪-gate
  /// indices in `box` (non-empty).
  IndexedBoxEnum(const EnumIndex* index, TermNodeId box,
                 const std::vector<uint32_t>& gamma);

  bool Next(BoxRelation* out) override;
  void Reset(TermNodeId box, const std::vector<uint32_t>& gamma) override;

 private:
  struct Frame {
    enum Kind { kEnter, kWalk } kind;
    TermNodeId box;
    BitMatrix rel;  // R(box, Γ)
  };

  /// Vacates-or-grows the next stack slot; the returned frame keeps the
  /// warm relation buffer of whatever occupied the slot before.
  Frame& PushSlot();

  const EnumIndex* index_;
  std::vector<Frame> stack_;  ///< Slots [0, top_) are live.
  size_t top_ = 0;
  BitMatrix frel_;  ///< The popped frame's relation (swap target).
  BitMatrix rj_;    ///< Walk-step scratch relation.
  std::vector<uint32_t> gates_;
  std::vector<uint32_t> walk_gates_;
};

/// Reference implementation without the index: preorder descent.
class NaiveBoxEnum : public BoxEnumCursor {
 public:
  NaiveBoxEnum(const AssignmentCircuit* circuit, TermNodeId box,
               const std::vector<uint32_t>& gamma);

  bool Next(BoxRelation* out) override;
  void Reset(TermNodeId box, const std::vector<uint32_t>& gamma) override;

 private:
  struct Frame {
    TermNodeId box;
    BitMatrix rel;
  };

  Frame& PushSlot();

  const AssignmentCircuit* circuit_;
  std::vector<Frame> stack_;  ///< Slots [0, top_) are live.
  size_t top_ = 0;
  BitMatrix frel_;
  BitMatrix wire_;  ///< WireRelationInto scratch.
  std::vector<uint32_t> gates_;
};

/// Builds the initial relation {(g, g) | g ∈ Γ} (rows = box ∪-gates, cols =
/// Γ positions).
BitMatrix InitialRelation(size_t num_unions,
                          const std::vector<uint32_t>& gamma);
/// Reuse variant of InitialRelation.
void InitialRelationInto(size_t num_unions, const std::vector<uint32_t>& gamma,
                         BitMatrix* out);

/// Wire relation R(child, box) computed from the circuit (for NaiveBoxEnum
/// and tests); side 0 = left.
BitMatrix WireRelation(const AssignmentCircuit& circuit, TermNodeId box,
                       int side);
/// Reuse variant of WireRelation.
void WireRelationInto(const AssignmentCircuit& circuit, TermNodeId box,
                      int side, BitMatrix* out);

}  // namespace treenum

#endif  // TREENUM_ENUMERATION_BOX_ENUM_H_
