// A small fixed-size fork-join worker pool for data-parallel fan-out.
//
// Built for DynamicDocument's per-commit refresh of N registered query
// pipelines: the pipelines share only the immutable term during a refresh,
// so each one can be rebuilt on its own lane. The pool is deliberately
// minimal — one blocking ParallelFor at a time, no task queue, no futures:
// the fan-out pattern is "run body(0..n-1), wait for all", and anything
// fancier would put allocations and scheduling jitter on the update path.
//
// Threads are spawned once at construction and parked on a condition
// variable between jobs. The *calling* thread always participates, so a
// pool constructed with `threads == 1` spawns no workers at all and
// ParallelFor degenerates to a plain in-order loop — the deterministic
// single-thread fallback.
#ifndef TREENUM_UTIL_THREAD_POOL_H_
#define TREENUM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treenum {

class ThreadPool {
 public:
  /// Spawns `threads - 1` worker threads (the caller of ParallelFor is the
  /// remaining lane). `threads <= 1` spawns none.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the calling thread).
  size_t size() const { return workers_.size() + 1; }

  /// Runs body(0) .. body(n-1), each exactly once, and returns when all
  /// calls have completed. Indices are handed out dynamically, so uneven
  /// per-index work self-balances. With no workers or n <= 1 the calls run
  /// inline in index order with no synchronization at all.
  ///
  /// `body` must not throw, and must not call ParallelFor on this pool
  /// (single fork-join job at a time).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Job state, guarded by mu_. `job_` points at the caller's body for the
  // duration of one ParallelFor; `epoch_` ticks once per job so parked
  // workers can tell a new job from a spurious wakeup.
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_n_ = 0;
  uint64_t epoch_ = 0;
  size_t workers_busy_ = 0;
  bool stop_ = false;
  // Next unclaimed index of the current job. Relaxed ordering suffices:
  // indices are disjoint, and the mutex publishes the job itself.
  std::atomic<size_t> next_{0};
};

}  // namespace treenum

#endif  // TREENUM_UTIL_THREAD_POOL_H_
