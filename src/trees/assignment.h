// Valuations and assignments (§2 of the paper).
//
// A query result is an X-assignment: a set of singletons <Z : n> pairing a
// second-order variable Z with a tree node n. For MSO queries with free
// first-order variables, assignments have fixed cardinality |X|.
#ifndef TREENUM_TREES_ASSIGNMENT_H_
#define TREENUM_TREES_ASSIGNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trees/unranked_tree.h"

namespace treenum {

/// Index of a (second-order) query variable in the variable set X.
using VarId = uint32_t;

/// A singleton <Z : n>: variable Z holds node n.
struct Singleton {
  VarId var;
  NodeId node;

  friend bool operator==(const Singleton& a, const Singleton& b) {
    return a.var == b.var && a.node == b.node;
  }
  friend bool operator!=(const Singleton& a, const Singleton& b) {
    return !(a == b);
  }
  friend bool operator<(const Singleton& a, const Singleton& b) {
    return a.var != b.var ? a.var < b.var : a.node < b.node;
  }
  friend bool operator>(const Singleton& a, const Singleton& b) {
    return b < a;
  }
  friend bool operator<=(const Singleton& a, const Singleton& b) {
    return !(b < a);
  }
  friend bool operator>=(const Singleton& a, const Singleton& b) {
    return !(a < b);
  }
};

/// An assignment: a set of singletons, kept sorted for canonical form.
class Assignment {
 public:
  Assignment() = default;
  explicit Assignment(std::vector<Singleton> singletons);

  /// Adds a singleton (does not re-normalize; call Normalize() after bulk
  /// insertion or use the sorted constructor).
  void Add(Singleton s) { singletons_.push_back(s); }

  /// Sorts and deduplicates, producing the canonical representation.
  void Normalize();

  const std::vector<Singleton>& singletons() const { return singletons_; }
  size_t size() const { return singletons_.size(); }
  bool empty() const { return singletons_.empty(); }

  /// Merges two assignments over disjoint variables/nodes (the × operation
  /// of set circuits); result is normalized if both inputs are.
  static Assignment DisjointUnion(const Assignment& a, const Assignment& b);

  std::string ToString() const;

  friend bool operator==(const Assignment& a, const Assignment& b) {
    return a.singletons_ == b.singletons_;
  }
  friend bool operator!=(const Assignment& a, const Assignment& b) {
    return !(a == b);
  }
  friend bool operator<(const Assignment& a, const Assignment& b) {
    return a.singletons_ < b.singletons_;
  }
  friend bool operator>(const Assignment& a, const Assignment& b) {
    return b < a;
  }
  friend bool operator<=(const Assignment& a, const Assignment& b) {
    return !(b < a);
  }
  friend bool operator>=(const Assignment& a, const Assignment& b) {
    return !(a < b);
  }

 private:
  std::vector<Singleton> singletons_;
};

/// Hash functor so assignment sets can be stored in unordered containers
/// (used by tests and the naive baseline engine).
struct AssignmentHash {
  size_t operator()(const Assignment& a) const;
};

}  // namespace treenum

#endif  // TREENUM_TREES_ASSIGNMENT_H_
