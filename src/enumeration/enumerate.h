// Duplicate-free enumeration of S(Γ) with provenance (Algorithm 2,
// Theorem 5.3), as a pull-style cursor.
//
// For each interesting box produced by box-enum, the cursor first emits the
// assignments of related var-gates, then recursively enumerates the left
// and right factors of the related ×-gates, combining them and computing
// the provenance Prov(S, Γ) = {g ∈ Γ | S ∈ S(g)} that drives the recursive
// filtering (lines 8-16 of Algorithm 2).
#ifndef TREENUM_ENUMERATION_ENUMERATE_H_
#define TREENUM_ENUMERATION_ENUMERATE_H_

#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "enumeration/box_enum.h"
#include "enumeration/index.h"
#include "trees/assignment.h"

namespace treenum {

/// One enumerated element of S(Γ): the assignment as per-leaf variable-mask
/// contributions, plus its provenance as a bitset over Γ positions.
struct EnumOutput {
  std::vector<std::pair<VarMask, NodeId>> contributions;
  std::vector<uint64_t> provenance;

  Assignment ToAssignment() const;
};

/// Which box-enum implementation the cursor uses.
enum class BoxEnumMode { kIndexed, kNaive };

/// Cursor enumerating S(Γ) without duplicates for a boxed set Γ (dense
/// ∪-gate indices at `box`). `index` may be null in kNaive mode.
class AssignmentCursor {
 public:
  AssignmentCursor(const AssignmentCircuit* circuit, const EnumIndex* index,
                   BoxEnumMode mode, TermNodeId box,
                   std::vector<uint32_t> gamma);

  /// Produces the next assignment; false when exhausted.
  bool Next(EnumOutput* out);

  /// Elementary-step counter (delay accounting).
  size_t steps() const;

 private:
  enum class Stage { kNextBox, kEmitVars, kPullLeft, kPullRight, kDone };

  std::unique_ptr<BoxEnumCursor> MakeBoxEnum(TermNodeId box,
                                             const std::vector<uint32_t>& g);
  void PrepareBox();
  void SetupLeft();
  bool SetupRight();

  const AssignmentCircuit* circuit_;
  const EnumIndex* index_;
  BoxEnumMode mode_;
  TermNodeId box_;
  std::vector<uint32_t> gamma_;
  size_t prov_words_;

  std::unique_ptr<BoxEnumCursor> box_enum_;
  Stage stage_ = Stage::kNextBox;

  // Current interesting box.
  BoxRelation cur_;
  // Non-empty-row scratch for PrepareBox (reused across boxes).
  std::vector<uint32_t> rows_scratch_;
  // Var agenda: (mask index, provenance) in deterministic order.
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> var_agenda_;
  size_t var_pos_ = 0;
  // Cross agenda: local ×-gate id → provenance base; involved gate list.
  std::vector<uint32_t> crosses_;
  std::vector<std::vector<uint64_t>> cross_prov_;
  // Left recursion.
  std::vector<uint32_t> gamma_left_;
  std::vector<int32_t> left_pos_;  // left child dense ∪-gate -> ΓL position
  std::unique_ptr<AssignmentCursor> left_cursor_;
  EnumOutput left_out_;
  // Right recursion (depends on the current left output).
  std::vector<uint32_t> crosses_left_;  // G×': crosses compatible with SL
  std::vector<uint32_t> gamma_right_;
  std::vector<int32_t> right_pos_;
  std::unique_ptr<AssignmentCursor> right_cursor_;

  size_t local_steps_ = 0;
};

/// Convenience: run a cursor to completion and return all assignments
/// (sorted). Used by tests and the recompute baselines.
std::vector<Assignment> CollectAll(AssignmentCursor& cursor);

}  // namespace treenum

#endif  // TREENUM_ENUMERATION_ENUMERATE_H_
