// A small fixed-size fork-join worker pool for data-parallel fan-out.
//
// Built for DynamicDocument's per-commit refresh of N registered query
// pipelines: the pipelines share only the immutable term during a refresh,
// so each one can be rebuilt on its own lane. The pool is deliberately
// minimal — one blocking ParallelFor at a time, no task queue, no futures:
// the fan-out pattern is "run body(0..n-1), wait for all", and anything
// fancier would put allocations and scheduling jitter on the update path.
// (Inter-document scheduling is a different problem with a different
// primitive: the serving layer's work-stealing deques,
// util/work_stealing_deque.h. This pool's fork-join contract is for
// *intra*-document fan-out and is unchanged.)
//
// Threads are spawned once at construction and parked on a condition
// variable between jobs. The *calling* thread always participates, so a
// pool constructed with `threads == 1` spawns no workers at all and
// ParallelFor degenerates to a plain in-order loop — the deterministic
// single-thread fallback.
//
// ParallelFor is a template over the body type: the body is passed to the
// workers as a raw (function pointer, context pointer) pair, so calling it
// with a lambda never constructs a std::function and never allocates —
// the steady-state refresh path stays allocation-free under the gauge even
// when invoked from shard workers (asserted in serving_test's
// ParallelForIsAllocationFree).
#ifndef TREENUM_UTIL_THREAD_POOL_H_
#define TREENUM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace treenum {

class ThreadPool {
 public:
  /// Spawns `threads - 1` worker threads (the caller of ParallelFor is the
  /// remaining lane). `threads <= 1` spawns none.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (worker threads + the calling thread).
  size_t size() const { return workers_.size() + 1; }

  /// Runs body(0) .. body(n-1), each exactly once, and returns when all
  /// calls have completed. Indices are handed out dynamically, so uneven
  /// per-index work self-balances. With no workers or n <= 1 the calls run
  /// inline in index order with no synchronization at all.
  ///
  /// `body` must not throw, and must not call ParallelFor on this pool
  /// (single fork-join job at a time). `body` is borrowed by reference for
  /// the duration of the call — no copy, no type erasure allocation.
  template <typename Body>
  void ParallelFor(size_t n, const Body& body) {
    if (workers_.empty() || n <= 1) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    RunJob(
        n,
        [](void* ctx, size_t i) { (*static_cast<const Body*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(&body)));
  }

 private:
  /// Type-erased job entry: invoke(ctx, i) calls the borrowed body.
  using JobFn = void (*)(void* ctx, size_t i);

  void RunJob(size_t n, JobFn invoke, void* ctx);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Job state, guarded by mu_. `job_invoke_`/`job_ctx_` describe the
  // caller's body for the duration of one RunJob; `epoch_` ticks once per
  // job so parked workers can tell a new job from a spurious wakeup.
  JobFn job_invoke_ = nullptr;
  void* job_ctx_ = nullptr;
  size_t job_n_ = 0;
  uint64_t epoch_ = 0;
  size_t workers_busy_ = 0;
  bool stop_ = false;
  // Next unclaimed index of the current job. Relaxed ordering suffices:
  // indices are disjoint, and the mutex publishes the job itself.
  std::atomic<size_t> next_{0};
};

}  // namespace treenum

#endif  // TREENUM_UTIL_THREAD_POOL_H_
