// TREENUM_CHECK — an always-on (release builds included) invariant check
// for limits that silent narrowing used to hide (e.g. circuit width bounds
// on large product automata). Unlike assert(), violating a TREENUM_CHECK
// aborts with a diagnostic in every build type; it guards *capacity*
// invariants whose violation would otherwise corrupt arena offsets.
#ifndef TREENUM_UTIL_CHECK_H_
#define TREENUM_UTIL_CHECK_H_

namespace treenum {
namespace internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);

}  // namespace internal
}  // namespace treenum

#define TREENUM_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::treenum::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                     \
  } while (0)

#endif  // TREENUM_UTIL_CHECK_H_
