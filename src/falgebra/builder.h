// Static construction of logarithmic-height forest algebra terms
// (the encoding scheme ω of Lemma 7.4, following Niewerth's construction).
//
// The encoder works on "pieces": a piece is either a complete subtree of the
// input tree rooted at `root`, or a context piece (root, hole_parent): the
// subtree at `root` with everything strictly below `hole_parent` removed
// (the hole sits at hole_parent's child-forest slot). The divide-and-conquer
// recursion guarantees that within O(1) levels the piece size halves, giving
// terms of height O(log n):
//  * a forest of pieces is split at a ~size-median boundary (both sides end
//    up in [s/4, 3s/4]), or a piece larger than s/2 is isolated;
//  * a single tree is split at its "heavy node" v — the deepest node whose
//    subtree exceeds half — into the context above v's children and the
//    child forest of v (all of whose trees are ≤ s/2);
//  * a context piece is split at the deepest hole-path node whose child
//    forest exceeds half, mirroring the tree case with ⊙VV.
#ifndef TREENUM_FALGEBRA_BUILDER_H_
#define TREENUM_FALGEBRA_BUILDER_H_

#include <vector>

#include "falgebra/term.h"
#include "trees/unranked_tree.h"

namespace treenum {

/// A piece of the input tree to encode; hole_parent == kNoNode means a
/// complete subtree, otherwise the context piece (root, hole_parent).
struct Piece {
  NodeId root;
  NodeId hole_parent = kNoNode;
  bool IsContext() const { return hole_parent != kNoNode; }
};

/// Reusable workspace for EncodePieces. Holding one of these across calls
/// makes steady-state re-encoding allocation-free: the dense size arrays are
/// invalidated by epoch stamping instead of clearing, and the recursion
/// shares one piece buffer (forest splits are contiguous subranges, and
/// child forests are appended at the end and truncated on return).
struct EncodeScratch {
  std::vector<uint32_t> csize;  ///< fragment sizes; valid iff stamp==epoch
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;
  std::vector<Piece> forest;  ///< shared piece work buffer
  struct DfsFrame {
    NodeId n;
    uint32_t ci;
    uint32_t acc;
  };
  std::vector<DfsFrame> dfs;
};

/// Encodes the pieces (in sibling order, at most one context piece) into a
/// fresh subterm of `term`. Returns the new subterm's root (detached: no
/// parent). Updates `leaf_of[n]` for every covered tree node n and appends
/// all created term node ids to `created` (children before parents) if
/// non-null. `pieces` must not alias `scratch.forest`.
TermNodeId EncodePieces(Term& term, const UnrankedTree& tree,
                        const Piece* pieces, size_t num_pieces,
                        std::vector<TermNodeId>& leaf_of,
                        EncodeScratch& scratch,
                        std::vector<TermNodeId>* created = nullptr);

/// Convenience overload with a call-local scratch (allocates; fine for
/// one-shot encodes like the static builder).
TermNodeId EncodePieces(Term& term, const UnrankedTree& tree,
                        const std::vector<Piece>& pieces,
                        std::vector<TermNodeId>& leaf_of,
                        std::vector<TermNodeId>* created = nullptr);

/// A tree together with its balanced term encoding and the leaf bijection
/// φ: tree nodes → term leaf symbols.
struct Encoding {
  UnrankedTree tree;
  Term term;
  std::vector<TermNodeId> leaf_of;  ///< NodeId -> term leaf id.

  Encoding(UnrankedTree t, const TermAlphabet& alphabet)
      : tree(std::move(t)), term(alphabet) {}
};

/// Encodes a whole tree into a balanced term (linear time).
Encoding EncodeTree(UnrankedTree tree, size_t num_base_labels);

/// The height bound enforced by the update layer: a subterm of size s may
/// have height at most kBalanceC * floor(log2(s)) + kBalanceK before it is
/// rebuilt. The static builder produces heights well below this bound (see
/// falgebra tests, which measure the static constant).
inline constexpr uint32_t kBalanceC = 4;
inline constexpr uint32_t kBalanceK = 6;

uint32_t MaxAllowedHeight(uint32_t size);

/// Collects the piece decomposition represented by the subterm `id` (used
/// before rebuilding it). Inverse of EncodePieces up to re-balancing.
std::vector<Piece> CollectPieces(const Term& term, TermNodeId id);

/// Appends the decomposition to `out` instead of returning a fresh vector;
/// allocation-free once `out` has warmed-up capacity.
void CollectPiecesInto(const Term& term, TermNodeId id,
                       std::vector<Piece>& out);

}  // namespace treenum

#endif  // TREENUM_FALGEBRA_BUILDER_H_
