// Set circuits (§3 of the paper), specialized to the shape produced by the
// construction of Lemma 3.7: a complete structured DNNF whose v-tree is the
// input term, with one box per term node.
//
// Gate inventory per box B_n (n a term node, A = (Q, ι, δ, F) homogenized):
//   * for each state q, γ(n, q) is ⊥, ⊤, or a ∪-gate (at most |Q| ∪-gates);
//   * ×-gates д^{q1,q2} with left input γ(left(n), q1) and right input
//     γ(right(n), q2), shared across result states (≤ w² per box);
//   * var-gates ⟨Y : n⟩ in leaf boxes, shared across states (Svar injective).
//
// Wires therefore go only (same box) var/×-gate → ∪-gate, child-box ∪-gate →
// ×-gate, and — through the ⊤-collapse rule that keeps ⊤-gates from being
// inputs — child-box ∪-gate → ∪-gate. The last kind forms the long ∪-chains
// that the jump index of §6 exists to skip.
#ifndef TREENUM_CIRCUIT_CIRCUIT_H_
#define TREENUM_CIRCUIT_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "automata/binary_tva.h"
#include "falgebra/term.h"

namespace treenum {

enum class GateKind : uint8_t { kBot = 0, kTop = 1, kUnion = 2 };

/// A ×-gate: left input γ(left child, left_state), right input
/// γ(right child, right_state); both are ∪-gates (never ⊤/⊥ by collapse).
struct CrossGate {
  State left_state;
  State right_state;
};

inline constexpr int16_t kNoGate = -1;

/// The gates of one box (= one term node).
struct Box {
  /// γ(n, q) kind per state q (size = automaton state count).
  std::vector<GateKind> gamma;
  /// Dense index of γ(n, q) among this box's ∪-gates, or kNoGate.
  std::vector<int16_t> union_idx;
  /// Dense ∪-gate index -> state.
  std::vector<State> union_states;

  /// Local ×-gates (internal boxes only), deduplicated by (q1, q2).
  std::vector<CrossGate> cross_gates;
  /// Per ∪-gate: local ×-gate ids feeding it.
  std::vector<std::vector<uint16_t>> cross_inputs;

  /// Per ∪-gate: child-box ∪-gate inputs created by ⊤-collapse, as
  /// (side, state) with side 0 = left child box, 1 = right child box.
  std::vector<std::vector<std::pair<uint8_t, State>>> child_union_inputs;

  /// Distinct variable masks of this (leaf) box's var-gates.
  std::vector<VarMask> var_masks;
  /// Per ∪-gate: indices into var_masks.
  std::vector<std::vector<uint16_t>> var_inputs;

  size_t num_unions() const { return union_states.size(); }
  bool HasNonUnionInput(size_t u) const {
    return !cross_inputs[u].empty() || !var_inputs[u].empty();
  }
};

/// The assignment circuit of a homogenized binary TVA on a term, maintained
/// incrementally: boxes are (re)computed per term node, bottom-up.
class AssignmentCircuit {
 public:
  /// `term`, `tva` and `kind` must outlive the circuit. `kind[q]` says
  /// whether state q is a 1-state (see HomogenizedTva).
  AssignmentCircuit(const Term* term, const BinaryTva* tva,
                    const std::vector<uint8_t>* kind);

  const Term& term() const { return *term_; }
  const BinaryTva& tva() const { return *tva_; }
  /// Width bound w: the automaton's state count.
  size_t width() const { return tva_->num_states(); }

  /// Builds all boxes bottom-up (preprocessing, O(|T| * |A|)).
  void BuildAll();

  /// Recomputes the box of `id` from its children's boxes (Lemma 7.3 step).
  void RebuildBox(TermNodeId id);

  /// Drops the box of a freed term node.
  void FreeBox(TermNodeId id);

  const Box& box(TermNodeId id) const { return boxes_[id]; }
  GateKind GammaKind(TermNodeId id, State q) const {
    return boxes_[id].gamma[q];
  }

  /// Total number of gates (for accounting tests/benches).
  size_t CountGates() const;

 private:
  void BuildLeafBox(TermNodeId id);
  void BuildInternalBox(TermNodeId id);
  void EnsureSlot(TermNodeId id);

  const Term* term_;
  const BinaryTva* tva_;
  const std::vector<uint8_t>* kind_;
  std::vector<Box> boxes_;
};

}  // namespace treenum

#endif  // TREENUM_CIRCUIT_CIRCUIT_H_
