// EnumerationPipeline — the single owner of all derived enumeration state.
//
// The paper's machinery (Theorem 8.1 / Corollary 8.4) is one pipeline
// instantiated over different encodings: a balanced forest-algebra term
// (tree `DynamicEncoding` or word AVL `WordEncoding`) feeds an assignment
// circuit (Lemma 3.7), a jump index (Lemma 6.3), and optionally dynamic
// run counts. This class concentrates the maintenance logic that
// TreeEnumerator and WordEnumerator previously duplicated: consuming the
// `UpdateResult` of any encoding backend and refreshing circuit boxes,
// index entries, and count vectors along the changed path (Lemma 7.3).
//
// Batched updates: between BeginBatch() and CommitBatch(), Apply() only
// *records* the freed / changed term nodes; the encoding keeps mutating
// the term immediately. CommitBatch() then coalesces the recorded sets —
// a node touched by many edits in the batch is refreshed once, a node
// created and deleted within the batch is never rebuilt at all — and
// rebuilds the surviving boxes children-before-parents. For k clustered
// edits on a tree of n nodes this does O(k + log n) box rebuilds instead
// of O(k log n).
#ifndef TREENUM_CORE_PIPELINE_H_
#define TREENUM_CORE_PIPELINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "automata/homogenize.h"
#include "circuit/circuit.h"
#include "counting/run_count.h"
#include "core/engine.h"
#include "enumeration/enumerate.h"
#include "enumeration/index.h"
#include "falgebra/update.h"

namespace treenum {

class EnumerationPipeline {
 public:
  /// Builds the circuit (and, in kIndexed mode, the jump index) over
  /// `term`, which must outlive the pipeline and is mutated externally by
  /// the encoding backend that produces the UpdateResults fed to Apply().
  EnumerationPipeline(const Term* term, HomogenizedTva homog,
                      BoxEnumMode mode);

  EnumerationPipeline(const EnumerationPipeline&) = delete;
  EnumerationPipeline& operator=(const EnumerationPipeline&) = delete;

  // ---- Introspection ----

  const Term& term() const { return *term_; }
  const BinaryTva& tva() const { return homog_.tva; }
  const std::vector<uint8_t>& state_kinds() const { return homog_.kind; }
  /// Width of the circuit (= trimmed, homogenized |Q'|).
  size_t width() const { return homog_.tva.num_states(); }
  const AssignmentCircuit& circuit() const { return circuit_; }
  const EnumIndex& index() const { return index_; }
  BoxEnumMode mode() const { return mode_; }

  // ---- Dynamic counting (optional; see counting/run_count.h) ----

  void EnableCounting();
  bool counting_enabled() const { return counter_ != nullptr; }
  /// Accepting (valuation, run) pairs mod 2^64; requires EnableCounting().
  uint64_t AcceptingRuns() const;

  // ---- Incremental maintenance ----

  /// Consumes one encoding UpdateResult. Outside a batch, refreshes the
  /// changed boxes immediately; inside a batch, records them for
  /// CommitBatch().
  UpdateStats Apply(const UpdateResult& result);

  void BeginBatch();
  bool in_batch() const { return in_batch_; }
  /// Coalesces everything recorded since BeginBatch() and refreshes each
  /// surviving box exactly once, children before parents.
  UpdateStats CommitBatch();

  // ---- Query surface. Querying during an open batch is unsupported:
  // these assert in debug builds and report no answers in release builds
  // (boxes of term nodes created mid-batch do not exist until commit). ----

  /// True iff some final 0-state's root gate is ⊤ (the empty assignment
  /// satisfies the query).
  bool EmptyAssignmentSatisfies() const;
  /// Dense ∪-gate indices of the final 1-states at the root box.
  std::vector<uint32_t> FinalGamma() const;
  /// O(w) Boolean answer.
  bool HasAnswer() const;
  /// Cursor over the non-empty satisfying assignments, or null when the
  /// root boxed set is empty. (Callers handle EmptyAssignmentSatisfies.)
  std::unique_ptr<AssignmentCursor> MakeRootCursor() const;
  /// Type-erased cursor over *all* satisfying assignments (including the
  /// empty one) — the shared implementation behind Engine::MakeCursor.
  std::unique_ptr<Engine::Cursor> MakeEngineCursor() const;
  /// All satisfying assignments (sorted), including the empty one.
  std::vector<Assignment> EnumerateAll() const;

 private:
  void RefreshBox(TermNodeId id);
  void ReleaseBox(TermNodeId id);

  const Term* term_;
  HomogenizedTva homog_;
  AssignmentCircuit circuit_;
  EnumIndex index_;
  BoxEnumMode mode_;
  std::unique_ptr<RunCounter> counter_;

  bool in_batch_ = false;
  std::vector<TermNodeId> batch_freed_;
  std::vector<TermNodeId> batch_changed_;
  // CommitBatch depth-ordering scratch (clear() keeps capacity, so
  // steady-state batched relabels stay allocation-free).
  std::vector<std::pair<uint32_t, TermNodeId>> order_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_CORE_PIPELINE_H_
