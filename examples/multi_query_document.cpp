// Multi-query serving: several XPath-style queries tracking one edited
// tree through a shared DynamicDocument. The document owns the balanced
// term encoding — each edit maintains it once, regardless of how many
// queries are registered — and fans the changed path out to every query's
// pipeline, optionally on a worker pool.
#include <cstdio>
#include <vector>

#include "automata/query_library.h"
#include "core/document.h"
#include "util/random.h"
#include "util/thread_pool.h"

using namespace treenum;

int main() {
  Rng rng(11);
  UnrankedTree tree = RandomTree(20000, 3, rng);

  // One shared document over the 3-label alphabet {0, 1, 2}.
  DynamicDocument doc(tree, 3);

  // Four XPath-ish queries registered on it. Each gets its own circuit +
  // jump index; all share the document's term.
  struct Named {
    const char* name;
    DynamicDocument::QueryId id;
  };
  std::vector<Named> queries = {
      {"//1                 (select label-1 nodes)",
       doc.Register(QuerySelectLabel(3, 1))},
      {"//2//1              (label-1 under a label-2 ancestor)",
       doc.Register(QueryMarkedAncestor(3, 1, 2))},
      {"//0//1 pairs        (descendant pairs)",
       doc.Register(QueryDescendantPairs(3, 0, 1))},
      {"//2/0               (label-0 child of label-2)",
       doc.Register(QueryChildOfLabel(3, 0, 2))},
  };

  auto report = [&](const char* when) {
    std::printf("%s\n", when);
    for (const Named& nq : queries) {
      std::printf("  %-52s answers=%zu\n", nq.name,
                  doc.pipeline(nq.id).EnumerateAll().size());
    }
  };
  report("initial tree:");

  // Sequential edits: the encoding is maintained once per edit, every
  // registered pipeline refreshes the same changed path.
  std::vector<NodeId> nodes = doc.tree().PreorderNodes();
  UpdateStats stats;
  for (int i = 0; i < 1000; ++i) {
    NodeId n = nodes[rng.Index(nodes.size())];
    stats += doc.Relabel(n, static_cast<Label>(rng.Index(3)));
  }
  std::printf(
      "after 1000 relabels: boxes_recomputed=%zu (summed over %zu queries)\n",
      stats.boxes_recomputed, doc.num_queries());
  report("after relabels:");

  // Batched transaction with parallel refresh fan-out: the changed-box set
  // is merged once at the document, then each query's pipeline refreshes
  // on its own worker-pool lane.
  ThreadPool pool(4);
  doc.set_pool(&pool);
  doc.BeginBatch();
  for (int i = 0; i < 256; ++i) {
    NodeId n = nodes[rng.Index(nodes.size())];
    doc.InsertFirstChild(n, static_cast<Label>(rng.Index(3)));
  }
  UpdateStats commit = doc.CommitBatch();
  std::printf(
      "batched 256 inserts, 4-lane commit: boxes_recomputed=%zu\n",
      commit.boxes_recomputed);
  report("after batched inserts:");

  // Query dedupe: re-registering an already-registered query (even under
  // a different construction of the same automaton) is admitted to the
  // existing pipeline — refresh cost stays per *distinct* query.
  DynamicDocument::QueryHandle dup = doc.Register(QuerySelectLabel(3, 1));
  std::printf(
      "\nregistered //1 again: handles=%zu, distinct pipelines=%zu "
      "(same object: %s)\n",
      doc.num_queries(), doc.num_pipelines(),
      &doc.pipeline(dup) == &doc.pipeline(queries[0].id) ? "yes" : "no");

  // Admission/eviction: cap the registry and release the duplicate plus
  // one query; the refcount-zero pipeline is evicted LRU-first, while
  // re-registering re-admits (warm) or rebuilds (evicted) as needed.
  doc.set_pipeline_cap(3);
  doc.Unregister(dup);              // still referenced by queries[0] - shared
  doc.Unregister(queries[3].id);    // refcount zero -> evicted by the cap
  DocumentStats reg = doc.stats();
  std::printf(
      "cap=3 after releases: live=%zu warm=%zu evicted=%zu "
      "(shared_hits=%zu readmissions=%zu rebuilds=%zu evictions=%zu)\n",
      reg.live_pipelines, reg.warm_pipelines, reg.evicted_entries,
      reg.shared_hits, reg.readmissions, reg.rebuilds, reg.evictions);
  for (const DocumentStats::PipelineStats& ps : reg.pipelines) {
    std::printf(
        "  pipeline %016llx: queries=%zu width=%zu boxes_refreshed=%llu%s\n",
        static_cast<unsigned long long>(ps.fingerprint), ps.queries, ps.width,
        static_cast<unsigned long long>(ps.boxes_refreshed),
        ps.built ? "" : " (evicted)");
  }
  return 0;
}
