#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include "automata/homogenize.h"
#include "automata/query_library.h"
#include "automata/translate.h"
#include "circuit/assignment_circuit.h"
#include "falgebra/builder.h"
#include "falgebra/update.h"
#include "test_util.h"

namespace treenum {
namespace {

// Structural invariants of Lemma 3.7 / Definition 3.4 on every box.
void CheckStructure(const AssignmentCircuit& c) {
  const Term& term = c.term();
  size_t w = c.width();
  // The arena invariants (span bounds, CSR monotonicity, overlap-freedom)
  // hold alongside the paper's structural ones.
  EXPECT_EQ(c.ValidateStorage(), "");
  for (TermNodeId id = 0; id < term.id_bound(); ++id) {
    if (!term.IsAlive(id)) continue;
    const Box b = c.box(id);
    // Width bound: at most w ∪-gates, at most w² ×-gates.
    EXPECT_LE(b.num_unions(), w);
    EXPECT_LE(b.num_cross_gates(), w * w);
    for (size_t u = 0; u < b.num_unions(); ++u) {
      // Every ∪-gate has at least one input.
      EXPECT_TRUE(!b.cross_inputs(u).empty() ||
                  !b.child_union_inputs(u).empty() ||
                  !b.var_inputs(u).empty());
      // Dense index consistency.
      State q = b.union_state(u);
      EXPECT_EQ(b.union_idx(q), static_cast<int32_t>(u));
      EXPECT_EQ(b.gamma(q), GateKind::kUnion);
    }
    if (term.IsLeaf(id)) {
      EXPECT_TRUE(b.cross_gates().empty());
    } else {
      EXPECT_TRUE(b.var_masks().empty());
      // ×-gates and child-union inputs reference ∪-gates (never ⊤/⊥) in the
      // child boxes — the ⊤/⊥-collapse rule of the appendix construction.
      const Box lb = c.box(term.node(id).left);
      const Box rb = c.box(term.node(id).right);
      for (const CrossGate& cg : b.cross_gates()) {
        EXPECT_EQ(lb.gamma(cg.left_state), GateKind::kUnion);
        EXPECT_EQ(rb.gamma(cg.right_state), GateKind::kUnion);
      }
      for (size_t u = 0; u < b.num_unions(); ++u) {
        for (const auto& [side, state] : b.child_union_inputs(u)) {
          const Box& cb = side == 0 ? lb : rb;
          EXPECT_EQ(cb.gamma(state), GateKind::kUnion);
        }
      }
    }
  }
}

TEST(Circuit, GammaSemanticsOnHHTerms) {
  // For every term node n and state q: S(γ(n,q)) must equal the set of
  // assignments of valuations under which some run reaches q at n
  // (Definition 3.3), checked by brute force.
  Rng rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 8);
    HomogenizedTva h = HomogenizeBinaryTva(raw);
    Term term(TermAlphabet{2});
    term.set_root(BuildRandomHHTerm(term, rng, 1 + rng.Index(5), 2));
    AssignmentCircuit circuit(&term, &h.tva, &h.kind);
    circuit.BuildAll();
    CheckStructure(circuit);

    std::vector<Assignment> expected = TermBruteForceAssignments(h.tva, term);
    std::vector<Assignment> actual =
        MaterializeSatisfying(circuit, h.kind);
    EXPECT_EQ(expected, actual) << "trial " << trial;
  }
}

TEST(Circuit, GammaPerStateSemantics) {
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 3, 7);
    HomogenizedTva h = HomogenizeBinaryTva(raw);
    Term term(TermAlphabet{2});
    term.set_root(BuildRandomHHTerm(term, rng, 3, 2));
    AssignmentCircuit circuit(&term, &h.tva, &h.kind);
    circuit.BuildAll();
    // Check every root gate against per-state brute force.
    for (State q = 0; q < h.tva.num_states(); ++q) {
      BinaryTva one(h.tva.num_states(), h.tva.num_labels(), h.tva.num_vars());
      for (const LeafInit& li : h.tva.leaf_inits()) {
        one.AddLeafInit(li.label, li.vars, li.state);
      }
      for (const Transition& t : h.tva.transitions()) {
        one.AddTransition(t.label, t.left, t.right, t.state);
      }
      one.AddFinal(q);
      std::vector<Assignment> expected =
          TermBruteForceAssignments(one, term);
      std::set<Assignment> got =
          MaterializeGamma(circuit, term.root(), q);
      std::vector<Assignment> actual(got.begin(), got.end());
      EXPECT_EQ(expected, actual) << "trial " << trial << " state " << q;
    }
  }
}

TEST(Circuit, FullTreePipelineCircuitSemantics) {
  // Translated + homogenized automata on balanced encodings of real trees.
  Rng rng(71);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  TranslatedTva tr = TranslateUnrankedTva(q);
  HomogenizedTva h = HomogenizeBinaryTva(tr.tva);
  for (const char* s :
       {"(a (c))", "(b (c))", "(b (a (c)) (c))", "(a (b (c) (a (c))))"}) {
    UnrankedTree tree = UnrankedTree::Parse(s);
    Encoding enc = EncodeTree(tree, 3);
    AssignmentCircuit circuit(&enc.term, &h.tva, &h.kind);
    circuit.BuildAll();
    CheckStructure(circuit);
    std::vector<Assignment> expected = q.BruteForceAssignments(tree);
    std::vector<Assignment> actual = MaterializeSatisfying(circuit, h.kind);
    EXPECT_EQ(expected, actual) << s;
  }
}

TEST(Circuit, IncrementalRebuildMatchesFreshBuild) {
  // Rebuilding boxes along an update path yields the same circuit contents
  // as building from scratch.
  Rng rng(73);
  UnrankedTva q = QuerySelectLabel(2, 1);
  TranslatedTva tr = TranslateUnrankedTva(q);
  HomogenizedTva h = HomogenizeBinaryTva(tr.tva);

  DynamicEncoding dyn(RandomTree(40, 2, rng), 2);
  AssignmentCircuit circuit(&dyn.term(), &h.tva, &h.kind);
  circuit.BuildAll();

  for (int step = 0; step < 30; ++step) {
    std::vector<NodeId> nodes = dyn.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    UpdateResult r = dyn.InsertFirstChild(n, static_cast<Label>(
                                                 rng.Index(2)));
    for (TermNodeId id : r.freed) circuit.FreeBox(id);
    for (TermNodeId id : r.changed_bottom_up) circuit.RebuildBox(id);

    AssignmentCircuit fresh(&dyn.term(), &h.tva, &h.kind);
    fresh.BuildAll();
    std::vector<Assignment> a = MaterializeSatisfying(circuit, h.kind);
    std::vector<Assignment> b = MaterializeSatisfying(fresh, h.kind);
    ASSERT_EQ(a, b) << "step " << step;
  }
}

TEST(Circuit, GateCountLinearInTree) {
  UnrankedTva q = QuerySelectLabel(2, 1);
  TranslatedTva tr = TranslateUnrankedTva(q);
  HomogenizedTva h = HomogenizeBinaryTva(tr.tva);
  Rng rng(79);
  size_t per_node = 0;
  for (size_t n : {100u, 200u, 400u}) {
    UnrankedTree tree = RandomTree(n, 2, rng);
    Encoding enc = EncodeTree(tree, 2);
    AssignmentCircuit c(&enc.term, &h.tva, &h.kind);
    c.BuildAll();
    size_t gates = c.CountGates();
    size_t nodes = enc.term.num_alive();
    if (per_node == 0) per_node = gates / nodes + 1;
    EXPECT_LE(gates, per_node * nodes * 2) << n;
  }
}

}  // namespace
}  // namespace treenum
