// The marked-ancestor reduction of §9: answering existential marked
// ancestor queries through the enumeration pipeline, exactly as in the
// lower-bound proof of Theorem 9.2 — mark/unmark are relabelings, and a
// query temporarily relabels the probed node to `special`, enumerates, and
// relabels back.
#include <cstdio>

#include "automata/query_library.h"
#include "core/tree_enumerator.h"
#include "util/random.h"

using namespace treenum;

namespace {

// Labels: 0 = unmarked, 1 = marked, 2 = special.
constexpr Label kUnmarked = 0, kMarked = 1, kSpecial = 2;

class MarkedAncestorStructure {
 public:
  explicit MarkedAncestorStructure(UnrankedTree tree)
      : enumerator_(std::move(tree), QueryMarkedAncestor(3, kMarked,
                                                         kSpecial)) {}

  void Mark(NodeId v) { enumerator_.Relabel(v, kMarked); }
  void Unmark(NodeId v) { enumerator_.Relabel(v, kUnmarked); }

  /// Does v have a marked proper ancestor? (The reduction from the proof of
  /// Theorem 9.2: two relabelings + one enumeration probe.)
  bool Query(NodeId v) {
    Label old = enumerator_.tree().label(v);
    enumerator_.Relabel(v, kSpecial);
    TreeEnumerator::Cursor c = enumerator_.Enumerate();
    Assignment a;
    bool any = false;
    while (c.Next(&a)) {
      // v is the only special node, so any answer means "yes".
      any = true;
      break;
    }
    enumerator_.Relabel(v, old);
    return any;
  }

  const UnrankedTree& tree() const { return enumerator_.tree(); }

 private:
  TreeEnumerator enumerator_;
};

}  // namespace

int main() {
  Rng rng(7);
  UnrankedTree tree = RandomTree(400, 1, rng);
  // Relabel everything to "unmarked" (RandomTree used label 0 already).
  MarkedAncestorStructure s(std::move(tree));

  std::vector<NodeId> nodes = s.tree().PreorderNodes();
  NodeId probe = nodes[nodes.size() / 2];
  std::printf("probe node %u, depth %zu\n", probe, s.tree().Depth(probe));
  std::printf("query before marking: %s\n",
              s.Query(probe) ? "marked ancestor" : "none");

  // Mark an ancestor halfway up.
  NodeId anc = probe;
  size_t up = s.tree().Depth(probe) / 2;
  for (size_t i = 0; i < up; ++i) anc = s.tree().parent(anc);
  if (anc == probe) {
    std::printf("probe is too shallow for the demo; marking the root\n");
    anc = s.tree().root();
  }
  s.Mark(anc);
  std::printf("marked node %u, query: %s\n", anc,
              s.Query(probe) ? "marked ancestor" : "none");

  s.Unmark(anc);
  std::printf("unmarked, query: %s\n",
              s.Query(probe) ? "marked ancestor" : "none");

  // A burst of random mark/unmark/query operations.
  size_t yes = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    NodeId n = nodes[rng.Index(nodes.size())];
    switch (rng.Index(3)) {
      case 0:
        s.Mark(n);
        break;
      case 1:
        s.Unmark(n);
        break;
      case 2:
        yes += s.Query(n);
        ++total;
        break;
    }
  }
  std::printf("random probes: %zu/%zu answered yes\n", yes, total);
  return 0;
}
