// The simple enumeration scheme of §4 (Algorithm 1): enumerate S(γ) by a
// plain preorder traversal of the circuit, producing each assignment once
// per run of the automaton (i.e. WITH duplicates) and with delay linear in
// the circuit depth. Kept as the ablation baseline showing what the
// machinery of §5/§6 buys.
#ifndef TREENUM_ENUMERATION_SIMPLE_ENUM_H_
#define TREENUM_ENUMERATION_SIMPLE_ENUM_H_

#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "enumeration/enumerate.h"

namespace treenum {

/// Cursor enumerating S(g) with duplicates for one ∪-gate g (given as a
/// dense ∪-gate index at `box`).
class SimpleEnumCursor {
 public:
  SimpleEnumCursor(const AssignmentCircuit* circuit, TermNodeId box,
                   uint32_t gate);

  /// Produces the next assignment (provenance left empty); false when done.
  bool Next(EnumOutput* out);

 private:
  struct Frame {
    TermNodeId box;
    uint32_t gate;
    size_t var_pos = 0;
    size_t cross_pos = 0;
    size_t child_pos = 0;
    std::unique_ptr<SimpleEnumCursor> left;
    std::unique_ptr<SimpleEnumCursor> right;
    EnumOutput left_out;
    bool have_left = false;
  };

  const AssignmentCircuit* circuit_;
  std::vector<std::unique_ptr<Frame>> stack_;
};

/// Runs Algorithm 1 over all the given root gates and returns everything it
/// outputs (with duplicates, unsorted).
std::vector<Assignment> SimpleEnumerateAll(const AssignmentCircuit& circuit,
                                           TermNodeId box,
                                           const std::vector<uint32_t>& gates);

}  // namespace treenum

#endif  // TREENUM_ENUMERATION_SIMPLE_ENUM_H_
