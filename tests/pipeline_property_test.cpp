// End-to-end property tests: long random edit scripts over random trees and
// random nondeterministic automata, cross-checked against the independent
// naive materializing oracle after every edit.
//
// Random automata can have exponentially many answers (e.g. subset-style
// queries), so each step first counts answers through the cursor with a cap
// and only materializes the oracle when the result set is small; steps whose
// result sets exceed the cap still check structural invariants.
#include <gtest/gtest.h>

#include <optional>

#include "baseline/naive_engine.h"
#include "automata/query_library.h"
#include "core/tree_enumerator.h"
#include "test_util.h"

namespace treenum {
namespace {

constexpr size_t kAnswerCap = 20000;

std::optional<std::vector<Assignment>> CollectCapped(
    const TreeEnumerator& e) {
  TreeEnumerator::Cursor c = e.Enumerate();
  std::vector<Assignment> out;
  Assignment a;
  while (c.Next(&a)) {
    out.push_back(a);
    if (out.size() > kAnswerCap) return std::nullopt;
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ScriptConfig {
  uint64_t seed;
  size_t initial_size;
  size_t steps;
  size_t states;
  size_t vars;
  /// Growth cap: with v variables a subset-style automaton can have up to
  /// 2^(v*n) answers, so the cap keeps every step below kAnswerCap and thus
  /// oracle-checkable.
  size_t max_size;
};

class PipelinePropertyTest : public ::testing::TestWithParam<ScriptConfig> {};

TEST_P(PipelinePropertyTest, RandomAutomatonRandomEditScript) {
  const ScriptConfig& cfg = GetParam();
  Rng rng(cfg.seed);
  UnrankedTva q =
      RandomUnrankedTva(rng, cfg.states, 2, cfg.vars, 4, 3 * cfg.states);
  UnrankedTree t = RandomTree(cfg.initial_size, 2, rng);
  TreeEnumerator indexed(t, q, BoxEnumMode::kIndexed);
  TreeEnumerator naive_mode(t, q, BoxEnumMode::kNaive);
  UnrankedTree mirror = t;  // same edits => same NodeIds

  size_t checked = 0;
  for (size_t step = 0; step < cfg.steps; ++step) {
    std::vector<NodeId> nodes = mirror.PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    size_t op = rng.Index(4);
    if (mirror.size() >= cfg.max_size && (op == 1 || op == 2)) op = 0;
    switch (op) {
      case 0: {
        Label l = static_cast<Label>(rng.Index(2));
        indexed.Relabel(n, l);
        naive_mode.Relabel(n, l);
        mirror.Relabel(n, l);
        break;
      }
      case 1: {
        Label l = static_cast<Label>(rng.Index(2));
        indexed.InsertFirstChild(n, l);
        naive_mode.InsertFirstChild(n, l);
        mirror.InsertFirstChild(n, l);
        break;
      }
      case 2: {
        if (n == mirror.root()) break;
        Label l = static_cast<Label>(rng.Index(2));
        indexed.InsertRightSibling(n, l);
        naive_mode.InsertRightSibling(n, l);
        mirror.InsertRightSibling(n, l);
        break;
      }
      case 3: {
        if (n == mirror.root() || !mirror.IsLeaf(n)) break;
        indexed.DeleteLeaf(n);
        naive_mode.DeleteLeaf(n);
        mirror.DeleteLeaf(n);
        break;
      }
    }
    ASSERT_TRUE(indexed.tree() == mirror);
    std::optional<std::vector<Assignment>> got = CollectCapped(indexed);
    if (!got.has_value()) continue;  // result set too large to oracle-check
    ASSERT_EQ(*got, MaterializeAssignments(mirror, q))
        << "seed " << cfg.seed << " step " << step;
    std::optional<std::vector<Assignment>> got2 = CollectCapped(naive_mode);
    ASSERT_TRUE(got2.has_value());
    ASSERT_EQ(*got, *got2) << "seed " << cfg.seed << " step " << step;
    ++checked;
  }
  // The configs are chosen so that a decent share of steps is checkable.
  EXPECT_GT(checked, cfg.steps / 8) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Scripts, PipelinePropertyTest,
    ::testing::Values(ScriptConfig{1001, 5, 60, 2, 1, 14},
                      ScriptConfig{1002, 14, 50, 3, 1, 14},
                      ScriptConfig{1003, 6, 40, 2, 2, 7},
                      ScriptConfig{1004, 1, 80, 3, 1, 14},
                      ScriptConfig{1005, 12, 30, 3, 1, 13},
                      ScriptConfig{1006, 10, 50, 4, 1, 12},
                      ScriptConfig{1007, 5, 40, 2, 2, 7},
                      ScriptConfig{1008, 7, 30, 3, 2, 7}),
    [](const ::testing::TestParamInfo<ScriptConfig>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// Deep path trees exercise the rebalancing and hole-closure paths harder:
// grow a path node by node, then delete it back down, checking after every
// edit against the oracle.
TEST(PipelineProperty, PathGrowShrinkAgainstOracle) {
  Rng rng(307);
  UnrankedTva q = QueryMarkedAncestor(2, 0, 1);
  UnrankedTree t(0);
  TreeEnumerator e(t, q);
  NaiveEngine oracle(t, q);
  std::vector<NodeId> path{oracle.tree().root()};
  for (int i = 0; i < 40; ++i) {
    Label l = static_cast<Label>(rng.Index(2));
    NodeId u;
    e.InsertFirstChild(path.back(), l, &u);
    NodeId v = oracle.InsertFirstChild(path.back(), l);
    ASSERT_EQ(u, v);
    path.push_back(u);
    ASSERT_EQ(e.EnumerateAll(), oracle.results()) << "grow " << i;
  }
  while (path.size() > 1) {
    NodeId leaf = path.back();
    path.pop_back();
    e.DeleteLeaf(leaf);
    oracle.DeleteLeaf(leaf);
    ASSERT_EQ(e.EnumerateAll(), oracle.results())
        << "shrink at " << path.size();
  }
}

}  // namespace
}  // namespace treenum
