#include "trees/assignment.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace treenum {
namespace {

TEST(Assignment, NormalizeSortsAndDedups) {
  Assignment a;
  a.Add(Singleton{1, 5});
  a.Add(Singleton{0, 7});
  a.Add(Singleton{1, 5});
  a.Normalize();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.singletons()[0], (Singleton{0, 7}));
  EXPECT_EQ(a.singletons()[1], (Singleton{1, 5}));
}

TEST(Assignment, DisjointUnionMergesSorted) {
  Assignment a({{0, 1}, {0, 3}});
  Assignment b({{0, 2}});
  Assignment c = Assignment::DisjointUnion(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.singletons()[0].node, 1u);
  EXPECT_EQ(c.singletons()[1].node, 2u);
  EXPECT_EQ(c.singletons()[2].node, 3u);
}

TEST(Assignment, OrderingIsTotal) {
  Assignment a({{0, 1}});
  Assignment b({{0, 2}});
  Assignment empty;
  EXPECT_LT(empty, a);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, Assignment({{0, 1}}));
}

TEST(Assignment, HashUsableInSets) {
  std::unordered_set<Assignment, AssignmentHash> s;
  s.insert(Assignment({{0, 1}}));
  s.insert(Assignment({{0, 1}}));
  s.insert(Assignment({{1, 1}}));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Assignment, ToString) {
  Assignment a({{0, 1}, {1, 2}});
  EXPECT_EQ(a.ToString(), "{<X0:1>, <X1:2>}");
}

}  // namespace
}  // namespace treenum
