#include "automata/regex_spanner.h"

#include <gtest/gtest.h>

namespace treenum {
namespace {

bool Matches(const Wva& a, const std::string& s) {
  Word w = ToWord(s);
  return a.Accepts(w, std::vector<VarMask>(w.size(), 0));
}

TEST(RegexSpanner, Literals) {
  Wva a = CompileRegexSpanner("ab", 2, 0);
  EXPECT_TRUE(Matches(a, "ab"));
  EXPECT_FALSE(Matches(a, "ba"));
  EXPECT_FALSE(Matches(a, "a"));
  EXPECT_FALSE(Matches(a, "abb"));
}

TEST(RegexSpanner, Alternation) {
  Wva a = CompileRegexSpanner("ab|ba", 2, 0);
  EXPECT_TRUE(Matches(a, "ab"));
  EXPECT_TRUE(Matches(a, "ba"));
  EXPECT_FALSE(Matches(a, "aa"));
}

TEST(RegexSpanner, StarPlusOptional) {
  Wva star = CompileRegexSpanner("a*b", 2, 0);
  EXPECT_TRUE(Matches(star, "b"));
  EXPECT_TRUE(Matches(star, "aaab"));
  Wva plus = CompileRegexSpanner("a+b", 2, 0);
  EXPECT_FALSE(Matches(plus, "b"));
  EXPECT_TRUE(Matches(plus, "ab"));
  Wva opt = CompileRegexSpanner("a?b", 2, 0);
  EXPECT_TRUE(Matches(opt, "b"));
  EXPECT_TRUE(Matches(opt, "ab"));
  EXPECT_FALSE(Matches(opt, "aab"));
}

TEST(RegexSpanner, AnyLetter) {
  Wva a = CompileRegexSpanner(".b", 3, 0);
  EXPECT_TRUE(Matches(a, "ab"));
  EXPECT_TRUE(Matches(a, "cb"));
  EXPECT_FALSE(Matches(a, "ba"));
}

TEST(RegexSpanner, NestedGroups) {
  Wva a = CompileRegexSpanner("(ab)*(c|b)+", 3, 0);
  EXPECT_TRUE(Matches(a, "ababcc"));
  EXPECT_TRUE(Matches(a, "b"));
  EXPECT_FALSE(Matches(a, "aab"));
}

TEST(RegexSpanner, CaptureSemantics) {
  Wva a = CompileRegexSpanner(".*<0:b>.*", 2, 1);
  Word w = ToWord("abab");
  std::vector<Assignment> res = a.BruteForceAssignments(w);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0], Assignment({{0, 1}}));
  EXPECT_EQ(res[1], Assignment({{0, 3}}));
}

TEST(RegexSpanner, CaptureAnyLetter) {
  Wva a = CompileRegexSpanner("a<0:.>a", 2, 1);
  EXPECT_EQ(a.BruteForceAssignments(ToWord("aba")).size(), 1u);
  EXPECT_EQ(a.BruteForceAssignments(ToWord("aaa")).size(), 1u);
  EXPECT_TRUE(a.BruteForceAssignments(ToWord("ab")).empty());
}

TEST(RegexSpanner, SyntaxErrors) {
  EXPECT_THROW(CompileRegexSpanner("(ab", 2, 0), std::invalid_argument);
  EXPECT_THROW(CompileRegexSpanner("a)", 2, 0), std::invalid_argument);
  EXPECT_THROW(CompileRegexSpanner("*a", 2, 0), std::invalid_argument);
  EXPECT_THROW(CompileRegexSpanner("a|", 2, 0), std::invalid_argument);
  EXPECT_THROW(CompileRegexSpanner("<5:a>", 2, 1), std::invalid_argument);
  EXPECT_THROW(CompileRegexSpanner("<0a>", 2, 1), std::invalid_argument);
  EXPECT_THROW(CompileRegexSpanner("z", 2, 0), std::invalid_argument);
}

TEST(RegexSpanner, ToWordMapping) {
  Word w = ToWord("abc");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0], 0u);
  EXPECT_EQ(w[2], 2u);
  EXPECT_THROW(ToWord("A"), std::invalid_argument);
}

}  // namespace
}  // namespace treenum
