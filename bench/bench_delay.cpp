// Experiment E3 — Theorem 8.1, delay: per-answer time independent of |T|,
// linear in the produced assignment size |S|.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace treenum {
namespace {

using bench::kSeed;

// (a) n sweep with a fixed number of answers: per-answer time flat in n.
void BM_Delay_FixedAnswers_SizeSweep(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  UnrankedTree t = RandomTree(n, 1, rng);  // all label a
  NodeId spine = t.AppendChild(t.root(), 1);
  for (int i = 0; i < 64; ++i) t.AppendChild(spine, 2);
  TreeEnumerator e(t, bench::StandardQuery());
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::Drain(e);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["ns_per_answer"] = benchmark::Counter(
      static_cast<double>(answers) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Delay_FixedAnswers_SizeSweep)
    ->Range(1024, 262144)
    ->Unit(benchmark::kMicrosecond);

// (b) answer-count sweep at fixed n: total time linear in the output size.
void BM_Delay_AnswerCountSweep(benchmark::State& state) {
  size_t answers_target = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  UnrankedTree t = RandomTree(16384, 1, rng);
  NodeId spine = t.AppendChild(t.root(), 1);
  for (size_t i = 0; i < answers_target; ++i) t.AppendChild(spine, 2);
  TreeEnumerator e(t, bench::StandardQuery());
  size_t answers = 0;
  for (auto _ : state) {
    answers = bench::Drain(e);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["ns_per_answer"] = benchmark::Counter(
      static_cast<double>(answers) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Delay_AnswerCountSweep)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

// (c) assignment-size sweep: second-order variable, answers are subsets of
// the k b-nodes — delay is allowed to be linear in |S| (Corollary 8.2).
void BM_Delay_AssignmentSizeSweep(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  UnrankedTree t = RandomTree(256, 1, rng);
  for (size_t i = 0; i < k; ++i) t.AppendChild(t.root(), 1);
  TreeEnumerator e(t, QueryAnySubsetOfLabel(2, 1));
  size_t answers = 0;
  size_t singletons = 0;
  for (auto _ : state) {
    TreeEnumerator::Cursor c = e.Enumerate();
    Assignment a;
    answers = 0;
    singletons = 0;
    while (c.Next(&a)) {
      ++answers;
      singletons += a.size();
    }
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["ns_per_singleton"] = benchmark::Counter(
      static_cast<double>(singletons) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_Delay_AssignmentSizeSweep)
    ->DenseRange(4, 14, 2)
    ->Unit(benchmark::kMillisecond);

// (d) worst-case single-probe delay: one answer hidden at the bottom of a
// path tree; indexed vs. naive box enumeration.
template <BoxEnumMode mode>
void ProbeBench(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  UnrankedTree t = PathTree(n, 1, rng);
  NodeId cur = t.root();
  while (!t.IsLeaf(cur)) cur = t.children(cur)[0];
  t.Relabel(cur, 2);
  t.Relabel(t.root(), 1);
  TreeEnumerator e(t, bench::StandardQuery(), mode);
  for (auto _ : state) {
    size_t got = bench::Drain(e);
    benchmark::DoNotOptimize(got);
  }
}
void BM_Delay_DeepProbe_Indexed(benchmark::State& state) {
  ProbeBench<BoxEnumMode::kIndexed>(state);
}
BENCHMARK(BM_Delay_DeepProbe_Indexed)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMicrosecond);
void BM_Delay_DeepProbe_NoIndex(benchmark::State& state) {
  ProbeBench<BoxEnumMode::kNaive>(state);
}
BENCHMARK(BM_Delay_DeepProbe_NoIndex)
    ->Range(1024, 131072)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
