// Arena-backed flat storage for circuit boxes.
//
// Every variable-length piece of a box (its ×-gates and the CSR input lists
// of its ∪-gates) lives in one contiguous pool per wire kind, owned by a
// SpanPool. A box holds only (offset, length, capacity) triples; a box
// refresh during updates (Lemma 7.3) reuses its old span in place whenever
// the capacity suffices, and otherwise recycles it through a power-of-two
// free list. In steady state — e.g. a stream of relabel edits — a refresh
// therefore performs zero heap allocations; the pools only grow while the
// circuit discovers new worst-case box shapes.
//
// Pointers into a pool are invalidated whenever some span in that pool is
// (re)allocated: consumers must re-fetch Box views (AssignmentCircuit::box)
// after any rebuild, and builders must finish reading child spans before
// committing writes. Offsets are stable.
//
// The backing store is a CowStore (util/cow_store.h): growth retires the old
// buffer instead of freeing it, so snapshot readers resolving spans of
// frozen boxes on other threads keep valid pointers across writer growth.
#ifndef TREENUM_CIRCUIT_ARENA_H_
#define TREENUM_CIRCUIT_ARENA_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/cow_store.h"

namespace treenum {

/// A borrowed view of `len` consecutive `T`s inside a pool. Invalidated by
/// the next (re)allocation in that pool; never owns memory.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* ptr, uint32_t len) : ptr_(ptr), len_(len) {}

  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + len_; }
  const T& operator[](size_t i) const { return ptr_[i]; }
  uint32_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

 private:
  const T* ptr_ = nullptr;
  uint32_t len_ = 0;
};

/// A span descriptor stored in a box header: offset/length/capacity inside
/// one SpanPool. Capacities are powers of two (or 0), which makes the free
/// lists exact-fit per size class.
struct SpanRef {
  uint32_t off = 0;
  uint32_t len = 0;
  uint32_t cap = 0;
};

/// One flat pool of `T` with size-class span recycling. `Align` customizes
/// the backing store's alignment (the bit-matrix pool passes 64 so SIMD
/// kernels see cache-line-aligned blocks).
template <typename T, size_t Align = alignof(T)>
class SpanPool {
 public:
  /// Makes `ref` address at least `n` usable slots and sets ref.len = n.
  /// Keeps the current span when its capacity suffices (the steady-state,
  /// allocation-free path); otherwise releases it and takes a span from the
  /// matching free list, growing the pool tail only when the list is empty.
  void Ensure(SpanRef& ref, uint32_t n) {
    if (ref.cap >= n) {
      ref.len = n;
      return;
    }
    // Keeps RoundUpPow2 from wrapping (1u << 32 == hang) and SizeClass
    // within free_'s 32 buckets.
    TREENUM_CHECK(n <= (uint32_t{1} << 31),
                  "circuit arena span exceeds 2^31 entries");
    Release(ref);
    uint32_t cap = RoundUpPow2(n < kMinCap ? kMinCap : n);
    size_t cls = SizeClass(cap);
    if (!free_[cls].empty()) {
      ref.off = free_[cls].back();
      free_[cls].pop_back();
    } else {
      size_t off = store_.size();
      TREENUM_CHECK(off + cap <= UINT32_MAX,
                    "circuit arena pool exceeds 2^32 entries");
      store_.resize(off + cap);
      ref.off = static_cast<uint32_t>(off);
    }
    ref.len = n;
    ref.cap = cap;
  }

  /// Returns ref's span to its size-class free list and clears ref.
  void Release(SpanRef& ref) {
    if (ref.cap != 0) free_[SizeClass(ref.cap)].push_back(ref.off);
    ref = SpanRef{};
  }

  T* at(uint32_t off) { return store_.data() + off; }
  const T* at(uint32_t off) const { return store_.data() + off; }
  Span<T> span(const SpanRef& ref) const {
    return Span<T>(store_.data() + ref.off, ref.len);
  }

  /// Pre-grows the pool tail by `extra` slots' worth of capacity so a batch
  /// of refreshes does not re-grow the backing vector mid-transaction.
  void ReserveAdditional(size_t extra) {
    store_.reserve(store_.size() + extra);
  }

  size_t size() const { return store_.size(); }

 private:
  static constexpr uint32_t kMinCap = 4;

  static uint32_t RoundUpPow2(uint32_t n) {
    uint32_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }
  static size_t SizeClass(uint32_t cap) {
    size_t k = 0;
    while ((uint32_t{1} << k) < cap) ++k;
    return k;
  }

  CowStore<T, Align> store_;
  std::vector<uint32_t> free_[32];
};

/// One live span of a pool, for validation (ValidateStorage test hooks).
struct LiveSpan {
  uint32_t off;
  uint32_t cap;
  uint32_t owner;  ///< Owning box id, for error messages.
};

/// Checks that the live spans of one pool stay within bounds and never
/// overlap pairwise. Sorts `spans` in place. Returns an empty string when
/// consistent, else a description of the first violation.
inline std::string CheckPoolSpans(const char* name, size_t pool_size,
                                  std::vector<LiveSpan>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const LiveSpan& a, const LiveSpan& b) { return a.off < b.off; });
  std::ostringstream err;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (static_cast<size_t>(spans[i].off) + spans[i].cap > pool_size) {
      err << name << " span of box " << spans[i].owner << " exceeds pool";
      return err.str();
    }
    if (i > 0 && spans[i - 1].off + spans[i - 1].cap > spans[i].off) {
      err << name << " spans of boxes " << spans[i - 1].owner << " and "
          << spans[i].owner << " overlap";
      return err.str();
    }
  }
  return std::string();
}

}  // namespace treenum

#endif  // TREENUM_CIRCUIT_ARENA_H_
