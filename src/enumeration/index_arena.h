// Arena-backed storage for the enumeration index's relation matrices.
//
// The jump index stores one ∪-reachability BitMatrix per candidate plus two
// wire matrices per box (see enumeration/index.h). Under updates these are
// rebuilt along the changed root path on every edit, so owning vector-backed
// matrices would pay a heap round-trip per matrix per rebuild. Instead the
// index keeps every matrix as a BitsRef — a SpanRef over whole 64-bit words
// plus the (rows, cols) shape — into one BitMatrixPool, reusing the circuit
// arena's power-of-two span recycling (circuit/arena.h). In steady state a
// box-index refresh re-acquires exactly the spans it released, touching no
// heap.
//
// The same invalidation contract as the circuit arena applies: raw views
// into the pool are invalidated by the next Ensure that grows the backing
// store. Rebuilds therefore run in phases — read children into scratch,
// (re)allocate this box's spans, then fill through freshly resolved views.
//
// Alignment contract with the SIMD kernels (util/simd_kernels.h): the pool's
// backing store is 64-byte-aligned and every block is rounded up to a
// multiple of 8 words, so — size classes being powers of two ≥ 8 — every
// block offset stays a multiple of 8 words and every handed-out block starts
// on a cache line. The kernels use unaligned load instructions regardless
// (alignment is a performance contract, not a correctness one).
#ifndef TREENUM_ENUMERATION_INDEX_ARENA_H_
#define TREENUM_ENUMERATION_INDEX_ARENA_H_

#include <algorithm>
#include <cstdint>

#include "circuit/arena.h"
#include "util/bit_matrix.h"
#include "util/check.h"

namespace treenum {

/// A pooled rows x cols bit matrix: a word-span descriptor plus its shape.
/// Resolved against the owning BitMatrixPool; value-copyable like SpanRef.
struct BitsRef {
  SpanRef words;
  uint32_t rows = 0;
  uint32_t cols = 0;
};

/// A flat pool of 64-bit words handing out word-aligned bit blocks for
/// BitsRefs, with the SpanPool size-class recycling.
class BitMatrixPool {
 public:
  /// Makes `ref` a zeroed rows x cols matrix, reusing its current span when
  /// the capacity suffices (the steady-state allocation-free path).
  void Ensure(BitsRef& ref, uint32_t rows, uint32_t cols) {
    uint64_t words = EnsureSpan(ref, rows, cols);
    uint64_t* p = pool_.at(ref.words.off);
    std::fill(p, p + words, uint64_t{0});
  }

  /// Ensure without the zero-fill: entry values are unspecified. Only for
  /// blocks about to be fully overwritten — i.e. compose targets, which
  /// BitMatrixView::ComposeIntoWords writes in every word.
  void EnsureUninit(BitsRef& ref, uint32_t rows, uint32_t cols) {
    EnsureSpan(ref, rows, cols);
  }

  /// Returns ref's span to its size-class free list and clears ref.
  void Release(BitsRef& ref) {
    pool_.Release(ref.words);
    ref.rows = 0;
    ref.cols = 0;
  }

  /// Read view; invalidated by the pool's next growing Ensure.
  BitMatrixView view(const BitsRef& ref) const {
    return BitMatrixView(pool_.at(ref.words.off), ref.rows, ref.cols);
  }
  /// Raw writable words of ref's block (rows * WordsPerRow(cols) words).
  uint64_t* words(const BitsRef& ref) { return pool_.at(ref.words.off); }
  /// Base pointer for resolving many refs without repeated lookups.
  const uint64_t* base() const { return pool_.at(0); }

  void ReserveAdditional(size_t extra) { pool_.ReserveAdditional(extra); }
  size_t size() const { return pool_.size(); }

  static uint32_t WordsPerRow(uint32_t cols) { return (cols + 63) / 64; }

 private:
  /// Shared (re)allocation: rounds the request up to a multiple of 8 words
  /// (64 bytes) to keep every block offset cache-line-aligned (see the file
  /// comment), sets the shape, and returns the padded word count.
  uint64_t EnsureSpan(BitsRef& ref, uint32_t rows, uint32_t cols) {
    uint64_t words = (uint64_t{rows} * WordsPerRow(cols) + 7) & ~uint64_t{7};
    TREENUM_CHECK(words <= (uint64_t{1} << 31),
                  "index bit matrix exceeds 2^31 words");
    pool_.Ensure(ref.words, static_cast<uint32_t>(words));
    ref.rows = rows;
    ref.cols = cols;
    return words;
  }

  SpanPool<uint64_t, 64> pool_;
};

}  // namespace treenum

#endif  // TREENUM_ENUMERATION_INDEX_ARENA_H_
