// Bit-packed Boolean matrices used to represent the ∪-reachability relations
// R(B', B) of Section 6 of the paper. Composition of relations (the
// complexity kernel the paper bounds by O(w^ω)) is implemented word-parallel,
// i.e. in O(rows * cols / 64) per row pair.
#ifndef TREENUM_UTIL_BIT_MATRIX_H_
#define TREENUM_UTIL_BIT_MATRIX_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace treenum {

/// A dense rows x cols Boolean matrix with 64-bit packed rows.
///
/// Semantics throughout the enumeration module: entry (r, c) of the matrix
/// standing for relation R(B', B) is true iff the r-th ∪-gate of box B' has a
/// path of ∪-gates to the c-th ∪-gate of box B (the relation "g' ∪⇝ g").
class BitMatrix {
 public:
  BitMatrix() : rows_(0), cols_(0), words_per_row_(0) {}
  BitMatrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + 63) / 64),
        bits_(rows * words_per_row_, 0) {}

  /// The identity relation over n elements.
  static BitMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  bool Get(size_t r, size_t c) const {
    return (bits_[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
  }
  void Set(size_t r, size_t c, bool v = true) {
    uint64_t& w = bits_[r * words_per_row_ + c / 64];
    if (v) {
      w |= (uint64_t{1} << (c % 64));
    } else {
      w &= ~(uint64_t{1} << (c % 64));
    }
  }

  /// True iff some entry in row r is set.
  bool RowAny(size_t r) const;
  /// True iff some entry in column c is set.
  bool ColAny(size_t c) const;
  /// True iff any entry is set.
  bool Any() const;
  /// Number of set entries.
  size_t Count() const;

  /// Relational composition: result(a, c) = ∃b this(a, b) && other(b, c).
  /// Requires cols() == other.rows().
  BitMatrix Compose(const BitMatrix& other) const;

  /// Entrywise union. Requires identical dimensions.
  void UnionWith(const BitMatrix& other);

  /// Restrict rows: keep only rows whose index bit is set in `keep`
  /// (represented as a bitset over row indices packed into uint64 words);
  /// other rows are zeroed.
  void ZeroRowsNotIn(const std::vector<uint64_t>& keep);

  /// The set of row indices with at least one set entry ("π1" of the
  /// relation, as used in Algorithms 2 and 3).
  std::vector<uint32_t> NonEmptyRows() const;
  /// The set of column indices with at least one set entry.
  std::vector<uint32_t> NonEmptyCols() const;

  /// Row r as a bitset over column indices (words_per_row() words).
  const uint64_t* Row(size_t r) const { return &bits_[r * words_per_row_]; }
  uint64_t* MutableRow(size_t r) { return &bits_[r * words_per_row_]; }
  size_t words_per_row() const { return words_per_row_; }

  bool operator==(const BitMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           bits_ == other.bits_;
  }

  /// Debug rendering as '0'/'1' rows.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

/// Naive cubic composition used as a test oracle for BitMatrix::Compose.
BitMatrix ComposeNaive(const BitMatrix& a, const BitMatrix& b);

}  // namespace treenum

#endif  // TREENUM_UTIL_BIT_MATRIX_H_
