#include "falgebra/update.h"

#include <cassert>
#include <unordered_map>

namespace treenum {

namespace {

// Keeps the last occurrence of each id, preserving relative order, and drops
// ids that are not alive (e.g. splice-path nodes freed by a later rebuild in
// the same update).
void FilterChanged(const Term& term, std::vector<TermNodeId>& v) {
  std::unordered_map<TermNodeId, size_t> last;
  for (size_t i = 0; i < v.size(); ++i) last[v[i]] = i;
  std::vector<TermNodeId> out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (last[v[i]] == i && term.IsAlive(v[i])) out.push_back(v[i]);
  }
  v = std::move(out);
}

}  // namespace

DynamicEncoding::DynamicEncoding(UnrankedTree tree, size_t num_base_labels)
    : enc_(EncodeTree(std::move(tree), num_base_labels)) {}

void DynamicEncoding::EnsureLeafSlot(NodeId n) {
  if (enc_.leaf_of.size() <= n) enc_.leaf_of.resize(n + 1, kNoTerm);
}

void DynamicEncoding::ApplyRemap() {
  const Term& term = enc_.term;
  for (const auto& [old_id, new_id] : term.remap_log()) {
    if (!term.IsAlive(new_id) || !term.IsLeaf(new_id)) continue;
    NodeId n = term.node(new_id).tree_node;
    if (n == kNoNode || n >= enc_.leaf_of.size()) continue;
    if (enc_.leaf_of[n] == old_id) enc_.leaf_of[n] = new_id;
  }
}

void DynamicEncoding::FinishStructural(TermNodeId from, UpdateResult& result) {
  Term& term = enc_.term;
  std::vector<TermNodeId> path;
  // The splice that produced `from` already path-copied every frozen
  // ancestor (EnsureMutable cascades to the root), so the recompute walk
  // only touches current-version nodes.
  term.RecomputeUp(from, &path);
  result.changed_bottom_up.insert(result.changed_bottom_up.end(), path.begin(),
                                  path.end());

  // Highest node on the path violating the height envelope.
  TermNodeId viol = kNoTerm;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const TermNode& t = term.node(*it);
    if (t.height > MaxAllowedHeight(t.size)) {
      viol = *it;
      break;
    }
  }
  if (viol != kNoTerm) {
    std::vector<Piece> pieces = CollectPieces(term, viol);
    result.rebuilt_size = term.node(viol).size;
    TermNodeId newsub = EncodePieces(term, enc_.tree, pieces, enc_.leaf_of,
                                     &result.changed_bottom_up);
    // Detaching the violator drops its last current-version reference; the
    // sweep below reclaims whatever no pinned snapshot still reaches.
    term.ReplaceChild(viol, newsub);
    std::vector<TermNodeId> path2;
    term.RecomputeUp(newsub, &path2);
    result.changed_bottom_up.insert(result.changed_bottom_up.end(),
                                    path2.begin(), path2.end());
  }
  term.SweepZeros(&result.freed);
  ApplyRemap();
  FilterChanged(term, result.changed_bottom_up);
}

UpdateResult& DynamicEncoding::ResetResult() {
  result_.freed.clear();
  result_.changed_bottom_up.clear();
  result_.rebuilt_size = 0;
  return result_;
}

const UpdateResult& DynamicEncoding::Relabel(NodeId n, Label l) {
  UpdateResult& result = ResetResult();
  enc_.tree.Relabel(n, l);
  Term& term = enc_.term;
  term.BeginEdit();
  TermNodeId leaf = term.EnsureMutable(enc_.leaf_of[n]);
  enc_.leaf_of[n] = leaf;
  const TermAlphabet& alphabet = term.alphabet();
  Label sym = alphabet.IsContextLeaf(term.node(leaf).label)
                  ? alphabet.ContextLeaf(l)
                  : alphabet.TreeLeaf(l);
  term.SetLabel(leaf, sym);
  for (TermNodeId x = leaf; x != kNoTerm; x = term.node(x).parent) {
    result.changed_bottom_up.push_back(x);
  }
  term.SweepZeros(&result.freed);
  ApplyRemap();
  return result;
}

const UpdateResult& DynamicEncoding::InsertRightSibling(NodeId n, Label l,
                                                        NodeId* new_node) {
  UpdateResult& result = ResetResult();
  NodeId u = enc_.tree.InsertRightSibling(n, l);
  if (new_node) *new_node = u;
  EnsureLeafSlot(u);
  Term& term = enc_.term;
  term.BeginEdit();
  const TermAlphabet& alphabet = term.alphabet();

  TermNodeId leaf_n = enc_.leaf_of[n];
  TermNodeId leaf_u = term.NewLeaf(alphabet.TreeLeaf(l), u);
  enc_.leaf_of[u] = leaf_u;
  result.changed_bottom_up.push_back(leaf_u);

  TermOp op = term.node(leaf_n).is_context ? TermOp::kConcatVH
                                           : TermOp::kConcatHH;
  TermNodeId nn = term.SpliceOp(op, leaf_n, leaf_u, /*fresh_on_left=*/false);
  FinishStructural(nn, result);
  return result;
}

const UpdateResult& DynamicEncoding::InsertFirstChild(NodeId n, Label l,
                                                      NodeId* new_node) {
  UpdateResult& result = ResetResult();
  bool was_leaf = enc_.tree.IsLeaf(n);
  NodeId u = enc_.tree.InsertFirstChild(n, l);
  if (new_node) *new_node = u;
  EnsureLeafSlot(u);
  Term& term = enc_.term;
  term.BeginEdit();
  const TermAlphabet& alphabet = term.alphabet();

  TermNodeId leaf_u = term.NewLeaf(alphabet.TreeLeaf(l), u);
  enc_.leaf_of[u] = leaf_u;
  result.changed_bottom_up.push_back(leaf_u);

  TermNodeId nn;
  if (was_leaf) {
    // a_t(n) becomes a context over the new single-child forest.
    TermNodeId leaf_n = term.EnsureMutable(enc_.leaf_of[n]);
    enc_.leaf_of[n] = leaf_n;
    term.SetLabel(leaf_n, alphabet.ContextLeaf(enc_.tree.label(n)));
    term.SetContext(leaf_n, true);
    result.changed_bottom_up.push_back(leaf_n);
    nn = term.SpliceOp(TermOp::kApplyVH, leaf_n, leaf_u,
                       /*fresh_on_left=*/false);
  } else {
    // Insert immediately left of the old first child c.
    NodeId c = enc_.tree.children(n)[1];
    TermNodeId leaf_c = enc_.leaf_of[c];
    TermOp op = term.node(leaf_c).is_context ? TermOp::kConcatHV
                                             : TermOp::kConcatHH;
    nn = term.SpliceOp(op, leaf_c, leaf_u, /*fresh_on_left=*/true);
  }
  FinishStructural(nn, result);
  return result;
}

const UpdateResult& DynamicEncoding::DeleteLeaf(NodeId n) {
  UpdateResult& result = ResetResult();
  Term& term = enc_.term;
  term.BeginEdit();
  const TermAlphabet& alphabet = term.alphabet();

  NodeId m = enc_.tree.parent(n);
  enc_.tree.DeleteLeaf(n);  // validates: n is a non-root leaf

  TermNodeId leaf = enc_.leaf_of[n];
  enc_.leaf_of[n] = kNoTerm;
  TermNodeId p = term.node(leaf).parent;
  assert(p != kNoTerm && "a non-root tree node's symbol cannot be the root");
  TermNodeId sib = term.node(p).left == leaf ? term.node(p).right
                                             : term.node(p).left;
  TermOp op = alphabet.OpOf(term.node(p).label);

  if (op == TermOp::kApplyVH) {
    // n was the sole child of m: a_t(n) filled the hole of the context `sib`
    // whose hole parent is m. Close the hole: retype the hole path from
    // a_□(m) up to sib (context → forest).
    assert(term.node(p).right == leaf);
    TermNodeId leaf_m = term.EnsureMutable(enc_.leaf_of[m]);
    enc_.leaf_of[m] = leaf_m;
    term.SetLabel(leaf_m, alphabet.TreeLeaf(enc_.tree.label(m)));
    term.SetContext(leaf_m, false);
    result.changed_bottom_up.push_back(leaf_m);
    // The path-copy cascade above may have replaced p and sib; re-resolve
    // them through leaf's (redirected) parent pointer before walking.
    p = term.node(leaf).parent;
    sib = term.node(p).left == leaf ? term.node(p).right : term.node(p).left;
    for (TermNodeId x = term.node(leaf_m).parent; x != p;
         x = term.node(x).parent) {
      TermOp xop = alphabet.OpOf(term.node(x).label);
      TermOp nop;
      switch (xop) {
        case TermOp::kConcatHV:
        case TermOp::kConcatVH:
          nop = TermOp::kConcatHH;
          break;
        case TermOp::kApplyVV:
          nop = TermOp::kApplyVH;
          break;
        default:
          assert(false && "unexpected operator on hole path");
          nop = xop;
          break;
      }
      term.SetLabel(x, alphabet.Op(nop));
      term.SetContext(x, false);
      result.changed_bottom_up.push_back(x);
    }
  }

  // Detach p (and with it leaf); the end-of-edit sweep reclaims both unless
  // a pinned snapshot still reaches them.
  term.ReplaceChild(p, sib);
  TermNodeId above = term.node(sib).parent;

  if (above != kNoTerm) {
    FinishStructural(above, result);
  } else {
    term.SweepZeros(&result.freed);
    ApplyRemap();
    FilterChangedPublic(result);
  }
  return result;
}

void DynamicEncoding::FilterChangedPublic(UpdateResult& result) const {
  FilterChanged(enc_.term, result.changed_bottom_up);
}

bool DynamicEncoding::CheckBalanced() const {
  const Term& term = enc_.term;
  if (term.root() == kNoTerm) return true;
  std::vector<TermNodeId> stack{term.root()};
  while (!stack.empty()) {
    TermNodeId id = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(id);
    if (t.height > MaxAllowedHeight(t.size)) return false;
    if (t.left != kNoTerm) {
      stack.push_back(t.left);
      stack.push_back(t.right);
    }
  }
  return true;
}

}  // namespace treenum
