// Experiment E8 — ablations for the design choices called out in DESIGN.md:
//  (a) bit-packed vs. naive relation composition (the O(w^ω) kernel of §6);
//  (b) ∪-chain jumping on adversarial path-shaped inputs (what the §6 index
//      buys over plain descent);
//  (c) homogenization blowup (the ×2 of Lemma 2.1 measured after trimming);
//  (d) rebalancing overhead in the update path (rebuild fraction under
//      different edit mixes).
#include <benchmark/benchmark.h>

#include "automata/homogenize.h"
#include "automata/translate.h"
#include "bench_util.h"
#include "util/bit_matrix.h"

namespace treenum {
namespace {

using bench::kSeed;

void BM_Ablation_ComposeBitPacked(benchmark::State& state) {
  size_t w = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  BitMatrix a(w, w), b(w, w);
  for (size_t i = 0; i < w * w / 4 + 1; ++i) {
    a.Set(rng.Index(w), rng.Index(w));
    b.Set(rng.Index(w), rng.Index(w));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compose(b));
  }
}
BENCHMARK(BM_Ablation_ComposeBitPacked)->RangeMultiplier(2)->Range(8, 256);

void BM_Ablation_ComposeNaive(benchmark::State& state) {
  size_t w = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  BitMatrix a(w, w), b(w, w);
  for (size_t i = 0; i < w * w / 4 + 1; ++i) {
    a.Set(rng.Index(w), rng.Index(w));
    b.Set(rng.Index(w), rng.Index(w));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComposeNaive(a, b));
  }
}
BENCHMARK(BM_Ablation_ComposeNaive)->RangeMultiplier(2)->Range(8, 256);

// (b) The ∪-chain jump: single deep answer in a path tree. The indexed
// cursor's probe cost is flat in n; plain descent pays the full depth.
template <BoxEnumMode mode>
void ChainBench(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(kSeed);
  UnrankedTree t = PathTree(n, 1, rng);
  NodeId cur = t.root();
  while (!t.IsLeaf(cur)) cur = t.children(cur)[0];
  t.Relabel(cur, 2);
  t.Relabel(t.root(), 1);
  TreeEnumerator e(t, bench::StandardQuery(), mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::Drain(e));
  }
}
void BM_Ablation_ChainJump_Indexed(benchmark::State& state) {
  ChainBench<BoxEnumMode::kIndexed>(state);
}
BENCHMARK(BM_Ablation_ChainJump_Indexed)
    ->Range(4096, 262144)
    ->Unit(benchmark::kMicrosecond);
void BM_Ablation_ChainJump_Naive(benchmark::State& state) {
  ChainBench<BoxEnumMode::kNaive>(state);
}
BENCHMARK(BM_Ablation_ChainJump_Naive)
    ->Range(4096, 262144)
    ->Unit(benchmark::kMicrosecond);

// (c) Homogenization/trimming sizes across the query library.
void BM_Ablation_HomogenizationSize(benchmark::State& state) {
  size_t which = static_cast<size_t>(state.range(0));
  UnrankedTva q = which == 0   ? QuerySelectLabel(3, 1)
                  : which == 1 ? QueryMarkedAncestor(3, 1, 2)
                  : which == 2 ? QueryDescendantPairs(3, 0, 1)
                               : QueryAncestorAtDistance(3, 1, 4);
  size_t translated = 0, homogenized = 0;
  for (auto _ : state) {
    TranslatedTva tr = TranslateUnrankedTva(q);
    translated = tr.tva.num_states();
    HomogenizedTva h = HomogenizeBinaryTva(tr.tva);
    homogenized = h.tva.num_states();
  }
  state.counters["unranked_states"] = static_cast<double>(q.num_states());
  state.counters["translated_states"] = static_cast<double>(translated);
  state.counters["homogenized_states"] = static_cast<double>(homogenized);
}
BENCHMARK(BM_Ablation_HomogenizationSize)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMicrosecond);

// (d) Rebuild overhead: insert-heavy vs. relabel-heavy edit streams.
void BM_Ablation_RebuildOverhead(benchmark::State& state) {
  bool insert_heavy = state.range(0) == 1;
  TreeEnumerator e(bench::MakeTree(8192), bench::StandardQuery());
  Rng rng(kSeed);
  size_t rebuilt = 0, updates = 0;
  for (auto _ : state) {
    std::vector<NodeId> nodes = e.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    UpdateStats s;
    if (insert_heavy) {
      s = e.InsertFirstChild(n, static_cast<Label>(rng.Index(3)));
    } else {
      s = e.Relabel(n, static_cast<Label>(rng.Index(3)));
    }
    rebuilt += s.rebuilt_size;
    ++updates;
  }
  state.counters["rebuilt_nodes_per_update"] =
      static_cast<double>(rebuilt) / static_cast<double>(updates);
  state.SetLabel(insert_heavy ? "insert-heavy" : "relabel-only");
}
BENCHMARK(BM_Ablation_RebuildOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace treenum
