// Internal building blocks shared by the per-tier kernel translation units
// (simd_kernels_{scalar,avx2,avx512}.cpp). Each TU compiles this header
// under its own arch flags; nothing here is part of the public API.
#ifndef TREENUM_UTIL_SIMD_KERNELS_COMMON_H_
#define TREENUM_UTIL_SIMD_KERNELS_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace treenum {
namespace internal {

inline void ZeroWords(uint64_t* dst, size_t n) {
  if (n != 0) std::memset(dst, 0, n * sizeof(uint64_t));
}

inline size_t PopcountWords(const uint64_t* words, size_t n) {
  // Four independent counters hide the popcnt latency chain.
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(words[i]));
    c1 += static_cast<uint64_t>(__builtin_popcountll(words[i + 1]));
    c2 += static_cast<uint64_t>(__builtin_popcountll(words[i + 2]));
    c3 += static_cast<uint64_t>(__builtin_popcountll(words[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(words[i]));
  }
  return static_cast<size_t>(c0 + c1 + c2 + c3);
}

/// Compose specialization for b_wpr == 1 (destination columns fit one
/// word — the common case: relations over a box's ∪-gates with w ≤ 64).
/// The whole destination row lives in one register, so b's single-word
/// rows are gathered straight into it.
inline void ComposeNarrow(const uint64_t* a, size_t a_rows, size_t a_wpr,
                          const uint64_t* b, uint64_t* out) {
  for (size_t r = 0; r < a_rows; ++r) {
    const uint64_t* row = a + r * a_wpr;
    uint64_t acc = 0;
    for (size_t w = 0; w < a_wpr; ++w) {
      uint64_t bits = row[w];
      const uint64_t* brows = b + w * 64;
      while (bits) {
        acc |= brows[__builtin_ctzll(bits)];
        bits &= bits - 1;
      }
    }
    out[r] = acc;
  }
}

/// Register-blocked scalar compose tile: kBlockRows destination rows by NT
/// destination words, accumulated in registers so each touched b row is
/// loaded once per row block instead of once per set bit. Rows past `nr`
/// are padded duplicates of row 0 (their accumulators are computed and
/// dropped), which keeps the inner loops at compile-time trip counts.
inline constexpr size_t kBlockRows = 4;

template <size_t NT>
inline void ComposeTileScalar(const uint64_t* const (&arow)[kBlockRows],
                              size_t nr, size_t a_wpr, const uint64_t* b,
                              size_t b_wpr, size_t t0, uint64_t* out,
                              size_t r0) {
  uint64_t acc[kBlockRows][NT] = {};
  for (size_t w = 0; w < a_wpr; ++w) {
    const uint64_t w0 = arow[0][w], w1 = arow[1][w];
    const uint64_t w2 = arow[2][w], w3 = arow[3][w];
    uint64_t live = w0 | w1 | w2 | w3;
    const uint64_t* bbase = b + (w * 64) * b_wpr + t0;
    while (live) {
      const size_t j = static_cast<size_t>(__builtin_ctzll(live));
      live &= live - 1;
      const uint64_t* brow = bbase + j * b_wpr;
      uint64_t bv[NT];
      for (size_t t = 0; t < NT; ++t) bv[t] = brow[t];
      const uint64_t m0 = -((w0 >> j) & 1);
      const uint64_t m1 = -((w1 >> j) & 1);
      const uint64_t m2 = -((w2 >> j) & 1);
      const uint64_t m3 = -((w3 >> j) & 1);
      for (size_t t = 0; t < NT; ++t) {
        acc[0][t] |= bv[t] & m0;
        acc[1][t] |= bv[t] & m1;
        acc[2][t] |= bv[t] & m2;
        acc[3][t] |= bv[t] & m3;
      }
    }
  }
  for (size_t k = 0; k < nr; ++k) {
    for (size_t t = 0; t < NT; ++t) out[(r0 + k) * b_wpr + t0 + t] = acc[k][t];
  }
}

/// Generic register-blocked scalar compose (overwrite semantics; see
/// BitKernels::compose). Shared by the scalar tier and used by the wide
/// tiers for the narrow b_wpr == 1 case.
inline void ComposeBlockedScalar(const uint64_t* a, size_t a_rows,
                                 size_t a_wpr, const uint64_t* b, size_t b_wpr,
                                 uint64_t* out) {
  if (a_rows == 0 || b_wpr == 0) return;
  if (a_wpr == 0) {
    ZeroWords(out, a_rows * b_wpr);
    return;
  }
  if (b_wpr == 1) {
    ComposeNarrow(a, a_rows, a_wpr, b, out);
    return;
  }
  constexpr size_t kTile = 4;
  for (size_t r0 = 0; r0 < a_rows; r0 += kBlockRows) {
    const size_t nr = a_rows - r0 < kBlockRows ? a_rows - r0 : kBlockRows;
    const uint64_t* arow[kBlockRows];
    for (size_t k = 0; k < kBlockRows; ++k) {
      arow[k] = a + (r0 + (k < nr ? k : 0)) * a_wpr;
    }
    for (size_t t0 = 0; t0 < b_wpr; t0 += kTile) {
      const size_t nt = b_wpr - t0 < kTile ? b_wpr - t0 : kTile;
      switch (nt) {
        case 1:
          ComposeTileScalar<1>(arow, nr, a_wpr, b, b_wpr, t0, out, r0);
          break;
        case 2:
          ComposeTileScalar<2>(arow, nr, a_wpr, b, b_wpr, t0, out, r0);
          break;
        case 3:
          ComposeTileScalar<3>(arow, nr, a_wpr, b, b_wpr, t0, out, r0);
          break;
        default:
          ComposeTileScalar<4>(arow, nr, a_wpr, b, b_wpr, t0, out, r0);
          break;
      }
    }
  }
}

}  // namespace internal
}  // namespace treenum

#endif  // TREENUM_UTIL_SIMD_KERNELS_COMMON_H_
