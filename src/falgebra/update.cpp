#include "falgebra/update.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace treenum {

namespace {

// True iff id's parent chain reaches the current root (rebalance candidates
// must be skipped once a region swap detached them, even though they stay
// alive until the sweep for the sake of pinned snapshots).
bool AttachedToRoot(const Term& term, TermNodeId id) {
  while (term.node(id).parent != kNoTerm) id = term.node(id).parent;
  return id == term.root();
}

}  // namespace

// Keeps the last occurrence of each id, preserving relative order, and drops
// ids that are not alive (e.g. splice-path nodes freed by a later rebuild in
// the same update).
void DynamicEncoding::FilterChanged(std::vector<TermNodeId>& v) {
  const Term& term = enc_.term;
  if (seen_stamp_.size() < term.id_bound()) {
    seen_stamp_.resize(term.id_bound(), 0);
  }
  if (++seen_epoch_ == 0) {
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);
    seen_epoch_ = 1;
  }
  filter_out_.clear();
  for (auto it = v.rbegin(); it != v.rend(); ++it) {
    if (seen_stamp_[*it] == seen_epoch_) continue;
    seen_stamp_[*it] = seen_epoch_;
    if (term.IsAlive(*it)) filter_out_.push_back(*it);
  }
  v.assign(filter_out_.rbegin(), filter_out_.rend());
}

DynamicEncoding::DynamicEncoding(UnrankedTree tree, size_t num_base_labels)
    : enc_(EncodeTree(std::move(tree), num_base_labels)) {}

void DynamicEncoding::EnsureLeafSlot(NodeId n) {
  if (enc_.leaf_of.size() <= n) enc_.leaf_of.resize(n + 1, kNoTerm);
}

void DynamicEncoding::ApplyRemap() {
  const Term& term = enc_.term;
  for (const auto& [old_id, new_id] : term.remap_log()) {
    if (!term.IsAlive(new_id) || !term.IsLeaf(new_id)) continue;
    NodeId n = term.node(new_id).tree_node;
    if (n == kNoNode || n >= enc_.leaf_of.size()) continue;
    if (enc_.leaf_of[n] == old_id) enc_.leaf_of[n] = new_id;
  }
}

void DynamicEncoding::FinishStructural(TermNodeId from, UpdateResult& result) {
  Term& term = enc_.term;
  path_scratch_.clear();
  // The splice that produced `from` already path-copied every frozen
  // ancestor (EnsureMutable cascades to the root), so the recompute walk
  // only touches current-version nodes.
  term.RecomputeUp(from, &path_scratch_);
  result.changed_bottom_up.insert(result.changed_bottom_up.end(),
                                  path_scratch_.begin(), path_scratch_.end());
  FinishTransaction(result);
}

void DynamicEncoding::RebalanceLoop(UpdateResult& result) {
  Term& term = enc_.term;
  while (true) {
    // Root-most violator: every changed node's ancestors are in the list
    // too, so the violator of maximal size is topmost.
    TermNodeId viol = kNoTerm;
    uint32_t best = 0;
    for (TermNodeId id : result.changed_bottom_up) {
      if (!term.IsAlive(id)) continue;
      const TermNode& t = term.node(id);
      if (t.height > MaxAllowedHeight(t.size) && t.size >= best &&
          AttachedToRoot(term, id)) {
        best = t.size;
        viol = id;
      }
    }
    if (viol == kNoTerm) break;
    pieces_.clear();
    CollectPiecesInto(term, viol, pieces_);
    result.rebuilt_size += term.node(viol).size;
    TermNodeId newsub =
        EncodePieces(term, enc_.tree, pieces_.data(), pieces_.size(),
                     enc_.leaf_of, enc_scratch_, &result.changed_bottom_up);
    // Detaching the violator drops its last current-version reference; the
    // end-of-transaction sweep reclaims whatever no pinned snapshot still
    // reaches.
    term.ReplaceChild(viol, newsub);
    path_scratch_.clear();
    term.RecomputeUp(newsub, &path_scratch_);
    result.changed_bottom_up.insert(result.changed_bottom_up.end(),
                                    path_scratch_.begin(),
                                    path_scratch_.end());
  }
}

void DynamicEncoding::FinishTransaction(UpdateResult& result) {
  RebalanceLoop(result);
  enc_.term.SweepZeros(&result.freed);
  ApplyRemap();
  FilterChanged(result.changed_bottom_up);
}

UpdateResult& DynamicEncoding::ResetResult() {
  result_.freed.clear();
  result_.changed_bottom_up.clear();
  result_.rebuilt_size = 0;
  return result_;
}

const UpdateResult& DynamicEncoding::Relabel(NodeId n, Label l) {
  UpdateResult& result = ResetResult();
  enc_.tree.Relabel(n, l);
  Term& term = enc_.term;
  term.BeginEdit();
  TermNodeId leaf = term.EnsureMutable(enc_.leaf_of[n]);
  enc_.leaf_of[n] = leaf;
  const TermAlphabet& alphabet = term.alphabet();
  Label sym = alphabet.IsContextLeaf(term.node(leaf).label)
                  ? alphabet.ContextLeaf(l)
                  : alphabet.TreeLeaf(l);
  term.SetLabel(leaf, sym);
  for (TermNodeId x = leaf; x != kNoTerm; x = term.node(x).parent) {
    result.changed_bottom_up.push_back(x);
  }
  term.SweepZeros(&result.freed);
  ApplyRemap();
  return result;
}

const UpdateResult& DynamicEncoding::InsertRightSibling(NodeId n, Label l,
                                                        NodeId* new_node) {
  UpdateResult& result = ResetResult();
  NodeId u = enc_.tree.InsertRightSibling(n, l);
  if (new_node) *new_node = u;
  EnsureLeafSlot(u);
  Term& term = enc_.term;
  term.BeginEdit();
  const TermAlphabet& alphabet = term.alphabet();

  TermNodeId leaf_n = enc_.leaf_of[n];
  TermNodeId leaf_u = term.NewLeaf(alphabet.TreeLeaf(l), u);
  enc_.leaf_of[u] = leaf_u;
  result.changed_bottom_up.push_back(leaf_u);

  TermOp op = term.node(leaf_n).is_context ? TermOp::kConcatVH
                                           : TermOp::kConcatHH;
  TermNodeId nn = term.SpliceOp(op, leaf_n, leaf_u, /*fresh_on_left=*/false);
  FinishStructural(nn, result);
  return result;
}

const UpdateResult& DynamicEncoding::InsertFirstChild(NodeId n, Label l,
                                                      NodeId* new_node) {
  UpdateResult& result = ResetResult();
  bool was_leaf = enc_.tree.IsLeaf(n);
  NodeId u = enc_.tree.InsertFirstChild(n, l);
  if (new_node) *new_node = u;
  EnsureLeafSlot(u);
  Term& term = enc_.term;
  term.BeginEdit();
  const TermAlphabet& alphabet = term.alphabet();

  TermNodeId leaf_u = term.NewLeaf(alphabet.TreeLeaf(l), u);
  enc_.leaf_of[u] = leaf_u;
  result.changed_bottom_up.push_back(leaf_u);

  TermNodeId nn;
  if (was_leaf) {
    // a_t(n) becomes a context over the new single-child forest.
    TermNodeId leaf_n = term.EnsureMutable(enc_.leaf_of[n]);
    enc_.leaf_of[n] = leaf_n;
    term.SetLabel(leaf_n, alphabet.ContextLeaf(enc_.tree.label(n)));
    term.SetContext(leaf_n, true);
    result.changed_bottom_up.push_back(leaf_n);
    nn = term.SpliceOp(TermOp::kApplyVH, leaf_n, leaf_u,
                       /*fresh_on_left=*/false);
  } else {
    // Insert immediately left of the old first child c.
    NodeId c = enc_.tree.children(n)[1];
    TermNodeId leaf_c = enc_.leaf_of[c];
    TermOp op = term.node(leaf_c).is_context ? TermOp::kConcatHV
                                             : TermOp::kConcatHH;
    nn = term.SpliceOp(op, leaf_c, leaf_u, /*fresh_on_left=*/true);
  }
  FinishStructural(nn, result);
  return result;
}

const UpdateResult& DynamicEncoding::DeleteLeaf(NodeId n) {
  UpdateResult& result = ResetResult();
  Term& term = enc_.term;
  term.BeginEdit();
  const TermAlphabet& alphabet = term.alphabet();

  NodeId m = enc_.tree.parent(n);
  enc_.tree.DeleteLeaf(n);  // validates: n is a non-root leaf

  TermNodeId leaf = enc_.leaf_of[n];
  enc_.leaf_of[n] = kNoTerm;
  TermNodeId p = term.node(leaf).parent;
  assert(p != kNoTerm && "a non-root tree node's symbol cannot be the root");
  TermNodeId sib = term.node(p).left == leaf ? term.node(p).right
                                             : term.node(p).left;
  TermOp op = alphabet.OpOf(term.node(p).label);

  if (op == TermOp::kApplyVH) {
    // n was the sole child of m: a_t(n) filled the hole of the context `sib`
    // whose hole parent is m. Close the hole: retype the hole path from
    // a_□(m) up to sib (context → forest).
    assert(term.node(p).right == leaf);
    TermNodeId leaf_m = term.EnsureMutable(enc_.leaf_of[m]);
    enc_.leaf_of[m] = leaf_m;
    term.SetLabel(leaf_m, alphabet.TreeLeaf(enc_.tree.label(m)));
    term.SetContext(leaf_m, false);
    result.changed_bottom_up.push_back(leaf_m);
    // The path-copy cascade above may have replaced p and sib; re-resolve
    // them through leaf's (redirected) parent pointer before walking.
    p = term.node(leaf).parent;
    sib = term.node(p).left == leaf ? term.node(p).right : term.node(p).left;
    for (TermNodeId x = term.node(leaf_m).parent; x != p;
         x = term.node(x).parent) {
      TermOp xop = alphabet.OpOf(term.node(x).label);
      TermOp nop;
      switch (xop) {
        case TermOp::kConcatHV:
        case TermOp::kConcatVH:
          nop = TermOp::kConcatHH;
          break;
        case TermOp::kApplyVV:
          nop = TermOp::kApplyVH;
          break;
        default:
          assert(false && "unexpected operator on hole path");
          nop = xop;
          break;
      }
      term.SetLabel(x, alphabet.Op(nop));
      term.SetContext(x, false);
      result.changed_bottom_up.push_back(x);
    }
  }

  // Detach p (and with it leaf); the end-of-edit sweep reclaims both unless
  // a pinned snapshot still reaches them.
  term.ReplaceChild(p, sib);
  TermNodeId above = term.node(sib).parent;

  if (above != kNoTerm) {
    FinishStructural(above, result);
  } else {
    term.SweepZeros(&result.freed);
    ApplyRemap();
    FilterChangedPublic(result);
  }
  return result;
}

void DynamicEncoding::FilterChangedPublic(UpdateResult& result) {
  FilterChanged(result.changed_bottom_up);
}

void DynamicEncoding::MarkSubtree(NodeId v) {
  assert(enc_.tree.IsAlive(v));
  if (tree_stamp_.size() < enc_.tree.id_bound()) {
    tree_stamp_.resize(enc_.tree.id_bound(), 0);
  }
  if (++tree_epoch_ == 0) {
    std::fill(tree_stamp_.begin(), tree_stamp_.end(), 0);
    tree_epoch_ = 1;
  }
  sub_nodes_.clear();
  sub_nodes_.push_back(v);
  tree_stamp_[v] = tree_epoch_;
  // sub_nodes_ doubles as the DFS worklist: entries before `i` are final.
  for (size_t i = 0; i < sub_nodes_.size(); ++i) {
    for (NodeId c : enc_.tree.children(sub_nodes_[i])) {
      tree_stamp_[c] = tree_epoch_;
      sub_nodes_.push_back(c);
    }
  }
}

void DynamicEncoding::CutRegion(NodeId v, UpdateResult& result) {
  Term& term = enc_.term;
  const UnrankedTree& tree = enc_.tree;
  NodeId w = tree.parent(v);
  bool sole_child = tree.children(w).size() == 1;

  // X = the lowest term node covering every leaf of subtree(v) — plus
  // a_(w)'s leaf when v is w's only child, so the region re-encode retypes
  // w's symbol (its hole closes). Found by walking each leaf's root path;
  // visited nodes cache the index where they meet the first leaf's path.
  if (term_stamp_.size() < term.id_bound()) {
    term_stamp_.resize(term.id_bound(), 0);
    term_reach_.resize(term.id_bound(), 0);
  }
  if (++term_epoch_ == 0) {
    std::fill(term_stamp_.begin(), term_stamp_.end(), 0);
    term_epoch_ = 1;
  }
  lca_path_.clear();
  for (TermNodeId x = enc_.leaf_of[v]; x != kNoTerm; x = term.node(x).parent) {
    term_stamp_[x] = term_epoch_;
    term_reach_[x] = static_cast<uint32_t>(lca_path_.size());
    lca_path_.push_back(x);
  }
  size_t max_idx = 0;
  size_t num_cover = sub_nodes_.size() + (sole_child ? 1 : 0);
  for (size_t i = 1; i < num_cover; ++i) {
    NodeId n = i < sub_nodes_.size() ? sub_nodes_[i] : w;
    TermNodeId x = enc_.leaf_of[n];
    size_t walk_begin = path_scratch_.size();
    while (term_stamp_[x] != term_epoch_) {
      path_scratch_.push_back(x);
      x = term.node(x).parent;
      assert(x != kNoTerm);
    }
    uint32_t idx = term_reach_[x];
    if (idx > max_idx) max_idx = idx;
    // Cache the meet point for the walked prefix so later leaves passing
    // through it stop immediately.
    for (size_t j = walk_begin; j < path_scratch_.size(); ++j) {
      term_stamp_[path_scratch_[j]] = term_epoch_;
      term_reach_[path_scratch_[j]] = idx;
    }
    path_scratch_.resize(walk_begin);
  }

  // Collect X's pieces and drop the ones rooted inside subtree(v); climb
  // while nothing survives (the subtree's leaves may form a whole subterm).
  TermNodeId X;
  while (true) {
    X = lca_path_[max_idx];
    pieces_.clear();
    CollectPiecesInto(term, X, pieces_);
    remaining_.clear();
    for (const Piece& p : pieces_) {
      if (!InSubtree(p.root)) remaining_.push_back(p);
    }
    if (!remaining_.empty()) break;
    ++max_idx;
    assert(max_idx < lca_path_.size() &&
           "the tree root's piece survives at the term root");
  }

  // From here on the term region is rebuilt over the post-detach tree: the
  // surviving pieces' traversals skip the detached nodes automatically.
  enc_.tree.DetachSubtree(v);
  TermNodeId region =
      EncodePieces(term, tree, remaining_.data(), remaining_.size(),
                   enc_.leaf_of, enc_scratch_, &result.changed_bottom_up);
  term.ReplaceChild(X, region);
  path_scratch_.clear();
  term.RecomputeUp(region, &path_scratch_);
  result.changed_bottom_up.insert(result.changed_bottom_up.end(),
                                  path_scratch_.begin(), path_scratch_.end());
}

TermNodeId DynamicEncoding::SpliceDetached(TermNodeId sub, NodeId dst,
                                           bool as_first_child,
                                           bool dst_was_leaf,
                                           UpdateResult& result) {
  Term& term = enc_.term;
  const TermAlphabet& alphabet = term.alphabet();
  if (as_first_child) {
    if (dst_was_leaf) {
      // a_t(dst) becomes a context over the new single-child forest.
      TermNodeId leaf_d = term.EnsureMutable(enc_.leaf_of[dst]);
      enc_.leaf_of[dst] = leaf_d;
      term.SetLabel(leaf_d, alphabet.ContextLeaf(enc_.tree.label(dst)));
      term.SetContext(leaf_d, true);
      result.changed_bottom_up.push_back(leaf_d);
      return term.SpliceOp(TermOp::kApplyVH, leaf_d, sub,
                           /*fresh_on_left=*/false);
    }
    // Splice immediately left of dst's old first child c.
    NodeId c = enc_.tree.children(dst)[1];
    TermNodeId leaf_c = enc_.leaf_of[c];
    TermOp op = term.node(leaf_c).is_context ? TermOp::kConcatHV
                                             : TermOp::kConcatHH;
    return term.SpliceOp(op, leaf_c, sub, /*fresh_on_left=*/true);
  }
  // Right sibling: splice at dst's root symbol, subtree forest on the right.
  TermNodeId leaf_d = enc_.leaf_of[dst];
  TermOp op = term.node(leaf_d).is_context ? TermOp::kConcatVH
                                           : TermOp::kConcatHH;
  return term.SpliceOp(op, leaf_d, sub, /*fresh_on_left=*/false);
}

const UpdateResult& DynamicEncoding::SubtreeMove(NodeId v, NodeId dst,
                                                 bool as_first_child) {
  UpdateResult& result = ResetResult();
  UnrankedTree& tree = enc_.tree;
  if (v == tree.root()) {
    throw std::invalid_argument("SubtreeMove: cannot move the root");
  }
  MarkSubtree(v);
  if (InSubtree(dst)) {
    throw std::invalid_argument("SubtreeMove: dst inside the moved subtree");
  }
  if (!as_first_child && tree.parent(dst) == kNoNode) {
    throw std::invalid_argument(
        "SubtreeMove: cannot attach a sibling of the root");
  }
  Term& term = enc_.term;
  term.BeginEdit();
  CutRegion(v, result);
  // Re-encode the detached subtree as one balanced subterm.
  Piece sub_piece{v, kNoNode};
  TermNodeId sub = EncodePieces(term, tree, &sub_piece, 1, enc_.leaf_of,
                                enc_scratch_, &result.changed_bottom_up);
  bool dst_was_leaf = tree.IsLeaf(dst);
  if (as_first_child) {
    tree.AttachSubtreeFirstChild(v, dst);
  } else {
    tree.AttachSubtreeRightSibling(v, dst);
  }
  TermNodeId nn = SpliceDetached(sub, dst, as_first_child, dst_was_leaf,
                                 result);
  FinishStructural(nn, result);
  return result;
}

const UpdateResult& DynamicEncoding::SubtreeDelete(NodeId v) {
  UpdateResult& result = ResetResult();
  UnrankedTree& tree = enc_.tree;
  if (v == tree.root()) {
    throw std::invalid_argument("SubtreeDelete: cannot delete the root");
  }
  MarkSubtree(v);
  enc_.term.BeginEdit();
  CutRegion(v, result);
  for (NodeId n : sub_nodes_) enc_.leaf_of[n] = kNoTerm;
  tree.FreeDetached(v);
  FinishTransaction(result);
  return result;
}

const UpdateResult& DynamicEncoding::SubtreeExtract(NodeId v,
                                                    UnrankedTree* extracted) {
  assert(extracted != nullptr);
  UnrankedTree& tree = enc_.tree;
  if (v == tree.root()) {
    throw std::invalid_argument("SubtreeExtract: cannot extract the root");
  }
  *extracted = tree.CopySubtree(v);
  return SubtreeDelete(v);
}

const UpdateResult& DynamicEncoding::GraftSubtree(const UnrankedTree& src,
                                                  NodeId src_root, NodeId dst,
                                                  bool as_first_child,
                                                  NodeId* new_root) {
  UpdateResult& result = ResetResult();
  UnrankedTree& tree = enc_.tree;
  if (!as_first_child && tree.parent(dst) == kNoNode) {
    throw std::invalid_argument(
        "GraftSubtree: cannot attach a sibling of the root");
  }
  NodeId v = tree.CopyDetachedFrom(src, src_root);
  if (new_root) *new_root = v;
  Term& term = enc_.term;
  term.BeginEdit();
  Piece sub_piece{v, kNoNode};
  TermNodeId sub = EncodePieces(term, tree, &sub_piece, 1, enc_.leaf_of,
                                enc_scratch_, &result.changed_bottom_up);
  bool dst_was_leaf = tree.IsLeaf(dst);
  if (as_first_child) {
    tree.AttachSubtreeFirstChild(v, dst);
  } else {
    tree.AttachSubtreeRightSibling(v, dst);
  }
  TermNodeId nn = SpliceDetached(sub, dst, as_first_child, dst_was_leaf,
                                 result);
  FinishStructural(nn, result);
  return result;
}

bool DynamicEncoding::CheckBalanced() const {
  const Term& term = enc_.term;
  if (term.root() == kNoTerm) return true;
  std::vector<TermNodeId> stack{term.root()};
  while (!stack.empty()) {
    TermNodeId id = stack.back();
    stack.pop_back();
    const TermNode& t = term.node(id);
    if (t.height > MaxAllowedHeight(t.size)) return false;
    if (t.left != kNoTerm) {
      stack.push_back(t.left);
      stack.push_back(t.right);
    }
  }
  return true;
}

}  // namespace treenum
