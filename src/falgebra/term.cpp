#include "falgebra/term.h"

#include <cassert>
#include <deque>
#include <stdexcept>

namespace treenum {

TermNodeId Term::Alloc() {
  TermNodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = TermNode{};
    ++nodes_recycled_;
  } else {
    id = static_cast<TermNodeId>(nodes_.size());
    nodes_.push_back(TermNode{});
  }
  TermNode& t = nodes_[id];
  t.alive = true;
  t.epoch = static_cast<uint32_t>(cur_epoch_);
  ++num_alive_;
  return id;
}

void Term::DecRef(TermNodeId id) {
  TermNode& t = nodes_[id];
  // Raw frees (FreeNode/FreeSubterm) zero the count of dead nodes; a stale
  // parent slot pointing at one is tolerated outside snapshot mode.
  assert(t.refs > 0 || !t.alive);
  if (t.refs > 0 && --t.refs == 0) zero_pending_.push_back(id);
}

void Term::set_root(TermNodeId r) {
  if (r == root_) {
    if (r != kNoTerm) nodes_[r].parent = kNoTerm;
    return;
  }
  TermNodeId old = root_;
  root_ = r;
  if (r != kNoTerm) {
    IncRef(r);
    nodes_[r].parent = kNoTerm;
  }
  if (old != kNoTerm) DecRef(old);
}

TermNodeId Term::EnsureMutable(TermNodeId id) {
  if (id == kNoTerm || !frozen(id)) return id;
  return CopyForWrite(id);
}

TermNodeId Term::CopyForWrite(TermNodeId id) {
  TermNodeId nid = Alloc();
  // Copy the source by value *after* Alloc (which may relocate storage).
  TermNode src = nodes_[id];
  {
    TermNode& dst = nodes_[nid];
    dst = src;
    dst.refs = 0;
    dst.epoch = static_cast<uint32_t>(cur_epoch_);
    dst.alive = true;
  }
  if (src.left != kNoTerm) {
    // The copy adds one parent edge to each child; the frozen original keeps
    // its edges until it is reclaimed. Redirect the children's (writer-only)
    // parent pointers to the copy — but only if they still pointed at the
    // original (a child may have been re-linked elsewhere mid-edit).
    IncRef(src.left);
    IncRef(src.right);
    if (nodes_[src.left].parent == id) nodes_[src.left].parent = nid;
    if (nodes_[src.right].parent == id) nodes_[src.right].parent = nid;
  }
  ++path_copies_;
  remap_log_.emplace_back(id, nid);
  if (src.parent == kNoTerm) {
    if (root_ == id) {
      set_root(nid);
    }
    // Detached node: the caller owns the copy.
  } else {
    // Copy the spine: make the parent mutable, then swap its child slot
    // from the original to the copy.
    TermNodeId np = EnsureMutable(src.parent);
    nodes_[nid].parent = np;
    IncRef(nid);
    if (nodes_[np].left == id) {
      nodes_[np].left = nid;
    } else {
      assert(nodes_[np].right == id);
      nodes_[np].right = nid;
    }
    DecRef(id);
  }
  return nid;
}

void Term::SweepZeros(std::vector<TermNodeId>* freed) {
  while (!zero_pending_.empty()) {
    TermNodeId id = zero_pending_.back();
    zero_pending_.pop_back();
    TermNode& t = nodes_[id];
    // Transient zeros (rotations, splits) get re-referenced before the
    // sweep; duplicates in the queue find the node already dead.
    if (!t.alive || t.refs > 0) continue;
    t.alive = false;
    free_list_.push_back(id);
    --num_alive_;
    if (freed) freed->push_back(id);
    if (t.left != kNoTerm) {
      // Push left then right so the right subtree is reclaimed first —
      // same DFS order as the historical FreeSubterm.
      DecRef(t.left);
      DecRef(t.right);
    }
  }
}

void Term::PinRoot(TermNodeId r) {
  ++live_pins_;
  IncRef(r);
}

void Term::UnpinRoot(TermNodeId r, std::vector<TermNodeId>* freed) {
  assert(live_pins_ > 0);
  --live_pins_;
  DecRef(r);
  SweepZeros(freed);
}

TermNodeId Term::NewLeaf(Label symbol, NodeId n) {
  assert(alphabet_.IsLeafSymbol(symbol));
  TermNodeId id = Alloc();
  TermNode& t = nodes_[id];
  t.label = symbol;
  t.tree_node = n;
  t.size = 1;
  t.height = 0;
  t.is_context = alphabet_.IsContextLeaf(symbol);
  return id;
}

TermNodeId Term::NewNode(TermOp op, TermNodeId left, TermNodeId right) {
  assert(IsAlive(left) && IsAlive(right));
  assert(nodes_[left].parent == kNoTerm && nodes_[right].parent == kNoTerm);
  assert(nodes_[left].is_context == OpLeftIsContext(op));
  assert(nodes_[right].is_context == OpRightIsContext(op));
  TermNodeId id = Alloc();
  TermNode& t = nodes_[id];
  t.label = alphabet_.Op(op);
  t.left = left;
  t.right = right;
  t.is_context = OpYieldsContext(op);
  nodes_[left].parent = id;
  nodes_[right].parent = id;
  IncRef(left);
  IncRef(right);
  RecomputeNode(id);
  return id;
}

void Term::ReplaceChild(TermNodeId old_id, TermNodeId new_id) {
  TermNodeId p = nodes_[old_id].parent;
  if (p == kNoTerm) {
    nodes_[new_id].parent = kNoTerm;
    set_root(new_id);
    return;
  }
  p = EnsureMutable(p);
  nodes_[old_id].parent = kNoTerm;
  nodes_[new_id].parent = p;
  IncRef(new_id);
  if (nodes_[p].left == old_id) {
    nodes_[p].left = new_id;
  } else {
    assert(nodes_[p].right == old_id);
    nodes_[p].right = new_id;
  }
  DecRef(old_id);
}

void Term::ClearParent(TermNodeId id) { nodes_[id].parent = kNoTerm; }

void Term::SetChildSlot(TermNodeId parent, bool left_slot, TermNodeId child) {
  assert(!frozen(parent));
  TermNodeId old = left_slot ? nodes_[parent].left : nodes_[parent].right;
  if (old != child) {
    IncRef(child);
    if (left_slot) {
      nodes_[parent].left = child;
    } else {
      nodes_[parent].right = child;
    }
    if (old != kNoTerm) DecRef(old);
  }
  nodes_[child].parent = parent;
}

void Term::SetChildrenRaw(TermNodeId id, TermNodeId l, TermNodeId r) {
  assert(!frozen(id));
  TermNodeId ol = nodes_[id].left;
  TermNodeId orr = nodes_[id].right;
  if (ol != l) {
    IncRef(l);
    nodes_[id].left = l;
    if (ol != kNoTerm) DecRef(ol);
  }
  if (orr != r) {
    IncRef(r);
    nodes_[id].right = r;
    if (orr != kNoTerm) DecRef(orr);
  }
  nodes_[l].parent = id;
  nodes_[r].parent = id;
  RecomputeNode(id);
}

TermNodeId Term::SpliceOp(TermOp op, TermNodeId existing, TermNodeId fresh,
                          bool fresh_on_left) {
  TermNodeId p = nodes_[existing].parent;
  bool was_left = false;
  if (p != kNoTerm) {
    p = EnsureMutable(p);
    was_left = nodes_[p].left == existing;
  }
  nodes_[existing].parent = kNoTerm;
  TermNodeId nn = fresh_on_left ? NewNode(op, fresh, existing)
                                : NewNode(op, existing, fresh);
  if (p == kNoTerm) {
    set_root(nn);
  } else {
    nodes_[nn].parent = p;
    IncRef(nn);
    if (was_left) {
      nodes_[p].left = nn;
    } else {
      nodes_[p].right = nn;
    }
    DecRef(existing);
  }
  return nn;
}

TermNodeId Term::JoinDetached(TermNodeId left, TermNodeId right) {
  bool lc = nodes_[left].is_context;
  bool rc = nodes_[right].is_context;
  assert(!(lc && rc) && "cannot concatenate two contexts");
  TermOp op = lc ? TermOp::kConcatVH
                 : (rc ? TermOp::kConcatHV : TermOp::kConcatHH);
  return NewNode(op, left, right);
}

std::pair<TermNodeId, TermNodeId> Term::SplitChildren(TermNodeId t) {
  assert(!IsLeaf(t));
  TermNodeId l = nodes_[t].left;
  TermNodeId r = nodes_[t].right;
  ClearParent(l);
  ClearParent(r);
  return {l, r};
}

void Term::ReleaseDetached(TermNodeId id) {
  assert(IsAlive(id) && nodes_[id].parent == kNoTerm);
  if (nodes_[id].refs == 0) zero_pending_.push_back(id);
}

void Term::SetLabel(TermNodeId id, Label label) {
  assert(!frozen(id));
  nodes_[id].label = label;
}
void Term::SetTreeNode(TermNodeId id, NodeId n) {
  assert(!frozen(id));
  nodes_[id].tree_node = n;
}
void Term::SetContext(TermNodeId id, bool is_context) {
  assert(!frozen(id));
  nodes_[id].is_context = is_context;
}

void Term::RecomputeNode(TermNodeId id) {
  TermNode& t = nodes_[id];
  if (t.left == kNoTerm) {
    t.size = 1;
    t.height = 0;
    return;
  }
  const TermNode& l = nodes_[t.left];
  const TermNode& r = nodes_[t.right];
  t.size = l.size + r.size;
  t.height = 1 + std::max(l.height, r.height);
}

void Term::RecomputeUp(TermNodeId id, std::vector<TermNodeId>* path) {
  while (id != kNoTerm) {
    RecomputeNode(id);
    if (path) path->push_back(id);
    id = nodes_[id].parent;
  }
}

void Term::FreeNode(TermNodeId id) {
  assert(IsAlive(id));
  assert(live_pins_ == 0 && "raw free while snapshots are pinned");
  nodes_[id].alive = false;
  nodes_[id].refs = 0;
  free_list_.push_back(id);
  --num_alive_;
}

void Term::FreeSubterm(TermNodeId id, std::vector<TermNodeId>* freed) {
  std::vector<TermNodeId> stack{id};
  while (!stack.empty()) {
    TermNodeId n = stack.back();
    stack.pop_back();
    if (nodes_[n].left != kNoTerm) {
      stack.push_back(nodes_[n].left);
      stack.push_back(nodes_[n].right);
    }
    if (freed) freed->push_back(n);
    FreeNode(n);
  }
}

namespace {

/// Intermediate decoded node; holes are marked nodes that get substituted.
struct DNode {
  Label label = 0;
  std::vector<DNode*> children;
  bool is_hole = false;
  TermNodeId term_leaf = kNoTerm;
};

struct DForest {
  std::vector<DNode*> roots;
  DNode* hole = nullptr;  ///< Non-null iff this is a context.
};

}  // namespace

UnrankedTree Term::Decode(std::vector<NodeId>* term_to_tree) const {
  return DecodeAt(root_, term_to_tree);
}

UnrankedTree Term::DecodeAt(TermNodeId r,
                            std::vector<NodeId>* term_to_tree) const {
  if (r == kNoTerm) {
    throw std::logic_error("Decode: empty term");
  }
  std::deque<DNode> arena;
  auto make = [&]() {
    arena.emplace_back();
    return &arena.back();
  };

  // Recursive evaluation (term height is O(log n) for balanced terms; decode
  // is a test/rebuild helper, not on the enumeration fast path).
  auto eval = [&](auto&& self, TermNodeId id) -> DForest {
    const TermNode& t = nodes_[id];
    if (t.left == kNoTerm) {
      DNode* n = make();
      n->label = alphabet_.BaseLabel(t.label);
      n->term_leaf = id;
      if (alphabet_.IsContextLeaf(t.label)) {
        DNode* hole = make();
        hole->is_hole = true;
        n->children.push_back(hole);
        return DForest{{n}, hole};
      }
      return DForest{{n}, nullptr};
    }
    DForest l = self(self, t.left);
    DForest rr = self(self, t.right);
    TermOp op = alphabet_.OpOf(t.label);
    switch (op) {
      case TermOp::kConcatHH:
      case TermOp::kConcatHV:
      case TermOp::kConcatVH: {
        DForest out;
        out.roots = l.roots;
        out.roots.insert(out.roots.end(), rr.roots.begin(), rr.roots.end());
        out.hole = l.hole ? l.hole : rr.hole;
        return out;
      }
      case TermOp::kApplyVV:
      case TermOp::kApplyVH: {
        // Replace l's hole node by r's roots, in place in its parent's child
        // list. The hole is always a child slot (never a root) because a_□
        // holes start below their node.
        DNode* hole = l.hole;
        assert(hole != nullptr);
        // Find hole in its parent: we do not store parents in DNode; instead
        // mark the hole node as becoming a "splice" node that adopts r's
        // roots and is flattened during conversion.
        hole->is_hole = false;
        hole->label = static_cast<Label>(-1);  // splice marker
        hole->children = rr.roots;
        DForest out;
        out.roots = l.roots;
        out.hole = rr.hole;
        return out;
      }
    }
    return {};
  };
  DForest top = eval(eval, r);
  if (top.hole != nullptr) {
    throw std::logic_error("Decode: term is context-typed");
  }
  // Flatten splice markers: a node's effective children expand markers.
  if (top.roots.size() != 1) {
    throw std::logic_error("Decode: term represents a forest, not one tree");
  }

  UnrankedTree tree(0);
  if (term_to_tree) term_to_tree->assign(nodes_.size(), kNoNode);

  auto convert = [&](auto&& self, DNode* d, NodeId parent) -> void {
    NodeId me;
    if (parent == kNoNode) {
      me = tree.root();
      tree.Relabel(me, d->label);
    } else {
      me = tree.AppendChild(parent, d->label);
    }
    if (term_to_tree && d->term_leaf != kNoTerm) {
      (*term_to_tree)[d->term_leaf] = me;
    }
    // Expand splice markers depth-first so child order is preserved.
    auto emit = [&](auto&& emit_self, DNode* c) -> void {
      if (c->label == static_cast<Label>(-1) && c->term_leaf == kNoTerm) {
        for (DNode* cc : c->children) emit_self(emit_self, cc);
      } else {
        self(self, c, me);
      }
    };
    for (DNode* c : d->children) emit(emit, c);
  };
  convert(convert, top.roots[0], kNoNode);
  return tree;
}

std::string Term::Validate() const {
  if (root_ == kNoTerm) return "no root";
  std::string err;
  auto fail = [&](TermNodeId id, const std::string& what) {
    if (err.empty()) {
      err = "node " + std::to_string(id) + ": " + what;
    }
  };
  auto walk = [&](auto&& self, TermNodeId id) -> void {
    if (!err.empty()) return;
    const TermNode& t = nodes_[id];
    if (!t.alive) {
      fail(id, "not alive");
      return;
    }
    if (t.left == kNoTerm) {
      if (t.right != kNoTerm) fail(id, "leaf with right child");
      if (!alphabet_.IsLeafSymbol(t.label)) fail(id, "leaf with op label");
      if (t.tree_node == kNoNode) fail(id, "leaf without tree node");
      if (t.size != 1 || t.height != 0) fail(id, "bad leaf counters");
      if (t.is_context != alphabet_.IsContextLeaf(t.label)) {
        fail(id, "leaf type mismatch");
      }
      return;
    }
    if (!alphabet_.IsOp(t.label)) {
      fail(id, "internal node with leaf label");
      return;
    }
    TermOp op = alphabet_.OpOf(t.label);
    const TermNode& l = nodes_[t.left];
    const TermNode& r = nodes_[t.right];
    if (l.parent != id || r.parent != id) fail(id, "bad child parent link");
    if (l.is_context != OpLeftIsContext(op)) fail(id, "left operand type");
    if (r.is_context != OpRightIsContext(op)) fail(id, "right operand type");
    if (t.is_context != OpYieldsContext(op)) fail(id, "result type");
    if (t.size != l.size + r.size) fail(id, "bad size");
    if (t.height != 1 + std::max(l.height, r.height)) fail(id, "bad height");
    self(self, t.left);
    self(self, t.right);
  };
  walk(walk, root_);
  if (err.empty() && nodes_[root_].parent != kNoTerm) err = "root has parent";
  return err;
}

std::string Term::ValidateStructure(uint32_t (*max_height)(uint32_t)) const {
  std::string err = Validate();
  if (!err.empty()) return err;
  if (!zero_pending_.empty()) {
    return "zero-pending queue not swept (" +
           std::to_string(zero_pending_.size()) + " entries)";
  }
  // Balance envelope on the current version.
  if (max_height != nullptr) {
    std::vector<TermNodeId> stack{root_};
    while (!stack.empty()) {
      TermNodeId id = stack.back();
      stack.pop_back();
      const TermNode& t = nodes_[id];
      if (t.height > max_height(t.size)) {
        return "node " + std::to_string(id) + ": height " +
               std::to_string(t.height) + " exceeds envelope for size " +
               std::to_string(t.size);
      }
      if (t.left != kNoTerm) {
        stack.push_back(t.left);
        stack.push_back(t.right);
      }
    }
  }
  // Global reference-count audit over every alive version (current and
  // frozen): in-degree from alive child slots plus the root slot must be
  // covered by each node's count, and the global surplus is exactly the
  // live snapshot pins. A deficit means a future double free; a surplus
  // mismatch means a leaked detached subterm (dangling splice scaffolding).
  std::vector<uint32_t> indeg(nodes_.size(), 0);
  for (TermNodeId id = 0; id < nodes_.size(); ++id) {
    const TermNode& t = nodes_[id];
    if (!t.alive || t.left == kNoTerm) continue;
    if (!IsAlive(t.left) || !IsAlive(t.right)) {
      return "node " + std::to_string(id) + ": dead child";
    }
    ++indeg[t.left];
    ++indeg[t.right];
  }
  if (root_ != kNoTerm) ++indeg[root_];
  uint64_t surplus = 0;
  for (TermNodeId id = 0; id < nodes_.size(); ++id) {
    const TermNode& t = nodes_[id];
    if (!t.alive) continue;
    if (t.refs < indeg[id]) {
      return "node " + std::to_string(id) + ": refs " +
             std::to_string(t.refs) + " below in-degree " +
             std::to_string(indeg[id]);
    }
    surplus += t.refs - indeg[id];
  }
  if (surplus != live_pins_) {
    return "reference surplus " + std::to_string(surplus) +
           " does not match live pins " + std::to_string(live_pins_);
  }
  return "";
}

std::string Term::ToString(TermNodeId id) const {
  const TermNode& t = nodes_[id];
  if (t.left == kNoTerm) {
    return alphabet_.LabelName(t.label) + "#" + std::to_string(t.tree_node);
  }
  return "(" + alphabet_.LabelName(t.label) + " " + ToString(t.left) + " " +
         ToString(t.right) + ")";
}

}  // namespace treenum
