#include "automata/determinize.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace treenum {

namespace {

using Subset = std::vector<State>;  // sorted

}  // namespace

std::optional<DeterminizedTva> DeterminizeBinaryTva(const BinaryTva& a,
                                                    size_t max_states) {
  std::map<Subset, State> ids;
  std::vector<Subset> subsets;
  auto intern = [&](const Subset& s) -> std::optional<State> {
    auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    if (subsets.size() >= max_states) return std::nullopt;
    State id = static_cast<State>(subsets.size());
    ids.emplace(s, id);
    subsets.push_back(s);
    return id;
  };

  struct PendingInit {
    Label label;
    VarMask vars;
    State state;
  };
  std::vector<PendingInit> inits;

  // Seed: per (leaf label, annotation) the set of ι states.
  std::map<std::pair<Label, VarMask>, Subset> by_leaf;
  for (const LeafInit& li : a.leaf_inits()) {
    by_leaf[{li.label, li.vars}].push_back(li.state);
  }
  for (auto& [key, s] : by_leaf) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    auto id = intern(s);
    if (!id) return std::nullopt;
    inits.push_back({key.first, key.second, *id});
  }

  // Closure: combine all pairs of subsets per internal label.
  struct PendingTransition {
    Label label;
    State left, right, state;
  };
  std::vector<PendingTransition> transitions;
  // Internal labels = labels with δ entries.
  std::set<Label> internal_labels;
  for (const Transition& t : a.transitions()) internal_labels.insert(t.label);

  // Worklist over subset ids; combine s with all t <= s (cf. translate.cpp).
  for (State s = 0; s < subsets.size(); ++s) {
    for (State t = 0; t <= s; ++t) {
      for (int swap = 0; swap < 2; ++swap) {
        if (swap == 1 && t == s) continue;
        State l = swap ? t : s;
        State r = swap ? s : t;
        for (Label lab : internal_labels) {
          Subset out;
          for (State q1 : subsets[l]) {
            for (State q2 : subsets[r]) {
              for (State q : a.TransitionsFor(lab, q1, q2)) out.push_back(q);
            }
          }
          if (out.empty()) continue;
          std::sort(out.begin(), out.end());
          out.erase(std::unique(out.begin(), out.end()), out.end());
          auto id = intern(out);
          if (!id) return std::nullopt;
          transitions.push_back({lab, l, r, *id});
        }
      }
    }
  }

  DeterminizedTva result{
      BinaryTva(subsets.size(), a.num_labels(), a.num_vars()),
      subsets.size()};
  for (const PendingInit& pi : inits) {
    result.tva.AddLeafInit(pi.label, pi.vars, pi.state);
  }
  for (const PendingTransition& t : transitions) {
    result.tva.AddTransition(t.label, t.left, t.right, t.state);
  }
  for (State s = 0; s < subsets.size(); ++s) {
    for (State q : subsets[s]) {
      if (a.IsFinal(q)) {
        result.tva.AddFinal(s);
        break;
      }
    }
  }
  return result;
}

bool IsDeterministic(const BinaryTva& a) {
  std::set<std::pair<Label, VarMask>> leaf_seen;
  for (const LeafInit& li : a.leaf_inits()) {
    if (!leaf_seen.emplace(li.label, li.vars).second) return false;
  }
  std::set<std::tuple<Label, State, State>> tr_seen;
  for (const Transition& t : a.transitions()) {
    if (!tr_seen.emplace(t.label, t.left, t.right).second) return false;
  }
  return true;
}

}  // namespace treenum
