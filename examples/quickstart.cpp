// Quickstart: build a tree, run an MSO-style query given as a
// nondeterministic tree automaton, enumerate the answers, edit the tree,
// and re-enumerate — the full life cycle of Theorem 8.1.
#include <cstdio>

#include "automata/query_library.h"
#include "core/tree_enumerator.h"

using namespace treenum;

int main() {
  // A small document tree over the alphabet {a=0, b=1}: a root `a` with
  // children [b, a, b], where the middle `a` has one `b` child.
  UnrankedTree tree = UnrankedTree::Parse("(a (b) (a (b)) (b))");
  std::printf("tree: %s\n", tree.ToString().c_str());

  // Query Φ(x): select every b-labeled node. The query is compiled (here:
  // taken from the query library) as a nondeterministic stepwise tree
  // variable automaton — the input format of the paper.
  UnrankedTva query = QuerySelectLabel(/*num_labels=*/2, /*a=*/1);

  // Preprocessing: linear in |T|, polynomial in |Q| (Theorem 8.1). The
  // enumerator owns its copy of the tree from here on.
  TreeEnumerator enumerator(tree, query);
  std::printf("circuit width (homogenized translated |Q'|): %zu\n",
              enumerator.width());

  // Constant-delay enumeration (free first-order variable => |S| = 1).
  std::printf("answers:\n");
  TreeEnumerator::Cursor cursor = enumerator.Enumerate();
  Assignment a;
  while (cursor.Next(&a)) {
    std::printf("  %s\n", a.ToString().c_str());
  }

  // Updates in O(log |T|): insert a new b-leaf, relabel it, delete it.
  NodeId fresh;
  enumerator.InsertFirstChild(enumerator.tree().root(), /*l=*/1, &fresh);
  std::printf("after inserting a b-node: %zu answers\n",
              enumerator.EnumerateAll().size());

  enumerator.Relabel(fresh, /*l=*/0);
  std::printf("after relabeling it to a: %zu answers\n",
              enumerator.EnumerateAll().size());

  enumerator.DeleteLeaf(fresh);
  std::printf("after deleting it again:  %zu answers\n",
              enumerator.EnumerateAll().size());
  return 0;
}
